"""Tests for the batched blocked kernels and their multistart backend."""

import numpy as np
import pytest

from repro.core.multistart import multistart_sshopm, starting_vectors
from repro.kernels.blocked import blocking_plan
from repro.kernels.blocked_batched import (
    ax_m1_blocked_batched,
    ax_m_blocked_batched,
    infer_plan,
)
from repro.kernels.compressed import ax_m1_compressed, ax_m_compressed
from repro.symtensor.random import random_symmetric_batch, random_symmetric_tensor
from repro.util.flopcount import FlopCounter


class TestBroadcastSemantics:
    @pytest.mark.parametrize("m,n,b", [(3, 4, 2), (4, 5, 3), (4, 7, 4), (2, 6, 3)])
    def test_crossed_lanes_match_flat_kernels(self, m, n, b, rng):
        batch = random_symmetric_batch(3, m, n, rng=rng)
        X = rng.normal(size=(3, 4, n))  # per-(tensor, lane) vectors
        plan = blocking_plan(m, n, b)
        Y = ax_m_blocked_batched(batch.values[:, None, :], X, plan=plan)
        V = ax_m1_blocked_batched(batch.values[:, None, :], X, plan=plan)
        for t in range(3):
            for v in range(4):
                assert np.isclose(Y[t, v], ax_m_compressed(batch[t], X[t, v]))
                assert np.allclose(V[t, v], ax_m1_compressed(batch[t], X[t, v]))

    def test_shared_starts_broadcast(self, rng):
        batch = random_symmetric_batch(5, 4, 5, rng=rng)
        starts = rng.normal(size=(6, 5))
        Y = ax_m_blocked_batched(batch.values[:, None, :], starts[None], block_size=3)
        assert Y.shape == (5, 6)

    def test_single_pair(self, rng):
        t = random_symmetric_tensor(4, 6, rng=rng)
        x = rng.normal(size=6)
        assert np.isclose(
            float(ax_m_blocked_batched(t.values, x, block_size=3)),
            ax_m_compressed(t, x),
        )
        assert np.allclose(
            ax_m1_blocked_batched(t.values, x, block_size=3),
            ax_m1_compressed(t, x),
        )

    def test_plan_inference(self, rng):
        t = random_symmetric_tensor(5, 4, rng=rng)
        plan = infer_plan(t.values, rng.normal(size=4))
        assert (plan.m, plan.n) == (5, 4)

    def test_inference_failures(self, rng):
        with pytest.raises(ValueError):
            infer_plan(np.zeros(7), np.zeros(3))
        with pytest.raises(ValueError):
            infer_plan(np.zeros(1), np.zeros(1))

    def test_wrong_trailing_dim(self, rng):
        t = random_symmetric_tensor(4, 6, rng=rng)
        plan = blocking_plan(4, 6, 3)
        with pytest.raises(ValueError):
            ax_m_blocked_batched(t.values, np.zeros(5), plan=plan)
        with pytest.raises(ValueError):
            ax_m1_blocked_batched(t.values, np.zeros(5), plan=plan)

    def test_flop_counter_active(self, rng):
        t = random_symmetric_tensor(4, 5, rng=rng)
        c = FlopCounter()
        ax_m_blocked_batched(t.values, rng.normal(size=5), block_size=3, counter=c)
        assert c.flops > 0

    def test_euler_identity_batched(self, rng):
        batch = random_symmetric_batch(4, 4, 6, rng=rng)
        X = rng.normal(size=(4, 3, 6))
        plan = blocking_plan(4, 6, 3)
        Y = ax_m_blocked_batched(batch.values[:, None, :], X, plan=plan)
        V = ax_m1_blocked_batched(batch.values[:, None, :], X, plan=plan)
        assert np.allclose(np.einsum("tvn,tvn->tv", V, X), Y)


class TestMultistartBackend:
    def test_matches_flat_backend(self, rng):
        batch = random_symmetric_batch(4, 4, 5, rng=rng)
        starts = starting_vectors(6, 5, rng=2)
        a = multistart_sshopm(batch, starts=starts, alpha=8.0, tol=1e-11,
                              max_iters=1500, backend="batched")
        b = multistart_sshopm(batch, starts=starts, alpha=8.0, tol=1e-11,
                              max_iters=1500, backend="blocked")
        assert np.allclose(a.eigenvalues, b.eigenvalues, atol=1e-9)
        assert np.allclose(a.eigenvectors, b.eigenvectors, atol=1e-7)
        assert np.array_equal(a.converged, b.converged)

    def test_large_dimension_multistart(self, rng):
        """The scenario the paper's future work targets: many tensors of a
        size where unrolling is impossible."""
        from repro.core.sshopm import suggested_shift

        batch = random_symmetric_batch(6, 4, 10, rng=rng)
        # the conservative shift is provable but very slow at this size;
        # accept partial convergence within the iteration budget
        alpha = max(suggested_shift(batch[t]) for t in range(6))
        res = multistart_sshopm(batch, num_starts=8, alpha=alpha, rng=3,
                                tol=1e-9, max_iters=3000, backend="blocked")
        assert res.converged.mean() > 0.4
        from repro.kernels.blocked_batched import ax_m1_blocked_batched as axm1

        r = axm1(batch.values[:, None, :], res.eigenvectors, block_size=6)
        resid = np.linalg.norm(
            r - res.eigenvalues[..., None] * res.eigenvectors, axis=-1
        )
        # residual scales with the (large) shift: |dlambda| < tol implies an
        # eigenvector error of roughly tol^(1/2), amplified by (lambda+alpha)
        assert resid[res.converged].max() < 3e-5 * alpha
