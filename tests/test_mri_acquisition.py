"""Tests for the signal-domain acquisition chain."""

import numpy as np
import pytest

from repro.mri.acquisition import adc_from_signal, rician_noise, signal_from_fibers
from repro.mri.fibers import extract_fibers_batch
from repro.mri.gradients import gradient_directions
from repro.mri.metrics import evaluate_detection
from repro.mri.phantom import adc_from_fibers, make_phantom


class TestSignalModel:
    def test_single_compartment_round_trip(self, rng):
        """One fiber: -ln(exp(-b D))/b == D exactly (no model mismatch)."""
        g = gradient_directions(24, rng=rng)
        d = np.array([[1.0, 0.0, 0.0]])
        w = np.array([1.0])
        truth = adc_from_fibers(g, d, w)
        signal = signal_from_fibers(g, d, w, b_value=2.0)
        recovered = adc_from_signal(signal, b_value=2.0)
        assert np.allclose(recovered, truth, atol=1e-12)

    def test_low_b_approaches_weighted_sum(self, rng):
        """Two compartments: at small b the log-sum-exp linearizes to the
        weighted ADC sum (the ADC-domain model)."""
        g = gradient_directions(24, rng=rng)
        d = np.stack([[1.0, 0, 0], [0, 1.0, 0]])
        w = np.array([0.5, 0.5])
        truth = adc_from_fibers(g, d, w)
        errs = {}
        for b in (0.01, 0.1, 1.0):
            rec = adc_from_signal(signal_from_fibers(g, d, w, b_value=b), b_value=b)
            errs[b] = np.abs(rec - truth).max()
        scale = np.abs(truth).max()
        assert errs[0.01] < 5e-3 * scale
        assert errs[1.0] < 0.25 * scale
        # mismatch shrinks ~linearly with b
        assert errs[0.01] < errs[0.1] < errs[1.0]

    def test_signal_bounded_by_s0(self, rng):
        g = gradient_directions(16, rng=rng)
        s = signal_from_fibers(g, np.eye(3)[:2], np.array([0.3, 0.7]), s0=2.5)
        assert np.all(s <= 2.5 + 1e-12)
        assert np.all(s > 0)

    def test_weights_normalized(self, rng):
        g = gradient_directions(16, rng=rng)
        a = signal_from_fibers(g, np.eye(3)[:1], np.array([1.0]))
        b = signal_from_fibers(g, np.eye(3)[:1], np.array([7.0]))
        assert np.allclose(a, b)

    def test_validation(self, rng):
        g = gradient_directions(16, rng=rng)
        with pytest.raises(ValueError):
            signal_from_fibers(g, np.eye(3)[:1], np.array([1.0]), b_value=0)
        with pytest.raises(ValueError):
            signal_from_fibers(g, np.eye(3)[:1], np.array([0.0]))
        with pytest.raises(ValueError):
            adc_from_signal(np.ones(3), b_value=-1)
        with pytest.raises(ValueError):
            adc_from_signal(np.ones(3), s0=0)


class TestRicianNoise:
    def test_zero_sigma_identity(self):
        s = np.linspace(0.1, 1.0, 5)
        assert np.array_equal(rician_noise(s, 0.0), s)

    def test_noise_is_nonnegative(self, rng):
        s = np.full(1000, 0.01)
        noisy = rician_noise(s, 0.5, rng=rng)
        assert np.all(noisy >= 0)

    def test_rician_bias_at_low_snr(self, rng):
        """The Rician magnitude floor: near-zero signal has mean
        ~ sigma * sqrt(pi/2), not zero."""
        noisy = rician_noise(np.zeros(20000), 1.0, rng=rng)
        assert abs(noisy.mean() - np.sqrt(np.pi / 2)) < 0.05

    def test_high_snr_nearly_gaussian(self, rng):
        s = np.full(20000, 100.0)
        noisy = rician_noise(s, 1.0, rng=rng)
        assert abs(noisy.mean() - 100.0) < 0.05
        assert abs(noisy.std() - 1.0) < 0.05

    def test_negative_sigma_rejected(self):
        with pytest.raises(ValueError):
            rician_noise(np.ones(3), -0.1)

    def test_log_floor_guards_against_nonpositive(self):
        adc = adc_from_signal(np.array([0.0, -0.5, 1.0]), b_value=1.0)
        assert np.all(np.isfinite(adc))


class TestSignalDomainPhantom:
    def test_phantom_builds(self):
        ph = make_phantom(rows=4, cols=4, num_gradients=24, domain="signal",
                          b_value=1.0, noise_sigma=0.0, rng=3)
        assert ph.meta["domain"] == "signal"
        assert ph.tensors.values.shape == (16, 15)

    def test_unknown_domain_rejected(self):
        with pytest.raises(ValueError):
            make_phantom(rows=2, cols=2, num_gradients=20, domain="kspace", rng=0)

    def test_detection_survives_model_mismatch(self):
        """End to end through the realistic chain: moderate b-value and
        Rician noise, order-4 fit of a non-polynomial profile — detection
        should still be mostly correct (the regime the paper's application
        actually lives in)."""
        ph = make_phantom(rows=6, cols=6, num_gradients=48, domain="signal",
                          b_value=0.5, noise_sigma=0.005, rng=4)
        fibers = extract_fibers_batch(ph.tensors, num_starts=64, rng=5)
        rep = evaluate_detection([f.directions for f in fibers], ph.true_directions)
        assert rep.correct_count_fraction > 0.8
        assert rep.mean_angular_error_deg < 10.0

    def test_high_b_degrades_crossing_detection(self):
        """Ablation-style check: stronger diffusion weighting increases
        log-sum-exp mismatch, hurting crossing voxels more."""
        def crossing_accuracy(b):
            ph = make_phantom(rows=6, cols=6, num_gradients=48, domain="signal",
                              b_value=b, noise_sigma=0.0, rng=6)
            fibers = extract_fibers_batch(ph.tensors, num_starts=64, rng=7)
            rep = evaluate_detection([f.directions for f in fibers],
                                     ph.true_directions)
            two = rep.by_fiber_count.get(2)
            return two[1] / two[0] if two else 0.0

        low = crossing_accuracy(0.2)
        high = crossing_accuracy(6.0)
        assert low >= high
