"""Tests for the bounded convergence telemetry stream
(repro.instrument.telemetry): stride decimation, serialization, the
enabled/disabled gating rule, and attachment to solver results and
recorder traces."""

import math

import numpy as np
import pytest

from repro.core import adaptive_sshopm, sshopm
from repro.core.multistart import multistart_sshopm
from repro.instrument import Recorder, load_trace, recording
from repro.instrument.telemetry import (
    COLUMNS,
    TELEMETRY_SCHEMA,
    ConvergenceTelemetry,
    telemetry_enabled,
)
from repro.symtensor import random_symmetric_tensor
from repro.symtensor.random import random_symmetric_batch


class TestBoundedStream:
    def test_records_every_iteration_until_cap(self):
        tel = ConvergenceTelemetry("t", maxlen=16)
        for k in range(10):
            tel.append(k, float(k))
        assert len(tel) == 10
        assert tel.stride == 1
        assert tel.column("k") == list(range(10))

    def test_decimation_bounds_memory(self):
        tel = ConvergenceTelemetry("t", maxlen=16)
        for k in range(10_000):
            tel.append(k, float(k))
        assert len(tel) <= 16
        assert tel.stride > 1
        ks = tel.column("k")
        assert ks == sorted(ks)
        # coverage spans the whole run, not just a prefix
        assert ks[-1] > 9_000

    def test_force_appends_final_iterate(self):
        tel = ConvergenceTelemetry("t", maxlen=16)
        for k in range(100):
            tel.append(k, float(k))
        tel.append(101, 41.5, force=True)  # off-stride but forced
        assert tel.column("k")[-1] == 101
        assert tel.column("lam")[-1] == 41.5

    def test_maxlen_floor(self):
        with pytest.raises(ValueError):
            ConvergenceTelemetry("t", maxlen=4)

    def test_roundtrip(self):
        tel = ConvergenceTelemetry("t", maxlen=32, meta={"m": 4})
        for k in range(50):
            tel.append(k, float(k), residual=1.0 / (k + 1), shift=2.0,
                       step_norm=0.1, active=5)
        data = tel.to_dict()
        assert data["schema"] == TELEMETRY_SCHEMA
        assert data["columns"] == list(COLUMNS)
        back = ConvergenceTelemetry.from_dict(data)
        assert back.to_dict() == data
        assert back.stride == tel.stride
        assert back.meta == {"m": 4}

    def test_from_dict_rejects_unknown_schema(self):
        with pytest.raises(ValueError):
            ConvergenceTelemetry.from_dict({"schema": "repro-telemetry/99",
                                            "name": "x"})

    def test_arrays_and_records(self):
        tel = ConvergenceTelemetry("t")
        tel.append(0, 1.0, residual=0.5)
        arrays = tel.arrays()
        assert set(arrays) == set(COLUMNS)
        assert arrays["lam"][0] == 1.0
        assert tel.records[0]["residual"] == 0.5


class TestGating:
    def test_explicit_flag_wins(self):
        rec = Recorder()
        assert telemetry_enabled(True, None) is True
        assert telemetry_enabled(False, rec) is False

    def test_none_follows_recorder(self):
        assert telemetry_enabled(None, None) is False
        assert telemetry_enabled(None, Recorder()) is True


class TestSolverAttachment:
    @pytest.fixture
    def tensor(self):
        return random_symmetric_tensor(3, 4, rng=0)

    def test_sshopm_off_by_default(self, tensor):
        res = sshopm(tensor, alpha=2.0, max_iters=100, rng=1)
        assert res.telemetry is None

    def test_sshopm_explicit_on(self, tensor):
        res = sshopm(tensor, alpha=2.0, max_iters=100, rng=1, telemetry=True)
        tel = res.telemetry
        assert tel is not None and len(tel) >= 2
        assert tel.name == "sshopm"
        # lambda column matches lambda_history (modulo decimation)
        ks = [int(k) for k in tel.column("k")]
        lams = tel.column("lam")
        for k, lam in zip(ks[:-1], lams[:-1]):
            assert lam == pytest.approx(res.lambda_history[k])
        # final forced record carries the result state
        assert lams[-1] == pytest.approx(res.eigenvalue)
        assert tel.column("residual")[-1] == pytest.approx(res.residual)
        assert tel.column("shift")[-1] == 2.0

    def test_recorder_enables_and_attaches(self, tensor):
        with recording() as rec:
            res = sshopm(tensor, alpha=2.0, max_iters=100, rng=1)
        assert res.telemetry is not None
        assert [t.name for t in rec.telemetry] == ["sshopm"]

    def test_adaptive_records_per_step_shift(self, tensor):
        res = adaptive_sshopm(tensor, rng=2, max_iters=100, telemetry=True)
        tel = res.telemetry
        assert tel.name == "adaptive_sshopm"
        shifts = tel.column("shift")[:-1]
        assert shifts and all(s >= 0.0 for s in shifts)  # mode="max" shifts

    def test_multistart_aggregate_stream(self):
        batch = random_symmetric_batch(3, 3, 4, rng=3)
        res = multistart_sshopm(batch, num_starts=6, alpha=1.0, max_iters=80,
                                rng=4, telemetry=True)
        tel = res.telemetry
        assert tel.name == "multistart_sshopm"
        assert tel.meta["tensors"] == 3 and tel.meta["starts"] == 6
        active = tel.column("active")
        assert active[0] == 18  # every pair active on sweep 1
        assert active == sorted(active, reverse=True)  # only ever freezes

    def test_trace_roundtrip_carries_telemetry(self, tensor, tmp_path):
        with recording() as rec:
            sshopm(tensor, alpha=2.0, max_iters=100, rng=1)
        path = tmp_path / "t.json"
        rec.save_trace(path)
        back = load_trace(path)
        assert len(back.telemetry) == 1
        # nan-aware equality (the final forced row has step_norm=nan)
        np.testing.assert_equal(back.telemetry[0].to_dict(),
                                rec.telemetry[0].to_dict())

    def test_worker_streams_namespaced_on_absorb(self):
        from repro.parallel import parallel_multistart_sshopm

        batch = random_symmetric_batch(4, 3, 4, rng=5)
        with recording() as rec:
            parallel_multistart_sshopm(batch, workers=2, num_starts=4,
                                       alpha=1.0, max_iters=40)
        names = sorted(t.name for t in rec.telemetry)
        assert names == ["worker0.multistart_sshopm",
                         "worker1.multistart_sshopm"]

    def test_nan_columns_serialize(self):
        tel = ConvergenceTelemetry("t")
        tel.append(0, 1.0)  # residual/shift/step default to nan
        row = tel.records[0]
        assert math.isnan(row["residual"]) and math.isnan(row["step_norm"])
