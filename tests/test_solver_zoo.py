"""Cross-method validation of the PR-10 solver zoo.

Three independent eigensolvers — SS-HOPM (power iteration with a convex
shift), GEAP (per-iteration projected-Hessian shift, arXiv:1007.1267),
and QRST (dense tensor QR with deflation, arXiv:1411.1926) — must agree
on problems with known spectra:

* odeco tensors, whose robust eigenpairs are the construction weights;
* ``n = 2`` tensors, where every real eigenpair is found exactly by
  polynomial root-finding (:func:`repro.core.exact_eigenpairs_n2`).

Plus the registry/routing contract behind ``repro.solve(method=...)``,
the ``method="auto"`` heuristic, chaos-fault behavior, and cooperative
cancellation — the ``make solver-check`` gate runs this file.
"""

import time

import numpy as np
import pytest

import repro
from repro.core import canonicalize_sign, eigen_residual, exact_eigenpairs_n2
from repro.core.results import ResultProtocol
from repro.kernels.dispatch import get_kernels
from repro.resilience.faults import FaultPlan, nan_injecting_pair
from repro.resilience.guards import SolveFailure
from repro.resilience.retry import RetryPolicy
from repro.solvers import (
    SolverEntry,
    UnknownMethodError,
    available_methods,
    choose_method,
    geap,
    get_solver,
    projected_shift,
    qrst,
    qrst_batch,
    register_solver,
    sshopm,
    suggested_shift,
)
from repro.symtensor import (
    SymmetricTensorBatch,
    random_odeco_tensor,
    random_symmetric_batch,
    random_symmetric_tensor,
)

ATOL = 1e-8


@pytest.fixture(scope="module")
def odeco3():
    """Odd-order odeco: eigenpairs are exactly (weights, basis rows)."""
    tensor, basis, weights = random_odeco_tensor(3, 4, rng=5)
    return tensor, basis, weights


@pytest.fixture(scope="module")
def odeco4():
    """Even-order odeco for the concave (minima) cross-check."""
    tensor, basis, weights = random_odeco_tensor(4, 3, rng=7)
    return tensor, basis, weights


def found_spectrum(report_or_result, tensor=None):
    """Flat list of (eigenvalue, eigenvector) found by a solve."""
    try:
        pairs = report_or_result.eigenpairs()
    except TypeError:
        # MultistartResult wants the tensor to dedupe against
        pairs = report_or_result.eigenpairs(tensor)
    if pairs and isinstance(pairs[0], list):
        pairs = pairs[0]
    return [(p.eigenvalue, p.eigenvector) for p in pairs]


def odeco_m3_spectrum(weights):
    """Every real eigenvalue of an odd-order odeco tensor, analytically.

    Writing ``x = sum_i c_i u_i``, the eigen equations are ``w_i c_i^2 =
    lambda c_i``: each ``c_i`` is 0 or ``lambda / w_i``, so every
    nonempty subset ``S`` yields ``lambda_S = (sum_{i in S}
    w_i^-2)^(-1/2)`` — the construction weights are the singletons."""
    lams = set()
    k = len(weights)
    for mask in range(1, 1 << k):
        inv2 = sum(weights[i] ** -2 for i in range(k) if mask >> i & 1)
        lams.add(1.0 / np.sqrt(inv2))
    return np.array(sorted(lams))


def assert_in_analytic_spectrum(tensor, spectrum, analytic):
    """Every found pair is a true eigenpair with a predicted eigenvalue."""
    assert spectrum, "solver found no eigenpairs at all"
    for lam, vec in spectrum:
        lam_c, _ = canonicalize_sign(lam, np.asarray(vec), tensor.m)
        assert np.min(np.abs(analytic - lam_c)) < ATOL, (lam_c, analytic)
        # sanity guard only: the vector converges at half the lambda rate
        assert eigen_residual(tensor, lam, vec) < 1e-5


def has_eigenvalue(spectrum, target, m):
    return any(abs(canonicalize_sign(lam, np.asarray(vec), m)[0] - target)
               < ATOL for lam, vec in spectrum)


class TestRegistry:
    def test_builtins_registered(self):
        methods = available_methods()
        for name in ("sshopm", "geap", "qrst"):
            assert name in methods
        assert methods[-1] == "auto"

    def test_unknown_method_raises(self):
        with pytest.raises(UnknownMethodError, match="no_such"):
            get_solver("no_such")

    def test_facade_rejects_unknown_method(self):
        A = random_symmetric_tensor(3, 3, rng=0)
        with pytest.raises(UnknownMethodError):
            repro.solve(A, method="no_such")

    def test_auto_cannot_be_registered(self):
        with pytest.raises(ValueError, match="auto"):
            register_solver("auto", SolverEntry(
                name="auto", summary="nope", single=sshopm))

    def test_entry_needs_a_callable(self):
        with pytest.raises(ValueError, match="single= or batch="):
            register_solver("hollow", SolverEntry(name="hollow", summary=""))

    def test_duplicate_registration_is_loud(self):
        with pytest.raises(ValueError, match="replace=True"):
            register_solver("sshopm", get_solver("sshopm"))
        # replace=True round-trips the same entry without complaint
        entry = get_solver("sshopm")
        assert register_solver("sshopm", entry, replace=True) is entry

    def test_custom_solver_routes_through_facade(self):
        calls = {}

        def toy(tensor, **kwargs):
            calls["kwargs"] = kwargs
            return sshopm(tensor, alpha=5.0, rng=0, tol=kwargs.get("tol"),
                          max_iters=kwargs.get("max_iters"))

        name = "toy-zoo-test"
        if name not in available_methods():
            register_solver(name, SolverEntry(
                name=name, summary="registry smoke solver", single=toy))
        A = random_symmetric_tensor(3, 3, rng=1)
        report = repro.solve(A, method=name, tol=1e-10, max_iters=300)
        assert report.solver == name
        assert report.request.method == name
        assert isinstance(report.result, ResultProtocol)
        assert calls["kwargs"]["tol"] == 1e-10


class TestResultProtocol:
    def test_geap_result_conforms(self):
        A = random_symmetric_tensor(3, 3, rng=2)
        res = geap(A, rng=0, tol=1e-10, max_iters=300)
        assert isinstance(res, ResultProtocol)
        assert res.converged

    def test_qrst_result_conforms(self):
        A = random_symmetric_tensor(3, 3, rng=2)
        res = qrst(A, tol=1e-10)
        assert isinstance(res, ResultProtocol)
        assert res.eigenpairs()


class TestOdecoCrossValidation:
    """All three methods recover (subsets of) the known odeco spectrum,
    to 1e-8 after sign canonicalization."""

    def test_sshopm_matches_analytic(self, odeco3):
        tensor, basis, weights = odeco3
        report = repro.solve(tensor, starts=48, alpha=suggested_shift(tensor),
                             tol=1e-12, max_iters=800, rng=0,
                             method="sshopm")
        spectrum = found_spectrum(report, tensor)
        assert_in_analytic_spectrum(tensor, spectrum,
                                    odeco_m3_spectrum(weights))
        assert has_eigenvalue(spectrum, weights[0], 3)

    def test_geap_matches_analytic(self, odeco3):
        tensor, basis, weights = odeco3
        report = repro.solve(tensor, starts=48, tol=1e-12, max_iters=800,
                             rng=0, method="geap")
        assert report.solver == "fleet_solve+geap"
        spectrum = found_spectrum(report, tensor)
        assert_in_analytic_spectrum(tensor, spectrum,
                                    odeco_m3_spectrum(weights))
        # GEAP's shift adapts per lane: with 48 starts it reaches every
        # construction weight, not just the dominant one
        for w in weights:
            assert has_eigenvalue(spectrum, w, 3), (w, spectrum)

    def test_qrst_matches_analytic(self, odeco3):
        tensor, basis, weights = odeco3
        report = repro.solve(tensor, method="qrst", tol=1e-12)
        assert report.solver == "qrst"
        spectrum = found_spectrum(report, tensor)
        assert_in_analytic_spectrum(tensor, spectrum,
                                    odeco_m3_spectrum(weights))
        assert has_eigenvalue(spectrum, weights[0], 3)
        # one deterministic deflation run yields a full slate of n pairs
        assert len(spectrum) == tensor.n

    def test_methods_agree_pairwise(self, odeco3):
        tensor, _, _ = odeco3
        by_method = {}
        for method in ("sshopm", "geap", "qrst"):
            report = repro.solve(tensor, starts=48,
                                 alpha=(suggested_shift(tensor)
                                        if method == "sshopm" else None),
                                 tol=1e-12, max_iters=800, rng=0,
                                 method=method)
            by_method[method] = sorted(
                canonicalize_sign(lam, vec, tensor.m)[0]
                for lam, vec in found_spectrum(report, tensor))
        # every eigenvalue either solver found, the others confirm
        for a in by_method:
            for b in by_method:
                common = [
                    lam for lam in by_method[a]
                    if any(abs(lam - other) < ATOL for other in by_method[b])
                ]
                assert len(common) >= min(len(by_method[a]),
                                          len(by_method[b])) - 1


class TestExactN2CrossValidation:
    """Against the polynomial oracle: every found pair is an exact root."""

    @pytest.fixture(scope="class")
    def problem(self):
        tensor = random_symmetric_tensor(4, 2, rng=3)
        oracle = exact_eigenpairs_n2(tensor)
        return tensor, [p.eigenvalue for p in oracle]

    def in_oracle(self, lam, oracle_lams):
        return any(abs(lam - exact) < ATOL for exact in oracle_lams)

    def test_sshopm_subset_of_oracle(self, problem):
        tensor, oracle_lams = problem
        report = repro.solve(tensor, starts=32,
                             alpha=suggested_shift(tensor), tol=1e-13,
                             max_iters=800, rng=1, method="sshopm")
        spectrum = found_spectrum(report, tensor)
        assert spectrum
        for lam, _ in spectrum:
            assert self.in_oracle(lam, oracle_lams), (lam, oracle_lams)

    def test_geap_subset_of_oracle(self, problem):
        tensor, oracle_lams = problem
        report = repro.solve(tensor, starts=32, tol=1e-13, max_iters=800,
                             rng=1, method="geap")
        spectrum = found_spectrum(report)
        assert spectrum
        for lam, _ in spectrum:
            assert self.in_oracle(lam, oracle_lams), (lam, oracle_lams)

    def test_qrst_subset_of_oracle(self, problem):
        tensor, oracle_lams = problem
        res = qrst(tensor, tol=1e-12)
        spectrum = found_spectrum(res)
        assert spectrum
        for lam, _ in spectrum:
            assert self.in_oracle(lam, oracle_lams), (lam, oracle_lams)

    def test_qrst_matrix_case_matches_eigh(self):
        A = random_symmetric_tensor(2, 5, rng=11)
        res = qrst(A, tol=1e-12)
        found = np.sort([lam for lam, _ in found_spectrum(res)])
        exact = np.sort(np.linalg.eigvalsh(A.to_dense()))
        assert np.allclose(found, exact, atol=1e-10)


class TestGeapConcaveMode:
    """The acceptance case: GEAP's concave mode reaches an eigenpair the
    convex SS-HOPM sweep never converges to."""

    def test_finds_minimum_sshopm_misses(self, odeco4):
        tensor, _, weights = odeco4
        convex = repro.solve(tensor, starts=48,
                             alpha=suggested_shift(tensor), tol=1e-12,
                             max_iters=800, rng=2, method="sshopm")
        convex_lams = [lam for lam, _ in found_spectrum(convex, tensor)]
        assert convex_lams

        hits = []
        for seed in range(6):
            res = geap(tensor, mode="min", rng=seed, tol=1e-12,
                       max_iters=800)
            if res.converged:
                hits.append(res)
        assert hits, "geap mode='min' never converged"
        novel = [
            r for r in hits
            if not any(abs(r.eigenvalue - lam) < 1e-6 for lam in convex_lams)
        ]
        assert novel, (convex_lams, [r.eigenvalue for r in hits])
        best = min(novel, key=lambda r: r.eigenvalue)
        # it is a genuine eigenpair, at the concave end of the spectrum
        assert eigen_residual(tensor, best.eigenvalue,
                              best.eigenvector) < 1e-8
        assert best.eigenvalue < min(convex_lams)
        # for positive-weight odeco the minima sit below every weight
        assert best.eigenvalue < min(weights)

    def test_projected_shift_signs(self, odeco4):
        tensor, basis, _ = odeco4
        x = basis[0]
        assert projected_shift(tensor, x, 1e-6, "max") >= 0.0
        assert projected_shift(tensor, x, 1e-6, "min") <= 0.0


class TestAutoRouting:
    def test_batch_routes_to_fleet(self):
        assert choose_method(3, 4, batch=True, num_starts=32) == "sshopm"

    def test_min_spectrum_routes_to_geap(self):
        assert choose_method(4, 6, num_starts=1, spectrum="min") == "geap"

    def test_small_dense_routes_to_qrst(self):
        assert choose_method(3, 4, num_starts=4) == "qrst"

    def test_large_dense_routes_to_sshopm(self):
        assert choose_method(4, 12, num_starts=4) == "sshopm"

    def test_many_starts_prefer_sshopm(self):
        assert choose_method(3, 4, num_starts=64) == "sshopm"

    def test_facade_records_resolved_method(self):
        A = random_symmetric_tensor(3, 4, rng=0)
        report = repro.solve(A, method="auto", tol=1e-10)
        assert report.request.method == "qrst"
        assert report.solver == "qrst"
        batch = random_symmetric_batch(2, 3, 4, rng=0)
        report = repro.solve(batch, starts=4, alpha=2.0, rng=1,
                             method="auto")
        assert report.request.method == "sshopm"
        assert report.solver == "fleet_solve"


class TestChaosFaults:
    """Both new solvers behave under the chaos fault plan: structured
    failures, no silent garbage, unaffected neighbors."""

    def test_geap_guards_catch_injected_nans(self):
        A = random_symmetric_tensor(3, 3, rng=4)
        broken = nan_injecting_pair(get_kernels("precomputed", 3, 3))
        with pytest.raises(SolveFailure) as exc:
            geap(A, rng=0, kernels=broken, guards=True, max_iters=50)
        assert exc.value.solver == "geap"

    def test_geap_retry_recovers_from_bad_kernels(self):
        A = random_symmetric_tensor(3, 3, rng=4)
        good = get_kernels("precomputed", 3, 3)
        attempts = []

        def flaky(attempt):
            attempts.append(attempt)
            pair = nan_injecting_pair(good) if attempt == 0 else good
            return geap(A, rng=attempt, kernels=pair, guards=True,
                        max_iters=300, tol=1e-10)

        from repro.resilience.retry import run_with_retry

        outcome = run_with_retry(flaky, RetryPolicy(max_attempts=3),
                                 solver="geap", rng=0)
        assert outcome.result.converged
        assert attempts == [0, 1]
        assert outcome.failures[0].reason == "nonfinite"

    def test_qrst_batch_isolates_crashed_tensor(self):
        batch = random_symmetric_batch(3, 3, 4, rng=6)
        plan = FaultPlan(seed=0, crashes={1: 1})
        res = qrst_batch(batch, num_starts=4, tol=1e-10, faults=plan)
        assert res.failed[1].all()
        assert not res.failed[0].any() and not res.failed[2].any()
        assert res.converged[0].any() and res.converged[2].any()

    def test_qrst_rejects_oversized_dense(self):
        A = random_symmetric_tensor(3, 4, rng=0)
        with pytest.raises(ValueError, match="dense"):
            qrst(A, max_dense=8)


class TestCancellation:
    def test_geap_stop_hook(self):
        A = random_symmetric_tensor(3, 4, rng=8)
        res = geap(A, rng=0, max_iters=500, stop=lambda: True)
        assert not res.converged
        assert res.iterations <= 1

    def test_qrst_stop_hook(self):
        A = random_symmetric_tensor(3, 4, rng=8)
        res = qrst(A, stop=lambda: True)
        assert res.stopped

    def test_facade_deadline_reaches_geap(self):
        A = random_symmetric_tensor(3, 4, rng=8)
        report = repro.solve(A, method="geap", max_iters=500,
                             deadline=time.time() - 1.0)
        assert not report.result.converged


class TestServeJobsCarryMethod:
    def test_spec_roundtrip_and_validation(self):
        from repro.serve.jobs import BadSpec, JobSpec

        doc = {"tensors": {"kind": "random", "count": 2, "m": 3, "n": 4,
                           "seed": 0}}
        assert JobSpec.from_doc(dict(doc)).method == "sshopm"
        spec = JobSpec.from_doc({**doc, "method": "qrst"})
        assert spec.method == "qrst"
        assert spec.to_doc()["method"] == "qrst"
        with pytest.raises(BadSpec, match="method"):
            JobSpec.from_doc({**doc, "method": "auto"})
        with pytest.raises(BadSpec, match="method"):
            JobSpec.from_doc({**doc, "method": "bogus"})
