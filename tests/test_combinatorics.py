"""Unit and property tests for repro.util.combinatorics."""

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.combinatorics import (
    binomial,
    factorial,
    factorial_table,
    multinomial,
    multinomial1_from_index,
    multinomial_from_index,
    num_total_entries,
    num_unique_entries,
    symmetry_savings_factor,
)


class TestFactorial:
    def test_small_values(self):
        assert [factorial(k) for k in range(6)] == [1, 1, 2, 6, 24, 120]

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            factorial(-1)

    def test_table_matches(self):
        tab = factorial_table(12)
        for k in range(13):
            assert tab[k] == math.factorial(k)

    def test_table_overflow_guard(self):
        with pytest.raises(ValueError):
            factorial_table(25)

    def test_table_is_cached_and_readonly(self):
        tab = factorial_table(8)
        assert tab is factorial_table(8)
        with pytest.raises(ValueError):
            tab[0] = 99


class TestBinomial:
    def test_pascal_row(self):
        assert [binomial(5, k) for k in range(6)] == [1, 5, 10, 10, 5, 1]

    def test_out_of_range_is_zero(self):
        assert binomial(4, -1) == 0
        assert binomial(4, 5) == 0

    @given(st.integers(0, 40), st.integers(0, 40))
    def test_pascal_identity(self, n, k):
        assert binomial(n + 1, k) == binomial(n, k) + binomial(n, k - 1)

    @given(st.integers(0, 30))
    def test_row_sum(self, n):
        assert sum(binomial(n, k) for k in range(n + 1)) == 2**n


class TestMultinomial:
    def test_basic(self):
        assert multinomial([2, 1]) == 3
        assert multinomial([1, 1, 1]) == 6
        assert multinomial([4]) == 1
        assert multinomial([0, 0, 3]) == 1

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            multinomial([2, -1])

    @given(st.lists(st.integers(0, 6), min_size=1, max_size=5))
    def test_matches_factorial_formula(self, counts):
        total = sum(counts)
        expected = math.factorial(total)
        for k in counts:
            expected //= math.factorial(k)
        assert multinomial(counts) == expected

    @given(st.integers(1, 7), st.integers(1, 5))
    def test_sum_over_classes_is_n_to_m(self, m, n):
        """Property 2 consistency: multiplicities over all classes tile the
        full dense tensor."""
        from repro.symtensor.indexing import iter_monomials

        total = sum(multinomial(mono) for mono in iter_monomials(m, n))
        assert total == n**m


class TestStreamingMultinomial:
    def test_worked_example_from_paper(self):
        # Section III-B.4: index [1,2,2,5,5,5,5] -> divisor 1!*2!*4!
        index = [1, 2, 2, 5, 5, 5, 5]
        m = len(index)
        expected = math.factorial(m) // (1 * 2 * 24)
        assert multinomial_from_index(index) == expected

    def test_worked_example_multinomial1(self):
        # Section III-B.4: same index, output entry 5 -> divisor 1!*2!*3!
        index = [1, 2, 2, 5, 5, 5, 5]
        expected = math.factorial(6) // (1 * 2 * 6)
        assert multinomial1_from_index(index, 5) == expected

    def test_multinomial1_missing_index_raises(self):
        with pytest.raises(ValueError):
            multinomial1_from_index([1, 1, 2], 3)

    @given(st.lists(st.integers(1, 6), min_size=1, max_size=8))
    def test_matches_monomial_formula(self, values):
        index = sorted(values)
        n = max(index)
        counts = [index.count(i) for i in range(1, n + 1)]
        assert multinomial_from_index(index) == multinomial(counts)

    @given(st.lists(st.integers(1, 6), min_size=2, max_size=8), st.data())
    def test_multinomial1_matches_formula(self, values, data):
        index = sorted(values)
        drop = data.draw(st.sampled_from(sorted(set(index))))
        n = max(index)
        counts = [index.count(i) for i in range(1, n + 1)]
        counts[drop - 1] -= 1
        assert multinomial1_from_index(index, drop) == multinomial(counts)

    @given(st.lists(st.integers(1, 5), min_size=2, max_size=7))
    def test_sigma_sums_to_full_multiplicity(self, values):
        """sum over distinct i of sigma(i) == C(m; k): pinning each possible
        first index partitions the orbit."""
        index = sorted(values)
        total = sum(multinomial1_from_index(index, i) for i in set(index))
        assert total == multinomial_from_index(index)


class TestCounts:
    @pytest.mark.parametrize(
        "m,n,expected",
        [(3, 4, 20), (4, 3, 15), (2, 3, 6), (6, 3, 28), (8, 3, 45), (1, 5, 5)],
    )
    def test_num_unique_entries(self, m, n, expected):
        # 15/28/45 are the measurement minima quoted in Section IV
        assert num_unique_entries(m, n) == expected

    def test_num_total_entries(self):
        assert num_total_entries(4, 3) == 81  # "81 total entries" (Section V-A)

    def test_invalid_dims_raise(self):
        with pytest.raises(ValueError):
            num_unique_entries(0, 3)
        with pytest.raises(ValueError):
            num_total_entries(3, 0)

    @given(st.integers(2, 8))
    def test_savings_factor_approaches_m_factorial(self, m):
        """Property 1: n^m / C(m+n-1, m) -> m! as n grows."""
        lo = symmetry_savings_factor(m, 10)
        hi = symmetry_savings_factor(m, 200)
        assert lo < hi < math.factorial(m)
        # ratio is m! * prod(n/(n+i)) ~= m! (1 - m(m-1)/(2n))
        assert hi > (1 - m * m / 400) * math.factorial(m)

    @given(st.integers(1, 8), st.integers(1, 8))
    def test_unique_never_exceeds_total(self, m, n):
        assert num_unique_entries(m, n) <= num_total_entries(m, n)
