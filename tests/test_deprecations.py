"""Every deprecation shim warns exactly once per use, says what to use
instead, and blames the *caller* (correct ``stacklevel``), so downstream
code sees actionable ``-W error`` failures pointing at its own lines."""

import warnings
from importlib import import_module

import numpy as np
import pytest

import repro.kernels
from repro.core import adaptive_sshopm, multistart_sshopm, sshopm
from repro.engine import fleet_solve
from repro.symtensor import random_symmetric_batch, random_symmetric_tensor

THIS_FILE = __file__


def catch(fn):
    """Run ``fn`` recording all warnings; return the DeprecationWarnings."""
    with warnings.catch_warnings(record=True) as records:
        warnings.simplefilter("always")
        fn()
    return [r for r in records if issubclass(r.category, DeprecationWarning)]


@pytest.fixture(scope="module")
def tensor():
    return random_symmetric_tensor(3, 3, rng=9)


class TestMaxIterKeyword:
    def test_sshopm_warns_and_honors_value(self, tensor):
        with pytest.warns(DeprecationWarning, match="max_iter=.*max_iters="):
            res = sshopm(tensor, alpha=5.0, rng=0, max_iter=7)
        assert res.iterations <= 7

    def test_adaptive_warns(self, tensor):
        with pytest.warns(DeprecationWarning, match="max_iter="):
            adaptive_sshopm(tensor, rng=0, max_iter=7)

    def test_multistart_warns(self, tensor):
        with pytest.warns(DeprecationWarning, match="max_iter="):
            multistart_sshopm(tensor, num_starts=2, alpha=5.0, rng=0,
                              max_iter=7)

    def test_warning_blames_this_file(self, tensor):
        (record,) = catch(lambda: sshopm(tensor, alpha=5.0, rng=0, max_iter=5))
        assert record.filename == THIS_FILE

    def test_both_spellings_conflict(self, tensor):
        with pytest.raises(TypeError):
            with warnings.catch_warnings():
                warnings.simplefilter("ignore")
                sshopm(tensor, alpha=5.0, rng=0, max_iter=5, max_iters=9)

    def test_new_spelling_is_silent(self, tensor):
        assert catch(lambda: sshopm(tensor, alpha=5.0, rng=0, max_iters=5)) == []


class TestFlatKernelAliases:
    @pytest.mark.parametrize("name", [
        "ax_m_batched", "ax_m1_batched",
        "ax_m_blocked_batched", "ax_m1_blocked_batched",
    ])
    def test_alias_warns_and_still_works(self, name):
        with pytest.warns(DeprecationWarning, match=name):
            fn = getattr(repro.kernels, name)
        assert callable(fn)

    def test_alias_warning_blames_this_file(self):
        (record,) = catch(lambda: repro.kernels.ax_m_batched)
        assert record.filename == THIS_FILE

    def test_unknown_attribute_still_raises(self):
        with pytest.raises(AttributeError):
            repro.kernels.no_such_kernel


class TestGeneratorAliases:
    """The direct code-generator entry points are deprecated in favour of
    the repro.kernels.codegen emitter registry."""

    @pytest.mark.parametrize("name", [
        "make_unrolled", "generate_source", "generate_cuda_kernel",
    ])
    def test_package_alias_warns_and_points_at_registry(self, name):
        with pytest.warns(DeprecationWarning, match="emit") as records:
            fn = getattr(repro.kernels, name)
        assert callable(fn)
        assert name in str(records[0].message)

    def test_submodule_alias_warns(self):
        import repro.kernels.cudagen
        import repro.kernels.unrolled

        with pytest.warns(DeprecationWarning, match="make_unrolled"):
            repro.kernels.unrolled.make_unrolled
        with pytest.warns(DeprecationWarning, match="generate_source"):
            repro.kernels.unrolled.generate_source
        with pytest.warns(DeprecationWarning, match="generate_cuda_kernel"):
            repro.kernels.cudagen.generate_cuda_kernel

    def test_alias_warning_blames_this_file(self):
        (record,) = catch(lambda: repro.kernels.make_unrolled)
        assert record.filename == THIS_FILE

    def test_alias_still_works(self):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            gen = repro.kernels.make_unrolled(3, 3)
        assert gen.flops_scalar > 0

    def test_registry_path_is_silent(self):
        from repro.kernels.codegen import emit

        assert catch(lambda: emit(3, 3, "unrolled")) == []

    def test_package_import_is_warning_free(self):
        """Merely importing repro.kernels must not trip the shims."""
        import subprocess
        import sys
        import textwrap

        script = textwrap.dedent("""
            import warnings
            with warnings.catch_warnings(record=True) as records:
                warnings.simplefilter("always")
                import repro.kernels
            bad = [str(w.message) for w in records
                   if issubclass(w.category, DeprecationWarning)
                   and "repro" in str(w.message)]
            assert not bad, bad
        """)
        proc = subprocess.run([sys.executable, "-c", script],
                              capture_output=True, text=True)
        assert proc.returncode == 0, proc.stderr


class TestCoreSolverShims:
    """``repro.core.sshopm`` / ``repro.core.adaptive`` forward to
    :mod:`repro.solvers` with a caller-blaming warning (PR 10)."""

    def test_sshopm_module_attr_warns_and_forwards(self, tensor):
        legacy_mod = import_module("repro.core.sshopm")
        from repro.solvers.sshopm import sshopm as new_fn

        with pytest.warns(DeprecationWarning, match="repro.solvers"):
            fn = legacy_mod.sshopm
        assert fn is new_fn
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            res = fn(tensor, alpha=5.0, rng=0, max_iters=30)
        assert np.isfinite(res.eigenvalue)

    def test_adaptive_module_attr_warns_and_forwards(self):
        legacy_mod = import_module("repro.core.adaptive")
        from repro.solvers.adaptive import adaptive_sshopm as new_fn

        with pytest.warns(DeprecationWarning, match="repro.solvers"):
            fn = legacy_mod.adaptive_sshopm
        assert fn is new_fn

    def test_from_import_warns(self):
        with pytest.warns(DeprecationWarning, match="repro.solvers"):
            from repro.core.sshopm import suggested_shift  # noqa: F401

    def test_shim_warning_blames_this_file(self):
        legacy_mod = import_module("repro.core.sshopm")

        (record,) = catch(lambda: legacy_mod.sshopm)
        assert record.filename == THIS_FILE

    def test_unknown_attribute_still_raises(self):
        legacy_mod = import_module("repro.core.sshopm")

        with pytest.raises(AttributeError):
            legacy_mod.no_such_solver

    def test_package_reexports_stay_silent(self):
        """``from repro.core import sshopm`` (the *function*, via the
        package) is the supported spelling and must not warn."""
        assert catch(lambda: repro.core.sshopm) == []
        assert catch(lambda: repro.core.adaptive_sshopm) == []

    def test_package_import_is_warning_free(self):
        """Merely importing repro.core must not trip the solver shims."""
        import subprocess
        import sys
        import textwrap

        script = textwrap.dedent("""
            import warnings
            with warnings.catch_warnings(record=True) as records:
                warnings.simplefilter("always")
                import repro.core
            bad = [str(w.message) for w in records
                   if issubclass(w.category, DeprecationWarning)
                   and "repro" in str(w.message)]
            assert not bad, bad
            # the package attribute must stay the function, not the shim
            assert callable(repro.core.sshopm), type(repro.core.sshopm)
        """)
        proc = subprocess.run([sys.executable, "-c", script],
                              capture_output=True, text=True)
        assert proc.returncode == 0, proc.stderr


class TestRenamedResultFields:
    def test_multistart_total_sweeps_property(self, tensor):
        res = multistart_sshopm(tensor, num_starts=2, alpha=5.0, rng=0,
                                max_iters=50)
        with pytest.warns(DeprecationWarning, match="total_sweeps.*sweeps"):
            old = res.total_sweeps
        assert old == res.sweeps

    def test_fleet_total_sweeps_property(self):
        batch = random_symmetric_batch(2, 3, 3, rng=9)
        res = fleet_solve(batch, num_starts=2, alpha=5.0, rng=0, max_iters=50)
        with pytest.warns(DeprecationWarning, match="total_sweeps.*sweeps"):
            old = res.total_sweeps
        assert old == res.sweeps

    def test_field_warning_blames_this_file(self, tensor):
        res = multistart_sshopm(tensor, num_starts=2, alpha=5.0, rng=0,
                                max_iters=50)
        (record,) = catch(lambda: res.total_sweeps)
        assert record.filename == THIS_FILE

    def test_new_field_is_silent(self, tensor):
        res = multistart_sshopm(tensor, num_starts=2, alpha=5.0, rng=0,
                                max_iters=50)
        assert catch(lambda: res.sweeps) == []
