"""Every deprecation shim warns exactly once per use, says what to use
instead, and blames the *caller* (correct ``stacklevel``), so downstream
code sees actionable ``-W error`` failures pointing at its own lines."""

import warnings

import numpy as np
import pytest

import repro.kernels
from repro.core import adaptive_sshopm, multistart_sshopm, sshopm
from repro.engine import fleet_solve
from repro.symtensor import random_symmetric_batch, random_symmetric_tensor

THIS_FILE = __file__


def catch(fn):
    """Run ``fn`` recording all warnings; return the DeprecationWarnings."""
    with warnings.catch_warnings(record=True) as records:
        warnings.simplefilter("always")
        fn()
    return [r for r in records if issubclass(r.category, DeprecationWarning)]


@pytest.fixture(scope="module")
def tensor():
    return random_symmetric_tensor(3, 3, rng=9)


class TestMaxIterKeyword:
    def test_sshopm_warns_and_honors_value(self, tensor):
        with pytest.warns(DeprecationWarning, match="max_iter=.*max_iters="):
            res = sshopm(tensor, alpha=5.0, rng=0, max_iter=7)
        assert res.iterations <= 7

    def test_adaptive_warns(self, tensor):
        with pytest.warns(DeprecationWarning, match="max_iter="):
            adaptive_sshopm(tensor, rng=0, max_iter=7)

    def test_multistart_warns(self, tensor):
        with pytest.warns(DeprecationWarning, match="max_iter="):
            multistart_sshopm(tensor, num_starts=2, alpha=5.0, rng=0,
                              max_iter=7)

    def test_warning_blames_this_file(self, tensor):
        (record,) = catch(lambda: sshopm(tensor, alpha=5.0, rng=0, max_iter=5))
        assert record.filename == THIS_FILE

    def test_both_spellings_conflict(self, tensor):
        with pytest.raises(TypeError):
            with warnings.catch_warnings():
                warnings.simplefilter("ignore")
                sshopm(tensor, alpha=5.0, rng=0, max_iter=5, max_iters=9)

    def test_new_spelling_is_silent(self, tensor):
        assert catch(lambda: sshopm(tensor, alpha=5.0, rng=0, max_iters=5)) == []


class TestFlatKernelAliases:
    @pytest.mark.parametrize("name", [
        "ax_m_batched", "ax_m1_batched",
        "ax_m_blocked_batched", "ax_m1_blocked_batched",
    ])
    def test_alias_warns_and_still_works(self, name):
        with pytest.warns(DeprecationWarning, match=name):
            fn = getattr(repro.kernels, name)
        assert callable(fn)

    def test_alias_warning_blames_this_file(self):
        (record,) = catch(lambda: repro.kernels.ax_m_batched)
        assert record.filename == THIS_FILE

    def test_unknown_attribute_still_raises(self):
        with pytest.raises(AttributeError):
            repro.kernels.no_such_kernel


class TestGeneratorAliases:
    """The direct code-generator entry points are deprecated in favour of
    the repro.kernels.codegen emitter registry."""

    @pytest.mark.parametrize("name", [
        "make_unrolled", "generate_source", "generate_cuda_kernel",
    ])
    def test_package_alias_warns_and_points_at_registry(self, name):
        with pytest.warns(DeprecationWarning, match="emit") as records:
            fn = getattr(repro.kernels, name)
        assert callable(fn)
        assert name in str(records[0].message)

    def test_submodule_alias_warns(self):
        import repro.kernels.cudagen
        import repro.kernels.unrolled

        with pytest.warns(DeprecationWarning, match="make_unrolled"):
            repro.kernels.unrolled.make_unrolled
        with pytest.warns(DeprecationWarning, match="generate_source"):
            repro.kernels.unrolled.generate_source
        with pytest.warns(DeprecationWarning, match="generate_cuda_kernel"):
            repro.kernels.cudagen.generate_cuda_kernel

    def test_alias_warning_blames_this_file(self):
        (record,) = catch(lambda: repro.kernels.make_unrolled)
        assert record.filename == THIS_FILE

    def test_alias_still_works(self):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            gen = repro.kernels.make_unrolled(3, 3)
        assert gen.flops_scalar > 0

    def test_registry_path_is_silent(self):
        from repro.kernels.codegen import emit

        assert catch(lambda: emit(3, 3, "unrolled")) == []

    def test_package_import_is_warning_free(self):
        """Merely importing repro.kernels must not trip the shims."""
        import subprocess
        import sys
        import textwrap

        script = textwrap.dedent("""
            import warnings
            with warnings.catch_warnings(record=True) as records:
                warnings.simplefilter("always")
                import repro.kernels
            bad = [str(w.message) for w in records
                   if issubclass(w.category, DeprecationWarning)
                   and "repro" in str(w.message)]
            assert not bad, bad
        """)
        proc = subprocess.run([sys.executable, "-c", script],
                              capture_output=True, text=True)
        assert proc.returncode == 0, proc.stderr


class TestRenamedResultFields:
    def test_multistart_total_sweeps_property(self, tensor):
        res = multistart_sshopm(tensor, num_starts=2, alpha=5.0, rng=0,
                                max_iters=50)
        with pytest.warns(DeprecationWarning, match="total_sweeps.*sweeps"):
            old = res.total_sweeps
        assert old == res.sweeps

    def test_fleet_total_sweeps_property(self):
        batch = random_symmetric_batch(2, 3, 3, rng=9)
        res = fleet_solve(batch, num_starts=2, alpha=5.0, rng=0, max_iters=50)
        with pytest.warns(DeprecationWarning, match="total_sweeps.*sweeps"):
            old = res.total_sweeps
        assert old == res.sweeps

    def test_field_warning_blames_this_file(self, tensor):
        res = multistart_sshopm(tensor, num_starts=2, alpha=5.0, rng=0,
                                max_iters=50)
        (record,) = catch(lambda: res.total_sweeps)
        assert record.filename == THIS_FILE

    def test_new_field_is_silent(self, tensor):
        res = multistart_sshopm(tensor, num_starts=2, alpha=5.0, rng=0,
                                max_iters=50)
        assert catch(lambda: res.sweeps) == []
