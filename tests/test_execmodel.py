"""Tests for the event-driven grid execution simulator."""

import numpy as np
import pytest

from repro.gpu.device import TESLA_C2050, DeviceSpec
from repro.gpu.execmodel import simulate_grid
from repro.gpu.kernelspec import KernelLaunch
from repro.gpu.occupancy import compute_occupancy


def toy_device(num_sms=2, warps_full=4):
    return DeviceSpec(
        name="toy",
        num_sms=num_sms,
        cores_per_sm=32,
        clock_ghz=1.0,
        warps_full_pipeline=warps_full,
    )


def toy_launch(threads=128, regs=10, smem=64):
    return KernelLaunch(
        name="toy-kernel",
        threads_per_block=threads,
        registers_per_thread=regs,
        shared_mem_per_block=smem,
        flops_per_thread_iter=10.0,
        instr_per_thread_iter=12.0,
    )


class TestSingleBlock:
    def test_single_block_analytic_time(self):
        """One block of 4 warps on an SM needing 4 warps for full pipeline:
        rate = 1 warp-instr/cycle, so cycles == work."""
        dev = toy_device()
        launch = toy_launch(threads=128)
        occ = compute_occupancy(dev, launch)
        rep = simulate_grid(dev, launch, occ, block_work=1000.0, num_blocks=1)
        assert np.isclose(rep.cycles, 1000.0)
        assert rep.blocks_executed == 1

    def test_underfilled_pipeline_slows_down(self):
        """A 1-warp block on an SM needing 4 warps runs at 1/4 rate."""
        dev = toy_device()
        launch = toy_launch(threads=32)
        occ = compute_occupancy(dev, launch)
        rep = simulate_grid(dev, launch, occ, block_work=1000.0, num_blocks=1)
        assert np.isclose(rep.cycles, 4000.0)

    def test_issue_efficiency_scales_time(self):
        dev = toy_device()
        launch = toy_launch()
        occ = compute_occupancy(dev, launch)
        a = simulate_grid(dev, launch, occ, 1000.0, 1, issue_efficiency=1.0)
        b = simulate_grid(dev, launch, occ, 1000.0, 1, issue_efficiency=0.5)
        assert np.isclose(b.cycles, 2 * a.cycles)


class TestWaves:
    def test_uniform_waves_match_analytic(self):
        """With full pipeline per block, T identical blocks on S SMs with B
        resident each take ceil-ish waves; per-block rate on k resident
        blocks at full pipeline is 1/k, so a full SM finishes k blocks in
        k * work cycles — makespan == (blocks on busiest SM) * work."""
        dev = toy_device(num_sms=2, warps_full=4)
        launch = toy_launch(threads=128)  # 4 warps/block -> full at 1 block
        occ = compute_occupancy(dev, launch)
        # 8 slots per SM (block cap); 16 blocks over 2 SMs -> 8 each
        rep = simulate_grid(dev, launch, occ, 100.0, 16)
        assert np.isclose(rep.cycles, 8 * 100.0)
        assert np.isclose(rep.issue_utilization, 1.0, atol=1e-9)

    def test_remainder_tail(self):
        dev = toy_device(num_sms=2)
        launch = toy_launch(threads=128)
        occ = compute_occupancy(dev, launch)
        even = simulate_grid(dev, launch, occ, 100.0, 16)
        odd = simulate_grid(dev, launch, occ, 100.0, 17)
        assert odd.cycles > even.cycles

    def test_throughput_ramps_with_blocks(self):
        """Figure 5's structural ramp: per-block time constant, so total
        throughput grows until all SMs are saturated."""
        dev = TESLA_C2050
        launch = toy_launch(threads=128)
        occ = compute_occupancy(dev, launch)
        rates = []
        for T in (1, 7, 14, 56, 112, 448):
            rep = simulate_grid(dev, launch, occ, 1000.0, T)
            rates.append(T / rep.cycles)
        assert all(r2 >= r1 * 0.99 for r1, r2 in zip(rates, rates[1:]))
        # saturation: doubling blocks past full residency doesn't double rate
        rep1 = simulate_grid(dev, launch, occ, 1000.0, 448)
        rep2 = simulate_grid(dev, launch, occ, 1000.0, 896)
        assert rep2.cycles > rep1.cycles * 1.9


class TestHeterogeneousWork:
    def test_work_conservation(self):
        """Total issued warp-instructions equals total work submitted."""
        dev = toy_device()
        launch = toy_launch(threads=128)
        occ = compute_occupancy(dev, launch)
        rng = np.random.default_rng(0)
        work = rng.uniform(50, 500, size=37)
        rep = simulate_grid(dev, launch, occ, work)
        capacity = dev.num_sms * 1.0 * rep.cycles  # base rate 1/cycle/SM
        assert rep.issue_utilization <= 1.0
        assert np.isclose(rep.issue_utilization * capacity, work.sum(), rtol=1e-6)

    def test_heterogeneous_longer_than_uniform_mean(self):
        dev = toy_device(num_sms=1)
        launch = toy_launch(threads=128)
        occ = compute_occupancy(dev, launch)
        work = np.array([100.0, 900.0])
        uneven = simulate_grid(dev, launch, occ, work)
        even = simulate_grid(dev, launch, occ, 500.0, 2)
        assert uneven.cycles >= even.cycles * 0.999

    def test_seconds_scale_with_clock(self):
        launch = toy_launch()
        d1 = toy_device()
        d2 = DeviceSpec(name="fast", num_sms=2, cores_per_sm=32, clock_ghz=2.0,
                        warps_full_pipeline=4)
        r1 = simulate_grid(d1, launch, compute_occupancy(d1, launch), 100.0, 4)
        r2 = simulate_grid(d2, launch, compute_occupancy(d2, launch), 100.0, 4)
        assert np.isclose(r1.seconds, 2 * r2.seconds)


class TestEdgeCases:
    def test_zero_blocks(self):
        dev = toy_device()
        launch = toy_launch()
        occ = compute_occupancy(dev, launch)
        rep = simulate_grid(dev, launch, occ, np.zeros(0))
        assert rep.cycles == 0.0
        assert rep.blocks_executed == 0

    def test_scalar_work_requires_num_blocks(self):
        dev = toy_device()
        launch = toy_launch()
        occ = compute_occupancy(dev, launch)
        with pytest.raises(ValueError):
            simulate_grid(dev, launch, occ, 100.0)

    def test_nonpositive_work_rejected(self):
        dev = toy_device()
        launch = toy_launch()
        occ = compute_occupancy(dev, launch)
        with pytest.raises(ValueError):
            simulate_grid(dev, launch, occ, np.array([10.0, 0.0]))

    def test_unlaunchable_kernel_rejected(self):
        dev = toy_device()
        launch = toy_launch(smem=10**7)
        occ = compute_occupancy(dev, launch)
        with pytest.raises(ValueError):
            simulate_grid(dev, launch, occ, 100.0, 4)

    def test_many_blocks_complete(self):
        dev = TESLA_C2050
        launch = toy_launch()
        occ = compute_occupancy(dev, launch)
        rep = simulate_grid(dev, launch, occ, 50.0, 1024)
        assert rep.blocks_executed == 1024
        assert rep.waves == pytest.approx(1024 / (14 * occ.blocks_per_sm))
