"""Fleet solve engine: correctness against the reference path, lane
retirement/isolation, compaction accounting, plan-cache behavior, the
adaptive per-lane shift, and the parallel sharding wrapper."""

import numpy as np
import pytest

from repro.core import multistart_sshopm, suggested_shift
from repro.core.results import FleetResult
from repro.engine import fleet_solve, suggested_shifts
from repro.instrument.metrics import use_registry
from repro.kernels.plan import clear_plan_cache, get_plan
from repro.parallel import parallel_fleet_solve
from repro.resilience import SolveFailure
from repro.symtensor import (
    SymmetricTensorBatch,
    kolda_mayo_example_3x3x3,
    random_symmetric_batch,
)


def shared_starts(num, n, seed=1):
    rng = np.random.default_rng(seed)
    starts = rng.standard_normal((num, n))
    return starts / np.linalg.norm(starts, axis=1, keepdims=True)


@pytest.fixture(scope="module")
def small_batch():
    return random_symmetric_batch(6, 3, 4, rng=3)


class TestEquivalence:
    def test_matches_looped_multistart(self, small_batch):
        starts = shared_starts(16, small_batch.n)
        fr = fleet_solve(small_batch, starts=starts, alpha=4.0,
                         tol=1e-10, max_iters=400)
        for t in range(len(small_batch)):
            ref = multistart_sshopm(small_batch[t], starts=starts,
                                    alpha=4.0, tol=1e-10, max_iters=400)
            got = np.sort(fr.eigenvalues[t][fr.converged[t]])
            want = np.sort(ref.eigenvalues[ref.converged])
            assert got.shape == want.shape
            np.testing.assert_allclose(got, want, atol=1e-6)

    def test_eigenpairs_match_within_dedup_tolerance(self, small_batch):
        starts = shared_starts(16, small_batch.n)
        fr = fleet_solve(small_batch, starts=starts, alpha=4.0,
                         tol=1e-10, max_iters=400)
        spectra = fr.eigenpairs()
        assert len(spectra) == len(small_batch)
        for t, pairs in enumerate(spectra):
            ref = multistart_sshopm(small_batch[t], starts=starts,
                                    alpha=4.0, tol=1e-10, max_iters=400)
            ref_pairs = ref.eigenpairs(small_batch[t])[0]
            got = sorted(round(p.eigenvalue, 5) for p in pairs)
            want = sorted(round(p.eigenvalue, 5) for p in ref_pairs)
            assert got == want

    def test_result_shapes_and_summary(self, small_batch):
        fr = fleet_solve(small_batch, num_starts=8, alpha=4.0, rng=0,
                         tol=1e-9, max_iters=200)
        T, V = len(small_batch), 8
        assert isinstance(fr, FleetResult)
        assert fr.eigenvalues.shape == (T, V)
        assert fr.eigenvectors.shape == (T, V, small_batch.n)
        assert fr.converged.shape == (T, V)
        assert fr.iterations.shape == (T, V)
        assert fr.num_tensors == T and fr.num_starts == V
        assert 0.0 <= fr.converged_fraction() <= 1.0
        assert f"{T} tensors x {V} starts" in fr.summary()

    def test_suggested_shifts_match_per_tensor(self, small_batch):
        per = suggested_shifts(small_batch)
        assert per.shape == (len(small_batch),)
        for t in range(len(small_batch)):
            assert per[t] == pytest.approx(suggested_shift(small_batch[t]))


class TestLaneIsolation:
    def test_nan_tensor_retires_without_poisoning_batch(self):
        batch = random_symmetric_batch(5, 3, 3, rng=7)
        values = batch.values.copy()
        values[2] = np.nan  # one tensor is numerically dead on arrival
        poisoned = SymmetricTensorBatch(values, batch.m, batch.n)
        fr = fleet_solve(poisoned, num_starts=8, alpha=6.0, rng=0,
                         tol=1e-9, max_iters=1000)
        assert fr.failed[2].all()
        assert not fr.converged[2].any()
        healthy = [t for t in range(5) if t != 2]
        for t in healthy:
            assert fr.converged[t].all()
            assert not fr.failed[t].any()
            assert np.isfinite(fr.eigenvalues[t]).all()

    def test_total_collapse_raises_with_guards(self):
        batch = random_symmetric_batch(3, 3, 3, rng=7)
        values = np.full_like(batch.values, np.nan)
        doomed = SymmetricTensorBatch(values, batch.m, batch.n)
        with pytest.raises(SolveFailure) as exc:
            fleet_solve(doomed, num_starts=4, alpha=4.0, rng=0,
                        max_iters=50, guards=True)
        assert exc.value.reason == "collapse"

    def test_total_collapse_without_guards_returns_failed_result(self):
        batch = random_symmetric_batch(3, 3, 3, rng=7)
        values = np.full_like(batch.values, np.nan)
        doomed = SymmetricTensorBatch(values, batch.m, batch.n)
        fr = fleet_solve(doomed, num_starts=4, alpha=4.0, rng=0, max_iters=50)
        assert fr.failed.all()
        assert not fr.converged.any()


class TestCompaction:
    def test_compactions_counted_and_metered(self, small_batch):
        with use_registry() as reg:
            fr = fleet_solve(small_batch, num_starts=8, alpha=4.0, rng=0,
                             tol=1e-9, max_iters=400, compact_every=2)
        assert fr.compactions >= 1
        compactions = reg.counter("repro_fleet_compactions_total")
        assert compactions.value == fr.compactions

    def test_compact_every_validation(self, small_batch):
        with pytest.raises(ValueError, match="compact_every"):
            fleet_solve(small_batch, num_starts=4, compact_every=0)

    def test_compaction_interval_does_not_change_answers(self, small_batch):
        starts = shared_starts(8, small_batch.n)
        a = fleet_solve(small_batch, starts=starts, alpha=4.0,
                        tol=1e-10, max_iters=400, compact_every=1)
        b = fleet_solve(small_batch, starts=starts, alpha=4.0,
                        tol=1e-10, max_iters=400, compact_every=100)
        np.testing.assert_array_equal(a.converged, b.converged)
        np.testing.assert_allclose(
            a.eigenvalues[a.converged], b.eigenvalues[b.converged], atol=1e-9)


class TestPlanCache:
    def test_second_lookup_hits(self):
        clear_plan_cache()
        with use_registry() as reg:
            p1 = get_plan(3, 4, "vectorized")
            p2 = get_plan(3, 4, "vectorized")
        assert p1 is p2
        events = reg.counter("repro_plan_cache_events_total",
                             labelnames=("event",))
        assert events.labels(event="miss").value == 1
        assert events.labels(event="hit").value == 1

    def test_fleet_reuses_cached_plan(self, small_batch):
        clear_plan_cache()
        fleet_solve(small_batch, num_starts=4, alpha=4.0, rng=0, max_iters=50)
        with use_registry() as reg:
            fleet_solve(small_batch, num_starts=4, alpha=4.0, rng=0,
                        max_iters=50)
        events = reg.counter("repro_plan_cache_events_total",
                             labelnames=("event",))
        assert events.labels(event="hit").value >= 1
        assert events.labels(event="miss").value == 0


class TestAdaptive:
    def test_adaptive_escalates_oscillating_lanes(self):
        # alpha = 0 on the Kolda-Mayo example oscillates; the fleet's
        # per-lane escalation must rescue lanes without a global restart
        tensor = kolda_mayo_example_3x3x3()
        batch = SymmetricTensorBatch(
            np.stack([tensor.values] * 4), tensor.m, tensor.n)
        fr = fleet_solve(batch, num_starts=16, alpha=0.0, rng=2,
                         tol=1e-10, max_iters=800, adaptive=True)
        assert fr.converged.mean() > 0.9
        assert fr.shifts is not None
        assert (np.abs(fr.shifts) > 0).any()  # some lanes escalated

    def test_fixed_shift_spectra_unchanged_by_adaptive_flag_when_converging(self):
        batch = random_symmetric_batch(3, 3, 3, rng=11)
        starts = shared_starts(8, 3)
        fixed = fleet_solve(batch, starts=starts, alpha=5.0,
                            tol=1e-10, max_iters=400)
        adapt = fleet_solve(batch, starts=starts, alpha=5.0,
                            tol=1e-10, max_iters=400, adaptive=True)
        # a sufficiently convex shift never oscillates, so adaptive mode
        # must leave the trajectories untouched
        np.testing.assert_allclose(
            fixed.eigenvalues[fixed.converged],
            adapt.eigenvalues[adapt.converged], atol=1e-9)


class TestParallel:
    def test_sharded_matches_single_worker(self, small_batch):
        starts = shared_starts(8, small_batch.n)
        one = parallel_fleet_solve(small_batch, workers=1, starts=starts,
                                   alpha=4.0, tol=1e-10, max_iters=400)
        two = parallel_fleet_solve(small_batch, workers=2, starts=starts,
                                   alpha=4.0, tol=1e-10, max_iters=400)
        np.testing.assert_array_equal(one.result.converged,
                                      two.result.converged)
        np.testing.assert_allclose(one.result.eigenvalues,
                                   two.result.eigenvalues, atol=1e-9,
                                   equal_nan=True)
        assert two.workers == 2
        assert sum(two.shard_sizes) == len(small_batch)

    def test_report_carries_timing(self, small_batch):
        rep = parallel_fleet_solve(small_batch, workers=2, num_starts=4,
                                   alpha=4.0, rng=0, max_iters=100)
        assert rep.seconds > 0
        assert len(rep.shard_seconds) == len(rep.shard_sizes)
