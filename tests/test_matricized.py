"""Tests for the matricized general-tensor baseline (Table II caption)."""

import numpy as np
import pytest

from repro.kernels.matricized import ax_m1_matricized, ax_m_matricized, fold, unfold
from repro.kernels.reference import ax_m1_dense, ax_m_dense
from repro.symtensor.random import random_symmetric_tensor
from repro.util.flopcount import FlopCounter


class TestUnfold:
    def test_round_trip_all_modes(self, rng):
        dense = rng.normal(size=(3, 3, 3, 3))
        for mode in range(4):
            mat = unfold(dense, mode)
            assert mat.shape == (3, 27)
            assert np.array_equal(fold(mat, mode, dense.shape), dense)

    def test_mode_zero_is_plain_reshape(self, rng):
        dense = rng.normal(size=(2, 2, 2))
        assert np.array_equal(unfold(dense, 0), dense.reshape(2, 4))

    def test_fibers_are_columns(self, rng):
        dense = rng.normal(size=(3, 3, 3))
        mat = unfold(dense, 1)
        # column 0 holds the fiber dense[0, :, 0]
        assert np.array_equal(mat[:, 0], dense[0, :, 0])

    def test_mode_validation(self, rng):
        dense = rng.normal(size=(2, 2))
        with pytest.raises(ValueError):
            unfold(dense, 2)
        with pytest.raises(ValueError):
            fold(np.zeros((2, 2)), -1, (2, 2))


class TestMatricizedKernels:
    def test_matches_reference(self, size, rng):
        m, n = size
        dense = random_symmetric_tensor(m, n, rng=rng).to_dense()
        x = rng.normal(size=n)
        assert np.isclose(ax_m_matricized(dense, x), ax_m_dense(dense, x))
        assert np.allclose(ax_m1_matricized(dense, x), ax_m1_dense(dense, x))

    def test_works_on_nonsymmetric_tensors(self, rng):
        """The general path must not assume symmetry."""
        dense = rng.normal(size=(3, 3, 3))
        x = rng.normal(size=3)
        expected = np.einsum("ijk,j,k->i", dense, x, x)
        assert np.allclose(ax_m1_matricized(dense, x), expected)

    def test_flop_count_is_2nm_leading(self, rng):
        """Table II: general cost 2 n^m + O(n^{m-1})."""
        m, n = 4, 5
        dense = random_symmetric_tensor(m, n, rng=rng).to_dense()
        counter = FlopCounter()
        ax_m_matricized(dense, rng.normal(size=n), counter=counter)
        expected = sum(2 * n**k for k in range(1, m + 1))
        assert counter.flops == expected
        assert counter.flops < 2 * n**m * (1 + 2.0 / n)

    def test_x_shape_validation(self, rng):
        dense = random_symmetric_tensor(3, 3, rng=rng).to_dense()
        with pytest.raises(ValueError):
            ax_m1_matricized(dense, np.zeros(4))
