"""Tests for the CUDA occupancy calculator."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.gpu.device import TESLA_C2050, DeviceSpec
from repro.gpu.kernelspec import KernelLaunch, sshopm_launch
from repro.gpu.occupancy import compute_occupancy


def launch_with(threads=128, regs=18, smem=60, name="t"):
    return KernelLaunch(
        name=name,
        threads_per_block=threads,
        registers_per_thread=regs,
        shared_mem_per_block=smem,
        flops_per_thread_iter=100.0,
        instr_per_thread_iter=120.0,
    )


class TestLimits:
    def test_paper_kernel_fully_resident(self):
        """m=4, n=3 unrolled with V=128: light footprint, limited only by
        the hardware block cap."""
        occ = compute_occupancy(TESLA_C2050, sshopm_launch(4, 3))
        assert occ.blocks_per_sm == TESLA_C2050.max_blocks_per_sm
        assert occ.limiting_factor == "blocks"
        assert occ.launchable

    def test_thread_limit(self):
        occ = compute_occupancy(TESLA_C2050, launch_with(threads=1024, regs=4, smem=0))
        assert occ.blocks_per_sm == 1  # 1536 // 1024
        assert occ.limiting_factor == "threads"

    def test_register_limit(self):
        occ = compute_occupancy(TESLA_C2050, launch_with(regs=60, threads=128))
        # 32768 // (60*128) = 4
        assert occ.blocks_per_sm == 4
        assert occ.limiting_factor == "registers"

    def test_shared_mem_limit(self):
        occ = compute_occupancy(TESLA_C2050, launch_with(smem=20000))
        assert occ.blocks_per_sm == 2  # 49152 // 20000
        assert occ.limiting_factor == "shared_mem"

    def test_unlaunchable_block_too_large(self):
        occ = compute_occupancy(TESLA_C2050, launch_with(threads=2048))
        assert not occ.launchable
        assert occ.limiting_factor == "unlaunchable"

    def test_unlaunchable_shared_mem(self):
        occ = compute_occupancy(TESLA_C2050, launch_with(smem=10**6))
        assert not occ.launchable

    def test_spill_detection(self):
        occ = compute_occupancy(TESLA_C2050, launch_with(regs=80))
        assert occ.spilled_registers == 80 - TESLA_C2050.max_registers_per_thread
        assert occ.launchable  # clamped to the cap, still launches

    def test_zero_threads_rejected(self):
        with pytest.raises(ValueError):
            compute_occupancy(TESLA_C2050, launch_with(threads=0))


class TestProperties:
    @given(st.integers(1, 63), st.integers(0, 4096))
    def test_never_exceeds_device_limits(self, regs, smem):
        occ = compute_occupancy(TESLA_C2050, launch_with(regs=regs, smem=smem))
        dev = TESLA_C2050
        assert occ.blocks_per_sm <= dev.max_blocks_per_sm
        assert occ.blocks_per_sm * 128 <= dev.max_threads_per_sm
        assert occ.blocks_per_sm * regs * 128 <= dev.registers_per_sm
        if smem:
            assert occ.blocks_per_sm * smem <= dev.shared_mem_per_sm
        assert 0.0 <= occ.occupancy <= 1.0

    @given(st.integers(1, 120))
    def test_monotone_in_registers(self, regs):
        a = compute_occupancy(TESLA_C2050, launch_with(regs=regs))
        b = compute_occupancy(TESLA_C2050, launch_with(regs=regs + 8))
        assert b.blocks_per_sm <= a.blocks_per_sm

    @given(st.integers(0, 48000))
    def test_monotone_in_shared_mem(self, smem):
        a = compute_occupancy(TESLA_C2050, launch_with(smem=smem))
        b = compute_occupancy(TESLA_C2050, launch_with(smem=smem + 4096))
        assert b.blocks_per_sm <= a.blocks_per_sm


class TestSectionVEFalloff:
    def test_occupancy_drops_past_threshold(self):
        """Section V-E: 'decreased performance for tensor sizes past a
        threshold of around order 4 and dimension 5' — the resource model
        must show full residency at the paper's size and reduced residency
        beyond the threshold."""
        at_app_size = compute_occupancy(TESLA_C2050, sshopm_launch(4, 3))
        past = compute_occupancy(TESLA_C2050, sshopm_launch(4, 6))
        assert at_app_size.blocks_per_sm == TESLA_C2050.max_blocks_per_sm
        assert past.blocks_per_sm < at_app_size.blocks_per_sm

    def test_growth_is_monotone_in_dimension(self):
        blocks = [
            compute_occupancy(TESLA_C2050, sshopm_launch(4, n)).blocks_per_sm
            for n in (3, 4, 5, 6, 7)
        ]
        assert all(b2 <= b1 for b1, b2 in zip(blocks, blocks[1:]))

    def test_general_variant_shared_mem_grows_with_order(self):
        s3 = sshopm_launch(4, 3, variant="general").shared_mem_per_block
        s6 = sshopm_launch(6, 3, variant="general").shared_mem_per_block
        assert s6 > s3
