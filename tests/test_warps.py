"""Tests for SIMT warp-divergence accounting."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.gpu.perfmodel import predict_sshopm
from repro.gpu.warps import divergence_adjusted_iterations, warp_profile


class TestWarpProfile:
    def test_uniform_lanes_full_efficiency(self):
        iters = np.full((4, 64), 25)
        prof = warp_profile(iters)
        assert prof.simt_efficiency == 1.0
        assert np.all(prof.warp_iterations == 25)
        assert np.all(prof.block_iterations == 50)  # 2 warps x 25

    def test_divergent_lanes_lose_efficiency(self):
        iters = np.full((1, 32), 10)
        iters[0, 0] = 40  # one slow lane stalls the whole warp
        prof = warp_profile(iters)
        assert np.isclose(prof.warp_iterations[0, 0], 40)
        useful = 31 * 10 + 40
        issued = 40 * 32
        assert np.isclose(prof.simt_efficiency, useful / issued)

    def test_warp_boundaries_respected(self):
        """Fast lanes in one warp are not stalled by a slow lane in another."""
        iters = np.full((1, 64), 10)
        iters[0, 0] = 100  # slow lane in warp 0 only
        prof = warp_profile(iters)
        assert prof.warp_iterations[0, 0] == 100
        assert prof.warp_iterations[0, 1] == 10

    def test_ragged_final_warp(self):
        iters = np.full((2, 40), 5)  # 32 + 8 lanes
        prof = warp_profile(iters)
        assert prof.warp_iterations.shape == (2, 2)
        assert prof.simt_efficiency == 1.0

    def test_summary_stats(self):
        iters = np.array([[1, 2], [3, 4]])
        prof = warp_profile(iters, warp_size=2)
        assert prof.mean_iterations == 2.5
        assert prof.max_iterations == 4

    def test_validation(self):
        with pytest.raises(ValueError):
            warp_profile(np.ones(5))
        with pytest.raises(ValueError):
            warp_profile(np.ones((2, 4)), warp_size=0)
        with pytest.raises(ValueError):
            warp_profile(np.array([[1, -1]]))

    @given(
        arrays(np.int64, (3, 37), elements=st.integers(1, 200)),
        st.sampled_from([1, 4, 32, 64]),
    )
    @settings(max_examples=30)
    def test_efficiency_bounds_property(self, iters, warp_size):
        prof = warp_profile(iters, warp_size=warp_size)
        assert 0 < prof.simt_efficiency <= 1.0
        # warp max >= lane mean; block work >= per-warp mean work
        assert prof.warp_iterations.max() <= prof.max_iterations
        if warp_size == 1:
            # scalar "warps": no divergence possible
            assert np.isclose(prof.simt_efficiency, 1.0)

    @given(arrays(np.int64, (2, 64), elements=st.integers(1, 50)))
    @settings(max_examples=30)
    def test_adjusted_iterations_dominate_mean(self, iters):
        """Divergence can only add work: warp-adjusted per-block iterations
        are >= the block's lane-mean iterations."""
        adj = divergence_adjusted_iterations(iters)
        lane_mean = iters.mean(axis=1)
        assert np.all(adj >= lane_mean - 1e-9)


class TestModelIntegration:
    def test_divergence_slows_prediction(self):
        rng = np.random.default_rng(0)
        uniform = np.full((256, 128), 20.0)
        ragged = rng.integers(5, 60, size=(256, 128)).astype(float)
        ragged *= 20.0 / ragged.mean()  # same mean work
        t_uniform = predict_sshopm(
            num_tensors=256, iterations=divergence_adjusted_iterations(uniform)
        ).seconds
        t_ragged = predict_sshopm(
            num_tensors=256, iterations=divergence_adjusted_iterations(ragged)
        ).seconds
        assert t_ragged > t_uniform

    def test_real_solver_divergence(self, rng):
        """Measured convergence data from the actual solver feeds through."""
        from repro.core.multistart import multistart_sshopm
        from repro.symtensor.random import random_symmetric_batch

        batch = random_symmetric_batch(16, 4, 3, rng=rng)
        res = multistart_sshopm(batch, num_starts=64, alpha=3.0, rng=1,
                                tol=1e-8, max_iters=500)
        iters = np.maximum(res.iterations, 1)
        prof = warp_profile(iters)
        assert 0 < prof.simt_efficiency <= 1.0
        pred = predict_sshopm(
            num_tensors=16, iterations=divergence_adjusted_iterations(iters)
        )
        assert pred.seconds > 0
