"""Tests for the roofline/traffic analysis of the SS-HOPM launch."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.gpu.device import GTX_480, TESLA_C1060, TESLA_C2050
from repro.gpu.kernelspec import FLOAT_BYTES
from repro.gpu.perfmodel import predict_sshopm
from repro.gpu.roofline import analyze_traffic, is_compute_bound, roofline_gflops
from repro.util.combinatorics import num_unique_entries


class TestTraffic:
    def test_paper_data_volumes(self):
        """Section V-C byte accounting for T=1024, U=15, V=128, n=3."""
        a = analyze_traffic(iterations=40.0)
        T, U, V, n = 1024, 15, 128, 3
        expected = FLOAT_BYTES * (T * U + V * n + T * V * n + T * V)
        assert a.dram_bytes == expected

    def test_flops_scale_with_iterations(self):
        a = analyze_traffic(iterations=10.0)
        b = analyze_traffic(iterations=20.0)
        assert np.isclose(b.total_flops, 2 * a.total_flops)
        assert b.arithmetic_intensity > a.arithmetic_intensity

    def test_paper_launch_is_strongly_compute_bound(self):
        """The whole point of Section V-C: data lives on-chip, so the
        kernel is far above the memory roof on every modeled device."""
        a = analyze_traffic(iterations=40.0)
        assert a.arithmetic_intensity > 100
        for dev in (TESLA_C2050, TESLA_C1060, GTX_480):
            assert is_compute_bound(dev, a)

    def test_memory_bound_regime_exists(self):
        """With almost no iterations per load, the launch becomes
        bandwidth-limited — the regime the on-chip strategy avoids."""
        a = analyze_traffic(iterations=0.2)
        assert not is_compute_bound(TESLA_C2050, a)

    def test_validation(self):
        with pytest.raises(ValueError):
            analyze_traffic(num_tensors=0)
        with pytest.raises(ValueError):
            analyze_traffic(iterations=0)
        with pytest.raises(ValueError):
            roofline_gflops(TESLA_C2050, -1.0)


class TestRooflineBound:
    def test_bound_shape(self):
        assert roofline_gflops(TESLA_C2050, 0.0) == 0.0
        assert roofline_gflops(TESLA_C2050, 1e9) == TESLA_C2050.peak_gflops
        knee = TESLA_C2050.peak_gflops / TESLA_C2050.mem_bandwidth_gbs
        assert np.isclose(
            roofline_gflops(TESLA_C2050, knee), TESLA_C2050.peak_gflops
        )

    @given(st.floats(0, 1e4, allow_nan=False))
    def test_monotone_in_intensity(self, ai):
        assert roofline_gflops(TESLA_C2050, ai) <= roofline_gflops(TESLA_C2050, ai + 1)

    def test_perfmodel_respects_roofline(self):
        """The issue-rate model's prediction must not exceed the roofline
        bound for the same launch (consistency between the two models)."""
        a = analyze_traffic(iterations=40.0)
        p = predict_sshopm(iterations=40.0, variant="unrolled")
        assert p.gflops <= roofline_gflops(TESLA_C2050, a.arithmetic_intensity)

    def test_intensity_grows_with_order(self):
        """Higher order at fixed dimension means more on-chip work per
        (small, fixed-size) output — intensity increases, reinforcing that
        the application kernel only gets more compute-bound as m grows."""
        small = analyze_traffic(m=4, n=3, iterations=40.0)
        big = analyze_traffic(m=8, n=3, iterations=40.0)
        assert num_unique_entries(8, 3) > num_unique_entries(4, 3)
        assert big.arithmetic_intensity > small.arithmetic_intensity

    def test_intensity_linear_in_iterations(self):
        a = analyze_traffic(iterations=10.0)
        b = analyze_traffic(iterations=40.0)
        assert np.isclose(b.arithmetic_intensity / a.arithmetic_intensity, 4.0)
