"""Tests for compressed symmetric tensor storage (SymmetricTensor and
SymmetricTensorBatch)."""

import itertools

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.symtensor.random import random_symmetric_batch, random_symmetric_tensor
from repro.symtensor.storage import (
    SymmetricTensor,
    SymmetricTensorBatch,
    is_symmetric_dense,
    symmetric_outer_power,
    symmetrize_dense,
)
from repro.util.combinatorics import num_unique_entries


class TestSymmetrize:
    def test_symmetrize_produces_symmetric(self, rng):
        dense = rng.normal(size=(3, 3, 3))
        sym = symmetrize_dense(dense)
        assert is_symmetric_dense(sym)

    def test_symmetrize_fixes_symmetric_input(self, rng):
        t = random_symmetric_tensor(3, 3, rng=rng)
        dense = t.to_dense()
        assert np.allclose(symmetrize_dense(dense), dense)

    def test_symmetrize_is_projection(self, rng):
        dense = rng.normal(size=(2, 2, 2, 2))
        once = symmetrize_dense(dense)
        twice = symmetrize_dense(once)
        assert np.allclose(once, twice)

    def test_symmetrize_preserves_trace_like_sum(self, rng):
        """Averaging over permutations preserves the total entry sum."""
        dense = rng.normal(size=(3, 3, 3))
        assert np.isclose(symmetrize_dense(dense).sum(), dense.sum())

    def test_nonsquare_raises(self, rng):
        with pytest.raises(ValueError):
            symmetrize_dense(rng.normal(size=(2, 3, 2)))

    def test_is_symmetric_detects_asymmetry(self, rng):
        dense = rng.normal(size=(3, 3, 3))
        assert not is_symmetric_dense(dense)


class TestRoundTrip:
    def test_pack_unpack(self, size, rng):
        m, n = size
        t = random_symmetric_tensor(m, n, rng=rng)
        dense = t.to_dense()
        assert is_symmetric_dense(dense)
        back = SymmetricTensor.from_dense(dense)
        assert back.allclose(t)

    def test_dense_entries_match_getitem(self, rng):
        t = random_symmetric_tensor(3, 3, rng=rng)
        dense = t.to_dense()
        for idx in itertools.product(range(3), repeat=3):
            assert np.isclose(dense[idx], t[idx])

    def test_from_dense_rejects_asymmetric(self, rng):
        with pytest.raises(ValueError):
            SymmetricTensor.from_dense(rng.normal(size=(3, 3, 3)))

    def test_from_dense_nocheck_uses_canonical_entries(self, rng):
        dense = rng.normal(size=(3, 3, 3))
        t = SymmetricTensor.from_dense(dense, check=False)
        assert np.isclose(t[(0, 1, 2)], dense[0, 1, 2])

    def test_from_dense_rejects_nonsquare(self, rng):
        with pytest.raises(ValueError):
            SymmetricTensor.from_dense(rng.normal(size=(2, 3)))


class TestConstruction:
    def test_wrong_length_raises(self):
        with pytest.raises(ValueError):
            SymmetricTensor(np.zeros(14), 4, 3)  # needs 15

    def test_zeros(self):
        t = SymmetricTensor.zeros(4, 3)
        assert t.num_unique == 15
        assert np.all(t.values == 0)

    def test_integer_values_promoted_to_float(self):
        t = SymmetricTensor(np.arange(6), 2, 3)
        assert np.issubdtype(t.dtype, np.floating)

    def test_from_dict(self):
        t = SymmetricTensor.from_dict({(0, 1, 1): 2.0, (2, 0, 1): -1.0}, 3, 3)
        assert t[(1, 0, 1)] == 2.0  # any permutation
        assert t[(0, 1, 2)] == -1.0
        assert t[(0, 0, 0)] == 0.0

    def test_from_dict_bad_index(self):
        with pytest.raises(ValueError):
            SymmetricTensor.from_dict({(0, 1): 1.0}, 3, 3)
        with pytest.raises(ValueError):
            SymmetricTensor.from_dict({(0, 1, 5): 1.0}, 3, 3)

    def test_symmetric_outer_power(self, rng):
        x = rng.normal(size=4)
        t = symmetric_outer_power(x, 3)
        dense = t.to_dense()
        expected = np.einsum("i,j,k->ijk", x, x, x)
        assert np.allclose(dense, expected)

    def test_symmetric_outer_power_rejects_matrix(self, rng):
        with pytest.raises(ValueError):
            symmetric_outer_power(rng.normal(size=(2, 2)), 3)


class TestElementAccess:
    def test_getitem_any_permutation(self, rng):
        t = random_symmetric_tensor(4, 3, rng=rng)
        base = t[(0, 1, 1, 2)]
        for perm in itertools.permutations((0, 1, 1, 2)):
            assert t[perm] == base

    def test_setitem_updates_class(self, rng):
        t = SymmetricTensor.zeros(3, 3)
        t[(2, 0, 1)] = 5.0
        assert t[(0, 1, 2)] == 5.0

    def test_wrong_arity_raises(self):
        t = SymmetricTensor.zeros(3, 3)
        with pytest.raises(IndexError):
            t[(0, 1)]
        with pytest.raises(IndexError):
            t[(0, 1, 2, 0)]

    def test_out_of_bounds_raises(self):
        t = SymmetricTensor.zeros(3, 3)
        with pytest.raises(IndexError):
            t[(0, 1, 3)]
        with pytest.raises(IndexError):
            t[(0, 1, 5)] = 1.0


class TestAlgebra:
    def test_add_sub_scale(self, rng):
        a = random_symmetric_tensor(3, 3, rng=rng)
        b = random_symmetric_tensor(3, 3, rng=rng)
        assert np.allclose((a + b).values, a.values + b.values)
        assert np.allclose((a - b).values, a.values - b.values)
        assert np.allclose((2.5 * a).values, 2.5 * a.values)
        assert np.allclose((a / 2).values, a.values / 2)
        assert np.allclose((-a).values, -a.values)

    def test_shape_mismatch_raises(self, rng):
        a = random_symmetric_tensor(3, 3, rng=rng)
        b = random_symmetric_tensor(3, 4, rng=rng)
        with pytest.raises(ValueError):
            a + b

    def test_type_mismatch_raises(self, rng):
        a = random_symmetric_tensor(3, 3, rng=rng)
        with pytest.raises(TypeError):
            a + np.zeros(10)

    def test_frobenius_matches_dense(self, size, rng):
        m, n = size
        t = random_symmetric_tensor(m, n, rng=rng)
        assert np.isclose(t.frobenius_norm(), np.linalg.norm(t.to_dense()))

    def test_copy_is_independent(self, rng):
        a = random_symmetric_tensor(3, 3, rng=rng)
        b = a.copy()
        b.values[0] += 1
        assert a.values[0] != b.values[0]

    def test_astype(self, rng):
        a = random_symmetric_tensor(3, 3, rng=rng)
        assert a.astype(np.float32).dtype == np.float32


class TestBookkeeping:
    @given(st.integers(2, 6), st.integers(1, 5))
    def test_compression_ratio(self, m, n):
        t = SymmetricTensor.zeros(m, n)
        assert np.isclose(t.compression_ratio, n**m / num_unique_entries(m, n))

    def test_repr_mentions_shape(self):
        assert "m=4" in repr(SymmetricTensor.zeros(4, 3))

    def test_nbytes(self):
        t = SymmetricTensor.zeros(4, 3)
        assert t.nbytes == 15 * 8


class TestBatch:
    def test_from_tensors_and_indexing(self, rng):
        tensors = [random_symmetric_tensor(3, 3, rng=rng) for _ in range(5)]
        batch = SymmetricTensorBatch.from_tensors(tensors)
        assert len(batch) == 5
        for t, orig in zip(batch, tensors):
            assert t.allclose(orig)

    def test_from_tensors_empty_raises(self):
        with pytest.raises(ValueError):
            SymmetricTensorBatch.from_tensors([])

    def test_from_tensors_mixed_shapes_raise(self, rng):
        with pytest.raises(ValueError):
            SymmetricTensorBatch.from_tensors(
                [random_symmetric_tensor(3, 3, rng=rng), random_symmetric_tensor(3, 4, rng=rng)]
            )

    def test_bad_values_shape_raises(self):
        with pytest.raises(ValueError):
            SymmetricTensorBatch(np.zeros((4, 14)), 4, 3)

    def test_subset_count(self, rng):
        batch = random_symmetric_batch(10, 4, 3, rng=rng)
        sub = batch.subset(4)
        assert len(sub) == 4
        assert np.allclose(sub.values, batch.values[:4])

    def test_subset_indices(self, rng):
        batch = random_symmetric_batch(10, 4, 3, rng=rng)
        sub = batch.subset([7, 2])
        assert np.allclose(sub.values[0], batch.values[7])
        assert np.allclose(sub.values[1], batch.values[2])

    def test_astype_and_nbytes(self, rng):
        batch = random_symmetric_batch(4, 4, 3, rng=rng)
        assert batch.astype(np.float32).dtype == np.float32
        assert batch.nbytes == 4 * 15 * 8

    def test_paper_data_layout(self, rng):
        """Section V-C: tensor data is T x U (1024 x 15 for the test set)."""
        batch = random_symmetric_batch(1024, 4, 3, rng=rng)
        assert batch.values.shape == (1024, 15)
