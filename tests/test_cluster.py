"""Tests for multi-device scheduling (the Section V-B generalization)."""

import numpy as np
import pytest

from repro.gpu.cluster import predict_cluster
from repro.gpu.device import GTX_480, TESLA_C1060, TESLA_C2050
from repro.gpu.perfmodel import predict_sshopm

HETERO = [TESLA_C2050, TESLA_C1060, GTX_480]


class TestStaticPolicies:
    def test_single_device_matches_perfmodel(self):
        c = predict_cluster(devices=[TESLA_C2050], policy="equal", iterations=40.0)
        p = predict_sshopm(iterations=40.0)
        assert np.isclose(c.seconds, p.seconds, rtol=1e-6)

    def test_homogeneous_equal_is_peak(self):
        devs = [TESLA_C2050, TESLA_C2050]
        a = predict_cluster(devices=devs, policy="equal")
        b = predict_cluster(devices=devs, policy="peak")
        assert np.isclose(a.seconds, b.seconds, rtol=1e-9)
        assert a.device_blocks == b.device_blocks == (512, 512)

    def test_heterogeneous_peak_beats_equal(self):
        equal = predict_cluster(devices=HETERO, policy="equal")
        peak = predict_cluster(devices=HETERO, policy="peak")
        assert peak.seconds < equal.seconds
        # the strongest device gets the most blocks
        assert peak.device_blocks[2] > peak.device_blocks[1]

    def test_all_blocks_scheduled(self):
        for policy in ("equal", "peak", "dynamic"):
            p = predict_cluster(devices=HETERO, policy=policy, num_tensors=777)
            assert sum(p.device_blocks) == 777

    def test_two_identical_devices_halve_time(self):
        one = predict_cluster(devices=[TESLA_C2050], policy="equal")
        two = predict_cluster(devices=[TESLA_C2050] * 2, policy="equal")
        assert 1.8 < one.seconds / two.seconds < 2.05


class TestDynamicPolicy:
    def test_dynamic_beats_static_on_heterogeneous_work(self):
        rng = np.random.default_rng(0)
        iters = rng.integers(5, 120, size=512).astype(float)
        peak = predict_cluster(devices=HETERO, policy="peak",
                               num_tensors=512, iterations=iters)
        dyn = predict_cluster(devices=HETERO, policy="dynamic",
                              num_tensors=512, iterations=iters)
        assert dyn.seconds < peak.seconds

    def test_dynamic_efficiency_near_one(self):
        p = predict_cluster(devices=HETERO, policy="dynamic")
        assert p.efficiency > 0.9

    def test_chunk_size_tradeoff(self):
        """Very coarse chunks lose end-game balance vs fine chunks."""
        rng = np.random.default_rng(1)
        iters = rng.integers(5, 120, size=512).astype(float)
        fine = predict_cluster(devices=HETERO, policy="dynamic",
                               num_tensors=512, iterations=iters, chunk=8)
        coarse = predict_cluster(devices=HETERO, policy="dynamic",
                                 num_tensors=512, iterations=iters, chunk=256)
        assert fine.seconds <= coarse.seconds * 1.001

    def test_device_loads_balance_by_speed(self):
        p = predict_cluster(devices=HETERO, policy="dynamic")
        # GTX 480 (fastest) takes more blocks than C1060 (slowest)
        assert p.device_blocks[2] > p.device_blocks[1]


class TestValidation:
    def test_empty_devices(self):
        with pytest.raises(ValueError):
            predict_cluster(devices=[], policy="equal")

    def test_unknown_policy(self):
        with pytest.raises(ValueError):
            predict_cluster(policy="round-robin")

    def test_bad_inputs(self):
        with pytest.raises(ValueError):
            predict_cluster(num_tensors=0)
        with pytest.raises(ValueError):
            predict_cluster(chunk=0)
        with pytest.raises(ValueError):
            predict_cluster(iterations=np.ones(5), num_tensors=10)
        with pytest.raises(ValueError):
            predict_cluster(iterations=0.0)
