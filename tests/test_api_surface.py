"""Lock the public API against an explicit, checked-in snapshot.

``tests/api_surface.json`` records ``repro.__all__``, the signatures of
the facade and solver entry points, and the field lists of the public
result/request dataclasses.  Any drift — a renamed keyword, a dropped
export, a reordered positional parameter — fails here *by name*, so API
changes are always deliberate and reviewed next to the snapshot diff.

To bless an intentional change, regenerate the snapshot:

    REPRO_UPDATE_API_SNAPSHOT=1 PYTHONPATH=src pytest tests/test_api_surface.py
"""

import dataclasses
import inspect
import json
import os
import pathlib

import pytest

SNAPSHOT_PATH = pathlib.Path(__file__).parent / "api_surface.json"

# (dotted name, attribute) pairs whose signatures form the public surface
SIGNATURES = [
    "repro.solve",
    "repro.core.sshopm",
    "repro.core.adaptive_sshopm",
    "repro.core.multistart_sshopm",
    "repro.core.suggested_shift",
    "repro.solvers.geap",
    "repro.solvers.qrst",
    "repro.solvers.qrst_batch",
    "repro.solvers.projected_shift",
    "repro.solvers.register_solver",
    "repro.solvers.available_methods",
    "repro.solvers.choose_method",
    "repro.engine.fleet_solve",
    "repro.engine.suggested_shifts",
    "repro.parallel.parallel_fleet_solve",
    "repro.kernels.get_kernels",
    "repro.kernels.plan.get_plan",
    "repro.kernels.plan.contract_many",
    "repro.kernels.codegen.emit",
    "repro.kernels.codegen.get_emitter",
    "repro.kernels.codegen.register_emitter",
    "repro.kernels.codegen.available_backends",
    "repro.kernels.autotune_backend",
    "repro.instrument.emit",
    "repro.instrument.read_events",
    "repro.instrument.validate_event",
    "repro.instrument.configure_logging",
    "repro.instrument.get_logger",
    "repro.serve.run_job",
    "repro.serve.CircuitBreaker",
    "repro.serve.AdmissionQueue",
    "repro.resilience.prune_checkpoints",
    "repro.resilience.list_checkpoints",
]

DATACLASSES = [
    "repro.SolveRequest",
    "repro.SolveReport",
    "repro.core.FleetResult",
    "repro.core.SolveConfig",
    "repro.solvers.SolverEntry",
    "repro.solvers.QRSTResult",
    "repro.kernels.codegen.EmittedKernel",
    "repro.kernels.plan.KernelPlan",
    "repro.parallel.FleetRunReport",
    "repro.serve.JobSpec",
    "repro.serve.ServeConfig",
]


def _resolve(dotted: str):
    import importlib

    parts = dotted.split(".")
    obj = importlib.import_module(parts[0])
    for i, p in enumerate(parts[1:], start=2):
        try:
            obj = getattr(obj, p)
        except AttributeError:
            # lazily-loaded subpackage (e.g. repro.serve): import it
            obj = importlib.import_module(".".join(parts[:i]))
    return obj


def build_surface() -> dict:
    import repro

    surface = {
        "all": sorted(repro.__all__),
        "signatures": {
            name: str(inspect.signature(_resolve(name))) for name in SIGNATURES
        },
        "dataclasses": {
            name: [f.name for f in dataclasses.fields(_resolve(name))]
            for name in DATACLASSES
        },
        "result_protocol": sorted(
            n for n in ("eigenpairs", "converged", "telemetry")
        ),
    }
    return surface


def test_public_api_matches_snapshot():
    surface = build_surface()
    if os.environ.get("REPRO_UPDATE_API_SNAPSHOT"):
        SNAPSHOT_PATH.write_text(json.dumps(surface, indent=2) + "\n")
        pytest.skip(f"snapshot regenerated at {SNAPSHOT_PATH}")
    assert SNAPSHOT_PATH.exists(), (
        "missing tests/api_surface.json — regenerate with "
        "REPRO_UPDATE_API_SNAPSHOT=1"
    )
    snapshot = json.loads(SNAPSHOT_PATH.read_text())

    assert surface["all"] == snapshot["all"], "repro.__all__ drifted"
    for name in SIGNATURES:
        assert surface["signatures"][name] == snapshot["signatures"][name], (
            f"signature of {name} drifted"
        )
    for name in DATACLASSES:
        assert surface["dataclasses"][name] == snapshot["dataclasses"][name], (
            f"fields of {name} drifted"
        )
    # nothing extra, nothing missing at the top level either
    assert set(surface["signatures"]) == set(snapshot["signatures"])
    assert set(surface["dataclasses"]) == set(snapshot["dataclasses"])


def test_result_protocol_members_exist():
    """Every result class advertises the shared protocol members."""
    from repro.core import FleetResult
    from repro.core.multistart import MultistartResult
    from repro.core.sshopm import SSHOPMResult

    for cls in (SSHOPMResult, MultistartResult, FleetResult):
        assert callable(getattr(cls, "eigenpairs"))
        fields = {f.name for f in dataclasses.fields(cls)}
        assert "converged" in fields
        assert "telemetry" in fields
