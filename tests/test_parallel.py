"""Tests for the CPU-parallel substrate: partitioning, the multi-worker
executor, and the calibrated CPU scaling model."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.multistart import starting_vectors
from repro.gpu.device import NEHALEM_2S, CpuSpec
from repro.parallel.cpumodel import CpuPerfParams, predict_cpu_sshopm, speedup_curve
from repro.parallel.executor import parallel_multistart_sshopm
from repro.parallel.partition import chunk_sizes, interleaved_partition, static_partition
from repro.symtensor.random import random_symmetric_batch


class TestPartition:
    @given(st.integers(0, 500), st.integers(1, 16))
    def test_static_covers_everything_once(self, total, workers):
        ranges = static_partition(total, workers)
        seen = [i for r in ranges for i in r]
        assert seen == list(range(total))

    @given(st.integers(0, 500), st.integers(1, 16))
    def test_static_balance(self, total, workers):
        sizes = chunk_sizes(total, workers)
        assert sum(sizes) == total
        assert max(sizes) - min(sizes) <= 1

    @given(st.integers(0, 200), st.integers(1, 8))
    def test_interleaved_covers_everything_once(self, total, workers):
        parts = interleaved_partition(total, workers)
        seen = sorted(i for p in parts for i in p)
        assert seen == list(range(total))

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            static_partition(5, 0)
        with pytest.raises(ValueError):
            chunk_sizes(-1, 3)
        with pytest.raises(ValueError):
            interleaved_partition(5, 0)


class TestExecutor:
    def test_worker_count_invariance(self, rng):
        """The merged result is identical for any worker count (the paper's
        OpenMP loop is embarrassingly parallel)."""
        batch = random_symmetric_batch(9, 4, 3, rng=rng)
        starts = starting_vectors(8, 3, rng=1)
        base = parallel_multistart_sshopm(batch, workers=1, starts=starts,
                                          alpha=8.0, max_iter=1500)
        for workers in (2, 4, 9, 16):
            rep = parallel_multistart_sshopm(batch, workers=workers, starts=starts,
                                             alpha=8.0, max_iter=1500)
            assert np.allclose(rep.result.eigenvalues, base.result.eigenvalues)
            assert np.allclose(rep.result.eigenvectors, base.result.eigenvectors)
            assert np.array_equal(rep.result.converged, base.result.converged)

    def test_chunk_metadata(self, rng):
        batch = random_symmetric_batch(10, 4, 3, rng=rng)
        rep = parallel_multistart_sshopm(batch, workers=3, num_starts=4,
                                         rng=2, max_iter=100)
        assert rep.workers == 3
        assert sum(rep.chunk_sizes) == 10
        assert rep.seconds > 0

    def test_more_workers_than_tensors(self, rng):
        batch = random_symmetric_batch(2, 4, 3, rng=rng)
        rep = parallel_multistart_sshopm(batch, workers=8, num_starts=4,
                                         rng=3, max_iter=100)
        assert sum(rep.chunk_sizes) == 2

    def test_invalid_worker_count(self, rng):
        batch = random_symmetric_batch(2, 4, 3, rng=rng)
        with pytest.raises(ValueError):
            parallel_multistart_sshopm(batch, workers=0)


class TestCpuModelAnchors:
    """Table III CPU rows (the calibration targets, recorded here so any
    regression in the model surfaces immediately)."""

    def test_general_rates(self):
        for cores, expected in [(1, 0.24), (4, 0.86), (8, 1.73)]:
            p = predict_cpu_sshopm(1e9, variant="general", cores=cores)
            assert abs(p.gflops - expected) / expected < 0.03, (cores, p.gflops)

    def test_unrolled_rates(self):
        for cores, expected in [(1, 2.05), (4, 7.07), (8, 9.67)]:
            p = predict_cpu_sshopm(1e9, variant="unrolled", cores=cores)
            assert abs(p.gflops - expected) / expected < 0.03, (cores, p.gflops)

    def test_unrolled_sequential_speedup(self):
        """Paper Table III(a): 8.47x sequential unrolling speedup."""
        g = predict_cpu_sshopm(1e9, variant="general", cores=1)
        u = predict_cpu_sshopm(1e9, variant="unrolled", cores=1)
        assert abs(g.seconds / u.seconds - 8.47) / 8.47 < 0.03

    def test_relative_speedups_table3c(self):
        for variant, expected in [("general", {4: 3.55, 8: 7.14}),
                                  ("unrolled", {4: 3.45, 8: 4.72})]:
            for cores, s in expected.items():
                p = predict_cpu_sshopm(1e9, variant=variant, cores=cores)
                assert abs(p.speedup - s) < 0.02, (variant, cores, p.speedup)

    def test_fraction_of_peak_about_nine_percent_unrolled(self):
        """Paper: 9% of peak sequential, 5% at 8 cores."""
        one = predict_cpu_sshopm(1e9, variant="unrolled", cores=1)
        eight = predict_cpu_sshopm(1e9, variant="unrolled", cores=8)
        assert 0.08 < one.fraction_of_peak < 0.10
        assert 0.04 < eight.fraction_of_peak < 0.06


class TestCpuModelShape:
    @given(st.integers(1, 8))
    def test_speedup_monotone_in_cores(self, cores):
        if cores < 8:
            a = predict_cpu_sshopm(1e9, cores=cores).speedup
            b = predict_cpu_sshopm(1e9, cores=cores + 1).speedup
            assert b >= a

    def test_cross_socket_kink(self):
        """Marginal speedup per core drops at the socket boundary for the
        memory-bound unrolled variant."""
        s = [predict_cpu_sshopm(1e9, variant="unrolled", cores=c).speedup
             for c in range(1, 9)]
        intra_marginal = s[3] - s[2]
        inter_marginal = s[5] - s[4]
        assert inter_marginal < intra_marginal

    def test_speedup_curve_one_core_is_unity(self):
        assert speedup_curve(1, 0.9, 0.3, 4) == 1.0

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            predict_cpu_sshopm(1e9, cores=0)
        with pytest.raises(ValueError):
            predict_cpu_sshopm(1e9, cores=9)
        with pytest.raises(ValueError):
            predict_cpu_sshopm(-5.0)
        with pytest.raises(ValueError):
            predict_cpu_sshopm(1e9, variant="avx512")
        with pytest.raises(ValueError):
            speedup_curve(0, 0.9, 0.3, 4)

    def test_custom_cpu_and_params(self):
        cpu = CpuSpec(name="toy", sockets=1, cores_per_socket=2, clock_ghz=2.0)
        params = CpuPerfParams(eff_unrolled=0.5, intra_unrolled=1.0)
        p = predict_cpu_sshopm(1e9, cpu=cpu, cores=2, params=params)
        assert np.isclose(p.gflops, 0.5 * 16.0 * 2.0)
