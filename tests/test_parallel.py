"""Tests for the CPU-parallel substrate: partitioning, the multi-worker
executor, and the calibrated CPU scaling model."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.multistart import starting_vectors
from repro.gpu.device import NEHALEM_2S, CpuSpec
from repro.parallel.cpumodel import CpuPerfParams, predict_cpu_sshopm, speedup_curve
from repro.parallel.executor import parallel_multistart_sshopm
from repro.parallel.partition import (
    PartitionError,
    chunk_sizes,
    cost_weighted_partition,
    interleaved_partition,
    static_partition,
)
from repro.symtensor.random import random_symmetric_batch


class TestPartition:
    @given(st.integers(0, 500), st.integers(1, 16))
    def test_static_covers_everything_once(self, total, workers):
        if workers > total:
            with pytest.raises(PartitionError):
                static_partition(total, workers)
            return
        ranges = static_partition(total, workers)
        seen = [i for r in ranges for i in r]
        assert seen == list(range(total))
        assert all(len(r) >= 1 for r in ranges)

    @given(st.integers(0, 500), st.integers(1, 16))
    def test_static_balance(self, total, workers):
        sizes = chunk_sizes(total, workers)
        assert sum(sizes) == total
        assert max(sizes) - min(sizes) <= 1

    @given(st.integers(0, 200), st.integers(1, 8))
    def test_interleaved_covers_everything_once(self, total, workers):
        parts = interleaved_partition(total, workers)
        seen = sorted(i for p in parts for i in p)
        assert seen == list(range(total))

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            static_partition(5, 0)
        with pytest.raises(ValueError):
            chunk_sizes(-1, 3)
        with pytest.raises(ValueError):
            interleaved_partition(5, 0)

    def test_empty_shards_raise_typed_error(self):
        with pytest.raises(PartitionError, match="clamp workers"):
            static_partition(3, 5)
        with pytest.raises(PartitionError):
            cost_weighted_partition([1.0, 2.0], 3)
        assert issubclass(PartitionError, ValueError)


class TestCostWeightedPartition:
    @given(
        st.lists(st.floats(0.0, 1e9, allow_nan=False), min_size=1, max_size=80),
        st.integers(1, 12),
    )
    def test_covers_everything_once_nonempty(self, weights, workers):
        if workers > len(weights):
            with pytest.raises(PartitionError):
                cost_weighted_partition(weights, workers)
            return
        parts = cost_weighted_partition(weights, workers)
        flat = [i for r in parts for i in r]
        assert flat == list(range(len(weights)))
        assert all(len(r) >= 1 for r in parts)

    def test_uniform_weights_match_static(self):
        assert cost_weighted_partition(np.ones(10), 3) == static_partition(10, 3)

    def test_heavy_item_isolated(self):
        """One dominant item gets its own shard; the rest split the tail."""
        weights = [100.0, 1.0, 1.0, 1.0, 1.0, 1.0]
        parts = cost_weighted_partition(weights, 3)
        assert parts[0] == range(0, 1)

    def test_zero_weights_fall_back_to_static(self):
        assert cost_weighted_partition(np.zeros(6), 2) == static_partition(6, 2)

    def test_invalid_weights(self):
        with pytest.raises(ValueError):
            cost_weighted_partition([[1.0]], 1)
        with pytest.raises(ValueError):
            cost_weighted_partition([1.0, -2.0], 1)
        with pytest.raises(ValueError):
            cost_weighted_partition([1.0, np.inf], 1)
        with pytest.raises(ValueError):
            cost_weighted_partition([1.0], 0)


class TestExecutor:
    def test_worker_count_invariance(self, rng):
        """The merged result is identical for any worker count (the paper's
        OpenMP loop is embarrassingly parallel)."""
        batch = random_symmetric_batch(9, 4, 3, rng=rng)
        starts = starting_vectors(8, 3, rng=1)
        base = parallel_multistart_sshopm(batch, workers=1, starts=starts,
                                          alpha=8.0, max_iters=1500)
        for workers in (2, 4, 9, 16):
            rep = parallel_multistart_sshopm(batch, workers=workers, starts=starts,
                                             alpha=8.0, max_iters=1500)
            assert np.allclose(rep.result.eigenvalues, base.result.eigenvalues)
            assert np.allclose(rep.result.eigenvectors, base.result.eigenvectors)
            assert np.array_equal(rep.result.converged, base.result.converged)

    def test_chunk_metadata(self, rng):
        batch = random_symmetric_batch(10, 4, 3, rng=rng)
        rep = parallel_multistart_sshopm(batch, workers=3, num_starts=4,
                                         rng=2, max_iters=100)
        assert rep.workers == 3
        assert sum(rep.chunk_sizes) == 10
        assert rep.seconds > 0

    def test_more_workers_than_tensors(self, rng):
        batch = random_symmetric_batch(2, 4, 3, rng=rng)
        rep = parallel_multistart_sshopm(batch, workers=8, num_starts=4,
                                         rng=3, max_iters=100)
        assert sum(rep.chunk_sizes) == 2

    def test_invalid_worker_count(self, rng):
        batch = random_symmetric_batch(2, 4, 3, rng=rng)
        with pytest.raises(ValueError):
            parallel_multistart_sshopm(batch, workers=0)


class TestCpuModelAnchors:
    """Table III CPU rows (the calibration targets, recorded here so any
    regression in the model surfaces immediately)."""

    def test_general_rates(self):
        for cores, expected in [(1, 0.24), (4, 0.86), (8, 1.73)]:
            p = predict_cpu_sshopm(1e9, variant="general", cores=cores)
            assert abs(p.gflops - expected) / expected < 0.03, (cores, p.gflops)

    def test_unrolled_rates(self):
        for cores, expected in [(1, 2.05), (4, 7.07), (8, 9.67)]:
            p = predict_cpu_sshopm(1e9, variant="unrolled", cores=cores)
            assert abs(p.gflops - expected) / expected < 0.03, (cores, p.gflops)

    def test_unrolled_sequential_speedup(self):
        """Paper Table III(a): 8.47x sequential unrolling speedup."""
        g = predict_cpu_sshopm(1e9, variant="general", cores=1)
        u = predict_cpu_sshopm(1e9, variant="unrolled", cores=1)
        assert abs(g.seconds / u.seconds - 8.47) / 8.47 < 0.03

    def test_relative_speedups_table3c(self):
        for variant, expected in [("general", {4: 3.55, 8: 7.14}),
                                  ("unrolled", {4: 3.45, 8: 4.72})]:
            for cores, s in expected.items():
                p = predict_cpu_sshopm(1e9, variant=variant, cores=cores)
                assert abs(p.speedup - s) < 0.02, (variant, cores, p.speedup)

    def test_fraction_of_peak_about_nine_percent_unrolled(self):
        """Paper: 9% of peak sequential, 5% at 8 cores."""
        one = predict_cpu_sshopm(1e9, variant="unrolled", cores=1)
        eight = predict_cpu_sshopm(1e9, variant="unrolled", cores=8)
        assert 0.08 < one.fraction_of_peak < 0.10
        assert 0.04 < eight.fraction_of_peak < 0.06


class TestCpuModelShape:
    @given(st.integers(1, 8))
    def test_speedup_monotone_in_cores(self, cores):
        if cores < 8:
            a = predict_cpu_sshopm(1e9, cores=cores).speedup
            b = predict_cpu_sshopm(1e9, cores=cores + 1).speedup
            assert b >= a

    def test_cross_socket_kink(self):
        """Marginal speedup per core drops at the socket boundary for the
        memory-bound unrolled variant."""
        s = [predict_cpu_sshopm(1e9, variant="unrolled", cores=c).speedup
             for c in range(1, 9)]
        intra_marginal = s[3] - s[2]
        inter_marginal = s[5] - s[4]
        assert inter_marginal < intra_marginal

    def test_speedup_curve_one_core_is_unity(self):
        assert speedup_curve(1, 0.9, 0.3, 4) == 1.0

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            predict_cpu_sshopm(1e9, cores=0)
        with pytest.raises(ValueError):
            predict_cpu_sshopm(1e9, cores=9)
        with pytest.raises(ValueError):
            predict_cpu_sshopm(-5.0)
        with pytest.raises(ValueError):
            predict_cpu_sshopm(1e9, variant="avx512")
        with pytest.raises(ValueError):
            speedup_curve(0, 0.9, 0.3, 4)

    def test_custom_cpu_and_params(self):
        cpu = CpuSpec(name="toy", sockets=1, cores_per_socket=2, clock_ghz=2.0)
        params = CpuPerfParams(eff_unrolled=0.5, intra_unrolled=1.0)
        p = predict_cpu_sshopm(1e9, cpu=cpu, cores=2, params=params)
        assert np.isclose(p.gflops, 0.5 * 16.0 * 2.0)


class TestHardenedExecutor:
    """Crash-requeue and partial-failure behavior of the chunk executor."""

    def _batch(self, tensors=6):
        return random_symmetric_batch(tensors, 4, 3, rng=np.random.default_rng(3))

    def test_inject_hook_sees_every_chunk(self):
        batch = self._batch()
        seen = []
        parallel_multistart_sshopm(
            batch, workers=3, num_starts=4, alpha=2.0,
            rng=np.random.default_rng(0),
            inject=lambda chunk, attempt: seen.append((chunk, attempt)),
        )
        assert sorted(seen) == [(0, 0), (1, 0), (2, 0)]

    def test_crashed_chunk_requeues_to_same_result(self):
        batch = self._batch()
        base = parallel_multistart_sshopm(batch, workers=3, num_starts=4,
                                          alpha=2.0, rng=np.random.default_rng(0))
        budget = {2: 1}

        def inject(chunk, attempt):
            if budget.get(chunk, 0) > attempt:
                raise RuntimeError("synthetic worker death")

        with pytest.warns(RuntimeWarning, match="degraded"):
            rep = parallel_multistart_sshopm(batch, workers=3, num_starts=4,
                                             alpha=2.0,
                                             rng=np.random.default_rng(0),
                                             inject=inject)
        assert rep.requeues == 1 and not rep.failures
        assert np.array_equal(rep.result.eigenvalues, base.result.eigenvalues)
        assert not rep.result.failed.any()

    def test_exhausted_chunk_reported_not_raised(self):
        batch = self._batch()

        def always_crash(chunk, attempt):
            if chunk == 1:
                raise RuntimeError("persistent fault")

        with pytest.warns(RuntimeWarning):
            rep = parallel_multistart_sshopm(batch, workers=3, num_starts=4,
                                             alpha=2.0,
                                             rng=np.random.default_rng(0),
                                             inject=always_crash,
                                             max_requeues=1)
        assert [f.chunk_index for f in rep.failures] == [1]
        assert rep.failures[0].attempts == 2
        lo, hi = rep.failures[0].tensor_range
        assert np.isnan(rep.result.eigenvalues[lo:hi]).all()
        assert rep.result.failed[lo:hi].all()
        assert not rep.result.failed[:lo].any()
        assert not rep.result.failed[hi:].any()
        # merged shapes stay consistent with the healthy layout
        assert rep.result.eigenvalues.shape == (len(batch), 4)

    def test_zero_requeues_budget(self):
        batch = self._batch()

        def crash_once(chunk, attempt):
            if chunk == 0 and attempt == 0:
                raise RuntimeError("one-shot fault")

        with pytest.warns(RuntimeWarning):
            rep = parallel_multistart_sshopm(batch, workers=2, num_starts=4,
                                             alpha=2.0,
                                             rng=np.random.default_rng(0),
                                             inject=crash_once,
                                             max_requeues=0)
        assert rep.requeues == 0
        assert [f.chunk_index for f in rep.failures] == [0]

    def test_partial_metrics_merge_from_crashed_chunk(self):
        from repro.instrument.metrics import use_registry

        batch = self._batch()

        def crash_chunk_one(chunk, attempt):
            if chunk == 1 and attempt == 0:
                raise RuntimeError("dies after registry creation")

        with use_registry() as reg:
            with pytest.warns(RuntimeWarning):
                parallel_multistart_sshopm(batch, workers=3, num_starts=4,
                                           alpha=2.0,
                                           rng=np.random.default_rng(0),
                                           inject=crash_chunk_one)
        names = {m["name"] for m in reg.snapshot()["metrics"]}
        assert "repro_requeues_total" in names
        # solver metrics from the surviving + requeued chunks merged in
        assert any(n.startswith("repro_solver") for n in names)

    def test_failed_lanes_counted_in_dead_lane_metric(self):
        from repro.instrument.metrics import use_registry

        batch = self._batch(tensors=2)
        batch.values[:] = np.nan
        with use_registry() as reg:
            rep = parallel_multistart_sshopm(batch, workers=2, num_starts=4,
                                             alpha=2.0,
                                             rng=np.random.default_rng(0))
        assert rep.result.failed.all()
        names = {m["name"] for m in reg.snapshot()["metrics"]}
        assert "repro_multistart_dead_lanes_total" in names
