"""Tests for the high-level find_eigenpairs drivers."""

import numpy as np

from repro.core.solve import find_eigenpairs, find_eigenpairs_batch
from repro.core.sshopm import suggested_shift
from repro.symtensor.random import (
    kolda_mayo_example_3x3x3,
    random_symmetric_batch,
    rank_one_tensor,
    sum_of_rank_ones,
)
from repro.util.rng import random_unit_vectors


class TestFindEigenpairs:
    def test_km_example_full_spectrum(self):
        tensor = kolda_mayo_example_3x3x3()
        pairs = find_eigenpairs(
            tensor, num_starts=200, alpha=suggested_shift(tensor),
            rng=3, tol=1e-14, max_iters=4000,
        )
        lams = sorted(round(p.eigenvalue, 3) for p in pairs)
        # the four SS-HOPM-reachable pairs documented on the constructor
        for expected in (0.873, 0.431, 0.018, 0.001):
            assert any(abs(l - expected) < 2e-3 for l in lams), (expected, lams)
        # residuals and classification all filled
        for p in pairs:
            assert p.residual < 1e-5
            assert p.stability != ""
        # occurrences sum to the number of converged runs
        assert sum(p.occurrences for p in pairs) <= 200

    def test_sorted_descending(self):
        tensor = kolda_mayo_example_3x3x3()
        pairs = find_eigenpairs(tensor, num_starts=64, alpha=suggested_shift(tensor), rng=4)
        lams = [p.eigenvalue for p in pairs]
        assert lams == sorted(lams, reverse=True)

    def test_rank_one_dominant(self, rng):
        d = random_unit_vectors(1, 3, rng=rng)[0]
        tensor = rank_one_tensor(d, 4, weight=5.0)
        pairs = find_eigenpairs(tensor, num_starts=64, alpha=suggested_shift(tensor), rng=5)
        top = pairs[0]
        assert abs(top.eigenvalue - 5.0) < 1e-6
        assert abs(abs(top.eigenvector @ d) - 1.0) < 1e-5
        assert top.stability == "pos_stable"

    def test_two_component_tensor_finds_both(self, rng):
        """Well-separated rank-one components each give a local maximum."""
        d1 = np.array([1.0, 0.0, 0.0])
        d2 = np.array([0.0, 1.0, 0.0])
        tensor = sum_of_rank_ones(np.stack([d1, d2]), np.array([3.0, 2.0]), m=4)
        pairs = find_eigenpairs(tensor, num_starts=128, alpha=suggested_shift(tensor),
                                rng=6, tol=1e-13, max_iters=3000)
        maxima = [p for p in pairs if p.stability == "pos_stable"]
        assert len(maxima) >= 2
        aligned1 = any(abs(abs(p.eigenvector @ d1)) > 0.99 for p in maxima)
        aligned2 = any(abs(abs(p.eigenvector @ d2)) > 0.99 for p in maxima)
        assert aligned1 and aligned2

    def test_classify_false_skips_classification(self):
        tensor = kolda_mayo_example_3x3x3()
        pairs = find_eigenpairs(tensor, num_starts=32, alpha=suggested_shift(tensor),
                                rng=7, classify=False)
        assert all(p.stability == "" for p in pairs)
        assert all(np.isfinite(p.residual) for p in pairs)


class TestFindEigenpairsBatch:
    def test_batch_pipeline(self, rng):
        batch = random_symmetric_batch(6, 4, 3, rng=rng)
        alpha = max(suggested_shift(batch[t]) for t in range(6))
        pairs, raw = find_eigenpairs_batch(batch, num_starts=32, alpha=alpha,
                                           rng=8, tol=1e-11, max_iters=3000)
        assert len(pairs) == 6
        assert raw.eigenvalues.shape == (6, 32)
        for t, plist in enumerate(pairs):
            assert len(plist) >= 1
            # each reported pair satisfies the eigen equation
            from repro.core.eigenpairs import eigen_residual

            for p in plist[:2]:
                assert eigen_residual(batch[t], p.eigenvalue, p.eigenvector) < 1e-4

    def test_batch_matches_single(self, rng):
        batch = random_symmetric_batch(2, 4, 3, rng=rng)
        alpha = max(suggested_shift(batch[t]) for t in range(2))
        pairs, _ = find_eigenpairs_batch(batch, num_starts=48, alpha=alpha, rng=9,
                                         tol=1e-12, max_iters=3000)
        single = find_eigenpairs(batch[0], num_starts=48, alpha=alpha, rng=9,
                                 tol=1e-12, max_iters=3000, classify=False,
                                 lambda_tol=1e-5, angle_tol=1e-2)
        batch_lams = {round(p.eigenvalue, 4) for p in pairs[0]}
        single_lams = {round(p.eigenvalue, 4) for p in single}
        # principal eigenvalue must agree (starts differ by rng usage order
        # is identical here since the same seed/scheme is used)
        assert max(batch_lams) == max(single_lams)
