"""``repro.solve`` facade: routing by request shape, report pass-throughs,
and the ResultProtocol contract across every solver family."""

import numpy as np
import pytest

import repro
from repro.core.results import ResultProtocol
from repro.facade import SolveReport, SolveRequest
from repro.parallel import FleetRunReport
from repro.symtensor import random_symmetric_batch, random_symmetric_tensor


@pytest.fixture(scope="module")
def tensor():
    return random_symmetric_tensor(3, 3, rng=5)


@pytest.fixture(scope="module")
def batch():
    return random_symmetric_batch(4, 3, 3, rng=6)


class TestRouting:
    def test_single_start_routes_to_sshopm(self, tensor):
        assert SolveRequest(tensor).solver_name() == "sshopm"

    def test_single_start_adaptive_routes_to_adaptive(self, tensor):
        req = SolveRequest(tensor, adaptive=True)
        assert req.solver_name() == "adaptive_sshopm"

    def test_many_starts_route_to_multistart(self, tensor):
        assert SolveRequest(tensor, starts=8).solver_name() == "multistart_sshopm"
        explicit = np.eye(3)
        assert SolveRequest(tensor, starts=explicit).solver_name() == "multistart_sshopm"

    def test_explicit_1d_start_routes_to_sshopm(self, tensor):
        req = SolveRequest(tensor, starts=np.array([1.0, 0.0, 0.0]))
        assert req.solver_name() == "sshopm"

    def test_batch_routes_to_fleet(self, batch):
        assert SolveRequest(batch, starts=8).solver_name() == "fleet_solve"
        assert SolveRequest(batch).solver_name() == "fleet_solve"

    def test_batch_with_workers_routes_to_parallel(self, batch):
        req = SolveRequest(batch, starts=8, workers=3)
        assert req.solver_name() == "parallel_fleet_solve"

    def test_solve_reports_the_routed_solver(self, tensor, batch):
        assert repro.solve(tensor, alpha=5.0, rng=0).solver == "sshopm"
        assert repro.solve(tensor, adaptive=True, rng=0).solver == "adaptive_sshopm"
        assert repro.solve(tensor, starts=4, alpha=5.0, rng=0).solver == "multistart_sshopm"
        assert repro.solve(batch, starts=4, alpha=5.0, rng=0).solver == "fleet_solve"
        rep = repro.solve(batch, starts=4, alpha=5.0, rng=0, workers=2)
        assert rep.solver == "parallel_fleet_solve"
        assert isinstance(rep.extra, FleetRunReport)


class TestReport:
    def test_report_passthroughs(self, batch):
        rep = repro.solve(batch, starts=4, alpha=5.0, rng=0, max_iters=200)
        assert isinstance(rep, SolveReport)
        assert rep.seconds > 0
        assert rep.request.is_batch
        np.testing.assert_array_equal(rep.converged, rep.result.converged)
        assert rep.telemetry is rep.result.telemetry
        assert len(rep.eigenpairs()) == len(batch)

    def test_every_route_satisfies_result_protocol(self, tensor, batch):
        reports = [
            repro.solve(tensor, alpha=5.0, rng=0, max_iters=200),
            repro.solve(tensor, adaptive=True, rng=0, max_iters=200),
            repro.solve(tensor, starts=4, alpha=5.0, rng=0, max_iters=200),
            repro.solve(batch, starts=4, alpha=5.0, rng=0, max_iters=200),
        ]
        for rep in reports:
            assert isinstance(rep.result, ResultProtocol), rep.solver

    def test_shared_starts_make_routes_agree(self, tensor):
        starts = np.random.default_rng(3).standard_normal((6, 3))
        starts /= np.linalg.norm(starts, axis=1, keepdims=True)
        multi = repro.solve(tensor, starts=starts, alpha=5.0,
                            tol=1e-10, max_iters=400)
        singles = [
            repro.solve(tensor, starts=starts[v], alpha=5.0,
                        tol=1e-10, max_iters=400)
            for v in range(6)
        ]
        conv = np.atleast_2d(multi.result.converged)[0]
        lams = np.atleast_2d(multi.result.eigenvalues)[0]
        for v, single in enumerate(singles):
            if single.result.converged:
                assert conv[v]
                assert lams[v] == pytest.approx(
                    single.result.eigenvalue, abs=1e-7)

    def test_backend_alias_for_fleet_variant(self, batch):
        rep = repro.solve(batch, starts=4, alpha=5.0, rng=0,
                          max_iters=100, backend="unrolled")
        assert rep.result.variant == "unrolled"

    def test_bad_starts_ndim_rejected(self, tensor):
        with pytest.raises(ValueError, match="starts"):
            repro.solve(tensor, starts=np.zeros((2, 2, 2)))

    def test_exported_from_package_root(self):
        assert repro.solve is not None
        for name in ("solve", "SolveReport", "SolveRequest"):
            assert name in repro.__all__
