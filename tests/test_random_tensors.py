"""Tests for the structured tensor constructors."""

import numpy as np
import pytest

from repro.kernels.compressed import ax_m1_compressed, ax_m_compressed
from repro.symtensor.random import (
    identity_like_tensor,
    kolda_mayo_example_3x3x3,
    random_symmetric_batch,
    random_symmetric_tensor,
    rank_one_tensor,
    sum_of_rank_ones,
)
from repro.util.rng import random_unit_vector


class TestRandomTensor:
    def test_deterministic_with_seed(self):
        a = random_symmetric_tensor(4, 3, rng=5)
        b = random_symmetric_tensor(4, 3, rng=5)
        assert np.array_equal(a.values, b.values)

    def test_scale(self):
        big = random_symmetric_tensor(4, 3, rng=5, scale=100.0)
        small = random_symmetric_tensor(4, 3, rng=5, scale=1.0)
        assert np.allclose(big.values, 100.0 * small.values)

    def test_dtype(self):
        t = random_symmetric_tensor(4, 3, rng=5, dtype=np.float32)
        assert t.dtype == np.float32

    def test_batch(self):
        b = random_symmetric_batch(7, 4, 3, rng=6)
        assert len(b) == 7


class TestRankOne:
    def test_eigen_identity(self, rng):
        """(w d^{(x)m}) x^{m-1} = w (d.x)^{m-1} d."""
        d = random_unit_vector(3, rng=rng)
        t = rank_one_tensor(d, 4, weight=2.5)
        x = rng.normal(size=3)
        assert np.allclose(ax_m1_compressed(t, x), 2.5 * (d @ x) ** 3 * d)

    def test_principal_value(self, rng):
        d = random_unit_vector(4, rng=rng)
        t = rank_one_tensor(d, 3, weight=-1.5)
        assert np.isclose(ax_m_compressed(t, d), -1.5)

    def test_sum_of_rank_ones_additivity(self, rng):
        d1, d2 = random_unit_vector(3, rng=rng), random_unit_vector(3, rng=rng)
        combined = sum_of_rank_ones(np.stack([d1, d2]), np.array([1.0, 2.0]), m=4)
        manual = rank_one_tensor(d1, 4, 1.0) + rank_one_tensor(d2, 4, 2.0)
        assert combined.allclose(manual)

    def test_sum_default_weights(self, rng):
        dirs = np.stack([random_unit_vector(3, rng=rng) for _ in range(3)])
        t = sum_of_rank_ones(dirs, m=4)
        manual = sum_of_rank_ones(dirs, np.ones(3), m=4)
        assert t.allclose(manual)

    def test_weight_shape_mismatch(self, rng):
        with pytest.raises(ValueError):
            sum_of_rank_ones(np.eye(3), np.ones(2), m=4)


class TestIdentityLike:
    def test_m2_is_identity(self):
        t = identity_like_tensor(2, 4)
        assert np.allclose(t.to_dense(), np.eye(4))

    def test_every_unit_vector_is_eigenvector(self, rng):
        t = identity_like_tensor(4, 3)
        for _ in range(5):
            x = random_unit_vector(3, rng=rng)
            assert np.allclose(ax_m1_compressed(t, x), x, atol=1e-10)
            assert np.isclose(ax_m_compressed(t, x), 1.0)

    def test_norm_power_property(self, rng):
        """E x^m = ||x||^m off the sphere too."""
        t = identity_like_tensor(4, 3)
        x = rng.normal(size=3) * 2.0
        assert np.isclose(ax_m_compressed(t, x), np.linalg.norm(x) ** 4)

    def test_odd_order_rejected(self):
        with pytest.raises(ValueError):
            identity_like_tensor(3, 3)


class TestKoldaMayoExample:
    def test_is_fixed(self):
        a = kolda_mayo_example_3x3x3()
        b = kolda_mayo_example_3x3x3()
        assert a.allclose(b)
        assert a.m == 3 and a.n == 3

    def test_specific_entries(self):
        t = kolda_mayo_example_3x3x3()
        assert t[(0, 0, 0)] == pytest.approx(-0.1281)
        assert t[(1, 1, 2)] == pytest.approx(0.2513)
        assert t[(2, 1, 1)] == pytest.approx(0.2513)  # symmetry
