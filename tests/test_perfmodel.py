"""Tests for the calibrated GPU performance model: Table III anchors,
Figure 5 shape, occupancy falloff, and multi-device projection."""

import numpy as np
import pytest

from repro.gpu.device import GTX_480, TESLA_C1060, TESLA_C2050
from repro.gpu.perfmodel import GpuPerfParams, predict_sshopm


class TestTableIIIAnchors:
    def test_unrolled_gflops_near_paper(self):
        """Paper: 317.83 GFLOPS, 31% of peak (m=4, n=3, T=1024, V=128)."""
        p = predict_sshopm(variant="unrolled")
        assert abs(p.gflops - 317.83) / 317.83 < 0.03
        assert 0.28 < p.fraction_of_peak < 0.33

    def test_general_gflops_near_paper(self):
        """Paper: 17.00 GFLOPS for the general GPU implementation."""
        g = predict_sshopm(variant="general")
        assert abs(g.gflops - 17.0) / 17.0 < 0.05

    def test_unrolled_speedup_near_paper(self):
        """Paper: 18.70x unrolled-over-general on the GPU."""
        p = predict_sshopm(variant="unrolled")
        g = predict_sshopm(variant="general")
        speedup = g.seconds / p.seconds
        assert abs(speedup - 18.7) / 18.7 < 0.05

    def test_rates_iteration_invariant(self):
        """GFLOPS is a rate: doubling the iteration count must not change it
        at saturation."""
        a = predict_sshopm(iterations=20.0)
        b = predict_sshopm(iterations=40.0)
        assert np.isclose(a.gflops, b.gflops, rtol=1e-6)
        assert np.isclose(b.seconds, 2 * a.seconds, rtol=1e-6)


class TestFigure5Shape:
    def test_ramp_then_saturation(self):
        rates = [predict_sshopm(num_tensors=T).gflops for T in (2, 8, 32, 64, 512, 1024)]
        # small-T region far below saturation
        assert rates[0] < 0.1 * rates[-1]
        # large-T region saturated: 512 -> 1024 changes little
        assert abs(rates[-1] - rates[-2]) / rates[-1] < 0.1

    def test_cpu_gpu_crossover_at_small_t(self):
        """Figure 5: for very small tensor counts the CPU implementations
        are competitive; the GPU only wins once enough blocks exist."""
        from repro.parallel.cpumodel import predict_cpu_sshopm

        tiny = predict_sshopm(num_tensors=1)
        # same workload on 8 CPU cores
        flops = tiny.gflops * tiny.seconds * 1e9
        cpu = predict_cpu_sshopm(flops, variant="unrolled", cores=8)
        assert tiny.gflops < 4 * cpu.gflops  # GPU advantage largely gone

    def test_fifty_tensors_fills_multiprocessors(self):
        """Section V-B: 'as long as the number of tensors is at least 50 or
        so, all of the multiprocessors are utilized' — throughput at T=56
        should be a large fraction of saturation."""
        r56 = predict_sshopm(num_tensors=56).gflops
        r1024 = predict_sshopm(num_tensors=1024).gflops
        assert r56 > 0.4 * r1024


class TestOccupancyFalloff:
    def test_performance_drops_past_dimension_threshold(self):
        """Section V-E: decreased performance past ~order 4 / dimension 5."""
        base = predict_sshopm(m=4, n=3).fraction_of_peak
        at5 = predict_sshopm(m=4, n=5).fraction_of_peak
        at6 = predict_sshopm(m=4, n=6).fraction_of_peak
        assert at5 > 0.8 * base  # still healthy at the threshold
        assert at6 < 0.8 * base  # fallen past it

    def test_other_gpus_similar_relative_performance(self):
        """Section V-E: similar fraction-of-peak on two other NVIDIA GPUs
        for the m=4, n=3 problem."""
        frac_c2050 = predict_sshopm(device=TESLA_C2050).fraction_of_peak
        frac_gtx = predict_sshopm(device=GTX_480).fraction_of_peak
        assert abs(frac_gtx - frac_c2050) / frac_c2050 < 0.25


class TestMultiDevice:
    def test_two_devices_near_double_throughput(self):
        one = predict_sshopm(num_devices=1)
        two = predict_sshopm(num_devices=2)
        assert 1.7 < one.seconds / two.seconds <= 2.01
        assert two.fraction_of_peak <= one.fraction_of_peak + 1e-9

    def test_many_devices_diminishing_returns_at_fixed_t(self):
        """With T fixed, devices eventually starve (ramp region per device)."""
        four = predict_sshopm(num_tensors=64, num_devices=4)
        one = predict_sshopm(num_tensors=64, num_devices=1)
        assert four.fraction_of_peak < one.fraction_of_peak


class TestInputs:
    def test_per_tensor_iteration_array(self):
        iters = np.full(1024, 40.0)
        a = predict_sshopm(iterations=iters)
        b = predict_sshopm(iterations=40.0)
        assert np.isclose(a.seconds, b.seconds, rtol=1e-9)

    def test_iteration_array_shape_checked(self):
        with pytest.raises(ValueError):
            predict_sshopm(iterations=np.ones(7))

    def test_nonpositive_iterations_rejected(self):
        with pytest.raises(ValueError):
            predict_sshopm(iterations=0.0)

    def test_zero_tensors_rejected(self):
        with pytest.raises(ValueError):
            predict_sshopm(num_tensors=0)

    def test_bad_variant(self):
        with pytest.raises(ValueError):
            predict_sshopm(variant="simd")

    def test_custom_params(self):
        slow = predict_sshopm(params=GpuPerfParams(issue_efficiency=0.38))
        fast = predict_sshopm(params=GpuPerfParams(issue_efficiency=0.76))
        assert np.isclose(slow.gflops * 2, fast.gflops, rtol=1e-6)

    def test_c1060_runs(self):
        """Previous-generation device with smaller register file/shared mem
        still executes the application kernel."""
        p = predict_sshopm(device=TESLA_C1060)
        assert p.gflops > 0
