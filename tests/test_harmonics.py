"""Tests for the spherical-harmonics <-> symmetric-tensor correspondence
(Section IV, Schultz & Seidel reference [6])."""

import numpy as np
import pytest

from repro.mri.fit import adc_profile, fit_symmetric_tensor
from repro.mri.gradients import gradient_directions
from repro.mri.harmonics import (
    even_sh_index_list,
    evaluate_sh,
    fit_sh,
    num_even_sh_coefficients,
    real_sph_harm_basis,
    sh_to_tensor,
    tensor_to_sh,
)
from repro.symtensor.random import random_symmetric_tensor, sum_of_rank_ones
from repro.util.rng import fibonacci_sphere


class TestBasis:
    def test_paper_coefficient_counts(self):
        """Section IV: 2nd order 6 terms; m=4/6/8 need 15/28/45."""
        assert num_even_sh_coefficients(2) == 6
        assert num_even_sh_coefficients(4) == 15
        assert num_even_sh_coefficients(6) == 28
        assert num_even_sh_coefficients(8) == 45

    def test_index_list(self):
        idx = even_sh_index_list(4)
        assert len(idx) == 15
        assert (0, 0) in idx and (4, -4) in idx and (4, 4) in idx
        assert all(l % 2 == 0 for l, _ in idx)

    def test_degree_validation(self):
        with pytest.raises(ValueError):
            num_even_sh_coefficients(3)
        with pytest.raises(ValueError):
            even_sh_index_list(-2)

    def test_orthonormality(self):
        """Real SH basis is orthonormal on the sphere (Fibonacci
        quadrature)."""
        pts = fibonacci_sphere(20000)
        B = real_sph_harm_basis(4, pts)
        gram = B.T @ B * (4 * np.pi / len(pts))
        assert np.abs(gram - np.eye(15)).max() < 0.01

    def test_basis_is_real(self):
        pts = fibonacci_sphere(10)
        B = real_sph_harm_basis(6, pts)
        assert B.dtype == np.float64
        assert B.shape == (10, 28)

    def test_even_parity(self):
        """Even-degree SH are antipodally symmetric — like ADC profiles."""
        pts = fibonacci_sphere(50)
        assert np.allclose(
            real_sph_harm_basis(4, pts), real_sph_harm_basis(4, -pts), atol=1e-12
        )

    def test_direction_validation(self):
        with pytest.raises(ValueError):
            real_sph_harm_basis(4, np.zeros((3, 2)))
        with pytest.raises(ValueError):
            real_sph_harm_basis(4, np.zeros((3, 3)))


class TestConversion:
    @pytest.mark.parametrize("m", [2, 4, 6])
    def test_round_trip(self, m, rng):
        t = random_symmetric_tensor(m, 3, rng=rng)
        back = sh_to_tensor(tensor_to_sh(t), m)
        assert back.allclose(t, rtol=1e-8, atol=1e-10)

    def test_functions_agree_on_sphere(self, rng):
        t = random_symmetric_tensor(4, 3, rng=rng)
        coeffs = tensor_to_sh(t)
        g = gradient_directions(60, rng=rng)
        assert np.allclose(evaluate_sh(coeffs, 4, g), adc_profile(t, g), atol=1e-9)

    def test_isotropic_profile_is_l0_only(self):
        """A = identity-like (D(g) = const on the sphere): only the l=0
        coefficient survives."""
        from repro.symtensor.random import identity_like_tensor

        t = identity_like_tensor(4, 3)
        coeffs = tensor_to_sh(t)
        assert abs(coeffs[0]) > 0.1
        assert np.abs(coeffs[1:]).max() < 1e-10

    def test_single_fiber_has_high_degree_content(self, rng):
        """An anisotropic rank-one profile needs l=4 terms."""
        t = sum_of_rank_ones(np.array([[0.0, 0.0, 1.0]]), np.array([1.0]), m=4)
        coeffs = tensor_to_sh(t)
        idx = even_sh_index_list(4)
        l4 = [abs(c) for (l, _), c in zip(idx, coeffs) if l == 4]
        assert max(l4) > 1e-3

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            sh_to_tensor(np.zeros(10), 4)  # wrong length
        with pytest.raises(ValueError):
            tensor_to_sh(random_symmetric_tensor(3, 3, rng=rng))  # odd order
        with pytest.raises(ValueError):
            tensor_to_sh(random_symmetric_tensor(4, 4, rng=rng))  # not n=3
        with pytest.raises(ValueError):
            evaluate_sh(np.zeros(14), 4, fibonacci_sphere(4))


class TestFitting:
    def test_sh_route_equals_tensor_route(self, rng):
        """Fitting in SH coefficients then converting equals fitting the
        tensor directly — the Section IV correspondence, operationally."""
        t = random_symmetric_tensor(4, 3, rng=rng)
        g = gradient_directions(40, rng=rng)
        d = adc_profile(t, g)
        via_sh = sh_to_tensor(fit_sh(g, d, degree=4), 4)
        direct = fit_symmetric_tensor(g, d, m=4)
        assert np.allclose(via_sh.values, direct.values, atol=1e-8)
        assert via_sh.allclose(t, rtol=1e-6, atol=1e-8)

    def test_underdetermined_raises(self, rng):
        g = gradient_directions(10, rng=rng)
        with pytest.raises(ValueError):
            fit_sh(g, np.zeros(10), degree=4)

    def test_sample_count_mismatch(self, rng):
        g = gradient_directions(20, rng=rng)
        with pytest.raises(ValueError):
            fit_sh(g, np.zeros(19), degree=4)

    def test_degree2_insufficient_for_crossing(self, rng):
        """Section IV's motivation: the 6-coefficient (degree-2) model
        cannot represent a two-maximum crossing profile; the degree-4 fit
        can.  Compare fit residuals."""
        from repro.mri.phantom import adc_from_fibers

        g = gradient_directions(48, rng=rng)
        dirs = np.stack([[1.0, 0, 0], [0, 1.0, 0]])
        d = adc_from_fibers(g, dirs, np.array([0.5, 0.5]))
        res2 = d - evaluate_sh(fit_sh(g, d, degree=2), 2, g)
        res4 = d - evaluate_sh(fit_sh(g, d, degree=4), 4, g)
        assert np.linalg.norm(res4) < 0.05 * np.linalg.norm(res2)
