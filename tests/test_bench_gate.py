"""Tests for the benchmark harness and regression gate (repro.bench):
smoke-run document schema, validator rejections, the compare logic, and
the `repro bench-smoke` / `repro bench-compare` CLI exit codes."""

import copy
import json

import pytest

from repro.bench import (
    BENCH_SCHEMA,
    compare_bench,
    has_regression,
    render_comparison,
    run_smoke,
    validate_bench,
    write_bench_file,
)
from repro.bench.harness import SMOKE_WORKLOADS


@pytest.fixture(scope="module")
def smoke_doc():
    # one real (but minimal) smoke run shared by the whole module
    return run_smoke(reps=1, include=["span_overhead", "kernel_ax_m1"])


def _fake_doc(**timings) -> dict:
    """A synthetic valid bench document with the given name->seconds."""
    return {
        "schema": BENCH_SCHEMA,
        "stamp": "20260101_000000",
        "meta": {"reps": 1},
        "benchmarks": [
            {"name": name, "source": "bench_x.py", "reps": 1,
             "seconds": [t], "median": t, "min": t}
            for name, t in timings.items()
        ],
    }


class TestHarness:
    def test_smoke_doc_validates(self, smoke_doc):
        assert validate_bench(smoke_doc) is smoke_doc
        assert smoke_doc["schema"] == BENCH_SCHEMA
        names = [e["name"] for e in smoke_doc["benchmarks"]]
        assert names == ["kernel_ax_m1", "span_overhead"]

    def test_entries_tagged_with_source_suite(self, smoke_doc):
        sources = {name: source for name, source, _ in SMOKE_WORKLOADS}
        for entry in smoke_doc["benchmarks"]:
            assert entry["source"] == sources[entry["name"]]

    def test_unknown_include_raises(self):
        with pytest.raises(ValueError, match="unknown smoke workloads"):
            run_smoke(reps=1, include=["nope"])

    def test_write_bench_file(self, smoke_doc, tmp_path):
        path = write_bench_file(smoke_doc, tmp_path / "BENCH_x.json")
        assert validate_bench(json.loads(path.read_text())) is not None

    def test_default_filename_uses_stamp(self, smoke_doc, tmp_path,
                                         monkeypatch):
        monkeypatch.chdir(tmp_path)
        path = write_bench_file(smoke_doc)
        assert path.name == f"BENCH_{smoke_doc['stamp']}.json"


class TestValidator:
    def test_rejects_wrong_schema(self):
        doc = _fake_doc(a=0.1)
        doc["schema"] = "repro-bench/99"
        with pytest.raises(ValueError, match="unsupported bench schema"):
            validate_bench(doc)

    def test_rejects_missing_keys(self):
        doc = _fake_doc(a=0.1)
        del doc["benchmarks"][0]["median"]
        with pytest.raises(ValueError, match="missing required key"):
            validate_bench(doc)

    def test_rejects_duplicate_names(self):
        doc = _fake_doc(a=0.1)
        doc["benchmarks"].append(dict(doc["benchmarks"][0]))
        with pytest.raises(ValueError, match="duplicate benchmark name"):
            validate_bench(doc)

    def test_rejects_negative_timing(self):
        doc = _fake_doc(a=0.1)
        doc["benchmarks"][0]["seconds"] = [-1.0]
        with pytest.raises(ValueError, match="non-timing value"):
            validate_bench(doc)

    def test_rejects_empty_benchmarks(self):
        doc = _fake_doc(a=0.1)
        doc["benchmarks"] = []
        with pytest.raises(ValueError, match="non-empty"):
            validate_bench(doc)


class TestCompare:
    def test_identical_passes(self):
        doc = _fake_doc(a=0.1, b=0.2)
        rows = compare_bench(doc, doc)
        assert all(r.status == "ok" for r in rows)
        assert not has_regression(rows)

    def test_injected_slowdown_flags_regression(self):
        old = _fake_doc(a=0.1, b=0.2)
        new = copy.deepcopy(old)
        new["benchmarks"][0]["median"] *= 2.0
        rows = compare_bench(old, new, threshold=0.2)
        by_name = {r.name: r for r in rows}
        assert by_name["a"].status == "slower"
        assert by_name["a"].ratio == pytest.approx(2.0)
        assert by_name["b"].status == "ok"
        assert has_regression(rows)

    def test_slowdown_below_threshold_is_ok(self):
        old = _fake_doc(a=0.1)
        new = _fake_doc(a=0.11)
        assert not has_regression(compare_bench(old, new, threshold=0.2))

    def test_speedup_marked_faster(self):
        rows = compare_bench(_fake_doc(a=0.2), _fake_doc(a=0.05))
        assert rows[0].status == "faster"
        assert not has_regression(rows)

    def test_added_and_removed(self):
        rows = compare_bench(_fake_doc(a=0.1, gone=0.1),
                             _fake_doc(a=0.1, fresh=0.1))
        by_name = {r.name: r for r in rows}
        assert by_name["gone"].status == "removed"
        assert by_name["fresh"].status == "added"
        assert not has_regression(rows)

    def test_metric_min(self):
        old = _fake_doc(a=0.1)
        new = copy.deepcopy(old)
        new["benchmarks"][0]["min"] = 0.5  # median unchanged
        assert not has_regression(compare_bench(old, new, metric="median"))
        assert has_regression(compare_bench(old, new, metric="min"))

    def test_render_mentions_regression(self):
        old = _fake_doc(a=0.1)
        new = _fake_doc(a=0.5)
        text = render_comparison(compare_bench(old, new), threshold=0.2)
        assert "REGRESSION" in text and "a" in text


class TestCliGate:
    def _write(self, tmp_path, name, doc):
        path = tmp_path / name
        path.write_text(json.dumps(doc))
        return str(path)

    def test_bench_smoke_writes_valid_file(self, tmp_path, capsys,
                                           monkeypatch):
        from repro.cli import main

        out = tmp_path / "BENCH_smoke.json"
        assert main(["bench-smoke", "--reps", "1", "-o", str(out)]) == 0
        doc = validate_bench(json.loads(out.read_text()))
        assert len(doc["benchmarks"]) == len(SMOKE_WORKLOADS)
        assert "wrote" in capsys.readouterr().out

    def test_compare_pass_exit_zero(self, tmp_path, capsys):
        from repro.cli import main

        a = self._write(tmp_path, "a.json", _fake_doc(x=0.1))
        assert main(["bench-compare", a, a]) == 0
        assert "OK" in capsys.readouterr().out

    def test_compare_regression_exit_nonzero(self, tmp_path, capsys):
        from repro.cli import main

        a = self._write(tmp_path, "a.json", _fake_doc(x=0.1))
        b = self._write(tmp_path, "b.json", _fake_doc(x=0.15))
        # 1.5x slowdown: fails at +20%, passes at +100%
        assert main(["bench-compare", a, b, "--threshold", "0.2"]) == 1
        assert main(["bench-compare", a, b, "--threshold", "1.0"]) == 0

    def test_compare_invalid_file_exit_two(self, tmp_path, capsys):
        from repro.cli import main

        a = self._write(tmp_path, "a.json", _fake_doc(x=0.1))
        bad = self._write(tmp_path, "bad.json", {"schema": "nope"})
        assert main(["bench-compare", a, bad]) == 2
        assert "error" in capsys.readouterr().err
