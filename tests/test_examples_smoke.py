"""Smoke tests for the example scripts: importable, documented, and with a
runnable main() (full runs are exercised manually / in benchmarks — some
take minutes)."""

import importlib.util
import pathlib

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).parent.parent / "examples").glob("*.py")
)


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
def test_example_imports_and_has_main(path):
    spec = importlib.util.spec_from_file_location(f"example_{path.stem}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    assert callable(getattr(module, "main", None)), f"{path.name} lacks main()"
    assert module.__doc__ and "Run:" in module.__doc__


def test_expected_example_set():
    names = {p.stem for p in EXAMPLES}
    assert {
        "quickstart",
        "mri_fiber_detection",
        "eigenpair_survey",
        "gpu_performance_model",
        "blocked_general_sizes",
        "tensor_algebra",
        "basin_explorer",
    } <= names


def test_quickstart_runs_end_to_end(capsys):
    """The quickstart is fast enough to execute fully."""
    path = next(p for p in EXAMPLES if p.stem == "quickstart")
    spec = importlib.util.spec_from_file_location("example_quickstart_run", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    module.main()
    out = capsys.readouterr().out
    assert "eigenpairs" in out
    assert "pos_stable" in out
