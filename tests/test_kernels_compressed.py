"""Spec-level tests of the Figure 2/3 kernels, the flop accounting, and the
general A x^{m-p} extension."""

import numpy as np
import pytest

from repro.kernels.compressed import (
    ax_m1_compressed,
    ax_m_compressed,
    symmetric_flops_scalar,
    symmetric_flops_vector,
    ttsv_compressed,
)
from repro.kernels.reference import general_flops, ttsv_dense
from repro.symtensor.random import random_symmetric_tensor
from repro.symtensor.storage import SymmetricTensor
from repro.util.combinatorics import factorial, num_unique_entries
from repro.util.flopcount import FlopCounter


class TestFlopAccounting:
    def test_scalar_kernel_counted_flops(self, size, rng):
        m, n = size
        tensor = random_symmetric_tensor(m, n, rng=rng)
        counter = FlopCounter()
        ax_m_compressed(tensor, rng.normal(size=n), counter=counter)
        assert counter.flops == symmetric_flops_scalar(m, n)
        assert counter.intops > 0

    def test_vector_kernel_counted_flops(self, size, rng):
        m, n = size
        tensor = random_symmetric_tensor(m, n, rng=rng)
        counter = FlopCounter()
        ax_m1_compressed(tensor, rng.normal(size=n), counter=counter)
        assert counter.flops == symmetric_flops_vector(m, n)

    def test_symmetric_beats_general_asymptotically(self):
        """Table II: symmetric kernel flops ~ (m+3) n^m / m! vs 2 n^m
        general — the ratio approaches (m+3)/(2 m!) from above."""
        for m in (3, 4, 5):
            n = 8
            sym = symmetric_flops_scalar(m, n)
            gen = general_flops(m, n)
            asymptotic = (m + 3) / (2 * factorial(m))
            # exact finite-n correction: prod_{i=1}^{m-1} (1 + i/n)
            correction = np.prod([1 + i / n for i in range(1, m)])
            assert np.isclose(sym / gen, asymptotic * correction)
            assert sym / gen > asymptotic  # approached from above
        # for higher orders the win is large in absolute terms too
        assert symmetric_flops_scalar(5, 8) < general_flops(5, 8) / 10

    def test_table2_ratio_shape(self):
        """The symmetric/general flop ratio should shrink like ~1/(m-1)!
        (up to the constant (m+3)/2) as m grows at fixed large n."""
        n = 6
        ratios = [
            symmetric_flops_scalar(m, n) / general_flops(m, n) for m in (2, 3, 4, 5, 6)
        ]
        assert all(r2 < r1 for r1, r2 in zip(ratios, ratios[1:]))

    def test_vector_kernel_costs_more_than_scalar(self, size):
        m, n = size
        if n == 1:
            pytest.skip("single-entry output")
        assert symmetric_flops_vector(m, n) >= symmetric_flops_scalar(m, n)


class TestGeneralTtsv:
    def test_matches_dense_for_all_p(self, rng):
        for m, n in [(3, 3), (4, 3), (5, 2), (4, 4)]:
            tensor = random_symmetric_tensor(m, n, rng=rng)
            dense = tensor.to_dense()
            x = rng.normal(size=n)
            for p in range(m):
                out = ttsv_compressed(tensor, x, p)
                ref = ttsv_dense(dense, x, p)
                if p == 0:
                    assert np.isclose(out, ref)
                elif p == 1:
                    assert np.allclose(out, ref)
                else:
                    assert isinstance(out, SymmetricTensor)
                    assert out.m == p and out.n == n
                    assert np.allclose(out.to_dense(), ref)

    def test_result_is_symmetric(self, rng):
        """Footnote 1: the result of a symmetric ttsv is symmetric."""
        from repro.symtensor.storage import is_symmetric_dense

        tensor = random_symmetric_tensor(5, 3, rng=rng)
        out = ttsv_compressed(tensor, rng.normal(size=3), 3)
        assert is_symmetric_dense(out.to_dense())

    def test_p_out_of_range(self, rng):
        tensor = random_symmetric_tensor(3, 3, rng=rng)
        x = rng.normal(size=3)
        with pytest.raises(ValueError):
            ttsv_compressed(tensor, x, 3)
        with pytest.raises(ValueError):
            ttsv_compressed(tensor, x, -1)
        with pytest.raises(ValueError):
            ttsv_dense(tensor.to_dense(), x, 5)

    def test_wrong_x_shape(self, rng):
        tensor = random_symmetric_tensor(4, 3, rng=rng)
        with pytest.raises(ValueError):
            ttsv_compressed(tensor, np.zeros(5), 2)
        with pytest.raises(ValueError):
            ttsv_dense(tensor.to_dense(), np.zeros(5), 2)

    def test_nested_contraction_consistency(self, rng):
        """Contracting one mode at a time: (A x^{m-2}) x^{1} applied to the
        order-2 result equals A x^{m-1}."""
        tensor = random_symmetric_tensor(4, 3, rng=rng)
        x = rng.normal(size=3)
        axm2 = ttsv_compressed(tensor, x, 2)  # order-2 symmetric
        v = ttsv_compressed(axm2, x, 1)
        assert np.allclose(v, ax_m1_compressed(tensor, x))


class TestCostFormulas:
    def test_scalar_flops_closed_form(self, size):
        m, n = size
        assert symmetric_flops_scalar(m, n) == (m + 3) * num_unique_entries(m, n)

    def test_scalar_flops_near_leading_term(self):
        """Section III-B.5: complexity O(n^m/(m-1)!) with O(m) work/entry."""
        m, n = 4, 20
        leading = (m + 3) * n**m / factorial(m)
        assert abs(symmetric_flops_scalar(m, n) - leading) / leading < 0.4
