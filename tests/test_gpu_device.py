"""Tests for the simulated device specifications."""

import numpy as np
import pytest

from repro.gpu.device import (
    GTX_480,
    KNOWN_DEVICES,
    NEHALEM_2S,
    TESLA_C1060,
    TESLA_C2050,
    CpuSpec,
    DeviceSpec,
)


class TestPaperHardwareAnchors:
    def test_c2050_peak_is_papers_1030(self):
        assert np.isclose(TESLA_C2050.peak_gflops, 1030.4, atol=0.5)

    def test_nehalem_per_core_peak_is_papers_22_4(self):
        assert np.isclose(NEHALEM_2S.peak_gflops_per_core, 22.4)

    def test_nehalem_topology(self):
        assert NEHALEM_2S.total_cores == 8
        assert NEHALEM_2S.sockets == 2


class TestDeviceSpec:
    def test_sm_flops_per_cycle(self):
        assert TESLA_C2050.sm_flops_per_cycle == 64  # 32 cores x FMA

    def test_max_warps(self):
        assert TESLA_C2050.max_warps_per_sm == 48  # 1536 / 32

    def test_known_devices_registry(self):
        assert TESLA_C2050.name in KNOWN_DEVICES
        assert TESLA_C1060.name in KNOWN_DEVICES
        assert GTX_480.name in KNOWN_DEVICES

    def test_specs_frozen(self):
        with pytest.raises(Exception):
            TESLA_C2050.num_sms = 2

    def test_other_gpus_have_plausible_peaks(self):
        """Section V-E: 'two other NVIDIA GPUs' — both must be within the
        era's plausible envelope."""
        for dev in (TESLA_C1060, GTX_480):
            assert 100 < dev.peak_gflops < 2000

    def test_custom_device(self):
        dev = DeviceSpec(name="toy", num_sms=2, cores_per_sm=8, clock_ghz=1.0)
        assert dev.peak_gflops == 32.0


class TestCpuSpec:
    def test_total_peak(self):
        assert np.isclose(NEHALEM_2S.peak_gflops, 8 * 22.4)

    def test_custom_cpu(self):
        cpu = CpuSpec(name="toy", sockets=1, cores_per_socket=2, clock_ghz=2.0)
        assert cpu.total_cores == 2
        assert cpu.peak_gflops_per_core == 16.0
