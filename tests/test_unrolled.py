"""Tests of the Section V-D code generator: correctness is covered by the
agreement suite; here we check the generated source, the static flop counts,
the CSE variant, and the scaling guard."""

import numpy as np
import pytest

from repro.kernels.tables import kernel_tables
from repro.kernels.unrolled import (
    _generate_source as generate_source,
    _make_unrolled as make_unrolled,
)
from repro.symtensor.random import random_symmetric_tensor


class TestGeneration:
    def test_source_is_compilable_and_inspectable(self):
        gen = make_unrolled(4, 3)
        assert "def ax_m(" in gen.source
        assert "def ax_m1(" in gen.source
        compile(gen.source, "<check>", "exec")

    def test_paper_term_counts(self):
        """Section V-D: for m=4, n=3 the A x^m sum has 15 terms and each of
        the 3 output entries of A x^{m-1} has 10 terms."""
        tab = kernel_tables(4, 3)
        assert tab.num_unique == 15
        seg_lengths = np.diff(tab.out_starts)
        assert list(seg_lengths) == [10, 10, 10]

    def test_caching(self):
        assert make_unrolled(3, 3) is make_unrolled(3, 3)
        assert make_unrolled(3, 3) is not make_unrolled(3, 3, cse=True)

    def test_guard_refuses_huge_unroll(self):
        with pytest.raises(ValueError):
            make_unrolled(10, 10)  # C(19,10) = 92378 unique entries

    def test_generate_source_returns_counts(self):
        src, fs, fv = generate_source(4, 3)
        assert fs > 0 and fv > 0
        assert isinstance(src, str)


class TestStaticFlopCounts:
    def test_scalar_count_matches_structure(self):
        """flops = per-term products + coefficient/value multiplies + adds."""
        gen = make_unrolled(4, 3)
        tab = kernel_tables(4, 3)
        U = tab.num_unique
        expected = 0
        for u in range(U):
            expected += 3  # m-1 monomial multiplies
            expected += 2 if tab.mult[u] != 1 else 1
        expected += U - 1  # additions
        assert gen.flops_scalar == expected

    def test_cse_never_costs_more(self):
        for m, n in [(3, 3), (4, 3), (4, 4), (5, 3), (6, 2)]:
            plain = make_unrolled(m, n)
            cse = make_unrolled(m, n, cse=True)
            assert cse.flops_scalar <= plain.flops_scalar
            assert cse.flops_vector <= plain.flops_vector

    def test_counts_grow_with_size(self):
        assert make_unrolled(4, 4).flops_scalar > make_unrolled(4, 3).flops_scalar
        assert make_unrolled(5, 3).flops_vector > make_unrolled(4, 3).flops_vector


class TestCseCorrectness:
    def test_cse_matches_plain(self, size, rng):
        m, n = size
        tensor = random_symmetric_tensor(m, n, rng=rng)
        x = rng.normal(size=n)
        plain = make_unrolled(m, n)
        cse = make_unrolled(m, n, cse=True)
        assert np.isclose(plain.ax_m(tensor.values, x), cse.ax_m(tensor.values, x))
        assert np.allclose(plain.ax_m1(tensor.values, x), cse.ax_m1(tensor.values, x))

    def test_cse_power_variables_in_source(self):
        gen = make_unrolled(4, 3, cse=True)
        assert "x0_2" in gen.source  # squared power local


class TestBatchedGeneration:
    def test_batched_broadcasting(self, rng):
        gen = make_unrolled(4, 3, batched=True)
        a = rng.normal(size=(5, 1, 15))
        x = rng.normal(size=(1, 7, 3))
        y = gen.ax_m(a, x)
        v = gen.ax_m1(a, x)
        assert y.shape == (5, 7)
        assert v.shape == (5, 7, 3)

    def test_batched_matches_scalar(self, rng):
        plain = make_unrolled(4, 3)
        batched = make_unrolled(4, 3, batched=True)
        a = rng.normal(size=15)
        x = rng.normal(size=3)
        assert np.isclose(batched.ax_m(a, x), plain.ax_m(a, x))
        assert np.allclose(batched.ax_m1(a, x), plain.ax_m1(a, x))

    def test_batched_cse(self, rng):
        gen = make_unrolled(4, 3, cse=True, batched=True)
        a = rng.normal(size=(4, 15))
        x = rng.normal(size=(4, 3))
        plain = make_unrolled(4, 3)
        for i in range(4):
            assert np.isclose(gen.ax_m(a, x)[i], plain.ax_m(a[i], x[i]))


class TestMatrixCase:
    def test_m2_unrolled_is_matvec(self, rng):
        gen = make_unrolled(2, 4)
        tensor = random_symmetric_tensor(2, 4, rng=rng)
        x = rng.normal(size=4)
        dense = tensor.to_dense()
        assert np.allclose(gen.ax_m1(tensor.values, x), dense @ x)
        assert np.isclose(gen.ax_m(tensor.values, x), x @ dense @ x)
