"""Tests for the exact n=2 eigenpair solver (polynomial oracle)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.exact import eigen_polynomial_n2, exact_eigenpairs_n2
from repro.core.solve import find_eigenpairs
from repro.core.sshopm import sshopm, suggested_shift
from repro.symtensor.random import random_symmetric_tensor
from repro.symtensor.storage import SymmetricTensor, symmetric_outer_power


class TestPolynomial:
    def test_degree(self, rng):
        for m in (2, 3, 4, 5, 6):
            t = random_symmetric_tensor(m, 2, rng=rng)
            assert eigen_polynomial_n2(t).shape == (m + 1,)

    def test_requires_n2(self, rng):
        t = random_symmetric_tensor(3, 3, rng=rng)
        with pytest.raises(ValueError):
            eigen_polynomial_n2(t)

    def test_roots_satisfy_eigen_equation(self, rng):
        """Every real root of the polynomial gives a true eigenpair."""
        t = random_symmetric_tensor(4, 2, rng=rng)
        pairs = exact_eigenpairs_n2(t)
        assert pairs  # even order always has real pairs
        for p in pairs:
            assert p.residual < 1e-10

    def test_matrix_case_matches_eigh(self, rng):
        t = random_symmetric_tensor(2, 2, rng=rng)
        w, V = np.linalg.eigh(t.to_dense())
        pairs = exact_eigenpairs_n2(t)
        lams = sorted(p.eigenvalue for p in pairs)
        assert np.allclose(lams, w, atol=1e-12)

    def test_rank_one_known_roots(self, rng):
        """A = e_2^{(x)4}: eigenvectors are e_2 (lambda 1) and e_1
        (lambda 0, in the kernel)."""
        t = symmetric_outer_power(np.array([0.0, 1.0]), 4)
        pairs = exact_eigenpairs_n2(t)
        lams = sorted(round(p.eigenvalue, 10) for p in pairs)
        assert 1.0 in lams
        assert 0.0 in lams

    def test_root_at_infinity_handled(self):
        """A tensor whose polynomial has vanishing leading coefficient:
        x = (0, 1) must still be reported when it is an eigenvector."""
        # e_1^{(x)4}: eigenvectors e_1 (lambda 1) and e_2 (lambda 0, the
        # root at infinity of p(s))
        t = symmetric_outer_power(np.array([1.0, 0.0]), 4)
        pairs = exact_eigenpairs_n2(t)
        vecs = [tuple(np.round(np.abs(p.eigenvector), 8)) for p in pairs]
        assert (0.0, 1.0) in vecs
        assert (1.0, 0.0) in vecs


class TestAsOracle:
    @given(st.integers(3, 6), st.integers(0, 10**6))
    @settings(max_examples=15)
    def test_sshopm_results_among_exact_roots(self, m, seed):
        t = random_symmetric_tensor(m, 2, rng=seed)
        exact = exact_eigenpairs_n2(t)
        res = sshopm(t, alpha=suggested_shift(t), rng=seed, tol=1e-14, max_iters=8000)
        if not res.converged or res.residual > 1e-7:
            return
        from repro.core.eigenpairs import canonicalize_sign

        lam, _ = canonicalize_sign(res.eigenvalue, res.eigenvector, m)
        assert any(abs(lam - p.eigenvalue) < 1e-6 for p in exact), (
            lam,
            [p.eigenvalue for p in exact],
        )

    def test_multistart_finds_all_stable_roots(self, rng):
        """Every positive-stable exact root should be reachable by enough
        convex-shifted starts (even order)."""
        t = random_symmetric_tensor(4, 2, rng=rng)
        exact = exact_eigenpairs_n2(t)
        stable = [p for p in exact if p.stability == "pos_stable"]
        found = find_eigenpairs(t, num_starts=200, alpha=suggested_shift(t),
                                rng=rng, tol=1e-13, max_iters=6000)
        for p in stable:
            assert any(abs(f.eigenvalue - p.eigenvalue) < 1e-6 for f in found)

    def test_count_bounded_by_cartwright_sturmfels(self, rng):
        """n=2: at most m distinct eigenpairs over C, so at most m real."""
        for m in (3, 4, 5, 6, 7):
            t = random_symmetric_tensor(m, 2, rng=rng)
            pairs = exact_eigenpairs_n2(t)
            assert len(pairs) <= m

    def test_classification_present(self, rng):
        t = random_symmetric_tensor(4, 2, rng=rng)
        for p in exact_eigenpairs_n2(t):
            assert p.stability in {"pos_stable", "neg_stable", "unstable", "degenerate"}
        for p in exact_eigenpairs_n2(t, classify=False):
            assert p.stability == ""
