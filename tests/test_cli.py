"""CLI tests (invoking main() in-process and checking output/exit codes)."""

import pytest

from repro.cli import build_parser, main


class TestSpectrum:
    def test_example_tensor(self, capsys):
        assert main(["spectrum", "--example", "--starts", "48"]) == 0
        out = capsys.readouterr().out
        assert "pos_stable" in out
        assert "+0.87" in out  # principal eigenvalue of the example

    def test_random_tensor(self, capsys):
        assert main(["spectrum", "--m", "4", "--n", "3", "--seed", "42",
                     "--starts", "32"]) == 0
        out = capsys.readouterr().out
        assert "lambda" in out

    def test_adaptive_flag(self, capsys):
        assert main(["spectrum", "--example", "--starts", "16", "--adaptive"]) == 0
        assert "adaptive run" in capsys.readouterr().out

    def test_explicit_alpha(self, capsys):
        assert main(["spectrum", "--example", "--starts", "16",
                     "--alpha", "6.0"]) == 0


class TestPhantomDetect:
    def test_phantom_then_detect(self, tmp_path, capsys):
        out_file = str(tmp_path / "p.npz")
        assert main(["phantom", "--rows", "4", "--cols", "4",
                     "--gradients", "20", "--noise", "0.0",
                     "-o", out_file]) == 0
        out = capsys.readouterr().out
        assert "16 voxels" in out
        assert main(["detect", out_file, "--starts", "32"]) == 0
        out = capsys.readouterr().out
        assert "correct fiber count" in out


class TestGpuModel:
    def test_default_device(self, capsys):
        assert main(["gpu-model"]) == 0
        out = capsys.readouterr().out
        assert "Tesla C2050" in out
        assert "GPU   unrolled" in out

    def test_unknown_device_falls_back(self, capsys):
        assert main(["gpu-model", "--device", "H100"]) == 0
        assert "Tesla C2050" in capsys.readouterr().out

    def test_custom_workload(self, capsys):
        assert main(["gpu-model", "--tensors", "64", "--iterations", "20"]) == 0


class TestKernels:
    def test_small_size(self, capsys):
        assert main(["kernels", "--m", "3", "--n", "3", "--reps", "5"]) == 0
        out = capsys.readouterr().out
        for name in ("compressed", "precomputed", "unrolled", "vectorized", "blocked"):
            assert name in out


class TestBasins:
    def test_basin_map_output(self, capsys):
        assert main(["basins", "--example", "--resolution", "150",
                     "--width", "30", "--height", "8"]) == 0
        out = capsys.readouterr().out
        assert "converged:" in out
        assert "random starts for 99%" in out


class TestCudagen:
    def test_print_to_stdout(self, capsys):
        assert main(["cudagen"]) == 0
        out = capsys.readouterr().out
        assert "__global__" in out
        assert "sshopm_unrolled" in out

    def test_write_to_file(self, tmp_path, capsys):
        out_file = str(tmp_path / "sshopm.cu")
        assert main(["cudagen", "--m", "4", "--n", "3", "-o", out_file]) == 0
        text = open(out_file).read()
        assert "sshopm_general" in text
        assert "wrote" in capsys.readouterr().out


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_subcommand(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])


class TestVersionFlag:
    def test_version_prints_and_exits(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["--version"])
        assert exc.value.code == 0
        out = capsys.readouterr().out
        import repro

        assert out.strip() == f"repro {repro.__version__}"

    def test_version_matches_pyproject(self):
        import re
        from pathlib import Path

        import repro

        pyproject = Path(repro.__file__).resolve().parents[2] / "pyproject.toml"
        match = re.search(r'^version\s*=\s*"([^"]+)"', pyproject.read_text(),
                          re.MULTILINE)
        assert match and repro.__version__ == match.group(1)


class TestTraceFlagPlacement:
    def test_trace_before_subcommand(self, tmp_path, capsys):
        from repro.instrument import load_trace

        out = tmp_path / "pre.json"
        status = main(["--trace", str(out), "spectrum", "--m", "3", "--n", "3",
                       "--starts", "8", "--max-iter", "200"])
        assert status == 0
        rec = load_trace(out)
        assert rec.meta["command"] == "spectrum"
        assert "TOTAL" in capsys.readouterr().out

    def test_unwritable_trace_path_exits_two(self, tmp_path, capsys):
        bad = tmp_path / "no" / "such" / "dir" / "t.json"
        status = main(["spectrum", "--example", "--starts", "8",
                       "--trace", str(bad)])
        assert status == 2
        err = capsys.readouterr().err
        assert "cannot write trace file" in err
