"""CLI tests (invoking main() in-process and checking output/exit codes)."""

import pytest

from repro.cli import build_parser, main


class TestSpectrum:
    def test_example_tensor(self, capsys):
        assert main(["spectrum", "--example", "--starts", "48"]) == 0
        out = capsys.readouterr().out
        assert "pos_stable" in out
        assert "+0.87" in out  # principal eigenvalue of the example

    def test_random_tensor(self, capsys):
        assert main(["spectrum", "--m", "4", "--n", "3", "--seed", "42",
                     "--starts", "32"]) == 0
        out = capsys.readouterr().out
        assert "lambda" in out

    def test_adaptive_flag(self, capsys):
        assert main(["spectrum", "--example", "--starts", "16", "--adaptive"]) == 0
        assert "adaptive run" in capsys.readouterr().out

    def test_explicit_alpha(self, capsys):
        assert main(["spectrum", "--example", "--starts", "16",
                     "--alpha", "6.0"]) == 0


class TestPhantomDetect:
    def test_phantom_then_detect(self, tmp_path, capsys):
        out_file = str(tmp_path / "p.npz")
        assert main(["phantom", "--rows", "4", "--cols", "4",
                     "--gradients", "20", "--noise", "0.0",
                     "-o", out_file]) == 0
        out = capsys.readouterr().out
        assert "16 voxels" in out
        assert main(["detect", out_file, "--starts", "32"]) == 0
        out = capsys.readouterr().out
        assert "correct fiber count" in out


class TestGpuModel:
    def test_default_device(self, capsys):
        assert main(["gpu-model"]) == 0
        out = capsys.readouterr().out
        assert "Tesla C2050" in out
        assert "GPU   unrolled" in out

    def test_unknown_device_falls_back(self, capsys):
        assert main(["gpu-model", "--device", "H100"]) == 0
        assert "Tesla C2050" in capsys.readouterr().out

    def test_custom_workload(self, capsys):
        assert main(["gpu-model", "--tensors", "64", "--iterations", "20"]) == 0


class TestKernels:
    def test_small_size(self, capsys):
        assert main(["kernels", "--m", "3", "--n", "3", "--reps", "5"]) == 0
        out = capsys.readouterr().out
        for name in ("compressed", "precomputed", "unrolled", "vectorized", "blocked"):
            assert name in out


class TestBasins:
    def test_basin_map_output(self, capsys):
        assert main(["basins", "--example", "--resolution", "150",
                     "--width", "30", "--height", "8"]) == 0
        out = capsys.readouterr().out
        assert "converged:" in out
        assert "random starts for 99%" in out


class TestCudagen:
    def test_print_to_stdout(self, capsys):
        assert main(["cudagen"]) == 0
        out = capsys.readouterr().out
        assert "__global__" in out
        assert "sshopm_unrolled" in out

    def test_write_to_file(self, tmp_path, capsys):
        out_file = str(tmp_path / "sshopm.cu")
        assert main(["cudagen", "--m", "4", "--n", "3", "-o", out_file]) == 0
        text = open(out_file).read()
        assert "sshopm_general" in text
        assert "wrote" in capsys.readouterr().out


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_subcommand(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])


class TestExitCodes:
    """Spec-12 contract: bad input and unreadable files exit 2 (not a
    traceback, not exit 1 — that's reserved for 'ran but found nothing')."""

    def test_detect_unreadable_file_exits_2(self, capsys):
        assert main(["detect", "/nonexistent/phantom.npz"]) == 2
        assert "error" in capsys.readouterr().err

    def test_phantom_unwritable_output_exits_2(self, capsys):
        assert main(["phantom", "--rows", "2", "--cols", "2",
                     "--gradients", "16",
                     "-o", "/nonexistent/dir/p.npz"]) == 2
        assert "error" in capsys.readouterr().err

    def test_phantom_bad_parameters_exit_2(self, capsys):
        assert main(["phantom", "--rows", "2", "--cols", "2",
                     "--gradients", "1", "-o", "p.npz"]) == 2
        assert "error" in capsys.readouterr().err

    def test_report_unreadable_trace_exits_2(self, capsys):
        assert main(["report", "/nonexistent/trace.json"]) == 2
        assert "error" in capsys.readouterr().err

    def test_fleet_solve_unreadable_batch_exits_2(self, capsys):
        assert main(["fleet-solve", "--batch", "/nonexistent/b.npz"]) == 2
        assert "error" in capsys.readouterr().err

    def test_cudagen_unwritable_output_exits_2(self, capsys):
        assert main(["cudagen", "-o", "/nonexistent/dir/k.cu"]) == 2
        assert "error" in capsys.readouterr().err

    def test_ckpt_gc_negative_keep_exits_2(self, tmp_path, capsys):
        assert main(["ckpt", "gc", str(tmp_path), "--keep", "-1"]) == 2
        assert "error" in capsys.readouterr().err


class TestJsonOutput:
    """The --json contract: exactly one parseable document on stdout."""

    def test_fleet_solve_json(self, capsys):
        import json

        assert main(["fleet-solve", "--tensors", "4", "--m", "3", "--n", "4",
                     "--starts", "4", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["tensors"] == 4 and doc["starts"] == 4
        assert doc["converged"] >= 1 and doc["stopped"] is False
        assert len(doc["eigenvalues"]) == 4
        assert doc["solver"].startswith("fleet")

    def test_fleet_solve_json_includes_shards(self, capsys):
        import json

        assert main(["fleet-solve", "--tensors", "6", "--m", "3", "--n", "4",
                     "--starts", "4", "--workers", "2", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["shards"]["workers"] == 2
        assert sum(doc["shards"]["sizes"]) == 6
        assert doc["shards"]["executor"] in ("thread", "process")

    def test_report_json(self, capsys):
        import json
        from pathlib import Path

        trace = (Path(__file__).resolve().parents[1] / "benchmarks"
                 / "results" / "mri_pipeline_trace.trace.json")
        assert main(["report", str(trace), "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc.get("schema", "").startswith("repro-trace/")


class TestCkptCli:
    def _seed_dir(self, tmp_path):
        import json
        import os as _os

        for i in range(3):
            p = tmp_path / f"c{i}.json"
            p.write_text(json.dumps({"schema": "repro-ckpt/1",
                                     "starts": {}}))
            _os.utime(p, (1000 + i, 1000 + i))
        (tmp_path / "drain.json").write_text(
            json.dumps({"schema": "repro-drain/1", "jobs": []}))

    def test_gc_prunes_and_reports_json(self, tmp_path, capsys):
        import json

        self._seed_dir(tmp_path)
        assert main(["ckpt", "gc", str(tmp_path), "--keep", "1",
                     "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert sorted(p.rsplit("/", 1)[-1] for p in doc["pruned"]) == [
            "c0.json", "c1.json"]
        assert [p.rsplit("/", 1)[-1] for p in doc["kept"]] == ["c2.json"]
        # the drain manifest is not a checkpoint; gc must not touch it
        assert (tmp_path / "drain.json").exists()
        assert not (tmp_path / "c0.json").exists()

    def test_gc_dry_run_deletes_nothing(self, tmp_path, capsys):
        import json

        self._seed_dir(tmp_path)
        assert main(["ckpt", "gc", str(tmp_path), "--keep", "0",
                     "--dry-run", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["dry_run"] and len(doc["pruned"]) == 3
        assert len(list(tmp_path.glob("c*.json"))) == 3

    def test_list_newest_first(self, tmp_path, capsys):
        import json

        self._seed_dir(tmp_path)
        assert main(["ckpt", "list", str(tmp_path), "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        names = [p.rsplit("/", 1)[-1] for p in doc["checkpoints"]]
        assert names == ["c2.json", "c1.json", "c0.json"]


class TestVersionFlag:
    def test_version_prints_and_exits(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["--version"])
        assert exc.value.code == 0
        out = capsys.readouterr().out
        import repro

        assert out.strip() == f"repro {repro.__version__}"

    def test_version_matches_pyproject(self):
        import re
        from pathlib import Path

        import repro

        pyproject = Path(repro.__file__).resolve().parents[2] / "pyproject.toml"
        match = re.search(r'^version\s*=\s*"([^"]+)"', pyproject.read_text(),
                          re.MULTILINE)
        assert match and repro.__version__ == match.group(1)


class TestTraceFlagPlacement:
    def test_trace_before_subcommand(self, tmp_path, capsys):
        from repro.instrument import load_trace

        out = tmp_path / "pre.json"
        status = main(["--trace", str(out), "spectrum", "--m", "3", "--n", "3",
                       "--starts", "8", "--max-iter", "200"])
        assert status == 0
        rec = load_trace(out)
        assert rec.meta["command"] == "spectrum"
        assert "TOTAL" in capsys.readouterr().out

    def test_unwritable_trace_path_exits_two(self, tmp_path, capsys):
        bad = tmp_path / "no" / "such" / "dir" / "t.json"
        status = main(["spectrum", "--example", "--starts", "8",
                       "--trace", str(bad)])
        assert status == 2
        err = capsys.readouterr().err
        assert "cannot write trace file" in err
