"""Tests for the SS-HOPM fixed-point convergence theory."""

import numpy as np
import pytest

from repro.core.eigenpairs import classify_eigenpair
from repro.core.solve import find_eigenpairs
from repro.core.sshopm import sshopm, suggested_shift
from repro.core.theory import (
    analyze_fixed_point,
    estimate_rate,
    is_attracting,
    minimal_attracting_shift,
)
from repro.symtensor.random import random_odeco_tensor, random_symmetric_tensor
from repro.util.rng import random_unit_vector


@pytest.fixture(scope="module")
def tensor_and_pairs():
    t = random_symmetric_tensor(4, 3, rng=42)
    pairs = find_eigenpairs(t, num_starts=128, alpha=suggested_shift(t),
                            rng=1, tol=1e-14, max_iters=5000)
    return t, pairs


class TestAnalysis:
    def test_rate_below_one_with_conservative_shift(self, tensor_and_pairs):
        t, pairs = tensor_and_pairs
        alpha = suggested_shift(t)
        for p in pairs:
            if p.stability != "pos_stable":
                continue
            ana = analyze_fixed_point(t, p.eigenvalue, p.eigenvector, alpha)
            assert ana.attracting
            assert 0 <= ana.rate < 1

    def test_conservative_shift_slows_rate(self, tensor_and_pairs):
        """Larger shifts push the multiplier toward 1 — the quantitative
        form of the paper's Section V-A convergence/speed tradeoff."""
        t, pairs = tensor_and_pairs
        p = pairs[0]
        small = analyze_fixed_point(t, p.eigenvalue, p.eigenvector, 2.0)
        big = analyze_fixed_point(t, p.eigenvalue, p.eigenvector, 200.0)
        assert small.rate < big.rate < 1.0

    def test_predicted_rate_matches_measurement(self, tensor_and_pairs):
        """Measured geometric decay of |lambda_k - lambda_inf| equals
        rho^2 (eigenvalue error quadratic in eigenvector error)."""
        t, pairs = tensor_and_pairs
        p = pairs[0]
        alpha = suggested_shift(t)
        ana = analyze_fixed_point(t, p.eigenvalue, p.eigenvector, alpha)
        x0 = p.eigenvector + 0.05 * random_unit_vector(3, rng=3)
        res = sshopm(t, x0=x0, alpha=alpha, tol=1e-15, max_iters=8000)
        measured = estimate_rate(res.lambda_history)
        assert np.isfinite(measured)
        assert abs(measured - ana.rate**2) < 0.05

    def test_matrix_power_method_rate(self, rng):
        """m=2 sanity: the classical power-method rate
        |mu_2 + alpha| / |mu_1 + alpha| falls out of the same analysis."""
        t = random_symmetric_tensor(2, 4, rng=rng)
        w, V = np.linalg.eigh(t.to_dense())
        alpha = suggested_shift(t)
        ana = analyze_fixed_point(t, w[-1], V[:, -1], alpha)
        expected = max(abs(wi + alpha) for wi in w[:-1]) / abs(w[-1] + alpha)
        assert np.isclose(ana.rate, expected, atol=1e-8)


class TestAttraction:
    def test_pos_stable_iff_finitely_shiftable(self, tensor_and_pairs):
        """A pair can be made attracting by some finite nonnegative shift
        exactly when it is positive stable."""
        t, pairs = tensor_and_pairs
        for p in pairs:
            a_min = minimal_attracting_shift(t, p.eigenvalue, p.eigenvector)
            label = classify_eigenpair(t, p.eigenvalue, p.eigenvector)
            if label == "pos_stable":
                assert np.isfinite(a_min)
            elif label in ("neg_stable", "unstable"):
                assert np.isinf(a_min)

    def test_minimal_shift_is_tight(self, tensor_and_pairs):
        """Just above the minimal shift the pair attracts; well below a
        positive threshold it does not."""
        t, pairs = tensor_and_pairs
        for p in pairs:
            a_min = minimal_attracting_shift(t, p.eigenvalue, p.eigenvector,
                                             margin=1e-9)
            if not np.isfinite(a_min):
                continue
            assert is_attracting(t, p.eigenvalue, p.eigenvector, a_min + 1e-6)
            if a_min > 1e-3:
                assert not is_attracting(t, p.eigenvalue, p.eigenvector,
                                         a_min - 1e-3)

    def test_minimal_shift_below_conservative(self, tensor_and_pairs):
        """The pointwise minimal shift is far below the provable global
        bound — why adaptive shifting is faster."""
        t, pairs = tensor_and_pairs
        conservative = suggested_shift(t)
        for p in pairs:
            a_min = minimal_attracting_shift(t, p.eigenvalue, p.eigenvector)
            if np.isfinite(a_min):
                assert a_min < conservative / 5

    def test_empirical_attraction_boundary(self, rng):
        """Run the iteration from a nearby start on both sides of the
        predicted threshold for a pair with a_min > 0."""
        t, pairs = random_symmetric_tensor(4, 3, rng=11), None
        pairs = find_eigenpairs(t, num_starts=96, alpha=suggested_shift(t),
                                rng=12, tol=1e-14, max_iters=5000)
        target = None
        for p in pairs:
            a_min = minimal_attracting_shift(t, p.eigenvalue, p.eigenvector)
            if np.isfinite(a_min) and a_min > 0.05:
                target = (p, a_min)
                break
        if target is None:
            pytest.skip("no pair with a positive attraction threshold")
        p, a_min = target
        x0 = p.eigenvector + 0.02 * random_unit_vector(3, rng=13)
        above = sshopm(t, x0=x0, alpha=a_min + 0.2, tol=1e-13, max_iters=20000)
        assert abs(above.eigenvalue - p.eigenvalue) < 1e-6

    def test_odeco_components_attracting_unshifted(self, rng):
        """For odeco tensors with positive weights, every component of an
        even-order tensor attracts the *unshifted* iteration when its
        weight dominates the tangent spectrum (mu_i = 0 there)."""
        tensor, basis, weights = random_odeco_tensor(4, 3, rng=rng)
        for w, u in zip(weights, basis):
            ana = analyze_fixed_point(tensor, w, u, 0.0)
            assert np.allclose(ana.tangent_eigenvalues, 0.0, atol=1e-9)
            assert ana.attracting


class TestRateEstimator:
    def test_clean_geometric_sequence(self):
        """Finite-history bias (the limit is taken as hist[-1]) keeps the
        estimate within a few percent of the true rate."""
        rho = 0.8
        hist = [1.0 - rho**k for k in range(80)]
        assert abs(estimate_rate(hist) - rho) < 0.02

    def test_short_history_nan(self):
        assert np.isnan(estimate_rate([1.0, 2.0]))

    def test_converged_history_nan(self):
        assert np.isnan(estimate_rate([2.0] * 30))
