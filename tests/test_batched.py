"""Tests for the batched vectorized kernels and their table machinery."""

import numpy as np
import pytest

from repro.kernels.batched import ax_m1_batched, ax_m_batched, monomials_batched
from repro.kernels.reference import ax_m1_dense, ax_m_dense
from repro.kernels.tables import kernel_tables
from repro.symtensor.random import random_symmetric_batch, random_symmetric_tensor
from repro.util.flopcount import FlopCounter


class TestShapes:
    def test_single_pair(self, rng):
        t = random_symmetric_tensor(4, 3, rng=rng)
        x = rng.normal(size=3)
        assert np.isscalar(float(ax_m_batched(t.values, x)))
        assert ax_m1_batched(t.values, x).shape == (3,)

    def test_tensor_batch_one_vector(self, rng):
        batch = random_symmetric_batch(6, 4, 3, rng=rng)
        x = rng.normal(size=3)
        y = ax_m_batched(batch.values, x)
        v = ax_m1_batched(batch.values, x)
        assert y.shape == (6,)
        assert v.shape == (6, 3)

    def test_full_grid_broadcast(self, rng):
        batch = random_symmetric_batch(4, 3, 3, rng=rng)
        X = rng.normal(size=(4, 9, 3))
        y = ax_m_batched(batch.values[:, None, :], X)
        v = ax_m1_batched(batch.values[:, None, :], X)
        assert y.shape == (4, 9)
        assert v.shape == (4, 9, 3)
        for t in range(4):
            for k in range(9):
                dense = batch[t].to_dense()
                assert np.isclose(y[t, k], ax_m_dense(dense, X[t, k]))
                assert np.allclose(v[t, k], ax_m1_dense(dense, X[t, k]))

    def test_shared_starts_broadcast(self, rng):
        """The GPU layout: every block (tensor) uses the same start set."""
        batch = random_symmetric_batch(3, 4, 3, rng=rng)
        starts = rng.normal(size=(5, 3))
        y = ax_m_batched(batch.values[:, None, :], starts[None, :, :])
        assert y.shape == (3, 5)


class TestMonomials:
    def test_monomials_match_outer_power(self, size, rng):
        from repro.symtensor.storage import symmetric_outer_power

        m, n = size
        tab = kernel_tables(m, n)
        x = rng.normal(size=n)
        mono = monomials_batched(x, tab)
        assert np.allclose(mono, symmetric_outer_power(x, m).values)

    def test_monomials_batch_axis(self, rng):
        tab = kernel_tables(3, 4)
        X = rng.normal(size=(7, 4))
        mono = monomials_batched(X, tab)
        assert mono.shape == (7, tab.num_unique)


class TestTableInference:
    def test_inference_from_shapes(self, rng):
        t = random_symmetric_tensor(5, 3, rng=rng)
        x = rng.normal(size=3)
        dense = t.to_dense()
        assert np.isclose(ax_m_batched(t.values, x), ax_m_dense(dense, x))

    def test_inference_failure_raises(self, rng):
        with pytest.raises(ValueError):
            ax_m_batched(rng.normal(size=7), rng.normal(size=3))  # 7 != C(m+2,m)

    def test_inference_failure_is_typed(self, rng):
        from repro.kernels.errors import KernelLookupError, TableInferenceError

        with pytest.raises(TableInferenceError, match="cannot infer"):
            ax_m_batched(rng.normal(size=7), rng.normal(size=3))
        # the typed family stays catchable as the historical ValueError
        # and as the shared kernel-lookup base
        assert issubclass(TableInferenceError, ValueError)
        assert issubclass(TableInferenceError, KernelLookupError)

    def test_ambiguous_n1_refuses_to_guess(self, rng):
        from repro.kernels.errors import TableInferenceError

        with pytest.raises(TableInferenceError, match="n=1"):
            ax_m_batched(rng.normal(size=1), rng.normal(size=1))

    def test_mismatched_explicit_tables_rejected(self, rng):
        # historically accepted silently (tables trusted blindly -> garbage)
        from repro.kernels.errors import TableInferenceError

        t = random_symmetric_tensor(5, 3, rng=rng)
        wrong = kernel_tables(4, 3)  # 15 unique values, arrays carry 21
        with pytest.raises(TableInferenceError, match="supplied tables"):
            ax_m_batched(t.values, rng.normal(size=3), tables=wrong)

    def test_matching_explicit_tables_accepted(self, rng):
        t = random_symmetric_tensor(5, 3, rng=rng)
        x = rng.normal(size=3)
        tab = kernel_tables(5, 3)
        assert np.isclose(ax_m_batched(t.values, x, tables=tab),
                          ax_m_batched(t.values, x))


class TestFlopCounter:
    def test_counts_scale_with_batch(self, rng):
        batch = random_symmetric_batch(4, 4, 3, rng=rng)
        X = rng.normal(size=(4, 8, 3))
        c1, c2 = FlopCounter(), FlopCounter()
        ax_m_batched(batch.values[:, None, :], X[:, :1], counter=c1)
        ax_m_batched(batch.values[:, None, :], X, counter=c2)
        assert c2.flops == 8 * c1.flops

    def test_vector_kernel_counts(self, rng):
        t = random_symmetric_tensor(4, 3, rng=rng)
        c = FlopCounter()
        ax_m1_batched(t.values, rng.normal(size=3), counter=c)
        tab = kernel_tables(4, 3)
        assert c.flops == tab.num_rows * 6  # (m+2) per row


class TestKernelTables:
    def test_row_expansion_sorted_by_output(self, size):
        m, n = size
        tab = kernel_tables(m, n)
        assert np.all(np.diff(tab.row_out) >= 0)
        assert tab.out_starts[0] == 0
        assert tab.out_starts[-1] == tab.num_rows

    def test_every_output_entry_has_rows(self, size):
        m, n = size
        tab = kernel_tables(m, n)
        assert np.all(np.diff(tab.out_starts) > 0)

    def test_row_count_equals_distinct_index_pairs(self, size):
        from repro.symtensor.indexing import iter_index_classes

        m, n = size
        tab = kernel_tables(m, n)
        expected = sum(len(set(ix)) for ix in iter_index_classes(m, n))
        assert tab.num_rows == expected

    def test_row_factor_shape(self, size):
        m, n = size
        tab = kernel_tables(m, n)
        assert tab.row_factors.shape == (tab.num_rows, m - 1)

    def test_extra_storage_accounting(self):
        tab = kernel_tables(4, 3)
        # at least the paper's (m+2)x integer data: m*U index + U mult
        assert tab.extra_storage_elements() >= (4 + 1) * tab.num_unique

    def test_rejects_order_one(self):
        with pytest.raises(ValueError):
            kernel_tables(1, 3)

    def test_caching(self):
        assert kernel_tables(4, 3) is kernel_tables(4, 3)
