"""Tests for the blocked symmetric kernels (the paper's future work:
Section V-D's 'blocked approach' with Section VI's 'shapes of register
blocks')."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernels.blocked import (
    ax_m1_blocked,
    ax_m_blocked,
    block_shapes,
    blocking_plan,
)
from repro.kernels.compressed import ax_m1_compressed, ax_m_compressed
from repro.symtensor.random import random_symmetric_tensor
from repro.util.combinatorics import factorial, multinomial, num_unique_entries


class TestBlockShapes:
    def test_m4_shapes_match_paper_discussion(self):
        """The 'various shapes of register blocks that arise (for each
        order m)' — for m=4 these are the 5 integer partitions."""
        assert block_shapes(4) == [(4,), (3, 1), (2, 2), (2, 1, 1), (1, 1, 1, 1)]

    @pytest.mark.parametrize("m,count", [(1, 1), (2, 2), (3, 3), (4, 5), (5, 7), (6, 11), (8, 22)])
    def test_partition_counts(self, m, count):
        shapes = block_shapes(m)
        assert len(shapes) == count  # partition numbers p(m)
        for s in shapes:
            assert sum(s) == m
            assert list(s) == sorted(s, reverse=True)

    def test_invalid_order(self):
        with pytest.raises(ValueError):
            block_shapes(0)


class TestBlockingPlan:
    def test_blocks_partition_unique_entries(self):
        for m, n, b in [(3, 5, 2), (4, 6, 3), (4, 7, 4), (5, 4, 2)]:
            plan = blocking_plan(m, n, b)
            total = sum(blk.gather.size for blk in plan.blocks)
            assert total == num_unique_entries(m, n)
            # no duplicates across blocks
            seen = np.concatenate([blk.gather.ravel() for blk in plan.blocks])
            assert len(np.unique(seen)) == total

    def test_inter_coefficients(self):
        plan = blocking_plan(4, 6, 3)  # 2 chunks
        for blk in plan.blocks:
            assert blk.inter_coeff == multinomial(blk.orders)
            assert sum(blk.orders) == 4

    def test_single_chunk_degenerates_to_one_block(self):
        plan = blocking_plan(4, 5, 5)
        assert plan.num_blocks == 1
        assert plan.blocks[0].orders == (4,)
        assert plan.blocks[0].inter_coeff == 1

    def test_unit_chunks_expose_all_shapes(self):
        """block_size=1 gives chunk==index: every class becomes a block of
        size 1, with shape = its monomial pattern."""
        plan = blocking_plan(3, 3, 1)
        assert plan.num_blocks == num_unique_entries(3, 3)
        for blk in plan.blocks:
            assert blk.gather.size == 1

    def test_block_count_is_chunk_class_count(self):
        plan = blocking_plan(4, 8, 3)  # 3 chunks
        assert plan.num_blocks == num_unique_entries(4, 3)

    def test_shapes_used_subset_of_partitions(self):
        plan = blocking_plan(5, 6, 2)
        assert plan.shapes_used() <= set(block_shapes(5))

    def test_validation(self):
        with pytest.raises(ValueError):
            blocking_plan(1, 4, 2)
        with pytest.raises(ValueError):
            blocking_plan(3, 4, 0)
        with pytest.raises(ValueError):
            blocking_plan(3, 4, 5)

    def test_caching(self):
        assert blocking_plan(4, 6, 3) is blocking_plan(4, 6, 3)


class TestBlockedKernelAgreement:
    @pytest.mark.parametrize(
        "m,n,b",
        [(2, 5, 2), (3, 4, 2), (4, 3, 2), (4, 6, 3), (4, 7, 4), (5, 5, 2), (6, 4, 3)],
    )
    def test_matches_compressed(self, m, n, b, rng):
        t = random_symmetric_tensor(m, n, rng=rng)
        x = rng.normal(size=n)
        assert np.isclose(ax_m_blocked(t, x, block_size=b), ax_m_compressed(t, x))
        assert np.allclose(ax_m1_blocked(t, x, block_size=b), ax_m1_compressed(t, x))

    def test_block_size_invariance(self, rng):
        """The result must not depend on the chunking."""
        t = random_symmetric_tensor(4, 7, rng=rng)
        x = rng.normal(size=7)
        ref = ax_m_blocked(t, x, block_size=7)
        for b in (1, 2, 3, 4, 5, 6):
            assert np.isclose(ax_m_blocked(t, x, block_size=b), ref)
            assert np.allclose(
                ax_m1_blocked(t, x, block_size=b), ax_m1_blocked(t, x, block_size=7)
            )

    def test_euler_identity(self, rng):
        t = random_symmetric_tensor(5, 6, rng=rng)
        x = rng.normal(size=6)
        assert np.isclose(ax_m1_blocked(t, x) @ x, ax_m_blocked(t, x))

    def test_zero_entries_in_x(self, rng):
        t = random_symmetric_tensor(4, 6, rng=rng)
        x = rng.normal(size=6)
        x[1] = x[4] = 0.0
        assert np.allclose(ax_m1_blocked(t, x, block_size=3), ax_m1_compressed(t, x))

    def test_dispatch_variant(self, rng):
        from repro.kernels.dispatch import get_kernels

        t = random_symmetric_tensor(4, 5, rng=rng)
        x = rng.normal(size=5)
        pair = get_kernels("blocked", 4, 5)
        assert np.isclose(pair.ax_m(t, x), ax_m_compressed(t, x))
        assert np.allclose(pair.ax_m1(t, x), ax_m1_compressed(t, x))

    def test_plan_shape_mismatch_raises(self, rng):
        t = random_symmetric_tensor(4, 5, rng=rng)
        plan = blocking_plan(4, 6, 3)
        with pytest.raises(ValueError):
            ax_m_blocked(t, rng.normal(size=5), plan=plan)
        with pytest.raises(ValueError):
            ax_m1_blocked(t, rng.normal(size=5), plan=plan)

    def test_x_shape_validation(self, rng):
        t = random_symmetric_tensor(4, 5, rng=rng)
        with pytest.raises(ValueError):
            ax_m_blocked(t, np.zeros(4))
        with pytest.raises(ValueError):
            ax_m1_blocked(t, np.zeros(6))

    @given(st.integers(2, 5), st.integers(2, 7), st.integers(1, 7), st.integers(0, 10**6))
    @settings(max_examples=25)
    def test_agreement_property(self, m, n, b, seed):
        b = min(b, n)
        t = random_symmetric_tensor(m, n, rng=seed)
        x = np.random.default_rng(seed).normal(size=n)
        y = ax_m_compressed(t, x)
        v = ax_m1_compressed(t, x)
        assert np.isclose(ax_m_blocked(t, x, block_size=b), y,
                          rtol=1e-9, atol=1e-9 * max(1, abs(y)))
        assert np.allclose(ax_m1_blocked(t, x, block_size=b), v,
                           rtol=1e-9, atol=1e-9 * max(1, np.abs(v).max()))


class TestBlockedInSshopm:
    def test_sshopm_with_blocked_kernels(self, rng):
        """End-to-end: SS-HOPM driven by the blocked kernels converges to
        the same eigenpair as the flat kernels, on a size where unrolling
        would be impractical."""
        from repro.core.sshopm import sshopm, suggested_shift
        from repro.util.rng import random_unit_vector

        t = random_symmetric_tensor(4, 8, rng=rng)
        x0 = random_unit_vector(8, rng=rng)
        alpha = suggested_shift(t)
        a = sshopm(t, x0=x0, alpha=alpha, kernels="blocked", tol=1e-13, max_iters=3000)
        b = sshopm(t, x0=x0, alpha=alpha, kernels="precomputed", tol=1e-13, max_iters=3000)
        assert a.converged and b.converged
        assert np.isclose(a.eigenvalue, b.eigenvalue, atol=1e-9)
