"""Tests for eigenpair utilities: residuals, sign canonicalization, stability
classification, and multistart deduplication."""

import numpy as np
import pytest

from repro.core.eigenpairs import (
    Eigenpair,
    canonicalize_sign,
    classify_eigenpair,
    dedupe_eigenpairs,
    eigen_residual,
    hessian_matrix,
    projected_hessian_eigenvalues,
)
from repro.symtensor.random import (
    kolda_mayo_example_3x3x3,
    random_symmetric_tensor,
    rank_one_tensor,
)
from repro.util.rng import random_unit_vector


class TestResidual:
    def test_zero_for_exact_pair(self, rng):
        """Matrix eigenpairs have zero tensor residual."""
        tensor = random_symmetric_tensor(2, 5, rng=rng)
        w, V = np.linalg.eigh(tensor.to_dense())
        for k in (0, 2, 4):
            assert eigen_residual(tensor, w[k], V[:, k]) < 1e-10

    def test_positive_for_non_pair(self, rng):
        tensor = random_symmetric_tensor(3, 3, rng=rng)
        assert eigen_residual(tensor, 0.5, random_unit_vector(3, rng=rng)) > 1e-3


class TestCanonicalizeSign:
    def test_even_order_flips_vector_only(self):
        lam, x = canonicalize_sign(2.0, np.array([-0.6, 0.8, 0.0]), m=4)
        assert lam == 2.0
        assert x[1] > 0 and np.argmax(np.abs(x)) == 1

    def test_odd_order_prefers_positive_lambda(self):
        lam, x = canonicalize_sign(-1.5, np.array([0.6, -0.8, 0.0]), m=3)
        assert lam == 1.5
        assert np.allclose(x, [-0.6, 0.8, 0.0])

    def test_odd_order_positive_lambda_untouched(self):
        lam, x = canonicalize_sign(1.5, np.array([0.6, -0.8, 0.0]), m=3)
        assert lam == 1.5
        assert np.allclose(x, [0.6, -0.8, 0.0])

    def test_idempotent(self, rng):
        for m in (3, 4):
            lam0, x0 = canonicalize_sign(rng.normal(), random_unit_vector(3, rng=rng), m)
            lam1, x1 = canonicalize_sign(lam0, x0, m)
            assert lam0 == lam1
            assert np.allclose(x0, x1)

    def test_mirror_pairs_collapse(self, rng):
        """(lambda, x) and its order-dependent mirror canonicalize equal."""
        x = random_unit_vector(4, rng=rng)
        lam = 1.25
        # even order: (lam, -x) is the mirror
        a = canonicalize_sign(lam, x, 4)
        b = canonicalize_sign(lam, -x, 4)
        assert np.allclose(a[1], b[1])
        # odd order: (-lam, -x) is the mirror
        a = canonicalize_sign(lam, x, 3)
        b = canonicalize_sign(-lam, -x, 3)
        assert a[0] == b[0]
        assert np.allclose(a[1], b[1])


class TestHessian:
    def test_m2_hessian_is_tensor_itself(self, rng):
        tensor = random_symmetric_tensor(2, 4, rng=rng)
        x = random_unit_vector(4, rng=rng)
        assert np.allclose(hessian_matrix(tensor, x), tensor.to_dense())

    def test_matches_numerical_hessian(self, rng):
        """(m)(m-1) A x^{m-2} is the Hessian of f(x) = A x^m; our
        hessian_matrix is that divided by m."""
        tensor = random_symmetric_tensor(4, 3, rng=rng)
        from repro.kernels.compressed import ax_m_compressed

        x = random_unit_vector(3, rng=rng)
        h = 1e-4
        H_num = np.zeros((3, 3))
        for i in range(3):
            for j in range(3):
                xpp, xpm, xmp, xmm = (x.copy() for _ in range(4))
                xpp[i] += h; xpp[j] += h
                xpm[i] += h; xpm[j] -= h
                xmp[i] -= h; xmp[j] += h
                xmm[i] -= h; xmm[j] -= h
                H_num[i, j] = (
                    ax_m_compressed(tensor, xpp)
                    - ax_m_compressed(tensor, xpm)
                    - ax_m_compressed(tensor, xmp)
                    + ax_m_compressed(tensor, xmm)
                ) / (4 * h * h)
        assert np.allclose(4 * hessian_matrix(tensor, x), H_num, atol=1e-3)


class TestClassification:
    def test_matrix_extremes(self, rng):
        """m=2: largest eigenpair is the max of the Rayleigh quotient
        (pos_stable), smallest the min (neg_stable), middle ones saddles."""
        tensor = random_symmetric_tensor(2, 5, rng=rng)
        w, V = np.linalg.eigh(tensor.to_dense())
        assert classify_eigenpair(tensor, w[-1], V[:, -1]) == "pos_stable"
        assert classify_eigenpair(tensor, w[0], V[:, 0]) == "neg_stable"
        assert classify_eigenpair(tensor, w[2], V[:, 2]) == "unstable"

    def test_rank_one_principal_is_max(self, rng):
        d = random_unit_vector(3, rng=rng)
        tensor = rank_one_tensor(d, 4, weight=2.0)
        assert classify_eigenpair(tensor, 2.0, d) == "pos_stable"

    def test_n1_trivial(self):
        from repro.symtensor.storage import SymmetricTensor

        tensor = SymmetricTensor(np.array([3.0]), 3, 1)
        assert classify_eigenpair(tensor, 3.0, np.array([1.0])) == "pos_stable"

    def test_projected_hessian_dimensions(self, rng):
        tensor = random_symmetric_tensor(4, 4, rng=rng)
        x = random_unit_vector(4, rng=rng)
        evals = projected_hessian_eigenvalues(tensor, 0.3, x)
        assert evals.shape == (3,)
        assert np.all(np.diff(evals) >= 0)


class TestDedupe:
    def test_identical_results_merge(self, rng):
        x = random_unit_vector(3, rng=rng)
        lams = np.array([1.0, 1.0, 1.0])
        vecs = np.stack([x, x, -x])  # even order: -x is the same pair
        pairs = dedupe_eigenpairs(lams, vecs, m=4)
        assert len(pairs) == 1
        assert pairs[0].occurrences == 3

    def test_distinct_pairs_kept(self, rng):
        lams = np.array([1.0, 2.0])
        vecs = np.stack([np.array([1.0, 0, 0]), np.array([0, 1.0, 0])])
        pairs = dedupe_eigenpairs(lams, vecs, m=4)
        assert len(pairs) == 2
        assert pairs[0].eigenvalue == 2.0  # sorted descending

    def test_same_lambda_different_vector_kept(self):
        lams = np.array([1.0, 1.0])
        vecs = np.stack([np.array([1.0, 0, 0]), np.array([0, 0, 1.0])])
        pairs = dedupe_eigenpairs(lams, vecs, m=4)
        assert len(pairs) == 2

    def test_converged_mask_filters(self, rng):
        lams = np.array([1.0, 5.0])
        vecs = np.stack([random_unit_vector(3, rng=rng) for _ in range(2)])
        pairs = dedupe_eigenpairs(lams, vecs, m=4, converged_mask=np.array([True, False]))
        assert len(pairs) == 1
        assert pairs[0].eigenvalue == 1.0

    def test_odd_order_mirror_merges(self, rng):
        x = random_unit_vector(3, rng=rng)
        pairs = dedupe_eigenpairs(
            np.array([0.7, -0.7]), np.stack([x, -x]), m=3
        )
        assert len(pairs) == 1
        assert pairs[0].eigenvalue == pytest.approx(0.7)

    def test_classification_and_residual_filled(self):
        tensor = kolda_mayo_example_3x3x3()
        from repro.core.sshopm import sshopm, suggested_shift

        results = [
            sshopm(tensor, alpha=suggested_shift(tensor), rng=s, max_iters=4000, tol=1e-14)
            for s in range(8)
        ]
        pairs = dedupe_eigenpairs(
            np.array([r.eigenvalue for r in results]),
            np.stack([r.eigenvector for r in results]),
            m=3,
            tensor=tensor,
            classify=True,
        )
        for p in pairs:
            assert p.residual < 1e-6
            assert p.stability in {"pos_stable", "neg_stable", "unstable", "degenerate"}

    def test_repr(self):
        p = Eigenpair(eigenvalue=1.0, eigenvector=np.array([1.0, 0, 0]))
        assert "lambda" in repr(p)

    def test_mismatched_lengths_raise(self):
        with pytest.raises(Exception):
            dedupe_eigenpairs(np.ones(3), np.ones((2, 3)), m=4)
