"""Tests for SS-HOPM (Figure 1): convergence, eigenpair residuals, shift
behavior, matrix-case ground truth, kernel-variant independence."""

import numpy as np
import pytest

from repro.core.sshopm import sshopm, suggested_shift
from repro.kernels.dispatch import get_kernels
from repro.symtensor.random import (
    identity_like_tensor,
    kolda_mayo_example_3x3x3,
    random_symmetric_tensor,
    rank_one_tensor,
)
from repro.symtensor.storage import SymmetricTensor
from repro.util.flopcount import FlopCounter
from repro.util.rng import random_unit_vector


class TestMatrixCase:
    def test_converges_to_principal_eigenpair(self, rng):
        """m=2 with a convexity shift: the power method on A + alpha I,
        converging to the largest eigenvalue of A."""
        tensor = random_symmetric_tensor(2, 6, rng=rng)
        w, V = np.linalg.eigh(tensor.to_dense())
        res = sshopm(tensor, alpha=suggested_shift(tensor), rng=rng, max_iters=5000, tol=1e-14)
        assert res.converged
        assert abs(res.eigenvalue - w[-1]) < 1e-7
        assert abs(abs(res.eigenvector @ V[:, -1]) - 1) < 1e-5

    def test_negative_shift_finds_smallest(self, rng):
        tensor = random_symmetric_tensor(2, 5, rng=rng)
        w, _ = np.linalg.eigh(tensor.to_dense())
        res = sshopm(tensor, alpha=-suggested_shift(tensor), rng=rng, max_iters=5000, tol=1e-14)
        assert res.converged
        assert abs(res.eigenvalue - w[0]) < 1e-7


class TestEigenpairProperties:
    def test_fixed_point_is_eigenpair(self, rng):
        for m, n in [(3, 3), (4, 3), (4, 4), (5, 2)]:
            tensor = random_symmetric_tensor(m, n, rng=rng)
            res = sshopm(tensor, alpha=suggested_shift(tensor), rng=rng, max_iters=3000, tol=1e-14)
            assert res.converged, (m, n)
            assert res.residual < 1e-6, (m, n, res.residual)
            assert np.isclose(np.linalg.norm(res.eigenvector), 1.0)

    def test_lambda_history_monotone_for_convex_shift(self, rng):
        """Kolda & Mayo: alpha > beta(A) makes lambda_k nondecreasing."""
        tensor = random_symmetric_tensor(4, 3, rng=rng)
        res = sshopm(tensor, alpha=suggested_shift(tensor), rng=rng, max_iters=2000, tol=1e-14)
        hist = np.array(res.lambda_history)
        assert np.all(np.diff(hist) >= -1e-9)

    def test_lambda_history_monotone_decreasing_for_concave_shift(self, rng):
        tensor = random_symmetric_tensor(4, 3, rng=rng)
        res = sshopm(tensor, alpha=-suggested_shift(tensor), rng=rng, max_iters=2000, tol=1e-14)
        hist = np.array(res.lambda_history)
        assert np.all(np.diff(hist) <= 1e-9)

    def test_eigenvector_unit_norm_every_time(self, rng):
        tensor = random_symmetric_tensor(3, 4, rng=rng)
        for seed in range(5):
            res = sshopm(tensor, alpha=suggested_shift(tensor), rng=seed)
            assert np.isclose(np.linalg.norm(res.eigenvector), 1.0, atol=1e-12)


class TestKnownTensors:
    def test_rank_one_principal_pair(self, rng):
        """A = 3 d^{(x)4}: principal eigenpair is (3, d)."""
        d = random_unit_vector(3, rng=rng)
        tensor = rank_one_tensor(d, 4, weight=3.0)
        res = sshopm(tensor, x0=d + 0.1 * random_unit_vector(3, rng=rng),
                     alpha=suggested_shift(tensor), max_iters=2000, tol=1e-14)
        assert res.converged
        assert abs(res.eigenvalue - 3.0) < 1e-8
        assert abs(abs(res.eigenvector @ d) - 1.0) < 1e-6

    def test_identity_like_tensor_any_start(self, rng):
        """E x^{m-1} = x on the sphere: every unit vector is an eigenvector
        with eigenvalue 1, so SS-HOPM converges immediately."""
        tensor = identity_like_tensor(4, 3)
        x0 = random_unit_vector(3, rng=rng)
        res = sshopm(tensor, x0=x0, alpha=0.0, tol=1e-12)
        assert res.converged
        assert abs(res.eigenvalue - 1.0) < 1e-10
        assert res.iterations <= 2

    def test_kolda_mayo_spectrum(self):
        """The documented spectrum of the fixed example tensor."""
        tensor = kolda_mayo_example_3x3x3()
        found = set()
        for seed in range(30):
            res = sshopm(tensor, alpha=suggested_shift(tensor), rng=seed,
                         max_iters=5000, tol=1e-14)
            if res.converged and res.residual < 1e-6:
                found.add(round(res.eigenvalue, 3))
        assert 0.873 in found  # the principal eigenvalue is always reachable

    def test_zero_tensor_terminates(self):
        tensor = SymmetricTensor.zeros(4, 3)
        res = sshopm(tensor, alpha=0.0, rng=0, max_iters=50)
        assert not res.converged  # A x^{m-1} = 0 kills the iteration
        assert res.iterations <= 1


class TestOptions:
    def test_kernel_variants_agree(self, rng):
        tensor = random_symmetric_tensor(4, 3, rng=rng)
        x0 = random_unit_vector(3, rng=rng)
        alpha = suggested_shift(tensor)
        results = [
            sshopm(tensor, x0=x0, alpha=alpha, kernels=name, max_iters=500, tol=1e-13)
            for name in ("compressed", "precomputed", "unrolled", "vectorized")
        ]
        for r in results[1:]:
            assert np.isclose(r.eigenvalue, results[0].eigenvalue, atol=1e-10)
            assert np.allclose(r.eigenvector, results[0].eigenvector, atol=1e-8)

    def test_explicit_kernel_pair(self, rng):
        tensor = random_symmetric_tensor(4, 3, rng=rng)
        pair = get_kernels("precomputed")
        res = sshopm(tensor, kernels=pair, alpha=suggested_shift(tensor), rng=1)
        assert res.converged

    def test_max_iter_respected(self, rng):
        tensor = random_symmetric_tensor(4, 3, rng=rng)
        res = sshopm(tensor, alpha=suggested_shift(tensor), rng=rng, max_iters=3, tol=0.0)
        assert res.iterations == 3
        assert not res.converged

    def test_flop_counter_accumulates(self, rng):
        tensor = random_symmetric_tensor(4, 3, rng=rng)
        counter = FlopCounter()
        res = sshopm(tensor, alpha=1.0, rng=rng, counter=counter, max_iters=100)
        assert counter.flops > 0

    def test_x0_validation(self, rng):
        tensor = random_symmetric_tensor(3, 3, rng=rng)
        with pytest.raises(ValueError):
            sshopm(tensor, x0=np.zeros(3))
        with pytest.raises(ValueError):
            sshopm(tensor, x0=np.ones(4))

    def test_x0_normalized_internally(self, rng):
        tensor = random_symmetric_tensor(3, 3, rng=rng)
        res1 = sshopm(tensor, x0=np.array([3.0, 0.0, 0.0]), alpha=5.0, tol=1e-13)
        res2 = sshopm(tensor, x0=np.array([1.0, 0.0, 0.0]), alpha=5.0, tol=1e-13)
        assert np.isclose(res1.eigenvalue, res2.eigenvalue)


class TestSuggestedShift:
    def test_dominates_frobenius(self, size, rng):
        m, n = size
        tensor = random_symmetric_tensor(m, n, rng=rng)
        assert suggested_shift(tensor) >= tensor.frobenius_norm()

    def test_guarantees_convergence_widely(self, rng):
        """With the suggested shift, every random start converges."""
        tensor = random_symmetric_tensor(3, 4, rng=rng)
        alpha = suggested_shift(tensor)
        for seed in range(10):
            res = sshopm(tensor, alpha=alpha, rng=seed, max_iters=10000, tol=1e-12)
            assert res.converged
