"""Tests for Newton eigenpair refinement."""

import numpy as np
import pytest

from repro.core.refine import newton_refine, refine_pairs
from repro.core.solve import find_eigenpairs
from repro.core.sshopm import sshopm, suggested_shift
from repro.symtensor.random import random_odeco_tensor, random_symmetric_tensor
from repro.util.rng import random_unit_vector


class TestNewtonRefine:
    def test_polishes_to_machine_precision(self, rng):
        """A loose SS-HOPM result refines to ~1e-14 residual in a few
        steps."""
        t = random_symmetric_tensor(4, 3, rng=rng)
        rough = sshopm(t, alpha=suggested_shift(t), rng=rng, tol=1e-5,
                       max_iters=2000)
        res = newton_refine(t, rough.eigenvalue, rough.eigenvector)
        assert res.converged
        assert res.residual < 1e-12
        assert res.residual < rough.residual

    def test_quadratic_convergence(self, rng):
        """Residuals decay (at least) quadratically once in the basin."""
        t = random_symmetric_tensor(4, 3, rng=rng)
        exact = sshopm(t, alpha=suggested_shift(t), rng=rng, tol=1e-14,
                       max_iters=8000)
        x0 = exact.eigenvector + 1e-3 * random_unit_vector(3, rng=rng)
        res = newton_refine(t, exact.eigenvalue + 1e-3, x0, tol=1e-15)
        h = [r for r in res.residual_history if r > 1e-14]
        for a, b in zip(h, h[1:]):
            assert b < 5 * a * a + 1e-14, h

    def test_exact_pair_zero_iterations(self, rng):
        """Already-converged input: no Newton steps taken."""
        tensor, basis, weights = random_odeco_tensor(4, 3, rng=rng)
        res = newton_refine(tensor, weights[0], basis[0])
        assert res.converged
        assert res.iterations == 0

    def test_matrix_case_matches_eigh(self, rng):
        t = random_symmetric_tensor(2, 5, rng=rng)
        w, V = np.linalg.eigh(t.to_dense())
        res = newton_refine(t, w[2] + 1e-4, V[:, 2] + 1e-4)
        assert res.converged
        assert abs(res.eigenvalue - w[2]) < 1e-10

    def test_unit_norm_output(self, rng):
        t = random_symmetric_tensor(4, 3, rng=rng)
        res = newton_refine(t, 0.5, random_unit_vector(3, rng=rng), max_iter=30)
        assert np.isclose(np.linalg.norm(res.eigenvector), 1.0, atol=1e-12)

    def test_zero_guess_rejected(self, rng):
        t = random_symmetric_tensor(4, 3, rng=rng)
        with pytest.raises(ValueError):
            newton_refine(t, 1.0, np.zeros(3))

    def test_far_guess_does_not_explode(self, rng):
        """From a random point Newton may not converge, but must return
        finite values."""
        t = random_symmetric_tensor(4, 3, rng=rng)
        res = newton_refine(t, 100.0, random_unit_vector(3, rng=rng), max_iter=10)
        assert np.isfinite(res.eigenvalue)
        assert np.all(np.isfinite(res.eigenvector))


class TestRefinePairs:
    def test_improves_whole_spectrum(self, rng):
        t = random_symmetric_tensor(4, 3, rng=rng)
        pairs = find_eigenpairs(t, num_starts=96, alpha=suggested_shift(t),
                                rng=rng, tol=1e-6, max_iters=1500)
        refined = refine_pairs(t, pairs)
        assert len(refined) == len(pairs)
        for before, after in zip(pairs, refined):
            assert after.residual <= before.residual + 1e-15
            assert after.occurrences == before.occurrences
        assert max(p.residual for p in refined) < 1e-11

    def test_two_phase_cheaper_than_tight_sshopm(self, rng):
        """Loose SS-HOPM + Newton reaches a residual a tight SS-HOPM run
        needs far more iterations for."""
        t = random_symmetric_tensor(4, 3, rng=rng)
        alpha = suggested_shift(t)
        x0 = random_unit_vector(3, rng=rng)
        loose = sshopm(t, x0=x0, alpha=alpha, tol=1e-4, max_iters=5000)
        polished = newton_refine(t, loose.eigenvalue, loose.eigenvector)
        tight = sshopm(t, x0=x0, alpha=alpha, tol=1e-14, max_iters=20000)
        assert polished.residual <= tight.residual * 10
        total_cheap = loose.iterations + polished.iterations
        assert total_cheap < tight.iterations / 3
