"""Tests for the instrumentation subsystem (repro.instrument) and the
unified kernel/solver API surface: span trees, the thread-local recorder,
flop-total agreement with the legacy FlopCounter, JSON traces, the
get_kernels(batched=...) dispatch, SolveConfig, and deprecation shims."""

import json
import warnings

import numpy as np
import pytest

from repro.core import SolveConfig, adaptive_sshopm, find_eigenpairs, sshopm
from repro.core.config import reconcile_max_iters, resolve_option
from repro.core.multistart import multistart_sshopm
from repro.instrument import (
    Recorder,
    RecorderFlopCounter,
    current_recorder,
    instrumented_pair,
    kernel_cost_model,
    load_trace,
    recording,
    span,
)
from repro.instrument.recorder import _NULL_SPAN
from repro.kernels import UnknownVariantError, available_variants, get_kernels
from repro.mri import extract_fibers_batch, make_phantom
from repro.parallel import parallel_multistart_sshopm
from repro.symtensor import random_symmetric_tensor
from repro.util.flopcount import FlopCounter


class TestSpanTree:
    def test_nesting_and_aggregation(self):
        rec = Recorder()
        with rec.span("outer"):
            for _ in range(5):
                with rec.span("inner"):
                    rec.add("flops", 10)
        outer = rec.find("outer")
        inner = rec.find("outer/inner")
        assert outer.count == 1
        assert inner.count == 5  # re-entry aggregates, no 5 sibling nodes
        assert inner.counters["flops"] == 50
        assert rec.total("flops") == 50
        assert len(outer.children) == 1

    def test_charges_land_on_innermost_span(self):
        rec = Recorder()
        with rec.span("a"):
            rec.add("flops", 1)
            with rec.span("b"):
                rec.add("flops", 100)
        assert rec.find("a").counters["flops"] == 1
        assert rec.find("a/b").counters["flops"] == 100
        assert rec.find("a").total("flops") == 101

    def test_self_seconds_excludes_children(self):
        rec = Recorder()
        with rec.span("p"):
            with rec.span("c"):
                pass
        p = rec.find("p")
        assert p.self_seconds == pytest.approx(
            p.seconds - rec.find("p/c").seconds
        )

    def test_exception_still_closes_span(self):
        rec = Recorder()
        with pytest.raises(RuntimeError):
            with rec.span("boom"):
                raise RuntimeError
        assert rec.find("boom").count == 1
        assert rec._stack == [rec.root]

    def test_gauges_last_write_wins(self):
        rec = Recorder()
        rec.gauge("k", 1)
        rec.gauge("k", 2)
        assert rec.gauges["k"] == 2


class TestThreadLocalActivation:
    def test_disabled_by_default(self):
        assert current_recorder() is None
        # the module-level helper returns the shared no-op object: no
        # allocation, no timing — this is the zero-cost disabled path
        assert span("anything") is _NULL_SPAN
        with span("anything"):
            pass  # must be usable as a context manager

    def test_activate_installs_and_restores(self):
        rec = Recorder()
        with rec.activate():
            assert current_recorder() is rec
            inner = Recorder()
            with inner.activate():
                assert current_recorder() is inner
            assert current_recorder() is rec
        assert current_recorder() is None

    def test_recording_contextmanager(self):
        with recording(meta={"k": "v"}) as rec:
            with span("s"):
                pass
        assert rec.meta == {"k": "v"}
        assert rec.find("s").count == 1
        assert current_recorder() is None


class TestJsonRoundTrip:
    def test_save_load_lossless(self, tmp_path):
        with recording(meta={"command": "test"}) as rec:
            with span("outer"):
                rec.add("flops", 123)
                rec.add("bytes", 456)
                with span("inner"):
                    rec.add("flops", 7)
            rec.gauge("starts", 128)
        path = tmp_path / "trace.json"
        rec.save_trace(path)
        back = load_trace(path)
        assert back.to_dict() == rec.to_dict()
        assert back.total("flops") == 130
        assert back.gauges == {"starts": 128}
        assert back.meta == {"command": "test"}

    def test_schema_tag_present_and_checked(self, tmp_path):
        rec = Recorder()
        d = rec.to_dict()
        assert d["schema"] == "repro-trace/1"
        d["schema"] = "other/9"
        with pytest.raises(ValueError, match="schema"):
            Recorder.from_dict(d)

    def test_numpy_values_serialize(self, tmp_path):
        with recording() as rec:
            rec.gauge("n", np.int64(3))
            with span("s"):
                rec.add("flops", np.int64(10))
        path = tmp_path / "t.json"
        rec.save_trace(path)
        data = json.loads(path.read_text())
        assert data["gauges"]["n"] == 3


class TestFlopAgreement:
    """Trace flop totals must agree exactly with legacy FlopCounter
    accounting — the acceptance criterion of the instrumentation PR."""

    def test_sshopm_recorder_matches_counter(self):
        tensor = random_symmetric_tensor(4, 3, rng=0)
        counter = FlopCounter()
        with recording() as rec:
            res = sshopm(tensor, alpha=2.0, rng=1, counter=counter)
        assert res.iterations > 0
        assert counter.flops > 0
        assert rec.total("flops") == counter.flops
        assert rec.total("loads") == counter.loads
        assert rec.total("stores") == counter.stores

    def test_multistart_recorder_matches_counter(self):
        tensor = random_symmetric_tensor(4, 3, rng=0)
        counter = FlopCounter()
        with recording() as rec:
            multistart_sshopm(tensor, num_starts=8, rng=2, max_iters=50,
                              counter=counter)
        assert counter.flops > 0
        assert rec.total("flops") == counter.flops
        assert rec.total("bytes") > 0  # traffic estimate recorded

    def test_trace_without_counter_still_counts(self):
        tensor = random_symmetric_tensor(3, 3, rng=0)
        with recording() as rec:
            sshopm(tensor, alpha=2.0, rng=1, max_iters=20)
        assert rec.total("flops") > 0

    def test_bridge_counter_mirrors(self):
        rec = Recorder()
        mirror = FlopCounter()
        bridge = rec.flop_counter(mirror=mirror)
        assert isinstance(bridge, RecorderFlopCounter)
        with rec.span("s"):
            bridge.add_flops(5)
            bridge.add_intops(3)
            bridge.add_loads(2)
            bridge.add_stores(1)
        assert (mirror.flops, mirror.intops, mirror.loads, mirror.stores) == (5, 3, 2, 1)
        assert (bridge.flops, bridge.intops) == (5, 3)
        assert rec.find("s").counters == {
            "flops": 5, "intops": 3, "loads": 2, "stores": 1,
        }


class TestInstrumentedKernels:
    @pytest.mark.parametrize("variant", [
        v for v in available_variants(4, 3) if v != "auto"
    ])
    def test_every_variant_through_wrapper(self, variant):
        tensor = random_symmetric_tensor(4, 3, rng=0)
        x = np.random.default_rng(1).normal(size=3)
        x /= np.linalg.norm(x)
        plain = get_kernels(variant, 4, 3)
        counter = FlopCounter()
        wrapped = instrumented_pair(plain, counter=counter)
        with recording() as rec:
            s1 = wrapped.ax_m(tensor, x)
            v1 = wrapped.ax_m1(tensor, x)
        assert s1 == pytest.approx(plain.ax_m(tensor, x))
        np.testing.assert_allclose(v1, plain.ax_m1(tensor, x))
        cost = kernel_cost_model(4, 3)
        assert counter.flops == cost["flops_scalar"] + cost["flops_vector"]
        assert rec.find(f"kernel.{variant}.ax_m").count == 1
        assert rec.find(f"kernel.{variant}.ax_m1").count == 1
        assert rec.total("bytes") > 0

    def test_get_kernels_instrumented_flag(self):
        counter = FlopCounter()
        pair = get_kernels("compressed", 4, 3, instrumented=True, counter=counter)
        tensor = random_symmetric_tensor(4, 3, rng=0)
        pair.ax_m(tensor, np.array([1.0, 0.0, 0.0]))
        assert counter.flops == kernel_cost_model(4, 3)["flops_scalar"]

    def test_cost_model_matches_table2_formula(self):
        from math import comb

        for m, n in [(3, 3), (4, 3), (4, 6)]:
            cost = kernel_cost_model(m, n)
            assert cost["flops_scalar"] == (m + 3) * comb(m + n - 1, m)


class TestKernelDispatch:
    def test_unknown_variant_typed_error(self):
        with pytest.raises(UnknownVariantError) as excinfo:
            get_kernels("nonexistent", 4, 3)
        err = excinfo.value
        assert isinstance(err, KeyError)  # back compat
        assert isinstance(err, ValueError)  # back compat
        assert err.variant == "nonexistent"
        assert "vectorized" in err.available
        assert "nonexistent" in str(err)
        assert "vectorized" in str(err)

    def test_unknown_batched_variant(self):
        with pytest.raises(UnknownVariantError):
            get_kernels("nonexistent", 4, 3, batched=True)

    def test_available_variants_lists_batched(self):
        batched = available_variants(4, 3, batched=True)
        assert "vectorized" in batched
        assert "unrolled" in batched

    def test_batched_suite_matches_per_tensor(self):
        tensor = random_symmetric_tensor(4, 3, rng=0)
        x = np.random.default_rng(1).normal(size=(1, 4, 3))
        x /= np.linalg.norm(x, axis=-1, keepdims=True)
        values = tensor.values[None, None, :]
        ref = get_kernels("compressed", 4, 3)
        for variant in ("vectorized", "unrolled", "blocked"):
            suite = get_kernels(variant, 4, 3, batched=True)
            lam = suite.ax_m(values, x)
            y = suite.ax_m1(values, x)
            for v in range(4):
                assert lam[0, v] == pytest.approx(ref.ax_m(tensor, x[0, v]))
                np.testing.assert_allclose(
                    y[0, v], ref.ax_m1(tensor, x[0, v]), atol=1e-12
                )

    def test_batched_aliases_resolve(self):
        a = get_kernels("batched", 4, 3, batched=True)
        b = get_kernels("vectorized", 4, 3, batched=True)
        assert a.name == b.name == "vectorized"
        assert get_kernels("batched_unrolled", 4, 3, batched=True).name == "unrolled"

    def test_batched_counter_passthrough(self):
        tensor = random_symmetric_tensor(4, 3, rng=0)
        counter = FlopCounter()
        suite = get_kernels("vectorized", 4, 3, batched=True)
        x = np.ones((1, 2, 3)) / np.sqrt(3)
        suite.ax_m(tensor.values[None, None, :], x, counter=counter)
        assert counter.flops > 0

    def test_deprecated_flat_aliases_warn(self):
        import repro.kernels as K

        for name in ("ax_m_batched", "ax_m1_batched",
                     "ax_m_blocked_batched", "ax_m1_blocked_batched"):
            # force re-resolution: module __getattr__ fires on access
            with warnings.catch_warnings(record=True) as caught:
                warnings.simplefilter("always")
                fn = getattr(K, name)
            assert callable(fn)
            assert any(
                issubclass(w.category, DeprecationWarning) for w in caught
            ), name


class TestSolveConfig:
    def test_config_supplies_defaults(self):
        cfg = SolveConfig(num_starts=4, tol=1e-6, max_iters=30)
        tensor = random_symmetric_tensor(4, 3, rng=0)
        res = multistart_sshopm(tensor, rng=1, config=cfg)
        assert res.num_starts == 4
        assert res.sweeps <= 30

    def test_explicit_kwarg_beats_config(self):
        cfg = SolveConfig(num_starts=4)
        tensor = random_symmetric_tensor(4, 3, rng=0)
        res = multistart_sshopm(tensor, num_starts=2, rng=1, max_iters=10,
                                config=cfg)
        assert res.num_starts == 2

    def test_resolve_option_order(self):
        cfg = SolveConfig(tol=1e-3)
        assert resolve_option("tol", 1e-5, cfg, 1e-12) == 1e-5
        assert resolve_option("tol", None, cfg, 1e-12) == 1e-3
        assert resolve_option("tol", None, None, 1e-12) == 1e-12
        assert resolve_option("tol", None, SolveConfig(), 1e-12) == 1e-12

    def test_config_replace(self):
        cfg = SolveConfig(tol=1e-3)
        cfg2 = cfg.replace(max_iters=7)
        assert cfg2.tol == 1e-3 and cfg2.max_iters == 7
        assert cfg.max_iters is None  # frozen original untouched

    def test_config_accepted_by_all_solvers(self):
        cfg = SolveConfig(num_starts=4, max_iters=20, tol=1e-6)
        tensor = random_symmetric_tensor(4, 3, rng=0)
        sshopm(tensor, alpha=2.0, rng=1, config=cfg)
        adaptive_sshopm(tensor, rng=1, config=cfg)
        find_eigenpairs(tensor, rng=1, config=cfg)
        multistart_sshopm(tensor, rng=1, config=cfg)


class TestDeprecationShims:
    def test_max_iter_warns_and_works(self):
        tensor = random_symmetric_tensor(4, 3, rng=0)
        with pytest.warns(DeprecationWarning, match="max_iter"):
            res = sshopm(tensor, alpha=2.0, rng=1, max_iter=10)
        assert res.iterations <= 10

    def test_conflicting_spellings_raise(self):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            with pytest.raises(TypeError):
                reconcile_max_iters(10, 20)

    def test_same_value_both_spellings_ok(self):
        with pytest.warns(DeprecationWarning):
            assert reconcile_max_iters(10, 10) == 10


class TestPipelineTracing:
    @pytest.fixture(scope="class")
    def phantom(self):
        return make_phantom(rows=3, cols=3, num_gradients=16, rng=0)

    def test_detect_pipeline_trace(self, phantom):
        with recording() as rec:
            fibers = extract_fibers_batch(phantom.tensors, num_starts=16,
                                          rng=0, max_iters=80)
        assert len(fibers) == phantom.num_voxels
        batch = rec.find("extract_fibers_batch")
        assert batch is not None and batch.count == 1
        sel = rec.find("extract_fibers_batch/select_fibers")
        assert sel.count == phantom.num_voxels  # aggregated per-voxel stage
        assert rec.find("extract_fibers_batch/select_fibers/dedupe") is not None
        assert rec.gauges["fibers.voxels"] == phantom.num_voxels
        assert rec.total("flops") > 0

    def test_parallel_workers_absorbed(self, phantom):
        with recording() as rec:
            report = parallel_multistart_sshopm(
                phantom.tensors, workers=2, num_starts=8, max_iters=40, rng=0
            )
        assert report.workers == 2
        root_span = rec.find("parallel_multistart_sshopm")
        assert root_span is not None
        names = set(root_span.children)
        assert "worker0" in names and "worker1" in names
        assert rec.gauges["parallel.workers"] == 2
        # per-worker gauges come back namespaced
        assert "worker0.multistart.tensors" in rec.gauges
        assert rec.total("flops") > 0

    def test_parallel_matches_serial_result(self, phantom):
        from repro.core.multistart import starting_vectors

        starts = starting_vectors(8, 3, rng=5)
        serial = multistart_sshopm(phantom.tensors, starts=starts, max_iters=40)
        par = parallel_multistart_sshopm(
            phantom.tensors, workers=3, starts=starts, max_iters=40
        ).result
        np.testing.assert_allclose(serial.eigenvalues, par.eigenvalues)

    def test_report_renders(self):
        tensor = random_symmetric_tensor(4, 3, rng=0)
        with recording() as rec:
            sshopm(tensor, alpha=2.0, rng=1, max_iters=20)
        text = rec.report()
        assert "sshopm" in text
        assert "TOTAL" in text
        assert "flops" in text


class TestCliTrace:
    def test_spectrum_with_trace_flag(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "trace.json"
        status = main(["spectrum", "--m", "3", "--n", "3", "--starts", "8",
                       "--max-iter", "200", "--trace", str(out)])
        assert status == 0
        rec = load_trace(out)
        assert rec.meta["command"] == "spectrum"
        assert rec.find("repro spectrum") is not None
        assert rec.total("flops") > 0
        captured = capsys.readouterr().out
        assert "TOTAL" in captured


class TestAbsorbMergeRoundTrip:
    """Recorder.absorb / SpanNode.merge and to_dict/from_dict on deep,
    re-entered span trees (the shapes the parallel executor produces)."""

    def _deep_recorder(self, reps: int, charge: float) -> Recorder:
        rec = Recorder()
        with rec.activate():
            for _ in range(reps):
                with rec.span("solve"):
                    for _ in range(3):
                        with rec.span("sweep"):
                            with rec.span("kernel"):
                                rec.add("flops", charge)
                            with rec.span("kernel"):  # re-entered sibling
                                rec.add("flops", charge)
                    with rec.span("residuals"):
                        rec.add("bytes", 64)
        return rec

    def test_merge_aggregates_deep_reentered_trees(self):
        a = self._deep_recorder(reps=2, charge=10.0)
        b = self._deep_recorder(reps=3, charge=5.0)
        a.root.merge(b.root)
        assert a.find("solve").count == 5
        assert a.find("solve/sweep").count == 15
        kernel = a.find("solve/sweep/kernel")
        assert kernel.count == 30
        # 2 reps * 3 sweeps * 2 entries * 10 + 3 * 3 * 2 * 5
        assert kernel.counters["flops"] == 210
        assert a.total("bytes") == 5 * 64

    def test_absorb_under_namespaces_whole_subtree(self):
        parent = self._deep_recorder(reps=1, charge=1.0)
        worker = self._deep_recorder(reps=2, charge=2.0)
        worker.gauge("chunk", 7)
        parent.absorb(worker, under="worker0")
        assert parent.find("worker0/solve").count == 2
        assert parent.find("worker0/solve/sweep/kernel").counters["flops"] == 24
        assert parent.gauges["worker0.chunk"] == 7
        # parent's own tree untouched
        assert parent.find("solve").count == 1
        assert parent.total("flops") == 6 + 24

    def test_absorb_twice_same_namespace_aggregates(self):
        parent = Recorder()
        for _ in range(2):
            worker = self._deep_recorder(reps=1, charge=3.0)
            parent.absorb(worker, under="worker0")
        assert parent.find("worker0/solve").count == 2
        assert parent.find("worker0/solve/sweep/kernel").counters["flops"] == 36

    def test_roundtrip_preserves_merged_tree(self, tmp_path):
        rec = self._deep_recorder(reps=2, charge=10.0)
        rec.absorb(self._deep_recorder(reps=1, charge=1.0), under="worker0")
        path = tmp_path / "deep.json"
        rec.save_trace(path)
        back = load_trace(path)
        assert back.to_dict() == rec.to_dict()
        # child insertion order (report layout) survives the round trip
        order = [n.name for _, n in rec.root.walk()]
        assert [n.name for _, n in back.root.walk()] == order

    def test_roundtrip_carries_absorbed_telemetry(self, tmp_path):
        from repro.instrument.telemetry import ConvergenceTelemetry

        worker = Recorder()
        tel = ConvergenceTelemetry("sshopm")
        tel.append(0, 1.0, residual=0.5)
        worker.add_telemetry(tel)
        parent = Recorder()
        parent.absorb(worker, under="worker3")
        path = tmp_path / "tel.json"
        parent.save_trace(path)
        back = load_trace(path)
        assert [t.name for t in back.telemetry] == ["worker3.sshopm"]
        assert back.telemetry[0].column("lam") == [1.0]


class TestDeprecatedAliasStacklevel:
    """The DeprecationWarning for flat batched aliases must point at the
    *caller*, not at this package or frozen importlib machinery."""

    def test_getattr_warning_points_at_this_file(self):
        import repro.kernels

        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            getattr(repro.kernels, "ax_m_batched")
        assert len(caught) == 1
        assert caught[0].filename == __file__

    def test_from_import_warning_points_at_importing_code(self):
        # a from-import routes through importlib's _handle_fromlist; the
        # stacklevel walk must skip those frames and land on user code
        synthetic = "/synthetic/user_module.py"
        code = compile("from repro.kernels import ax_m1_batched\n",
                       synthetic, "exec")
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            exec(code, {})
        # the fromlist machinery may trigger __getattr__ more than once;
        # what matters is every warning blames the importing file
        assert caught
        assert all(w.filename == synthetic for w in caught)
        assert "deprecated" in str(caught[0].message)
