"""``repro.serve`` suite — the crash-tolerant daemon's acceptance gate.

Covers every robustness promise the service makes:

* the circuit breaker state machine (fake clock, no sleeps);
* bounded admission with structured 429 rejection;
* job specs, deadlines, and the chunk-checkpointing runner;
* drain/resume bit-for-bit equality from chunk checkpoints;
* worker-kill chaos through the full HTTP stack (breaker trips, the
  request still completes degraded);
* the overload path end to end (queue full -> 429 + ``Retry-After`` ->
  ``repro_serve_rejected_total`` -> ``/healthz`` ready=false);
* the soak scenario: a live ``repro serve`` subprocess SIGTERM'd
  mid-flight must exit 0 with a drain manifest, and a ``--resume-dir``
  restart must finish the job bit-for-bit with no leaked shm segments.
"""

import json
import os
import pathlib
import signal
import subprocess
import sys
import time
import urllib.error
import urllib.request

import pytest

from repro.serve import (
    AdmissionError,
    AdmissionQueue,
    CircuitBreaker,
    EigenServer,
    Job,
    JobSpec,
    ServeConfig,
    read_drain_manifest,
    run_job,
    write_drain_manifest,
)
from repro.serve.jobs import BadSpec

ROOT = pathlib.Path(__file__).resolve().parents[1]

#: Small, fast problem every in-process test shares.
SPEC = {"tensors": {"kind": "random", "count": 4, "m": 3, "n": 4, "seed": 5},
        "num_starts": 4, "seed": 1, "max_iters": 100, "chunk": 2}


def _shm_available():
    from repro.parallel.shm import SHM_AVAILABLE

    return SHM_AVAILABLE


# ----------------------------------------------------------------------
# circuit breaker


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class TestCircuitBreaker:
    def test_trips_open_at_threshold(self):
        clock = FakeClock()
        br = CircuitBreaker(threshold=3, reset_after=30.0, clock=clock)
        assert br.state == "closed" and br.allow()
        br.record_failure()
        br.record_failure()
        assert br.state == "closed"  # not yet
        br.record_failure()
        assert br.state == "open"
        assert not br.allow()

    def test_success_resets_consecutive_count(self):
        br = CircuitBreaker(threshold=2, clock=FakeClock())
        br.record_failure()
        br.record_success()
        br.record_failure()
        assert br.state == "closed"  # the streak was broken

    def test_half_open_grants_exactly_one_probe(self):
        clock = FakeClock()
        br = CircuitBreaker(threshold=1, reset_after=10.0, clock=clock)
        br.record_failure()
        assert not br.allow()
        clock.advance(10.0)
        assert br.state == "half-open"
        assert br.allow()       # the probe
        assert not br.allow()   # concurrent callers keep degrading
        assert not br.allow()

    def test_probe_success_closes(self):
        clock = FakeClock()
        br = CircuitBreaker(threshold=1, reset_after=5.0, clock=clock)
        br.record_failure()
        clock.advance(5.0)
        assert br.allow()
        br.record_success()
        assert br.state == "closed"
        assert br.allow() and br.allow()  # fully open for business

    def test_probe_failure_reopens_with_fresh_cooldown(self):
        clock = FakeClock()
        br = CircuitBreaker(threshold=1, reset_after=5.0, clock=clock)
        br.record_failure()
        clock.advance(5.0)
        assert br.allow()
        br.record_failure()  # probe failed
        assert br.state == "open"
        clock.advance(4.9)
        assert br.state == "open"  # cooldown restarted, not resumed
        clock.advance(0.1)
        assert br.state == "half-open"

    def test_abandon_probe_releases_lease(self):
        clock = FakeClock()
        br = CircuitBreaker(threshold=1, reset_after=5.0, clock=clock)
        br.record_failure()
        clock.advance(5.0)
        assert br.allow()       # probe granted
        assert not br.allow()   # held
        br.abandon_probe()      # holder never exercised the process tier
        assert br.state == "half-open"
        assert br.allow()       # next caller probes immediately

    def test_probe_lease_expires_instead_of_wedging(self):
        # a probe holder that never reports (crashed caller) must not
        # leave the breaker half-open-but-unprobable forever
        clock = FakeClock()
        br = CircuitBreaker(threshold=1, reset_after=5.0, clock=clock)
        br.record_failure()
        clock.advance(5.0)
        assert br.allow()
        assert not br.allow()
        clock.advance(5.0)      # lease expires after reset_after
        assert br.allow()       # fresh probe granted
        br.record_success()
        assert br.state == "closed"

    def test_snapshot_shape(self):
        br = CircuitBreaker(threshold=4, reset_after=7.0, clock=FakeClock())
        br.record_failure()
        snap = br.snapshot()
        assert snap == {"state": "closed", "consecutive_failures": 1,
                        "threshold": 4, "reset_after": 7.0}

    def test_threshold_validated(self):
        with pytest.raises(ValueError):
            CircuitBreaker(threshold=0)


# ----------------------------------------------------------------------
# admission queue


class TestAdmissionQueue:
    def test_fifo_submit_take(self):
        q = AdmissionQueue(4)
        q.submit("a")
        q.submit("b")
        assert len(q) == 2
        assert q.take(timeout=0.1) == "a"
        assert q.take(timeout=0.1) == "b"
        assert q.take(timeout=0.01) is None

    def test_queue_full_rejection(self):
        q = AdmissionQueue(2)
        q.submit(1)
        q.submit(2)
        with pytest.raises(AdmissionError) as exc:
            q.submit(3)
        assert exc.value.reason == "queue_full"
        assert exc.value.retry_after >= 1.0
        assert len(q) == 2  # the reject did not enqueue

    def test_close_rejects_and_returns_tail(self):
        q = AdmissionQueue(4)
        q.submit("x")
        q.submit("y")
        assert q.close() == ["x", "y"]
        assert len(q) == 0 and q.closed
        with pytest.raises(AdmissionError) as exc:
            q.submit("z")
        assert exc.value.reason == "draining"
        assert q.take(timeout=0.01) is None

    def test_retry_after_scales_with_backlog(self):
        q = AdmissionQueue(8)
        for _ in range(20):
            q.record_service_time(10.0)  # EWMA converges toward 10s/job
        for i in range(4):
            q.submit(i)
        assert q.retry_after() > 4 * 10.0 * 0.5  # ~ depth * avg

    def test_force_submit_bypasses_capacity(self):
        # drain-manifest resume: a manifest can hold more jobs than the
        # queue limit (queued tail + interrupted in-flight) and every
        # one must be re-admitted
        q = AdmissionQueue(1)
        q.submit("a")
        q.submit("b", force=True)
        q.submit("c", force=True)
        assert len(q) == 3
        assert [q.take(timeout=0.1) for _ in range(3)] == ["a", "b", "c"]
        q.close()
        with pytest.raises(AdmissionError):
            q.submit("d", force=True)  # force never overrides close

    def test_take_registers_under_the_lock(self):
        # pop + mark-in-flight must be one atomic step, or a drain can
        # miss the job in both the close() tail and the running set
        q = AdmissionQueue(2)
        q.submit("a")
        seen = []
        assert q.take(timeout=0.1, register=seen.append) == "a"
        assert seen == ["a"]
        assert q.close() == []  # already popped and registered

    def test_limit_validated(self):
        with pytest.raises(ValueError):
            AdmissionQueue(0)


# ----------------------------------------------------------------------
# job specs


class TestJobSpec:
    def test_round_trip(self):
        spec = JobSpec.from_doc(dict(SPEC))
        again = JobSpec.from_doc(spec.to_doc())
        assert again.to_doc() == spec.to_doc()

    def test_values_kind_builds_batch(self):
        import numpy as np

        from repro.symtensor.random import random_symmetric_batch

        batch = random_symmetric_batch(2, 3, 4, rng=0)
        spec = JobSpec.from_doc({"tensors": {
            "kind": "values", "values": batch.values.tolist(),
            "m": 3, "n": 4}})
        rebuilt = spec.build_batch()
        np.testing.assert_array_equal(rebuilt.values, batch.values)
        assert (rebuilt.m, rebuilt.n) == (3, 4)

    @pytest.mark.parametrize("doc", [
        [],                                             # not an object
        {},                                             # no tensors
        {"tensors": {"kind": "nope"}},                  # unknown kind
        {"tensors": {"kind": "random", "count": 0, "m": 3, "n": 4}},
        {"tensors": {"kind": "random", "count": 2, "m": 3, "n": "x"}},
        {"tensors": {"kind": "values", "values": 7, "m": 3, "n": 4}},
        {**SPEC, "executor": "gpu"},
        {**SPEC, "deadline_seconds": -1},
        {**SPEC, "num_starts": 0},
        {**SPEC, "alpha": "wat"},
    ])
    def test_bad_docs_rejected(self, doc):
        with pytest.raises(BadSpec):
            JobSpec.from_doc(doc)


# ----------------------------------------------------------------------
# the checkpointing runner


def _job(doc, job_id="j1"):
    return Job(job_id, JobSpec.from_doc(json.loads(json.dumps(doc))))


class TestRunJob:
    def test_done_job_has_full_result(self, tmp_path):
        job = _job(SPEC)
        run_job(job, ckpt_dir=tmp_path)
        assert job.status == "done" and job.done_event.is_set()
        assert job.result["tensors_solved"] == [0, 1, 2, 3]
        assert (tmp_path / "job-j1.json").exists()
        doc = job.to_doc()
        assert doc["status"] == "done" and not doc["degraded"]

    def test_immediate_deadline_ends_with_deadline_status(self, tmp_path):
        job = _job({**SPEC, "deadline_seconds": 1e-9})
        time.sleep(0.01)  # guarantee the deadline is in the past
        run_job(job, ckpt_dir=tmp_path)
        assert job.status == "deadline"
        # never-drop contract: placeholder rows, nothing solved
        assert job.result["tensors_solved"] == []
        assert all(all(row) for row in job.result["failed"])

    def test_pre_set_stop_event_interrupts(self, tmp_path):
        job = _job(SPEC)
        job.stop_event.set()
        run_job(job, ckpt_dir=tmp_path)
        assert job.status == "interrupted"
        assert job.result is None

    def test_resume_from_partial_checkpoint_bit_for_bit(self, tmp_path):
        ref = _job(SPEC, "ref")
        run_job(ref, ckpt_dir=tmp_path)

        # simulate a drained life: keep only the first chunk's rows
        ck = tmp_path / "job-ref.json"
        state = json.loads(ck.read_text())
        assert sorted(map(int, state["starts"])) == [0, 1, 2, 3]
        full_rows = dict(state["starts"])
        state["starts"] = {k: v for k, v in state["starts"].items()
                           if int(k) < 2}
        ck.write_text(json.dumps(state))

        resumed = _job(SPEC, "ref")  # same id -> same checkpoint path
        run_job(resumed, ckpt_dir=tmp_path)
        assert resumed.status == "done"
        assert resumed.result == ref.result  # bit-for-bit, == not approx
        assert json.loads(ck.read_text())["starts"] == full_rows

    def test_stale_checkpoint_is_ignored_not_fatal(self, tmp_path):
        other = _job({**SPEC, "tensors": {**SPEC["tensors"], "seed": 99}},
                     "jx")
        run_job(other, ckpt_dir=tmp_path)
        # same path, different tensors: fingerprint mismatch
        job = _job(SPEC, "jx")
        run_job(job, ckpt_dir=tmp_path)
        assert job.status == "done"
        assert job.result["tensors_solved"] == [0, 1, 2, 3]

    def test_open_breaker_degrades_to_thread_tier(self, tmp_path):
        ref = _job(SPEC, "thread-ref")
        run_job(ref, ckpt_dir=tmp_path)

        br = CircuitBreaker(threshold=1, reset_after=3600.0,
                            clock=FakeClock())
        br.record_failure()
        assert br.state == "open"
        job = _job({**SPEC, "executor": "process", "workers": 2}, "deg")
        run_job(job, breaker=br, ckpt_dir=tmp_path)
        assert job.status == "done" and job.degraded
        # the thread tier solved it: identical to the thread reference
        assert job.result == ref.result

    @pytest.mark.filterwarnings("ignore::RuntimeWarning")
    def test_killed_worker_trips_breaker_and_completes(self, tmp_path):
        if not _shm_available():
            pytest.skip("shared_memory unavailable")
        ref = _job(SPEC, "kref")
        run_job(ref, ckpt_dir=tmp_path)

        br = CircuitBreaker(threshold=1, reset_after=3600.0,
                            clock=FakeClock())
        chaos = {**SPEC, "executor": "process", "workers": 2, "chunk": 4,
                 "faults": {"0": "kill"}}
        job = _job(chaos, "kjob")
        run_job(job, breaker=br, ckpt_dir=tmp_path)
        # the fleet driver requeued the killed shard; the request survived
        assert job.status == "done"
        assert job.result["eigenvalues"] == ref.result["eigenvalues"]
        # ...but a recovered crash still counts as breaker failure
        assert br.state == "open"

        from repro.parallel.shm import active_segments

        assert active_segments() == []

    def test_half_open_probe_resolves_on_thread_tier_run(self, tmp_path):
        # regression: a half-open probe granted to a run that resolves
        # to the thread tier (executor "auto" on a small problem) used
        # to be held forever — every later allow() returned False and
        # the breaker wedged with all requests degraded
        clock = FakeClock()
        br = CircuitBreaker(threshold=1, reset_after=5.0, clock=clock)
        br.record_failure()
        clock.advance(5.0)
        assert br.state == "half-open"
        job = _job({**SPEC, "executor": "auto"}, "probe")
        run_job(job, breaker=br, ckpt_dir=tmp_path)
        assert job.status == "done"
        assert not job.degraded   # every chunk got the probe, none hid
        assert br.allow()         # the probe lease was handed back

    @pytest.mark.filterwarnings("ignore::RuntimeWarning")
    def test_faults_reach_later_chunks(self, tmp_path):
        # fault keys live in a job-global shard-id space spanning chunk
        # runs; a key past the first chunk's shard count must still be
        # injected (on the chunk run that contains it), not dropped
        if not _shm_available():
            pytest.skip("shared_memory unavailable")
        ref = _job(SPEC, "lref")
        run_job(ref, ckpt_dir=tmp_path)

        br = CircuitBreaker(threshold=1, reset_after=3600.0,
                            clock=FakeClock())
        # chunk=2 over 4 tensors with 2 workers: two chunk runs of two
        # shards each, so shard id 2 is the second run's first shard
        chaos = {**SPEC, "executor": "process", "workers": 2, "chunk": 2,
                 "faults": {"2": "kill"}}
        job = _job(chaos, "ljob")
        run_job(job, breaker=br, ckpt_dir=tmp_path)
        assert job.status == "done"  # requeue recovered the killed shard
        assert job.result["eigenvalues"] == ref.result["eigenvalues"]
        assert br.state == "open"    # proof the fault was injected

        from repro.parallel.shm import active_segments

        assert active_segments() == []

    def test_keep_prunes_old_checkpoints(self, tmp_path):
        for i in range(3):
            job = _job(SPEC, f"gc{i}")
            run_job(job, ckpt_dir=tmp_path, keep=1)
            time.sleep(0.02)  # distinct mtimes for the newest-first order
        left = sorted(p.name for p in tmp_path.glob("job-*.json"))
        # each completed job kept its own checkpoint + the 1 newest other
        assert left == ["job-gc1.json", "job-gc2.json"]

    def test_keep_protects_inflight_checkpoints(self, tmp_path):
        # the server passes its live in-flight set as `protect`; a job
        # finishing must not prune a checkpoint another running job
        # would need at the next drain, however old its mtime
        inflight = _job(SPEC, "live")
        run_job(inflight, ckpt_dir=tmp_path)
        live_path = tmp_path / "job-live.json"
        os.utime(live_path, (1000, 1000))  # oldest by far

        for i in range(2):
            job = _job(SPEC, f"new{i}")
            run_job(job, ckpt_dir=tmp_path, keep=1,
                    protect=lambda: [str(live_path)])
            time.sleep(0.02)
        left = sorted(p.name for p in tmp_path.glob("job-*.json"))
        assert "job-live.json" in left


# ----------------------------------------------------------------------
# retention


class TestRetention:
    def _ckpt(self, path, stamp):
        path.write_text(json.dumps({"schema": "repro-ckpt/1", "starts": {}}))
        os.utime(path, (stamp, stamp))

    def test_prune_keeps_newest(self, tmp_path):
        from repro.resilience.retention import (
            list_checkpoints,
            prune_checkpoints,
        )

        for i in range(4):
            self._ckpt(tmp_path / f"c{i}.json", 1000 + i)
        assert [p.name for p in list_checkpoints(tmp_path)] == [
            "c3.json", "c2.json", "c1.json", "c0.json"]
        pruned = prune_checkpoints(tmp_path, keep=2)
        assert sorted(p.name for p in pruned) == ["c0.json", "c1.json"]
        assert sorted(p.name for p in tmp_path.glob("*.json")) == [
            "c2.json", "c3.json"]

    def test_prune_never_touches_foreign_files(self, tmp_path):
        from repro.resilience.retention import prune_checkpoints

        self._ckpt(tmp_path / "old.json", 1000)
        write_drain_manifest(tmp_path, [{
            "job": "j", "run_id": "r", "state": "queued",
            "spec": {}, "checkpoint": None}])
        (tmp_path / "notes.json").write_text('{"schema": "other/1"}')
        (tmp_path / "garbage.json").write_text("not json at all")
        pruned = prune_checkpoints(tmp_path, keep=0)
        assert [p.name for p in pruned] == ["old.json"]
        survivors = sorted(p.name for p in tmp_path.glob("*.json"))
        assert survivors == ["drain.json", "garbage.json", "notes.json"]
        assert read_drain_manifest(tmp_path)  # manifest intact

    def test_exclude_and_dry_run(self, tmp_path):
        from repro.resilience.retention import prune_checkpoints

        for i in range(3):
            self._ckpt(tmp_path / f"c{i}.json", 1000 + i)
        would = prune_checkpoints(tmp_path, keep=0,
                                  exclude=[tmp_path / "c2.json"],
                                  dry_run=True)
        assert sorted(p.name for p in would) == ["c0.json", "c1.json"]
        assert len(list(tmp_path.glob("*.json"))) == 3  # dry run deleted 0
        prune_checkpoints(tmp_path, keep=0, exclude=[tmp_path / "c2.json"])
        assert [p.name for p in tmp_path.glob("*.json")] == ["c2.json"]

    def test_keep_validated(self, tmp_path):
        from repro.resilience.retention import prune_checkpoints

        with pytest.raises(ValueError):
            prune_checkpoints(tmp_path, keep=-1)


# ----------------------------------------------------------------------
# HTTP plane (in-process server, real sockets)


def _http(method, url, doc=None, timeout=30):
    """Tiny JSON client: returns (status, headers, parsed body)."""
    data = json.dumps(doc).encode() if doc is not None else None
    req = urllib.request.Request(url, data=data, method=method,
                                 headers={"Content-Type": "application/json"})
    try:
        with urllib.request.urlopen(req, timeout=timeout) as resp:
            return resp.status, dict(resp.headers), json.load(resp)
    except urllib.error.HTTPError as err:
        body = err.read().decode()
        try:
            parsed = json.loads(body)
        except json.JSONDecodeError:
            parsed = {"raw": body}
        return err.code, dict(err.headers), parsed


@pytest.fixture
def server(tmp_path):
    srv = EigenServer(ServeConfig(port=0, runners=1, queue_limit=8,
                                  checkpoint_dir=tmp_path / "ckpt"))
    host, port = srv.start()
    yield srv, f"http://{host}:{port}"
    srv.drain()


class TestServerHTTP:
    def test_healthz_ready(self, server):
        _, base = server
        status, _, doc = _http("GET", base + "/healthz")
        assert status == 200
        assert doc["live"] and doc["ready"] and not doc["draining"]
        assert doc["breaker"]["state"] == "closed"

    def test_solve_wait_returns_full_result(self, server):
        _, base = server
        status, _, doc = _http("POST", base + "/solve?wait=1", SPEC)
        assert status == 200
        assert doc["status"] == "done" and not doc["degraded"]
        assert doc["result"]["tensors_solved"] == [0, 1, 2, 3]
        assert doc["run_id"]

    def test_async_solve_then_poll(self, server):
        _, base = server
        status, headers, doc = _http("POST", base + "/solve", SPEC)
        assert status == 202
        assert headers["Location"] == f"/jobs/{doc['job']}"
        deadline = time.time() + 30
        while time.time() < deadline:
            status, _, jdoc = _http("GET", base + headers["Location"])
            assert status == 200
            if jdoc["status"] in ("done", "failed"):
                break
            time.sleep(0.05)
        assert jdoc["status"] == "done"

    def test_unknown_job_404(self, server):
        _, base = server
        status, _, doc = _http("GET", base + "/jobs/nope")
        assert status == 404 and doc["error"] == "unknown job"

    def test_unknown_endpoint_404(self, server):
        _, base = server
        assert _http("GET", base + "/wat")[0] == 404
        assert _http("POST", base + "/wat", {})[0] == 404

    def test_bad_requests_400(self, server):
        _, base = server
        status, _, doc = _http("POST", base + "/solve", {"tensors": 7})
        assert status == 400 and doc["error"] == "bad_request"
        # invalid JSON body
        req = urllib.request.Request(
            base + "/solve", data=b"{nope", method="POST",
            headers={"Content-Type": "application/json"})
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(req, timeout=10)
        assert err.value.code == 400

    def test_metrics_exposition(self, server):
        _, base = server
        _http("POST", base + "/solve?wait=1", SPEC)
        req = urllib.request.Request(base + "/metrics")
        with urllib.request.urlopen(req, timeout=10) as resp:
            assert resp.status == 200
            text = resp.read().decode()
        assert "repro_serve_requests_total" in text
        assert "repro_serve_jobs_total" in text

    def test_submit_after_drain_is_draining_error(self, server):
        srv, _ = server
        srv.drain()
        with pytest.raises(AdmissionError) as exc:
            srv.submit(dict(SPEC))
        assert exc.value.reason == "draining"


#: A spec that stays busy for seconds (many 1-tensor chunks), letting
#: overload and drain tests interrupt it deterministically mid-flight.
SLOW_SPEC = {"tensors": {"kind": "random", "count": 400, "m": 3, "n": 6,
                         "seed": 2},
             "num_starts": 8, "seed": 3, "max_iters": 500, "tol": 1e-14,
             "chunk": 1}


def _wait_for_status(base, job_id, want, timeout=15):
    deadline = time.time() + timeout
    while time.time() < deadline:
        _, _, doc = _http("GET", f"{base}/jobs/{job_id}")
        if doc.get("status") == want:
            return doc
        time.sleep(0.02)
    raise AssertionError(f"job {job_id} never reached {want!r}")


class TestOverloadPath:
    """Satellite: queue full -> 429 + Retry-After -> rejected metric ->
    healthz ready=false, asserted through the real HTTP stack."""

    def test_queue_full_end_to_end(self, tmp_path):
        srv = EigenServer(ServeConfig(port=0, runners=1, queue_limit=1,
                                      checkpoint_dir=tmp_path / "ckpt"))
        host, port = srv.start()
        base = f"http://{host}:{port}"
        try:
            # A occupies the single runner...
            status, _, a = _http("POST", base + "/solve", SLOW_SPEC)
            assert status == 202
            _wait_for_status(base, a["job"], "running")
            # ...B fills the queue (limit 1)...
            status, _, b = _http("POST", base + "/solve", SPEC)
            assert status == 202

            # ...C is refused at the front door with a structured payload
            status, headers, c = _http("POST", base + "/solve", SPEC)
            assert status == 429
            assert c["error"] == "queue_full"
            assert c["queue_limit"] == 1
            assert c["retry_after"] >= 1
            assert int(headers["Retry-After"]) == c["retry_after"]

            # the rejection is visible on /metrics...
            with urllib.request.urlopen(base + "/metrics",
                                        timeout=10) as resp:
                text = resp.read().decode()
            assert 'repro_serve_rejected_total{reason="queue_full"}' in text

            # ...and /healthz flips to not-ready (503) while saturated
            status, _, health = _http("GET", base + "/healthz")
            assert status == 503
            assert health["live"] and not health["ready"]
            assert health["queue_depth"] == 1

            # drain: A is interrupted in flight, B was still queued
            summary = srv.drain()
            assert summary["interrupted"] == 1 and summary["queued"] == 1
            entries = read_drain_manifest(tmp_path / "ckpt")
            states = {e["job"]: e["state"] for e in entries}
            assert states == {a["job"]: "interrupted", b["job"]: "queued"}
        finally:
            srv.drain()


class TestResumeOverfullManifest:
    """Regression: a drain taken under load writes up to queue_limit
    queued entries plus the interrupted in-flight ones, so the manifest
    can exceed the queue limit — ``--resume-dir`` startup must re-admit
    every entry, not crash on AdmissionError and strand the manifest."""

    def test_resume_manifest_exceeding_queue_limit(self, tmp_path):
        ckpt = tmp_path / "ckpt"
        ckpt.mkdir()
        spec_doc = JobSpec.from_doc(json.loads(json.dumps(SPEC))).to_doc()
        write_drain_manifest(ckpt, [
            {"job": f"r{i}", "run_id": f"rid{i}", "state": "queued",
             "spec": spec_doc, "checkpoint": None}
            for i in range(3)])

        srv = EigenServer(ServeConfig(port=0, runners=1, queue_limit=1,
                                      checkpoint_dir=ckpt, resume_dir=ckpt))
        srv.start()  # three resumed jobs through a limit-1 queue
        try:
            assert read_drain_manifest(ckpt) is None  # cleared on load
            for i in range(3):
                job = srv.get_job(f"r{i}")
                assert job is not None
                assert job.done_event.wait(timeout=60)
                assert job.status == "done"
        finally:
            srv.drain()


class TestBreakerOverHTTP:
    """Acceptance: SIGKILL a fleet worker mid-request — the breaker
    trips, the request completes, and the next process-tier request is
    served degraded on the thread tier with the identical result."""

    @pytest.mark.filterwarnings("ignore::RuntimeWarning")
    def test_worker_kill_trips_breaker_and_degrades(self, tmp_path):
        if not _shm_available():
            pytest.skip("shared_memory unavailable")
        ref = _job(SPEC, "ref")
        (tmp_path / "ref").mkdir()
        run_job(ref, ckpt_dir=tmp_path / "ref")

        srv = EigenServer(ServeConfig(
            port=0, runners=1, queue_limit=4, breaker_threshold=1,
            breaker_reset=3600.0, checkpoint_dir=tmp_path / "ckpt"))
        host, port = srv.start()
        base = f"http://{host}:{port}"
        try:
            chaos = {**SPEC, "executor": "process", "workers": 2,
                     "chunk": 4, "faults": {"0": "kill"}}
            status, _, doc = _http("POST", base + "/solve?wait=1", chaos)
            assert status == 200
            assert doc["status"] == "done"  # requeue recovered the shard
            assert doc["result"]["eigenvalues"] == \
                ref.result["eigenvalues"]

            # the crash tripped the breaker: not-ready, breaker open
            status, _, health = _http("GET", base + "/healthz")
            assert status == 503
            assert health["breaker"]["state"] == "open"

            # next process-tier request degrades to threads, same answer
            clean = {**SPEC, "executor": "process", "workers": 2}
            status, _, doc = _http("POST", base + "/solve?wait=1", clean)
            assert status == 200
            assert doc["status"] == "done" and doc["degraded"]
            assert doc["result"] == ref.result

            from repro.parallel.shm import active_segments

            assert active_segments() == []
        finally:
            srv.drain()


# ----------------------------------------------------------------------
# the soak: a real `repro serve` process, SIGTERM'd mid-flight


#: Heavy enough (a few seconds) that SIGTERM reliably lands between
#: chunks, with completed chunks behind it and unsolved ones ahead.
SOAK_SPEC = {"tensors": {"kind": "random", "count": 12, "m": 4, "n": 8,
                         "seed": 3},
             "num_starts": 12, "seed": 7, "max_iters": 2000, "tol": 1e-14,
             "chunk": 2}


def _serve_proc(args, cwd):
    return subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve", "--port", "0",
         "--runners", "1", *args],
        stdout=subprocess.PIPE, stderr=subprocess.DEVNULL, text=True,
        env={**os.environ, "PYTHONPATH": str(ROOT / "src")}, cwd=str(cwd),
    )


def _ready_base(proc):
    line = proc.stdout.readline()
    ready = json.loads(line)
    assert ready["event"] == "ready"
    return f"http://{ready['host']}:{ready['port']}"


@pytest.mark.skipif(not _shm_available(), reason="shared_memory unavailable")
class TestSoakSigtermDrainResume:
    def test_sigterm_drain_then_resume_bit_for_bit(self, tmp_path):
        from repro.parallel.shm import active_segments

        ckpt = tmp_path / "ckpt"

        # reference: the uninterrupted answer
        ref_proc = _serve_proc(["--checkpoint-dir", str(tmp_path / "ref")],
                               tmp_path)
        try:
            base = _ready_base(ref_proc)
            status, _, ref = _http("POST", base + "/solve?wait=1",
                                   SOAK_SPEC, timeout=300)
            assert status == 200 and ref["status"] == "done"
        finally:
            ref_proc.send_signal(signal.SIGTERM)
            ref_proc.communicate(timeout=60)
        assert ref_proc.returncode == 0

        # run again, SIGTERM mid-flight
        proc = _serve_proc(["--checkpoint-dir", str(ckpt)], tmp_path)
        try:
            base = _ready_base(proc)
            status, _, sub = _http("POST", base + "/solve", SOAK_SPEC)
            assert status == 202
            _wait_for_status(base, sub["job"], "running")
            time.sleep(0.6)  # a chunk or two in, several to go
            proc.send_signal(signal.SIGTERM)
            out, _ = proc.communicate(timeout=120)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()
        assert proc.returncode == 0  # graceful drain exit
        drained = json.loads(out.strip().splitlines()[-1])
        assert drained["event"] == "drained" and drained["status"] == 0

        entries = read_drain_manifest(ckpt)
        assert entries is not None, "drain left no manifest"
        assert [e["state"] for e in entries] == ["interrupted"]
        assert entries[0]["job"] == sub["job"]
        assert active_segments() == []  # nothing leaked through the drain

        # resume: same job id, finished bit-for-bit from the checkpoint
        res_proc = _serve_proc(["--checkpoint-dir", str(ckpt),
                                "--resume-dir", str(ckpt)], tmp_path)
        try:
            base = _ready_base(res_proc)
            doc = _wait_for_status(base, sub["job"], "done", timeout=300)
        finally:
            res_proc.send_signal(signal.SIGTERM)
            res_proc.communicate(timeout=60)
        assert res_proc.returncode == 0
        assert doc["result"] == ref["result"]  # bit-for-bit across lives
        assert read_drain_manifest(ckpt) is None  # consumed, not re-run
        assert active_segments() == []
