"""The codegen-check gate: every executable (variant, backend) emitter
must reproduce the dense einsum reference to 1e-10, and the backends must
agree with each other.  ``make codegen-check`` runs exactly this file."""

import numpy as np
import pytest

from repro.kernels.codegen import available_backends, emit
from repro.kernels.reference import ax_m1_dense, ax_m_dense
from repro.symtensor.random import random_symmetric_tensor

ATOL = 1e-10

EXECUTABLE_BACKENDS = available_backends(executable=True)
CODEGEN_VARIANTS = ("unrolled", "unrolled_cse")


def _lanes(tensor, rng, lanes=4):
    """Batched inputs shared by every backend: values (L, U), x (L, n)."""
    x = rng.standard_normal((lanes, tensor.n))
    a = np.broadcast_to(tensor.values, (lanes, tensor.values.size)).copy()
    return a, x


@pytest.mark.parametrize("backend", EXECUTABLE_BACKENDS)
@pytest.mark.parametrize("variant", CODEGEN_VARIANTS)
class TestEmitterAgreement:
    def test_matches_dense_reference(self, size, rng, variant, backend):
        m, n = size
        tensor = random_symmetric_tensor(m, n, rng=rng)
        kern = emit(m, n, variant, target=backend, batched=True)
        assert kern.executable, f"{backend} emitted a non-executable kernel"
        a, x = _lanes(tensor, rng)
        got_s = kern.ax_m(a, x)
        got_v = kern.ax_m1(a, x)
        dense = tensor.to_dense()
        for lane in range(x.shape[0]):
            assert got_s[lane] == pytest.approx(
                ax_m_dense(dense, x[lane]), abs=ATOL), (variant, backend)
            np.testing.assert_allclose(
                got_v[lane], ax_m1_dense(dense, x[lane]), atol=ATOL,
                err_msg=f"{variant}/{backend}")

    def test_matches_numpy_backend(self, size, rng, variant, backend):
        """Cross-backend agreement: whatever compiled it, same numbers."""
        m, n = size
        tensor = random_symmetric_tensor(m, n, rng=rng)
        a, x = _lanes(tensor, rng)
        ref = emit(m, n, variant, target="numpy", batched=True)
        kern = emit(m, n, variant, target=backend, batched=True)
        np.testing.assert_allclose(kern.ax_m(a, x), ref.ax_m(a, x),
                                   atol=ATOL)
        np.testing.assert_allclose(kern.ax_m1(a, x), ref.ax_m1(a, x),
                                   atol=ATOL)
