"""Cross-module property-based tests (hypothesis): the library-wide
invariants listed in DESIGN.md Section 6."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernels.batched import ax_m1_batched, ax_m_batched
from repro.kernels.compressed import ax_m1_compressed, ax_m_compressed
from repro.kernels.reference import ax_m1_dense, ax_m_dense
from repro.kernels.unrolled import _make_unrolled as make_unrolled
from repro.symtensor.indexing import (
    index_classes,
    monomial_from_index,
    multiplicity_table,
    rank_index,
    unrank_index,
)
from repro.symtensor.random import random_symmetric_tensor
from repro.symtensor.storage import SymmetricTensor, symmetrize_dense
from repro.util.combinatorics import num_unique_entries

sizes = st.tuples(st.integers(2, 5), st.integers(1, 4))
seeds = st.integers(0, 2**31 - 1)


@given(sizes, seeds)
def test_pack_unpack_round_trip(size, seed):
    m, n = size
    t = random_symmetric_tensor(m, n, rng=seed)
    assert SymmetricTensor.from_dense(t.to_dense()).allclose(t)


@given(sizes, seeds)
def test_symmetrize_then_compress_consistent(size, seed):
    """Compressing the symmetrization equals averaging the dense entries of
    each index class."""
    m, n = size
    rng = np.random.default_rng(seed)
    dense = rng.normal(size=(n,) * m)
    sym = symmetrize_dense(dense)
    t = SymmetricTensor.from_dense(sym, check=False)
    # each unique value is the mean of the class's dense entries
    from itertools import permutations

    for index in index_classes(m, n)[: min(6, num_unique_entries(m, n))]:
        zero_based = tuple(i - 1 for i in index)
        entries = [dense[p] for p in set(permutations(zero_based))]
        # mean over distinct positions with multiplicity: symmetrization
        # averages over all m! permutations, counting repeats
        all_entries = [dense[tuple(zero_based[i] for i in perm)]
                       for perm in permutations(range(m))]
        assert np.isclose(t[zero_based], np.mean(all_entries))


@given(sizes, seeds)
@settings(max_examples=25)
def test_kernel_agreement_property(size, seed):
    m, n = size
    t = random_symmetric_tensor(m, n, rng=seed)
    rng = np.random.default_rng(seed + 1)
    x = rng.normal(size=n)
    dense = t.to_dense()
    y = ax_m_dense(dense, x)
    v = ax_m1_dense(dense, x)
    assert np.allclose(ax_m_compressed(t, x), y, atol=1e-8 * max(1, abs(y)))
    assert np.allclose(ax_m1_compressed(t, x), v, atol=1e-8 * max(1, np.abs(v).max()))
    from repro.kernels.tables import kernel_tables

    tab = kernel_tables(m, n)  # explicit: n=1 shapes are ambiguous to infer
    assert np.allclose(ax_m_batched(t.values, x, tables=tab), y, atol=1e-8 * max(1, abs(y)))
    assert np.allclose(
        ax_m1_batched(t.values, x, tables=tab), v, atol=1e-8 * max(1, np.abs(v).max())
    )


@given(sizes, seeds)
@settings(max_examples=25)
def test_euler_identity_property(size, seed):
    m, n = size
    t = random_symmetric_tensor(m, n, rng=seed)
    x = np.random.default_rng(seed).normal(size=n)
    lhs = ax_m1_compressed(t, x) @ x
    rhs = ax_m_compressed(t, x)
    assert np.isclose(lhs, rhs, rtol=1e-9, atol=1e-9)


@given(sizes)
def test_rank_unrank_bijection(size):
    m, n = size
    U = num_unique_entries(m, n)
    seen = set()
    for r in range(U):
        index = unrank_index(r, m, n)
        assert rank_index(index, n) == r
        seen.add(index)
    assert len(seen) == U


@given(sizes)
def test_multiplicities_tile_dense_tensor(size):
    m, n = size
    assert multiplicity_table(m, n).sum() == n**m


@given(sizes)
def test_monomials_sum_to_order(size):
    m, n = size
    for index in index_classes(m, n):
        assert sum(monomial_from_index(index, n)) == m


@given(st.integers(2, 5), st.integers(2, 4), seeds)
@settings(max_examples=20)
def test_unrolled_equals_compressed_property(m, n, seed):
    t = random_symmetric_tensor(m, n, rng=seed)
    x = np.random.default_rng(seed).normal(size=n)
    gen = make_unrolled(m, n)
    assert np.isclose(gen.ax_m(t.values, x), ax_m_compressed(t, x), rtol=1e-9, atol=1e-9)
    assert np.allclose(gen.ax_m1(t.values, x), ax_m1_compressed(t, x), rtol=1e-9, atol=1e-9)


@given(seeds)
@settings(max_examples=15)
def test_sshopm_fixed_point_invariant(seed):
    """Converged SS-HOPM results satisfy the eigenpair equation."""
    from repro.core.sshopm import sshopm, suggested_shift

    t = random_symmetric_tensor(4, 3, rng=seed)
    res = sshopm(t, alpha=suggested_shift(t), rng=seed, tol=1e-13, max_iters=3000)
    if res.converged:
        assert res.residual < 1e-5
        assert np.isclose(np.linalg.norm(res.eigenvector), 1.0, atol=1e-10)
        # lambda equals the generalized Rayleigh quotient at x
        assert np.isclose(res.eigenvalue, ax_m_compressed(t, res.eigenvector), atol=1e-10)


@given(st.integers(1, 200), st.integers(1, 12))
def test_partition_properties(total, workers):
    from repro.parallel.partition import PartitionError, static_partition

    if workers > total:
        with pytest.raises(PartitionError):
            static_partition(total, workers)
        return
    parts = static_partition(total, workers)
    flat = [i for r in parts for i in r]
    assert flat == list(range(total))
    sizes = [len(r) for r in parts]
    assert max(sizes) - min(sizes) <= 1


@given(
    st.lists(st.floats(0.0, 1e6, allow_nan=False), min_size=1, max_size=64),
    st.integers(1, 12),
)
def test_cost_weighted_partition_properties(weights, workers):
    from repro.parallel.partition import PartitionError, cost_weighted_partition

    if workers > len(weights):
        with pytest.raises(PartitionError):
            cost_weighted_partition(weights, workers)
        return
    parts = cost_weighted_partition(weights, workers)
    flat = [i for r in parts for i in r]
    assert flat == list(range(len(weights)))
    assert all(len(r) >= 1 for r in parts)
