"""Cross-variant agreement: every kernel implementation must match the dense
einsum reference, and all satisfy the algebraic identities of symmetric
tensor-vector products."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernels.batched import ax_m1_batched, ax_m_batched
from repro.kernels.compressed import ax_m1_compressed, ax_m_compressed
from repro.kernels.dispatch import available_variants, get_kernels
from repro.kernels.precomputed import ax_m1_precomputed, ax_m_precomputed
from repro.kernels.reference import ax_m1_dense, ax_m_dense
from repro.kernels.unrolled import _make_unrolled as make_unrolled
from repro.symtensor.random import random_symmetric_tensor
from repro.util.rng import random_unit_vector


def _reference(tensor, x):
    dense = tensor.to_dense()
    return ax_m_dense(dense, x), ax_m1_dense(dense, x)


class TestVariantAgreement:
    def test_all_variants_match_reference(self, size, rng):
        m, n = size
        tensor = random_symmetric_tensor(m, n, rng=rng)
        x = rng.normal(size=n)
        y_ref, v_ref = _reference(tensor, x)
        for name in available_variants():
            pair = get_kernels(name, m, n)
            assert np.allclose(pair.ax_m(tensor, x), y_ref), name
            assert np.allclose(pair.ax_m1(tensor, x), v_ref), name

    def test_special_vector_zero(self, size):
        m, n = size
        tensor = random_symmetric_tensor(m, n, rng=0)
        x = np.zeros(n)
        assert ax_m_compressed(tensor, x) == 0.0
        assert np.allclose(ax_m1_compressed(tensor, x), 0.0)
        # the unrolled kernel divides nothing (builds products directly)
        gen = make_unrolled(m, n)
        assert gen.ax_m(tensor.values, x) == 0.0
        assert np.allclose(gen.ax_m1(tensor.values, x), 0.0)

    def test_vector_with_zero_entry(self, size, rng):
        """Figure 3's literal 'divide by x_i' formulation breaks at zero
        entries; our kernels must not."""
        m, n = size
        tensor = random_symmetric_tensor(m, n, rng=rng)
        x = rng.normal(size=n)
        x[0] = 0.0
        y_ref, v_ref = _reference(tensor, x)
        assert np.allclose(ax_m_compressed(tensor, x), y_ref)
        assert np.allclose(ax_m1_compressed(tensor, x), v_ref)
        assert np.allclose(ax_m1_precomputed(tensor, x), v_ref)
        assert np.allclose(ax_m1_batched(tensor.values, x), v_ref)

    def test_basis_vectors(self, size):
        """A e_i^m must equal the diagonal entry a_{i...i}."""
        m, n = size
        tensor = random_symmetric_tensor(m, n, rng=1)
        for i in range(n):
            e = np.zeros(n)
            e[i] = 1.0
            assert np.isclose(ax_m_compressed(tensor, e), tensor[(i,) * m])


class TestAlgebraicIdentities:
    def test_euler_identity(self, size, rng):
        """x . (A x^{m-1}) == A x^m (Euler's theorem for homogeneous forms)."""
        m, n = size
        tensor = random_symmetric_tensor(m, n, rng=rng)
        x = rng.normal(size=n)
        assert np.isclose(ax_m1_compressed(tensor, x) @ x, ax_m_compressed(tensor, x))

    @given(st.floats(-3, 3, allow_nan=False))
    @settings(max_examples=20)
    def test_homogeneity(self, c):
        """A (c x)^m = c^m A x^m; A (c x)^{m-1} = c^{m-1} A x^{m-1}."""
        m, n = 4, 3
        tensor = random_symmetric_tensor(m, n, rng=5)
        x = random_unit_vector(n, rng=6)
        y = ax_m_precomputed(tensor, x)
        v = ax_m1_precomputed(tensor, x)
        assert np.isclose(ax_m_precomputed(tensor, c * x), c**m * y, atol=1e-9)
        assert np.allclose(ax_m1_precomputed(tensor, c * x), c ** (m - 1) * v, atol=1e-9)

    def test_linearity_in_tensor(self, rng):
        a = random_symmetric_tensor(3, 4, rng=rng)
        b = random_symmetric_tensor(3, 4, rng=rng)
        x = rng.normal(size=4)
        combo = a + 2.0 * b
        assert np.isclose(
            ax_m_compressed(combo, x),
            ax_m_compressed(a, x) + 2.0 * ax_m_compressed(b, x),
        )
        assert np.allclose(
            ax_m1_compressed(combo, x),
            ax_m1_compressed(a, x) + 2.0 * ax_m1_compressed(b, x),
        )

    def test_matrix_case_reduces_to_matvec(self, rng):
        """m=2: A x^1 == A @ x and A x^2 == x^T A x."""
        tensor = random_symmetric_tensor(2, 6, rng=rng)
        dense = tensor.to_dense()
        x = rng.normal(size=6)
        assert np.allclose(ax_m1_compressed(tensor, x), dense @ x)
        assert np.isclose(ax_m_compressed(tensor, x), x @ dense @ x)

    def test_gradient_relation(self, rng):
        """numerical gradient of f(x) = A x^m equals m * A x^{m-1}."""
        tensor = random_symmetric_tensor(4, 3, rng=rng)
        x = rng.normal(size=3)
        grad = np.zeros(3)
        h = 1e-6
        for i in range(3):
            xp, xm = x.copy(), x.copy()
            xp[i] += h
            xm[i] -= h
            grad[i] = (ax_m_precomputed(tensor, xp) - ax_m_precomputed(tensor, xm)) / (2 * h)
        assert np.allclose(grad, 4 * ax_m1_precomputed(tensor, x), atol=1e-4)

    def test_rank_one_tensor_eigenstructure(self, rng):
        """For A = d^{(x)m} with unit d: A x^{m-1} = (d.x)^{m-1} d."""
        from repro.symtensor.storage import symmetric_outer_power

        d = random_unit_vector(4, rng=rng)
        tensor = symmetric_outer_power(d, 5)
        x = rng.normal(size=4)
        expected = (d @ x) ** 4 * d
        assert np.allclose(ax_m1_compressed(tensor, x), expected)


class TestInputValidation:
    def test_wrong_x_shape(self):
        tensor = random_symmetric_tensor(3, 3, rng=0)
        with pytest.raises(ValueError):
            ax_m_compressed(tensor, np.zeros(4))
        with pytest.raises(ValueError):
            ax_m1_compressed(tensor, np.zeros(2))
        with pytest.raises(ValueError):
            ax_m_precomputed(tensor, np.zeros(4))
        with pytest.raises(ValueError):
            ax_m1_precomputed(tensor, np.zeros(4))

    def test_dispatch_unknown_variant(self):
        with pytest.raises(KeyError):
            get_kernels("nonexistent")

    def test_dispatch_specialized_needs_shape(self):
        with pytest.raises(ValueError):
            get_kernels("unrolled")

    def test_available_variants_sorted(self):
        names = available_variants()
        assert names == sorted(names)
        assert {"reference", "compressed", "precomputed", "unrolled", "vectorized"} <= set(names)


class TestFloat32:
    def test_single_precision_path(self, rng):
        """The paper computes in single precision; kernels must accept it."""
        tensor = random_symmetric_tensor(4, 3, rng=rng).astype(np.float32)
        x = rng.normal(size=3).astype(np.float32)
        y64 = ax_m_compressed(tensor.astype(np.float64), x.astype(np.float64))
        assert np.isclose(ax_m_batched(tensor.values, x), y64, rtol=1e-4)
        v = ax_m1_batched(tensor.values, x)
        assert v.dtype == np.float32
