"""Tests for the adaptive-shift (GEAP-style) SS-HOPM extension."""

import numpy as np
import pytest

from repro.core.adaptive import adaptive_sshopm
from repro.core.eigenpairs import classify_eigenpair
from repro.core.sshopm import sshopm, suggested_shift
from repro.symtensor.random import kolda_mayo_example_3x3x3, random_symmetric_tensor
from repro.util.rng import random_unit_vector


class TestAdaptiveConvergence:
    def test_monotone_ascent(self, rng):
        tensor = random_symmetric_tensor(4, 3, rng=rng)
        res = adaptive_sshopm(tensor, rng=rng, tol=1e-14, max_iters=1000)
        assert res.converged
        hist = np.array(res.lambda_history)
        assert np.all(np.diff(hist) >= -1e-9)

    def test_monotone_descent_for_min_mode(self, rng):
        tensor = random_symmetric_tensor(4, 3, rng=rng)
        res = adaptive_sshopm(tensor, mode="min", rng=rng, tol=1e-14, max_iters=1000)
        assert res.converged
        hist = np.array(res.lambda_history)
        assert np.all(np.diff(hist) <= 1e-9)

    def test_residual_small(self, rng):
        for m, n in [(3, 3), (4, 3), (4, 4)]:
            tensor = random_symmetric_tensor(m, n, rng=rng)
            res = adaptive_sshopm(tensor, rng=rng, tol=1e-14, max_iters=2000)
            assert res.converged
            assert res.residual < 1e-6

    def test_finds_local_maximum(self, rng):
        """mode='max' fixed points should be positive stable (or degenerate)."""
        tensor = random_symmetric_tensor(4, 3, rng=rng)
        res = adaptive_sshopm(tensor, rng=rng, tol=1e-14, max_iters=2000)
        label = classify_eigenpair(tensor, res.eigenvalue, res.eigenvector)
        assert label in {"pos_stable", "degenerate"}

    def test_converges_faster_than_conservative_shift(self):
        """The conservative fixed shift slows convergence (the tradeoff the
        paper notes in Section V-A); the adaptive shift should need fewer
        iterations on average."""
        tensor = kolda_mayo_example_3x3x3()
        alpha = suggested_shift(tensor)
        fixed_iters, adaptive_iters = [], []
        for seed in range(10):
            x0 = random_unit_vector(3, rng=seed)
            f = sshopm(tensor, x0=x0, alpha=alpha, tol=1e-12, max_iters=20000)
            a = adaptive_sshopm(tensor, x0=x0, tol=1e-12, max_iters=20000)
            if f.converged and a.converged:
                fixed_iters.append(f.iterations)
                adaptive_iters.append(a.iterations)
        assert len(adaptive_iters) >= 5
        assert np.mean(adaptive_iters) < np.mean(fixed_iters)

    def test_matrix_case(self, rng):
        tensor = random_symmetric_tensor(2, 5, rng=rng)
        w, _ = np.linalg.eigh(tensor.to_dense())
        res = adaptive_sshopm(tensor, rng=rng, tol=1e-14, max_iters=5000)
        assert res.converged
        # converges to *an* eigenvalue that is a local max of the Rayleigh
        # quotient — for matrices only the largest qualifies
        assert abs(res.eigenvalue - w[-1]) < 1e-6


class TestAdaptiveOptions:
    def test_bad_mode(self, rng):
        tensor = random_symmetric_tensor(4, 3, rng=rng)
        with pytest.raises(ValueError):
            adaptive_sshopm(tensor, mode="saddle")

    def test_zero_start_rejected(self, rng):
        tensor = random_symmetric_tensor(4, 3, rng=rng)
        with pytest.raises(ValueError):
            adaptive_sshopm(tensor, x0=np.zeros(3))

    def test_kernel_variant_selectable(self, rng):
        tensor = random_symmetric_tensor(4, 3, rng=rng)
        x0 = random_unit_vector(3, rng=rng)
        a = adaptive_sshopm(tensor, x0=x0, kernels="compressed", tol=1e-13)
        b = adaptive_sshopm(tensor, x0=x0, kernels="unrolled", tol=1e-13)
        assert np.isclose(a.eigenvalue, b.eigenvalue, atol=1e-10)
