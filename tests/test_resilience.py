"""Unit tests for the resilience layer: guards, retry, checkpoints, RNG
streams, and their wiring into the solvers.

The end-to-end fault-injection scenarios live in ``tests/test_chaos.py``;
this file pins down each component's contract in isolation.
"""

import json
import os

import numpy as np
import pytest

from repro.core.config import SolveConfig
from repro.core.adaptive import adaptive_sshopm
from repro.core.multistart import multistart_sshopm
from repro.core.sshopm import sshopm, suggested_shift
from repro.instrument.metrics import use_registry
from repro.resilience import (
    CKPT_SCHEMA,
    FaultPlan,
    GuardConfig,
    IterationGuard,
    RetryExhausted,
    RetryPolicy,
    SolveFailure,
    check_resumable,
    escalate_shift,
    nan_injecting_pair,
    new_checkpoint,
    read_checkpoint,
    resolve_guards,
    run_with_retry,
    tensor_fingerprint,
    write_checkpoint,
)
from repro.kernels.dispatch import get_kernels
from repro.symtensor.random import random_symmetric_batch, random_symmetric_tensor
from repro.symtensor.storage import SymmetricTensor
from repro.util.rng import spawn_rng


# ---------------------------------------------------------------------------
# guards


def test_resolve_guards_normalization():
    assert resolve_guards(None) is None
    assert resolve_guards(False) is None
    assert resolve_guards(True) == GuardConfig()
    cfg = GuardConfig(oscillation_window=4)
    assert resolve_guards(cfg) is cfg
    with pytest.raises(TypeError):
        resolve_guards("yes")


def test_guard_nonfinite_lambda():
    g = IterationGuard(GuardConfig(), solver="t", tol=1e-12)
    g.note_start(1.0, np.ones(3))
    g.check(1, 1.5, np.ones(3))
    with pytest.raises(SolveFailure) as exc:
        g.check(2, float("nan"), np.ones(3))
    assert exc.value.reason == "nonfinite"
    # the failure carries the last *finite* state
    assert exc.value.last_lambda == 1.5
    assert exc.value.iteration == 2
    np.testing.assert_array_equal(exc.value.last_iterate, np.ones(3))


def test_guard_nonfinite_iterate():
    g = IterationGuard(GuardConfig(), solver="t", tol=1e-12)
    g.note_start(1.0, np.ones(3))
    bad = np.array([1.0, np.inf, 0.0])
    with pytest.raises(SolveFailure) as exc:
        g.check(1, 1.0, bad)
    assert exc.value.reason == "nonfinite"


def test_guard_collapse_and_nonfinite_norm():
    g = IterationGuard(GuardConfig(), solver="t", tol=1e-12)
    with pytest.raises(SolveFailure) as exc:
        g.check_update(1, 0.0)
    assert exc.value.reason == "collapse"
    g2 = IterationGuard(GuardConfig(), solver="t", tol=1e-12)
    with pytest.raises(SolveFailure) as exc:
        g2.check_update(1, float("inf"))
    assert exc.value.reason == "nonfinite"


def test_guard_oscillation_detected():
    g = IterationGuard(GuardConfig(oscillation_window=6, stall_window=0),
                       solver="t", tol=1e-12)
    g.note_start(0.0, np.ones(2))
    lam = 0.0
    with pytest.raises(SolveFailure) as exc:
        for k in range(1, 40):
            lam = 1.0 if lam == 0.0 else 0.0  # period-2 cycle
            g.check(k, lam, np.ones(2))
    assert exc.value.reason == "oscillation"
    # caught within ~the window, not after burning the whole budget
    assert exc.value.iteration <= 8


def test_guard_no_false_positive_on_monotone_convergence():
    g = IterationGuard(GuardConfig(oscillation_window=4, stall_window=10),
                       solver="t", tol=1e-12)
    g.note_start(0.0, np.ones(2))
    lam = 0.0
    for k in range(1, 200):
        lam = lam + 2.0 ** (-k)  # geometric, monotone
        g.check(k, lam, np.ones(2))  # must not raise


def test_guard_stall_detected():
    g = IterationGuard(GuardConfig(oscillation_window=0, stall_window=5,
                                   stall_slack=1.0),
                       solver="t", tol=1e-12)
    g.note_start(0.0, np.ones(2))
    with pytest.raises(SolveFailure) as exc:
        lam = 0.0
        for k in range(1, 100):
            # fixed-size steps, alternating sign pattern broken so the
            # oscillation guard (disabled anyway) is not what fires
            lam += 0.125 if k % 3 else 0.25
            g.check(k, lam, np.ones(2))
    assert exc.value.reason == "stall"


def test_guard_converging_run_does_not_stall():
    tensor_free_deltas = [0.5 * 0.8**k for k in range(120)]
    g = IterationGuard(GuardConfig(oscillation_window=0, stall_window=10),
                       solver="t", tol=1e-12)
    g.note_start(0.0, np.ones(2))
    lam = 0.0
    for k, d in enumerate(tensor_free_deltas, start=1):
        lam += d
        g.check(k, lam, np.ones(2))


# ---------------------------------------------------------------------------
# guard wiring in the solvers


def test_sshopm_guard_raises_on_nan_tensor():
    bad = SymmetricTensor(np.full(15, np.nan), 4, 3)
    with pytest.raises(SolveFailure) as exc:
        sshopm(bad, alpha=1.0, rng=0, guards=True, telemetry=False)
    assert exc.value.reason == "nonfinite"
    assert exc.value.solver == "sshopm"


def test_sshopm_legacy_behavior_without_guards():
    # the historical contract: NaN tensors terminate unconverged, no raise
    bad = SymmetricTensor(np.full(15, np.nan), 4, 3)
    res = sshopm(bad, alpha=1.0, rng=0, telemetry=False)
    assert not res.converged


def test_sshopm_guard_config_via_solveconfig():
    bad = SymmetricTensor(np.full(15, np.nan), 4, 3)
    cfg = SolveConfig(guards=True)
    with pytest.raises(SolveFailure):
        sshopm(bad, alpha=1.0, rng=0, config=cfg, telemetry=False)


def test_sshopm_guard_failure_records_metric():
    bad = SymmetricTensor(np.full(15, np.nan), 4, 3)
    with use_registry() as reg:
        with pytest.raises(SolveFailure):
            sshopm(bad, alpha=1.0, rng=0, guards=True, telemetry=False)
    snap = reg.snapshot()
    names = {m["name"] for m in snap["metrics"]}
    assert "repro_solver_failures_total" in names


def test_sshopm_guard_clean_run_unaffected(rng):
    t = random_symmetric_tensor(4, 3, rng=rng)
    alpha = suggested_shift(t)
    plain = sshopm(t, alpha=alpha, rng=1, telemetry=False)
    guarded = sshopm(t, alpha=alpha, rng=1, guards=True, telemetry=False)
    assert plain.eigenvalue == guarded.eigenvalue
    np.testing.assert_array_equal(plain.eigenvector, guarded.eigenvector)
    assert plain.iterations == guarded.iterations


def test_adaptive_guard_raises_on_nan_tensor():
    bad = SymmetricTensor(np.full(15, np.nan), 4, 3)
    with pytest.raises(SolveFailure) as exc:
        adaptive_sshopm(bad, rng=0, guards=True, telemetry=False)
    assert exc.value.reason == "nonfinite"
    assert exc.value.solver == "adaptive_sshopm"


def test_adaptive_guard_clean_run_unaffected(rng):
    t = random_symmetric_tensor(4, 3, rng=rng)
    plain = adaptive_sshopm(t, rng=1, telemetry=False)
    guarded = adaptive_sshopm(t, rng=1, guards=True, telemetry=False)
    assert plain.eigenvalue == guarded.eigenvalue
    assert plain.iterations == guarded.iterations


def test_multistart_failed_mask_and_total_collapse(rng):
    batch = random_symmetric_batch(3, 4, 3, rng=rng)
    res = multistart_sshopm(batch, num_starts=6, alpha=2.0, rng=1,
                            telemetry=False)
    assert res.failed is not None
    assert res.failed.shape == res.eigenvalues.shape
    assert not res.failed.any()

    nan_batch = random_symmetric_batch(2, 4, 3, rng=rng)
    nan_batch.values[:] = np.nan
    # without guards: legacy silent behavior, but the mask reports the dead lanes
    res_bad = multistart_sshopm(nan_batch, num_starts=4, alpha=2.0, rng=1,
                                telemetry=False)
    assert res_bad.failed.all()
    # with guards: total collapse is a structured failure
    with pytest.raises(SolveFailure) as exc:
        multistart_sshopm(nan_batch, num_starts=4, alpha=2.0, rng=1,
                          guards=True, telemetry=False)
    assert exc.value.reason == "collapse"


# ---------------------------------------------------------------------------
# retry


def test_escalate_shift_schedule():
    assert escalate_shift(0.5, 0, safe_shift=10.0) == 0.5  # first attempt as asked
    assert escalate_shift(0.5, 1, safe_shift=10.0) == 10.0  # jump to provable
    assert escalate_shift(0.5, 2, safe_shift=10.0) == 30.0  # then grow 3x
    assert escalate_shift(-0.5, 1, safe_shift=10.0) == -10.0  # sign preserved
    assert escalate_shift(0.0, 1) == 1.0  # fallback floor


def test_retry_recovers_after_failures():
    calls = []

    def attempt(a):
        calls.append(a)
        if a < 2:
            raise SolveFailure("oscillation", solver="t")
        return "ok"

    out = run_with_retry(attempt, RetryPolicy(max_attempts=3), solver="t", rng=0)
    assert out.result == "ok"
    assert out.attempts == 3
    assert [f.reason for f in out.failures] == ["oscillation", "oscillation"]
    assert calls == [0, 1, 2]


def test_retry_exhaustion_raises_with_history():
    def attempt(a):
        raise SolveFailure("nonfinite", solver="t", iteration=a + 1)

    with pytest.raises(RetryExhausted) as exc:
        run_with_retry(attempt, RetryPolicy(max_attempts=2), solver="t", rng=0)
    assert exc.value.attempts == 2
    assert len(exc.value.failures) == 2
    assert exc.value.reason == "nonfinite"
    assert isinstance(exc.value, SolveFailure)  # catchable as the base type


def test_retry_respects_retry_on_filter():
    calls = []

    def attempt(a):
        calls.append(a)
        raise SolveFailure("stall", solver="t")

    policy = RetryPolicy(max_attempts=5, retry_on=("nonfinite",))
    with pytest.raises(RetryExhausted):
        run_with_retry(attempt, policy, solver="t", rng=0)
    assert calls == [0]  # non-retryable: no second attempt


def test_retry_backoff_is_seeded_and_jittered():
    policy = RetryPolicy(max_attempts=4, backoff_base=0.1, backoff_factor=2.0,
                         backoff_jitter=0.5)
    a = [policy.backoff_seconds(k, np.random.default_rng(7)) for k in range(3)]
    b = [policy.backoff_seconds(k, np.random.default_rng(7)) for k in range(3)]
    assert a == b  # deterministic given the rng
    assert 0.1 <= a[0] <= 0.15  # base * (1 + jitter * U[0,1])
    assert 0.2 <= a[1] <= 0.3

    slept = []

    def attempt(a_):
        if a_ < 2:
            raise SolveFailure("stall", solver="t")
        return "ok"

    run_with_retry(attempt, policy, solver="t", rng=np.random.default_rng(7),
                   sleep=slept.append)
    assert len(slept) == 2 and all(s > 0 for s in slept)


def test_retry_policy_validation():
    with pytest.raises(ValueError):
        RetryPolicy(max_attempts=0)
    with pytest.raises(ValueError):
        RetryPolicy(shift_growth=0.5)
    with pytest.raises(ValueError):
        RetryPolicy(backoff_base=-1.0)


def test_retry_records_attempt_metric():
    def attempt(a):
        if a == 0:
            raise SolveFailure("oscillation", solver="t")
        return "ok"

    with use_registry() as reg:
        run_with_retry(attempt, RetryPolicy(max_attempts=2), solver="t", rng=0)
    names = {m["name"] for m in reg.snapshot()["metrics"]}
    assert "repro_retry_attempts_total" in names


# ---------------------------------------------------------------------------
# spawn_rng determinism (the satellite fixing worker-count reproducibility)


def test_spawn_rng_streams_are_stable_and_independent():
    a = spawn_rng(42, 3, 0).standard_normal(4)
    b = spawn_rng(42, 3, 0).standard_normal(4)
    np.testing.assert_array_equal(a, b)
    c = spawn_rng(42, 3, 1).standard_normal(4)
    d = spawn_rng(42, 4, 0).standard_normal(4)
    assert not np.array_equal(a, c)
    assert not np.array_equal(a, d)


def test_spawn_rng_independent_of_call_order():
    first_then_second = [spawn_rng(0, i).uniform() for i in (0, 1)]
    second_then_first = [spawn_rng(0, i).uniform() for i in (1, 0)][::-1]
    assert first_then_second == second_then_first


# ---------------------------------------------------------------------------
# checkpoints


def _mk_state(t):
    return new_checkpoint(fingerprint=tensor_fingerprint(t), num_starts=8,
                          seed=3, alpha=2.0, tol=1e-12, max_iters=500)


def test_checkpoint_roundtrip(tmp_path, rng):
    t = random_symmetric_tensor(4, 3, rng=rng)
    state = _mk_state(t)
    state["starts"]["0"] = {"eigenvalue": 1.25}
    path = tmp_path / "ck.json"
    write_checkpoint(path, state)
    loaded = read_checkpoint(path)
    assert loaded == state
    assert loaded["schema"] == CKPT_SCHEMA
    check_resumable(loaded, fingerprint=tensor_fingerprint(t), num_starts=8,
                    seed=3, alpha=2.0, tol=1e-12, max_iters=500)


def test_checkpoint_rejects_wrong_params(tmp_path, rng):
    t = random_symmetric_tensor(4, 3, rng=rng)
    path = tmp_path / "ck.json"
    write_checkpoint(path, _mk_state(t))
    loaded = read_checkpoint(path)
    with pytest.raises(ValueError, match="alpha"):
        check_resumable(loaded, fingerprint=tensor_fingerprint(t), num_starts=8,
                        seed=3, alpha=5.0, tol=1e-12, max_iters=500)
    other = random_symmetric_tensor(4, 3, rng=np.random.default_rng(99))
    with pytest.raises(ValueError, match="fingerprint|tensor"):
        check_resumable(loaded, fingerprint=tensor_fingerprint(other),
                        num_starts=8, seed=3, alpha=2.0, tol=1e-12, max_iters=500)


def test_checkpoint_rejects_garbage(tmp_path):
    path = tmp_path / "ck.json"
    path.write_text("{ not json")
    with pytest.raises(ValueError, match="truncated|JSON|json"):
        read_checkpoint(path)
    path.write_text(json.dumps({"schema": "repro-ckpt/999", "run": {}, "starts": {}}))
    with pytest.raises(ValueError, match="schema"):
        read_checkpoint(path)
    path.write_text(json.dumps({"schema": CKPT_SCHEMA}))
    with pytest.raises(ValueError):
        read_checkpoint(path)


def test_checkpoint_rejects_oversized(tmp_path):
    path = tmp_path / "ck.json"
    path.write_text("x" * 4096)
    with pytest.raises(ValueError, match="bytes.*limit"):
        read_checkpoint(path, max_bytes=1024)


def test_checkpoint_write_is_atomic(tmp_path, rng):
    t = random_symmetric_tensor(4, 3, rng=rng)
    path = tmp_path / "ck.json"
    write_checkpoint(path, _mk_state(t))
    before = path.read_text()
    # unserializable state must not clobber the existing good checkpoint
    bad = _mk_state(t)
    bad["starts"]["0"] = {"x": object()}
    with pytest.raises(TypeError):
        write_checkpoint(path, bad)
    assert path.read_text() == before
    assert [p for p in os.listdir(tmp_path)] == ["ck.json"]  # no temp litter


def test_tensor_fingerprint_sensitivity(rng):
    t = random_symmetric_tensor(4, 3, rng=rng)
    fp = tensor_fingerprint(t)
    assert fp == tensor_fingerprint(t)
    t2 = t.copy()
    t2.values[0] += 1e-9
    assert tensor_fingerprint(t2) != fp


# ---------------------------------------------------------------------------
# fault plan basics (full scenarios in test_chaos.py)


def test_nan_injecting_pair_shapes(rng):
    t = random_symmetric_tensor(4, 3, rng=rng)
    pair = nan_injecting_pair(get_kernels("precomputed", 4, 3))
    x = np.ones(3) / np.sqrt(3)
    assert np.isnan(pair.ax_m(t, x))
    y = pair.ax_m1(t, x)
    assert y.shape == (3,) and np.isnan(y).all()


def test_fault_plan_is_deterministic(rng):
    t = random_symmetric_tensor(4, 3, rng=rng)
    plan_a = FaultPlan(seed=5, corrupt={2: 3})
    plan_b = FaultPlan(seed=5, corrupt={2: 3})
    ta, tb = plan_a.tensor_for(2, t), plan_b.tensor_for(2, t)
    np.testing.assert_array_equal(np.isnan(ta.values), np.isnan(tb.values))
    assert np.isnan(ta.values).sum() == 3
    assert plan_a.tensor_for(0, t) is t  # unscheduled starts untouched
