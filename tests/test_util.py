"""Tests for flop counting and RNG helpers."""

import numpy as np
import pytest

from repro.util.flopcount import FlopCounter, counting, null_counter
from repro.util.rng import (
    fibonacci_sphere,
    make_rng,
    random_unit_vector,
    random_unit_vectors,
)


class TestFlopCounter:
    def test_accumulation(self):
        c = FlopCounter()
        c.add_flops(10)
        c.add_intops(5)
        c.add_loads(3)
        c.add_stores(2)
        assert c.snapshot() == {"flops": 10, "intops": 5, "loads": 3, "stores": 2}

    def test_reset(self):
        c = FlopCounter()
        c.add_flops(10)
        c.reset()
        assert c.flops == 0

    def test_section_delta(self):
        c = FlopCounter()
        c.add_flops(100)
        with c.section() as delta:
            c.add_flops(7)
            c.add_loads(2)
        assert delta["flops"] == 7
        assert delta["loads"] == 2
        assert c.flops == 107

    def test_null_counter_ignores(self):
        c = null_counter()
        c.add_flops(1000)
        assert c.flops == 0

    def test_null_counter_shared(self):
        assert null_counter() is null_counter()

    def test_counting_context(self):
        with counting() as c:
            c.add_flops(3)
        assert c.flops == 3


class TestRng:
    def test_make_rng_passthrough(self):
        gen = np.random.default_rng(0)
        assert make_rng(gen) is gen

    def test_make_rng_from_seed_deterministic(self):
        assert make_rng(7).normal() == make_rng(7).normal()

    def test_random_unit_vectors(self):
        v = random_unit_vectors(50, 4, rng=0)
        assert v.shape == (50, 4)
        assert np.allclose(np.linalg.norm(v, axis=1), 1.0, atol=1e-12)

    def test_random_unit_vectors_dtype(self):
        v = random_unit_vectors(5, 3, rng=0, dtype=np.float32)
        assert v.dtype == np.float32

    def test_random_unit_vectors_validation(self):
        with pytest.raises(ValueError):
            random_unit_vectors(-1, 3)
        with pytest.raises(ValueError):
            random_unit_vectors(3, 0)

    def test_single_vector(self):
        v = random_unit_vector(5, rng=1)
        assert v.shape == (5,)
        assert np.isclose(np.linalg.norm(v), 1.0)

    def test_coverage_of_sphere(self):
        """Paper's scheme (uniform in the cube, normalized) covers all
        octants of the sphere."""
        v = random_unit_vectors(500, 3, rng=2)
        octants = set(map(tuple, np.sign(v).astype(int)))
        assert len(octants) == 8

    def test_fibonacci_sphere(self):
        pts = fibonacci_sphere(100)
        assert pts.shape == (100, 3)
        assert np.allclose(np.linalg.norm(pts, axis=1), 1.0, atol=1e-12)
        # even coverage: nearest-neighbour distances are tightly clustered
        d = np.linalg.norm(pts[:, None] - pts[None, :], axis=-1)
        np.fill_diagonal(d, np.inf)
        nn = d.min(axis=1)
        assert nn.std() / nn.mean() < 0.25

    def test_fibonacci_validation(self):
        with pytest.raises(ValueError):
            fibonacci_sphere(0)
