"""Round-trip tests for the persistence layer."""

import numpy as np
import pytest

from repro.core.multistart import multistart_sshopm
from repro.io import (
    load_batch,
    load_phantom,
    load_results,
    load_tensor,
    save_batch,
    save_phantom,
    save_results,
    save_tensor,
)
from repro.mri.phantom import make_phantom
from repro.symtensor.random import random_symmetric_batch, random_symmetric_tensor


class TestTensorIO:
    def test_round_trip(self, tmp_path, rng):
        t = random_symmetric_tensor(4, 3, rng=rng)
        path = tmp_path / "t.npz"
        save_tensor(path, t)
        back = load_tensor(path)
        assert back.allclose(t)
        assert (back.m, back.n) == (4, 3)

    def test_batch_round_trip(self, tmp_path, rng):
        b = random_symmetric_batch(7, 4, 3, rng=rng)
        path = tmp_path / "b.npz"
        save_batch(path, b)
        back = load_batch(path)
        assert np.array_equal(back.values, b.values)
        assert len(back) == 7

    def test_kind_mismatch_rejected(self, tmp_path, rng):
        t = random_symmetric_tensor(4, 3, rng=rng)
        path = tmp_path / "t.npz"
        save_tensor(path, t)
        with pytest.raises(ValueError):
            load_batch(path)

    def test_arbitrary_npz_rejected(self, tmp_path):
        path = tmp_path / "junk.npz"
        np.savez(path, a=np.zeros(3))
        with pytest.raises((ValueError, KeyError)):
            load_tensor(path)


class TestPhantomIO:
    def test_round_trip(self, tmp_path):
        ph = make_phantom(rows=4, cols=5, num_gradients=20, noise_sigma=0.01, rng=9)
        path = tmp_path / "ph.npz"
        save_phantom(path, ph)
        back = load_phantom(path)
        assert np.array_equal(back.tensors.values, ph.tensors.values)
        assert np.array_equal(back.gradients, ph.gradients)
        assert np.array_equal(back.adc, ph.adc)
        assert (back.rows, back.cols) == (4, 5)
        assert back.meta == ph.meta
        assert len(back.true_directions) == len(ph.true_directions)
        for a, b in zip(back.true_directions, ph.true_directions):
            assert np.array_equal(a, b)

    def test_ragged_directions_preserved(self, tmp_path):
        ph = make_phantom(rows=4, cols=4, num_gradients=20, rng=10)
        path = tmp_path / "ph.npz"
        save_phantom(path, ph)
        back = load_phantom(path)
        assert np.array_equal(back.num_fibers(), ph.num_fibers())
        assert set(back.num_fibers()) == {1, 2}


class TestResultsIO:
    def test_round_trip(self, tmp_path, rng):
        batch = random_symmetric_batch(3, 4, 3, rng=rng)
        res = multistart_sshopm(batch, num_starts=8, alpha=5.0, rng=11, max_iter=500)
        path = tmp_path / "res.npz"
        save_results(path, res)
        back = load_results(path)
        assert np.array_equal(back.eigenvalues, res.eigenvalues)
        assert np.array_equal(back.eigenvectors, res.eigenvectors)
        assert np.array_equal(back.converged, res.converged)
        assert np.array_equal(back.iterations, res.iterations)
        assert back.total_sweeps == res.total_sweeps
