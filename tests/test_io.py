"""Round-trip tests for the persistence layer."""

import numpy as np
import pytest

from repro.core.multistart import multistart_sshopm
from repro.io import (
    load_batch,
    load_phantom,
    load_results,
    load_tensor,
    save_batch,
    save_phantom,
    save_results,
    save_tensor,
)
from repro.mri.phantom import make_phantom
from repro.symtensor.random import random_symmetric_batch, random_symmetric_tensor


class TestTensorIO:
    def test_round_trip(self, tmp_path, rng):
        t = random_symmetric_tensor(4, 3, rng=rng)
        path = tmp_path / "t.npz"
        save_tensor(path, t)
        back = load_tensor(path)
        assert back.allclose(t)
        assert (back.m, back.n) == (4, 3)

    def test_batch_round_trip(self, tmp_path, rng):
        b = random_symmetric_batch(7, 4, 3, rng=rng)
        path = tmp_path / "b.npz"
        save_batch(path, b)
        back = load_batch(path)
        assert np.array_equal(back.values, b.values)
        assert len(back) == 7

    def test_kind_mismatch_rejected(self, tmp_path, rng):
        t = random_symmetric_tensor(4, 3, rng=rng)
        path = tmp_path / "t.npz"
        save_tensor(path, t)
        with pytest.raises(ValueError):
            load_batch(path)

    def test_arbitrary_npz_rejected(self, tmp_path):
        path = tmp_path / "junk.npz"
        np.savez(path, a=np.zeros(3))
        with pytest.raises((ValueError, KeyError)):
            load_tensor(path)


class TestPhantomIO:
    def test_round_trip(self, tmp_path):
        ph = make_phantom(rows=4, cols=5, num_gradients=20, noise_sigma=0.01, rng=9)
        path = tmp_path / "ph.npz"
        save_phantom(path, ph)
        back = load_phantom(path)
        assert np.array_equal(back.tensors.values, ph.tensors.values)
        assert np.array_equal(back.gradients, ph.gradients)
        assert np.array_equal(back.adc, ph.adc)
        assert (back.rows, back.cols) == (4, 5)
        assert back.meta == ph.meta
        assert len(back.true_directions) == len(ph.true_directions)
        for a, b in zip(back.true_directions, ph.true_directions):
            assert np.array_equal(a, b)

    def test_ragged_directions_preserved(self, tmp_path):
        ph = make_phantom(rows=4, cols=4, num_gradients=20, rng=10)
        path = tmp_path / "ph.npz"
        save_phantom(path, ph)
        back = load_phantom(path)
        assert np.array_equal(back.num_fibers(), ph.num_fibers())
        assert set(back.num_fibers()) == {1, 2}


class TestResultsIO:
    def test_round_trip(self, tmp_path, rng):
        batch = random_symmetric_batch(3, 4, 3, rng=rng)
        res = multistart_sshopm(batch, num_starts=8, alpha=5.0, rng=11, max_iters=500)
        path = tmp_path / "res.npz"
        save_results(path, res)
        back = load_results(path)
        assert np.array_equal(back.eigenvalues, res.eigenvalues)
        assert np.array_equal(back.eigenvectors, res.eigenvectors)
        assert np.array_equal(back.converged, res.converged)
        assert np.array_equal(back.iterations, res.iterations)
        assert back.sweeps == res.sweeps

    def test_failed_mask_round_trip(self, tmp_path, rng):
        batch = random_symmetric_batch(2, 4, 3, rng=rng)
        res = multistart_sshopm(batch, num_starts=4, alpha=5.0, rng=11)
        assert res.failed is not None
        path = tmp_path / "res.npz"
        save_results(path, res)
        back = load_results(path)
        assert np.array_equal(back.failed, res.failed)

    def test_old_results_without_failed_mask_load(self, tmp_path, rng):
        # files written before the `failed` field existed must still load
        batch = random_symmetric_batch(2, 4, 3, rng=rng)
        res = multistart_sshopm(batch, num_starts=4, alpha=5.0, rng=11)
        path = tmp_path / "old.npz"
        np.savez_compressed(
            path, format="repro-v1", kind="results",
            eigenvalues=res.eigenvalues, eigenvectors=res.eigenvectors,
            converged=res.converged, iterations=res.iterations,
            total_sweeps=res.sweeps,
        )
        back = load_results(path)
        assert back.failed is None

    def test_nan_eigenvalues_allowed_in_results(self, tmp_path, rng):
        # failed lanes are part of the record; results skip finiteness checks
        batch = random_symmetric_batch(2, 4, 3, rng=rng)
        res = multistart_sshopm(batch, num_starts=4, alpha=5.0, rng=11)
        res.eigenvalues[0, 0] = np.nan
        path = tmp_path / "res.npz"
        save_results(path, res)
        assert np.isnan(load_results(path).eigenvalues[0, 0])


class TestRobustness:
    """Failure-path contract: atomic saves, clear errors on bad payloads."""

    def test_save_is_atomic_over_existing_file(self, tmp_path, rng, monkeypatch):
        t = random_symmetric_tensor(4, 3, rng=rng)
        path = tmp_path / "t.npz"
        save_tensor(path, t)
        before = path.read_bytes()

        # make the underlying writer explode mid-save; the good file and
        # directory must be untouched (no temp litter either)
        def boom(*a, **k):
            raise OSError("disk on fire")

        monkeypatch.setattr(np, "savez_compressed", boom)
        with pytest.raises(OSError):
            save_tensor(path, t)
        assert path.read_bytes() == before
        assert sorted(p.name for p in tmp_path.iterdir()) == ["t.npz"]

    def test_truncated_file_is_clear_valueerror(self, tmp_path, rng):
        t = random_symmetric_tensor(4, 3, rng=rng)
        path = tmp_path / "t.npz"
        save_tensor(path, t)
        payload = path.read_bytes()
        for cut in (10, len(payload) // 2, len(payload) - 4):
            path.write_bytes(payload[:cut])
            with pytest.raises(ValueError, match=r"truncated|corrupt|archive"):
                load_tensor(path)

    def test_garbage_bytes_are_clear_valueerror(self, tmp_path):
        path = tmp_path / "junk.npz"
        path.write_bytes(b"this is not a zip archive at all")
        with pytest.raises(ValueError, match=r"truncated|corrupt|archive"):
            load_tensor(path)

    def test_missing_file_stays_oserror(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_tensor(tmp_path / "nope.npz")

    def test_wrong_unique_count_names_formula(self, tmp_path):
        # 15 unique values are needed for R^[4,3]; write 14
        path = tmp_path / "short.npz"
        np.savez_compressed(path, format="repro-v1", kind="tensor",
                            values=np.zeros(14), m=4, n=3)
        with pytest.raises(ValueError, match=r"C\(m\+n-1, m\)") as exc:
            load_tensor(path)
        assert "short.npz" in str(exc.value)

    def test_nonfinite_tensor_payload_rejected(self, tmp_path, rng):
        t = random_symmetric_tensor(4, 3, rng=rng)
        t.values[3] = np.nan
        path = tmp_path / "bad.npz"
        save_tensor(path, t)
        with pytest.raises(ValueError, match="non-finite"):
            load_tensor(path)

    def test_nonfinite_batch_payload_rejected(self, tmp_path, rng):
        b = random_symmetric_batch(3, 4, 3, rng=rng)
        b.values[1, 2] = np.inf
        path = tmp_path / "bad.npz"
        save_batch(path, b)
        with pytest.raises(ValueError, match="non-finite"):
            load_batch(path)

    def test_missing_array_names_key(self, tmp_path):
        path = tmp_path / "partial.npz"
        np.savez_compressed(path, format="repro-v1", kind="tensor",
                            values=np.zeros(15), m=4)  # no n
        with pytest.raises(ValueError, match="'n'"):
            load_tensor(path)

    def test_save_appends_npz_suffix_like_numpy(self, tmp_path, rng):
        t = random_symmetric_tensor(4, 3, rng=rng)
        save_tensor(tmp_path / "bare", t)
        assert (tmp_path / "bare.npz").exists()
        assert load_tensor(tmp_path / "bare.npz").allclose(t)
