"""Tests for the metrics registry (repro.instrument.metrics): counter /
gauge / histogram semantics, P² streaming percentiles, label series,
snapshot/merge, thread-local registry override, and the solver emission
that the parallel executor aggregates across workers."""

import threading

import numpy as np
import pytest

from repro.instrument.metrics import (
    METRICS_SCHEMA,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    P2Quantile,
    default_buckets,
    default_registry,
    get_registry,
    observe_solver_run,
    use_registry,
)


class TestP2Quantile:
    def test_exact_below_five_observations(self):
        p = P2Quantile(0.5)
        for x in (5.0, 1.0, 3.0):
            p.observe(x)
        assert p.value == 3.0

    @pytest.mark.parametrize("q", [0.5, 0.9, 0.99])
    def test_tracks_numpy_percentile_uniform(self, q):
        rng = np.random.default_rng(0)
        data = rng.uniform(0, 100, size=5000)
        p = P2Quantile(q)
        for x in data:
            p.observe(float(x))
        exact = float(np.percentile(data, q * 100))
        # P² is an approximation; a few percent of the range is its promise
        assert abs(p.value - exact) < 5.0

    def test_tracks_numpy_percentile_lognormal(self):
        rng = np.random.default_rng(1)
        data = rng.lognormal(0.0, 1.0, size=5000)
        p = P2Quantile(0.5)
        for x in data:
            p.observe(float(x))
        exact = float(np.percentile(data, 50))
        assert abs(p.value - exact) < 0.2 * exact

    def test_empty_is_nan(self):
        assert np.isnan(P2Quantile(0.9).value)


class TestCounterGauge:
    def test_counter_accumulates(self):
        c = Counter("c_total")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter("c_total").inc(-1)

    def test_gauge_set_inc_dec(self):
        g = Gauge("g")
        g.set(10)
        g.inc(5)
        g.dec(2)
        assert g.value == 13

    def test_labeled_series_are_independent(self):
        c = Counter("req_total", labelnames=("solver",))
        c.labels(solver="a").inc(1)
        c.labels(solver="b").inc(2)
        assert c.labels(solver="a").value == 1
        assert c.labels(solver="b").value == 2

    def test_unknown_label_rejected(self):
        c = Counter("req_total", labelnames=("solver",))
        with pytest.raises(ValueError):
            c.labels(nope="x")


class TestHistogram:
    def test_count_sum_min_max(self):
        h = Histogram("h_seconds")
        for v in (0.1, 0.2, 0.4):
            h.observe(v)
        assert h.count == 3
        assert h.sum == pytest.approx(0.7)

    def test_percentile_close_to_exact(self):
        rng = np.random.default_rng(2)
        data = rng.uniform(0.001, 10.0, size=2000)
        h = Histogram("h_seconds")
        for v in data:
            h.observe(float(v))
        exact = float(np.percentile(data, 90))
        assert h.percentile(0.9) == pytest.approx(exact, rel=0.1)

    def test_observe_many_matches_scalar_loop(self):
        rng = np.random.default_rng(3)
        data = rng.uniform(0.01, 100.0, size=500)
        h1 = Histogram("a_seconds")
        h2 = Histogram("b_seconds")
        h1.observe_many(data)
        for v in data:
            h2.observe(float(v))
        s1 = h1.snapshot()["series"][0]
        s2 = h2.snapshot()["series"][0]
        assert s1["bucket_counts"] == s2["bucket_counts"]
        assert s1["count"] == s2["count"]
        assert s1["sum"] == pytest.approx(s2["sum"])

    def test_default_buckets_are_sorted_125(self):
        b = default_buckets()
        assert list(b) == sorted(b)
        assert 1.0 in b and 2.0 in b and 5.0 in b

    def test_merge_adds_buckets_exactly(self):
        h1 = Histogram("h_seconds")
        h2 = Histogram("h_seconds")
        h1.observe(0.5)
        h2.observe(1.5)
        h2.observe(3.0)
        reg1, reg2 = MetricsRegistry(), MetricsRegistry()
        reg1._metrics["h_seconds"] = h1
        reg2._metrics["h_seconds"] = h2
        reg1.merge(reg2)
        assert h1.count == 3
        assert h1.sum == pytest.approx(5.0)
        # percentile still answers (bucket interpolation after merge)
        assert 0.4 < h1.percentile(0.5) < 3.1


class TestRegistry:
    def test_get_or_create_returns_same_object(self):
        reg = MetricsRegistry()
        assert reg.counter("x_total") is reg.counter("x_total")

    def test_kind_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.counter("x_total")
        with pytest.raises(ValueError):
            reg.gauge("x_total")

    def test_labelnames_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.counter("x_total", labelnames=("a",))
        with pytest.raises(ValueError):
            reg.counter("x_total", labelnames=("b",))

    def test_snapshot_schema_and_roundtrip_merge(self):
        reg = MetricsRegistry()
        reg.counter("runs_total").inc(3)
        reg.gauge("width").set(7)
        reg.histogram("t_seconds").observe(0.25)
        snap = reg.snapshot()
        assert snap["schema"] == METRICS_SCHEMA

        other = MetricsRegistry()
        other.merge(snap)  # merge accepts a plain snapshot dict
        other.merge(snap)
        assert other.counter("runs_total").value == 6
        assert other.gauge("width").value == 7  # last write wins
        assert other.histogram("t_seconds").count == 2

    def test_use_registry_is_thread_local(self):
        outer = MetricsRegistry()
        seen = {}

        def child():
            # the override in the main thread must not leak here
            seen["child"] = get_registry()

        with use_registry(outer):
            assert get_registry() is outer
            t = threading.Thread(target=child)
            t.start()
            t.join()
        assert seen["child"] is default_registry()
        assert get_registry() is default_registry()


class TestSolverEmission:
    def test_sshopm_emits_run_metrics(self):
        from repro.core import sshopm
        from repro.symtensor import random_symmetric_tensor

        tensor = random_symmetric_tensor(3, 4, rng=0)
        with use_registry() as reg:
            sshopm(tensor, alpha=2.0, max_iters=100, rng=1)
        runs = reg.counter("repro_solver_runs_total", labelnames=("solver",))
        assert runs.labels(solver="sshopm").value == 1
        hist = reg.get("repro_solver_seconds")
        assert hist.labels(solver="sshopm").count == 1

    def test_multistart_counts_every_pair(self):
        from repro.core.multistart import multistart_sshopm
        from repro.symtensor.random import random_symmetric_batch

        batch = random_symmetric_batch(3, 3, 4, rng=2)
        with use_registry() as reg:
            multistart_sshopm(batch, num_starts=5, alpha=1.0, max_iters=60,
                              rng=3)
        pairs = reg.counter("repro_solver_pairs_total", labelnames=("solver",))
        assert pairs.labels(solver="multistart_sshopm").value == 15

    def test_observe_solver_run_iterations_array(self):
        with use_registry() as reg:
            observe_solver_run("x", 0.1, np.array([[3, 5], [7, 9]]), 4, 4)
        iters = reg.get("repro_solver_iterations")
        assert iters.labels(solver="x").count == 4

    def test_parallel_executor_merges_worker_registries(self):
        from repro.parallel import parallel_multistart_sshopm
        from repro.symtensor.random import random_symmetric_batch

        batch = random_symmetric_batch(6, 3, 4, rng=4)
        with use_registry() as reg:
            parallel_multistart_sshopm(batch, workers=3, num_starts=4,
                                       alpha=1.0, max_iters=40)
        runs = reg.counter("repro_solver_runs_total", labelnames=("solver",))
        pairs = reg.counter("repro_solver_pairs_total", labelnames=("solver",))
        assert runs.labels(solver="multistart_sshopm").value == 3  # one per chunk
        assert pairs.labels(solver="multistart_sshopm").value == 24
