"""Tests for index-class enumeration, ranking, and the precomputed tables
(Section III-A, Figure 4, Table I)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.symtensor.indexing import (
    canonical_index,
    class_lookup,
    index_classes,
    index_from_monomial,
    index_table,
    is_valid_index,
    iter_index_classes,
    iter_monomials,
    monomial_from_index,
    multiplicity_table,
    rank_index,
    sigma_table,
    unrank_index,
    update_index,
)
from repro.util.combinatorics import num_unique_entries

# Table I of the paper, verbatim: index classes of R^[3,4] in lex order.
TABLE_I_INDEX = [
    (1, 1, 1), (1, 1, 2), (1, 1, 3), (1, 1, 4), (1, 2, 2),
    (1, 2, 3), (1, 2, 4), (1, 3, 3), (1, 3, 4), (1, 4, 4),
    (2, 2, 2), (2, 2, 3), (2, 2, 4), (2, 3, 3), (2, 3, 4),
    (2, 4, 4), (3, 3, 3), (3, 3, 4), (3, 4, 4), (4, 4, 4),
]
TABLE_I_MONOMIAL = [
    (3, 0, 0, 0), (2, 1, 0, 0), (2, 0, 1, 0), (2, 0, 0, 1), (1, 2, 0, 0),
    (1, 1, 1, 0), (1, 1, 0, 1), (1, 0, 2, 0), (1, 0, 1, 1), (1, 0, 0, 2),
    (0, 3, 0, 0), (0, 2, 1, 0), (0, 2, 0, 1), (0, 1, 2, 0), (0, 1, 1, 1),
    (0, 1, 0, 2), (0, 0, 3, 0), (0, 0, 2, 1), (0, 0, 1, 2), (0, 0, 0, 3),
]


class TestTableI:
    def test_index_representations(self):
        assert index_classes(3, 4) == TABLE_I_INDEX

    def test_monomial_representations(self):
        assert list(iter_monomials(3, 4)) == TABLE_I_MONOMIAL

    def test_count(self):
        assert len(TABLE_I_INDEX) == num_unique_entries(3, 4) == 20


class TestUpdateIndex:
    def test_simple_increment(self):
        index = [1, 1, 1]
        assert update_index(index, 4)
        assert index == [1, 1, 2]

    def test_carry_example_from_paper(self):
        # "the successor of [2, 4, 4] is [3, 3, 3]"
        index = [2, 4, 4]
        assert update_index(index, 4)
        assert index == [3, 3, 3]

    def test_no_n_footnote_case(self):
        # footnote 2: no instances of n, successor increments last index
        index = [1, 2, 3]
        assert update_index(index, 4)
        assert index == [1, 2, 4]

    def test_last_class_returns_false(self):
        index = [4, 4, 4]
        assert not update_index(index, 4)
        assert index == [4, 4, 4]

    @given(st.integers(1, 6), st.integers(1, 5))
    def test_enumeration_is_complete_sorted_and_unique(self, m, n):
        classes = list(iter_index_classes(m, n))
        assert len(classes) == num_unique_entries(m, n)
        assert len(set(classes)) == len(classes)
        assert classes == sorted(classes)
        for c in classes:
            assert is_valid_index(c, n)

    def test_invalid_dims(self):
        with pytest.raises(ValueError):
            list(iter_index_classes(0, 3))


class TestMonomialConversion:
    @given(st.integers(1, 6), st.integers(1, 5))
    def test_round_trip(self, m, n):
        for index in iter_index_classes(m, n):
            mono = monomial_from_index(index, n)
            assert sum(mono) == m
            assert index_from_monomial(mono) == index

    def test_out_of_bounds_raises(self):
        with pytest.raises(ValueError):
            monomial_from_index((1, 5), 4)

    def test_negative_monomial_raises(self):
        with pytest.raises(ValueError):
            index_from_monomial((2, -1))

    def test_monomial_order_is_reverse_lex(self):
        """Paper: increasing index order == decreasing monomial order."""
        monos = list(iter_monomials(3, 4))
        assert monos == sorted(monos, reverse=True)


class TestRanking:
    @given(st.integers(1, 6), st.integers(1, 5))
    def test_rank_matches_enumeration(self, m, n):
        for r, index in enumerate(iter_index_classes(m, n)):
            assert rank_index(index, n) == r
            assert unrank_index(r, m, n) == index

    def test_rank_invalid_index_raises(self):
        with pytest.raises(ValueError):
            rank_index((2, 1), 3)  # not nondecreasing
        with pytest.raises(ValueError):
            rank_index((1, 4), 3)  # out of range

    def test_unrank_out_of_range_raises(self):
        with pytest.raises(ValueError):
            unrank_index(20, 3, 3)  # only 10 classes
        with pytest.raises(ValueError):
            unrank_index(-1, 3, 3)

    def test_canonical_index(self):
        assert canonical_index((3, 1, 2)) == (1, 2, 3)
        assert canonical_index((2, 2, 1)) == (1, 2, 2)


class TestPrecomputedTables:
    def test_index_table_is_zero_based(self, size):
        m, n = size
        tab = index_table(m, n)
        assert tab.shape == (num_unique_entries(m, n), m)
        assert tab.min() == 0 and tab.max() == n - 1

    def test_index_table_readonly(self):
        tab = index_table(3, 3)
        with pytest.raises(ValueError):
            tab[0, 0] = 7

    def test_multiplicity_table_sums_to_dense_count(self, size):
        m, n = size
        assert multiplicity_table(m, n).sum() == n**m

    def test_sigma_footnote3_identity(self, size):
        """Footnote 3: sigma(j) = C(m; k) * k_j / m."""
        m, n = size
        mult = multiplicity_table(m, n)
        sig = sigma_table(m, n)
        for u, index in enumerate(iter_index_classes(m, n)):
            mono = monomial_from_index(index, n)
            for j in range(n):
                expected = mult[u] * mono[j] // m
                assert sig[u, j] == expected
                if mono[j] == 0:
                    assert sig[u, j] == 0

    def test_sigma_rows_sum_to_multiplicity(self, size):
        m, n = size
        assert np.array_equal(sigma_table(m, n).sum(axis=1), multiplicity_table(m, n))

    def test_class_lookup_round_trip(self):
        lookup = class_lookup(4, 3)
        for u, index in enumerate(iter_index_classes(4, 3)):
            assert lookup[index] == u

    def test_paper_application_size(self):
        """m=4, n=3: 15 unique values (Section V-A)."""
        assert index_table(4, 3).shape == (15, 4)
