"""Odeco (orthogonally decomposable) tensors: exact ground truth for the
eigen-solvers.

For ``A = sum_i w_i u_i^{(x)m}`` with orthonormal ``u_i`` and distinct
positive weights, each ``(w_i, u_i)`` is an exact eigenpair, and for even
``m`` each is an attracting point of the (shifted) power iteration.  These
tests pin the whole solver stack against that analytic truth.
"""

import numpy as np
import pytest

from repro.core.eigenpairs import classify_eigenpair, eigen_residual
from repro.core.solve import find_eigenpairs
from repro.core.sshopm import sshopm, suggested_shift
from repro.kernels.compressed import ax_m1_compressed
from repro.symtensor.random import odeco_tensor, random_odeco_tensor


class TestConstruction:
    def test_rejects_nonorthonormal(self):
        basis = np.array([[1.0, 0.0, 0.0], [0.7, 0.7, 0.0]])
        with pytest.raises(ValueError):
            odeco_tensor(basis, np.ones(2), m=4)

    def test_components_are_exact_eigenpairs(self, rng):
        for m in (3, 4, 5):
            tensor, basis, weights = random_odeco_tensor(m, 4, rng=rng)
            for w, u in zip(weights, basis):
                assert np.allclose(ax_m1_compressed(tensor, u), w * u, atol=1e-10)
                assert eigen_residual(tensor, w, u) < 1e-10

    def test_rank_validation(self, rng):
        with pytest.raises(ValueError):
            random_odeco_tensor(4, 3, rank=5, rng=rng)
        with pytest.raises(ValueError):
            random_odeco_tensor(4, 3, rank=0, rng=rng)

    def test_weights_sorted_positive_distinct(self, rng):
        _, _, weights = random_odeco_tensor(4, 5, rng=rng)
        assert np.all(weights > 0)
        assert np.all(np.diff(weights) < 0)

    def test_rank_deficient(self, rng):
        tensor, basis, weights = random_odeco_tensor(4, 5, rank=2, rng=rng)
        assert basis.shape == (2, 5)
        # vectors orthogonal to the span are in the kernel of A x^{m-1}:
        # take a right singular vector beyond the rank
        _, _, vt = np.linalg.svd(basis)
        null_vec = vt[-1]
        assert np.allclose(basis @ null_vec, 0.0, atol=1e-10)
        assert np.allclose(ax_m1_compressed(tensor, null_vec), 0.0, atol=1e-10)


class TestSolverRecovery:
    def test_sshopm_converges_to_a_component(self, rng):
        tensor, basis, weights = random_odeco_tensor(4, 4, rng=rng)
        res = sshopm(tensor, alpha=suggested_shift(tensor), rng=rng,
                     tol=1e-14, max_iters=5000)
        assert res.converged
        errs = [abs(res.eigenvalue - w) for w in weights]
        i = int(np.argmin(errs))
        assert errs[i] < 1e-8
        assert abs(abs(res.eigenvector @ basis[i]) - 1.0) < 1e-6

    def test_multistart_recovers_all_components_even_order(self, rng):
        """Even order: every component is positive stable; enough starts
        reach all of them."""
        tensor, basis, weights = random_odeco_tensor(4, 3, rng=rng)
        pairs = find_eigenpairs(tensor, num_starts=256,
                                alpha=suggested_shift(tensor), rng=rng,
                                tol=1e-13, max_iters=5000)
        stable = [p for p in pairs if p.stability == "pos_stable"]
        assert len(stable) >= 3
        for w, u in zip(weights, basis):
            found = any(
                abs(p.eigenvalue - w) < 1e-6
                and abs(abs(p.eigenvector @ u)) > 1 - 1e-5
                for p in stable
            )
            assert found, (w, [p.eigenvalue for p in stable])

    def test_components_classified_stable(self, rng):
        tensor, basis, weights = random_odeco_tensor(4, 4, rng=rng)
        for w, u in zip(weights, basis):
            assert classify_eigenpair(tensor, w, u) == "pos_stable"

    def test_odd_order_components_recoverable(self, rng):
        tensor, basis, weights = random_odeco_tensor(3, 3, rng=rng)
        pairs = find_eigenpairs(tensor, num_starts=256,
                                alpha=suggested_shift(tensor), rng=rng,
                                tol=1e-13, max_iters=5000)
        lams = [p.eigenvalue for p in pairs]
        # principal component always reachable
        assert any(abs(l - weights[0]) < 1e-6 for l in lams)

    def test_adaptive_sshopm_on_odeco(self, rng):
        from repro.core.adaptive import adaptive_sshopm

        tensor, basis, weights = random_odeco_tensor(4, 4, rng=rng)
        res = adaptive_sshopm(tensor, rng=rng, tol=1e-14, max_iters=2000)
        assert res.converged
        assert min(abs(res.eigenvalue - w) for w in weights) < 1e-7

    def test_blocked_kernels_on_odeco(self, rng):
        """Cross-check: blocked kernels reproduce the exact eigen identity."""
        from repro.kernels.blocked import ax_m1_blocked

        tensor, basis, weights = random_odeco_tensor(4, 6, rng=rng)
        for w, u in zip(weights[:2], basis[:2]):
            assert np.allclose(ax_m1_blocked(tensor, u, block_size=3), w * u,
                               atol=1e-10)
