"""Tests for the ASCII plotting helpers."""

import numpy as np
import pytest

from repro.util.asciiplot import ascii_bars, ascii_plot


class TestAsciiPlot:
    def test_basic_plot_contains_markers(self):
        x = np.arange(1, 11)
        out = ascii_plot({"gpu": (x, x**2), "cpu": (x, x * 0 + 5.0)})
        assert "g" in out and "c" in out
        assert "g=gpu" in out and "c=cpu" in out

    def test_log_axes(self):
        x = np.geomspace(1, 1000, 10)
        out = ascii_plot({"s": (x, x)}, logx=True, logy=True)
        assert "1e+03" in out or "1000" in out

    def test_log_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            ascii_plot({"s": (np.array([0.0, 1.0]), np.array([1.0, 2.0]))}, logx=True)
        with pytest.raises(ValueError):
            ascii_plot({"s": (np.array([1.0, 2.0]), np.array([-1.0, 2.0]))}, logy=True)

    def test_empty_series_rejected(self):
        with pytest.raises(ValueError):
            ascii_plot({})
        with pytest.raises(ValueError):
            ascii_plot({"s": (np.array([]), np.array([]))})

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            ascii_plot({"s": (np.arange(3), np.arange(4))})

    def test_constant_series_no_crash(self):
        out = ascii_plot({"f": (np.arange(5), np.ones(5))})
        assert "f" in out

    def test_dimensions(self):
        out = ascii_plot({"a": (np.arange(4), np.arange(4))}, width=30, height=8)
        lines = out.splitlines()
        # height rows + axis + xlabels + legend
        assert len(lines) == 8 + 3
        assert all(len(l) <= 30 + 14 for l in lines[:8])


class TestAsciiBars:
    def test_bars_scale_to_max(self):
        out = ascii_bars(["a", "bb"], [1.0, 2.0], width=10)
        lines = out.splitlines()
        assert lines[0].count("#") == 5
        assert lines[1].count("#") == 10

    def test_unit_suffix(self):
        out = ascii_bars(["x"], [3.0], unit="x")
        assert "3x" in out

    def test_validation(self):
        with pytest.raises(ValueError):
            ascii_bars(["a"], [1.0, 2.0])
        with pytest.raises(ValueError):
            ascii_bars([], [])
        with pytest.raises(ValueError):
            ascii_bars(["a"], [0.0])
