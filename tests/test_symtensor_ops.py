"""Tests for compressed symmetric tensor algebra (inner products, symmetric
products, polynomial view, rank-1/rank-R approximation)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernels.compressed import ax_m_compressed
from repro.symtensor.ops import (
    best_rank_one,
    evaluate_polynomial,
    greedy_rank_r,
    inner_product,
    norm,
    polynomial_coefficients,
    symmetric_product,
)
from repro.symtensor.random import (
    random_odeco_tensor,
    random_symmetric_tensor,
    rank_one_tensor,
)
from repro.symtensor.storage import SymmetricTensor, symmetrize_dense
from repro.util.rng import random_unit_vector


class TestInnerProduct:
    def test_matches_dense(self, size, rng):
        m, n = size
        a = random_symmetric_tensor(m, n, rng=rng)
        b = random_symmetric_tensor(m, n, rng=rng)
        assert np.isclose(inner_product(a, b), np.sum(a.to_dense() * b.to_dense()))

    def test_norm_consistency(self, rng):
        a = random_symmetric_tensor(4, 3, rng=rng)
        assert np.isclose(norm(a) ** 2, inner_product(a, a))

    def test_bilinearity(self, rng):
        a = random_symmetric_tensor(3, 3, rng=rng)
        b = random_symmetric_tensor(3, 3, rng=rng)
        c = random_symmetric_tensor(3, 3, rng=rng)
        lhs = inner_product(a + 2.0 * b, c)
        rhs = inner_product(a, c) + 2.0 * inner_product(b, c)
        assert np.isclose(lhs, rhs)

    def test_shape_mismatch(self, rng):
        with pytest.raises(ValueError):
            inner_product(
                random_symmetric_tensor(3, 3, rng=rng),
                random_symmetric_tensor(3, 4, rng=rng),
            )

    def test_rank_one_inner_product_identity(self, rng):
        """<A, x^{(x)m}> = A x^m — the variational view behind rank-1
        approximation."""
        a = random_symmetric_tensor(4, 3, rng=rng)
        x = random_unit_vector(3, rng=rng)
        r1 = rank_one_tensor(x, 4)
        assert np.isclose(inner_product(a, r1), ax_m_compressed(a, x))


class TestSymmetricProduct:
    @pytest.mark.parametrize("ma,mb,n", [(1, 1, 3), (2, 1, 3), (2, 2, 2), (3, 2, 2), (1, 3, 2)])
    def test_matches_dense_symmetrization(self, ma, mb, n, rng):
        a = random_symmetric_tensor(ma, n, rng=rng)
        b = random_symmetric_tensor(mb, n, rng=rng)
        sp = symmetric_product(a, b)
        dense = symmetrize_dense(np.multiply.outer(a.to_dense(), b.to_dense()))
        assert sp.m == ma + mb
        assert np.allclose(sp.to_dense(), dense)

    def test_commutative(self, rng):
        a = random_symmetric_tensor(2, 3, rng=rng)
        b = random_symmetric_tensor(3, 3, rng=rng)
        assert symmetric_product(a, b).allclose(symmetric_product(b, a))

    def test_rank_one_products_compose(self, rng):
        """x^{(x)2} sym-times x^{(x)2} = x^{(x)4}."""
        x = random_unit_vector(3, rng=rng)
        sq = rank_one_tensor(x, 2)
        quad = symmetric_product(sq, sq)
        assert quad.allclose(rank_one_tensor(x, 4))

    def test_dimension_mismatch(self, rng):
        with pytest.raises(ValueError):
            symmetric_product(
                random_symmetric_tensor(2, 3, rng=rng),
                random_symmetric_tensor(2, 4, rng=rng),
            )


class TestPolynomialView:
    def test_round_trip_evaluation(self, size, rng):
        m, n = size
        t = random_symmetric_tensor(m, n, rng=rng)
        coeffs = polynomial_coefficients(t)
        x = rng.normal(size=n)
        assert np.isclose(evaluate_polynomial(coeffs, x), ax_m_compressed(t, x))

    def test_coefficient_count(self, rng):
        t = random_symmetric_tensor(4, 3, rng=rng)
        assert len(polynomial_coefficients(t)) == 15

    def test_bad_exponent_length(self):
        with pytest.raises(ValueError):
            evaluate_polynomial({(1, 2): 1.0}, np.zeros(3))


class TestRankOneApproximation:
    def test_exact_on_rank_one_input(self, rng):
        x = random_unit_vector(3, rng=rng)
        t = rank_one_tensor(x, 4, weight=2.5)
        approx = best_rank_one(t, rng=rng)
        assert abs(approx.weight - 2.5) < 1e-8
        assert abs(abs(approx.vector @ x) - 1) < 1e-6
        # lambda converges quadratically but the vector only to ~sqrt(tol)
        assert approx.relative_error < 1e-4

    def test_negative_weight_found(self, rng):
        """The dominant component may have negative lambda; the concave
        sweep must find it."""
        x = random_unit_vector(3, rng=rng)
        t = rank_one_tensor(x, 4, weight=-3.0)
        approx = best_rank_one(t, rng=rng)
        assert abs(approx.weight + 3.0) < 1e-7

    def test_error_identity(self, rng):
        """||A - lambda* x*^{(x)m}||^2 = ||A||^2 - lambda*^2 at an
        eigenpair."""
        t = random_symmetric_tensor(4, 3, rng=rng)
        approx = best_rank_one(t, rng=rng, num_starts=96)
        lhs = approx.residual_norm**2
        rhs = norm(t) ** 2 - approx.weight**2
        assert np.isclose(lhs, rhs, rtol=1e-6)

    def test_odeco_top_component(self, rng):
        tensor, basis, weights = random_odeco_tensor(4, 4, rng=rng)
        approx = best_rank_one(tensor, rng=rng)
        assert abs(approx.weight - weights[0]) < 1e-6
        assert abs(abs(approx.vector @ basis[0]) - 1) < 1e-5


class TestGreedyRankR:
    def test_recovers_odeco_decomposition(self, rng):
        tensor, basis, weights = random_odeco_tensor(4, 3, rng=rng)
        terms, residual = greedy_rank_r(tensor, 3, rng=rng)
        assert residual.frobenius_norm() < 1e-5
        recovered = sorted((t.weight for t in terms), reverse=True)
        assert np.allclose(recovered, weights, atol=1e-5)

    def test_residual_norm_monotone(self, rng):
        t = random_symmetric_tensor(4, 3, rng=rng)
        norms = [norm(t)]
        residual = t
        for _ in range(3):
            terms, residual = greedy_rank_r(residual, 1, rng=rng)
            norms.append(residual.frobenius_norm())
        assert all(b <= a + 1e-12 for a, b in zip(norms, norms[1:]))

    def test_rank_validation(self, rng):
        with pytest.raises(ValueError):
            greedy_rank_r(random_symmetric_tensor(4, 3, rng=rng), 0)

    def test_stops_early_on_exact_fit(self, rng):
        x = random_unit_vector(3, rng=rng)
        t = rank_one_tensor(x, 4, weight=1.0)
        terms, residual = greedy_rank_r(t, 5, stop_tol=1e-4, rng=rng)
        assert len(terms) <= 2  # rank-1 input: at most one real term + dust
        assert residual.frobenius_norm() < 1e-4
