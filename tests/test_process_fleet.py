"""Tests for the zero-copy process fleet: the shared-memory tensor
store, the communication cost model behind ``executor="auto"``, the
externally-owned ``FleetWorkspace``, and the process executor's
bit-for-bit / no-leak / O(result)-IPC guarantees."""

import pickle
import warnings

import numpy as np
import pytest

import repro
from repro.core.config import SolveConfig
from repro.core.multistart import starting_vectors
from repro.engine.fleet import FleetWorkspace, fleet_solve
from repro.instrument.metrics import use_registry
from repro.parallel.comm import (
    EXECUTORS,
    choose_executor,
    estimate_fleet_comm,
)
from repro.parallel.fleet import STEAL_SPLIT_FACTOR, parallel_fleet_solve
from repro.parallel.shm import (
    SHM_AVAILABLE,
    SharedResultBlock,
    SharedTensorStore,
    active_segments,
)
from repro.symtensor.random import random_symmetric_batch

pytestmark = pytest.mark.skipif(
    not SHM_AVAILABLE, reason="multiprocessing.shared_memory unavailable")


@pytest.fixture
def batch():
    return random_symmetric_batch(8, 4, 3, rng=np.random.default_rng(11))


@pytest.fixture
def starts():
    return starting_vectors(6, 3, rng=5)


def _series_total(reg, name):
    for m in reg.snapshot()["metrics"]:
        if m["name"] == name:
            return sum(s.get("value", 0.0) for s in m["series"])
    return 0.0


def assert_bitwise(a, b):
    np.testing.assert_array_equal(a.eigenvalues, b.eigenvalues)
    np.testing.assert_array_equal(a.eigenvectors, b.eigenvectors)
    np.testing.assert_array_equal(a.converged, b.converged)
    np.testing.assert_array_equal(a.iterations, b.iterations)
    np.testing.assert_array_equal(a.failed, b.failed)


class TestSharedTensorStore:
    def test_publish_attach_roundtrip(self, batch, starts):
        store = SharedTensorStore.publish(batch, starts)
        try:
            attached = store.handle().attach()
            np.testing.assert_array_equal(attached.values, batch.values)
            np.testing.assert_array_equal(attached.starts, starts)
            assert (attached.m, attached.n) == (batch.m, batch.n)
            attached.dispose()
        finally:
            store.dispose()
        assert active_segments() == []

    def test_batch_view_is_zero_copy(self, batch, starts):
        with SharedTensorStore.publish(batch, starts) as store:
            shard = store.batch(2, 5)
            assert len(shard) == 3
            assert np.shares_memory(shard.values, store.values)
            np.testing.assert_array_equal(shard.values, batch.values[2:5])

    def test_attached_views_are_readonly(self, batch, starts):
        store = SharedTensorStore.publish(batch, starts)
        try:
            attached = store.handle().attach()
            with pytest.raises((ValueError, RuntimeError)):
                attached.values[0, 0] = 1.0
            attached.dispose()
        finally:
            store.dispose()

    def test_kernel_tables_roundtrip(self, batch, starts):
        from repro.kernels.plan import get_plan
        from repro.kernels.tables import tables_to_arrays

        plan = get_plan(batch.m, batch.n, "vectorized", "numpy")
        with SharedTensorStore.publish(batch, starts,
                                       tables=plan.tables) as store:
            rebuilt = store.kernel_tables()
            assert rebuilt is not None
            orig = tables_to_arrays(plan.tables)
            back = tables_to_arrays(rebuilt)
            assert orig.keys() == back.keys()
            for key in orig:
                np.testing.assert_array_equal(orig[key], back[key])
        assert active_segments() == []

    def test_handle_is_small(self, batch, starts):
        """The entire per-worker tensor payload is the pickled handle —
        descriptors, not data."""
        with SharedTensorStore.publish(batch, starts) as store:
            nbytes = len(pickle.dumps(store.handle()))
            assert nbytes < 4096
            assert nbytes < batch.values.nbytes

    def test_dispose_is_idempotent(self, batch, starts):
        store = SharedTensorStore.publish(batch, starts)
        store.dispose()
        store.dispose()
        assert active_segments() == []

    def test_segment_names_have_no_colon(self, batch, starts):
        """Colons corrupt the resource tracker's ``CMD:name:rtype`` pipe
        protocol, so table tags must be sanitized out of segment names."""
        with SharedTensorStore.publish(batch, starts) as store:
            for seg in store._segments.values():
                assert ":" not in seg.name


class TestSharedResultBlock:
    def test_allocate_prefills_unsolved(self):
        with SharedResultBlock.allocate(4, 3, 5) as block:
            assert np.isnan(block.arrays["eigenvalues"]).all()
            assert not block.arrays["converged"].any()
            assert not block.arrays["failed"].any()

    def test_workspace_writes_land_in_snapshot(self):
        block = SharedResultBlock.allocate(4, 3, 5)
        try:
            ws = block.workspace(1, 3)
            ws.eigenvalues[...] = 7.0
            ws.converged[...] = True
            snap = block.snapshot()
        finally:
            block.dispose()
        assert (snap["eigenvalues"][1:3] == 7.0).all()
        assert snap["converged"][1:3].all()
        assert np.isnan(snap["eigenvalues"][0]).all()
        assert np.isnan(snap["eigenvalues"][3]).all()
        assert active_segments() == []


class TestFleetWorkspace:
    def test_out_param_is_bitwise_equivalent(self, batch, starts):
        base = fleet_solve(batch, starts=starts, alpha=4.0, max_iters=200)
        ws = FleetWorkspace.allocate(len(batch), starts.shape[0], batch.n,
                                     np.float64)
        res = fleet_solve(batch, starts=starts, alpha=4.0, max_iters=200,
                          out=ws)
        assert_bitwise(base, res)
        # the result really is a view over the caller's workspace
        assert np.shares_memory(res.eigenvalues, ws.eigenvalues)

    def test_lane_views_validate_layout(self):
        ws = FleetWorkspace.allocate(3, 2, 4, np.float64)
        with pytest.raises(ValueError):
            ws.lane_views(3, 2, 5, np.float64)  # wrong n
        with pytest.raises(ValueError):
            ws.lane_views(4, 2, 4, np.float64)  # wrong T


class TestCommModel:
    def _estimate(self, workers=4):
        return estimate_fleet_comm(64, 126, 32, 6, workers, m=4)

    def test_thread_tier_moves_no_bytes(self):
        est = self._estimate()
        assert est.pipe_bytes("thread") == 0

    def test_shm_pipe_traffic_excludes_tensor_payload(self):
        est = self._estimate()
        assert est.shm_pipe_bytes < est.tensor_bytes
        assert est.pipe_bytes("process") < est.pipe_bytes("pickle")

    def test_intensity_positive_and_finite(self):
        est = self._estimate()
        for tier in ("process", "pickle"):
            assert np.isfinite(est.intensity(tier)) and est.intensity(tier) > 0

    def test_single_worker_chooses_thread(self):
        choice = choose_executor(self._estimate(workers=1), cpu_count=8)
        assert choice.executor == "thread"

    def test_single_core_chooses_thread(self):
        choice = choose_executor(self._estimate(), cpu_count=1)
        assert choice.executor == "thread"

    def test_large_compute_on_many_cores_chooses_process(self):
        est = estimate_fleet_comm(512, 5000, 64, 10, 8, m=4, sweeps=200)
        choice = choose_executor(est, cpu_count=8)
        assert choice.executor == "process"
        assert choice.process_seconds < choice.thread_seconds

    def test_choice_carries_reason(self):
        choice = choose_executor(self._estimate(), cpu_count=4)
        assert choice.executor in ("thread", "process")
        assert choice.reason


class TestProcessExecutor:
    def test_bitwise_identical_to_single_worker(self, batch, starts):
        one = parallel_fleet_solve(batch, workers=1, starts=starts,
                                   alpha=4.0, max_iters=200)
        proc = parallel_fleet_solve(batch, workers=2, starts=starts,
                                    alpha=4.0, max_iters=200,
                                    executor="process")
        assert_bitwise(one.result, proc.result)
        assert proc.executor == "process"
        assert proc.workers == 2
        assert active_segments() == []

    def test_steal_oversplits_and_stays_bitwise(self, batch, starts):
        one = parallel_fleet_solve(batch, workers=1, starts=starts,
                                   alpha=4.0, max_iters=200)
        proc = parallel_fleet_solve(batch, workers=2, starts=starts,
                                    alpha=4.0, max_iters=200,
                                    executor="process", steal=True)
        assert_bitwise(one.result, proc.result)
        assert len(proc.shard_sizes) == min(len(batch),
                                            2 * STEAL_SPLIT_FACTOR)
        assert sum(proc.shard_sizes) == len(batch)
        assert active_segments() == []

    def test_auto_executor_resolves_and_runs(self, batch, starts):
        rep = parallel_fleet_solve(batch, workers=2, starts=starts,
                                   alpha=4.0, max_iters=100,
                                   executor="auto")
        assert rep.executor in ("thread", "process")
        assert rep.executor in EXECUTORS

    def test_invalid_executor_rejected(self, batch):
        with pytest.raises(ValueError, match="executor"):
            parallel_fleet_solve(batch, workers=2, num_starts=4, rng=0,
                                 executor="mpi")

    def test_workers_clamped_with_warning(self, starts):
        small = random_symmetric_batch(2, 4, 3, rng=np.random.default_rng(3))
        with pytest.warns(RuntimeWarning, match="clamping"):
            rep = parallel_fleet_solve(small, workers=8, starts=starts,
                                       alpha=4.0, max_iters=100)
        assert rep.workers <= 2
        assert sum(rep.shard_sizes) == 2

    def test_config_executor_field_routes(self, batch, starts):
        cfg = SolveConfig(executor="process")
        rep = parallel_fleet_solve(batch, workers=2, starts=starts,
                                   alpha=4.0, max_iters=100, config=cfg)
        assert rep.executor == "process"

    def test_report_shard_metadata(self, batch, starts):
        rep = parallel_fleet_solve(batch, workers=2, starts=starts,
                                   alpha=4.0, max_iters=100,
                                   executor="process")
        assert len(rep.shard_seconds) == len(rep.shard_sizes)
        assert all(s >= 0 for s in rep.shard_seconds)
        assert np.isfinite(rep.imbalance()) and rep.imbalance() >= 1.0
        assert rep.requeues == 0 and rep.failed_shards == []

    def test_single_worker_report_has_shard_seconds(self, batch, starts):
        rep = parallel_fleet_solve(batch, workers=1, starts=starts,
                                   alpha=4.0, max_iters=100)
        assert len(rep.shard_seconds) == 1
        assert rep.shard_seconds[0] > 0
        assert rep.imbalance() == 1.0

    def test_ipc_payload_is_o_result_not_o_tensor(self, batch, starts):
        """Per-shard pipe traffic is descriptors + float metadata; the
        tensor payload travels once, through shared memory."""
        with use_registry() as reg:
            parallel_fleet_solve(batch, workers=2, starts=starts,
                                 alpha=4.0, max_iters=200,
                                 executor="process")
        published = _series_total(reg, "repro_shm_bytes_published_total")
        descriptor = _series_total(
            reg, "repro_fleet_ipc_payload_bytes_total")
        assert published >= batch.values.nbytes
        assert 0 < descriptor < batch.values.nbytes
        assert descriptor < 0.05 * published

    def test_publish_unlink_balance(self, batch, starts):
        with use_registry() as reg:
            parallel_fleet_solve(batch, workers=2, starts=starts,
                                 alpha=4.0, max_iters=100,
                                 executor="process")
        assert (_series_total(reg, "repro_shm_segments_total")
                == _series_total(reg, "repro_shm_segments_unlinked_total"))


class TestFacadeIntegration:
    def test_solve_process_executor_bitwise(self, batch, starts):
        one = repro.solve(batch, starts=starts, alpha=4.0, max_iters=200,
                          workers=1)
        proc = repro.solve(batch, starts=starts, alpha=4.0, max_iters=200,
                           workers=2, executor="process")
        assert proc.solver == "parallel_fleet_solve"
        assert proc.extra.executor == "process"
        assert_bitwise(one.result, proc.result)
        assert active_segments() == []

    def test_single_worker_ignores_executor_option(self, batch, starts):
        rep = repro.solve(batch, starts=starts, alpha=4.0, max_iters=100,
                          workers=1, executor="process")
        assert rep.solver == "fleet_solve"


class TestCrossProcessTracing:
    """Trace propagation through the process tier: each worker records
    into its own recorder, the span tree rides the exit message, and the
    parent stitches one tree under ``parallel_fleet_solve``."""

    def test_process_trace_stitches_every_worker(self, batch, starts):
        from repro.instrument import recording

        with recording() as rec:
            rep = parallel_fleet_solve(batch, starts=starts, alpha=4.0,
                                       max_iters=200, workers=2,
                                       executor="process")
        assert rep.workers_traced == rep.workers == 2
        root = rec.find("parallel_fleet_solve")
        assert root is not None
        subtrees = {name: c for name, c in root.children.items()
                    if name.startswith("worker")}
        assert set(subtrees) == {"worker0", "worker1"}
        # every worker contributes at least one real span (plan_warm is
        # recorded even by a worker that wins no shards)
        for sub in subtrees.values():
            assert len(sub.children) >= 1

    def test_untraced_run_reports_zero_workers_traced(self, batch, starts):
        rep = parallel_fleet_solve(batch, starts=starts, alpha=4.0,
                                   max_iters=100, workers=2,
                                   executor="process")
        assert rep.workers_traced == 0

    def test_thread_tier_also_counts_traced_workers(self, batch, starts):
        from repro.instrument import recording

        with recording() as rec:
            rep = parallel_fleet_solve(batch, starts=starts, alpha=4.0,
                                       max_iters=100, workers=2,
                                       executor="thread")
        assert rep.workers_traced == 2
        assert rec.find("parallel_fleet_solve/worker0") is not None
        assert rec.find("parallel_fleet_solve/worker1") is not None

    def test_corrupt_span_payload_warns_once_and_skips(self):
        from repro.instrument import Recorder
        from repro.parallel.fleet import _stitch_worker_traces

        donor = Recorder()
        with donor.activate(), donor.span("work"):
            pass
        parent = Recorder()
        traces = {0: donor.to_dict(), 1: {"schema": "bogus"}, 2: None,
                  3: {"schema": "bogus"}}
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            stitched = _stitch_worker_traces(parent, traces, stacklevel=2)
        assert stitched == 1
        assert parent.find("worker0/work") is not None
        # one warning total, however many workers sent garbage
        runtime = [w for w in caught
                   if issubclass(w.category, RuntimeWarning)]
        assert len(runtime) == 1
        assert "discarding" in str(runtime[0].message)
