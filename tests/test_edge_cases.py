"""Systematic edge cases across the library: extreme shapes, degenerate
values, dtype handling, and numerical corners."""

import numpy as np
import pytest

from repro.core.multistart import multistart_sshopm
from repro.core.sshopm import sshopm, suggested_shift
from repro.kernels.batched import ax_m1_batched, ax_m_batched
from repro.kernels.compressed import ax_m1_compressed, ax_m_compressed
from repro.kernels.reference import ax_m1_dense, ax_m_dense
from repro.kernels.tables import kernel_tables
from repro.symtensor.indexing import index_classes
from repro.symtensor.random import random_symmetric_tensor
from repro.symtensor.storage import SymmetricTensor


class TestDimensionOne:
    """n = 1: tensors are scalars; everything must still work."""

    def test_storage(self):
        t = SymmetricTensor(np.array([2.5]), 4, 1)
        assert t.num_unique == 1
        assert t.to_dense().shape == (1, 1, 1, 1)
        assert t[(0, 0, 0, 0)] == 2.5

    def test_kernels(self):
        t = SymmetricTensor(np.array([2.0]), 3, 1)
        x = np.array([1.5])
        assert np.isclose(ax_m_compressed(t, x), 2.0 * 1.5**3)
        assert np.allclose(ax_m1_compressed(t, x), [2.0 * 1.5**2])
        tab = kernel_tables(3, 1)
        assert np.isclose(ax_m_batched(t.values, x, tables=tab), 2.0 * 1.5**3)

    def test_sshopm(self):
        t = SymmetricTensor(np.array([3.0]), 4, 1)
        res = sshopm(t, x0=np.array([1.0]), alpha=1.0, tol=1e-12)
        assert res.converged
        assert np.isclose(abs(res.eigenvalue), 3.0)

    def test_index_classes(self):
        assert index_classes(5, 1) == [(1, 1, 1, 1, 1)]


class TestHighOrder:
    """Orders beyond the application size."""

    def test_order_eight(self, rng):
        t = random_symmetric_tensor(8, 2, rng=rng)
        x = rng.normal(size=2)
        dense = t.to_dense()
        assert np.isclose(ax_m_compressed(t, x), ax_m_dense(dense, x))
        assert np.allclose(ax_m1_compressed(t, x), ax_m1_dense(dense, x))

    def test_order_two_everything(self, rng):
        """m=2 (plain matrices) through every code path."""
        t = random_symmetric_tensor(2, 4, rng=rng)
        dense = t.to_dense()
        x = rng.normal(size=4)
        from repro.kernels.dispatch import available_variants, get_kernels

        for name in available_variants():
            pair = get_kernels(name, 2, 4)
            assert np.isclose(pair.ax_m(t, x), x @ dense @ x), name
            assert np.allclose(pair.ax_m1(t, x), dense @ x), name


class TestExtremeValues:
    def test_tiny_entries(self, rng):
        t = random_symmetric_tensor(4, 3, rng=rng, scale=1e-150)
        x = rng.normal(size=3)
        y = ax_m_compressed(t, x)
        assert np.isfinite(y)
        assert np.isclose(y, ax_m_dense(t.to_dense(), x))

    def test_large_entries(self, rng):
        t = random_symmetric_tensor(4, 3, rng=rng, scale=1e100)
        x = rng.normal(size=3)
        assert np.isfinite(ax_m_compressed(t, x))

    def test_suggested_shift_of_zero_tensor(self):
        t = SymmetricTensor.zeros(4, 3)
        assert suggested_shift(t) == 0.0

    def test_sshopm_huge_shift_still_converges(self, rng):
        """alpha >> ||A||: the iteration contracts extremely slowly but
        stays numerically sane and the iterates remain unit norm."""
        t = random_symmetric_tensor(4, 3, rng=rng)
        res = sshopm(t, alpha=1e8, rng=rng, tol=0.0, max_iters=50)
        assert np.isclose(np.linalg.norm(res.eigenvector), 1.0)
        assert np.isfinite(res.eigenvalue)

    def test_nan_tensor_terminates(self):
        t = SymmetricTensor(np.full(15, np.nan), 4, 3)
        res = sshopm(t, alpha=0.0, rng=0, max_iters=20)
        assert not res.converged

    def test_multistart_with_nan_lane_does_not_poison_others(self, rng):
        from repro.symtensor.storage import SymmetricTensorBatch

        good = random_symmetric_tensor(4, 3, rng=rng)
        bad = SymmetricTensor(np.full(15, np.nan), 4, 3)
        batch = SymmetricTensorBatch.from_tensors([good, bad])
        res = multistart_sshopm(batch, num_starts=8, alpha=suggested_shift(good),
                                rng=1, tol=1e-10, max_iters=2000)
        assert res.converged[0].all()
        assert not res.converged[1].any()


class TestDtypes:
    def test_float32_compressed_kernel(self, rng):
        t = random_symmetric_tensor(4, 3, rng=rng).astype(np.float32)
        x = rng.normal(size=3).astype(np.float32)
        y64 = ax_m_compressed(t.astype(np.float64), x.astype(np.float64))
        assert np.isclose(ax_m_compressed(t, x), y64, rtol=1e-4)

    def test_batched_preserves_float32(self, rng):
        t = random_symmetric_tensor(4, 3, rng=rng).astype(np.float32)
        x = rng.normal(size=3).astype(np.float32)
        assert ax_m1_batched(t.values, x).dtype == np.float32

    def test_mixed_dtypes_promote(self, rng):
        t = random_symmetric_tensor(4, 3, rng=rng).astype(np.float32)
        x = rng.normal(size=3)  # float64
        v = ax_m1_batched(t.values, x)
        assert v.dtype == np.float64


class TestDegenerateSpectra:
    def test_repeated_eigenvalues_matrix(self):
        """m=2 with a repeated top eigenvalue: SS-HOPM converges to *some*
        vector in the top eigenspace."""
        dense = np.diag([2.0, 2.0, 1.0])
        t = SymmetricTensor.from_dense(dense)
        res = sshopm(t, alpha=suggested_shift(t), rng=3, tol=1e-13, max_iters=4000)
        assert res.converged
        assert np.isclose(res.eigenvalue, 2.0, atol=1e-8)
        assert abs(res.eigenvector[2]) < 1e-4

    def test_sign_symmetric_tensor(self, rng):
        """Odd-order tensor: lambda and -lambda spectra mirror; dedupe
        canonicalizes to lambda >= 0."""
        from repro.core.solve import find_eigenpairs

        t = random_symmetric_tensor(3, 3, rng=rng)
        pairs = find_eigenpairs(t, num_starts=64, alpha=suggested_shift(t),
                                rng=4, max_iters=4000)
        assert all(p.eigenvalue >= -1e-12 for p in pairs)
