"""Tests for gradient schemes and the symmetric tensor least-squares fit."""

import numpy as np
import pytest

from repro.kernels.compressed import ax_m_compressed
from repro.mri.fit import adc_profile, design_matrix, fit_symmetric_batch, fit_symmetric_tensor
from repro.mri.gradients import electrostatic_directions, gradient_directions, min_directions
from repro.symtensor.random import random_symmetric_batch, random_symmetric_tensor


class TestGradients:
    def test_unit_norms_all_schemes(self):
        for scheme in ("electrostatic", "fibonacci", "random"):
            g = gradient_directions(20, scheme=scheme, rng=0)
            assert g.shape == (20, 3)
            assert np.allclose(np.linalg.norm(g, axis=1), 1.0, atol=1e-9)

    def test_unknown_scheme(self):
        with pytest.raises(ValueError):
            gradient_directions(20, scheme="sunflower")

    def test_electrostatic_projective_separation(self):
        """Directions must be well spread modulo antipodal symmetry."""
        for count, min_deg in [(15, 25.0), (32, 15.0)]:
            g = electrostatic_directions(count, iterations=200)
            dots = np.abs(g @ g.T)
            np.fill_diagonal(dots, 0.0)
            worst = np.degrees(np.arccos(np.clip(dots.max(), -1, 1)))
            assert worst > min_deg, (count, worst)

    def test_electrostatic_deterministic(self):
        a = electrostatic_directions(16, iterations=50, rng=3)
        b = electrostatic_directions(16, iterations=50, rng=3)
        assert np.array_equal(a, b)

    def test_electrostatic_count_validation(self):
        with pytest.raises(ValueError):
            electrostatic_directions(0)

    def test_min_directions_matches_paper(self):
        """Section IV: m = 4, 6, 8 need at least 15, 28, 45 measurements."""
        assert min_directions(4) == 15
        assert min_directions(6) == 28
        assert min_directions(8) == 45


class TestDesignMatrix:
    def test_rows_evaluate_the_form(self, rng):
        """M @ values == A g^m for every gradient row."""
        tensor = random_symmetric_tensor(4, 3, rng=rng)
        g = gradient_directions(20, rng=rng)
        M = design_matrix(g, 4)
        predicted = M @ tensor.values
        for i in range(20):
            assert np.isclose(predicted[i], ax_m_compressed(tensor, g[i]))

    def test_shape_validation(self, rng):
        with pytest.raises(ValueError):
            design_matrix(rng.normal(size=(10, 2)), 4)

    def test_full_column_rank_with_enough_directions(self):
        g = gradient_directions(20, rng=0)
        M = design_matrix(g, 4)
        assert np.linalg.matrix_rank(M) == 15


class TestFit:
    def test_exact_recovery_noiseless(self, rng):
        """Sampling A g^m at >= U well-spread directions determines A."""
        for m in (2, 4, 6):
            tensor = random_symmetric_tensor(m, 3, rng=rng)
            g = gradient_directions(min_directions(m) + 10, rng=rng)
            samples = np.array([ax_m_compressed(tensor, gi) for gi in g])
            fitted = fit_symmetric_tensor(g, samples, m=m)
            assert np.allclose(fitted.values, tensor.values, atol=1e-8), m

    def test_exact_recovery_at_minimum_count(self, rng):
        """The paper's '15 measurements for m=4' is tight: U directions in
        general position already determine the tensor."""
        tensor = random_symmetric_tensor(4, 3, rng=rng)
        g = gradient_directions(15, rng=rng)
        samples = np.array([ax_m_compressed(tensor, gi) for gi in g])
        fitted = fit_symmetric_tensor(g, samples, m=4)
        assert np.allclose(fitted.values, tensor.values, atol=1e-6)

    def test_underdetermined_raises(self, rng):
        g = gradient_directions(10, rng=rng)
        with pytest.raises(ValueError):
            fit_symmetric_tensor(g, np.zeros(10), m=4)
        with pytest.raises(ValueError):
            fit_symmetric_batch(g, np.zeros((3, 10)), m=4)

    def test_wrong_sample_count_raises(self, rng):
        g = gradient_directions(20, rng=rng)
        with pytest.raises(ValueError):
            fit_symmetric_tensor(g, np.zeros(19), m=4)
        with pytest.raises(ValueError):
            fit_symmetric_batch(g, np.zeros((3, 19)), m=4)

    def test_batch_fit_matches_individual(self, rng):
        batch = random_symmetric_batch(5, 4, 3, rng=rng)
        g = gradient_directions(24, rng=rng)
        adc = adc_profile(batch, g)
        fitted = fit_symmetric_batch(g, adc, m=4)
        for t in range(5):
            single = fit_symmetric_tensor(g, adc[t], m=4)
            assert np.allclose(fitted[t].values, single.values, atol=1e-8)
            assert np.allclose(fitted[t].values, batch[t].values, atol=1e-8)

    def test_adc_profile_shapes(self, rng):
        tensor = random_symmetric_tensor(4, 3, rng=rng)
        batch = random_symmetric_batch(3, 4, 3, rng=rng)
        g = gradient_directions(17, rng=rng)
        assert adc_profile(tensor, g).shape == (17,)
        assert adc_profile(batch, g).shape == (3, 17)

    def test_noise_robustness(self, rng):
        """Moderate noise with plenty of measurements perturbs the fit only
        moderately (least-squares averaging)."""
        tensor = random_symmetric_tensor(4, 3, rng=rng)
        g = gradient_directions(64, rng=rng)
        clean = adc_profile(tensor, g)
        noisy = clean + rng.normal(0, 0.01 * np.abs(clean).mean(), size=clean.shape)
        fitted = fit_symmetric_tensor(g, noisy, m=4)
        rel = np.linalg.norm(fitted.values - tensor.values) / np.linalg.norm(tensor.values)
        assert rel < 0.05
