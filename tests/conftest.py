"""Shared fixtures and hypothesis configuration for the test suite."""

import numpy as np
import pytest
from hypothesis import HealthCheck, settings

# CI-friendly hypothesis defaults: modest example counts, no deadline (the
# kernels under test intentionally include slow spec-faithful loops).
settings.register_profile(
    "repro",
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")

# (m, n) sizes exercised by cross-variant agreement tests: matrix case,
# odd/even orders, n < m and n > m, and the paper's application size (4, 3).
SMALL_SIZES = [(2, 2), (2, 5), (3, 2), (3, 3), (3, 4), (4, 3), (4, 5), (5, 2), (5, 3), (6, 2)]


@pytest.fixture(scope="session")
def _plan_cache_root(tmp_path_factory):
    return tmp_path_factory.mktemp("plan-cache")


@pytest.fixture(autouse=True)
def _hermetic_plan_cache(_plan_cache_root, monkeypatch):
    """Keep the persistent kernel-plan cache out of ``~/.cache`` during
    tests: entries land in a session tmpdir (still exercising the disk
    path), and tests needing full isolation override the env again."""
    monkeypatch.setenv("REPRO_PLAN_CACHE_DIR", str(_plan_cache_root))


@pytest.fixture
def rng():
    return np.random.default_rng(20110516)  # IPDPS 2011 conference date


@pytest.fixture(params=SMALL_SIZES, ids=lambda p: f"m{p[0]}n{p[1]}")
def size(request):
    return request.param
