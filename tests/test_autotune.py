"""Tests for empirical kernel selection."""

import numpy as np
import pytest

from repro.kernels.autotune import auto_kernels, autotune
from repro.kernels.compressed import ax_m1_compressed, ax_m_compressed
from repro.kernels.dispatch import get_kernels
from repro.symtensor.random import random_symmetric_tensor


class TestAutotune:
    def test_report_structure(self):
        rep = autotune(4, 3, reps=5)
        assert rep.best in rep.timings
        assert all(t > 0 for t in rep.timings.values())
        assert rep.timings[rep.best] == min(rep.timings.values())
        assert {"precomputed", "vectorized", "blocked"} <= set(rep.timings)

    def test_cached(self):
        assert autotune(4, 3, reps=5) is autotune(4, 3, reps=5)

    def test_speedup_over(self):
        rep = autotune(4, 3, reps=5)
        assert rep.speedup_over(rep.best) == 1.0
        for name in rep.timings:
            assert rep.speedup_over(name) >= 1.0
        with pytest.raises(KeyError):
            rep.speedup_over("nonexistent")

    def test_huge_dimension_skips_unrollable(self):
        """Past the unroll guard (U > 4000) the tuner still returns a
        winner from the remaining candidates."""
        rep = autotune(5, 16, reps=1)  # U = C(20,5) = 15504
        assert "unrolled" not in rep.timings
        assert rep.best in ("blocked", "vectorized", "precomputed")

    def test_interpreted_loop_never_wins_at_large_n(self):
        """The vectorized/blocked paths dominate the per-entry loop once
        the tensor is big."""
        rep = autotune(4, 16, reps=3)
        assert rep.best in ("blocked", "vectorized")
        assert rep.speedup_over("precomputed") > 1.5


class TestAutoVariant:
    def test_auto_pair_is_correct(self, rng):
        tensor = random_symmetric_tensor(4, 3, rng=rng)
        x = rng.normal(size=3)
        pair = get_kernels("auto", 4, 3)
        assert np.isclose(pair.ax_m(tensor, x), ax_m_compressed(tensor, x))
        assert np.allclose(pair.ax_m1(tensor, x), ax_m1_compressed(tensor, x))

    def test_auto_requires_shape(self):
        with pytest.raises(ValueError):
            get_kernels("auto")

    def test_auto_kernels_helper(self, rng):
        pair = auto_kernels(4, 3)
        tensor = random_symmetric_tensor(4, 3, rng=rng)
        x = rng.normal(size=3)
        assert np.isclose(pair.ax_m(tensor, x), ax_m_compressed(tensor, x))

    def test_sshopm_with_auto(self, rng):
        from repro.core.sshopm import sshopm, suggested_shift

        tensor = random_symmetric_tensor(4, 3, rng=rng)
        res = sshopm(tensor, alpha=suggested_shift(tensor), kernels="auto",
                     rng=1, tol=1e-12, max_iters=2000)
        assert res.converged
        # |dlambda| < 1e-12 with a large shift bounds the residual loosely
        assert res.residual < 1e-4
