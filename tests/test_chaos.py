"""Fault-injection (chaos) suite — the resilience layer's acceptance gate.

Run via ``make chaos`` (tier-1 includes it).  Every fault is scheduled
deterministically by :class:`~repro.resilience.faults.FaultPlan` under a
pinned seed (``REPRO_CHAOS_SEED``, default 20110516), so a failure here
reproduces exactly.

The headline scenario: a 64-start sweep with injected NaN kernels, a
killed worker, and one corrupted start must still return every
recoverable eigenpair, report the failed start, and — interrupted and
resumed from its checkpoint — match the uninterrupted run bit-for-bit.
"""

import json
import os
import pathlib
import warnings

import numpy as np
import pytest

from repro.core.eigenpairs import dedupe_eigenpairs
from repro.parallel.executor import parallel_multistart_sshopm
from repro.resilience import (
    FaultPlan,
    InjectedWorkerCrash,
    RetryPolicy,
    resilient_multistart,
)
from repro.symtensor.random import random_symmetric_batch, random_symmetric_tensor

CHAOS_SEED = int(os.environ.get("REPRO_CHAOS_SEED", "20110516"))
ROOT = pathlib.Path(__file__).resolve().parents[1]


@pytest.fixture
def tensor():
    return random_symmetric_tensor(4, 3, rng=np.random.default_rng(CHAOS_SEED))


def _pair_set(result):
    """Comparable (eigenvalue, |first eigenvector component|) signature."""
    return sorted(round(p.eigenvalue, 9) for p in result.eigenpairs())


def test_acceptance_64_starts_survive_chaos(tensor):
    """The ISSUE acceptance scenario, end to end."""
    plan = FaultPlan(
        seed=CHAOS_SEED,
        nan_kernel={3: (0,), 17: (0,), 41: (0, 1)},  # recoverable via retry
        crashes={9: 1},                               # recoverable via requeue
        corrupt={25: 4},                              # unrecoverable input fault
    )
    clean = resilient_multistart(tensor, num_starts=64, alpha=2.0,
                                 seed=CHAOS_SEED, workers=4)
    assert not clean.failed_starts

    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        chaotic = resilient_multistart(
            tensor, num_starts=64, alpha=2.0, seed=CHAOS_SEED, workers=4,
            retry=RetryPolicy(max_attempts=3), faults=plan,
        )

    # the one corrupted start is reported failed, nothing else is
    assert chaotic.failed_starts == [25]
    report_25 = next(r for r in chaotic.reports if r.index == 25)
    assert report_25.error == "nonfinite"
    assert "failed [nonfinite]: starts 25" in chaotic.summary()

    # the killed worker's start was requeued and recovered
    report_9 = next(r for r in chaotic.reports if r.index == 9)
    assert report_9.requeues == 1 and report_9.ok
    assert chaotic.requeues == 1

    # NaN-kernel starts recovered on retry with an escalated shift
    for idx in (3, 17, 41):
        rep = next(r for r in chaotic.reports if r.index == idx)
        assert rep.attempts > 1 and rep.converged, idx
        assert abs(rep.alpha) > 2.0  # escalated beyond the requested shift

    # all recoverable eigenpairs still found: same distinct spectrum as
    # the clean run (the corrupted start only loses one vote, not a pair)
    assert _pair_set(chaotic) == _pair_set(clean)


def test_acceptance_interrupt_resume_bit_for_bit(tensor, tmp_path):
    ck = tmp_path / "sweep.ckpt.json"
    full = resilient_multistart(tensor, num_starts=64, alpha=2.0,
                                seed=CHAOS_SEED, workers=4)

    # simulate an interruption: checkpoint a complete run, then drop every
    # start past the first 20 from the saved state
    resilient_multistart(tensor, num_starts=64, alpha=2.0, seed=CHAOS_SEED,
                         workers=4, checkpoint=str(ck), checkpoint_every=16)
    state = json.loads(ck.read_text())
    state["starts"] = {k: v for k, v in state["starts"].items() if int(k) < 20}
    ck.write_text(json.dumps(state))

    resumed = resilient_multistart(tensor, num_starts=64, alpha=2.0,
                                   seed=CHAOS_SEED, workers=4,
                                   checkpoint=str(ck), resume=True)
    assert resumed.resumed == 20
    assert len(resumed.reports) == 64
    for a, b in zip(full.reports, resumed.reports):
        assert a.index == b.index
        assert a.eigenvalue == b.eigenvalue  # bit-for-bit, not approx
        np.testing.assert_array_equal(a.eigenvector, b.eigenvector)
        assert a.converged == b.converged and a.iterations == b.iterations
    assert _pair_set(resumed) == _pair_set(full)


def test_eigenpair_set_invariant_under_worker_count(tensor):
    """The RNG satellite: spawn-key streams make workers=1 and workers=8
    produce identical per-start results, hence identical eigenpair sets."""
    one = resilient_multistart(tensor, num_starts=32, alpha=2.0,
                               seed=CHAOS_SEED, workers=1)
    eight = resilient_multistart(tensor, num_starts=32, alpha=2.0,
                                 seed=CHAOS_SEED, workers=8)
    for a, b in zip(one.reports, eight.reports):
        assert a.eigenvalue == b.eigenvalue
        np.testing.assert_array_equal(a.eigenvector, b.eigenvector)
    assert _pair_set(one) == _pair_set(eight)


def test_resume_rejects_mismatched_run(tensor, tmp_path):
    ck = tmp_path / "ck.json"
    resilient_multistart(tensor, num_starts=8, alpha=2.0, seed=CHAOS_SEED,
                         checkpoint=str(ck))
    with pytest.raises(ValueError):
        resilient_multistart(tensor, num_starts=8, alpha=9.0, seed=CHAOS_SEED,
                             checkpoint=str(ck), resume=True)
    other = random_symmetric_tensor(4, 3, rng=np.random.default_rng(1))
    with pytest.raises(ValueError):
        resilient_multistart(other, num_starts=8, alpha=2.0, seed=CHAOS_SEED,
                             checkpoint=str(ck), resume=True)


def test_requeue_budget_exhaustion_reports_start(tensor):
    plan = FaultPlan(seed=CHAOS_SEED, crashes={5: 99})  # always crashes
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        res = resilient_multistart(tensor, num_starts=8, alpha=2.0,
                                   seed=CHAOS_SEED, workers=2, faults=plan,
                                   max_requeues=2)
    assert any("degraded" in str(w.message) for w in caught)
    assert res.failed_starts == [5]
    rep = next(r for r in res.reports if r.index == 5)
    assert rep.error.startswith("crash: InjectedWorkerCrash")
    assert res.requeues == 2
    # the other 7 starts are untouched
    assert sum(r.converged for r in res.reports) == 7


def test_slow_task_fault_executes(tensor):
    plan = FaultPlan(seed=CHAOS_SEED, slow={0: 0.01})
    res = resilient_multistart(tensor, num_starts=2, alpha=2.0,
                               seed=CHAOS_SEED, faults=plan)
    assert not res.failed_starts


def test_executor_chunk_crash_requeues_and_recovers():
    batch = random_symmetric_batch(6, 4, 3,
                                   rng=np.random.default_rng(CHAOS_SEED))
    base = parallel_multistart_sshopm(batch, workers=3, num_starts=8,
                                      alpha=2.0,
                                      rng=np.random.default_rng(1))
    plan = FaultPlan(crashes={1: 1})
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        rep = parallel_multistart_sshopm(batch, workers=3, num_starts=8,
                                         alpha=2.0,
                                         rng=np.random.default_rng(1),
                                         inject=plan.executor_hook())
    assert any("degraded" in str(w.message) for w in caught)
    assert rep.requeues == 1 and not rep.failures
    np.testing.assert_array_equal(rep.result.eigenvalues,
                                  base.result.eigenvalues)


def test_executor_exhausted_chunk_becomes_placeholder():
    batch = random_symmetric_batch(6, 4, 3,
                                   rng=np.random.default_rng(CHAOS_SEED))
    plan = FaultPlan(crashes={0: 99})
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        rep = parallel_multistart_sshopm(batch, workers=3, num_starts=8,
                                         alpha=2.0,
                                         rng=np.random.default_rng(1),
                                         inject=plan.executor_hook(),
                                         max_requeues=1)
    assert len(rep.failures) == 1
    failure = rep.failures[0]
    assert failure.chunk_index == 0 and failure.attempts == 2
    assert "InjectedWorkerCrash" in failure.error
    lo, hi = failure.tensor_range
    assert np.isnan(rep.result.eigenvalues[lo:hi]).all()
    assert rep.result.failed[lo:hi].all()
    # the surviving chunks' results are intact and usable
    assert np.isfinite(rep.result.eigenvalues[hi:]).all()
    pairs = dedupe_eigenpairs(rep.result.eigenvalues[hi:].ravel(),
                              rep.result.eigenvectors[hi:].reshape(-1, 3),
                              batch.m,
                              converged_mask=rep.result.converged[hi:].ravel())
    assert pairs


def test_injected_crash_is_distinguishable():
    exc = InjectedWorkerCrash("boom")
    assert isinstance(exc, RuntimeError)


class TestProcessFleetChaos:
    """Process-tier crash discipline: killed or crashing workers must
    requeue their shard (same merged result) and never leak a
    ``/dev/shm`` segment."""

    @pytest.fixture
    def fleet_batch(self):
        return random_symmetric_batch(6, 4, 3,
                                      rng=np.random.default_rng(CHAOS_SEED))

    @pytest.fixture
    def fleet_starts(self):
        from repro.core.multistart import starting_vectors

        return starting_vectors(6, 3, rng=CHAOS_SEED)

    def _solve(self, batch, starts, **kw):
        from repro.parallel.fleet import parallel_fleet_solve

        return parallel_fleet_solve(batch, starts=starts, alpha=2.0,
                                    max_iters=200, **kw)

    def test_sigkilled_worker_requeues_no_leak(self, fleet_batch,
                                               fleet_starts):
        from repro.parallel.shm import SHM_AVAILABLE, active_segments

        if not SHM_AVAILABLE:
            pytest.skip("shared_memory unavailable")
        base = self._solve(fleet_batch, fleet_starts, workers=1)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            rep = self._solve(fleet_batch, fleet_starts, workers=2,
                              executor="process", faults={0: "kill"})
        assert any("degraded" in str(w.message) for w in caught)
        assert rep.requeues >= 1 and rep.failed_shards == []
        np.testing.assert_array_equal(rep.result.eigenvalues,
                                      base.result.eigenvalues)
        np.testing.assert_array_equal(rep.result.converged,
                                      base.result.converged)
        assert active_segments() == []

    def test_injected_crash_requeues_no_leak(self, fleet_batch,
                                             fleet_starts):
        from repro.parallel.shm import SHM_AVAILABLE, active_segments

        if not SHM_AVAILABLE:
            pytest.skip("shared_memory unavailable")
        base = self._solve(fleet_batch, fleet_starts, workers=1)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            rep = self._solve(fleet_batch, fleet_starts, workers=2,
                              executor="process", faults={1: "crash"})
        assert any("degraded" in str(w.message) for w in caught)
        assert rep.requeues >= 1
        np.testing.assert_array_equal(rep.result.eigenvalues,
                                      base.result.eigenvalues)
        assert active_segments() == []

    def test_total_pool_loss_finishes_inline(self, fleet_batch,
                                             fleet_starts):
        """Every worker dies: the parent drains the queue and solves the
        remaining shards itself — degraded, but complete and leak-free."""
        from repro.parallel.shm import SHM_AVAILABLE, active_segments

        if not SHM_AVAILABLE:
            pytest.skip("shared_memory unavailable")
        base = self._solve(fleet_batch, fleet_starts, workers=1)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            rep = self._solve(fleet_batch, fleet_starts, workers=2,
                              executor="process",
                              faults={0: "kill", 1: "kill"})
        assert rep.failed_shards == []
        np.testing.assert_array_equal(rep.result.eigenvalues,
                                      base.result.eigenvalues)
        assert active_segments() == []

    def test_sigint_mid_solve_leaves_no_segments(self, tmp_path):
        """Ctrl-C during a process-tier solve must still unlink every
        shared-memory segment (the ``finally`` dispose discipline)."""
        import signal as _signal
        import subprocess
        import sys
        import time as _time

        from repro.parallel.shm import SHM_AVAILABLE, active_segments

        if not SHM_AVAILABLE:
            pytest.skip("shared_memory unavailable")
        assert active_segments() == []
        script = (
            "import sys\n"
            "import numpy as np\n"
            "from repro.symtensor.random import random_symmetric_batch\n"
            "from repro.parallel.fleet import parallel_fleet_solve\n"
            "batch = random_symmetric_batch(32, 4, 6, rng=0)\n"
            "print('READY', flush=True)\n"
            "parallel_fleet_solve(batch, workers=2, num_starts=32, rng=1,\n"
            "                     alpha=6.0, tol=0.0, max_iters=2000,\n"
            "                     executor='process')\n"
            "print('FINISHED', flush=True)\n"
        )
        proc = subprocess.Popen(
            [sys.executable, "-c", script],
            stdout=subprocess.PIPE, stderr=subprocess.DEVNULL, text=True,
            env={**os.environ, "PYTHONPATH": str(ROOT / "src")},
            cwd=str(ROOT),
        )
        try:
            assert proc.stdout.readline().strip() == "READY"
            _time.sleep(1.0)  # let publish + worker spawn happen
            proc.send_signal(_signal.SIGINT)
            out, _ = proc.communicate(timeout=60)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()
        # interrupted (no FINISHED) or finished early — either way, clean
        assert active_segments() == []


class TestServeDrainChaos:
    """SIGTERM against a live ``repro serve`` running a *process-tier*
    fleet: the daemon must drain gracefully (exit 0), checkpoint the
    interrupted job into a ``repro-drain/1`` manifest, and leave no
    ``/dev/shm`` segment behind."""

    def test_sigterm_drains_checkpoints_no_shm_leak(self, tmp_path):
        import json as _json
        import signal as _signal
        import subprocess
        import sys
        import time as _time
        import urllib.request

        from repro.parallel.shm import SHM_AVAILABLE, active_segments
        from repro.serve.drain import read_drain_manifest

        if not SHM_AVAILABLE:
            pytest.skip("shared_memory unavailable")
        ckpt = tmp_path / "ckpt"
        spec = {"tensors": {"kind": "random", "count": 12, "m": 4, "n": 8,
                            "seed": CHAOS_SEED % 1000},
                "num_starts": 12, "seed": 7, "max_iters": 2000,
                "tol": 1e-14, "chunk": 2, "executor": "process",
                "workers": 2}
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "serve", "--port", "0",
             "--runners", "1", "--checkpoint-dir", str(ckpt)],
            stdout=subprocess.PIPE, stderr=subprocess.DEVNULL, text=True,
            env={**os.environ, "PYTHONPATH": str(ROOT / "src")},
            cwd=str(tmp_path),
        )
        try:
            ready = _json.loads(proc.stdout.readline())
            assert ready["event"] == "ready"
            base = f"http://{ready['host']}:{ready['port']}"
            req = urllib.request.Request(
                base + "/solve", data=_json.dumps(spec).encode(),
                method="POST",
                headers={"Content-Type": "application/json"})
            with urllib.request.urlopen(req, timeout=30) as resp:
                assert resp.status == 202
                job = _json.load(resp)["job"]
            deadline = _time.time() + 15
            while _time.time() < deadline:
                with urllib.request.urlopen(f"{base}/jobs/{job}",
                                            timeout=10) as resp:
                    if _json.load(resp)["status"] == "running":
                        break
                _time.sleep(0.02)
            _time.sleep(0.6)  # let the process fleet get mid-flight
            proc.send_signal(_signal.SIGTERM)
            out, _ = proc.communicate(timeout=120)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()
        assert proc.returncode == 0
        drained = _json.loads(out.strip().splitlines()[-1])
        assert drained["event"] == "drained" and drained["status"] == 0
        entries = read_drain_manifest(ckpt)
        assert entries and entries[0]["state"] == "interrupted"
        assert entries[0]["job"] == job
        # the interrupted job checkpointed its completed chunks
        ck = _json.loads((ckpt / f"job-{job}.json").read_text())
        assert ck["schema"].startswith("repro-ckpt/") and ck["starts"]
        assert active_segments() == []


class TestObservabilityUnderChaos:
    """The observability plane must survive the faults the fleet
    survives: a SIGKILL'd worker leaves a parseable (truncation-safe)
    events file, and the stitched trace still contains every surviving
    worker's subtree."""

    @pytest.fixture
    def fleet_batch(self):
        return random_symmetric_batch(6, 4, 3,
                                      rng=np.random.default_rng(CHAOS_SEED))

    @pytest.fixture
    def fleet_starts(self):
        from repro.core.multistart import starting_vectors

        return starting_vectors(6, 3, rng=CHAOS_SEED)

    def test_killed_worker_leaves_parseable_events(self, fleet_batch,
                                                   fleet_starts, tmp_path):
        from repro.instrument.events import read_events, validate_event
        from repro.parallel.fleet import parallel_fleet_solve
        from repro.parallel.shm import SHM_AVAILABLE

        if not SHM_AVAILABLE:
            pytest.skip("shared_memory unavailable")
        ev = tmp_path / "chaos_events.jsonl"
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            rep = parallel_fleet_solve(
                fleet_batch, starts=fleet_starts, alpha=2.0, max_iters=200,
                workers=2, executor="process", faults={0: "kill"},
                events=str(ev))
        assert rep.requeues >= 1 and rep.failed_shards == []
        records = read_events(ev)
        for rec in records:
            validate_event(rec)
        evs = {r["ev"] for r in records}
        # lifecycle events survive the kill: the run completed, the lost
        # shard was requeued, and every record shares one run id
        assert {"header", "run_start", "requeue", "run_finish"} <= evs
        assert len({r["run"] for r in records}) == 1
        # a SIGKILL mid-write can leave a truncated final line; the
        # reader must skip it — simulate the worst case explicitly
        with open(ev, "a") as fh:
            fh.write('{"ev":"shard_start","t":1.0,"run":"xyz","src"')
        truncated = read_events(ev)
        assert len(truncated) == len(records)
        with pytest.raises(ValueError):
            read_events(ev, strict=True)

    def test_killed_worker_trace_keeps_survivors(self, fleet_batch,
                                                 fleet_starts):
        from repro.instrument import recording
        from repro.parallel.fleet import parallel_fleet_solve
        from repro.parallel.shm import SHM_AVAILABLE

        if not SHM_AVAILABLE:
            pytest.skip("shared_memory unavailable")
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            with recording() as rec:
                rep = parallel_fleet_solve(
                    fleet_batch, starts=fleet_starts, alpha=2.0,
                    max_iters=200, workers=2, executor="process",
                    faults={0: "kill"})
        # the killed worker's recorder dies with it; every surviving
        # worker's subtree must still be stitched in
        assert 1 <= rep.workers_traced <= rep.workers
        root = rec.find("parallel_fleet_solve")
        assert root is not None
        survivors = [name for name in root.children
                     if name.startswith("worker")]
        assert len(survivors) == rep.workers_traced >= 1
