"""Functional validation of the generated CUDA kernels via CPU emulation.

The generated device code is compiled with the system C++ compiler behind
shimmed CUDA builtins and run over real workloads; its eigenpairs are
checked against the Python solver stack.  Skipped when no compiler exists.
"""

import numpy as np
import pytest

from repro.core.multistart import multistart_sshopm, starting_vectors
from repro.core.sshopm import suggested_shift
from repro.kernels.batched import ax_m1_batched
from repro.kernels.cuda_emulator import compiler_available, emulate_cuda_sshopm
from repro.symtensor.random import random_symmetric_batch

pytestmark = pytest.mark.skipif(
    compiler_available() is None, reason="no C++ compiler for CUDA emulation"
)


@pytest.fixture(scope="module")
def workload():
    batch = random_symmetric_batch(6, 4, 3, rng=7)
    starts = starting_vectors(8, 3, rng=8)
    alpha = max(suggested_shift(batch[t]) for t in range(len(batch)))
    return batch, starts, alpha


class TestEmulatedKernels:
    @pytest.mark.parametrize("variant", ["unrolled", "general"])
    def test_outputs_are_eigenpairs(self, workload, variant):
        batch, starts, alpha = workload
        lam, vec = emulate_cuda_sshopm(batch, starts, alpha=alpha, tol=1e-6,
                                       max_iter=3000, variant=variant)
        assert lam.shape == (6, 8) and vec.shape == (6, 8, 3)
        assert lam.dtype == np.float32
        norms = np.linalg.norm(vec, axis=-1)
        assert np.allclose(norms, 1.0, atol=1e-5)
        r = ax_m1_batched(batch.values[:, None, :], vec.astype(np.float64))
        resid = np.linalg.norm(
            r - lam[..., None].astype(np.float64) * vec.astype(np.float64), axis=-1
        )
        assert resid.max() < 0.05  # fp32 + large shift: loose but real

    def test_matches_python_lockstep_driver(self, workload):
        batch, starts, alpha = workload
        lam, vec = emulate_cuda_sshopm(batch, starts, alpha=alpha, tol=1e-6,
                                       max_iter=3000)
        py = multistart_sshopm(batch, starts=starts, alpha=alpha, tol=1e-6,
                               max_iters=3000, dtype=np.float32)
        assert np.isclose(lam, py.eigenvalues, atol=2e-3).mean() >= 0.95

    def test_variants_agree_with_each_other(self, workload):
        batch, starts, alpha = workload
        lam_u, _ = emulate_cuda_sshopm(batch, starts, alpha=alpha, tol=1e-6,
                                       max_iter=3000, variant="unrolled")
        lam_g, _ = emulate_cuda_sshopm(batch, starts, alpha=alpha, tol=1e-6,
                                       max_iter=3000, variant="general")
        assert np.allclose(lam_u, lam_g, atol=2e-3)

    def test_bad_starts_shape(self, workload):
        batch, _, _ = workload
        with pytest.raises(ValueError):
            emulate_cuda_sshopm(batch, np.zeros((4, 2)))

    def test_zero_iterations_returns_rayleigh_of_start(self, workload):
        """max_iter=0: the kernel stores lambda = A x0^m of the (normalized)
        start, untouched by iteration."""
        batch, starts, _ = workload
        lam, vec = emulate_cuda_sshopm(batch, starts, alpha=0.0, max_iter=0)
        from repro.kernels.batched import ax_m_batched

        expected = ax_m_batched(batch.values[:, None, :], starts[None, :, :])
        assert np.allclose(lam, expected, atol=1e-4)
        assert np.allclose(vec, np.broadcast_to(starts, vec.shape), atol=1e-6)
