"""Tests for the observability plane: the bounded event spool
(:mod:`repro.instrument.events`), structured logging
(:mod:`repro.instrument.log`), the ``repro top`` dashboard
(:mod:`repro.instrument.top`), and their plumbing through the facade,
``SolveConfig``, and the CLI."""

import io
import json
import logging
import os
import time

import numpy as np
import pytest

import repro
from repro.core.config import SolveConfig
from repro.instrument.events import (
    DEFAULT_RATE_CAP,
    EVENTS_SCHEMA,
    EventSpool,
    current_spool,
    emit,
    new_run_id,
    provenance,
    read_events,
    use_spool,
    validate_event,
)
from repro.symtensor.random import random_symmetric_batch


@pytest.fixture
def batch():
    return random_symmetric_batch(4, 4, 3, rng=np.random.default_rng(3))


class TestEventSpool:
    def test_open_writes_header_with_provenance(self, tmp_path):
        path = tmp_path / "ev.jsonl"
        with EventSpool.open(path) as spool:
            assert spool.run_id
        (header,) = read_events(path)
        validate_event(header)
        assert header["ev"] == "header"
        assert header["schema"] == EVENTS_SCHEMA
        assert header["run"] == spool.run_id
        assert {"host", "pid", "version"} <= set(header)

    def test_emit_stamps_base_fields(self, tmp_path):
        path = tmp_path / "ev.jsonl"
        with EventSpool.open(path, run_id="abc", src="parent") as spool:
            assert spool.emit("steal", shard=3)
        recs = read_events(path)
        steal = recs[-1]
        assert steal == {"ev": "steal", "t": steal["t"], "run": "abc",
                         "src": "parent", "shard": 3}

    def test_emit_after_close_returns_false(self, tmp_path):
        spool = EventSpool.open(tmp_path / "ev.jsonl")
        spool.close()
        assert spool.emit("steal", shard=0) is False
        spool.close()  # idempotent

    def test_decimation_caps_rate_and_accounts_drops(self, tmp_path):
        path = tmp_path / "ev.jsonl"
        spool = EventSpool.open(path, rate_cap=10)
        for sweep in range(50):
            spool.emit("retire", converged=0, failed=0, active=1, sweep=sweep)
        spool.close()
        recs = read_events(path)
        retires = [r for r in recs if r["ev"] == "retire"]
        dec = [r for r in recs if r["ev"] == "decimated"]
        assert len(retires) == 10
        assert sum(d["dropped"] for d in dec) == 40

    def test_lifecycle_events_never_decimated(self, tmp_path):
        path = tmp_path / "ev.jsonl"
        spool = EventSpool.open(path, rate_cap=1)
        for shard in range(20):
            assert spool.emit("shard_start", shard=shard, lo=0, hi=1)
        spool.close()
        recs = read_events(path)
        assert len([r for r in recs if r["ev"] == "shard_start"]) == 20

    def test_multi_writer_same_file(self, tmp_path):
        """Process workers append through their own descriptor; lines
        from both writers land whole."""
        path = tmp_path / "ev.jsonl"
        parent = EventSpool.open(path, run_id="r1", src="parent")
        worker = EventSpool.open(path, run_id="r1", src="w0", header=False)
        parent.emit("run_start", tensors=1, lanes=1, workers=1, shards=1,
                    executor="process")
        worker.emit("shard_start", shard=0, lo=0, hi=1)
        worker.close()
        parent.emit("run_finish", seconds=0.1, requeues=0, failed=0)
        parent.close()
        recs = read_events(path)
        for rec in recs:
            validate_event(rec)
        assert [r["src"] for r in recs] == ["parent", "parent", "w0",
                                           "parent"]

    def test_bound_spool_rebinds_src_only(self, tmp_path):
        path = tmp_path / "ev.jsonl"
        with EventSpool.open(path, run_id="r2", src="parent") as spool:
            view = spool.bound("t1")
            assert view.path == spool.path and view.run_id == "r2"
            view.emit("shard_finish", shard=0, seconds=0.5, sweeps=7)
        recs = read_events(path)
        assert recs[-1]["src"] == "t1" and recs[-1]["run"] == "r2"

    def test_default_rate_cap_is_sane(self):
        assert DEFAULT_RATE_CAP >= 100


class TestAmbientSpool:
    def test_module_emit_noops_without_spool(self):
        assert current_spool() is None
        assert emit("steal", shard=0) is False

    def test_use_spool_scopes_thread_locally(self, tmp_path):
        with EventSpool.open(tmp_path / "ev.jsonl") as spool:
            with use_spool(spool):
                assert current_spool() is spool
                assert emit("steal", shard=1)
            assert current_spool() is None

    def test_run_id_and_provenance_shapes(self):
        rid = new_run_id()
        assert len(rid) == 12 and set(rid) <= set("0123456789abcdef")
        prov = provenance()
        assert prov["pid"] == os.getpid()
        assert prov["version"] == repro.__version__


class TestReader:
    def test_skips_torn_and_garbage_lines(self, tmp_path):
        path = tmp_path / "ev.jsonl"
        with EventSpool.open(path, run_id="r") as spool:
            spool.emit("steal", shard=0)
        with open(path, "ab") as fh:
            fh.write(b'{"ev":"steal","t":2.0,"run":"r","sr')  # torn
            fh.write(b"\nnot json at all\n")
            fh.write(b'[1,2,3]\n')  # parseable but not an object
        recs = read_events(path)
        assert [r["ev"] for r in recs] == ["header", "steal"]

    def test_strict_raises_with_line_number(self, tmp_path):
        path = tmp_path / "ev.jsonl"
        path.write_text('{"ev":"steal","t":1.0,"run":"r","src":"p","shard":0}\n'
                        "garbage\n")
        with pytest.raises(ValueError, match=":2:"):
            read_events(path, strict=True)

    def test_validate_event_rejections(self):
        ok = {"ev": "requeue", "t": 1.0, "run": "r", "src": "parent",
              "shard": 2, "attempt": 1}
        assert validate_event(ok) is ok
        with pytest.raises(ValueError, match="base field"):
            validate_event({"ev": "steal", "t": 1.0, "run": "r"})
        with pytest.raises(ValueError, match="unknown event type"):
            validate_event({"ev": "nope", "t": 1.0, "run": "r", "src": "p"})
        with pytest.raises(ValueError, match="missing field"):
            validate_event({"ev": "steal", "t": 1.0, "run": "r", "src": "p"})
        with pytest.raises(ValueError, match="must be a number"):
            validate_event({"ev": "steal", "t": "now", "run": "r",
                            "src": "p", "shard": 0})
        # open schema: extra fields are fine
        validate_event({**ok, "future_field": True})


class TestStructuredLogging:
    def _capture(self, json_lines):
        from repro.instrument.log import configure_logging

        stream = io.StringIO()
        configure_logging("debug", json_lines=json_lines, stream=stream)
        return stream

    def teardown_method(self):
        root = logging.getLogger("repro")
        for h in list(root.handlers):
            if getattr(h, "_repro_configured", False):
                root.removeHandler(h)
        root.propagate = True

    def test_json_lines_carry_context_and_fields(self):
        from repro.instrument.log import get_logger, log_context

        stream = self._capture(json_lines=True)
        log = get_logger("test.unit")
        with log_context(run="r123", worker="w0"):
            log.info("shard finished", fields={"shard": 4, "seconds": 0.25})
        rec = json.loads(stream.getvalue().strip())
        assert rec["level"] == "INFO"
        assert rec["logger"] == "repro.test.unit"
        assert rec["msg"] == "shard finished"
        assert rec["run"] == "r123" and rec["worker"] == "w0"
        assert rec["shard"] == 4 and rec["seconds"] == 0.25

    def test_context_nests_and_unwinds(self):
        from repro.instrument.log import get_logger, log_context

        stream = self._capture(json_lines=True)
        log = get_logger("test.unit")
        with log_context(run="outer"):
            with log_context(run="inner", extra_key=1):
                log.info("a")
            log.info("b")
        lines = [json.loads(x) for x in stream.getvalue().splitlines()]
        assert lines[0]["run"] == "inner" and lines[0]["extra_key"] == 1
        assert lines[1]["run"] == "outer" and "extra_key" not in lines[1]

    def test_text_format_appends_fields(self):
        from repro.instrument.log import get_logger

        stream = self._capture(json_lines=False)
        get_logger("test.unit").warning("requeue", fields={"shard": 2})
        out = stream.getvalue()
        assert "requeue" in out and "[shard=2]" in out

    def test_configure_is_idempotent(self):
        from repro.instrument.log import configure_logging

        s1, s2 = io.StringIO(), io.StringIO()
        configure_logging("info", json_lines=True, stream=s1)
        configure_logging("info", json_lines=True, stream=s2)
        root = logging.getLogger("repro")
        mine = [h for h in root.handlers
                if getattr(h, "_repro_configured", False)]
        assert len(mine) == 1

    def test_unconfigured_logging_is_silent(self, capsys):
        from repro.instrument.log import get_logger

        get_logger("test.quiet").info("nothing to see")
        captured = capsys.readouterr()
        assert captured.out == "" and captured.err == ""


def _write_run(path, *, finished=True):
    """A small synthetic two-worker run for the dashboard tests."""
    with EventSpool.open(path, run_id="feedbeef0001") as spool:
        spool.emit("run_start", tensors=4, lanes=16, workers=2, shards=2,
                   executor="process", ranges=[[0, 2], [2, 4]],
                   starts_per_tensor=4)
        w0 = EventSpool.open(path, run_id="feedbeef0001", src="w0",
                             header=False)
        w1 = EventSpool.open(path, run_id="feedbeef0001", src="w1",
                             header=False)
        w0.emit("worker_start", pid=101)
        w1.emit("worker_start", pid=102)
        w0.emit("shard_start", shard=0, lo=0, hi=2)
        w1.emit("shard_start", shard=1, lo=2, hi=4)
        w0.emit("retire", converged=6, failed=1, active=9, sweep=40)
        w0.emit("plan_cache", outcome="miss", m=4, n=3,
                variant="vectorized", backend="numpy")
        w1.emit("plan_cache", outcome="hit", m=4, n=3,
                variant="vectorized", backend="numpy")
        w0.emit("shard_finish", shard=0, seconds=0.5, sweeps=80)
        w1.emit("steal", shard=1)
        w1.emit("requeue", shard=1, attempt=1)
        w1.emit("shard_finish", shard=1, seconds=0.7, sweeps=90)
        w0.emit("worker_exit", shards=1)
        w1.emit("worker_exit", shards=1)
        w0.close()
        w1.close()
        if finished:
            spool.emit("run_finish", seconds=1.2, requeues=1, failed=0)
    return path


class TestTopDashboard:
    def test_aggregate_counts(self, tmp_path):
        from repro.instrument.top import aggregate

        view = aggregate(read_events(_write_run(tmp_path / "ev.jsonl")))
        assert view.run_id == "feedbeef0001"
        assert view.executor == "process"
        assert view.workers_expected == 2
        assert view.shards_total == 2
        assert view.finished == 2 and view.started == 2
        assert view.queue_depth() == 0 and view.in_flight() == 0
        assert view.steals == 1 and view.requeues == 1
        assert view.plan_hits == 1 and view.plan_misses == 1
        assert view.lanes_converged == 6 and view.lanes_failed == 1
        assert view.run_finished and view.run_seconds == 1.2
        assert view.invalid == 0
        w0 = view.workers["w0"]
        assert w0.pid == 101 and w0.finished == 1 and w0.exited
        assert w0.lanes_per_second() == pytest.approx(2 * 4 / 0.5)

    def test_aggregate_midrun_has_eta(self, tmp_path):
        from repro.instrument.top import aggregate

        path = tmp_path / "ev.jsonl"
        with EventSpool.open(path, run_id="r") as spool:
            spool.emit("run_start", tensors=4, lanes=16, workers=2,
                       shards=4, executor="process",
                       ranges=[[0, 1], [1, 2], [2, 3], [3, 4]])
            w0 = spool.bound("w0")
            w0.emit("worker_start", pid=1)
            w0.emit("shard_start", shard=0, lo=0, hi=1)
            w0.emit("shard_finish", shard=0, seconds=2.0, sweeps=10)
            w0.emit("shard_start", shard=1, lo=1, hi=2)
        view = aggregate(read_events(path))
        assert not view.run_finished
        assert view.in_flight() == 1 and view.queue_depth() == 2
        # 3 shards left at ~2 s each on one live worker
        assert view.eta_seconds() == pytest.approx(6.0)

    def test_aggregate_counts_invalid_lines(self, tmp_path):
        from repro.instrument.top import aggregate

        path = _write_run(tmp_path / "ev.jsonl")
        with open(path, "a") as fh:
            fh.write('{"ev":"mystery","t":1.0,"run":"r","src":"p"}\n')
        view = aggregate(read_events(path))
        assert view.invalid == 1

    def test_render_plain_text(self, tmp_path):
        from repro.instrument.top import aggregate, render

        view = aggregate(read_events(_write_run(tmp_path / "ev.jsonl")))
        out = render(view, color=False)
        assert "\x1b[" not in out
        assert "feedbeef0001" in out
        assert "process" in out
        assert "w0" in out and "w1" in out
        assert "steals" in out

    def test_render_color_uses_ansi(self, tmp_path):
        from repro.instrument.top import aggregate, render

        view = aggregate(read_events(_write_run(tmp_path / "ev.jsonl")))
        assert "\x1b[" in render(view, color=True)

    def test_follow_once_exit_codes(self, tmp_path):
        from repro.instrument.top import follow

        path = _write_run(tmp_path / "done.jsonl")
        out = io.StringIO()
        assert follow(path, once=True, stream=out, color=False) == 0
        assert "FINISHED" in out.getvalue()
        unfinished = _write_run(tmp_path / "live.jsonl", finished=False)
        assert follow(unfinished, once=True, stream=io.StringIO(),
                      color=False) == 1
        assert follow(tmp_path / "missing.jsonl", once=True,
                      stream=io.StringIO(), color=False) == 2

    def test_follow_replay_stops_at_finish(self, tmp_path):
        from repro.instrument.top import follow

        path = _write_run(tmp_path / "done.jsonl")
        out = io.StringIO()
        status = follow(path, interval=0.01, stream=out, color=False,
                        max_frames=50)
        assert status == 0


class TestPlumbing:
    def test_config_events_field_routes_fleet_solve(self, batch, tmp_path):
        ev = tmp_path / "cfg.jsonl"
        cfg = SolveConfig(events=str(ev))
        rep = repro.solve(batch, starts=4, max_iters=100, rng=0, config=cfg)
        assert rep.solver == "fleet_solve"
        recs = read_events(ev)
        for rec in recs:
            validate_event(rec)
        evs = {r["ev"] for r in recs}
        assert {"header", "run_start", "run_finish"} <= evs

    def test_events_option_routes_parallel(self, batch, tmp_path):
        ev = tmp_path / "par.jsonl"
        rep = repro.solve(batch, starts=4, max_iters=100, rng=0, workers=2,
                          events=str(ev))
        assert rep.solver == "parallel_fleet_solve"
        recs = read_events(ev)
        srcs = {r["src"] for r in recs}
        assert {"t0", "t1"} <= srcs
        run_ids = {r["run"] for r in recs}
        assert len(run_ids) == 1

    def test_ambient_spool_wins_over_kwarg(self, batch, tmp_path):
        ambient = tmp_path / "ambient.jsonl"
        ignored = tmp_path / "ignored.jsonl"
        with EventSpool.open(ambient) as spool, use_spool(spool):
            repro.solve(batch, starts=4, max_iters=100, rng=0, workers=2,
                        events=str(ignored))
        assert not ignored.exists()
        assert len(read_events(ambient)) > 1

    def test_engine_emits_retire_and_compact(self, batch, tmp_path):
        ev = tmp_path / "engine.jsonl"
        repro.solve(batch, starts=8, max_iters=300, rng=0,
                    events=str(ev), compact_every=25)
        evs = [r["ev"] for r in read_events(ev)]
        assert "retire" in evs
        assert "plan_cache" in evs


class TestCLITop:
    def test_top_once_end_to_end(self, tmp_path, capsys):
        from repro.cli import main

        path = _write_run(tmp_path / "cli.jsonl")
        status = main(["top", str(path), "--once", "--no-color"])
        assert status == 0
        out = capsys.readouterr().out
        assert "repro top" in out and "feedbeef0001" in out

    def test_top_missing_file_exits_two(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["top", str(tmp_path / "nope.jsonl"), "--once"]) == 2

    def test_cli_events_flag_writes_spool(self, tmp_path, capsys):
        from repro.cli import main

        ev = tmp_path / "cli_run.jsonl"
        status = main(["fleet-solve", "--tensors", "3", "--m", "4", "--n",
                       "3", "--starts", "4", "--workers", "2",
                       "--events", str(ev)])
        assert status == 0
        recs = read_events(ev)
        for rec in recs:
            validate_event(rec)
        assert {"header", "run_start", "run_finish"} <= {r["ev"] for r in recs}
        assert str(ev) in capsys.readouterr().out

    def test_cli_unwritable_events_exits_two(self, tmp_path, capsys):
        from repro.cli import main

        bad = tmp_path / "no" / "dir" / "ev.jsonl"
        status = main(["fleet-solve", "--tensors", "2", "--m", "4", "--n",
                       "3", "--starts", "4", "--events", str(bad)])
        assert status == 2
        assert "cannot write events file" in capsys.readouterr().err


class TestProvenance:
    def test_bench_meta_carries_provenance(self):
        from repro.bench.harness import run_smoke

        doc = run_smoke(reps=1, include=["sshopm_single"])
        meta = doc["meta"]
        assert meta["pid"] == os.getpid()
        assert meta["version"] == repro.__version__
        assert len(meta["run_id"]) == 12

    def test_checkpoint_run_carries_provenance(self):
        from repro.resilience.checkpoint import check_resumable, new_checkpoint

        ck = new_checkpoint(fingerprint="f", num_starts=4, seed=1,
                            alpha=0.0, tol=1e-8, max_iters=100)
        run = ck["run"]
        assert run["version"] == repro.__version__
        assert len(run["run_id"]) == 12
        # provenance must not break resumability on another host
        check_resumable(ck, fingerprint="f", num_starts=4, seed=1,
                        alpha=0.0, tol=1e-8, max_iters=100)

    def test_checkpoint_adopts_ambient_run_id(self, tmp_path):
        from repro.resilience.checkpoint import new_checkpoint

        with EventSpool.open(tmp_path / "ev.jsonl",
                             run_id="cafecafecafe") as spool:
            with use_spool(spool):
                ck = new_checkpoint(fingerprint="f", num_starts=4, seed=1,
                                    alpha=0.0, tol=1e-8, max_iters=100)
        assert ck["run"]["run_id"] == "cafecafecafe"
