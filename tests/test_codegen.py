"""The pluggable-emitter codegen registry (repro.kernels.codegen): emitter
lookup and aliases, the three first-class backends, graceful numba
degradation, and the flat-batch source generator."""

import numpy as np
import pytest

from repro.kernels import codegen
from repro.kernels.codegen import (
    CODEGEN_VERSION,
    EmittedKernel,
    Emitter,
    available_backends,
    emit,
    generate_flat_source,
    generated_source,
    get_emitter,
    numba_available,
    register_emitter,
)
from repro.kernels.dispatch import UnknownVariantError
from repro.kernels.errors import UnknownBackendError
from repro.kernels.reference import ax_m1_dense, ax_m_dense
from repro.symtensor.random import random_symmetric_tensor


class TestRegistry:
    def test_first_class_backends_registered(self):
        assert set(available_backends()) >= {"numpy", "numba", "cuda-src"}

    def test_get_emitter_returns_named_emitter(self):
        assert get_emitter("numpy").name == "numpy"
        assert get_emitter("numba").name == "numba"

    def test_cuda_alias_resolves_to_cuda_src(self):
        assert get_emitter("cuda") is get_emitter("cuda-src")

    def test_unknown_backend_raises_with_choices(self):
        with pytest.raises(UnknownBackendError) as excinfo:
            get_emitter("tpu")
        assert "numpy" in str(excinfo.value)

    def test_executable_filter(self):
        exe = available_backends(executable=True)
        assert "numpy" in exe and "numba" in exe
        assert "cuda-src" not in exe
        assert "cuda-src" in available_backends(executable=False)

    def test_installed_only_drops_missing_deps(self):
        installed = available_backends(executable=True, installed_only=True)
        assert "numpy" in installed
        assert ("numba" in installed) == numba_available()

    def test_register_emitter_injects_and_replaces(self):
        @register_emitter("fake-backend")
        class FakeEmitter(Emitter):
            executable = False

            def emit(self, m, n, variant, **opts):
                raise NotImplementedError

        try:
            assert get_emitter("fake-backend").name == "fake-backend"
            assert "fake-backend" in available_backends()
        finally:
            del codegen._EMITTERS["fake-backend"]

    def test_version_is_positive_int(self):
        assert isinstance(CODEGEN_VERSION, int) and CODEGEN_VERSION >= 1


class TestNumpyEmitter:
    def test_emit_produces_executable_kernel(self):
        kern = emit(4, 3, "unrolled", target="numpy")
        assert isinstance(kern, EmittedKernel)
        assert kern.executable
        assert kern.backend == kern.effective_backend == "numpy"
        assert kern.flops_scalar > 0 and kern.flops_vector > 0
        assert "def ax_m" in kern.source

    def test_emitted_kernel_matches_dense_reference(self, rng):
        tensor = random_symmetric_tensor(4, 3, rng=rng)
        x = rng.standard_normal(3)
        kern = emit(4, 3, "unrolled_cse", target="numpy")
        assert kern.ax_m(tensor.values, x) == pytest.approx(
            ax_m_dense(tensor.to_dense(), x), abs=1e-10)

    def test_unknown_variant_raises(self):
        with pytest.raises(UnknownVariantError):
            emit(4, 3, "vectorized", target="numpy")

    def test_pregenerated_source_short_circuit(self):
        src, _, _ = generated_source(3, 3, "unrolled", batched=True)
        kern = emit(3, 3, "unrolled", target="numpy", batched=True,
                    source=src)
        assert kern.meta.get("pregenerated") is True
        assert kern.executable

    def test_emit_is_cached(self):
        assert emit(3, 3, "unrolled") is emit(3, 3, "unrolled")


class TestNumbaEmitter:
    def test_always_batched(self):
        kern = emit(3, 3, "unrolled_cse", target="numba")
        assert kern.batched is True
        assert kern.backend == "numba"

    def test_effective_backend_records_reality(self):
        kern = emit(3, 3, "unrolled_cse", target="numba")
        if numba_available():
            assert kern.effective_backend == "numba"
            assert kern.meta.get("numba")
        else:
            assert kern.effective_backend == "numpy"
            assert "fallback" in kern.meta

    def test_kernels_agree_with_reference_either_way(self, rng):
        tensor = random_symmetric_tensor(3, 4, rng=rng)
        x = rng.standard_normal(4)
        kern = emit(3, 4, "unrolled", target="numba")
        np.testing.assert_allclose(
            kern.ax_m1(tensor.values[None, :], x[None, :])[0],
            ax_m1_dense(tensor.to_dense(), x), atol=1e-10)


class TestCudaSourceEmitter:
    def test_source_only(self):
        kern = emit(4, 3, "unrolled", target="cuda-src", num_starts=64)
        assert not kern.executable
        assert kern.ax_m is None and kern.ax_m1 is None
        assert "__global__" in kern.source
        assert kern.meta["num_starts"] == 64

    def test_cuda_alias_emits(self):
        kern = emit(4, 3, "general", target="cuda")
        assert kern.backend == "cuda-src"

    def test_flop_counts_match_unrolled_generator(self):
        cuda = emit(4, 3, "unrolled", target="cuda-src")
        ref = emit(4, 3, "unrolled", target="numpy")
        assert cuda.flops_scalar == ref.flops_scalar
        assert cuda.flops_vector == ref.flops_vector


class TestFlatSource:
    def test_flat_kernels_agree_with_reference(self, rng):
        m, n = 4, 3
        source, fs, fv = generate_flat_source(m, n, cse=True)
        namespace = {}
        exec(compile(source, "<test-flat>", "exec"), namespace)
        tensor = random_symmetric_tensor(m, n, rng=rng)
        x = rng.standard_normal((5, n))
        a = np.broadcast_to(tensor.values, (5, tensor.values.size)).copy()
        out_s = np.empty(5)
        out_v = np.empty((5, n))
        namespace["ax_m_flat"](a, x, out_s)
        namespace["ax_m1_flat"](a, x, out_v)
        dense = tensor.to_dense()
        for lane in range(5):
            assert out_s[lane] == pytest.approx(
                ax_m_dense(dense, x[lane]), abs=1e-10)
            np.testing.assert_allclose(
                out_v[lane], ax_m1_dense(dense, x[lane]), atol=1e-10)

    def test_flop_counts_match_non_batched_generator(self):
        _, fs, fv = generate_flat_source(4, 3, cse=False)
        ref = emit(4, 3, "unrolled", target="numpy")
        assert (fs, fv) == (ref.flops_scalar, ref.flops_vector)
