"""Tests for the trace/metrics exporters (repro.instrument.export):
Chrome trace-event JSON, Prometheus text exposition, JSONL event logs,
and the `repro trace convert` / `repro report` CLI surface over them."""

import json

import numpy as np
import pytest

from repro.instrument import Recorder, recording
from repro.instrument.export import (
    EXPORT_FORMATS,
    chrome_trace,
    convert_trace,
    jsonl_events,
    prometheus_text,
)
from repro.instrument.metrics import MetricsRegistry


def _sample_recorder() -> Recorder:
    rec = Recorder(meta={"command": "spectrum"})
    with rec.activate():
        with rec.span("solve"):
            with rec.span("sweep"):
                rec.add("flops", 100)
            with rec.span("sweep"):
                rec.add("flops", 100)
        rec.gauge("starts", 16)
    return rec


def _sample_registry() -> MetricsRegistry:
    reg = MetricsRegistry()
    reg.counter("runs_total", "total runs", labelnames=("solver",)) \
        .labels(solver="sshopm").inc(2)
    reg.gauge("width").set(3.5)
    h = reg.histogram("t_seconds", buckets=(0.1, 1.0, 10.0))
    h.observe(0.05)
    h.observe(0.5)
    h.observe(5.0)
    return reg


class TestChromeTrace:
    def test_structure_and_durations(self):
        doc = chrome_trace(_sample_recorder())
        events = doc["traceEvents"]
        assert events[0]["ph"] == "M"  # process-name metadata first
        spans = [e for e in events if e["ph"] == "X"]
        by_name = {e["name"]: e for e in spans}
        assert set(by_name) == {"solve", "sweep"}
        assert by_name["sweep"]["args"]["count"] == 2
        assert by_name["sweep"]["args"]["flops"] == 200  # aggregated re-entry
        # child laid out inside its parent on the synthesized timeline
        assert by_name["sweep"]["ts"] >= by_name["solve"]["ts"]
        assert by_name["sweep"]["dur"] <= by_name["solve"]["dur"] + 1e-3

    def test_worker_subtrees_get_own_tids(self):
        parent = _sample_recorder()
        for wid in range(2):
            worker = Recorder()
            with worker.activate():
                with worker.span("chunk"):
                    pass
            parent.absorb(worker, under=f"worker{wid}")
        spans = [e for e in chrome_trace(parent)["traceEvents"]
                 if e["ph"] == "X"]
        worker_tids = {e["tid"] for e in spans
                       if e["name"].startswith("worker")}
        main_tids = {e["tid"] for e in spans
                     if e["name"] in ("solve", "sweep")}
        assert len(worker_tids) == 2
        assert worker_tids.isdisjoint(main_tids)
        # workers overlap their parent: both start at the parent's start
        wstarts = {e["ts"] for e in spans if e["name"].startswith("worker")}
        assert len(wstarts) == 1

    def test_accepts_plain_dict(self):
        doc = chrome_trace(_sample_recorder().to_dict())
        assert any(e["ph"] == "X" for e in doc["traceEvents"])


class TestPrometheusText:
    def test_counter_gauge_lines(self):
        text = prometheus_text(metrics=_sample_registry())
        assert "# TYPE runs_total counter" in text
        assert 'runs_total{solver="sshopm"} 2' in text
        assert "# TYPE width gauge" in text
        assert "width 3.5" in text

    def test_histogram_cumulative_buckets(self):
        text = prometheus_text(metrics=_sample_registry())
        lines = dict(
            line.rsplit(" ", 1) for line in text.splitlines()
            if line.startswith("t_seconds")
        )
        # cumulative le-buckets: 1 obs <= 0.1, 2 <= 1.0, 3 <= 10 and +Inf
        assert lines['t_seconds_bucket{le="0.1"}'] == "1"
        assert lines['t_seconds_bucket{le="1"}'] == "2"
        assert lines['t_seconds_bucket{le="10"}'] == "3"
        assert lines['t_seconds_bucket{le="+Inf"}'] == "3"
        assert lines["t_seconds_count"] == "3"
        assert float(lines["t_seconds_sum"]) == pytest.approx(5.55)

    def test_trace_derived_series(self):
        text = prometheus_text(trace=_sample_recorder())
        assert 'repro_trace_span_seconds_total{path="solve"}' in text
        assert 'repro_trace_span_calls_total{path="solve/sweep"} 2' in text
        assert 'repro_trace_gauge{gauge="starts"} 16' in text

    def test_label_escaping(self):
        reg = MetricsRegistry()
        reg.counter("x_total", labelnames=("k",)).labels(k='a"b\\c').inc()
        text = prometheus_text(metrics=reg)
        assert 'x_total{k="a\\"b\\\\c"} 1' in text


class TestJsonlEvents:
    def test_every_line_parses_and_header_first(self):
        lines = jsonl_events(trace=_sample_recorder(),
                             metrics=_sample_registry())
        parsed = [json.loads(line) for line in lines]
        assert parsed[0]["event"] == "header"
        assert parsed[0]["schema"] == "repro-events/1"
        kinds = {p["event"] for p in parsed}
        assert {"header", "span", "gauge", "metric"} <= kinds

    def test_span_paths_and_counters(self):
        parsed = [json.loads(line)
                  for line in jsonl_events(trace=_sample_recorder())]
        spans = {p["path"]: p for p in parsed if p["event"] == "span"}
        assert spans["solve/sweep"]["count"] == 2
        assert spans["solve/sweep"]["counters"]["flops"] == 200

    def test_telemetry_rows_exported(self):
        from repro.core import sshopm
        from repro.symtensor import random_symmetric_tensor

        with recording() as rec:
            sshopm(random_symmetric_tensor(3, 4, rng=0), alpha=2.0,
                   max_iters=100, rng=1)
        parsed = [json.loads(line) for line in jsonl_events(trace=rec)]
        tel_rows = [p for p in parsed if p["event"] == "telemetry"]
        assert tel_rows and all(r["stream"] == "sshopm" for r in tel_rows)
        assert {"k", "lam"} <= set(tel_rows[0])


class TestConvertTrace:
    @pytest.mark.parametrize("fmt", EXPORT_FORMATS)
    def test_all_formats_return_text(self, fmt):
        text = convert_trace(_sample_recorder(), fmt)
        assert isinstance(text, str) and text

    def test_unknown_format_raises(self):
        with pytest.raises(ValueError, match="unknown export format"):
            convert_trace(_sample_recorder(), "flamegraph")


class TestCliSurface:
    def _make_trace(self, tmp_path):
        from repro.cli import main

        path = tmp_path / "run.json"
        assert main(["spectrum", "--m", "3", "--n", "3", "--starts", "8",
                     "--max-iter", "200", "--trace", str(path)]) == 0
        return path

    def test_trace_convert_chrome_roundtrip(self, tmp_path, capsys):
        from repro.cli import main

        trace = self._make_trace(tmp_path)
        capsys.readouterr()
        out = tmp_path / "run.chrome.json"
        assert main(["trace", "convert", str(trace), "--to", "chrome",
                     "-o", str(out)]) == 0
        doc = json.loads(out.read_text())
        assert any(e.get("name") == "repro spectrum"
                   for e in doc["traceEvents"])

    def test_trace_convert_stdout(self, tmp_path, capsys):
        from repro.cli import main

        trace = self._make_trace(tmp_path)
        capsys.readouterr()
        assert main(["trace", "convert", str(trace), "--to",
                     "prometheus"]) == 0
        assert "repro_trace_span_seconds_total" in capsys.readouterr().out

    def test_trace_convert_missing_input(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["trace", "convert", str(tmp_path / "nope.json"),
                     "--to", "jsonl"]) == 2
        assert "cannot load trace" in capsys.readouterr().err

    def test_report_renders_curves(self, tmp_path, capsys):
        from repro.cli import main

        trace = self._make_trace(tmp_path)
        capsys.readouterr()
        assert main(["report", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "TOTAL" in out                      # span summary
        assert "multistart_sshopm" in out          # telemetry stream header
        assert "y=lambda" in out                   # convergence curve
        assert "y=residual" in out                 # residual curve

    def test_report_trace_without_telemetry(self, tmp_path, capsys):
        from repro.cli import main

        rec = _sample_recorder()
        path = tmp_path / "bare.json"
        rec.save_trace(path)
        assert main(["report", str(path)]) == 0
        assert "no convergence telemetry" in capsys.readouterr().out

    def test_report_missing_file(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["report", str(tmp_path / "nope.json")]) == 2
        assert "cannot load trace" in capsys.readouterr().err
