"""Tests for the generated CUDA source (structure, term counts, syntax)."""

import re

import pytest

from repro.kernels.cudagen import (
    _generate_cuda_kernel as generate_cuda_kernel,
    generate_cuda_module,
    generate_host_launcher,
)
from repro.kernels.tables import kernel_tables
from repro.util.combinatorics import num_unique_entries


def balanced(src: str) -> bool:
    return src.count("{") == src.count("}") and src.count("(") == src.count(")")


class TestUnrolledKernel:
    def test_structure(self):
        src = generate_cuda_kernel(4, 3, 128, "unrolled")
        assert "__global__" in src
        assert "__shared__ float a[U]" in src
        assert "__syncthreads()" in src
        assert "rsqrtf" in src
        assert "#define U 15" in src
        assert "#define V 128" in src
        assert balanced(src)

    def test_term_counts_match_paper(self):
        """Section V-D: 15 terms in A x^m, 10 per output entry of
        A x^{m-1} for m=4, n=3."""
        src = generate_cuda_kernel(4, 3, 128, "unrolled")
        # every unique value is referenced: a[0] .. a[14]
        for u in range(15):
            assert f"a[{u}]" in src
        # each y_i expression has 10 terms (9 '+' inside its parenthesized sum)
        for i in range(3):
            match = re.search(
                rf"float y{i} = \((.*?)\);", src, flags=re.DOTALL
            )
            assert match, f"y{i} missing"
            assert match.group(1).count("a[") == 10

    def test_register_vectors_not_arrays(self):
        """The unrolled kernel keeps x/y entries as scalars (registers),
        never as indexed local arrays (Section V-D's point)."""
        src = generate_cuda_kernel(4, 3, 128, "unrolled")
        assert "float x[" not in src
        assert "x0" in src and "y2" in src

    def test_other_sizes(self):
        for m, n in [(2, 3), (3, 4), (6, 3)]:
            src = generate_cuda_kernel(m, n, 64, "unrolled")
            assert f"#define U {num_unique_entries(m, n)}" in src
            assert balanced(src)

    def test_refuses_huge_unroll(self):
        with pytest.raises(ValueError):
            generate_cuda_kernel(8, 8, 128, "unrolled")

    def test_unknown_variant(self):
        with pytest.raises(ValueError):
            generate_cuda_kernel(4, 3, 128, "simd")


class TestGeneralKernel:
    def test_structure(self):
        src = generate_cuda_kernel(4, 3, 128, "general")
        assert "__constant__ int c_index" in src
        assert "__constant__ float c_mult" in src
        assert "// Figure 2" in src
        assert "// Figure 3" in src
        assert balanced(src)

    def test_constant_tables_content(self):
        """The emitted constant initializers are the exact kernel tables."""
        src = generate_cuda_kernel(4, 3, 128, "general")
        tab = kernel_tables(4, 3)
        idx_match = re.search(r"c_index\[U \* M\] = \{ (.*?) \}", src)
        values = [int(v) for v in idx_match.group(1).split(",")]
        assert values == [int(v) for row in tab.index for v in row]
        mult_match = re.search(r"c_mult\[U\] = \{ (.*?) \}", src)
        mults = [int(v) for v in mult_match.group(1).split(",")]
        assert mults == list(tab.mult)

    def test_footnote3_sigma_recovery(self):
        """The general kernel derives sigma via C(m;k) * k_i / m."""
        src = generate_cuda_kernel(4, 3, 128, "general")
        assert "c_mult[u] * ki / (float)M" in src

    def test_scales_to_large_sizes(self):
        src = generate_cuda_kernel(6, 6, 128, "general")
        assert f"#define U {num_unique_entries(6, 6)}" in src
        assert balanced(src)


class TestModule:
    def test_full_module(self):
        src = generate_cuda_module()
        assert "sshopm_unrolled" in src
        assert "sshopm_general" in src
        assert balanced(src)

    def test_launcher_layout(self):
        src = generate_host_launcher(4, 3, 128)
        assert "dim3 block(128)" in src
        assert "T * 15 floats" in src

    def test_generation_cached(self):
        assert generate_cuda_kernel(4, 3) is generate_cuda_kernel(4, 3)
