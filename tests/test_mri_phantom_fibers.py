"""Tests for the synthetic phantom, fiber extraction, and detection metrics."""

import numpy as np
import pytest

from repro.mri.fibers import extract_fibers, extract_fibers_batch
from repro.mri.fit import adc_profile
from repro.mri.metrics import angular_error_deg, evaluate_detection, match_fibers
from repro.mri.phantom import adc_from_fibers, make_phantom
from repro.symtensor.random import sum_of_rank_ones


class TestAdcModel:
    def test_maxima_at_fiber_directions(self):
        """Two fibers at 75 degrees: ADC along each fiber beats the bisector
        (the property the quadratic model lacks)."""
        half = np.deg2rad(75.0) / 2
        a = np.array([np.cos(half), np.sin(half), 0.0])
        b = np.array([np.cos(half), -np.sin(half), 0.0])
        bisector = np.array([1.0, 0.0, 0.0])
        probes = np.stack([a, b, bisector])
        adc = adc_from_fibers(probes, np.stack([a, b]), np.array([0.5, 0.5]))
        assert adc[0] > adc[2] and adc[1] > adc[2]

    def test_single_fiber_peak(self):
        d = np.array([0.0, 0.0, 1.0])
        probes = np.stack([d, np.array([1.0, 0, 0])])
        adc = adc_from_fibers(probes, d[None], np.array([1.0]))
        assert adc[0] > adc[1]

    def test_odd_sharpness_rejected(self):
        with pytest.raises(ValueError):
            adc_from_fibers(np.eye(3), np.eye(3)[:1], np.ones(1), sharpness=3)


class TestPhantom:
    def test_shapes_and_counts(self):
        ph = make_phantom(rows=8, cols=8, num_gradients=24, rng=1)
        assert ph.num_voxels == 64
        assert len(ph.tensors) == 64
        assert ph.adc.shape == (64, 24)
        assert len(ph.true_directions) == 64
        counts = ph.num_fibers()
        assert set(counts) == {1, 2}

    def test_crossing_band_geometry(self):
        ph = make_phantom(rows=8, cols=4, num_gradients=24,
                          crossing_band=(0.25, 0.75), rng=2)
        counts = ph.num_fibers().reshape(8, 4)
        assert np.all(counts[2:6] == 2)
        assert np.all(counts[:2] == 1)
        assert np.all(counts[6:] == 1)

    def test_voxel_index(self):
        ph = make_phantom(rows=4, cols=4, num_gradients=24, rng=3)
        assert ph.voxel_index(1, 2) == 6
        with pytest.raises(IndexError):
            ph.voxel_index(4, 0)

    def test_noiseless_fit_is_exact(self):
        """sharpness == order makes the profile an exact order-m form."""
        ph = make_phantom(rows=4, cols=4, num_gradients=24, noise_sigma=0.0, rng=4)
        recon = adc_profile(ph.tensors, ph.gradients)
        assert np.allclose(recon, ph.adc, atol=1e-9)

    def test_noise_perturbs_fit(self):
        a = make_phantom(rows=2, cols=2, num_gradients=24, noise_sigma=0.0, rng=5)
        b = make_phantom(rows=2, cols=2, num_gradients=24, noise_sigma=0.05, rng=5)
        assert not np.allclose(a.tensors.values, b.tensors.values)

    def test_paper_sized_phantom(self):
        """32 x 32 = 1024 order-4 tensors with 15 unique values each —
        exactly the paper's synthetic set dimensions."""
        ph = make_phantom(rows=32, cols=32, num_gradients=20, rng=6)
        assert ph.tensors.values.shape == (1024, 15)

    def test_validation(self):
        with pytest.raises(ValueError):
            make_phantom(order=3, rng=0)  # odd order
        with pytest.raises(ValueError):
            make_phantom(order=4, num_gradients=10, rng=0)  # too few gradients

    def test_ground_truth_unit_vectors(self):
        ph = make_phantom(rows=3, cols=3, num_gradients=24, rng=7)
        for dirs in ph.true_directions:
            assert np.allclose(np.linalg.norm(dirs, axis=1), 1.0)


class TestMetrics:
    def test_angular_error_basics(self):
        a = np.array([1.0, 0.0, 0.0])
        assert angular_error_deg(a, a) == pytest.approx(0.0)
        assert angular_error_deg(a, -a) == pytest.approx(0.0)  # antipodal = same fiber
        b = np.array([0.0, 1.0, 0.0])
        assert angular_error_deg(a, b) == pytest.approx(90.0)

    def test_angular_error_unnormalized_inputs(self):
        assert angular_error_deg(np.array([2.0, 0, 0]), np.array([0.5, 0, 0])) == pytest.approx(0.0)

    def test_match_fibers_assignment(self):
        est = np.stack([[0.0, 1.0, 0.0], [1.0, 0.0, 0.0]])
        true = np.stack([[1.0, 0.0, 0.0], [0.0, 1.0, 0.0]])
        matches, fp, miss = match_fibers(est, true)
        assert len(matches) == 2 and fp == 0 and miss == 0

    def test_match_fibers_threshold(self):
        est = np.array([[1.0, 0.0, 0.0]])
        true = np.array([[0.0, 1.0, 0.0]])
        matches, fp, miss = match_fibers(est, true, max_error_deg=20)
        assert matches == [] and fp == 1 and miss == 1

    def test_match_fibers_empty(self):
        matches, fp, miss = match_fibers(np.zeros((0, 3)), np.eye(3)[:2])
        assert matches == [] and fp == 0 and miss == 2

    def test_evaluate_detection_perfect(self):
        dirs = [np.array([[1.0, 0, 0]]), np.array([[0, 1.0, 0], [0, 0, 1.0]])]
        rep = evaluate_detection(dirs, dirs)
        assert rep.correct_count_fraction == 1.0
        assert rep.mean_angular_error_deg == pytest.approx(0.0)
        assert rep.false_positives == 0 and rep.misses == 0
        assert set(rep.by_fiber_count) == {1, 2}

    def test_evaluate_detection_mismatched_lengths(self):
        with pytest.raises(ValueError):
            evaluate_detection([np.eye(3)[:1]], [])


class TestFiberExtraction:
    def test_single_voxel_single_fiber(self, rng):
        d = np.array([0.6, 0.64, 0.48])
        d = d / np.linalg.norm(d)
        tensor = sum_of_rank_ones(d[None, :], np.array([1.0]), m=4)
        result = extract_fibers(tensor, num_starts=48, rng=rng)
        assert result.count == 1
        assert angular_error_deg(result.directions[0], d) < 1.0

    def test_negative_alpha_rejected(self, rng):
        tensor = sum_of_rank_ones(np.eye(3)[:1], np.array([1.0]), m=4)
        with pytest.raises(ValueError):
            extract_fibers(tensor, alpha=-1.0)
        from repro.symtensor.storage import SymmetricTensorBatch

        batch = SymmetricTensorBatch(tensor.values[None], 4, 3)
        with pytest.raises(ValueError):
            extract_fibers_batch(batch, alpha=-1.0)

    def test_phantom_detection_end_to_end(self):
        """The headline application result: on a noiseless phantom the
        pipeline recovers fiber counts and directions voxel-by-voxel."""
        ph = make_phantom(rows=6, cols=6, num_gradients=32, noise_sigma=0.0, rng=11)
        fibers = extract_fibers_batch(ph.tensors, num_starts=64, rng=12)
        rep = evaluate_detection([f.directions for f in fibers], ph.true_directions)
        assert rep.correct_count_fraction == 1.0
        assert rep.mean_angular_error_deg < 3.0

    def test_phantom_detection_with_noise(self):
        ph = make_phantom(rows=4, cols=4, num_gradients=48, noise_sigma=0.02, rng=13)
        fibers = extract_fibers_batch(ph.tensors, num_starts=64, rng=14)
        rep = evaluate_detection([f.directions for f in fibers], ph.true_directions)
        assert rep.correct_count_fraction >= 0.8
        assert rep.mean_angular_error_deg < 8.0

    def test_max_fibers_cap(self, rng):
        ph = make_phantom(rows=2, cols=2, num_gradients=24, rng=15)
        fibers = extract_fibers_batch(ph.tensors, num_starts=32, max_fibers=1, rng=16)
        assert all(f.count <= 1 for f in fibers)

    def test_rel_threshold_filters_weak_maxima(self):
        """A strongly dominant fiber plus a weak one: a high threshold keeps
        only the dominant direction."""
        d1 = np.array([1.0, 0.0, 0.0])
        d2 = np.array([0.0, 1.0, 0.0])
        tensor = sum_of_rank_ones(np.stack([d1, d2]), np.array([1.0, 0.3]), m=4)
        strict = extract_fibers(tensor, num_starts=64, rel_threshold=0.9, rng=17)
        loose = extract_fibers(tensor, num_starts=64, rel_threshold=0.2, rng=17)
        assert strict.count == 1
        assert loose.count == 2
