"""Cross-module integration tests: full workflows through multiple
subsystems, including persistence and the performance substrate."""

import numpy as np
import pytest

from repro.core import (
    analyze_fixed_point,
    find_eigenpairs_batch,
    multistart_sshopm,
    starting_vectors,
    suggested_shift,
)
from repro.gpu import (
    divergence_adjusted_iterations,
    predict_sshopm,
    warp_profile,
)
from repro.io import load_phantom, save_phantom, save_results
from repro.mri import (
    evaluate_detection,
    extract_fibers_batch,
    fit_symmetric_batch,
    make_phantom,
    sh_to_tensor,
    fit_sh,
)
from repro.parallel import parallel_multistart_sshopm, predict_cpu_sshopm
from repro.symtensor import SymmetricTensorBatch


class TestFullPipelineWithPersistence:
    def test_phantom_save_solve_score(self, tmp_path):
        """Generate -> save -> load -> solve -> persist results -> score."""
        phantom = make_phantom(rows=4, cols=4, num_gradients=24,
                               noise_sigma=0.01, rng=31)
        path = tmp_path / "phantom.npz"
        save_phantom(path, phantom)
        loaded = load_phantom(path)

        fibers = extract_fibers_batch(loaded.tensors, num_starts=48, rng=32)
        rep = evaluate_detection([f.directions for f in fibers],
                                 loaded.true_directions)
        assert rep.correct_count_fraction > 0.9

        raw = multistart_sshopm(loaded.tensors, num_starts=16, alpha=0.0,
                                rng=33, tol=1e-8, max_iters=200)
        save_results(tmp_path / "results.npz", raw)
        assert (tmp_path / "results.npz").exists()

    def test_sh_route_through_pipeline(self):
        """Fit each voxel via spherical harmonics, convert to tensors, and
        confirm the eigen-solver sees the same principal directions as the
        direct tensor fit (Section IV's two equivalent parameterizations)."""
        phantom = make_phantom(rows=3, cols=3, num_gradients=32, rng=34)
        direct = phantom.tensors
        via_sh = SymmetricTensorBatch(
            np.stack([
                sh_to_tensor(fit_sh(phantom.gradients, phantom.adc[t], 4), 4).values
                for t in range(len(direct))
            ]),
            4, 3,
        )
        assert np.allclose(via_sh.values, direct.values, atol=1e-8)


class TestSolverToPerformanceModel:
    def test_measured_convergence_drives_prediction(self):
        """The full loop: solve the batch, profile warp divergence from the
        measured iteration counts, and predict the device runtime."""
        phantom = make_phantom(rows=4, cols=4, num_gradients=24, rng=35)
        starts = starting_vectors(32, 3, rng=36)
        res = multistart_sshopm(phantom.tensors, starts=starts, alpha=0.0,
                                tol=1e-6, max_iters=150, dtype=np.float32)
        iters = np.maximum(res.iterations, 1)
        prof = warp_profile(iters)
        pred = predict_sshopm(num_tensors=16, num_starts=32,
                              iterations=divergence_adjusted_iterations(iters))
        assert pred.seconds > 0
        assert prof.simt_efficiency <= 1.0
        cpu = predict_cpu_sshopm(pred.gflops * pred.seconds * 1e9,
                                 variant="unrolled", cores=1)
        assert cpu.seconds > pred.seconds  # GPU wins at this scale

    def test_parallel_executor_full_application(self):
        phantom = make_phantom(rows=4, cols=2, num_gradients=24, rng=37)
        rep = parallel_multistart_sshopm(phantom.tensors, workers=3,
                                         num_starts=16, rng=38, max_iters=300)
        assert rep.result.eigenvalues.shape == (8, 16)


class TestTheoryMeetsPractice:
    def test_found_pairs_are_attracting_under_used_shift(self):
        """Every pair multistart reports must be an attracting fixed point
        of the iteration that found it."""
        phantom = make_phantom(rows=2, cols=2, num_gradients=24, rng=39)
        batch = phantom.tensors
        alpha = max(suggested_shift(batch[t]) for t in range(len(batch)))
        pairs, _ = find_eigenpairs_batch(batch, num_starts=32, alpha=alpha,
                                         rng=40, tol=1e-12, max_iters=4000)
        checked = 0
        for t, plist in enumerate(pairs):
            for p in plist:
                if p.occurrences < 2 or p.residual > 1e-6:
                    continue
                ana = analyze_fixed_point(batch[t], p.eigenvalue,
                                          p.eigenvector, alpha)
                assert ana.attracting, (t, p.eigenvalue, ana.rate)
                checked += 1
        assert checked >= 4
