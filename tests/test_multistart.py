"""Tests for the batched lockstep multistart driver (the GPU-shaped
computation) and its equivalence with per-start sequential SS-HOPM."""

import numpy as np
import pytest

from repro.core.multistart import multistart_sshopm, starting_vectors
from repro.core.sshopm import sshopm, suggested_shift
from repro.symtensor.random import random_symmetric_batch, random_symmetric_tensor
from repro.util.flopcount import FlopCounter


class TestStartingVectors:
    def test_random_scheme_unit_norm(self):
        starts = starting_vectors(64, 3, scheme="random", rng=0)
        assert starts.shape == (64, 3)
        assert np.allclose(np.linalg.norm(starts, axis=1), 1.0)

    def test_fibonacci_scheme(self):
        starts = starting_vectors(32, 3, scheme="fibonacci")
        assert starts.shape == (32, 3)
        assert np.allclose(np.linalg.norm(starts, axis=1), 1.0, atol=1e-12)

    def test_fibonacci_requires_n3(self):
        with pytest.raises(ValueError):
            starting_vectors(16, 4, scheme="fibonacci")

    def test_unknown_scheme(self):
        with pytest.raises(ValueError):
            starting_vectors(16, 3, scheme="halton")

    def test_deterministic_with_seed(self):
        a = starting_vectors(8, 3, rng=42)
        b = starting_vectors(8, 3, rng=42)
        assert np.array_equal(a, b)


class TestLockstepEquivalence:
    def test_matches_sequential_sshopm(self, rng):
        """Each (tensor, start) lane of the batched driver must land on the
        same eigenpair as a sequential SS-HOPM run from the same start."""
        tensor = random_symmetric_tensor(4, 3, rng=rng)
        alpha = suggested_shift(tensor)
        starts = starting_vectors(6, 3, rng=1)
        batch_res = multistart_sshopm(
            tensor, starts=starts, alpha=alpha, tol=1e-13, max_iters=2000
        )
        for v in range(6):
            seq = sshopm(tensor, x0=starts[v], alpha=alpha, tol=1e-13, max_iters=2000)
            assert np.isclose(batch_res.eigenvalues[0, v], seq.eigenvalue, atol=1e-9)
            assert np.allclose(
                batch_res.eigenvectors[0, v], seq.eigenvector, atol=1e-6
            )

    def test_backends_agree(self, rng):
        batch = random_symmetric_batch(5, 4, 3, rng=rng)
        starts = starting_vectors(8, 3, rng=2)
        a = multistart_sshopm(batch, starts=starts, alpha=5.0, backend="batched",
                              tol=1e-12, max_iters=1500)
        b = multistart_sshopm(batch, starts=starts, alpha=5.0, backend="batched_unrolled",
                              tol=1e-12, max_iters=1500)
        assert np.allclose(a.eigenvalues, b.eigenvalues, atol=1e-10)
        assert np.allclose(a.eigenvectors, b.eigenvectors, atol=1e-8)
        assert np.array_equal(a.converged, b.converged)


class TestConvergenceBehavior:
    def test_all_converge_with_big_shift(self, rng):
        batch = random_symmetric_batch(8, 4, 3, rng=rng)
        alphas = [suggested_shift(batch[t]) for t in range(8)]
        res = multistart_sshopm(batch, num_starts=16, alpha=max(alphas),
                                rng=3, tol=1e-11, max_iters=4000)
        assert res.converged.all()
        # all converged lanes satisfy the eigenpair equation
        from repro.kernels.batched import ax_m1_batched

        r = ax_m1_batched(batch.values[:, None, :], res.eigenvectors)
        resid = np.linalg.norm(r - res.eigenvalues[..., None] * res.eigenvectors, axis=-1)
        # |delta lambda| < tol does not bound the residual equally tightly
        # when the shift is large (slow contraction); allow slack
        assert resid[res.converged].max() < 1e-4

    def test_frozen_lanes_do_not_drift(self, rng):
        """Once converged, extra sweeps must not change a lane's result."""
        tensor = random_symmetric_tensor(4, 3, rng=rng)
        starts = starting_vectors(4, 3, rng=5)
        short = multistart_sshopm(tensor, starts=starts, alpha=10.0, tol=1e-12, max_iters=400)
        long = multistart_sshopm(tensor, starts=starts, alpha=10.0, tol=1e-12, max_iters=4000)
        conv = short.converged[0]
        assert np.allclose(
            short.eigenvalues[0, conv], long.eigenvalues[0, conv], atol=1e-12
        )

    def test_iterations_counted_per_lane(self, rng):
        tensor = random_symmetric_tensor(4, 3, rng=rng)
        res = multistart_sshopm(tensor, num_starts=8, alpha=10.0, rng=6,
                                tol=1e-12, max_iters=2000)
        assert res.iterations.shape == (1, 8)
        assert np.all(res.iterations[res.converged] >= 1)
        assert res.sweeps >= res.iterations.max()

    def test_unit_norm_outputs(self, rng):
        batch = random_symmetric_batch(3, 3, 3, rng=rng)
        res = multistart_sshopm(batch, num_starts=10, alpha=8.0, rng=7, max_iters=2000)
        norms = np.linalg.norm(res.eigenvectors, axis=-1)
        assert np.allclose(norms, 1.0, atol=1e-10)

    def test_max_iter_zero_sweeps(self, rng):
        tensor = random_symmetric_tensor(4, 3, rng=rng)
        res = multistart_sshopm(tensor, num_starts=4, rng=8, max_iters=0)
        assert res.sweeps == 0
        assert not res.converged.any()


class TestInputs:
    def test_single_tensor_promoted_to_batch(self, rng):
        tensor = random_symmetric_tensor(4, 3, rng=rng)
        res = multistart_sshopm(tensor, num_starts=4, rng=9, max_iters=50)
        assert res.num_tensors == 1
        assert res.num_starts == 4

    def test_explicit_starts_normalized(self, rng):
        tensor = random_symmetric_tensor(4, 3, rng=rng)
        starts = np.array([[2.0, 0, 0], [0, 3.0, 0]])
        res = multistart_sshopm(tensor, starts=starts, alpha=5.0, max_iters=500)
        assert res.num_starts == 2

    def test_bad_starts_shape(self, rng):
        tensor = random_symmetric_tensor(4, 3, rng=rng)
        with pytest.raises(ValueError):
            multistart_sshopm(tensor, starts=np.zeros((4, 2)))

    def test_zero_start_rejected(self, rng):
        tensor = random_symmetric_tensor(4, 3, rng=rng)
        with pytest.raises(ValueError):
            multistart_sshopm(tensor, starts=np.zeros((2, 3)))

    def test_unknown_backend(self, rng):
        tensor = random_symmetric_tensor(4, 3, rng=rng)
        with pytest.raises(ValueError):
            multistart_sshopm(tensor, backend="cuda")

    def test_float32_lockstep(self, rng):
        """Paper runs in single precision; driver must support it."""
        tensor = random_symmetric_tensor(4, 3, rng=rng)
        res = multistart_sshopm(tensor, num_starts=8, alpha=10.0, rng=10,
                                dtype=np.float32, tol=1e-5, max_iters=2000)
        assert res.eigenvalues.dtype == np.float32
        assert res.converged.any()

    def test_flop_counter(self, rng):
        tensor = random_symmetric_tensor(4, 3, rng=rng)
        counter = FlopCounter()
        multistart_sshopm(tensor, num_starts=4, rng=11, max_iters=20, counter=counter)
        assert counter.flops > 0
