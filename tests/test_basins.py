"""Tests for basin-of-attraction mapping."""

import numpy as np
import pytest

from repro.core.basins import basin_map, render_basin_map, starts_needed_estimate
from repro.core.sshopm import suggested_shift
from repro.symtensor.random import (
    kolda_mayo_example_3x3x3,
    random_odeco_tensor,
    random_symmetric_tensor,
)


@pytest.fixture(scope="module")
def km_map():
    tensor = kolda_mayo_example_3x3x3()
    return tensor, basin_map(tensor, alpha=suggested_shift(tensor),
                             resolution=300, tol=1e-12, max_iter=4000)


class TestBasinMap:
    def test_structure(self, km_map):
        tensor, bmap = km_map
        assert bmap.starts.shape == (300, 3)
        assert bmap.labels.shape == (300,)
        assert len(bmap.fractions) == len(bmap.pairs)
        assert bmap.coverage > 0.95
        assert np.isclose(bmap.fractions.sum(), 1.0, atol=1e-9)

    def test_known_spectrum_found(self, km_map):
        _, bmap = km_map
        lams = {round(p.eigenvalue, 3) for p in bmap.pairs}
        assert 0.873 in lams
        assert 0.431 in lams

    def test_labels_reference_valid_pairs(self, km_map):
        _, bmap = km_map
        valid = bmap.labels[bmap.labels >= 0]
        assert valid.max() < len(bmap.pairs)

    def test_basins_are_spatially_coherent(self, km_map):
        """Neighbouring starting vectors usually reach the same pair (the
        sphere decomposes into contiguous basins, not noise)."""
        _, bmap = km_map
        starts, labels = bmap.starts, bmap.labels
        same = 0
        total = 0
        for s in range(len(starts)):
            if labels[s] < 0:
                continue
            dots = starts @ starts[s]
            dots[s] = -np.inf
            nb = int(np.argmax(dots))
            if labels[nb] >= 0:
                total += 1
                same += labels[nb] == labels[s]
        assert total > 100
        assert same / total > 0.8

    def test_odeco_basins_centered_on_components(self, rng):
        """Starts close to an odeco component converge to it (for the
        unshifted even-order iteration the components are attracting)."""
        tensor, basis, weights = random_odeco_tensor(4, 3, rng=rng)
        starts = np.concatenate([
            basis + 0.05 * rng.normal(size=basis.shape),
            -(basis + 0.05 * rng.normal(size=basis.shape)),
        ])
        starts /= np.linalg.norm(starts, axis=1, keepdims=True)
        bmap = basin_map(tensor, alpha=0.0, starts=starts, tol=1e-12)
        assert bmap.coverage == 1.0
        for i in range(3):
            lam = bmap.pairs[bmap.labels[i]].eigenvalue
            assert abs(lam - weights[i]) < 1e-6

    def test_non_n3_requires_explicit_starts(self, rng):
        t = random_symmetric_tensor(4, 4, rng=rng)
        with pytest.raises(ValueError):
            basin_map(t, alpha=1.0)


class TestStartsNeeded:
    def test_single_basin(self):
        assert starts_needed_estimate(np.array([1.0])) == 1

    def test_two_equal_basins(self):
        # P(miss one of two half-basins after N) = 2 * 0.5^N <= 0.01 -> N = 8
        assert starts_needed_estimate(np.array([0.5, 0.5]), 0.99) == 8

    def test_small_basin_needs_many(self):
        n_small = starts_needed_estimate(np.array([0.95, 0.05]), 0.99)
        n_even = starts_needed_estimate(np.array([0.5, 0.5]), 0.99)
        assert n_small > n_even

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            starts_needed_estimate(np.array([0.0]))

    def test_km_tensor_needs_modest_starts(self, km_map):
        """For the example tensor, a few dozen random starts suffice with
        99% confidence — context for the paper's choice of V=128."""
        _, bmap = km_map
        needed = starts_needed_estimate(bmap.fractions, 0.99)
        assert 2 <= needed <= 128


class TestRendering:
    def test_render(self, km_map):
        _, bmap = km_map
        art = render_basin_map(bmap, width=40, height=12)
        lines = art.splitlines()
        assert len(lines) == 13  # 12 rows + legend
        assert "lambda=" in lines[-1]
        used = set("".join(lines[:-1]))
        assert used & set("0123")  # multiple basins visible

    def test_render_requires_n3(self, rng):
        t = random_symmetric_tensor(4, 4, rng=rng)
        starts = rng.normal(size=(10, 4))
        starts /= np.linalg.norm(starts, axis=1, keepdims=True)
        bmap = basin_map(t, alpha=suggested_shift(t), starts=starts)
        with pytest.raises(ValueError):
            render_basin_map(bmap)
