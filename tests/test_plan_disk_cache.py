"""Persistent on-disk kernel-plan cache (repro.kernels.diskcache):
round-trips, corrupted-file recovery, schema invalidation, and
concurrent multi-process warm-up."""

import json
import multiprocessing
import os

import numpy as np
import pytest

from repro.instrument.metrics import use_registry
from repro.kernels import diskcache
from repro.kernels.codegen import CODEGEN_VERSION
from repro.kernels.plan import clear_plan_cache, get_plan
from repro.kernels.reference import ax_m1_dense
from repro.kernels.tables import kernel_tables
from repro.symtensor.random import random_symmetric_tensor

M, N, VARIANT = 3, 4, "unrolled_cse"


@pytest.fixture
def cache_dir(tmp_path, monkeypatch):
    """A per-test cache directory (overriding the session-wide one) with
    the in-memory plan cache emptied so disk traffic actually happens."""
    root = tmp_path / "plans"
    monkeypatch.setenv("REPRO_PLAN_CACHE_DIR", str(root))
    clear_plan_cache()
    yield root
    clear_plan_cache()


def _store(m=M, n=N, variant=VARIANT, backend="numpy", **meta):
    return diskcache.store_entry(
        m, n, variant, backend,
        tables=kernel_tables(m, n),
        meta={"effective_backend": backend, "batched": True, "source": "",
              **meta},
    )


def _events(reg):
    counter = reg.counter("repro_plan_disk_cache_events_total",
                          "Persistent kernel-plan cache events by outcome",
                          ("event",))
    return lambda event: counter.labels(event=event).value


class TestRoundTrip:
    def test_store_then_load(self, cache_dir):
        assert _store()
        entry = diskcache.load_entry(M, N, VARIANT, "numpy")
        assert entry is not None
        assert entry["meta"]["m"] == M and entry["meta"]["variant"] == VARIANT
        np.testing.assert_array_equal(entry["tables"].index,
                                      kernel_tables(M, N).index)

    def test_miss_on_absent_entry(self, cache_dir):
        with use_registry() as reg:
            assert diskcache.load_entry(M, N, VARIANT, "numpy") is None
            assert _events(reg)("miss") == 1

    def test_disabled_by_env(self, cache_dir, monkeypatch):
        monkeypatch.setenv("REPRO_PLAN_CACHE", "0")
        assert diskcache.cache_dir() is None
        assert not _store()
        assert diskcache.load_entry(M, N, VARIANT, "numpy") is None
        assert diskcache.cache_info() == {
            "enabled": False, "dir": None, "entries": [], "bytes": 0}

    def test_cache_info_and_clear(self, cache_dir):
        _store()
        info = diskcache.cache_info()
        assert info["enabled"] and len(info["entries"]) == 1
        (entry,) = info["entries"]
        assert entry["valid"] and entry["backend"] == "numpy"
        assert info["bytes"] > 0
        assert diskcache.clear_cache() >= 2  # .json + .npz at least
        assert diskcache.cache_info()["entries"] == []


class TestCorruptionRecovery:
    def test_corrupt_json_is_deleted_not_fatal(self, cache_dir):
        _store()
        key = diskcache.entry_key(M, N, VARIANT, "numpy")
        (cache_dir / f"{key}.json").write_text("{ not json")
        with use_registry() as reg:
            assert diskcache.load_entry(M, N, VARIANT, "numpy") is None
            assert _events(reg)("corrupt") == 1
        assert not (cache_dir / f"{key}.json").exists()
        assert not (cache_dir / f"{key}.npz").exists()

    def test_truncated_npz_is_deleted_not_fatal(self, cache_dir):
        _store()
        key = diskcache.entry_key(M, N, VARIANT, "numpy")
        npz = cache_dir / f"{key}.npz"
        npz.write_bytes(npz.read_bytes()[:20])
        with use_registry() as reg:
            assert diskcache.load_entry(M, N, VARIANT, "numpy") is None
            assert _events(reg)("corrupt") == 1
        assert not npz.exists()

    def test_schema_mismatch_invalidates(self, cache_dir):
        _store()
        key = diskcache.entry_key(M, N, VARIANT, "numpy")
        json_path = cache_dir / f"{key}.json"
        doc = json.loads(json_path.read_text())
        doc["schema"] = "repro-plan-cache/999"
        json_path.write_text(json.dumps(doc))
        with use_registry() as reg:
            assert diskcache.load_entry(M, N, VARIANT, "numpy") is None
            assert _events(reg)("schema_mismatch") == 1
        assert not json_path.exists()

    def test_codegen_version_mismatch_invalidates(self, cache_dir):
        _store()
        key = diskcache.entry_key(M, N, VARIANT, "numpy")
        json_path = cache_dir / f"{key}.json"
        doc = json.loads(json_path.read_text())
        doc["codegen_version"] = CODEGEN_VERSION + 1
        json_path.write_text(json.dumps(doc))
        assert diskcache.load_entry(M, N, VARIANT, "numpy") is None

    def test_get_plan_recovers_and_rewrites(self, cache_dir, rng):
        """A damaged entry must never break solving: the plan is rebuilt
        cold and the disk entry replaced with a fresh valid one."""
        plan = get_plan(M, N, VARIANT, "numpy")
        key = diskcache.entry_key(M, N, VARIANT, "numpy")
        (cache_dir / f"{key}.json").write_text("garbage")
        clear_plan_cache()
        plan = get_plan(M, N, VARIANT, "numpy")
        assert plan.meta["from_disk"] is False
        tensor = random_symmetric_tensor(M, N, rng=rng)
        x = rng.standard_normal(N)
        np.testing.assert_allclose(
            plan.ax_m1(tensor.values[None, :], x[None, :])[0],
            ax_m1_dense(tensor.to_dense(), x), atol=1e-10)
        entry = diskcache.load_entry(M, N, VARIANT, "numpy")
        assert entry is not None  # rewritten on the cold build


def _warm_worker(root, queue):
    """Child-process entry: build one plan against the given cache dir."""
    os.environ["REPRO_PLAN_CACHE_DIR"] = root
    try:
        from repro.kernels.plan import get_plan as child_get_plan

        plan = child_get_plan(M, N, VARIANT, "numpy")
        queue.put(("ok", bool(plan.meta.get("from_disk"))))
    except Exception as exc:  # pragma: no cover - failure reporting
        queue.put(("error", repr(exc)))


class TestCrossProcess:
    def test_second_process_loads_from_disk(self, cache_dir):
        get_plan(M, N, VARIANT, "numpy")  # warm the disk cache
        ctx = multiprocessing.get_context("spawn")
        queue = ctx.Queue()
        proc = ctx.Process(target=_warm_worker, args=(str(cache_dir), queue))
        proc.start()
        status, from_disk = queue.get(timeout=120)
        proc.join(timeout=30)
        assert status == "ok"
        assert from_disk is True

    def test_concurrent_cold_warm_up_races_benignly(self, cache_dir):
        """Several processes building the same entry from cold must all
        succeed (atomic writes: last writer wins, no torn files)."""
        ctx = multiprocessing.get_context("spawn")
        queue = ctx.Queue()
        procs = [ctx.Process(target=_warm_worker,
                             args=(str(cache_dir), queue))
                 for _ in range(3)]
        for p in procs:
            p.start()
        results = [queue.get(timeout=120) for _ in procs]
        for p in procs:
            p.join(timeout=30)
        assert all(status == "ok" for status, _ in results), results
        entry = diskcache.load_entry(M, N, VARIANT, "numpy")
        assert entry is not None
        info = diskcache.cache_info()
        assert all(e["valid"] for e in info["entries"])
