"""Tests for generalized scalar measures (paper reference [5]:
Ozarslan & Mareci trace/variance/anisotropy for higher-order tensors)."""

import numpy as np
import pytest

from repro.mri.measures import (
    generalized_anisotropy,
    generalized_mean_diffusivity,
    generalized_variance,
    measure_batch,
    spherical_mean,
    spherical_mean_quadrature,
    spherical_second_moment,
)
from repro.mri.phantom import make_phantom
from repro.symtensor.random import (
    identity_like_tensor,
    random_symmetric_tensor,
    sum_of_rank_ones,
)
from repro.symtensor.storage import SymmetricTensor


class TestSphericalMoments:
    def test_isotropic_profile(self):
        """E x^4 = 1 on the sphere: mean 1, variance 0, anisotropy 0."""
        t = identity_like_tensor(4, 3)
        assert np.isclose(spherical_mean(t), 1.0)
        assert generalized_variance(t) < 1e-12
        assert generalized_anisotropy(t) < 1e-6

    def test_matrix_case_mean_is_trace_third(self, rng):
        """m=2: E[g^T M g] = trace(M)/3 on the sphere."""
        t = random_symmetric_tensor(2, 3, rng=rng)
        assert np.isclose(spherical_mean(t), np.trace(t.to_dense()) / 3.0)

    def test_matrix_case_variance_closed_form(self):
        """m=2 diagonal: Var[g^T M g] has the classical value (checked
        against dense quadrature)."""
        t = SymmetricTensor.from_dense(np.diag([3.0, 2.0, 1.0]))
        from repro.mri.fit import adc_profile
        from repro.util.rng import fibonacci_sphere

        pts = fibonacci_sphere(20000)
        d = adc_profile(t, pts)
        assert abs(generalized_variance(t) - d.var()) < 1e-3

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_mean_matches_quadrature(self, seed):
        t = random_symmetric_tensor(4, 3, rng=seed)
        assert abs(spherical_mean(t) - spherical_mean_quadrature(t)) < 2e-3

    def test_second_moment_nonnegative_structure(self, rng):
        t = random_symmetric_tensor(4, 3, rng=rng)
        assert spherical_second_moment(t) >= 0.0
        assert generalized_variance(t) >= 0.0

    def test_linearity_of_mean(self, rng):
        a = random_symmetric_tensor(4, 3, rng=rng)
        b = random_symmetric_tensor(4, 3, rng=rng)
        assert np.isclose(
            spherical_mean(a + 2.0 * b),
            spherical_mean(a) + 2.0 * spherical_mean(b),
        )

    def test_rotation_invariance(self, rng):
        """The measures are scalar invariants: rotating the tensor leaves
        them unchanged."""
        from scipy.spatial.transform import Rotation

        t = random_symmetric_tensor(4, 3, rng=rng)
        R = Rotation.random(random_state=3).as_matrix()
        dense = t.to_dense()
        rotated = np.einsum("ia,jb,kc,ld,abcd->ijkl", R, R, R, R, dense)
        t_rot = SymmetricTensor.from_dense(rotated, tol=1e-6)
        assert np.isclose(spherical_mean(t_rot), spherical_mean(t), atol=1e-10)
        assert np.isclose(
            generalized_variance(t_rot), generalized_variance(t), atol=1e-10
        )

    def test_odd_order_rejected(self, rng):
        with pytest.raises(ValueError):
            spherical_mean(random_symmetric_tensor(3, 3, rng=rng))

    def test_non_sphere_rejected(self, rng):
        with pytest.raises(ValueError):
            spherical_mean(random_symmetric_tensor(4, 4, rng=rng))

    def test_zero_tensor_anisotropy_nan(self):
        assert np.isnan(generalized_anisotropy(SymmetricTensor.zeros(4, 3)))


class TestAnisotropyContrast:
    def test_fiber_more_anisotropic_than_isotropic(self):
        fiber = sum_of_rank_ones(np.array([[0.0, 0.0, 1.0]]), np.array([1.0]), m=4)
        iso = identity_like_tensor(4, 3)
        assert generalized_anisotropy(fiber) > generalized_anisotropy(iso) + 0.5

    def test_crossing_less_anisotropic_than_single(self):
        single = sum_of_rank_ones(np.array([[1.0, 0, 0]]), np.array([1.0]), m=4)
        crossing = sum_of_rank_ones(
            np.array([[1.0, 0, 0], [0, 1.0, 0]]), np.array([0.5, 0.5]), m=4
        )
        assert generalized_anisotropy(crossing) < generalized_anisotropy(single)

    def test_scale_invariance_of_anisotropy(self, rng):
        t = random_symmetric_tensor(4, 3, rng=rng)
        assert np.isclose(
            generalized_anisotropy(t), generalized_anisotropy(5.0 * t)
        )

    def test_phantom_map_separates_tissue(self):
        """On the phantom, single-fiber voxels have higher anisotropy than
        crossing voxels — the contrast the reference-[5] measures exist
        to provide."""
        ph = make_phantom(rows=6, cols=4, num_gradients=24, rng=17)
        measures = measure_batch(ph.tensors)
        counts = ph.num_fibers()
        ga = measures["anisotropy"]
        assert np.nanmean(ga[counts == 1]) > np.nanmean(ga[counts == 2])
        assert np.all(measures["mean_diffusivity"] > 0)

    def test_measure_batch_shapes(self):
        ph = make_phantom(rows=2, cols=3, num_gradients=20, rng=18)
        out = measure_batch(ph.tensors)
        assert set(out) == {"mean_diffusivity", "variance", "anisotropy"}
        for v in out.values():
            assert v.shape == (6,)
