"""SS-HOPM — the shifted symmetric higher-order power method (Figure 1).

Kolda & Mayo's generalization of the matrix power method to symmetric
tensor eigenpairs (Definition 3): iterate

    x_{k+1} = normalize( +-(A x_k^{m-1} + alpha x_k) ),
    lambda_{k+1} = A x_{k+1}^m,

with the sign chosen positive for ``alpha >= 0`` (convex case, converges to
attracting eigenpairs that include local *maxima* of ``f(x) = A x^m`` on the
sphere) and negative for ``alpha < 0`` (concave case, local minima).  A
sufficiently large ``|alpha|`` guarantees monotone convergence of the
``lambda_k`` sequence; ``alpha = 0`` recovers the unshifted S-HOPM of
De Lathauwer et al. / Kofidis & Regalia, which the paper uses for its MRI
test set.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.config import SolveConfig, reconcile_max_iters, resolve_option
from repro.instrument import current_recorder, instrumented_pair
from repro.instrument import span as _span
from repro.instrument.metrics import observe_solver_run
from repro.instrument.telemetry import ConvergenceTelemetry, telemetry_enabled
from repro.kernels.dispatch import KernelPair, get_kernels
from repro.resilience.guards import IterationGuard, SolveFailure, resolve_guards
from repro.symtensor.storage import SymmetricTensor
from repro.util.flopcount import FlopCounter, null_counter
from repro.util.rng import random_unit_vector

__all__ = ["SSHOPMResult", "sshopm", "suggested_shift"]


@dataclass
class SSHOPMResult:
    """Outcome of one SS-HOPM run.

    Attributes
    ----------
    eigenvalue : final Rayleigh-like value ``lambda = A x^m``.
    eigenvector : final unit vector ``x``.
    converged : whether ``|lambda_{k+1} - lambda_k| < tol`` was reached.
    iterations : number of iterations performed.
    residual : ``|| A x^{m-1} - lambda x ||_2`` at the final iterate (the
        eigenpair equation defect; small iff (lambda, x) is an eigenpair).
    lambda_history : the full ``lambda_k`` sequence (including the value at
        the starting vector), useful for monotonicity checks.
    telemetry : bounded per-iteration convergence stream
        (:class:`~repro.instrument.telemetry.ConvergenceTelemetry`) when
        telemetry was enabled for the run, else ``None``.
    """

    eigenvalue: float
    eigenvector: np.ndarray
    converged: bool
    iterations: int
    residual: float
    lambda_history: list[float] = field(default_factory=list)
    telemetry: ConvergenceTelemetry | None = None

    def eigenpairs(
        self,
        tensor: SymmetricTensor | None = None,
        lambda_tol: float = 1e-5,
        angle_tol: float = 1e-2,
        classify: bool = False,
    ) -> list:
        """The run's eigenpair as a (zero- or one-element) list, matching
        the :class:`~repro.core.results.ResultProtocol` shape shared with
        the batch solvers.  Unconverged runs yield ``[]``; ``tensor`` is
        needed only for ``classify=True``.
        """
        from repro.core.eigenpairs import dedupe_eigenpairs

        if not self.converged:
            return []
        m = tensor.m if tensor is not None else 0
        return dedupe_eigenpairs(
            np.asarray([self.eigenvalue]),
            self.eigenvector[None, :],
            m,
            tensor=tensor if classify else None,
            lambda_tol=lambda_tol,
            angle_tol=angle_tol,
            classify=classify,
        )


def suggested_shift(tensor: SymmetricTensor) -> float:
    """A shift large enough to guarantee SS-HOPM convergence.

    Kolda & Mayo prove convergence whenever ``alpha > beta(A)`` where
    ``beta(A)`` bounds the largest eigenvalue magnitude of the Hessian of
    ``f(x) = A x^m`` on the unit sphere.  Since the Hessian at unit ``x`` is
    ``m (m-1) A x^{m-2}`` and ``||A x^{m-2}||_2 <= ||A||_F`` for unit ``x``,
    ``alpha = m (m-1) ||A||_F`` is a (conservative) sufficient choice.
    """
    m = tensor.m
    return float(m * (m - 1) * tensor.frobenius_norm())


def sshopm(
    tensor: SymmetricTensor,
    x0: np.ndarray | None = None,
    alpha: float | None = None,
    tol: float | None = None,
    max_iters: int | None = None,
    kernels: KernelPair | str | None = None,
    counter: FlopCounter | None = None,
    rng=None,
    config: SolveConfig | None = None,
    *,
    telemetry: bool | None = None,
    guards=None,
    max_iter: int | None = None,
) -> SSHOPMResult:
    """Run SS-HOPM (Figure 1) from one starting vector.

    Parameters
    ----------
    tensor : symmetric tensor whose eigenpair is sought.
    x0 : starting vector (normalized internally); random if omitted.
    alpha : shift (default 0). ``>= 0`` seeks attracting pairs of the convex
        shifted function (local maxima for large alpha); ``< 0`` the concave
        case.
    tol : convergence threshold on ``|lambda_{k+1} - lambda_k|``
        (default ``1e-12``).
    max_iters : iteration cap (default 500); exceeding it returns
        ``converged=False``.  ``max_iter=`` is the deprecated spelling.
    kernels : a :class:`KernelPair` or variant name (default
        ``"precomputed"``); lets the benchmarks time the same driver over
        every kernel implementation.
    counter : optional flop counter threaded through the run.  When a
        recorder is active (see :mod:`repro.instrument`) kernel-model flops
        are folded into the same stream, so trace totals and counter totals
        agree.
    config : a :class:`~repro.core.config.SolveConfig` supplying defaults
        for any option not passed explicitly.
    telemetry : record the per-iteration convergence stream
        (``lambda``, residual, shift, step norm) on the result.  ``None``
        (the default) enables it exactly when a recorder is active, so the
        untraced hot path stays free of the extra per-iteration norms.
    guards : ``True`` or a :class:`~repro.resilience.guards.GuardConfig`
        raises a structured :class:`~repro.resilience.guards.SolveFailure`
        (carrying the last-good iterate, lambda history, and telemetry)
        on NaN/Inf, a collapsed update, lambda oscillation, or stalled
        progress, instead of the legacy freeze-and-return-unconverged
        behavior (default: off).

    Notes
    -----
    The fixed points for ``alpha >= 0`` satisfy
    ``A x^{m-1} + alpha x = (lambda + alpha) x``, i.e. they are exactly the
    eigenpairs of ``A`` (the shift moves the spectrum, not the eigenvectors).
    A zero iterate ``A x^{m-1} + alpha x = 0`` (possible for small shifts,
    e.g. alpha=0 with x in the kernel of the map) terminates the run
    unconverged at the current iterate.
    """
    max_iters = reconcile_max_iters(max_iters, max_iter)
    alpha = resolve_option("alpha", alpha, config, 0.0)
    tol = resolve_option("tol", tol, config, 1e-12)
    max_iters = resolve_option("max_iters", max_iters, config, 500)
    kernels = resolve_option("kernels", kernels, config, None)
    rng = resolve_option("rng", rng, config, None)
    guards = resolve_guards(resolve_option("guards", guards, config, None))

    recorder = current_recorder()
    counter = counter or null_counter()
    if recorder is not None:
        counter = recorder.flop_counter(mirror=counter)
    if isinstance(kernels, str) or kernels is None:
        kernels = get_kernels(kernels or "precomputed", tensor.m, tensor.n)
    if recorder is not None:
        kernels = instrumented_pair(kernels, counter=counter)
    tel = None
    if telemetry_enabled(telemetry, recorder):
        tel = ConvergenceTelemetry(
            "sshopm",
            meta={"m": tensor.m, "n": tensor.n, "alpha": alpha, "tol": tol},
        )
    if x0 is None:
        x0 = random_unit_vector(tensor.n, rng=rng)
    x = np.asarray(x0, dtype=np.float64)
    if x.shape != (tensor.n,):
        raise ValueError(f"x0 has shape {x.shape}, expected ({tensor.n},)")
    norm = np.linalg.norm(x)
    if norm == 0:
        raise ValueError("starting vector must be nonzero")
    x = x / norm

    guard = None
    if guards is not None:
        guard = IterationGuard(guards, solver="sshopm", tol=tol)

    t0 = time.perf_counter()
    try:
        with _span("sshopm"):
            lam = float(kernels.ax_m(tensor, x))
            history = [lam]
            if guard is not None:
                guard.note_start(lam, x)
            converged = False
            iterations = 0
            for _ in range(max_iters):
                with _span("iteration"):
                    iterations += 1
                    y = np.asarray(kernels.ax_m1(tensor, x))
                    x_new = y + alpha * x
                    if alpha < 0:
                        x_new = -x_new
                    counter.add_flops(2 * tensor.n)
                    norm = np.linalg.norm(x_new)
                    counter.add_flops(2 * tensor.n + 1)
                    if guard is not None:
                        guard.check_update(iterations, float(norm))
                    if norm == 0.0 or not np.isfinite(norm):
                        break
                    x_prev = x
                    x = x_new / norm
                    lam_new = float(kernels.ax_m(tensor, x))
                    history.append(lam_new)
                    if tel is not None:
                        tel.append(
                            iterations, lam_new,
                            residual=float(np.linalg.norm(y - lam * x_prev)),
                            shift=alpha,
                            step_norm=float(np.linalg.norm(x - x_prev)),
                        )
                    if guard is not None:
                        guard.check(iterations, lam_new, x)
                    if abs(lam_new - lam) < tol:
                        lam = lam_new
                        converged = True
                        break
                    lam = lam_new

            residual = float(np.linalg.norm(np.asarray(kernels.ax_m1(tensor, x)) - lam * x))
    except SolveFailure as failure:
        # structured abort: hand the telemetry stream to the failure and
        # still account the (failed) run in the metrics registry
        failure.telemetry = tel
        if tel is not None and recorder is not None:
            recorder.add_telemetry(tel)
        observe_solver_run("sshopm", time.perf_counter() - t0,
                           failure.iteration, 0, 1)
        raise
    if tel is not None:
        tel.append(iterations, lam, residual=residual, shift=alpha,
                   active=0 if converged else 1, force=True)
        if recorder is not None:
            recorder.add_telemetry(tel)
    observe_solver_run("sshopm", time.perf_counter() - t0, iterations,
                       int(converged), 1)
    return SSHOPMResult(
        eigenvalue=lam,
        eigenvector=x,
        converged=converged,
        iterations=iterations,
        residual=residual,
        lambda_history=history,
        telemetry=tel,
    )
