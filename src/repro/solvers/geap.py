"""GEAP — the generalized eigenproblem adaptive power method.

Kolda & Mayo's adaptive-shift method (the line of work behind
arXiv:1007.1267), here with the shift chosen from the **projected**
Hessian each iteration.  The convexity condition that makes an SS-HOPM
step an ascent only involves the Hessian restricted to the tangent space
of the unit sphere at the iterate, so with ``C(x) = (m-1) A x^{m-2}``
and ``P = I - x x^T`` the smallest sufficient shift is

    alpha_k = max(0, tau - lambda_min(P C(x_k) P |_tangent))    (maxima)
    alpha_k = min(0, -(tau + lambda_max(P C(x_k) P |_tangent))) (minima)

The tangent-restricted eigenvalues interlace the full-space ones, so
this shift is never larger than the full-Hessian rule used by
:func:`~repro.solvers.adaptive.adaptive_sshopm` — smaller shifts mean a
larger effective step and faster convergence, while the monotonicity of
``lambda_k`` (nondecreasing for ``mode="max"``, nonincreasing for
``"min"``) is preserved.  ``mode="min"`` is the concave case: it reaches
the local *minima* of ``f(x) = A x^m`` that no convex (``alpha >= 0``)
SS-HOPM run converges to.
"""

from __future__ import annotations

import numpy as np

from repro.core.config import SolveConfig, reconcile_max_iters
from repro.core.eigenpairs import hessian_matrix
from repro.instrument import span as _span
from repro.kernels.dispatch import KernelPair
from repro.resilience.guards import SolveFailure
from repro.solvers.scaffold import prepare, start_vector
from repro.solvers.sshopm import SSHOPMResult
from repro.symtensor.storage import SymmetricTensor

__all__ = ["geap", "projected_shift", "tangent_hessian_eigenvalues"]


def tangent_hessian_eigenvalues(tensor: SymmetricTensor, x: np.ndarray) -> np.ndarray:
    """Ascending eigenvalues of ``C(x) = (m-1) A x^{m-2}`` restricted to
    the tangent space of the unit sphere at ``x``.

    The ``n = 1`` sphere has an empty tangent space; returns an empty
    array there (any shift works).
    """
    x = np.asarray(x, dtype=np.float64)
    if tensor.n == 1:
        return np.empty(0)
    H = hessian_matrix(tensor, x)
    # orthonormal tangent basis: left singular vectors of x beyond the first
    u, _, _ = np.linalg.svd(x.reshape(-1, 1), full_matrices=True)
    tangent = u[:, 1:]
    restricted = tangent.T @ H @ tangent
    restricted = 0.5 * (restricted + restricted.T)
    return np.linalg.eigvalsh(restricted)


def projected_shift(tensor: SymmetricTensor, x: np.ndarray, tau: float,
                    mode: str = "max") -> float:
    """The GEAP shift at iterate ``x`` (see the module docstring)."""
    evals = tangent_hessian_eigenvalues(tensor, x)
    if evals.size == 0:
        return 0.0
    if not np.all(np.isfinite(evals)):
        return float("nan")
    if mode == "max":
        return max(0.0, tau - float(evals[0]))
    return min(0.0, -(tau + float(evals[-1])))


def geap(
    tensor: SymmetricTensor,
    x0: np.ndarray | None = None,
    tau: float = 1e-6,
    mode: str = "max",
    tol: float | None = None,
    max_iters: int | None = None,
    kernels: KernelPair | str | None = None,
    rng=None,
    config: SolveConfig | None = None,
    *,
    telemetry: bool | None = None,
    guards=None,
    stop=None,
    max_iter: int | None = None,
) -> SSHOPMResult:
    """Run GEAP (projected-Hessian adaptive shift) from one start.

    Parameters
    ----------
    tensor : symmetric tensor whose eigenpair is sought.
    tau : convexity margin enforced on the shifted tangent Hessian.
    mode : ``"max"`` seeks local maxima of ``f(x) = A x^m`` (convex
        shifts ``>= 0``), ``"min"`` local minima (concave shifts
        ``<= 0`` — eigenpairs SS-HOPM's convex iteration cannot reach).
    stop : optional zero-argument callable polled once per iteration;
        when truthy the run returns immediately with its current state
        (``converged=False``) — the cancellation hook ``deadline=`` and
        the serve drain ride on.
    Other parameters as in :func:`repro.solvers.sshopm.sshopm`
    (``tol`` default ``1e-12``, ``max_iters`` default 500; ``guards``
    raises a structured :class:`~repro.resilience.guards.SolveFailure`;
    ``max_iter=`` is the deprecated spelling).

    Returns an :class:`~repro.solvers.sshopm.SSHOPMResult`;
    ``lambda_history`` is monotone (up to floating-point noise) in the
    requested direction.
    """
    if mode not in ("max", "min"):
        raise ValueError(f"mode must be 'max' or 'min', got {mode!r}")
    max_iters = reconcile_max_iters(max_iters, max_iter)
    run = prepare(
        "geap", tensor, tol=tol, max_iters=max_iters, kernels=kernels,
        rng=rng, config=config, telemetry=telemetry, guards=guards,
        tel_meta={"mode": mode, "tau": tau},
    )
    kernels, tel, guard = run.kernels, run.telemetry, run.guard
    x = start_vector(x0, tensor.n, run.rng)

    alpha = 0.0
    try:
        with _span("geap"):
            lam = float(kernels.ax_m(tensor, x))
            history = [lam]
            if guard is not None:
                guard.note_start(lam, x)
            converged = False
            iterations = 0
            for _ in range(run.max_iters):
                if stop is not None and stop():
                    break
                with _span("iteration"):
                    iterations += 1
                    with _span("projected_shift"):
                        alpha = projected_shift(tensor, x, tau, mode)
                        if guard is not None and not np.isfinite(alpha):
                            # a NaN Hessian means the iterate went nonfinite
                            guard.check(iterations, float("nan"), x)
                    y = np.asarray(kernels.ax_m1(tensor, x))
                    x_new = y + alpha * x
                    if mode == "min":
                        x_new = -x_new
                    norm = np.linalg.norm(x_new)
                    if guard is not None:
                        guard.check_update(iterations, float(norm))
                    if norm == 0.0 or not np.isfinite(norm):
                        break
                    x_prev = x
                    x = x_new / norm
                    lam_new = float(kernels.ax_m(tensor, x))
                    history.append(lam_new)
                    if tel is not None:
                        tel.append(
                            iterations, lam_new,
                            residual=float(np.linalg.norm(y - lam * x_prev)),
                            shift=alpha,
                            step_norm=float(np.linalg.norm(x - x_prev)),
                        )
                    if guard is not None:
                        guard.check(iterations, lam_new, x)
                    if abs(lam_new - lam) < run.tol:
                        lam = lam_new
                        converged = True
                        break
                    lam = lam_new

            residual = float(np.linalg.norm(
                np.asarray(kernels.ax_m1(tensor, x)) - lam * x))
    except SolveFailure as failure:
        run.record_failure(failure)
        raise
    run.finish(iterations=iterations, converged=converged, lam=lam,
               residual=residual, shift=alpha)
    return SSHOPMResult(
        eigenvalue=lam,
        eigenvector=x,
        converged=converged,
        iterations=iterations,
        residual=residual,
        lambda_history=history,
        telemetry=run.telemetry,
    )
