"""Shared per-iteration scaffolding for the single-tensor solvers.

Every solver in :mod:`repro.solvers` does the same bookkeeping around its
mathematical core: resolve options through the
:class:`~repro.core.config.SolveConfig` chain, wire kernels into the
active recorder, open a telemetry stream, arm the numerical guard, and —
on both success and structured failure — attach telemetry and account
the run in the metrics registry.  :func:`prepare` and :func:`finish` /
:func:`record_failure` centralize that so a new solver (GEAP, QRST, or a
third-party registry entry) is mostly its iteration loop.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.core.config import SolveConfig, resolve_option
from repro.instrument import current_recorder, instrumented_pair
from repro.instrument.metrics import observe_solver_run
from repro.instrument.telemetry import ConvergenceTelemetry, telemetry_enabled
from repro.kernels.dispatch import KernelPair, get_kernels
from repro.resilience.guards import IterationGuard, resolve_guards
from repro.symtensor.storage import SymmetricTensor
from repro.util.rng import random_unit_vector

__all__ = ["SolverScaffold", "prepare", "start_vector"]


@dataclass
class SolverScaffold:
    """Resolved per-run state shared by the single-tensor solver drivers."""

    solver: str
    tensor: SymmetricTensor
    tol: float
    max_iters: int
    kernels: KernelPair
    rng: object
    recorder: object
    telemetry: ConvergenceTelemetry | None
    guard: IterationGuard | None
    t0: float

    def finish(self, *, iterations: int, converged: bool, lam: float,
               residual: float, shift: float | None = None) -> None:
        """Close out a completed run: final telemetry record, hand the
        stream to the recorder, and account the run in the metrics plane."""
        if self.telemetry is not None:
            self.telemetry.append(
                iterations, lam, residual=residual,
                shift=shift if shift is not None else float("nan"),
                active=0 if converged else 1, force=True,
            )
            if self.recorder is not None:
                self.recorder.add_telemetry(self.telemetry)
        observe_solver_run(self.solver, time.perf_counter() - self.t0,
                           iterations, int(converged), 1)

    def record_failure(self, failure) -> None:
        """Attach the telemetry stream to a structured
        :class:`~repro.resilience.guards.SolveFailure` and account the
        (failed) run; the caller re-raises."""
        failure.telemetry = self.telemetry
        if self.telemetry is not None and self.recorder is not None:
            self.recorder.add_telemetry(self.telemetry)
        observe_solver_run(self.solver, time.perf_counter() - self.t0,
                           failure.iteration, 0, 1)


def prepare(
    solver: str,
    tensor: SymmetricTensor,
    *,
    tol: float | None,
    max_iters: int | None,
    kernels: KernelPair | str | None,
    rng,
    config: SolveConfig | None,
    telemetry: bool | None,
    guards,
    tel_meta: dict | None = None,
    tol_default: float = 1e-12,
    max_iters_default: int = 500,
    counter=None,
) -> SolverScaffold:
    """Resolve the shared options and wire up recorder/telemetry/guards."""
    tol = resolve_option("tol", tol, config, tol_default)
    max_iters = resolve_option("max_iters", max_iters, config, max_iters_default)
    kernels = resolve_option("kernels", kernels, config, None)
    rng = resolve_option("rng", rng, config, None)
    guard_cfg = resolve_guards(resolve_option("guards", guards, config, None))

    recorder = current_recorder()
    if isinstance(kernels, str) or kernels is None:
        kernels = get_kernels(kernels or "precomputed", tensor.m, tensor.n)
    if recorder is not None:
        kernels = instrumented_pair(
            kernels, counter=recorder.flop_counter(mirror=counter))
    tel = None
    if telemetry_enabled(telemetry, recorder):
        meta = {"m": tensor.m, "n": tensor.n, "tol": tol}
        meta.update(tel_meta or {})
        tel = ConvergenceTelemetry(solver, meta=meta)
    guard = None
    if guard_cfg is not None:
        guard = IterationGuard(guard_cfg, solver=solver, tol=tol)
    return SolverScaffold(
        solver=solver, tensor=tensor, tol=tol, max_iters=max_iters,
        kernels=kernels, rng=rng, recorder=recorder, telemetry=tel,
        guard=guard, t0=time.perf_counter(),
    )


def start_vector(x0, n: int, rng) -> np.ndarray:
    """Validate/normalize an explicit start, or draw a random unit one."""
    if x0 is None:
        x0 = random_unit_vector(n, rng=rng)
    x = np.asarray(x0, dtype=np.float64)
    if x.shape != (n,):
        raise ValueError(f"x0 has shape {x.shape}, expected ({n},)")
    norm = np.linalg.norm(x)
    if norm == 0:
        raise ValueError("starting vector must be nonzero")
    return x / norm
