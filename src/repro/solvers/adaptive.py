"""Adaptive-shift SS-HOPM (GEAP-style), an extension beyond the paper.

The paper notes "there are still many open problems regarding ... choice of
shift"; Kolda & Mayo's follow-up work (GEAP) resolves the practical side by
choosing the shift *per iteration* from the Hessian at the current iterate.

Derivation of the rule used here: with the shifted function
``f_hat(x) = A x^m + alpha (x.x)^{m/2}``, the Hessian restricted to the
tangent space of the unit sphere at ``x`` is
``m [(m-1) A x^{m-2} + alpha I]``, so local convexity needs
``alpha >= -lambda_min(C(x))`` with ``C(x) = (m-1) A x^{m-2}``.  We take

    alpha_k = max(0, tau - lambda_min(C(x_k)))            (maxima)
    alpha_k = min(0, -(tau + lambda_max(C(x_k))))         (minima)

— the smallest shift (plus margin ``tau``) keeping the step an ascent
(descent), much smaller than the global conservative bound, so convergence
is faster (the paper's Section V-A notes exactly this tradeoff between
convergence guarantees and time-to-completion).
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.config import SolveConfig, reconcile_max_iters, resolve_option
from repro.core.eigenpairs import hessian_matrix
from repro.solvers.sshopm import SSHOPMResult
from repro.instrument import current_recorder, instrumented_pair
from repro.instrument import span as _span
from repro.instrument.metrics import observe_solver_run
from repro.instrument.telemetry import ConvergenceTelemetry, telemetry_enabled
from repro.kernels.dispatch import KernelPair, get_kernels
from repro.resilience.guards import IterationGuard, SolveFailure, resolve_guards
from repro.symtensor.storage import SymmetricTensor
from repro.util.rng import random_unit_vector

__all__ = ["adaptive_sshopm"]


def adaptive_sshopm(
    tensor: SymmetricTensor,
    x0: np.ndarray | None = None,
    tau: float = 1e-6,
    mode: str = "max",
    tol: float | None = None,
    max_iters: int | None = None,
    kernels: KernelPair | str | None = None,
    rng=None,
    config: SolveConfig | None = None,
    *,
    telemetry: bool | None = None,
    guards=None,
    max_iter: int | None = None,
) -> SSHOPMResult:
    """SS-HOPM with the GEAP adaptive shift.

    Parameters
    ----------
    tensor : symmetric tensor (order >= 2... order >= 3 for a nontrivial
        Hessian; m = 2 degenerates to the shifted matrix power method).
    tau : convexity margin (smallest enforced definiteness of the shifted
        Hessian); Kolda & Mayo suggest a small positive constant.
    mode : ``"max"`` seeks local maxima of ``f`` (convex shifts),
        ``"min"`` local minima (concave shifts).
    guards : ``True`` or a :class:`~repro.resilience.guards.GuardConfig`
        raises a structured :class:`~repro.resilience.guards.SolveFailure`
        on NaN/Inf, collapse, oscillation, or stall, as in
        :func:`repro.solvers.sshopm.sshopm` (default: off).
    config : optional :class:`~repro.core.config.SolveConfig`; its
        ``alpha`` field is ignored (the shift is derived per step).
    Other parameters as in :func:`repro.solvers.sshopm.sshopm`
    (``tol`` default ``1e-12``, ``max_iters`` default 500; ``max_iter=`` is
    the deprecated spelling).

    Returns an :class:`SSHOPMResult`; its ``lambda_history`` is monotone
    nondecreasing for ``mode="max"`` (nonincreasing for ``"min"``) up to
    floating-point noise — a property the tests assert.
    """
    if mode not in ("max", "min"):
        raise ValueError(f"mode must be 'max' or 'min', got {mode!r}")
    max_iters = reconcile_max_iters(max_iters, max_iter)
    tol = resolve_option("tol", tol, config, 1e-12)
    max_iters = resolve_option("max_iters", max_iters, config, 500)
    kernels = resolve_option("kernels", kernels, config, None)
    rng = resolve_option("rng", rng, config, None)
    guards = resolve_guards(resolve_option("guards", guards, config, None))

    recorder = current_recorder()
    if isinstance(kernels, str) or kernels is None:
        kernels = get_kernels(kernels or "precomputed", tensor.m, tensor.n)
    if recorder is not None:
        kernels = instrumented_pair(kernels, counter=recorder.flop_counter())
    tel = None
    if telemetry_enabled(telemetry, recorder):
        tel = ConvergenceTelemetry(
            "adaptive_sshopm",
            meta={"m": tensor.m, "n": tensor.n, "mode": mode, "tau": tau,
                  "tol": tol},
        )
    m, n = tensor.m, tensor.n
    if x0 is None:
        x0 = random_unit_vector(n, rng=rng)
    x = np.asarray(x0, dtype=np.float64)
    norm = np.linalg.norm(x)
    if norm == 0:
        raise ValueError("starting vector must be nonzero")
    x = x / norm

    guard = None
    if guards is not None:
        guard = IterationGuard(guards, solver="adaptive_sshopm", tol=tol)

    t0 = time.perf_counter()
    try:
        with _span("adaptive_sshopm"):
            lam = float(kernels.ax_m(tensor, x))
            history = [lam]
            if guard is not None:
                guard.note_start(lam, x)
            converged = False
            iterations = 0
            for _ in range(max_iters):
                with _span("iteration"):
                    iterations += 1
                    with _span("hessian_shift"):
                        H = hessian_matrix(tensor, x)  # (m-1) * A x^{m-2}
                        if guard is not None and not np.all(np.isfinite(H)):
                            # eigvalsh would die with an opaque LinAlgError
                            guard.check(iterations, float("nan"), x)
                        evals = np.linalg.eigvalsh(0.5 * (H + H.T))
                    y = np.asarray(kernels.ax_m1(tensor, x))
                    if mode == "max":
                        alpha = max(0.0, tau - float(evals[0]))
                        x_new = y + alpha * x
                    else:
                        alpha = min(0.0, -(tau + float(evals[-1])))
                        x_new = -(y + alpha * x)
                    norm = np.linalg.norm(x_new)
                    if guard is not None:
                        guard.check_update(iterations, float(norm))
                    if norm == 0.0 or not np.isfinite(norm):
                        break
                    x_prev = x
                    x = x_new / norm
                    lam_new = float(kernels.ax_m(tensor, x))
                    history.append(lam_new)
                    if tel is not None:
                        tel.append(
                            iterations, lam_new,
                            residual=float(np.linalg.norm(y - lam * x_prev)),
                            shift=alpha,
                            step_norm=float(np.linalg.norm(x - x_prev)),
                        )
                    if guard is not None:
                        guard.check(iterations, lam_new, x)
                    if abs(lam_new - lam) < tol:
                        lam = lam_new
                        converged = True
                        break
                    lam = lam_new

            residual = float(np.linalg.norm(np.asarray(kernels.ax_m1(tensor, x)) - lam * x))
    except SolveFailure as failure:
        failure.telemetry = tel
        if tel is not None and recorder is not None:
            recorder.add_telemetry(tel)
        observe_solver_run("adaptive_sshopm", time.perf_counter() - t0,
                           failure.iteration, 0, 1)
        raise
    if tel is not None:
        tel.append(iterations, lam, residual=residual,
                   active=0 if converged else 1, force=True)
        if recorder is not None:
            recorder.add_telemetry(tel)
    observe_solver_run("adaptive_sshopm", time.perf_counter() - t0,
                       iterations, int(converged), 1)
    return SSHOPMResult(
        eigenvalue=lam,
        eigenvector=x,
        converged=converged,
        iterations=iterations,
        residual=residual,
        lambda_history=history,
        telemetry=tel,
    )
