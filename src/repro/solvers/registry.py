"""The solver registry: ``repro.solve(method=...)`` routes through here.

Every eigensolver in the package is a :class:`SolverEntry` registered
under a short method name (``"sshopm"``, ``"geap"``, ``"qrst"``).  The
facade looks the requested method up with :func:`get_solver` and calls
the entry's ``single`` (one tensor) or ``batch`` (a
:class:`~repro.symtensor.storage.SymmetricTensorBatch`) callable;
``method="auto"`` picks a name via :func:`choose_method` first.

Third-party solvers plug in the same way (see ``docs/solvers.md``)::

    from repro.solvers import SolverEntry, register_solver

    register_solver("power2", SolverEntry(
        name="power2", summary="my experimental two-step power method",
        single=my_solver_fn,          # (tensor, **kwargs) -> ResultProtocol
    ))
    report = repro.solve(tensor, method="power2")

Entries must return objects satisfying
:class:`~repro.core.results.ResultProtocol` (``.converged``,
``.telemetry``, ``.eigenpairs()``), which is what every downstream
consumer — dedup, serve rows, the bench harness — reads.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

__all__ = [
    "AUTO_RULES",
    "SolverEntry",
    "UnknownMethodError",
    "available_methods",
    "choose_method",
    "get_solver",
    "register_solver",
]


class UnknownMethodError(ValueError):
    """A ``method=`` name with no registered solver behind it."""

    def __init__(self, name: str):
        super().__init__(
            f"unknown solver method {name!r}; available: "
            + ", ".join(available_methods())
        )
        self.name = name


@dataclass(frozen=True)
class SolverEntry:
    """One routable eigensolver.

    Fields
    ------
    name : registry key, the ``method=`` spelling.
    summary : one line for humans (``repro solve --method help``-style
        listings and docs).
    single : callable solving one :class:`SymmetricTensor`
        (``(tensor, **kwargs) -> ResultProtocol``); ``None`` if the
        solver is batch-only.
    batch : callable solving a whole batch; ``None`` routes batch
        requests through the facade's generic per-tensor fallback for
        custom entries (built-in methods all provide one).
    modes : spectrum targets the solver serves — ``"max"`` (convex /
        local maxima), ``"min"`` (concave / local minima), ``"extreme"``
        (both ends without a mode switch).
    deterministic : the solver does not consume starting vectors (QRST:
        its iteration is seeded by the tensor itself, so ``starts=``
        only sizes the result's eigenpair slots).
    """

    name: str
    summary: str
    single: Callable | None = None
    batch: Callable | None = None
    modes: tuple[str, ...] = ("max",)
    deterministic: bool = False


_REGISTRY: dict[str, SolverEntry] = {}


def register_solver(name: str, entry: SolverEntry, *, replace: bool = False) -> SolverEntry:
    """Register ``entry`` under ``name``; returns the entry.

    Re-registering an existing name raises :class:`ValueError` unless
    ``replace=True`` — accidental shadowing of a built-in solver should
    be loud.
    """
    if not name or not isinstance(name, str):
        raise ValueError(f"solver name must be a non-empty string, got {name!r}")
    if name == "auto":
        raise ValueError("'auto' is the routing pseudo-method and cannot be registered")
    if entry.single is None and entry.batch is None:
        raise ValueError(f"solver {name!r} must provide a single= or batch= callable")
    if name in _REGISTRY and not replace:
        raise ValueError(
            f"solver {name!r} is already registered; pass replace=True to override"
        )
    _REGISTRY[name] = entry
    return entry


def available_methods() -> tuple[str, ...]:
    """Registered method names (sorted), plus the ``"auto"`` router."""
    return tuple(sorted(_REGISTRY)) + ("auto",)


def get_solver(name: str) -> SolverEntry:
    """The entry registered under ``name`` (:class:`UnknownMethodError` if none)."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise UnknownMethodError(name) from None


#: The ``method="auto"`` heuristic table, fed by
#: ``benchmarks/bench_methods.py`` on the 64-tensor reference workload
#: (see ``docs/solvers.md`` for the measured numbers behind each rule).
#: Rules are checked in order; the first hit wins.
AUTO_RULES: tuple[tuple[str, str], ...] = (
    ("batch", "sshopm"),        # fleet lanes amortize kernels across T*V pairs
    ("spectrum=min", "geap"),   # concave mode needs an adaptive negative shift
    ("small-dense", "qrst"),    # one deterministic run sweeps several pairs
    ("default", "sshopm"),
)

#: Dense-size ceiling for the ``small-dense -> qrst`` rule: QRST works on
#: the dense tensor, so it only wins while ``n**m`` stays cache-sized.
AUTO_QRST_DENSE_LIMIT = 4096


def choose_method(
    m: int,
    n: int,
    *,
    batch: bool = False,
    num_starts: int = 1,
    spectrum: str = "max",
) -> str:
    """Resolve ``method="auto"`` by problem shape and spectrum target.

    The rules (in :data:`AUTO_RULES` order):

    1. Batch workloads route to ``sshopm`` — the fleet engine's
       vectorized lanes dominate per-eigenpair wall time there.
    2. ``spectrum="min"`` routes to ``geap`` — its concave mode reaches
       local minima SS-HOPM's convex shift never converges to.
    3. A single tensor whose dense form is small (``n**m`` at most
       :data:`AUTO_QRST_DENSE_LIMIT`) with few requested starts routes
       to ``qrst`` — one deterministic deflation run recovers several
       eigenpairs without a multistart sweep.
    4. Everything else is ``sshopm``.
    """
    if batch:
        return "sshopm"
    if spectrum == "min" and "min" in get_solver("geap").modes:
        return "geap"
    if n ** m <= AUTO_QRST_DENSE_LIMIT and num_starts <= 8:
        return "qrst"
    return "sshopm"
