"""The solver zoo: every eigensolver behind ``repro.solve(method=...)``.

Built-in methods (see ``docs/solvers.md`` for the selection guide):

``sshopm``
    The paper's shifted symmetric higher-order power method — one fixed
    shift, vectorized multistart/fleet/batch execution.  The default.
``geap``
    Adaptive shift from the projected-Hessian eigenvalues each iteration
    (Kolda–Mayo); convex *and* concave modes, so it reaches local minima
    SS-HOPM's convex iteration cannot.
``qrst``
    QR algorithm for symmetric tensors with deflation (Batselier–Wong);
    deterministic, recovers several eigenpairs in one run on small dense
    tensors.
``auto``
    Routing pseudo-method: :func:`~repro.solvers.registry.choose_method`
    picks one of the above from the problem shape and spectrum target.

Third-party solvers register through :func:`register_solver`; the
facade, CLI, and serve plane route through :func:`get_solver`
uniformly.
"""

from __future__ import annotations

from repro.solvers.registry import (
    AUTO_RULES,
    SolverEntry,
    UnknownMethodError,
    available_methods,
    choose_method,
    get_solver,
    register_solver,
)
from repro.solvers.sshopm import SSHOPMResult, sshopm, suggested_shift
from repro.solvers.adaptive import adaptive_sshopm
from repro.solvers.geap import geap, projected_shift
from repro.solvers.qrst import QRST_DENSE_LIMIT, QRSTResult, qrst, qrst_batch

__all__ = [
    "AUTO_RULES",
    "QRST_DENSE_LIMIT",
    "QRSTResult",
    "SSHOPMResult",
    "SolverEntry",
    "UnknownMethodError",
    "adaptive_sshopm",
    "available_methods",
    "choose_method",
    "geap",
    "get_solver",
    "projected_shift",
    "qrst",
    "qrst_batch",
    "register_solver",
    "sshopm",
    "suggested_shift",
]


register_solver("sshopm", SolverEntry(
    name="sshopm",
    summary="fixed-shift symmetric higher-order power method (the paper's "
            "solver); batch requests ride the vectorized fleet engine",
    single=sshopm,
    modes=("max", "min"),
))

register_solver("geap", SolverEntry(
    name="geap",
    summary="adaptive projected-Hessian shift per iteration (Kolda-Mayo "
            "GEAP); convex and concave modes",
    single=geap,
    modes=("max", "min"),
))

register_solver("qrst", SolverEntry(
    name="qrst",
    summary="tensor QR iteration with deflation (Batselier-Wong QRST); "
            "deterministic, several eigenpairs per run, small dense "
            "tensors only",
    single=qrst,
    batch=qrst_batch,
    modes=("extreme",),
    deterministic=True,
))
