"""QRST — a QR algorithm for symmetric tensors, with deflation.

Batselier & Wong's QRST (arXiv:1411.1926) transplants the shifted
matrix-QR iteration to symmetric tensors.  One sweep on the dense tensor
``S`` (order ``m``, dimension ``k``):

1. take the matrix slice ``C[i, j] = S[i, j, k-1, ..., k-1]`` (all
   trailing indices pinned to the last coordinate — the tensor analogue
   of the trailing 2x2 block the matrix algorithm watches),
2. shift by the Rayleigh-quotient corner ``mu = C[-1, -1]`` and factor
   ``Q R = C - mu I``,
3. apply the orthogonal similarity to **every** mode:
   ``S <- S x_1 Q^T x_2 Q^T ... x_m Q^T``, accumulating ``V <- V Q``.

``f(x) = S x^m`` and eigenpair residuals are invariant under such
orthogonal multilinear changes of basis, and for ``m = 2`` the sweep *is*
shifted symmetric QR.  When the fiber ``S[:, k-1, ..., k-1]`` collapses
onto ``e_last`` the pair ``(S[k-1, ..., k-1], V[:, k-1])`` is an
eigenpair of the original tensor; the last coordinate is then deflated
(``S <- S[:-1, ..., :-1]``) and the iteration continues on the smaller
tensor.  Unlike the matrix case tensor deflation is only approximate —
discarded fibers need not be exactly zero — so every recorded pair is
polished against the *original* tensor with
:func:`~repro.core.refine.newton_refine` and flagged converged only when
its true residual passes ``tol``.

QRST is deterministic given the tensor (no starting vectors); the
optional ``rng`` is used only to rotate out of the rare stalled sweep.
It runs on the dense tensor, so it is gated to small ``n**m`` (see
``max_dense``) — exactly the regime where one run recovering several
eigenpairs beats a multistart sweep.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.core.config import SolveConfig, reconcile_max_iters
from repro.core.refine import newton_refine
from repro.instrument import span as _span
from repro.kernels.dispatch import KernelPair
from repro.resilience.guards import SolveFailure
from repro.solvers.scaffold import prepare
from repro.symtensor.storage import SymmetricTensor, SymmetricTensorBatch

__all__ = ["QRST_DENSE_LIMIT", "QRSTResult", "qrst", "qrst_batch"]

#: Default ceiling on ``n**m`` (dense entry count) for one QRST run; the
#: sweep is O(n^{m+1}) per iteration on the dense array, so past this the
#: fleet solvers win anyway.
QRST_DENSE_LIMIT = 1 << 18


@dataclass
class QRSTResult:
    """Outcome of one QRST run: the deflation sequence's eigenpairs.

    Attributes
    ----------
    eigenvalues : ``(k,)`` recovered eigenvalues, in deflation order.
    eigenvectors : ``(k, n)`` matching unit eigenvectors (rows).
    converged : ``(k,)`` bool — pairs whose Newton-polished residual
        against the original tensor passed the tolerance.  Approximate
        deflation can leave a level's candidate short of a true
        eigenpair; it is still reported, flagged unconverged.
    residuals : ``(k,)`` final ``||A x^{m-1} - lambda x||`` per pair.
    iterations : total QR sweeps across all deflation levels.
    sweeps_per_level : sweeps spent at each level, outermost first.
    stopped : the run was cancelled through ``stop=`` before all levels
        deflated (the arrays hold the pairs recovered so far).
    telemetry : per-sweep convergence stream, or ``None``.
    tensor : the solved tensor (kept so :meth:`eigenpairs` can classify
        and dedupe without re-threading it).
    """

    eigenvalues: np.ndarray
    eigenvectors: np.ndarray
    converged: np.ndarray
    residuals: np.ndarray
    iterations: int
    sweeps_per_level: list[int]
    stopped: bool = False
    telemetry: Any = None
    tensor: Any = field(default=None, repr=False)

    def eigenpairs(
        self,
        tensor: SymmetricTensor | None = None,
        lambda_tol: float = 1e-6,
        angle_tol: float = 1e-4,
        classify: bool = False,
    ) -> list:
        """Converged pairs as deduplicated
        :class:`~repro.core.eigenpairs.Eigenpair` objects (the
        :class:`~repro.core.results.ResultProtocol` shape)."""
        from repro.core.eigenpairs import dedupe_eigenpairs

        tensor = tensor if tensor is not None else self.tensor
        m = tensor.m if tensor is not None else 0
        return dedupe_eigenpairs(
            self.eigenvalues,
            self.eigenvectors,
            m,
            tensor=tensor,
            lambda_tol=lambda_tol,
            angle_tol=angle_tol,
            classify=classify,
            converged_mask=self.converged,
        )


def _rotate_all_modes(S: np.ndarray, Q: np.ndarray) -> np.ndarray:
    """``S x_1 Q^T x_2 Q^T ... x_m Q^T`` — each tensordot consumes axis 0
    and appends the rotated mode at the end, so ``m`` applications
    restore the original axis order."""
    for _ in range(S.ndim):
        S = np.tensordot(S, Q, axes=([0], [0]))
    return S


def _last_fiber(S: np.ndarray) -> np.ndarray:
    """The fiber ``S[:, k-1, ..., k-1]`` the convergence test watches."""
    k = S.shape[0]
    return S[(slice(None),) + (k - 1,) * (S.ndim - 1)]


def _corner_slice(S: np.ndarray) -> np.ndarray:
    """The matrix slice ``C[i, j] = S[i, j, k-1, ..., k-1]``."""
    k = S.shape[0]
    return np.array(S[(slice(None), slice(None)) + (k - 1,) * (S.ndim - 2)])


def qrst(
    tensor: SymmetricTensor,
    tol: float | None = None,
    max_iters: int | None = None,
    kernels: KernelPair | str | None = None,
    rng=None,
    config: SolveConfig | None = None,
    *,
    telemetry: bool | None = None,
    guards=None,
    stop=None,
    max_pairs: int | None = None,
    max_dense: int = QRST_DENSE_LIMIT,
    stall_window: int = 25,
    max_iter: int | None = None,
) -> QRSTResult:
    """Run QRST with deflation on one symmetric tensor.

    Parameters
    ----------
    tensor : symmetric tensor; its dense form (``n**m`` entries) must fit
        under ``max_dense`` or :class:`ValueError` is raised.
    tol : acceptance tolerance on each pair's polished residual against
        the original tensor (default ``1e-12``); the per-level sweep
        test uses the same scale on the watched fiber.
    max_iters : QR sweep budget **per deflation level** (default 500).
    max_pairs : stop after recovering this many pairs (default: all
        ``n`` deflation levels).
    stall_window : sweeps without progress on the watched fiber before a
        seeded random rotation restarts the level (``rng`` drives it).
    stop : zero-argument cancellation hook polled once per sweep; a
        truthy value returns the pairs recovered so far
        (``stopped=True``).
    guards : when armed (``True``/GuardConfig), a nonfinite sweep raises
        a structured :class:`~repro.resilience.guards.SolveFailure`
        with ``reason="nonfinite"`` instead of returning garbage.
    Other parameters as in :func:`repro.solvers.sshopm.sshopm`.
    """
    max_iters = reconcile_max_iters(max_iters, max_iter)
    if tensor.n ** tensor.m > max_dense:
        raise ValueError(
            f"qrst works on the dense tensor: n**m = {tensor.n ** tensor.m} "
            f"exceeds max_dense={max_dense}; use method='sshopm' for large "
            "problems"
        )
    run = prepare(
        "qrst", tensor, tol=tol, max_iters=max_iters, kernels=kernels,
        rng=rng, config=config, telemetry=telemetry, guards=guards,
        tel_meta={"deflation": True},
    )
    tel = run.telemetry
    rng = run.rng if isinstance(run.rng, np.random.Generator) \
        else np.random.default_rng(run.rng)

    n, m = tensor.n, tensor.m
    levels = n if max_pairs is None else min(n, int(max_pairs))
    # sweep-level convergence only needs to bring the candidate inside
    # Newton's basin; the polish below supplies the final accuracy.
    sweep_tol = max(run.tol, 1e-10) * max(1.0, tensor.frobenius_norm())

    eigenvalues: list[float] = []
    eigenvectors: list[np.ndarray] = []
    converged: list[bool] = []
    residuals: list[float] = []
    sweeps_per_level: list[int] = []
    total_sweeps = 0
    stopped = False

    try:
        with _span("qrst"):
            S = tensor.to_dense().astype(np.float64, copy=True)
            V = np.eye(n)
            while S.shape[0] > 1 and len(eigenvalues) < levels:
                k = S.shape[0]
                level_sweeps = 0
                best = np.inf
                since_best = 0
                level_converged = False
                while level_sweeps < run.max_iters:
                    if stop is not None and stop():
                        stopped = True
                        break
                    with _span("sweep"):
                        level_sweeps += 1
                        total_sweeps += 1
                        C = _corner_slice(S)
                        C = 0.5 * (C + C.T)
                        mu = float(C[-1, -1])
                        if not np.isfinite(C).all():
                            if run.guard is not None:
                                raise SolveFailure(
                                    "nonfinite",
                                    solver="qrst",
                                    iteration=total_sweeps,
                                    last_lambda=mu,
                                )
                            break
                        Q, _ = np.linalg.qr(C - mu * np.eye(k))
                        S = _rotate_all_modes(S, Q)
                        V[:, :k] = V[:, :k] @ Q
                        fiber = _last_fiber(S)
                        lam = float(fiber[-1])
                        off = float(np.linalg.norm(fiber[:-1]))
                        if tel is not None:
                            tel.append(total_sweeps, lam, residual=off,
                                       active=k)
                        if off < best - 1e-15:
                            best = off
                            since_best = 0
                        else:
                            since_best += 1
                        if off < sweep_tol:
                            level_converged = True
                            break
                        if since_best >= stall_window:
                            # rotate out of the stall with a seeded
                            # random orthogonal basis change
                            Qr, _ = np.linalg.qr(rng.standard_normal((k, k)))
                            S = _rotate_all_modes(S, Qr)
                            V[:, :k] = V[:, :k] @ Qr
                            best = np.inf
                            since_best = 0
                sweeps_per_level.append(level_sweeps)
                if stopped:
                    break
                if not np.isfinite(S).all():
                    break
                # record + polish the level's candidate against the
                # ORIGINAL tensor — deflation error stops here
                lam = float(_last_fiber(S)[-1])
                vec = V[:, k - 1]
                polished = newton_refine(tensor, lam, vec,
                                         tol=max(run.tol, 1e-13))
                ok = bool(polished.converged and level_converged)
                eigenvalues.append(polished.eigenvalue if ok else lam)
                eigenvectors.append(
                    polished.eigenvector if ok else vec / np.linalg.norm(vec))
                converged.append(ok)
                residuals.append(
                    polished.residual if ok else
                    float(np.linalg.norm(
                        np.asarray(run.kernels.ax_m1(tensor, vec)) - lam * vec)))
                S = S[(slice(0, k - 1),) * m]
                if S.shape[0] == 1 and len(eigenvalues) < levels:
                    # the last level is a scalar: its pair is immediate
                    lam = float(S.reshape(-1)[0])
                    vec = V[:, 0]
                    polished = newton_refine(tensor, lam, vec,
                                             tol=max(run.tol, 1e-13))
                    ok = bool(polished.converged)
                    eigenvalues.append(polished.eigenvalue if ok else lam)
                    eigenvectors.append(
                        polished.eigenvector if ok
                        else vec / np.linalg.norm(vec))
                    converged.append(ok)
                    residuals.append(
                        polished.residual if ok else
                        float(np.linalg.norm(
                            np.asarray(run.kernels.ax_m1(tensor, vec))
                            - lam * vec)))
    except SolveFailure as failure:
        run.record_failure(failure)
        raise

    eigenvalues_arr = np.asarray(eigenvalues, dtype=np.float64)
    eigenvectors_arr = (
        np.asarray(eigenvectors, dtype=np.float64)
        if eigenvectors else np.empty((0, n))
    )
    converged_arr = np.asarray(converged, dtype=bool)
    residuals_arr = np.asarray(residuals, dtype=np.float64)
    any_lam = float(eigenvalues_arr[0]) if eigenvalues else float("nan")
    run.finish(
        iterations=total_sweeps,
        converged=bool(len(converged) > 0 and converged_arr.all()
                       and not stopped),
        lam=any_lam,
        residual=float(residuals_arr.min()) if residuals else float("nan"),
    )
    return QRSTResult(
        eigenvalues=eigenvalues_arr,
        eigenvectors=eigenvectors_arr,
        converged=converged_arr,
        residuals=residuals_arr,
        iterations=total_sweeps,
        sweeps_per_level=sweeps_per_level,
        stopped=stopped,
        telemetry=run.telemetry,
        tensor=tensor,
    )


def qrst_batch(
    batch: SymmetricTensorBatch,
    num_starts: int = 8,
    tol: float | None = None,
    max_iters: int | None = None,
    rng=None,
    config: SolveConfig | None = None,
    *,
    telemetry: bool | None = None,
    guards=None,
    stop=None,
    faults=None,
    max_dense: int = QRST_DENSE_LIMIT,
):
    """Run QRST per tensor over a batch, shaped like a fleet solve.

    Returns a :class:`~repro.core.results.FleetResult` whose ``(T, V)``
    lane grid holds each tensor's recovered pairs in its first slots
    (``V = num_starts``; QRST is deterministic, so ``num_starts`` only
    sizes the grid) — unfilled slots are NaN/unconverged, matching the
    placeholder convention of the serve row merger.

    ``faults`` accepts a :class:`~repro.resilience.faults.FaultPlan`
    keyed by **tensor index**: ``on_task_start`` crash budgets and
    ``tensor_for`` corruption apply per tensor; a tensor whose run dies
    (:class:`~repro.resilience.faults.InjectedWorkerCrash` or a guard
    :class:`~repro.resilience.guards.SolveFailure`) is marked failed in
    every slot while the rest of the batch proceeds.
    """
    from repro.core.results import FleetResult
    from repro.resilience.faults import InjectedFault

    T, V, n = len(batch), int(num_starts), batch.n
    eigenvalues = np.full((T, V), np.nan)
    eigenvectors = np.full((T, V, n), np.nan)
    converged = np.zeros((T, V), dtype=bool)
    iterations = np.zeros((T, V), dtype=np.int64)
    failed = np.zeros((T, V), dtype=bool)
    total_sweeps = 0
    stopped = False

    for t in range(T):
        if stopped or (stop is not None and stop()):
            stopped = True
            break
        tensor = batch[t]
        try:
            if faults is not None:
                faults.on_task_start(t)
                tensor = faults.tensor_for(t, tensor)
            result = qrst(
                tensor, tol=tol, max_iters=max_iters, rng=rng,
                config=config, telemetry=telemetry, guards=guards,
                stop=stop, max_pairs=V, max_dense=max_dense,
            )
        except (InjectedFault, SolveFailure):
            failed[t, :] = True
            continue
        total_sweeps = max(total_sweeps, result.iterations)
        stopped = stopped or result.stopped
        k = min(len(result.eigenvalues), V)
        eigenvalues[t, :k] = result.eigenvalues[:k]
        eigenvectors[t, :k] = result.eigenvectors[:k]
        converged[t, :k] = result.converged[:k]
        iterations[t, :k] = result.iterations

    return FleetResult(
        eigenvalues=eigenvalues,
        eigenvectors=eigenvectors,
        converged=converged,
        iterations=iterations,
        sweeps=total_sweeps,
        failed=failed,
        shifts=None,
        telemetry=None,
        variant="qrst",
        stopped=stopped,
        tensors=batch,
    )
