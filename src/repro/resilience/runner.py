"""Fault-tolerant per-start multistart sweeps with checkpoint/resume.

The lockstep driver (:func:`~repro.core.multistart.multistart_sshopm`)
is the fast path; this module is the *durable* path for long sweeps: it
runs each starting vector as an independent task so that

* a start that trips a numerical guard is retried with an escalated
  shift and a fresh vector (:mod:`repro.resilience.retry`);
* a start whose worker task crashes is requeued on a surviving worker,
  up to a bounded budget, with a degraded-mode warning;
* an unrecoverable start is *reported* (``failed_starts``) instead of
  poisoning the sweep;
* completed starts are periodically checkpointed
  (:mod:`repro.resilience.checkpoint`) and a resumed sweep reproduces
  the uninterrupted one bit-for-bit.

Determinism across worker counts and resume points comes from deriving
every random draw from ``SeedSequence`` spawn keys
(:func:`repro.util.rng.spawn_rng`): attempt ``a`` of start ``i`` always
sees the stream ``spawn_rng(seed, i, a)``, no matter which thread runs
it or how many siblings ran first.
"""

from __future__ import annotations

import warnings
from concurrent.futures import FIRST_COMPLETED, ThreadPoolExecutor, wait
from dataclasses import dataclass, field

import numpy as np

from repro.core.config import SolveConfig, resolve_option
from repro.core.eigenpairs import Eigenpair, dedupe_eigenpairs
from repro.solvers.sshopm import sshopm, suggested_shift
from repro.instrument import span as _span
from repro.instrument.log import get_logger
from repro.instrument.metrics import MetricsRegistry, get_registry, use_registry
from repro.kernels.dispatch import KernelPair, get_kernels
from repro.resilience.checkpoint import (
    check_resumable,
    new_checkpoint,
    read_checkpoint,
    tensor_fingerprint,
    write_checkpoint,
)
from repro.resilience.faults import FaultPlan
from repro.resilience.guards import GuardConfig, SolveFailure, resolve_guards
from repro.resilience.retry import RetryPolicy, escalate_shift, run_with_retry
from repro.symtensor.storage import SymmetricTensor
from repro.util.rng import random_unit_vector, spawn_rng

__all__ = ["ResilientSweepResult", "StartReport", "resilient_multistart"]

_log = get_logger("resilience.runner")

# spawn-key namespace for the retry-backoff jitter stream, disjoint from
# the attempt-index keys (which are < RetryPolicy.max_attempts)
_JITTER_KEY = 1 << 20


@dataclass
class StartReport:
    """Outcome of one starting vector, successful or not."""

    index: int
    eigenvalue: float
    eigenvector: np.ndarray
    converged: bool
    iterations: int
    residual: float
    attempts: int
    alpha: float
    requeues: int = 0
    error: str | None = None

    @property
    def ok(self) -> bool:
        return self.error is None

    def to_doc(self) -> dict:
        """JSON-able checkpoint record (floats round-trip exactly)."""
        return {
            "eigenvalue": float(self.eigenvalue),
            "eigenvector": [float(v) for v in np.asarray(self.eigenvector)],
            "converged": bool(self.converged),
            "iterations": int(self.iterations),
            "residual": float(self.residual),
            "attempts": int(self.attempts),
            "alpha": float(self.alpha),
            "requeues": int(self.requeues),
            "error": self.error,
        }

    @classmethod
    def from_doc(cls, index: int, doc: dict) -> "StartReport":
        return cls(
            index=index,
            eigenvalue=float(doc["eigenvalue"]),
            eigenvector=np.asarray(doc["eigenvector"], dtype=np.float64),
            converged=bool(doc["converged"]),
            iterations=int(doc["iterations"]),
            residual=float(doc["residual"]),
            attempts=int(doc["attempts"]),
            alpha=float(doc["alpha"]),
            requeues=int(doc.get("requeues", 0)),
            error=doc.get("error"),
        )


@dataclass
class ResilientSweepResult:
    """A completed (possibly partially failed) resilient sweep."""

    tensor: SymmetricTensor
    num_starts: int
    reports: list[StartReport] = field(default_factory=list)
    resumed: int = 0
    requeues: int = 0
    checkpoint_path: str | None = None

    @property
    def eigenvalues(self) -> np.ndarray:
        return np.array([r.eigenvalue for r in self.reports])

    @property
    def eigenvectors(self) -> np.ndarray:
        return np.stack([np.asarray(r.eigenvector) for r in self.reports])

    @property
    def converged(self) -> np.ndarray:
        return np.array([r.converged for r in self.reports])

    @property
    def failed_starts(self) -> list[int]:
        return [r.index for r in self.reports if not r.ok]

    @property
    def retried_starts(self) -> list[int]:
        return [r.index for r in self.reports if r.attempts > 1]

    @property
    def total_attempts(self) -> int:
        return sum(max(r.attempts, 1) for r in self.reports)

    def eigenpairs(self, lambda_tol: float = 1e-6, angle_tol: float = 1e-4,
                   classify: bool = True) -> list[Eigenpair]:
        """The recoverable spectrum: converged starts deduplicated into
        distinct eigenpairs (failed starts contribute nothing)."""
        keep = self.converged & np.array([r.ok for r in self.reports])
        return dedupe_eigenpairs(
            self.eigenvalues, self.eigenvectors, self.tensor.m,
            tensor=self.tensor, lambda_tol=lambda_tol, angle_tol=angle_tol,
            classify=classify, converged_mask=keep,
        )

    def summary(self) -> str:
        """Human-readable sweep health report (printed by the CLI)."""
        failed = self.failed_starts
        lines = [
            f"starts: {self.num_starts}  converged: {int(self.converged.sum())}"
            f"  failed: {len(failed)}  retried: {len(self.retried_starts)}"
            f"  requeued tasks: {self.requeues}  resumed from checkpoint: "
            f"{self.resumed}",
        ]
        if failed:
            reasons = {}
            for r in self.reports:
                if not r.ok:
                    reasons.setdefault(r.error, []).append(r.index)
            for reason, indices in sorted(reasons.items()):
                shown = ", ".join(str(i) for i in indices[:8])
                more = "" if len(indices) <= 8 else f", … ({len(indices)} total)"
                lines.append(f"  failed [{reason}]: starts {shown}{more}")
        return "\n".join(lines)


def _crash_report(start: int, n: int, exc: BaseException,
                  requeues: int) -> StartReport:
    return StartReport(
        index=start,
        eigenvalue=float("nan"),
        eigenvector=np.zeros(n),
        converged=False,
        iterations=0,
        residual=float("nan"),
        attempts=0,
        alpha=float("nan"),
        requeues=requeues,
        error=f"crash: {type(exc).__name__}: {exc}",
    )


def resilient_multistart(
    tensor: SymmetricTensor,
    num_starts: int | None = None,
    alpha: float | None = None,
    tol: float | None = None,
    max_iters: int | None = None,
    seed: int = 0,
    workers: int = 1,
    kernels: KernelPair | str | None = None,
    retry: RetryPolicy | None = None,
    guards: GuardConfig | bool | None = True,
    checkpoint: str | None = None,
    checkpoint_every: int = 8,
    resume: bool = False,
    max_requeues: int = 2,
    faults: FaultPlan | None = None,
    config: SolveConfig | None = None,
    checkpoint_source: dict | None = None,
) -> ResilientSweepResult:
    """Run ``num_starts`` independent SS-HOPM starts, surviving partial
    failure.

    Parameters
    ----------
    tensor : the symmetric tensor to sweep.
    num_starts : starting vectors (default 64).
    alpha, tol, max_iters : per-start SS-HOPM options (defaults 0.0 /
        1e-12 / 500; ``config`` supplies any not passed).
    seed : root seed; every attempt's randomness is
        ``spawn_rng(seed, start, attempt)``, making results independent
        of ``workers`` and of resume points.
    workers : worker threads running starts concurrently.
    retry : per-start :class:`~repro.resilience.retry.RetryPolicy`
        (default: 3 attempts, shift escalation, no sleeping).
    guards : numerical guards for each attempt (default on — this is the
        resilient driver).
    checkpoint : path for periodic ``repro-ckpt/1`` checkpoints
        (``None`` disables checkpointing).
    checkpoint_every : write after this many newly completed starts.
    resume : load ``checkpoint`` first and skip its completed starts;
        the checkpoint must match this sweep's tensor and parameters.
    max_requeues : how many times a crashed worker task is rescheduled
        before the start is reported as failed.
    faults : optional :class:`~repro.resilience.faults.FaultPlan` (chaos
        testing only).
    checkpoint_source : free-form metadata stored in the checkpoint so
        ``repro solve --resume`` can rebuild the tensor.

    Returns a :class:`ResilientSweepResult`; it never raises for
    individual start failures (see ``failed_starts`` / ``summary()``),
    only for misuse (bad arguments, unresumable checkpoint).
    """
    num_starts = resolve_option("num_starts", num_starts, config, 64)
    alpha = resolve_option("alpha", alpha, config, 0.0)
    tol = resolve_option("tol", tol, config, 1e-12)
    max_iters = resolve_option("max_iters", max_iters, config, 500)
    kernels = resolve_option("kernels", kernels, config, None)
    retry = resolve_option("retry", retry, config, None) or RetryPolicy()
    guard_cfg = resolve_guards(resolve_option("guards", guards, config, True))
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    if num_starts < 1:
        raise ValueError(f"num_starts must be >= 1, got {num_starts}")
    if checkpoint_every < 1:
        raise ValueError(f"checkpoint_every must be >= 1, got {checkpoint_every}")
    if resume and checkpoint is None:
        raise ValueError("resume=True requires a checkpoint path")

    m, n = tensor.m, tensor.n
    if isinstance(kernels, str) or kernels is None:
        pair = get_kernels(kernels or "precomputed", m, n)
    else:
        pair = kernels
    safe_shift = suggested_shift(tensor)
    fingerprint = tensor_fingerprint(tensor)

    completed: dict[int, StartReport] = {}
    state = new_checkpoint(
        fingerprint=fingerprint, num_starts=num_starts, seed=seed,
        alpha=alpha, tol=tol, max_iters=max_iters, source=checkpoint_source,
    )
    resumed = 0
    if resume:
        state = read_checkpoint(checkpoint)
        check_resumable(state, fingerprint=fingerprint, num_starts=num_starts,
                        seed=seed, alpha=alpha, tol=tol, max_iters=max_iters)
        for key, doc in state["starts"].items():
            index = int(key)
            if 0 <= index < num_starts:
                completed[index] = StartReport.from_doc(index, doc)
        resumed = len(completed)

    def run_start(start: int) -> tuple[StartReport, MetricsRegistry]:
        # per-task registry: no cross-thread lock traffic; merged below.
        # InjectedWorkerCrash (and any unexpected bug) escapes to the
        # requeue logic in the collector loop.
        reg = MetricsRegistry()
        with use_registry(reg):
            if faults is not None:
                faults.on_task_start(start)
            tensor_i = faults.tensor_for(start, tensor) if faults is not None else tensor

            def attempt(a: int):
                x0_key = a if retry.fresh_start else 0
                x0 = random_unit_vector(n, rng=spawn_rng(seed, start, x0_key))
                alpha_a = escalate_shift(alpha, a, safe_shift)
                # SS-HOPM's convergence rate degrades ~linearly in |alpha|
                # (the paper's shift-vs-speed tradeoff), so an escalated
                # retry gets a proportionally larger iteration budget
                iters_a = max_iters if a == 0 else int(
                    max_iters * retry.shift_growth ** (a - 1) * 2)
                pair_a = pair
                if faults is not None:
                    pair_a = faults.wrap_kernels(start, a, pair)
                res = sshopm(
                    tensor_i, x0=x0, alpha=alpha_a, tol=tol,
                    max_iters=iters_a, kernels=pair_a, guards=guard_cfg,
                    telemetry=False,
                )
                return res, alpha_a

            try:
                outcome = run_with_retry(
                    attempt, retry, solver="sshopm",
                    rng=spawn_rng(seed, start, _JITTER_KEY),
                )
            except SolveFailure as failure:
                reg.counter(
                    "repro_starts_failed_total",
                    "Sweep starts whose retry budget was exhausted",
                ).inc()
                report = StartReport(
                    index=start,
                    eigenvalue=failure.last_lambda,
                    eigenvector=(failure.last_iterate
                                 if failure.last_iterate is not None
                                 else np.zeros(n)),
                    converged=False,
                    iterations=failure.iteration,
                    residual=float("nan"),
                    attempts=getattr(failure, "attempts", 1),
                    alpha=alpha,
                    error=failure.reason,
                )
            else:
                res, alpha_used = outcome.result
                if outcome.attempts > 1:
                    reg.counter(
                        "repro_starts_recovered_total",
                        "Sweep starts that succeeded only after retries",
                    ).inc()
                report = StartReport(
                    index=start,
                    eigenvalue=res.eigenvalue,
                    eigenvector=res.eigenvector,
                    converged=res.converged,
                    iterations=res.iterations,
                    residual=res.residual,
                    attempts=outcome.attempts,
                    alpha=alpha_used,
                )
        return report, reg

    pending = [s for s in range(num_starts) if s not in completed]
    caller_reg = get_registry()
    requeue_counts: dict[int, int] = {}
    total_requeues = 0
    warned_degraded = False
    since_save = 0

    def record(report: StartReport, reg: MetricsRegistry | None) -> None:
        nonlocal since_save
        completed[report.index] = report
        state["starts"][str(report.index)] = report.to_doc()
        if reg is not None:
            caller_reg.merge(reg)
        since_save += 1
        if checkpoint is not None and since_save >= checkpoint_every:
            write_checkpoint(checkpoint, state)
            since_save = 0

    with _span("resilient_multistart"):
        if pending:
            with ThreadPoolExecutor(max_workers=min(workers, len(pending))) as pool:
                futures = {pool.submit(run_start, s): s for s in pending}
                while futures:
                    done, _ = wait(futures, return_when=FIRST_COMPLETED)
                    for fut in done:
                        start = futures.pop(fut)
                        try:
                            report, reg = fut.result()
                        except BaseException as exc:
                            count = requeue_counts.get(start, 0) + 1
                            requeue_counts[start] = count
                            if not warned_degraded:
                                warned_degraded = True
                                warnings.warn(
                                    f"sweep task for start {start} crashed "
                                    f"({type(exc).__name__}: {exc}); requeueing "
                                    f"— running in degraded mode",
                                    RuntimeWarning,
                                    stacklevel=2,
                                )
                            _log.warning(
                                "sweep task crashed",
                                fields={
                                    "start": start, "attempt": count,
                                    "error": f"{type(exc).__name__}: {exc}",
                                })
                            if count <= max_requeues:
                                total_requeues += 1
                                caller_reg.counter(
                                    "repro_requeues_total",
                                    "Crashed sweep tasks rescheduled on a "
                                    "surviving worker",
                                ).inc()
                                futures[pool.submit(run_start, start)] = start
                                continue
                            caller_reg.counter(
                                "repro_starts_failed_total",
                                "Sweep starts whose retry budget was exhausted",
                            ).inc()
                            report, reg = _crash_report(start, n, exc,
                                                        count - 1), None
                        if report.requeues == 0:
                            report.requeues = requeue_counts.get(start, 0)
                        record(report, reg)
        if checkpoint is not None and (since_save > 0 or not pending):
            write_checkpoint(checkpoint, state)

    reports = [completed[s] for s in sorted(completed)]
    result = ResilientSweepResult(
        tensor=tensor,
        num_starts=num_starts,
        reports=reports,
        resumed=resumed,
        requeues=total_requeues,
        checkpoint_path=checkpoint,
    )
    caller_reg.gauge(
        "repro_sweep_failed_starts",
        "Failed starts in the most recent resilient sweep",
    ).set(len(result.failed_starts))
    return result
