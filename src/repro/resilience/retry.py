"""Per-start retry with shift escalation and jittered backoff.

A start that trips a numerical guard is usually recoverable: SS-HOPM is
guaranteed to converge once the shift exceeds the conservative bound
(:func:`~repro.core.sshopm.suggested_shift`), and a fresh starting
vector escapes degenerate basins.  :func:`run_with_retry` re-runs a
failed attempt with an escalated shift and (optionally) a fresh start
vector, up to a bounded attempt budget, sleeping an exponentially
growing, jittered delay between attempts, and records every attempt to
the active metrics registry.

The jitter is drawn from a seeded generator so a retried sweep is still
bit-for-bit reproducible; backoff defaults to 0 seconds because the
in-process failure modes here are deterministic (the knob exists for
callers wrapping flaky external resources).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.resilience.guards import SolveFailure

__all__ = ["RetryExhausted", "RetryOutcome", "RetryPolicy", "escalate_shift",
           "run_with_retry"]


@dataclass(frozen=True)
class RetryPolicy:
    """How to re-run a failed start.

    Fields
    ------
    max_attempts : total attempt budget per start (1 = no retries).
    shift_growth : multiplicative shift escalation per retry; retry ``k``
        runs with ``escalate_shift(alpha, k, ...)``.
    fresh_start : draw a new starting vector per retry (from the
        attempt's own child RNG stream) instead of reusing the failed one.
    backoff_base : first retry delay in seconds (0 disables sleeping).
    backoff_factor : delay multiplier per subsequent retry.
    backoff_jitter : uniform jitter fraction added to each delay
        (``delay * (1 + U[0, jitter])``), decorrelating retry storms.
    retry_on : failure reasons eligible for retry; anything else
        re-raises immediately.
    """

    max_attempts: int = 3
    shift_growth: float = 3.0
    fresh_start: bool = True
    backoff_base: float = 0.0
    backoff_factor: float = 2.0
    backoff_jitter: float = 0.5
    retry_on: tuple[str, ...] = (
        "nonfinite", "collapse", "oscillation", "stall", "injected",
    )

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.shift_growth < 1.0:
            raise ValueError(f"shift_growth must be >= 1, got {self.shift_growth}")
        if self.backoff_base < 0 or self.backoff_jitter < 0:
            raise ValueError("backoff_base and backoff_jitter must be >= 0")

    def backoff_seconds(self, retry_index: int, rng: np.random.Generator) -> float:
        """Delay before retry ``retry_index`` (0-based), jittered."""
        if self.backoff_base <= 0:
            return 0.0
        base = self.backoff_base * self.backoff_factor**retry_index
        return base * (1.0 + self.backoff_jitter * float(rng.uniform()))


@dataclass
class RetryOutcome:
    """A successful result plus how hard it was to get."""

    result: object
    attempts: int
    failures: list[SolveFailure]


class RetryExhausted(SolveFailure):
    """Every attempt of a start failed; carries the final failure's state
    plus the attempt count and the per-attempt failure list."""

    def __init__(self, last: SolveFailure, attempts: int,
                 failures: list[SolveFailure]):
        super().__init__(
            last.reason,
            f"{last.solver or 'solver'}: {attempts} attempt(s) exhausted; "
            f"last failure: {last.reason}",
            solver=last.solver,
            iteration=last.iteration,
            last_lambda=last.last_lambda,
            last_iterate=last.last_iterate,
            lambda_history=last.lambda_history,
            telemetry=last.telemetry,
            details=last.details,
        )
        self.attempts = attempts
        self.failures = failures


def escalate_shift(alpha: float, attempt: int, safe_shift: float | None = None) -> float:
    """The shift for attempt ``attempt`` (0-based), escalating toward and
    beyond the provably convergent value.

    Attempt 0 uses ``alpha`` unchanged.  Retries jump to at least
    ``safe_shift`` (pass :func:`~repro.core.sshopm.suggested_shift` of
    the tensor; defaults to 1.0) and grow by ``3**k`` from there,
    preserving the sign of ``alpha`` (a negative shift seeks minima; its
    escalation stays concave).
    """
    if attempt <= 0:
        return alpha
    sign = -1.0 if alpha < 0 else 1.0
    floor = abs(safe_shift) if safe_shift else 1.0
    magnitude = max(abs(alpha), floor) * 3.0 ** (attempt - 1)
    return sign * magnitude


def _record_attempt(solver: str, reason: str) -> None:
    from repro.instrument.metrics import get_registry

    get_registry().counter(
        "repro_retry_attempts_total",
        "Solver attempts that failed and were retried",
        ("solver", "reason"),
    ).labels(solver=solver, reason=reason).inc()


def run_with_retry(
    attempt_fn: Callable[[int], object],
    policy: RetryPolicy | None = None,
    *,
    solver: str = "solver",
    rng: np.random.Generator | int | None = None,
    sleep: Callable[[float], None] = time.sleep,
) -> RetryOutcome:
    """Call ``attempt_fn(attempt_index)`` until it succeeds or the budget
    is exhausted.

    ``attempt_fn`` is responsible for applying the escalated shift /
    fresh start vector for its attempt index (see
    :func:`escalate_shift`).  :class:`SolveFailure` triggers a retry when
    its reason is in ``policy.retry_on``; every failed attempt increments
    ``repro_retry_attempts_total{solver=,reason=}``.  On exhaustion a
    :class:`RetryExhausted` (itself a :class:`SolveFailure`) is raised.
    """
    policy = policy or RetryPolicy()
    jitter_rng = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
    failures: list[SolveFailure] = []
    for attempt in range(policy.max_attempts):
        try:
            result = attempt_fn(attempt)
        except SolveFailure as failure:
            failures.append(failure)
            _record_attempt(solver or failure.solver, failure.reason)
            last = attempt == policy.max_attempts - 1
            if last or failure.reason not in policy.retry_on:
                raise RetryExhausted(failure, attempt + 1, failures) from failure
            delay = policy.backoff_seconds(attempt, jitter_rng)
            if delay > 0:
                sleep(delay)
        else:
            return RetryOutcome(result=result, attempts=attempt + 1,
                                failures=failures)
    raise AssertionError("unreachable")  # pragma: no cover
