"""Checkpoint retention: newest-first pruning of ``repro-ckpt/1`` files.

A long-running serve/resume loop writes one checkpoint per job; without
retention the checkpoint directory grows forever.  ``prune_checkpoints``
keeps the ``keep`` newest checkpoint files and deletes the rest — and
*only* files it can positively identify as repro checkpoints (JSON whose
``schema`` starts with ``repro-ckpt/``), so drain manifests, foreign
files, and anything unreadable are never touched.  Deletion is
best-effort per file: a race with another pruner (the file vanishing
underneath us) is not an error.

Exposed on the CLI as ``repro ckpt gc`` and wired into ``repro serve
--keep N`` after every completed job.
"""

from __future__ import annotations

import json
from pathlib import Path

__all__ = ["list_checkpoints", "prune_checkpoints"]


def _is_checkpoint(path: Path) -> bool:
    """Positively identify a repro checkpoint without fully validating it
    (pruning must work on old schema revisions too)."""
    try:
        with path.open() as fh:
            doc = json.load(fh)
    except (OSError, json.JSONDecodeError, UnicodeDecodeError):
        return False
    return (isinstance(doc, dict)
            and str(doc.get("schema", "")).startswith("repro-ckpt/"))


def list_checkpoints(directory) -> list[Path]:
    """Checkpoint files in ``directory``, newest first (by mtime, path
    as the deterministic tie-break)."""
    directory = Path(directory)
    if not directory.is_dir():
        return []
    found = [p for p in directory.glob("*.json")
             if p.is_file() and _is_checkpoint(p)]
    return sorted(found,
                  key=lambda p: (p.stat().st_mtime, str(p)), reverse=True)


def prune_checkpoints(directory, *, keep: int, exclude=(),
                      dry_run: bool = False) -> list[Path]:
    """Delete all but the ``keep`` newest checkpoints in ``directory``.

    ``exclude`` paths (e.g. the checkpoint of a job still in flight) are
    never deleted and do not count against ``keep``.  Returns the paths
    pruned (or, with ``dry_run``, the paths that *would* be pruned).
    """
    if keep < 0:
        raise ValueError(f"keep must be >= 0, got {keep}")
    excluded = {Path(p).resolve() for p in exclude}
    candidates = [p for p in list_checkpoints(directory)
                  if p.resolve() not in excluded]
    victims = candidates[keep:]
    pruned = []
    for path in victims:
        if not dry_run:
            try:
                path.unlink()
            except FileNotFoundError:
                continue  # another pruner won the race; same outcome
        pruned.append(path)
    return pruned
