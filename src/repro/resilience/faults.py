"""Deterministic fault injection for chaos-testing the solve pipeline.

Resilience claims are only as good as the failure paths actually
exercised.  :class:`FaultPlan` schedules four seeded, reproducible
degradations against a sweep:

* **NaN kernel payloads** — a kernel application returns NaN for chosen
  (start, attempt) pairs, exactly what an out-of-range shift or a device
  memory fault produces; the numerical guards must catch it.
* **worker crashes** — a task raises :class:`InjectedWorkerCrash` the
  first ``k`` times it is scheduled; the hardened executor must requeue
  the work on a surviving worker.
* **corrupted tensor entries** — seeded NaN corruption of a start's view
  of the tensor (all attempts — an unrecoverable input fault); the sweep
  must report the start as failed instead of poisoning the rest.
* **slow tasks** — an injected sleep, for exercising timeout guards.

Everything is keyed by explicit indices plus the plan's seed, so a chaos
test runs the same way every time (``tests/test_chaos.py`` pins the seed
via ``REPRO_CHAOS_SEED``).
"""

from __future__ import annotations

import threading
import time
from typing import Mapping

import numpy as np

from repro.kernels.dispatch import KernelPair
from repro.symtensor.storage import SymmetricTensor
from repro.util.rng import spawn_rng

__all__ = [
    "FaultPlan",
    "InjectedFault",
    "InjectedWorkerCrash",
    "corrupt_tensor",
    "nan_injecting_pair",
]


class InjectedFault(RuntimeError):
    """Base class for harness-injected failures."""


class InjectedWorkerCrash(InjectedFault):
    """A forced worker-task exception (simulates a died/killed worker)."""


def corrupt_tensor(tensor: SymmetricTensor, entries: int,
                   rng: np.random.Generator) -> SymmetricTensor:
    """A copy of ``tensor`` with ``entries`` seeded unique values replaced
    by NaN (an input-data fault: bad load, bit rot, upstream bug)."""
    bad = tensor.copy()
    count = min(int(entries), bad.num_unique)
    idx = rng.choice(bad.num_unique, size=count, replace=False)
    bad.values[idx] = np.nan
    return bad


def nan_injecting_pair(pair: KernelPair) -> KernelPair:
    """A kernel pair whose every application returns NaN payloads of the
    correct shape — the guard layer must convert this into a structured
    failure, never a silent garbage result."""

    def ax_m(tensor, x):
        pair.ax_m(tensor, x)  # keep the real cost; discard the value
        return float("nan")

    def ax_m1(tensor, x):
        y = np.asarray(pair.ax_m1(tensor, x))
        return np.full_like(y, np.nan)

    return KernelPair(name=f"{pair.name}+nan", ax_m=ax_m, ax_m1=ax_m1)


class FaultPlan:
    """A seeded schedule of failures for one sweep.

    Parameters
    ----------
    seed : root seed for every random choice the plan makes (which tensor
        entries to corrupt), so runs are reproducible.
    nan_kernel : mapping ``start -> iterable of attempt indices`` whose
        kernel outputs are replaced by NaN (e.g. ``{3: (0,)}`` breaks
        start 3's first attempt only — the retry must recover it).
    crashes : mapping ``start -> number of executions to kill`` (each
        scheduled execution raises :class:`InjectedWorkerCrash` until the
        budget is spent — the requeue path must recover it).
    corrupt : mapping ``start -> number of tensor entries to NaN`` for
        that start's view of the tensor, every attempt (unrecoverable).
    slow : mapping ``start -> seconds`` of injected sleep per execution.
    """

    def __init__(
        self,
        seed: int = 0,
        *,
        nan_kernel: Mapping[int, object] | None = None,
        crashes: Mapping[int, int] | None = None,
        corrupt: Mapping[int, int] | None = None,
        slow: Mapping[int, float] | None = None,
    ):
        self.seed = int(seed)
        self.nan_kernel = {
            int(s): frozenset(int(a) for a in attempts)
            for s, attempts in (nan_kernel or {}).items()
        }
        self.crashes = {int(s): int(k) for s, k in (crashes or {}).items()}
        self.corrupt = {int(s): int(k) for s, k in (corrupt or {}).items()}
        self.slow = {int(s): float(sec) for s, sec in (slow or {}).items()}
        self._crash_counts: dict[int, int] = {}
        self._lock = threading.Lock()

    # -- hooks the runner / executor call ------------------------------------

    def on_task_start(self, start: int) -> None:
        """Called once per scheduled execution of ``start``: applies the
        slow-task delay, then the crash budget (thread-safe)."""
        delay = self.slow.get(start, 0.0)
        if delay > 0:
            time.sleep(delay)
        budget = self.crashes.get(start, 0)
        if budget:
            with self._lock:
                used = self._crash_counts.get(start, 0)
                if used < budget:
                    self._crash_counts[start] = used + 1
                    raise InjectedWorkerCrash(
                        f"injected worker crash for start {start} "
                        f"({used + 1}/{budget})"
                    )

    def tensor_for(self, start: int, tensor: SymmetricTensor) -> SymmetricTensor:
        """The tensor this start should see (corrupted copy when scheduled)."""
        entries = self.corrupt.get(start, 0)
        if not entries:
            return tensor
        return corrupt_tensor(tensor, entries, spawn_rng(self.seed, start))

    def wrap_kernels(self, start: int, attempt: int,
                     pair: KernelPair) -> KernelPair:
        """NaN-injecting clone of ``pair`` when (start, attempt) is
        scheduled, else ``pair`` unchanged."""
        if attempt in self.nan_kernel.get(start, frozenset()):
            return nan_injecting_pair(pair)
        return pair

    def executor_hook(self, crash_chunks: Mapping[int, int] | None = None):
        """A ``(chunk_index, attempt) -> None`` callable for the parallel
        executor's ``inject=`` parameter: raises
        :class:`InjectedWorkerCrash` for each chunk until its budget is
        spent.  ``crash_chunks`` defaults to this plan's ``crashes``
        mapping reinterpreted over chunk indices."""
        budgets = dict(crash_chunks if crash_chunks is not None else self.crashes)

        def inject(chunk_index: int, attempt: int) -> None:
            if budgets.get(chunk_index, 0) > attempt:
                raise InjectedWorkerCrash(
                    f"injected crash for chunk {chunk_index} "
                    f"(attempt {attempt})"
                )

        return inject
