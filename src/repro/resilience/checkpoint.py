"""Schema-versioned, atomically written sweep checkpoints.

A long multistart sweep (the paper's V=128 starting vectors, scaled up)
should survive interruption: the resilient runner periodically writes a
``repro-ckpt/1`` JSON document of every completed start plus the sweep's
RNG root, and ``repro solve --resume <ckpt>`` skips the finished starts.
Because per-start randomness is derived from ``SeedSequence`` spawn keys
(:func:`repro.util.rng.spawn_rng`), a resumed sweep is bit-for-bit
identical to an uninterrupted one regardless of where it was cut.

Writes are atomic (temp file in the same directory + ``os.replace``) so
a crash mid-write leaves the previous checkpoint intact, never a
truncated file.  Reads validate size, JSON shape, schema version, and
required keys with specific error messages.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path

import numpy as np

__all__ = [
    "CKPT_SCHEMA",
    "MAX_CHECKPOINT_BYTES",
    "atomic_write_json",
    "new_checkpoint",
    "read_checkpoint",
    "tensor_fingerprint",
    "write_checkpoint",
]

CKPT_SCHEMA = "repro-ckpt/1"

# A checkpoint is eigenpairs + bookkeeping, a few KB per start; anything
# beyond this is corrupt or hostile, not a sweep state.
MAX_CHECKPOINT_BYTES = 64 * 1024 * 1024


def tensor_fingerprint(tensor) -> str:
    """Stable identity of a tensor's exact contents: sha256 over shape
    and the raw float64 unique-value bytes."""
    values = np.ascontiguousarray(np.asarray(tensor.values, dtype=np.float64))
    digest = hashlib.sha256()
    digest.update(f"m={tensor.m};n={tensor.n};".encode())
    digest.update(values.tobytes())
    return digest.hexdigest()


def atomic_write_json(path, doc: dict) -> Path:
    """Write ``doc`` as JSON via temp-file-then-rename in ``path``'s
    directory, so readers never observe a partial file."""
    path = Path(path)
    fd, tmp_name = tempfile.mkstemp(
        prefix=path.name + ".", suffix=".tmp", dir=path.parent or "."
    )
    try:
        with os.fdopen(fd, "w") as fh:
            json.dump(doc, fh, indent=1)
            fh.write("\n")
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    return path


def new_checkpoint(
    *,
    fingerprint: str,
    num_starts: int,
    seed: int,
    alpha: float,
    tol: float,
    max_iters: int,
    source: dict | None = None,
) -> dict:
    """A fresh checkpoint document for a sweep with no completed starts.

    ``source`` is free-form caller metadata describing how to rebuild the
    tensor (the CLI stores ``{"kind": "random", "m": ..., ...}`` or a
    file path) so ``--resume`` needs no other arguments.

    The ``run`` section also carries provenance (``run_id``, ``host``,
    ``version``) correlating the checkpoint with the event stream and
    trace of the run that wrote it; :func:`check_resumable` compares only
    the named solver parameters, so resuming on another host still works.
    """
    from repro.instrument.events import current_spool, new_run_id, provenance

    spool = current_spool()
    return {
        "schema": CKPT_SCHEMA,
        "run": {
            "fingerprint": fingerprint,
            "num_starts": int(num_starts),
            "seed": int(seed),
            "alpha": float(alpha),
            "tol": float(tol),
            "max_iters": int(max_iters),
            "rng": {"scheme": "seedseq-spawn-key", "entropy": int(seed)},
            "source": source or {},
            "run_id": spool.run_id if spool is not None else new_run_id(),
            **provenance(),
        },
        "starts": {},  # str(start index) -> completed-start record
    }


def write_checkpoint(path, state: dict) -> Path:
    """Atomically persist a checkpoint document (validates schema first)."""
    if state.get("schema") != CKPT_SCHEMA:
        raise ValueError(
            f"refusing to write checkpoint with schema {state.get('schema')!r}; "
            f"expected {CKPT_SCHEMA!r}"
        )
    return atomic_write_json(path, state)


def read_checkpoint(path, max_bytes: int = MAX_CHECKPOINT_BYTES) -> dict:
    """Load and validate a checkpoint document.

    Raises :class:`ValueError` with a specific message for oversized
    files, truncated/corrupt JSON, unknown schema versions, and missing
    required keys — never a bare decode traceback.
    """
    path = Path(path)
    size = path.stat().st_size
    if size > max_bytes:
        raise ValueError(
            f"{path} is {size} bytes, beyond the {max_bytes}-byte checkpoint "
            f"limit; refusing to load (corrupt or not a checkpoint)"
        )
    text = path.read_text()
    try:
        state = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ValueError(
            f"{path} is not valid checkpoint JSON (truncated or corrupted "
            f"write?): {exc}"
        ) from exc
    if not isinstance(state, dict):
        raise ValueError(f"{path}: checkpoint root must be an object")
    schema = state.get("schema")
    if schema != CKPT_SCHEMA:
        raise ValueError(
            f"{path}: unknown checkpoint schema {schema!r} "
            f"(this build reads {CKPT_SCHEMA!r})"
        )
    for key in ("run", "starts"):
        if key not in state:
            raise ValueError(f"{path}: checkpoint missing required key {key!r}")
    run = state["run"]
    for key in ("fingerprint", "num_starts", "seed", "alpha", "tol", "max_iters"):
        if key not in run:
            raise ValueError(f"{path}: checkpoint run section missing {key!r}")
    if not isinstance(state["starts"], dict):
        raise ValueError(f"{path}: checkpoint 'starts' must be an object")
    return state


def check_resumable(state: dict, *, fingerprint: str, num_starts: int,
                    seed: int, alpha: float, tol: float, max_iters: int) -> None:
    """Verify a loaded checkpoint belongs to *this* sweep; mismatch in
    tensor contents or solve parameters raises :class:`ValueError` (a
    resumed sweep must be bit-identical to the uninterrupted one)."""
    run = state["run"]
    if run["fingerprint"] != fingerprint:
        raise ValueError(
            "checkpoint was written for a different tensor "
            f"(fingerprint {run['fingerprint'][:12]}… != {fingerprint[:12]}…)"
        )
    want = {"num_starts": num_starts, "seed": seed, "alpha": alpha,
            "tol": tol, "max_iters": max_iters}
    for key, value in want.items():
        if run[key] != value:
            raise ValueError(
                f"checkpoint {key}={run[key]!r} does not match this run's "
                f"{key}={value!r}; resuming would change results"
            )
