"""Numerical guards: structured failure instead of silent garbage.

SS-HOPM's convergence guarantee (Kolda & Mayo) holds only for a
sufficiently large shift; with a bad ``alpha`` or an ill-conditioned
tensor the iteration can diverge to NaN, enter a period-2 lambda
oscillation (the classic too-small-shift failure), or stall without
making progress.  The plain solvers historically froze or returned the
last iterate in those cases — indistinguishable from success without
inspecting ``converged`` and the history.

This module turns those degradations into a structured
:class:`SolveFailure` carrying the failure *reason*, the last-good
iterate, the full lambda history, and the run's convergence telemetry
stream, so the retry layer (:mod:`repro.resilience.retry`) can decide
what to do and the operator can see what happened.

Guards are **opt-in**: pass ``guards=True`` (or a :class:`GuardConfig`)
to ``sshopm`` / ``adaptive_sshopm`` / ``multistart_sshopm``, or set the
``guards`` field of :class:`~repro.core.config.SolveConfig`.  The
resilient sweep driver (:mod:`repro.resilience.runner`) enables them by
default.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

__all__ = [
    "GuardConfig",
    "IterationGuard",
    "LaneGuard",
    "SolveFailure",
    "record_solve_failure",
    "resolve_guards",
]


class SolveFailure(RuntimeError):
    """A solver run failed a numerical guard.

    Attributes
    ----------
    reason : short machine-readable tag — ``"nonfinite"`` (NaN/Inf in the
        iterate or lambda), ``"collapse"`` (update collapsed to the zero
        vector), ``"oscillation"`` (lambda locked into a sign-alternating
        cycle), ``"stall"`` (no progress over the stall window), or
        ``"injected"`` (a fault-injection harness payload).
    solver : name of the solver that raised.
    iteration : iteration index at which the guard fired.
    last_lambda : last *finite* lambda seen (NaN if none).
    last_iterate : last finite unit iterate, or ``None``.
    lambda_history : the lambda sequence up to the failure.
    telemetry : the run's convergence telemetry stream when one was being
        recorded (attached by the solver before the exception propagates).
    details : free-form extra context.
    """

    def __init__(
        self,
        reason: str,
        message: str = "",
        *,
        solver: str = "",
        iteration: int = 0,
        last_lambda: float = float("nan"),
        last_iterate: np.ndarray | None = None,
        lambda_history: list[float] | None = None,
        telemetry=None,
        details: dict | None = None,
    ):
        super().__init__(message or f"{solver or 'solver'} failed: {reason}")
        self.reason = reason
        self.solver = solver
        self.iteration = iteration
        self.last_lambda = last_lambda
        self.last_iterate = last_iterate
        self.lambda_history = lambda_history or []
        self.telemetry = telemetry
        self.details = details or {}


@dataclass(frozen=True)
class GuardConfig:
    """Tuning knobs for the per-iteration guards.

    Fields
    ------
    check_finite : raise ``"nonfinite"`` on NaN/Inf lambda or iterate
        (and ``"collapse"`` on a zero update) instead of freezing.
    oscillation_window : number of consecutive sign-alternating lambda
        deltas (each above tolerance) that counts as an oscillation;
        0 disables the check.  Catches the period-2 cycles of a too-small
        shift within ~window iterations instead of burning the whole
        iteration budget.
    stall_window : the guard compares the best ``|delta lambda|`` of the
        last ``stall_window`` iterations against the best of the window
        before it; no improvement while still above tolerance means the
        run is stuck.  0 disables the check.  Kept conservative (double
        window warm-up) because large shifts legitimately converge slowly
        but monotonically.
    stall_slack : relative improvement required between windows
        (``best_recent < stall_slack * best_previous``); 1.0 demands any
        improvement at all.
    """

    check_finite: bool = True
    oscillation_window: int = 8
    stall_window: int = 50
    stall_slack: float = 1.0


def resolve_guards(guards) -> GuardConfig | None:
    """Normalize a ``guards=`` argument: ``True`` → default config,
    ``False``/``None`` → disabled, a :class:`GuardConfig` → itself."""
    if guards is None or guards is False:
        return None
    if guards is True:
        return GuardConfig()
    if isinstance(guards, GuardConfig):
        return guards
    raise TypeError(
        f"guards must be a bool or GuardConfig, got {type(guards).__name__}"
    )


def record_solve_failure(solver: str, reason: str) -> None:
    """Count one guard firing on the active metrics registry."""
    from repro.instrument.metrics import get_registry

    get_registry().counter(
        "repro_solver_failures_total",
        "Solver runs aborted by a numerical guard",
        ("solver", "reason"),
    ).labels(solver=solver, reason=reason).inc()


class IterationGuard:
    """Per-iteration watchdog for a single-vector power iteration.

    Call :meth:`check` once per iteration with the new lambda and iterate;
    it raises :class:`SolveFailure` when a guard trips.  The guard keeps
    the last finite (lambda, x) so the failure always carries a usable
    last-good iterate.
    """

    def __init__(self, config: GuardConfig, *, solver: str, tol: float):
        self.config = config
        self.solver = solver
        self.tol = float(tol)
        self._last_lambda = float("nan")
        self._last_x: np.ndarray | None = None
        window = max(config.oscillation_window, 2 * config.stall_window, 2)
        self._deltas: deque[float] = deque(maxlen=window)
        self.history: list[float] = []

    # -- bookkeeping --------------------------------------------------------

    def note_start(self, lam: float, x: np.ndarray) -> None:
        """Record the value at the starting vector (iteration 0)."""
        if np.isfinite(lam):
            self._last_lambda = float(lam)
            self._last_x = np.array(x, copy=True)
        self.history.append(float(lam))

    def _fail(self, reason: str, iteration: int, message: str,
              details: dict | None = None) -> SolveFailure:
        record_solve_failure(self.solver, reason)
        return SolveFailure(
            reason,
            f"{self.solver}: {message} (iteration {iteration})",
            solver=self.solver,
            iteration=iteration,
            last_lambda=self._last_lambda,
            last_iterate=self._last_x,
            lambda_history=list(self.history),
            details=details,
        )

    def check_update(self, iteration: int, norm: float) -> None:
        """Guard the raw update norm before renormalization."""
        if not self.config.check_finite:
            return
        if norm == 0.0:
            raise self._fail("collapse", iteration,
                             "update collapsed to the zero vector")
        if not np.isfinite(norm):
            raise self._fail("nonfinite", iteration,
                             f"update norm is {norm!r}")

    def check(self, iteration: int, lam: float, x: np.ndarray) -> None:
        """Guard the post-update (lambda, x); call once per iteration."""
        cfg = self.config
        prev = self._last_lambda
        self.history.append(float(lam))
        if cfg.check_finite and not (
            np.isfinite(lam) and np.all(np.isfinite(x))
        ):
            raise self._fail("nonfinite", iteration,
                             f"lambda={lam!r} or iterate non-finite")
        delta = lam - prev if np.isfinite(prev) else float("nan")
        self._last_lambda = float(lam)
        self._last_x = np.array(x, copy=True)
        if not np.isfinite(delta):
            return
        self._deltas.append(float(delta))
        scale = max(1.0, abs(lam))
        self._check_oscillation(iteration, scale)
        self._check_stall(iteration, scale)

    # -- individual guards --------------------------------------------------

    def _check_oscillation(self, iteration: int, scale: float) -> None:
        w = self.config.oscillation_window
        if w < 2 or len(self._deltas) < w:
            return
        recent = list(self._deltas)[-w:]
        floor = max(self.tol, 1e-14 * scale)
        if any(abs(d) <= floor for d in recent):
            return
        signs = [d > 0 for d in recent]
        if all(a != b for a, b in zip(signs, signs[1:])):
            raise self._fail(
                "oscillation", iteration,
                "lambda is sign-alternating (shift too small?)",
                details={"window": w, "recent_deltas": recent},
            )

    def _check_stall(self, iteration: int, scale: float) -> None:
        w = self.config.stall_window
        if w < 1 or len(self._deltas) < 2 * w:
            return
        deltas = list(self._deltas)
        best_prev = min(abs(d) for d in deltas[-2 * w:-w])
        best_recent = min(abs(d) for d in deltas[-w:])
        floor = max(self.tol, 1e-14 * scale)
        if best_recent <= floor:
            return
        if best_recent >= self.config.stall_slack * best_prev:
            raise self._fail(
                "stall", iteration,
                f"no |delta lambda| progress over {w} iterations",
                details={"window": w, "best_previous": best_prev,
                         "best_recent": best_recent},
            )


class LaneGuard:
    """Per-lane watchdog for the fleet engine's vectorized sweep.

    The fleet invariant is the opposite of the single-vector guard's:
    one lane dying numerically (NaN/Inf or a collapsed update) must
    *never* poison the batch — the lane is retired, counted, and the
    sweep continues.  The guard therefore only raises when nothing is
    left to save: every lane died, so the whole solve produced no usable
    output (the same total-collapse semantics as
    :func:`~repro.core.multistart.multistart_sshopm`).

    Lane deaths are always tracked and counted on the
    ``repro_fleet_lanes_retired_total{reason="failed"}`` metric; the
    ``config`` (a :class:`GuardConfig` or ``None``) only controls whether
    total collapse raises a :class:`SolveFailure`.
    """

    def __init__(self, config: GuardConfig | None, *, solver: str = "fleet_solve",
                 total_lanes: int = 0):
        self.config = config
        self.solver = solver
        self.total_lanes = int(total_lanes)
        self.dead_lanes = 0
        self.converged_lanes = 0

    def retire(self, sweep: int, converged: int, failed: int) -> None:
        """Account lanes leaving the active set this sweep."""
        from repro.instrument.metrics import observe_fleet_retired

        self.converged_lanes += int(converged)
        self.dead_lanes += int(failed)
        observe_fleet_retired("converged", int(converged))
        observe_fleet_retired("failed", int(failed))

    def check_collapse(self, sweep: int, *, telemetry=None,
                       details: dict | None = None) -> None:
        """Raise when every lane died numerically (nothing recoverable)."""
        if self.config is None or not self.config.check_finite:
            return
        if self.total_lanes and self.dead_lanes == self.total_lanes:
            record_solve_failure(self.solver, "collapse")
            raise SolveFailure(
                "collapse",
                f"{self.solver}: all {self.total_lanes} lanes died "
                "numerically",
                solver=self.solver,
                iteration=sweep,
                telemetry=telemetry,
                details=details or {"lanes": self.total_lanes},
            )
