"""Resilience layer: guards, retry, checkpoint/resume, fault injection.

Long sweeps fail in boring ways — a NaN from a too-small shift, a worker
that dies, a corrupted input file, a job killed at hour three.  This
package turns each of those into a structured, recoverable event:

* :mod:`~repro.resilience.guards` — per-iteration numerical watchdogs
  raising :class:`SolveFailure` instead of returning silent garbage;
* :mod:`~repro.resilience.retry` — per-start retry with shift
  escalation and seeded, jittered backoff;
* :mod:`~repro.resilience.checkpoint` — schema-versioned atomic
  checkpoints of completed starts, for bit-for-bit resume;
* :mod:`~repro.resilience.retention` — newest-first checkpoint pruning
  (``repro ckpt gc``; ``repro serve --keep N``) so resume loops don't
  grow the checkpoint directory unboundedly;
* :mod:`~repro.resilience.runner` — :func:`resilient_multistart`, the
  durable sweep driver tying the above together;
* :mod:`~repro.resilience.faults` — deterministic fault injection for
  the chaos suite (``tests/test_chaos.py``).

See ``docs/resilience.md`` for the operator-facing guide.
"""

from repro.resilience.checkpoint import (
    CKPT_SCHEMA,
    check_resumable,
    new_checkpoint,
    read_checkpoint,
    tensor_fingerprint,
    write_checkpoint,
)
from repro.resilience.faults import (
    FaultPlan,
    InjectedFault,
    InjectedWorkerCrash,
    corrupt_tensor,
    nan_injecting_pair,
)
from repro.resilience.guards import (
    GuardConfig,
    IterationGuard,
    LaneGuard,
    SolveFailure,
    record_solve_failure,
    resolve_guards,
)
from repro.resilience.retention import list_checkpoints, prune_checkpoints
from repro.resilience.retry import (
    RetryExhausted,
    RetryOutcome,
    RetryPolicy,
    escalate_shift,
    run_with_retry,
)
# Runner symbols are re-exported lazily: runner imports repro.core.sshopm,
# which itself imports repro.resilience.guards — an eager import here would
# close that cycle while repro.core.sshopm is still half-initialized.
_RUNNER_EXPORTS = ("ResilientSweepResult", "StartReport", "resilient_multistart")


def __getattr__(name):
    if name in _RUNNER_EXPORTS:
        from repro.resilience import runner

        return getattr(runner, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "CKPT_SCHEMA",
    "FaultPlan",
    "GuardConfig",
    "InjectedFault",
    "InjectedWorkerCrash",
    "IterationGuard",
    "LaneGuard",
    "ResilientSweepResult",
    "RetryExhausted",
    "RetryOutcome",
    "RetryPolicy",
    "SolveFailure",
    "StartReport",
    "check_resumable",
    "corrupt_tensor",
    "escalate_shift",
    "list_checkpoints",
    "nan_injecting_pair",
    "new_checkpoint",
    "prune_checkpoints",
    "read_checkpoint",
    "record_solve_failure",
    "resilient_multistart",
    "resolve_guards",
    "run_with_retry",
    "tensor_fingerprint",
    "write_checkpoint",
]
