"""Multi-device scheduling of the batched eigenproblem.

Section V-B: "for larger numbers of tensors, this approach generalizes to
a system with multiple GPUs."  The single-device projection in
:mod:`repro.gpu.perfmodel` splits blocks evenly; this module treats the
general case — *heterogeneous* device sets and the choice of scheduling
policy:

* ``"equal"``   — naive even split (the baseline generalization);
* ``"peak"``    — split proportional to device peak throughput;
* ``"dynamic"`` — central-queue chunked self-scheduling (each device pulls
  the next chunk when it finishes its current one — OpenMP
  ``schedule(dynamic)`` at cluster scale), which additionally adapts to
  per-tensor work variation.

Per-device execution times come from the same event-driven simulator used
everywhere else, so policy comparisons inherit the occupancy/ramp effects
(a device handed too few blocks sits in its ramp region).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from repro.gpu.device import TESLA_C2050, DeviceSpec
from repro.gpu.execmodel import simulate_grid
from repro.gpu.kernelspec import sshopm_launch
from repro.gpu.occupancy import compute_occupancy
from repro.gpu.perfmodel import DEFAULT_PARAMS, GpuPerfParams

__all__ = ["ClusterPrediction", "predict_cluster"]


@dataclass(frozen=True)
class ClusterPrediction:
    """Makespan and per-device load of one scheduled launch."""

    policy: str
    seconds: float
    device_seconds: tuple[float, ...]
    device_blocks: tuple[int, ...]
    gflops: float
    efficiency: float  # achieved / sum of single-device saturated rates


def _split_counts(T: int, weights: np.ndarray) -> list[int]:
    """Largest-remainder apportionment of T blocks by weight."""
    weights = np.asarray(weights, dtype=np.float64)
    shares = T * weights / weights.sum()
    counts = np.floor(shares).astype(int)
    remainder = T - counts.sum()
    order = np.argsort(-(shares - counts))
    for i in range(remainder):
        counts[order[i]] += 1
    return counts.tolist()


def predict_cluster(
    devices: list[DeviceSpec] | None = None,
    m: int = 4,
    n: int = 3,
    num_tensors: int = 1024,
    num_starts: int = 128,
    iterations: float | np.ndarray = 40.0,
    variant: str = "unrolled",
    policy: str = "peak",
    chunk: int = 16,
    params: GpuPerfParams = DEFAULT_PARAMS,
) -> ClusterPrediction:
    """Predict the makespan of the workload on a device set under a policy.

    ``iterations`` may be a per-tensor array (heterogeneous block work —
    where dynamic scheduling earns its keep).
    """
    if devices is None:
        devices = [TESLA_C2050]
    if not devices:
        raise ValueError("need at least one device")
    if policy not in ("equal", "peak", "dynamic"):
        raise ValueError(f"unknown policy {policy!r}")
    if num_tensors < 1:
        raise ValueError("need at least one tensor")
    if chunk < 1:
        raise ValueError("chunk must be >= 1")

    iters = np.asarray(iterations, dtype=np.float64)
    if iters.ndim == 0:
        per_tensor = np.full(num_tensors, float(iters))
    else:
        if iters.shape != (num_tensors,):
            raise ValueError(
                f"iterations array must have shape ({num_tensors},), got {iters.shape}"
            )
        per_tensor = iters
    if np.any(per_tensor <= 0):
        raise ValueError("iteration counts must be positive")

    launch = sshopm_launch(
        m, n, num_starts=num_starts, variant=variant,
        general_instr_overhead=params.general_instr_overhead,
    )
    occs = [compute_occupancy(dev, launch) for dev in devices]
    for dev, occ in zip(devices, occs):
        if not occ.launchable:
            raise ValueError(f"kernel unlaunchable on {dev.name}")
    warps_per_block = launch.threads_per_block / 32.0
    instr = launch.instr_per_thread_iter
    block_work = per_tensor * instr * warps_per_block  # warp-instructions

    def run_device(d: int, work: np.ndarray) -> float:
        if work.size == 0:
            return 0.0
        rep = simulate_grid(
            devices[d], launch, occs[d], work,
            issue_efficiency=params.issue_efficiency,
        )
        return rep.seconds

    if policy in ("equal", "peak"):
        if policy == "equal":
            weights = np.ones(len(devices))
        else:
            weights = np.array([dev.peak_gflops for dev in devices])
        counts = _split_counts(num_tensors, weights)
        device_seconds = []
        start = 0
        for d, count in enumerate(counts):
            device_seconds.append(run_device(d, block_work[start : start + count]))
            start += count
        blocks = counts
    else:
        # dynamic: devices pull fixed-size chunks from a central queue.  A
        # device with a non-empty queue keeps its full residency (chunks
        # are enqueued back-to-back), so steady-state throughput is the
        # *saturated* rate; chunk granularity matters only through end-game
        # imbalance.  Saturated warp-instruction rates come from one large
        # probe simulation per device.
        rates = []
        for d in range(len(devices)):
            probe_blocks = max(64, 8 * devices[d].num_sms * occs[d].blocks_per_sm)
            probe = np.full(probe_blocks, float(np.mean(block_work)))
            secs = run_device(d, probe)
            rates.append(probe.sum() / secs)  # warp-instructions / s
        chunks = [
            np.arange(lo, min(lo + chunk, num_tensors))
            for lo in range(0, num_tensors, chunk)
        ]
        ready = [(0.0, d) for d in range(len(devices))]
        heapq.heapify(ready)
        device_seconds = [0.0] * len(devices)
        blocks = [0] * len(devices)
        for c in chunks:
            t_ready, d = heapq.heappop(ready)
            dt = float(block_work[c].sum()) / rates[d]
            device_seconds[d] = t_ready + dt
            blocks[d] += len(c)
            heapq.heappush(ready, (device_seconds[d], d))

    makespan = max(device_seconds) if device_seconds else 0.0
    useful_flops = float(
        np.sum(per_tensor) * num_starts
        * sshopm_launch(m, n, num_starts=num_starts, variant="unrolled").flops_per_thread_iter
    )
    gflops = useful_flops / makespan / 1e9 if makespan > 0 else 0.0

    # saturated single-device rates for the efficiency denominator
    sat_rates = []
    for d in range(len(devices)):
        probe = np.full(
            max(64, 8 * devices[d].num_sms * occs[d].blocks_per_sm),
            float(np.mean(block_work)),
        )
        secs = run_device(d, probe)
        sat_rates.append(
            probe.size * float(np.mean(per_tensor)) * num_starts
            * sshopm_launch(m, n, num_starts=num_starts, variant="unrolled").flops_per_thread_iter
            / secs / 1e9
        )
    efficiency = gflops / sum(sat_rates) if sat_rates else 0.0

    return ClusterPrediction(
        policy=policy,
        seconds=makespan,
        device_seconds=tuple(device_seconds),
        device_blocks=tuple(blocks),
        gflops=gflops,
        efficiency=min(1.0, efficiency),
    )
