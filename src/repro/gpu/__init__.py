"""Simulated CUDA execution substrate (substitutes for the paper's Tesla
C2050): device specs, kernel resource estimates, occupancy, an event-driven
grid execution model, and the calibrated performance model."""

from repro.gpu.device import (
    GTX_480,
    KNOWN_DEVICES,
    NEHALEM_2S,
    TESLA_C1060,
    TESLA_C2050,
    CpuSpec,
    DeviceSpec,
)
from repro.gpu.cluster import ClusterPrediction, predict_cluster
from repro.gpu.execmodel import SimulationReport, simulate_grid
from repro.gpu.kernelspec import FLOAT_BYTES, KernelLaunch, sshopm_launch
from repro.gpu.occupancy import OccupancyResult, compute_occupancy
from repro.gpu.perfmodel import (
    DEFAULT_PARAMS,
    GpuPerfParams,
    GpuPrediction,
    predict_sshopm,
)
from repro.gpu.roofline import (
    TrafficAnalysis,
    analyze_traffic,
    is_compute_bound,
    roofline_gflops,
)
from repro.gpu.warps import (
    WarpProfile,
    divergence_adjusted_iterations,
    warp_profile,
)

__all__ = [
    "GTX_480",
    "KNOWN_DEVICES",
    "NEHALEM_2S",
    "TESLA_C1060",
    "TESLA_C2050",
    "CpuSpec",
    "DeviceSpec",
    "ClusterPrediction",
    "predict_cluster",
    "SimulationReport",
    "simulate_grid",
    "FLOAT_BYTES",
    "KernelLaunch",
    "sshopm_launch",
    "OccupancyResult",
    "compute_occupancy",
    "DEFAULT_PARAMS",
    "GpuPerfParams",
    "GpuPrediction",
    "predict_sshopm",
    "TrafficAnalysis",
    "analyze_traffic",
    "is_compute_bound",
    "roofline_gflops",
    "WarpProfile",
    "divergence_adjusted_iterations",
    "warp_profile",
]
