"""Roofline analysis of the SS-HOPM launch.

Section V-C's data-structure argument — "we can fit all the data for each
thread block in the memory on the multiprocessor and minimize the accesses
to device memory" — is a claim about arithmetic intensity: the only DRAM
traffic is the one-time tensor/start load and the final eigenpair store,
while every iteration's arithmetic runs out of shared memory and
registers.  This module quantifies that: it computes the launch's DRAM
traffic and arithmetic intensity, the roofline bound
``min(peak, AI x bandwidth)``, and whether the kernel is compute- or
memory-bound on a device.

The paper's configuration comes out overwhelmingly compute-bound (AI in
the thousands of flops/byte), which is *why* the occupancy/issue model in
:mod:`repro.gpu.perfmodel` — and not a bandwidth model — predicts its
performance.  The analysis also shows where that breaks: with very few
iterations or very large tensors per block, intensity collapses and the
memory roof takes over.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gpu.device import TESLA_C2050, DeviceSpec
from repro.gpu.kernelspec import FLOAT_BYTES, sshopm_launch
from repro.util.combinatorics import num_unique_entries

__all__ = ["TrafficAnalysis", "analyze_traffic", "roofline_gflops"]


@dataclass(frozen=True)
class TrafficAnalysis:
    """DRAM traffic and arithmetic intensity of one batched SS-HOPM launch.

    Attributes
    ----------
    dram_bytes : total device-memory traffic (tensor loads, start-vector
        loads, eigenpair stores) — the paper's Section V-C data volumes.
    total_flops : useful floating-point work of the launch.
    arithmetic_intensity : flops per DRAM byte.
    compute_bound_on : device names for which ``AI x BW >= peak``.
    """

    num_tensors: int
    num_starts: int
    iterations: float
    dram_bytes: int
    total_flops: float
    arithmetic_intensity: float


def analyze_traffic(
    m: int = 4,
    n: int = 3,
    num_tensors: int = 1024,
    num_starts: int = 128,
    iterations: float = 40.0,
    dtype_bytes: int = FLOAT_BYTES,
) -> TrafficAnalysis:
    """Traffic/intensity of the launch (Section V-C data structures).

    DRAM traffic = tensor data ``T*U`` + shared starting vectors ``V*n``
    + output eigenvectors ``T*V*n`` + output eigenvalues ``T*V`` (all in
    ``dtype_bytes``); flops = per-iteration unrolled kernel work times
    ``T*V*iterations``.
    """
    if num_tensors < 1 or num_starts < 1:
        raise ValueError("need at least one tensor and one start")
    if iterations <= 0:
        raise ValueError("iterations must be positive")
    U = num_unique_entries(m, n)
    T, V = num_tensors, num_starts
    dram = dtype_bytes * (T * U + V * n + T * V * n + T * V)
    launch = sshopm_launch(m, n, num_starts=V, variant="unrolled")
    flops = T * V * iterations * launch.flops_per_thread_iter
    return TrafficAnalysis(
        num_tensors=T,
        num_starts=V,
        iterations=float(iterations),
        dram_bytes=dram,
        total_flops=flops,
        arithmetic_intensity=flops / dram,
    )


def roofline_gflops(device: DeviceSpec, intensity: float) -> float:
    """The roofline bound ``min(peak, AI x bandwidth)`` in GFLOPS."""
    if intensity < 0:
        raise ValueError("arithmetic intensity must be nonnegative")
    return min(device.peak_gflops, intensity * device.mem_bandwidth_gbs)


def is_compute_bound(
    device: DeviceSpec = TESLA_C2050, analysis: TrafficAnalysis | None = None
) -> bool:
    """True when the launch's intensity puts it under the flat (compute)
    part of the device's roofline."""
    if analysis is None:
        analysis = analyze_traffic()
    return roofline_gflops(device, analysis.arithmetic_intensity) >= device.peak_gflops
