"""Hardware descriptions for the simulated execution substrate.

The paper's testbed is an NVIDIA Tesla C2050 (Fermi) GPU and a dual-socket
quad-core Intel Nehalem host.  Since this reproduction has no GPU, those
machines are modeled: a :class:`DeviceSpec` carries the architectural
parameters that the occupancy calculator and execution model consume, and
the constants below encode the published specifications.

Peak arithmetic checks (single precision):

* ``TESLA_C2050``: 14 SMs x 32 cores x 2 flops (FMA) x 1.15 GHz = 1030.4
  GFLOPS — the paper's "1030 GFLOPS" peak.
* ``NEHALEM_2S``: 2.8 GHz x 8 flops/cycle (4-wide SSE mul+add) = 22.4
  GFLOPS per core — the paper's per-core peak.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "DeviceSpec",
    "CpuSpec",
    "TESLA_C2050",
    "TESLA_C1060",
    "GTX_480",
    "NEHALEM_2S",
    "KNOWN_DEVICES",
]


@dataclass(frozen=True)
class DeviceSpec:
    """Architectural parameters of a CUDA-class device.

    ``flops_per_core_per_cycle`` is 2 for fused multiply-add pipelines.
    ``warps_full_pipeline`` is the number of resident warps per SM needed to
    hide arithmetic latency (latency x issue width / warp size) — below it,
    per-SM throughput degrades proportionally.
    """

    name: str
    num_sms: int
    cores_per_sm: int
    clock_ghz: float
    flops_per_core_per_cycle: int = 2
    registers_per_sm: int = 32768
    max_registers_per_thread: int = 63
    shared_mem_per_sm: int = 49152
    max_threads_per_sm: int = 1536
    max_threads_per_block: int = 1024
    max_blocks_per_sm: int = 8
    warp_size: int = 32
    warps_full_pipeline: int = 24
    mem_bandwidth_gbs: float = 144.0  # device-memory bandwidth, GB/s

    @property
    def peak_gflops(self) -> float:
        """Theoretical single-precision peak in GFLOPS."""
        return (
            self.num_sms
            * self.cores_per_sm
            * self.flops_per_core_per_cycle
            * self.clock_ghz
        )

    @property
    def sm_flops_per_cycle(self) -> int:
        """Peak flops one SM retires per cycle."""
        return self.cores_per_sm * self.flops_per_core_per_cycle

    @property
    def max_warps_per_sm(self) -> int:
        return self.max_threads_per_sm // self.warp_size


@dataclass(frozen=True)
class CpuSpec:
    """Host CPU description (the paper's OpenMP baseline platform)."""

    name: str
    sockets: int
    cores_per_socket: int
    clock_ghz: float
    simd_flops_per_cycle: int = 8  # 4-wide SSE mul + add
    scalar_flops_per_cycle: int = 2  # mul + add without SIMD

    @property
    def total_cores(self) -> int:
        return self.sockets * self.cores_per_socket

    @property
    def peak_gflops_per_core(self) -> float:
        """Single-precision per-core peak with SIMD (the paper's 22.4)."""
        return self.clock_ghz * self.simd_flops_per_cycle

    @property
    def peak_gflops(self) -> float:
        return self.peak_gflops_per_core * self.total_cores


TESLA_C2050 = DeviceSpec(
    name="Tesla C2050 (Fermi)",
    num_sms=14,
    cores_per_sm=32,
    clock_ghz=1.15,
    mem_bandwidth_gbs=144.0,
)

# The paper notes "similar performance (relative to peak) for tensors of
# order 4 and dimension 3 on two other NVIDIA GPUs"; these stand in for a
# previous-generation (GT200) and a consumer Fermi part.
TESLA_C1060 = DeviceSpec(
    name="Tesla C1060 (GT200)",
    num_sms=30,
    cores_per_sm=8,
    clock_ghz=1.296,
    registers_per_sm=16384,
    max_registers_per_thread=124,
    shared_mem_per_sm=16384,
    max_threads_per_sm=1024,
    max_threads_per_block=512,
    max_blocks_per_sm=8,
    warps_full_pipeline=16,
    mem_bandwidth_gbs=102.0,
)

GTX_480 = DeviceSpec(
    name="GeForce GTX 480 (Fermi)",
    num_sms=15,
    cores_per_sm=32,
    clock_ghz=1.401,
    mem_bandwidth_gbs=177.4,
)

NEHALEM_2S = CpuSpec(
    name="Dual-socket quad-core Intel Nehalem",
    sockets=2,
    cores_per_socket=4,
    clock_ghz=2.8,
)

KNOWN_DEVICES = {d.name: d for d in (TESLA_C2050, TESLA_C1060, GTX_480)}
