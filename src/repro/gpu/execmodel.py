"""Event-driven simulation of kernel execution on a CUDA-class device.

The paper maps one thread block per tensor; this module simulates the
machine executing that grid: blocks are dispatched FCFS to streaming
multiprocessors as residency slots (from the occupancy calculator) free up,
and each SM issues warp-instructions at a rate that degrades when too few
warps are resident to hide pipeline latency.  Two first-order effects of
Figure 5 emerge structurally rather than by curve fitting:

* **ramp** — with fewer blocks than ``SMs x blocks_per_sm`` the device is
  partially idle and throughput grows ~linearly in the number of tensors
  (the paper: "as long as the number of tensors is at least 50 or so, all
  of the multiprocessors are utilized");
* **saturation** — once every SM holds its full residency, adding tensors
  only lengthens the tail (wave quantization), and throughput plateaus.

Work is expressed in *warp-instructions per block*; heterogeneous per-block
work is supported so real per-tensor SS-HOPM iteration counts can be fed in.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.gpu.device import DeviceSpec
from repro.gpu.kernelspec import KernelLaunch
from repro.gpu.occupancy import OccupancyResult

__all__ = ["SimulationReport", "simulate_grid"]


@dataclass(frozen=True)
class SimulationReport:
    """Outcome of simulating one grid launch.

    Attributes
    ----------
    cycles : makespan in device cycles.
    seconds : makespan in wall-clock seconds at the device clock.
    issue_utilization : issued warp-instructions / (SM issue capacity x
        makespan) — the fraction of issue slots used.
    blocks_executed : number of blocks run.
    waves : blocks divided by whole-device residency (the wave count a
        uniform-work launch would need).
    """

    cycles: float
    seconds: float
    issue_utilization: float
    blocks_executed: int
    waves: float


def simulate_grid(
    device: DeviceSpec,
    launch: KernelLaunch,
    occupancy: OccupancyResult,
    block_work: np.ndarray | float,
    num_blocks: int | None = None,
    issue_efficiency: float = 1.0,
) -> SimulationReport:
    """Simulate executing a grid of thread blocks.

    Parameters
    ----------
    device, launch, occupancy : hardware, kernel footprint, and residency.
    block_work : warp-instructions per block — a scalar (uniform blocks) or
        an array of per-block work.
    num_blocks : block count when ``block_work`` is scalar.
    issue_efficiency : calibrated fraction of the ideal issue rate actually
        sustained (covers dual-issue shortfalls, bank conflicts, sync).

    Model
    -----
    An SM issues ``cores_per_sm / warp_size`` warp-instructions per cycle at
    full pipeline, scaled by ``min(1, resident_warps / warps_full_pipeline)``
    and shared equally among resident blocks.  Blocks are assigned FCFS.
    """
    if not occupancy.launchable:
        raise ValueError(f"kernel {launch.name} cannot launch on {device.name}")
    if np.isscalar(block_work):
        if num_blocks is None:
            raise ValueError("num_blocks required with scalar block_work")
        work = np.full(int(num_blocks), float(block_work))
    else:
        work = np.asarray(block_work, dtype=np.float64).copy()
    T = work.shape[0]
    if T == 0:
        return SimulationReport(0.0, 0.0, 0.0, 0, 0.0)
    if np.any(work <= 0):
        raise ValueError("block work must be positive")

    slots = occupancy.blocks_per_sm
    warps_per_block = launch.threads_per_block / device.warp_size
    base_rate = (device.cores_per_sm / device.warp_size) * issue_efficiency

    # resident[s] = list of remaining work for blocks on SM s
    resident: list[list[float]] = [[] for _ in range(device.num_sms)]
    next_block = 0
    # initial fill, round-robin across SMs (hardware dispatches to least
    # loaded; round-robin matches for uniform work)
    for _ in range(slots):
        for s in range(device.num_sms):
            if next_block < T:
                resident[s].append(work[next_block])
                next_block += 1

    now = 0.0
    issued = 0.0

    def sm_block_rate(k: int) -> float:
        """Per-block issue rate on an SM holding k resident blocks."""
        if k == 0:
            return 0.0
        warps = min(k * warps_per_block, device.max_warps_per_sm)
        f = min(1.0, warps / device.warps_full_pipeline)
        return f * base_rate / k

    remaining_total = int(T)
    guard = 0
    while remaining_total > 0:
        guard += 1
        if guard > 4 * T + 16:
            raise RuntimeError("simulation failed to make progress")
        # earliest completion across SMs
        dt = np.inf
        for s in range(device.num_sms):
            blocks = resident[s]
            if not blocks:
                continue
            v = sm_block_rate(len(blocks))
            dt = min(dt, min(blocks) / v)
        if not np.isfinite(dt):
            raise RuntimeError("no resident blocks but work remains")
        # advance
        for s in range(device.num_sms):
            blocks = resident[s]
            if not blocks:
                continue
            v = sm_block_rate(len(blocks))
            advanced = v * dt
            issued += advanced * len(blocks)
            done_any = False
            kept: list[float] = []
            for r in blocks:
                r2 = r - advanced
                if r2 <= 1e-9:
                    remaining_total -= 1
                    done_any = True
                else:
                    kept.append(r2)
            resident[s] = kept
            if done_any:
                while len(resident[s]) < slots and next_block < T:
                    resident[s].append(work[next_block])
                    next_block += 1
        now += dt

    cycles = now
    seconds = cycles / (device.clock_ghz * 1e9)
    capacity = device.num_sms * base_rate * cycles
    utilization = issued / capacity if capacity > 0 else 0.0
    waves = T / (device.num_sms * slots)
    return SimulationReport(
        cycles=cycles,
        seconds=seconds,
        issue_utilization=min(1.0, utilization),
        blocks_executed=T,
        waves=waves,
    )
