"""Analytic/simulated GPU performance model for the SS-HOPM workload.

Combines the kernel resource estimates, the occupancy calculator, and the
event-driven execution model into per-configuration predictions of runtime
and achieved GFLOPS — the quantities Table III and Figure 5 report.

Calibration policy (recorded in EXPERIMENTS.md): the model has exactly two
fitted constants,

* ``issue_efficiency`` — the sustained fraction of the ideal issue rate for
  the unrolled kernel (dual-issue shortfall, syncs, bank conflicts);
* ``general_instr_overhead`` — issued instructions per useful flop of the
  general (Figures 2-3) kernel, whose inner loop is dominated by index
  arithmetic and non-register vector accesses.

Both are anchored to Table III's ``m=4, n=3, T=1024, V=128`` measurements;
everything else (the Figure 5 ramp/saturation shape, the occupancy falloff
for larger tensors, multi-device projection) is *predicted* by model
structure.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.gpu.device import TESLA_C2050, DeviceSpec
from repro.gpu.execmodel import SimulationReport, simulate_grid
from repro.gpu.kernelspec import KernelLaunch, sshopm_launch
from repro.gpu.occupancy import OccupancyResult, compute_occupancy

__all__ = ["GpuPerfParams", "GpuPrediction", "predict_sshopm", "DEFAULT_PARAMS"]


@dataclass(frozen=True)
class GpuPerfParams:
    """Calibrated model constants (see module docstring)."""

    issue_efficiency: float = 0.76
    general_instr_overhead: float = 21.0
    spill_penalty_instr_per_reg: float = 2.0  # extra instr per spilled reg per iter


DEFAULT_PARAMS = GpuPerfParams()


@dataclass(frozen=True)
class GpuPrediction:
    """Model output for one configuration.

    ``gflops`` counts the same useful flops for every variant (the unrolled
    kernel's static per-iteration count), matching the paper's convention of
    comparing implementations on a common work measure.
    """

    device_name: str
    variant: str
    num_tensors: int
    num_starts: int
    iterations: float
    seconds: float
    gflops: float
    fraction_of_peak: float
    occupancy: OccupancyResult
    simulation: SimulationReport
    launch: KernelLaunch


def predict_sshopm(
    m: int = 4,
    n: int = 3,
    num_tensors: int = 1024,
    num_starts: int = 128,
    iterations: float | np.ndarray = 40.0,
    variant: str = "unrolled",
    device: DeviceSpec = TESLA_C2050,
    params: GpuPerfParams = DEFAULT_PARAMS,
    num_devices: int = 1,
) -> GpuPrediction:
    """Predict runtime and throughput for a batched SS-HOPM launch.

    Parameters
    ----------
    m, n : tensor order and dimension.
    num_tensors : thread blocks (one per tensor).
    num_starts : threads per block (V).
    iterations : SS-HOPM iterations until convergence — a scalar average or
        a per-tensor array (e.g. the measured sweep counts from a real run).
    variant : ``"unrolled"`` or ``"general"``.
    device : simulated device (default: the paper's Tesla C2050).
    params : calibrated constants.
    num_devices : Section V-B notes the scheme "generalizes to a system
        with multiple GPUs"; blocks are split evenly across devices and the
        makespan is the slowest device's.
    """
    if num_tensors < 1:
        raise ValueError("need at least one tensor")
    if num_devices < 1:
        raise ValueError("need at least one device")
    launch = sshopm_launch(
        m,
        n,
        num_starts=num_starts,
        variant=variant,
        general_instr_overhead=params.general_instr_overhead,
    )
    occ = compute_occupancy(device, launch)
    if not occ.launchable:
        raise ValueError(
            f"{launch.name} is unlaunchable on {device.name} "
            f"({occ.limiting_factor})"
        )

    iters = np.asarray(iterations, dtype=np.float64)
    if iters.ndim == 0:
        per_tensor_iters = np.full(num_tensors, float(iters))
    else:
        if iters.shape != (num_tensors,):
            raise ValueError(
                f"iterations array must have shape ({num_tensors},), got {iters.shape}"
            )
        per_tensor_iters = iters
    if np.any(per_tensor_iters <= 0):
        raise ValueError("iteration counts must be positive")

    # per-thread issued instructions per iteration, including spill traffic
    instr_iter = launch.instr_per_thread_iter + (
        occ.spilled_registers * params.spill_penalty_instr_per_reg
    )
    warps_per_block = launch.threads_per_block / device.warp_size
    block_work = per_tensor_iters * instr_iter * warps_per_block

    # multi-device: contiguous split, makespan = max over devices
    seconds = 0.0
    report = None
    splits = np.array_split(block_work, num_devices)
    for part in splits:
        if part.size == 0:
            continue
        rep = simulate_grid(
            device,
            launch,
            occ,
            part,
            issue_efficiency=params.issue_efficiency,
        )
        if rep.seconds >= seconds:
            seconds = rep.seconds
            report = rep

    # useful flops: common basis across variants (the unrolled static count)
    unrolled = sshopm_launch(m, n, num_starts=num_starts, variant="unrolled")
    useful_flops = float(
        np.sum(per_tensor_iters) * num_starts * unrolled.flops_per_thread_iter
    )
    gflops = useful_flops / seconds / 1e9 if seconds > 0 else 0.0
    peak = device.peak_gflops * num_devices
    return GpuPrediction(
        device_name=device.name,
        variant=variant,
        num_tensors=num_tensors,
        num_starts=num_starts,
        iterations=float(np.mean(per_tensor_iters)),
        seconds=seconds,
        gflops=gflops,
        fraction_of_peak=gflops / peak,
        occupancy=occ,
        simulation=report,
        launch=launch,
    )
