"""CUDA occupancy calculator.

Determines how many thread blocks of a kernel can be resident on one
streaming multiprocessor, limited by (i) the hardware block cap, (ii) the
thread/warp capacity, (iii) the register file, and (iv) shared memory — the
standard CUDA occupancy computation.  This is the mechanism behind the
paper's Section V-E observation: "As the tensor size grows, the per-thread
and per-thread-block memory requirements also grow, resulting in decreased
occupancy on the GPU."

Register spilling is modeled: a kernel demanding more than the device's
per-thread register cap is clamped to the cap and charged a spill penalty
(extra local-memory instructions) that the execution model folds into its
instruction count.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gpu.device import DeviceSpec
from repro.gpu.kernelspec import KernelLaunch

__all__ = ["OccupancyResult", "compute_occupancy"]


@dataclass(frozen=True)
class OccupancyResult:
    """Residency of a kernel on one SM.

    Attributes
    ----------
    blocks_per_sm : resident thread blocks (0 means the kernel cannot launch).
    limiting_factor : which resource bound the residency
        ("blocks", "threads", "registers", "shared_mem", or "unlaunchable").
    spilled_registers : per-thread registers demanded beyond the cap.
    """

    blocks_per_sm: int
    warps_per_sm: float
    occupancy: float  # resident warps / max warps
    limiting_factor: str
    spilled_registers: int

    @property
    def launchable(self) -> bool:
        return self.blocks_per_sm > 0


def compute_occupancy(device: DeviceSpec, launch: KernelLaunch) -> OccupancyResult:
    """Blocks-per-SM residency of ``launch`` on ``device``."""
    if launch.threads_per_block < 1:
        raise ValueError("threads_per_block must be >= 1")
    if launch.threads_per_block > device.max_threads_per_block:
        return OccupancyResult(0, 0.0, 0.0, "unlaunchable", 0)

    regs_demand = launch.registers_per_thread
    spilled = max(0, regs_demand - device.max_registers_per_thread)
    regs_effective = min(regs_demand, device.max_registers_per_thread)

    limits: dict[str, int] = {}
    limits["blocks"] = device.max_blocks_per_sm
    limits["threads"] = device.max_threads_per_sm // launch.threads_per_block
    regs_per_block = regs_effective * launch.threads_per_block
    limits["registers"] = (
        device.registers_per_sm // regs_per_block if regs_per_block > 0 else limits["blocks"]
    )
    if launch.shared_mem_per_block > 0:
        limits["shared_mem"] = device.shared_mem_per_sm // launch.shared_mem_per_block
    else:
        limits["shared_mem"] = limits["blocks"]

    limiting = min(limits, key=lambda k: limits[k])
    blocks = limits[limiting]
    if blocks <= 0:
        return OccupancyResult(0, 0.0, 0.0, "unlaunchable", spilled)

    warps = blocks * launch.threads_per_block / device.warp_size
    warps = min(warps, device.max_warps_per_sm)
    return OccupancyResult(
        blocks_per_sm=blocks,
        warps_per_sm=warps,
        occupancy=warps / device.max_warps_per_sm,
        limiting_factor=limiting,
        spilled_registers=spilled,
    )
