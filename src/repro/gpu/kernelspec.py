"""Resource descriptors for the SS-HOPM CUDA kernels (Section V-C/D).

The paper's launch shape: one thread block per tensor, one thread per
starting vector (``V = 128`` threads/block).  Per-block shared memory holds
that block's tensor (``U`` floats); the general variant additionally keeps
the shared index/multiplicity tables at hand; the unrolled variant keeps the
input and output vectors (and live monomial subexpressions) in registers.

These estimates are what the occupancy calculator consumes.  They are
deliberately simple, monotone functions of ``(m, n)`` chosen to match the
two anchor points the paper reports: full throughput at ``m=4, n=3`` and
"decreased performance for tensor sizes past a threshold of around order 4
and dimension 5" caused by shrinking occupancy.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.kernels.codegen import emit
from repro.util.combinatorics import num_unique_entries

__all__ = ["KernelLaunch", "sshopm_launch", "FLOAT_BYTES"]

FLOAT_BYTES = 4  # the paper computes in single precision


@dataclass(frozen=True)
class KernelLaunch:
    """One kernel's per-block resource footprint and per-thread work.

    Attributes
    ----------
    threads_per_block : V (starting vectors per tensor).
    registers_per_thread : estimated register demand *before* applying the
        device's per-thread cap; the occupancy calculator handles spilling.
    shared_mem_per_block : bytes of shared memory per block.
    flops_per_thread_iter : useful flops one thread performs per SS-HOPM
        iteration (vector kernel + scalar kernel + update/normalize).
    instr_per_thread_iter : total issued instructions per iteration,
        including integer/index/load overhead — the ratio
        ``flops / (2 * instr)`` bounds the achievable fraction of FMA peak.
    """

    name: str
    threads_per_block: int
    registers_per_thread: int
    shared_mem_per_block: int
    flops_per_thread_iter: float
    instr_per_thread_iter: float

    @property
    def warps_per_block(self) -> float:
        return self.threads_per_block / 32.0


def _iteration_flops(m: int, n: int) -> tuple[int, int]:
    """(scalar kernel flops, vector kernel flops) per thread-iteration from
    the unrolled code generator's static counts."""
    gen = emit(m, n, "unrolled", target="numpy")
    return gen.flops_scalar, gen.flops_vector


def sshopm_launch(
    m: int,
    n: int,
    num_starts: int = 128,
    variant: str = "unrolled",
    general_instr_overhead: float = 7.0,
) -> KernelLaunch:
    """Resource/work descriptor for one SS-HOPM iteration kernel.

    Parameters
    ----------
    m, n : tensor order and dimension.
    num_starts : threads per block (V).
    variant : ``"unrolled"`` (Section V-D) or ``"general"`` (Figures 2-3
        executed with shared index tables, Section V-C).
    general_instr_overhead : issued instructions per useful flop for the
        general variant (index indirection, multinomial lookups, loop
        control, shared/local traffic).  The default is calibrated so the
        model reproduces the paper's measured ~19x unrolled-over-general
        GPU gap; see EXPERIMENTS.md.

    Notes
    -----
    Per-thread work per iteration is ``flops_vector + flops_scalar`` (the
    two kernels of Figure 1) plus ``3n + 4`` for the shift, normalization,
    and convergence test.

    Register model (unrolled): 8 bookkeeping + ``2n`` vector entries +
    ``~U/4`` live monomial subexpressions.  Shared memory: the block's
    tensor (``U`` floats) for both variants, plus the index (``m`` ints) and
    multiplicity (1 int) tables per unique entry for the general variant.
    """
    U = num_unique_entries(m, n)
    fs, fv = _iteration_flops(m, n)
    flops_iter = fs + fv + 3 * n + 4

    if variant == "unrolled":
        regs = 8 + 2 * n + (U + 3) // 4
        smem = U * FLOAT_BYTES
        # straight-line arithmetic with occasional shared-memory loads of
        # tensor values: ~1 load per unique entry per kernel
        instr_iter = flops_iter + 2 * U
    elif variant == "general":
        regs = 20 + m + n
        smem = U * FLOAT_BYTES + (m + 1) * U * FLOAT_BYTES
        instr_iter = flops_iter * general_instr_overhead
    else:
        raise ValueError(f"unknown kernel variant {variant!r}")

    return KernelLaunch(
        name=f"sshopm-{variant}-m{m}n{n}",
        threads_per_block=num_starts,
        registers_per_thread=regs,
        shared_mem_per_block=smem,
        flops_per_thread_iter=float(flops_iter),
        instr_per_thread_iter=float(instr_iter),
    )
