"""SIMT warp-divergence analysis for the multistart workload.

On the GPU, the 128 threads of a block (one per starting vector) execute in
warps of 32 in lockstep: a warp runs until its *slowest* thread converges,
so threads whose SS-HOPM instance finished early idle in their lanes.  The
paper's kernel therefore pays ``max`` (not ``mean``) iterations per warp.

This module turns a measured per-(tensor, start) iteration matrix — e.g.
from :func:`repro.core.multistart.multistart_sshopm` — into the per-block
warp-accurate work the execution model should charge, plus the SIMT
efficiency lost to convergence variance.  It closes the loop between the
functional solver and the performance simulator: real convergence data in,
divergence-aware runtime predictions out.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["WarpProfile", "warp_profile", "divergence_adjusted_iterations"]


@dataclass(frozen=True)
class WarpProfile:
    """Warp-level accounting of a multistart launch.

    Attributes
    ----------
    warp_iterations : ``(T, W)`` lockstep iterations each warp executes
        (max over its lanes).
    block_iterations : ``(T,)`` per-block iteration totals summed over the
        block's warps — the warp-serialized work the SM actually issues,
        in units of (warp x iteration).
    simt_efficiency : useful lane-iterations / issued lane-iterations —
        1.0 when every lane of every warp converges simultaneously.
    mean_iterations, max_iterations : workload summary statistics.
    """

    warp_iterations: np.ndarray
    block_iterations: np.ndarray
    simt_efficiency: float
    mean_iterations: float
    max_iterations: int


def warp_profile(iterations: np.ndarray, warp_size: int = 32) -> WarpProfile:
    """Analyze a ``(T, V)`` iteration matrix under SIMT execution.

    ``V`` need not divide ``warp_size``; a ragged final warp simply has
    fewer lanes.  Iteration counts must be nonnegative.
    """
    iterations = np.asarray(iterations)
    if iterations.ndim != 2:
        raise ValueError(f"expected a (T, V) iteration matrix, got {iterations.shape}")
    if warp_size < 1:
        raise ValueError(f"warp_size must be >= 1, got {warp_size}")
    if np.any(iterations < 0):
        raise ValueError("iteration counts must be nonnegative")
    T, V = iterations.shape
    num_warps = -(-V // warp_size)

    warp_iters = np.zeros((T, num_warps), dtype=np.float64)
    issued_lanes = 0.0
    useful_lanes = float(iterations.sum())
    for w in range(num_warps):
        lanes = iterations[:, w * warp_size : (w + 1) * warp_size]
        warp_iters[:, w] = lanes.max(axis=1)
        issued_lanes += float(warp_iters[:, w].sum() * lanes.shape[1])

    block_iters = warp_iters.sum(axis=1)
    efficiency = useful_lanes / issued_lanes if issued_lanes > 0 else 1.0
    return WarpProfile(
        warp_iterations=warp_iters,
        block_iterations=block_iters,
        simt_efficiency=float(efficiency),
        mean_iterations=float(iterations.mean()),
        max_iterations=int(iterations.max()) if iterations.size else 0,
    )


def divergence_adjusted_iterations(
    iterations: np.ndarray, warp_size: int = 32
) -> np.ndarray:
    """Per-tensor *effective* iteration counts for the performance model:
    the per-block warp-serialized work expressed as equivalent full-block
    lockstep iterations (block work / warps per block).

    Feeding these to :func:`repro.gpu.perfmodel.predict_sshopm` charges the
    device for divergence: a block whose lanes converge unevenly costs as
    many cycles as its slowest lanes imply.
    """
    prof = warp_profile(iterations, warp_size=warp_size)
    num_warps = prof.warp_iterations.shape[1]
    out = prof.block_iterations / num_warps
    # the model requires strictly positive work
    return np.maximum(out, 1e-9)
