"""Combinatorial primitives used throughout the symmetric tensor machinery.

The storage format of Ballard, Kolda & Plantenga (Section III of the paper)
rests on two counting facts:

* Property 1 — a symmetric tensor in ``R^[m,n]`` has ``C(m+n-1, m)`` unique
  values (index classes), counted as weak compositions ("m indistinguishable
  balls into n distinguishable bins").
* Property 2 — the index class with monomial representation
  ``[k_1, ..., k_n]`` contains ``m! / (k_1! ... k_n!)`` tensor indices
  (the multinomial coefficient).

Everything here is exact integer arithmetic; no floats are involved, so the
counts are valid far beyond what fits in a double.
"""

from __future__ import annotations

import math
from functools import lru_cache
from typing import Iterable, Sequence

import numpy as np

__all__ = [
    "binomial",
    "factorial",
    "multinomial",
    "multinomial_from_index",
    "multinomial1_from_index",
    "num_unique_entries",
    "num_total_entries",
    "symmetry_savings_factor",
    "factorial_table",
]


def factorial(k: int) -> int:
    """Exact ``k!`` for ``k >= 0``."""
    if k < 0:
        raise ValueError(f"factorial undefined for negative k={k}")
    return math.factorial(k)


def binomial(n: int, k: int) -> int:
    """Exact binomial coefficient ``C(n, k)``; zero outside ``0 <= k <= n``."""
    if k < 0 or k > n:
        return 0
    return math.comb(n, k)


def multinomial(counts: Sequence[int] | Iterable[int]) -> int:
    """Exact multinomial coefficient ``(sum k_i)! / prod(k_i!)``.

    ``counts`` is the monomial representation ``[k_1, ..., k_n]`` of an index
    class; the result is the number of tensor indices in that class
    (Property 2 of the paper).
    """
    counts = list(counts)
    if any(k < 0 for k in counts):
        raise ValueError(f"multinomial counts must be nonnegative, got {counts}")
    total = sum(counts)
    result = factorial(total)
    for k in counts:
        result //= factorial(k)
    return result


def multinomial_from_index(index: Sequence[int], m_factorial: int | None = None) -> int:
    """MULTINOMIAL0 of Figure 2: multiplicity of an index class from its
    *index representation* (a nondecreasing tuple), in one pass.

    Since the index representation is nondecreasing, repeats of each value
    are contiguous; the j-th consecutive repeat of a value multiplies the
    divisor by j, so the accumulated divisor is ``k_1! k_2! ... k_n!``
    without ever materializing the monomial representation.

    Parameters
    ----------
    index : nondecreasing sequence of ``m`` indices.
    m_factorial : optional precomputed ``m!`` (constant across classes; the
        paper precomputes it once per kernel invocation).
    """
    m = len(index)
    if m_factorial is None:
        m_factorial = factorial(m)
    div = 1
    curr = None
    mult = 0
    for idx in index:
        if idx != curr:
            mult = 1
            curr = idx
        else:
            mult += 1
            div *= mult
    return m_factorial // div


def multinomial1_from_index(
    index: Sequence[int], drop: int, m1_factorial: int | None = None
) -> int:
    """MULTINOMIAL1 of Figure 3: number of tensor indices in the class of
    ``index`` whose *first* position holds the value ``drop``.

    Equals ``C(m-1; k_1, ..., k_drop - 1, ..., k_n)``: one occurrence of
    ``drop`` is pinned to position 1 and the remaining ``m-1`` positions are
    permuted freely.  Computed with the same streaming pass as
    :func:`multinomial_from_index` but excluding the pinned occurrence — the
    first element of ``drop``'s (contiguous) run is simply skipped, so the
    run contributes ``(k_drop - 1)!`` to the divisor instead of ``k_drop!``.

    Raises
    ------
    ValueError
        If ``drop`` does not occur in ``index`` (that class contributes
        nothing to output entry ``drop``; calling this would be a logic
        error in the kernel).
    """
    m = len(index)
    if m1_factorial is None:
        m1_factorial = factorial(m - 1)
    div = 1
    curr = None
    mult = 0
    seen_drop = False
    for idx in index:
        if idx == drop and not seen_drop:
            seen_drop = True
            continue
        if idx != curr:
            mult = 1
            curr = idx
        else:
            mult += 1
            div *= mult
    if not seen_drop:
        raise ValueError(f"index value {drop} does not occur in {tuple(index)}")
    return m1_factorial // div


def num_unique_entries(m: int, n: int) -> int:
    """Property 1: number of unique values of a symmetric ``R^[m,n]`` tensor,
    ``C(m+n-1, m)``."""
    if m < 1 or n < 1:
        raise ValueError(f"need m, n >= 1, got m={m}, n={n}")
    return binomial(m + n - 1, m)


def num_total_entries(m: int, n: int) -> int:
    """Total entry count ``n**m`` of a dense ``R^[m,n]`` tensor."""
    if m < 1 or n < 1:
        raise ValueError(f"need m, n >= 1, got m={m}, n={n}")
    return n**m


def symmetry_savings_factor(m: int, n: int) -> float:
    """Storage-compression ratio ``n^m / C(m+n-1, m)`` — approaches ``m!``
    as ``n`` grows (the paper's headline factor)."""
    return num_total_entries(m, n) / num_unique_entries(m, n)


@lru_cache(maxsize=None)
def factorial_table(up_to: int) -> np.ndarray:
    """``[0!, 1!, ..., up_to!]`` as an int64 array (valid through 20!)."""
    if up_to > 20:
        raise ValueError("factorial_table overflows int64 past 20!")
    out = np.ones(up_to + 1, dtype=np.int64)
    for k in range(2, up_to + 1):
        out[k] = out[k - 1] * k
    out.setflags(write=False)
    return out
