"""Shared utilities: exact combinatorics, seeded RNG helpers, flop accounting."""

from repro.util.combinatorics import (
    binomial,
    factorial,
    factorial_table,
    multinomial,
    multinomial1_from_index,
    multinomial_from_index,
    num_total_entries,
    num_unique_entries,
    symmetry_savings_factor,
)
from repro.util.asciiplot import ascii_bars, ascii_plot
from repro.util.flopcount import FlopCounter, counting, null_counter
from repro.util.rng import (
    fibonacci_sphere,
    make_rng,
    random_unit_vector,
    random_unit_vectors,
)

__all__ = [
    "binomial",
    "factorial",
    "factorial_table",
    "multinomial",
    "multinomial1_from_index",
    "multinomial_from_index",
    "num_total_entries",
    "num_unique_entries",
    "symmetry_savings_factor",
    "ascii_bars",
    "ascii_plot",
    "FlopCounter",
    "counting",
    "null_counter",
    "fibonacci_sphere",
    "make_rng",
    "random_unit_vector",
    "random_unit_vectors",
]
