"""Dependency-free ASCII plotting for examples and benchmark reports.

Terminal-friendly line/scatter plots with optional logarithmic axes —
enough to render Figure 5-style curves without matplotlib (which this
offline environment does not ship).
"""

from __future__ import annotations

import numpy as np

__all__ = ["ascii_plot", "ascii_bars"]


def ascii_plot(
    series: dict[str, tuple[np.ndarray, np.ndarray]],
    width: int = 64,
    height: int = 18,
    logx: bool = False,
    logy: bool = False,
    xlabel: str = "",
    ylabel: str = "",
) -> str:
    """Render multiple (x, y) series on one character grid.

    Parameters
    ----------
    series : mapping from a 1-character-or-longer label to ``(x, y)``
        arrays; the first character of each label is used as its marker.
    width, height : grid dimensions in characters.
    logx, logy : logarithmic axes (values must then be positive).

    Returns the plot as a multi-line string (y axis annotated with min/max).
    """
    if not series:
        raise ValueError("need at least one series")
    xs_all, ys_all = [], []
    for label, (x, y) in series.items():
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        if x.shape != y.shape or x.ndim != 1 or x.size == 0:
            raise ValueError(f"series {label!r} must be equal-length 1-D arrays")
        if logx and np.any(x <= 0):
            raise ValueError(f"series {label!r} has nonpositive x with logx")
        if logy and np.any(y <= 0):
            raise ValueError(f"series {label!r} has nonpositive y with logy")
        xs_all.append(x)
        ys_all.append(y)

    def tx(v):
        return np.log10(v) if logx else v

    def ty(v):
        return np.log10(v) if logy else v

    xmin = min(tx(x).min() for x in xs_all)
    xmax = max(tx(x).max() for x in xs_all)
    ymin = min(ty(y).min() for y in ys_all)
    ymax = max(ty(y).max() for y in ys_all)
    xspan = (xmax - xmin) or 1.0
    yspan = (ymax - ymin) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for label, (x, y) in series.items():
        mark = label[0]
        for xv, yv in zip(tx(np.asarray(x, float)), ty(np.asarray(y, float))):
            col = int(round((xv - xmin) / xspan * (width - 1)))
            row = int(round((yv - ymin) / yspan * (height - 1)))
            grid[height - 1 - row][col] = mark

    top = f"{(10**ymax if logy else ymax):.3g}"
    bottom = f"{(10**ymin if logy else ymin):.3g}"
    lines = []
    for r, row in enumerate(grid):
        prefix = top if r == 0 else (bottom if r == height - 1 else "")
        lines.append(f"{prefix:>10s} |" + "".join(row))
    left = f"{(10**xmin if logx else xmin):.3g}"
    right = f"{(10**xmax if logx else xmax):.3g}"
    lines.append(" " * 11 + "+" + "-" * width)
    lines.append(" " * 12 + f"{left}{' ' * max(1, width - len(left) - len(right))}{right}")
    legend = "  ".join(f"{label[0]}={label}" for label in series)
    footer = f"   {xlabel}  [{legend}]" if xlabel else f"   [{legend}]"
    if ylabel:
        footer += f"  y={ylabel}"
    lines.append(footer)
    return "\n".join(lines)


def ascii_bars(
    labels: list[str], values: list[float], width: int = 50, unit: str = ""
) -> str:
    """Horizontal bar chart (linear scale, bars normalized to the max)."""
    if len(labels) != len(values):
        raise ValueError("labels and values must have equal length")
    if not labels:
        raise ValueError("need at least one bar")
    vmax = max(values)
    if vmax <= 0:
        raise ValueError("values must contain a positive maximum")
    label_w = max(len(s) for s in labels)
    lines = []
    for label, v in zip(labels, values):
        bar = "#" * max(0, int(round(v / vmax * width)))
        lines.append(f"{label:>{label_w}s} |{bar} {v:.3g}{unit}")
    return "\n".join(lines)
