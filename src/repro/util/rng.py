"""Seeded random number helpers.

All stochastic components of the library (random symmetric tensors, starting
vectors, phantom generation) draw through these helpers so that every
experiment is reproducible from a single integer seed.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "make_rng",
    "spawn_rng",
    "random_unit_vectors",
    "random_unit_vector",
    "fibonacci_sphere",
]


def make_rng(seed: int | np.random.Generator | None = None) -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`.

    Passing an existing Generator returns it unchanged so callers can thread
    one RNG through a pipeline.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rng(seed: int | None, *key: int) -> np.random.Generator:
    """A child generator derived from ``(seed, key)`` via
    :class:`numpy.random.SeedSequence` spawn keys.

    The stream depends only on the root seed and the key — not on how
    many siblings were spawned before it, which worker thread asks, or
    in what order — so per-start randomness (e.g. restart vectors for
    attempt ``a`` of start ``i``: ``spawn_rng(seed, i, a)``) is identical
    for ``workers=1`` and ``workers=8``, and a checkpoint-resumed sweep
    regenerates exactly the streams the interrupted one used.

    ``seed=None`` draws fresh OS entropy (not reproducible); pass an
    integer for deterministic sweeps.
    """
    entropy = seed if seed is None else int(seed)
    sequence = np.random.SeedSequence(
        entropy, spawn_key=tuple(int(k) for k in key)
    )
    return np.random.default_rng(sequence)


def random_unit_vectors(
    count: int,
    dim: int,
    rng: int | np.random.Generator | None = None,
    dtype: np.dtype | type = np.float64,
) -> np.ndarray:
    """Sample ``count`` unit vectors in ``R^dim`` the way the paper does:
    each entry uniform on ``[-1, 1]``, then normalize (Section V).

    Degenerate draws (norm below 1e-12, probability ~0) are redrawn.

    Returns an array of shape ``(count, dim)``.
    """
    if count < 0:
        raise ValueError(f"count must be nonnegative, got {count}")
    if dim < 1:
        raise ValueError(f"dim must be >= 1, got {dim}")
    rng = make_rng(rng)
    vecs = rng.uniform(-1.0, 1.0, size=(count, dim))
    norms = np.linalg.norm(vecs, axis=1)
    bad = norms < 1e-12
    while np.any(bad):
        vecs[bad] = rng.uniform(-1.0, 1.0, size=(int(bad.sum()), dim))
        norms = np.linalg.norm(vecs, axis=1)
        bad = norms < 1e-12
    out = vecs / norms[:, None]
    return out.astype(dtype, copy=False)


def random_unit_vector(
    dim: int,
    rng: int | np.random.Generator | None = None,
    dtype: np.dtype | type = np.float64,
) -> np.ndarray:
    """Single random unit vector in ``R^dim`` (see :func:`random_unit_vectors`)."""
    return random_unit_vectors(1, dim, rng=rng, dtype=dtype)[0]


def fibonacci_sphere(count: int, dtype: np.dtype | type = np.float64) -> np.ndarray:
    """Deterministic, nearly-even covering of the unit sphere in ``R^3``.

    The paper notes that "one could use a deterministic approach and pick
    starting vectors evenly spaced about the sphere"; this is the standard
    Fibonacci-lattice construction of such a set.

    Returns an array of shape ``(count, 3)``.
    """
    if count < 1:
        raise ValueError(f"count must be >= 1, got {count}")
    i = np.arange(count, dtype=np.float64)
    golden = (1.0 + 5.0**0.5) / 2.0
    theta = 2.0 * np.pi * i / golden
    z = 1.0 - (2.0 * i + 1.0) / count
    r = np.sqrt(np.maximum(0.0, 1.0 - z * z))
    pts = np.stack([r * np.cos(theta), r * np.sin(theta), z], axis=1)
    return pts.astype(dtype, copy=False)
