"""Floating-point operation accounting.

The paper reports performance in GFLOPS; since this reproduction's "GPU" is
a simulator, absolute rates come from a performance model while *flop counts*
are exact.  Kernels accept an optional :class:`FlopCounter` and charge their
arithmetic to it, which lets the Table II / Table III benchmarks compare the
counted cost of the symmetric kernels with the closed-form expressions
(``~n^m/(m-1)!`` vs ``2 n^m`` general) and feed measured flops into the
device models.

The counter distinguishes flops (float multiply/add/div) from integer "index
ops" (the index-array and multinomial bookkeeping of Figures 2-4) because the
paper's Section III-B.5 storage/compute tradeoff is precisely about removing
the latter.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field

__all__ = ["FlopCounter", "null_counter", "counting"]


@dataclass
class FlopCounter:
    """Mutable tally of arithmetic performed by instrumented kernels.

    Attributes
    ----------
    flops : float multiply/add/subtract/divide operations.
    intops : integer index/multinomial bookkeeping operations.
    loads : array elements read (for arithmetic-intensity estimates).
    stores : array elements written.
    """

    flops: int = 0
    intops: int = 0
    loads: int = 0
    stores: int = 0
    _stack: list = field(default_factory=list, repr=False)

    def add_flops(self, k: int) -> None:
        self.flops += k

    def add_intops(self, k: int) -> None:
        self.intops += k

    def add_loads(self, k: int) -> None:
        self.loads += k

    def add_stores(self, k: int) -> None:
        self.stores += k

    def reset(self) -> None:
        self.flops = self.intops = self.loads = self.stores = 0

    def snapshot(self) -> dict:
        return {
            "flops": self.flops,
            "intops": self.intops,
            "loads": self.loads,
            "stores": self.stores,
        }

    @contextmanager
    def section(self):
        """Context manager yielding the delta accumulated inside the block."""
        before = self.snapshot()
        delta: dict = {}
        try:
            yield delta
        finally:
            after = self.snapshot()
            for key in before:
                delta[key] = after[key] - before[key]


class _NullCounter(FlopCounter):
    """Counter that ignores all charges (zero-overhead default)."""

    def add_flops(self, k: int) -> None:  # noqa: D102 - intentional no-op
        pass

    def add_intops(self, k: int) -> None:
        pass

    def add_loads(self, k: int) -> None:
        pass

    def add_stores(self, k: int) -> None:
        pass


_NULL = _NullCounter()


def null_counter() -> FlopCounter:
    """Shared no-op counter used when a caller passes ``counter=None``."""
    return _NULL


@contextmanager
def counting():
    """Convenience: ``with counting() as c: kernel(..., counter=c)``."""
    counter = FlopCounter()
    yield counter
