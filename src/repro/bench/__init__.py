"""Benchmark harness: smoke runner, result schema, and regression gate.

The full benchmark suite lives in ``benchmarks/bench_*.py`` (pytest-run,
minutes of wall clock).  This package provides the complementary fast
path used in CI and by the ``repro bench-smoke`` / ``repro bench-compare``
CLI: a curated smoke subset of those workloads, a schema-versioned JSON
result document (``BENCH_<stamp>.json``), and a threshold gate that fails
when a new result file regresses against a baseline.
"""

from repro.bench.compare import (
    IncomparableBenchError,
    compare_bench,
    has_regression,
    render_comparison,
)
from repro.bench.harness import BenchTimeout, run_smoke, write_bench_file
from repro.bench.schema import BENCH_SCHEMA, validate_bench

__all__ = [
    "BENCH_SCHEMA",
    "BenchTimeout",
    "IncomparableBenchError",
    "compare_bench",
    "has_regression",
    "render_comparison",
    "run_smoke",
    "validate_bench",
    "write_bench_file",
]
