"""Smoke benchmark runner producing schema-versioned ``BENCH_<stamp>.json``.

Each smoke workload is a scaled-down, self-contained mirror of one of the
full ``benchmarks/bench_*.py`` suites (the ``source`` tag records which).
Workloads are sized to finish in tens of milliseconds so the whole smoke
set runs in a few seconds — fast enough for a pre-merge regression gate
(``repro bench-compare``) while still exercising the same code paths the
full suites time.

Run it three ways, all equivalent::

    repro bench-smoke -o BENCH_new.json
    python -m repro.bench.harness -o BENCH_new.json
    make bench-smoke
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import statistics
import threading
import time
from datetime import datetime, timezone
from pathlib import Path

import numpy as np

from repro.bench.schema import BENCH_SCHEMA, validate_bench
from repro.core.multistart import multistart_sshopm, starting_vectors
from repro.solvers.sshopm import sshopm
from repro.instrument import Recorder, span
from repro.instrument.events import current_spool, new_run_id, provenance
from repro.instrument.metrics import use_registry
from repro.kernels.dispatch import get_kernels
from repro.parallel.executor import parallel_multistart_sshopm
from repro.symtensor.random import random_symmetric_batch, random_symmetric_tensor

__all__ = ["BenchTimeout", "SMOKE_WORKLOADS", "main", "run_smoke",
           "write_bench_file"]


class BenchTimeout(RuntimeError):
    """A smoke workload exceeded the per-workload wall-clock budget."""

    def __init__(self, workload: str, seconds: float):
        super().__init__(
            f"smoke workload {workload!r} exceeded the {seconds:g}s timeout "
            f"(hung or pathologically slow)"
        )
        self.workload = workload
        self.seconds = seconds


def _run_with_timeout(name: str, fn, timeout: float | None):
    """Run ``fn`` with a wall-clock budget.

    The workload runs on a daemon thread so a genuinely hung workload
    cannot also hang interpreter shutdown (a ThreadPoolExecutor's
    non-daemon workers would).  With ``timeout=None`` the call is inline —
    the timed path must not pay thread-handoff noise unless asked to.
    """
    if timeout is None:
        return fn()
    box: dict = {}

    def target():
        try:
            box["result"] = fn()
        except BaseException as exc:  # propagate workload errors faithfully
            box["error"] = exc

    thread = threading.Thread(target=target, daemon=True,
                              name=f"bench-smoke-{name}")
    thread.start()
    thread.join(timeout)
    if thread.is_alive():
        raise BenchTimeout(name, timeout)
    if "error" in box:
        raise box["error"]
    return box.get("result")


def _batch(tensors=8, m=4, n=6, seed=0):
    return random_symmetric_batch(tensors, m, n, rng=np.random.default_rng(seed))


def _smoke_multistart_vectorized():
    """Mirror of bench_table3_performance.py (vectorized batched kernels)."""
    batch = _batch()
    starts = starting_vectors(16, batch.n, rng=np.random.default_rng(1))
    multistart_sshopm(batch, alpha=2.0, starts=starts, max_iters=40,
                      backend="batched", telemetry=False)
    return {"tensors": len(batch), "starts": 16, "backend": "batched"}


def _smoke_multistart_unrolled():
    """Mirror of bench_ablation_cse.py (code-generated unrolled kernels)."""
    batch = _batch(tensors=8, m=4, n=4)
    starts = starting_vectors(16, batch.n, rng=np.random.default_rng(1))
    multistart_sshopm(batch, alpha=2.0, starts=starts, max_iters=40,
                      backend="batched_unrolled", telemetry=False)
    return {"tensors": len(batch), "starts": 16, "backend": "batched_unrolled"}


def _smoke_sshopm_single():
    """Mirror of bench_convergence_theory.py (single-pair SS-HOPM)."""
    tensor = random_symmetric_tensor(4, 8, rng=np.random.default_rng(2))
    sshopm(tensor, alpha=3.0, max_iters=80, rng=np.random.default_rng(3),
           telemetry=False)
    return {"m": 4, "n": 8, "alpha": 3.0}


def _smoke_kernel_ax_m1():
    """Mirror of bench_table2_costs.py (raw batched kernel applications)."""
    batch = _batch(tensors=16, m=4, n=6)
    suite = get_kernels("batched", batch.m, batch.n, batched=True)
    values = batch.values[:, None, :]
    x = starting_vectors(8, batch.n, rng=np.random.default_rng(4))
    x = np.broadcast_to(x[None, :, :], (len(batch), 8, batch.n)).copy()
    for _ in range(10):
        suite.ax_m1(values, x)
    return {"tensors": len(batch), "variant": suite.name, "applications": 10}


def _smoke_parallel_two_workers():
    """Mirror of bench_figure5_scaling.py (threaded chunk executor)."""
    batch = _batch(tensors=8, m=3, n=5)
    parallel_multistart_sshopm(batch, workers=2, num_starts=8, alpha=1.0,
                               max_iters=30, rng=np.random.default_rng(5))
    return {"tensors": len(batch), "workers": 2}


def _smoke_process_fleet():
    """Mirror of bench_process_fleet.py (zero-copy shm worker processes)."""
    from repro.parallel.fleet import parallel_fleet_solve
    from repro.parallel.shm import SHM_AVAILABLE

    batch = _batch(tensors=6, m=4, n=3, seed=6)
    executor = "process" if SHM_AVAILABLE else "thread"
    rep = parallel_fleet_solve(batch, workers=2, num_starts=6, alpha=2.0,
                               max_iters=30, rng=np.random.default_rng(7),
                               executor=executor)
    return {"tensors": len(batch), "workers": 2, "executor": rep.executor}


def _smoke_span_overhead():
    """Mirror of bench_instrument_overhead.py (recorder span hot loop)."""
    rec = Recorder()
    with rec.activate():
        for _ in range(2000):
            with span("outer"):
                with span("inner"):
                    pass
    return {"spans": 4000}


def _smoke_method_compare():
    """Mirror of bench_methods.py (solver zoo method comparison)."""
    from repro.engine import fleet_solve
    from repro.solvers import qrst_batch

    batch = _batch(tensors=4, m=4, n=4, seed=8)
    starts = starting_vectors(8, batch.n, rng=np.random.default_rng(9))
    fleet_solve(batch, starts=starts, alpha=4.0, tol=1e-8, max_iters=40)
    fleet_solve(batch, starts=starts, tol=1e-8, max_iters=40,
                adaptive="geap")
    qrst_batch(batch, num_starts=8, tol=1e-8, max_iters=40, rng=10)
    return {"tensors": len(batch), "starts": 8,
            "methods": "sshopm+geap+qrst"}


SMOKE_WORKLOADS = [
    ("multistart_vectorized", "bench_table3_performance.py", _smoke_multistart_vectorized),
    ("multistart_unrolled", "bench_ablation_cse.py", _smoke_multistart_unrolled),
    ("sshopm_single", "bench_convergence_theory.py", _smoke_sshopm_single),
    ("kernel_ax_m1", "bench_table2_costs.py", _smoke_kernel_ax_m1),
    ("parallel_two_workers", "bench_figure5_scaling.py", _smoke_parallel_two_workers),
    ("process_fleet", "bench_process_fleet.py", _smoke_process_fleet),
    ("span_overhead", "bench_instrument_overhead.py", _smoke_span_overhead),
    ("method_compare", "bench_methods.py", _smoke_method_compare),
]


def run_smoke(reps: int = 3, include: list[str] | None = None,
              timeout: float | None = None,
              backend: str | None = None) -> dict:
    """Time every smoke workload ``reps`` times; return a bench document.

    ``include`` restricts the run to the named workloads (unknown names
    raise :class:`ValueError`).  The first execution of each workload is a
    discarded warmup (JIT-free here, but it pays one-time table builds in
    the kernel caches, which would otherwise pollute the first rep).
    ``timeout`` caps each individual execution's wall-clock seconds and
    raises :class:`BenchTimeout` when exceeded — the CI guard against a
    hung kernel turning the smoke gate into an infinite wait.
    ``backend`` stamps the codegen backend the run represents into
    ``meta.backend`` (default: ``$REPRO_BENCH_BACKEND`` or ``"numpy"``);
    ``repro bench-compare`` refuses to gate across different backends.
    """
    if reps < 1:
        raise ValueError(f"reps must be >= 1, got {reps}")
    backend = backend or os.environ.get("REPRO_BENCH_BACKEND") or "numpy"
    if timeout is not None and timeout <= 0:
        raise ValueError(f"timeout must be positive, got {timeout}")
    known = {name for name, _, _ in SMOKE_WORKLOADS}
    if include is not None:
        unknown = sorted(set(include) - known)
        if unknown:
            raise ValueError(f"unknown smoke workloads: {', '.join(unknown)}")
    entries = []
    # isolate the harness' own metric emission from the caller's registry
    with use_registry():
        for name, source, fn in SMOKE_WORKLOADS:
            if include is not None and name not in include:
                continue
            # warmup, also yields workload params
            extra = _run_with_timeout(name, fn, timeout)
            seconds = []
            for _ in range(reps):
                t0 = time.perf_counter()
                _run_with_timeout(name, fn, timeout)
                seconds.append(time.perf_counter() - t0)
            entries.append({
                "name": name,
                "source": source,
                "reps": reps,
                "seconds": seconds,
                "median": statistics.median(seconds),
                "min": min(seconds),
                "extra": extra or {},
            })
    doc = {
        "schema": BENCH_SCHEMA,
        "stamp": datetime.now(timezone.utc).strftime("%Y%m%d_%H%M%S"),
        "meta": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "platform": platform.platform(),
            "machine": platform.machine(),
            "reps": reps,
            "backend": backend,
            # provenance: correlate this bench doc with the event stream /
            # trace of the run that produced it (schema meta is free-form)
            "run_id": _run_id(),
            **provenance(),
        },
        "benchmarks": entries,
    }
    return validate_bench(doc)


def _run_id() -> str:
    """The ambient spool's run id if one is open, else a fresh one."""
    spool = current_spool()
    return spool.run_id if spool is not None else new_run_id()


def write_bench_file(doc: dict, path: str | Path | None = None) -> Path:
    """Write ``doc`` as JSON; default path is ``BENCH_<stamp>.json`` in cwd."""
    if path is None:
        path = Path(f"BENCH_{doc['stamp']}.json")
    path = Path(path)
    path.write_text(json.dumps(doc, indent=2) + "\n")
    return path


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.harness",
        description="Run the smoke benchmark subset and write BENCH_<stamp>.json.",
    )
    parser.add_argument("-o", "--output", default=None,
                        help="output path (default BENCH_<stamp>.json in cwd)")
    parser.add_argument("--reps", type=int, default=3,
                        help="timed repetitions per workload (default 3)")
    parser.add_argument("--include", action="append", default=None,
                        metavar="NAME", help="run only this workload (repeatable)")
    parser.add_argument("--timeout", type=float, default=None, metavar="SECONDS",
                        help="per-workload wall-clock budget; a workload "
                             "exceeding it aborts the run with exit code 2")
    parser.add_argument("--backend", default=None,
                        help="codegen backend tag recorded in meta.backend "
                             "(default $REPRO_BENCH_BACKEND or 'numpy')")
    parser.add_argument("--list", action="store_true",
                        help="list smoke workloads and exit")
    args = parser.parse_args(argv)
    if args.list:
        for name, source, _ in SMOKE_WORKLOADS:
            print(f"{name:28s} (mirrors {source})")
        return 0
    try:
        doc = run_smoke(reps=args.reps, include=args.include,
                        timeout=args.timeout, backend=args.backend)
    except BenchTimeout as exc:
        print(f"error: {exc}")
        return 2
    path = write_bench_file(doc, args.output)
    total = sum(e["median"] for e in doc["benchmarks"])
    print(f"wrote {path} ({len(doc['benchmarks'])} benchmarks, "
          f"sum of medians {total * 1e3:.1f} ms)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
