"""The ``repro-bench/1`` result-document schema and its validator.

A bench file is a plain JSON object::

    {
      "schema": "repro-bench/1",
      "stamp": "20260805_120000",          # UTC %Y%m%d_%H%M%S
      "meta": {                            # free-form environment info
        "python": "3.11.8", "numpy": "1.26.4", "platform": "...",
        "reps": 5
      },
      "benchmarks": [
        {
          "name": "multistart_vectorized",  # unique within the file
          "source": "bench_table3_performance.py",  # suite file mirrored
          "reps": 5,
          "seconds": [0.012, 0.011, ...],   # raw per-rep wall times
          "median": 0.0115,                 # medians are what the gate
          "min": 0.011,                     #   compares by default
          "extra": {"tensors": 16, ...}     # optional workload params
        },
        ...
      ]
    }

``validate_bench`` checks structure, not values: it raises ``ValueError``
with a pointed message on the first violation so ``repro bench-compare``
can reject malformed or future-schema files before comparing.
"""

from __future__ import annotations

BENCH_SCHEMA = "repro-bench/1"

_REQUIRED_ENTRY_KEYS = ("name", "source", "reps", "seconds", "median", "min")

__all__ = ["BENCH_SCHEMA", "validate_bench"]


def validate_bench(doc) -> dict:
    """Validate a loaded bench document against ``repro-bench/1``.

    Returns ``doc`` unchanged on success; raises :class:`ValueError`
    describing the first problem otherwise.
    """
    if not isinstance(doc, dict):
        raise ValueError(f"bench document must be a JSON object, got {type(doc).__name__}")
    schema = doc.get("schema")
    if schema != BENCH_SCHEMA:
        raise ValueError(f"unsupported bench schema {schema!r} (expected {BENCH_SCHEMA!r})")
    if not isinstance(doc.get("stamp"), str) or not doc["stamp"]:
        raise ValueError("bench document missing string 'stamp'")
    if not isinstance(doc.get("meta"), dict):
        raise ValueError("bench document missing object 'meta'")
    benches = doc.get("benchmarks")
    if not isinstance(benches, list) or not benches:
        raise ValueError("bench document must have a non-empty 'benchmarks' list")
    seen: set[str] = set()
    for i, entry in enumerate(benches):
        if not isinstance(entry, dict):
            raise ValueError(f"benchmarks[{i}] must be an object")
        for key in _REQUIRED_ENTRY_KEYS:
            if key not in entry:
                raise ValueError(f"benchmarks[{i}] missing required key {key!r}")
        name = entry["name"]
        if not isinstance(name, str) or not name:
            raise ValueError(f"benchmarks[{i}].name must be a non-empty string")
        if name in seen:
            raise ValueError(f"duplicate benchmark name {name!r}")
        seen.add(name)
        secs = entry["seconds"]
        if not isinstance(secs, list) or not secs:
            raise ValueError(f"benchmarks[{i}].seconds must be a non-empty list")
        for s in secs:
            if not isinstance(s, (int, float)) or s < 0:
                raise ValueError(f"benchmarks[{i}].seconds contains non-timing value {s!r}")
        for key in ("median", "min"):
            if not isinstance(entry[key], (int, float)) or entry[key] < 0:
                raise ValueError(f"benchmarks[{i}].{key} must be a nonnegative number")
        if not isinstance(entry["reps"], int) or entry["reps"] < 1:
            raise ValueError(f"benchmarks[{i}].reps must be a positive integer")
    return doc
