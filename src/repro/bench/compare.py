"""The benchmark regression gate: compare two ``repro-bench/1`` files.

``compare_bench`` pairs benchmarks by name, computes the new/old timing
ratio, and classifies each as ``ok`` / ``faster`` / ``slower`` (ratio
beyond ``1 + threshold``), with ``added`` / ``removed`` for names present
on only one side.  ``repro bench-compare`` renders the table and exits
nonzero iff any benchmark is ``slower`` — the merge gate.

Two files are only *comparable* when they timed the same configuration:
documents recorded under different codegen backends (``meta.backend``,
absent meaning ``"numpy"``) raise :class:`IncomparableBenchError`, which
the CLI reports as "incomparable inputs" (exit 2) rather than letting a
backend switch masquerade as a regression (exit 1).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from repro.bench.schema import validate_bench

__all__ = [
    "ComparisonRow",
    "IncomparableBenchError",
    "compare_bench",
    "load_bench",
    "render_comparison",
]


class IncomparableBenchError(ValueError):
    """The two bench documents timed different configurations (e.g.
    different codegen backends) — a ratio between them is meaningless."""

    def __init__(self, message: str, *, old: str | None = None,
                 new: str | None = None):
        super().__init__(message)
        self.old = old
        self.new = new


@dataclass
class ComparisonRow:
    """One benchmark's old-vs-new outcome.

    ``ratio`` is ``new / old`` for the chosen metric (``None`` for
    added/removed rows or a zero old timing); ``status`` is one of
    ``ok`` / ``faster`` / ``slower`` / ``added`` / ``removed``.
    """

    name: str
    old: float | None
    new: float | None
    ratio: float | None
    status: str


def load_bench(path: str | Path) -> dict:
    """Load and validate a bench JSON file."""
    raw = Path(path).read_text()
    try:
        doc = json.loads(raw)
    except json.JSONDecodeError as exc:
        raise ValueError(f"{path}: not valid JSON ({exc})") from exc
    try:
        return validate_bench(doc)
    except ValueError as exc:
        raise ValueError(f"{path}: {exc}") from exc


def compare_bench(
    old: dict | str | Path,
    new: dict | str | Path,
    threshold: float = 0.2,
    metric: str = "median",
) -> list[ComparisonRow]:
    """Compare two bench documents (or file paths) benchmark-by-benchmark.

    A benchmark is ``slower`` when ``new > old * (1 + threshold)`` and
    ``faster`` when ``new < old / (1 + threshold)``; in between is ``ok``
    (timing noise).  ``metric`` selects which per-benchmark statistic to
    compare — ``"median"`` (default, robust) or ``"min"`` (best case).
    """
    if metric not in ("median", "min"):
        raise ValueError(f"metric must be 'median' or 'min', got {metric!r}")
    if threshold < 0:
        raise ValueError(f"threshold must be >= 0, got {threshold}")
    if not isinstance(old, dict):
        old = load_bench(old)
    else:
        validate_bench(old)
    if not isinstance(new, dict):
        new = load_bench(new)
    else:
        validate_bench(new)

    old_backend = (old.get("meta") or {}).get("backend") or "numpy"
    new_backend = (new.get("meta") or {}).get("backend") or "numpy"
    if old_backend != new_backend:
        raise IncomparableBenchError(
            f"bench files are incomparable: old was recorded with codegen "
            f"backend {old_backend!r}, new with {new_backend!r}; rerun both "
            f"on the same backend before gating on the ratio",
            old=old_backend, new=new_backend,
        )

    old_by = {e["name"]: e for e in old["benchmarks"]}
    new_by = {e["name"]: e for e in new["benchmarks"]}
    rows: list[ComparisonRow] = []
    for name, o in old_by.items():
        n = new_by.get(name)
        if n is None:
            rows.append(ComparisonRow(name, o[metric], None, None, "removed"))
            continue
        t_old, t_new = float(o[metric]), float(n[metric])
        if t_old <= 0.0:
            rows.append(ComparisonRow(name, t_old, t_new, None, "ok"))
            continue
        ratio = t_new / t_old
        if ratio > 1.0 + threshold:
            status = "slower"
        elif ratio < 1.0 / (1.0 + threshold):
            status = "faster"
        else:
            status = "ok"
        rows.append(ComparisonRow(name, t_old, t_new, ratio, status))
    for name, n in new_by.items():
        if name not in old_by:
            rows.append(ComparisonRow(name, None, n[metric], None, "added"))
    return rows


def render_comparison(rows: list[ComparisonRow], threshold: float = 0.2,
                      metric: str = "median") -> str:
    """ASCII table of comparison rows plus a one-line verdict."""
    header = f"{'benchmark':28s} {'old ' + metric:>12s} {'new ' + metric:>12s} {'ratio':>8s}  status"
    lines = [header, "-" * len(header)]
    for row in rows:
        old = f"{row.old * 1e3:.3f} ms" if row.old is not None else "-"
        new = f"{row.new * 1e3:.3f} ms" if row.new is not None else "-"
        ratio = f"{row.ratio:.2f}x" if row.ratio is not None else "-"
        lines.append(f"{row.name:28s} {old:>12s} {new:>12s} {ratio:>8s}  {row.status}")
    slower = [r.name for r in rows if r.status == "slower"]
    if slower:
        lines.append(f"REGRESSION: {len(slower)} benchmark(s) beyond "
                     f"+{threshold:.0%}: {', '.join(slower)}")
    else:
        lines.append(f"OK: no benchmark regressed beyond +{threshold:.0%}")
    return "\n".join(lines)


def has_regression(rows: list[ComparisonRow]) -> bool:
    """True iff any row is ``slower`` (the gate condition)."""
    return any(r.status == "slower" for r in rows)
