"""Serve-side job model: specs, lifecycle, and the checkpointing runner.

A *job* is one solve request flowing through the daemon: a declarative
:class:`JobSpec` (everything needed to rebuild the exact problem — a
tensor recipe, a starts seed, solver parameters), a mutable :class:`Job`
tracking its lifecycle, and :func:`run_job`, which executes the spec in
tensor *chunks* with a ``repro-ckpt/1`` checkpoint written after every
chunk.

Chunked checkpointing is what makes drain/resume bit-for-bit: per-tensor
rows of a fleet result depend only on (tensor, starting vectors) — shard
boundaries change scheduling, never arithmetic — so completed chunks
recorded as JSON (Python's float repr round-trips ``float64`` exactly)
can be merged with freshly solved chunks and match an uninterrupted run
to the last bit.  A drain interrupts *between* chunks: the in-flight
chunk cancels through the engine's lane-retirement ``stop=`` hook and is
discarded; everything checkpointed stays.

The runner is also where the circuit breaker meets the fleet: a chunk
asking for the process tier consults the breaker first, a run whose
workers crashed (even if recovered by requeueing) records a failure, and
an open breaker reroutes chunks to the thread tier with the job marked
``degraded``.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.core.multistart import starting_vectors
from repro.instrument.events import emit as _emit, new_run_id
from repro.instrument.log import get_logger
from repro.instrument.metrics import observe_serve_degraded, observe_serve_job
from repro.resilience.checkpoint import (
    check_resumable,
    new_checkpoint,
    read_checkpoint,
    tensor_fingerprint,
    write_checkpoint,
)
from repro.symtensor.random import random_symmetric_batch
from repro.symtensor.storage import SymmetricTensorBatch

__all__ = ["Job", "JobSpec", "run_job"]

_log = get_logger("serve.jobs")

#: Terminal job states (``done_event`` is set exactly when one is reached).
TERMINAL = frozenset({"done", "failed", "interrupted", "deadline"})


class BadSpec(ValueError):
    """A request document that cannot be turned into a runnable spec."""


@dataclass
class JobSpec:
    """Declarative description of one solve request.

    ``tensors`` is a recipe, not a payload: ``{"kind": "random", "count",
    "m", "n", "seed"}`` rebuilds the batch deterministically (the same
    recipe the CLI's checkpoint ``source`` uses), and ``{"kind":
    "values", "values", "m", "n"}`` carries the unique-value rows inline.
    Both reconstruct the identical batch on resume, which the checkpoint
    layer verifies by fingerprint.

    ``method`` picks the solver from the :mod:`repro.solvers` registry
    (``"sshopm"``, ``"geap"``, ``"qrst"`` — never ``"auto"``: a job spec
    must be reproducible, so routing happens at submission time).  A
    checkpoint written under one method is stale for any other.
    """

    tensors: dict
    num_starts: int = 8
    seed: int = 0
    alpha: float = 0.0
    tol: float = 1e-8
    max_iters: int = 200
    workers: int = 1
    executor: str = "thread"
    chunk: int = 16
    deadline_seconds: float | None = None
    faults: dict = field(default_factory=dict)
    method: str = "sshopm"

    @classmethod
    def from_doc(cls, doc: dict) -> "JobSpec":
        if not isinstance(doc, dict):
            raise BadSpec("request body must be a JSON object")
        tensors = doc.get("tensors")
        if not isinstance(tensors, dict):
            raise BadSpec("request needs a 'tensors' object")
        kind = tensors.get("kind", "random")
        if kind == "random":
            for key in ("count", "m", "n"):
                if not isinstance(tensors.get(key), int) or tensors[key] < 1:
                    raise BadSpec(
                        f"tensors.{key} must be a positive integer")
            tensors.setdefault("seed", 0)
        elif kind == "values":
            if not isinstance(tensors.get("values"), list):
                raise BadSpec("tensors.values must be a list of rows")
            for key in ("m", "n"):
                if not isinstance(tensors.get(key), int):
                    raise BadSpec(f"tensors.{key} must be an integer")
        else:
            raise BadSpec(f"unknown tensors.kind {kind!r}")
        executor = doc.get("executor", "thread")
        if executor not in ("thread", "process", "auto"):
            raise BadSpec(f"executor must be thread/process/auto, "
                          f"got {executor!r}")
        deadline = doc.get("deadline_seconds")
        if deadline is not None and (not isinstance(deadline, (int, float))
                                     or deadline <= 0):
            raise BadSpec("deadline_seconds must be a positive number")
        method = doc.get("method", "sshopm")
        from repro.solvers import available_methods

        if method == "auto" or method not in available_methods():
            raise BadSpec(
                f"method must be one of "
                f"{[m for m in available_methods() if m != 'auto']}, "
                f"got {method!r}")
        try:
            spec = cls(
                tensors=tensors,
                num_starts=int(doc.get("num_starts", 8)),
                seed=int(doc.get("seed", 0)),
                alpha=float(doc.get("alpha", 0.0)),
                tol=float(doc.get("tol", 1e-8)),
                max_iters=int(doc.get("max_iters", 200)),
                workers=int(doc.get("workers", 1)),
                executor=executor,
                chunk=int(doc.get("chunk", 16)),
                deadline_seconds=(float(deadline) if deadline is not None
                                  else None),
                faults={int(k): v
                        for k, v in (doc.get("faults") or {}).items()},
                method=method,
            )
        except (TypeError, ValueError) as exc:
            raise BadSpec(f"invalid solver parameter: {exc}") from exc
        if spec.num_starts < 1 or spec.max_iters < 1 or spec.chunk < 1 \
                or spec.workers < 1:
            raise BadSpec("num_starts/max_iters/chunk/workers must be >= 1")
        return spec

    def to_doc(self) -> dict:
        return {
            "tensors": self.tensors,
            "num_starts": self.num_starts,
            "seed": self.seed,
            "alpha": self.alpha,
            "tol": self.tol,
            "max_iters": self.max_iters,
            "workers": self.workers,
            "executor": self.executor,
            "chunk": self.chunk,
            "deadline_seconds": self.deadline_seconds,
            "faults": {str(k): v for k, v in self.faults.items()},
            "method": self.method,
        }

    def build_batch(self) -> SymmetricTensorBatch:
        """Rebuild the tensor batch the recipe describes (deterministic:
        the resumed process gets the byte-identical batch)."""
        t = self.tensors
        if t.get("kind", "random") == "random":
            return random_symmetric_batch(
                t["count"], m=t["m"], n=t["n"], rng=int(t.get("seed", 0)))
        values = np.asarray(t["values"], dtype=np.float64)
        return SymmetricTensorBatch(values, t["m"], t["n"])

    def build_starts(self, n: int) -> np.ndarray:
        return starting_vectors(self.num_starts, n, scheme="random",
                                rng=self.seed)


class Job:
    """One request's mutable lifecycle state (thread-safe via ``lock``)."""

    def __init__(self, job_id: str, spec: JobSpec, run_id: str | None = None):
        self.id = job_id
        self.spec = spec
        self.run_id = run_id or new_run_id()
        self.status = "queued"
        self.degraded = False
        self.error: str | None = None
        self.created = time.time()
        self.seconds: float | None = None
        self.result: dict | None = None
        self.checkpoint: str | None = None
        self.stop_event = threading.Event()
        self.done_event = threading.Event()
        self.lock = threading.Lock()

    def finish(self, status: str, *, error: str | None = None) -> None:
        assert status in TERMINAL, status
        with self.lock:
            self.status = status
            self.error = error
            self.seconds = time.time() - self.created
        self.done_event.set()
        observe_serve_job(status, self.seconds)
        _emit("job_finish", job=self.id, status=status, seconds=self.seconds)

    def to_doc(self) -> dict:
        with self.lock:
            doc = {
                "job": self.id,
                "run_id": self.run_id,
                "status": self.status,
                "degraded": self.degraded,
                "seconds": self.seconds,
                "checkpoint": self.checkpoint,
            }
            if self.error is not None:
                doc["error"] = self.error
            if self.result is not None:
                doc["result"] = self.result
        return doc


def _row_record(result, t: int) -> dict:
    """One tensor's rows of a fleet result as a JSON-exact record."""
    return {
        "eigenvalues": result.eigenvalues[t].tolist(),
        "eigenvectors": result.eigenvectors[t].tolist(),
        "converged": result.converged[t].tolist(),
        "iterations": result.iterations[t].tolist(),
        "failed": result.failed[t].tolist(),
        "shifts": (result.shifts[t].tolist()
                   if result.shifts is not None else None),
    }


def _merge_rows(rows: dict, T: int, V: int, n: int) -> dict:
    """Assemble the per-tensor records into the job's result document.

    Tensors with no record (a deadline fired before their chunk ran) get
    NaN/failed placeholder rows — the same never-drop contract as the
    fleet's write-off path.
    """
    lam = np.full((T, V), np.nan)
    vec = np.full((T, V, n), np.nan)
    conv = np.zeros((T, V), dtype=bool)
    iters = np.zeros((T, V), dtype=np.int64)
    failed = np.ones((T, V), dtype=bool)
    shifts = np.full((T, V), np.nan)
    for t, rec in rows.items():
        lam[t] = rec["eigenvalues"]
        vec[t] = rec["eigenvectors"]
        conv[t] = rec["converged"]
        iters[t] = rec["iterations"]
        failed[t] = rec["failed"]
        if rec.get("shifts") is not None:
            shifts[t] = rec["shifts"]
    return {
        "eigenvalues": lam.tolist(),
        "eigenvectors": vec.tolist(),
        "converged": conv.tolist(),
        "iterations": iters.tolist(),
        "failed": failed.tolist(),
        "shifts": shifts.tolist(),
        "tensors_solved": sorted(rows),
    }


def _run_qrst_chunk(spec, sub, num_starts, job, deadline, faults):
    """One chunk through the QRST batch driver, wrapped in a report shaped
    like the process fleet's so the chunk loop handles both uniformly.

    QRST factors each tensor whole (dense QR sweeps), so the chunk runs
    on the thread tier in-process — the breaker and the worker fleet
    never see it.  Chaos ``faults`` keys (already rebased to this chunk)
    are reinterpreted as per-tensor crash budgets.
    """
    from types import SimpleNamespace

    from repro.solvers.qrst import qrst_batch

    plan = None
    if faults:
        from repro.resilience.faults import FaultPlan

        plan = FaultPlan(seed=spec.seed,
                         crashes={int(k): 1 for k in faults})

    def _stop() -> bool:
        if job.stop_event.is_set():
            return True
        return deadline is not None and time.time() >= deadline

    result = qrst_batch(
        sub, num_starts=num_starts, tol=spec.tol,
        max_iters=spec.max_iters, rng=spec.seed, stop=_stop,
        faults=plan, guards=True,
    )
    return SimpleNamespace(result=result, requeues=0, failed_shards=[],
                           executor="thread", shard_sizes=[len(sub)])


def run_job(job: Job, *, breaker=None, ckpt_dir=None, keep: int = 0,
            protect=None) -> None:
    """Execute ``job`` chunk by chunk; always leaves it in a terminal
    state (the runner thread must survive any single job).

    ``breaker`` gates the process tier; ``ckpt_dir`` enables chunk
    checkpointing (without it a drain loses in-flight work — the server
    always passes one); ``keep`` > 0 prunes old checkpoint files after a
    successful job.  ``protect`` is a zero-argument callable returning
    checkpoint paths that pruning must never touch — the server passes
    its live in-flight set, so one job finishing cannot delete the
    checkpoint another running job would need at the next drain.
    """
    from repro.parallel.fleet import parallel_fleet_solve

    spec = job.spec
    _emit("job_start", job=job.id)
    with job.lock:
        job.status = "running"
    try:
        batch = spec.build_batch()
        starts = spec.build_starts(batch.n)
    except Exception as exc:
        job.finish("failed", error=f"bad problem spec: {exc}")
        return
    T, V = len(batch), starts.shape[0]

    deadline = (job.created + spec.deadline_seconds
                if spec.deadline_seconds is not None else None)

    ckpt_path = None
    ckpt = None
    rows: dict[int, dict] = {}
    if ckpt_dir is not None:
        ckpt_path = Path(ckpt_dir) / f"job-{job.id}.json"
        job.checkpoint = str(ckpt_path)
        fingerprint = tensor_fingerprint(batch)
        if ckpt_path.exists():
            try:
                ckpt = read_checkpoint(ckpt_path)
                check_resumable(
                    ckpt, fingerprint=fingerprint,
                    num_starts=spec.num_starts, seed=spec.seed,
                    alpha=spec.alpha, tol=spec.tol,
                    max_iters=spec.max_iters)
                ckpt_method = ((((ckpt.get("run") or {}).get("source")
                                 or {}).get("spec") or {})
                               .get("method", "sshopm"))
                if ckpt_method != spec.method:
                    raise ValueError(
                        f"checkpoint was written by method {ckpt_method!r}"
                        f", job wants {spec.method!r}")
                rows = {int(k): v for k, v in ckpt["starts"].items()}
                _log.info("resuming job from checkpoint",
                          fields={"job": job.id,
                                  "tensors_done": len(rows)})
            except ValueError as exc:
                _log.warning("ignoring stale checkpoint",
                             fields={"job": job.id, "error": str(exc)})
                ckpt = None
                rows = {}
        if ckpt is None:
            ckpt = new_checkpoint(
                fingerprint=fingerprint, num_starts=spec.num_starts,
                seed=spec.seed, alpha=spec.alpha, tol=spec.tol,
                max_iters=spec.max_iters,
                source={"kind": "serve-job", "job": job.id,
                        "spec": spec.to_doc()})
            ckpt["run"]["run_id"] = job.run_id

    hit_deadline = False
    # Chaos fault keys live in a job-global shard-id space: the shard ids
    # of each chunk's fleet run, concatenated in chunk order.  Each run's
    # report tells us how many shards it actually used, so keys are
    # rebased as chunks complete and a fault lands on whichever chunk run
    # contains its shard.  (After a resume the skipped chunks' shard
    # counts are unknown, so fault placement is exact only within one
    # process life — fine for chaos injection.)
    shards_seen = 0
    for lo in range(0, T, spec.chunk):
        hi = min(lo + spec.chunk, T)
        if all(t in rows for t in range(lo, hi)):
            continue  # chunk fully checkpointed by a previous life
        if job.stop_event.is_set():
            job.finish("interrupted")
            return
        if deadline is not None and time.time() >= deadline:
            hit_deadline = True
            break

        executor = spec.executor
        degraded_chunk = False
        if executor in ("process", "auto") and breaker is not None \
                and not breaker.allow():
            executor = "thread"
            degraded_chunk = True
        if degraded_chunk and not job.degraded:
            with job.lock:
                job.degraded = True
            observe_serve_degraded()

        sub = batch.subset(np.arange(lo, hi))
        faults = None
        if spec.faults:
            faults = {k - shards_seen: v for k, v in spec.faults.items()
                      if k >= shards_seen} or None
        # QRST is deterministic dense in-process work: it never rides the
        # process fleet, so the breaker must not judge its outcome.
        attempt_process = (executor in ("process", "auto")
                           and spec.method != "qrst")
        try:
            if spec.method == "qrst":
                report = _run_qrst_chunk(spec, sub, V, job, deadline,
                                         faults)
            else:
                report = parallel_fleet_solve(
                    sub, workers=min(spec.workers, len(sub)),
                    starts=starts, alpha=spec.alpha, tol=spec.tol,
                    max_iters=spec.max_iters, executor=executor,
                    stop=job.stop_event.is_set, deadline=deadline,
                    faults=faults,
                    adaptive=("geap" if spec.method == "geap" else False),
                )
        except Exception as exc:
            if attempt_process and breaker is not None:
                breaker.record_failure()
                # degrade this chunk to the thread tier and carry on
                with job.lock:
                    job.degraded = True
                observe_serve_degraded()
                _log.warning("process tier failed; retrying on threads",
                             fields={"job": job.id, "chunk": lo,
                                     "error": str(exc)})
                try:
                    report = parallel_fleet_solve(
                        sub, workers=min(spec.workers, len(sub)),
                        starts=starts, alpha=spec.alpha, tol=spec.tol,
                        max_iters=spec.max_iters, executor="thread",
                        stop=job.stop_event.is_set, deadline=deadline,
                        adaptive=("geap" if spec.method == "geap"
                                  else False),
                    )
                except Exception as exc2:
                    job.finish("failed", error=str(exc2))
                    return
            else:
                job.finish("failed", error=str(exc))
                return
        else:
            if attempt_process and breaker is not None:
                # a recovered crash (requeues) still signals instability
                if report.requeues or report.failed_shards:
                    breaker.record_failure()
                elif report.executor == "process":
                    breaker.record_success()
                else:
                    # clean run that resolved to the thread tier (e.g.
                    # executor="auto"): the process tier was never
                    # exercised, so a held half-open probe must be
                    # handed back — neither verdict applies, and keeping
                    # the lease would block every later probe
                    breaker.abandon_probe()
            shards_seen += len(report.shard_sizes)

        result = report.result
        if result.stopped and job.stop_event.is_set():
            # drain: the cancelled chunk is partial — discard it; the
            # checkpoint already holds every completed chunk
            job.finish("interrupted")
            return
        for t in range(lo, hi):
            rows[t] = _row_record(result, t - lo)
        if ckpt is not None:
            ckpt["starts"] = {str(t): rows[t] for t in sorted(rows)}
            write_checkpoint(ckpt_path, ckpt)
        if result.stopped:
            hit_deadline = True
            break

    with job.lock:
        job.result = _merge_rows(rows, T, V, batch.n)
    if hit_deadline:
        job.finish("deadline")
    else:
        job.finish("done")
        if keep and ckpt_dir is not None:
            from repro.resilience.retention import prune_checkpoints

            exclude = {Path(ckpt_path)}
            if protect is not None:
                exclude.update(Path(p) for p in protect() if p)
            try:
                prune_checkpoints(ckpt_dir, keep=keep, exclude=exclude)
            except OSError as exc:  # pragma: no cover - fs races
                _log.warning("checkpoint pruning failed",
                             fields={"error": str(exc)})
