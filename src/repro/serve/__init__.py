"""``repro.serve`` — the crash-tolerant eigensolver service.

The robustness layer between the fleet engine and real traffic:
a bounded admission queue (:mod:`repro.serve.admission`), a circuit
breaker quarantining a crashing process tier
(:mod:`repro.serve.breaker`), chunk-checkpointing job execution
(:mod:`repro.serve.jobs`), drain manifests
(:mod:`repro.serve.drain`), and the stdlib HTTP daemon tying them
together (:mod:`repro.serve.server`).  ``repro serve`` on the CLI;
``docs/serve.md`` for the operator's view.
"""

from repro.serve.admission import AdmissionError, AdmissionQueue
from repro.serve.breaker import CircuitBreaker
from repro.serve.drain import (
    DRAIN_SCHEMA,
    read_drain_manifest,
    write_drain_manifest,
)
from repro.serve.jobs import Job, JobSpec, run_job
from repro.serve.server import EigenServer, ServeConfig

__all__ = [
    "DRAIN_SCHEMA",
    "AdmissionError",
    "AdmissionQueue",
    "CircuitBreaker",
    "EigenServer",
    "Job",
    "JobSpec",
    "ServeConfig",
    "read_drain_manifest",
    "run_job",
    "write_drain_manifest",
]
