"""Bounded admission queue: explicit rejection instead of unbounded growth.

A service that accepts every request eventually serves none of them — the
queue grows without bound, every deadline is blown, and memory follows.
``repro serve`` instead admits work through a fixed-capacity queue and
rejects the overflow *at the front door* with a structured 429 payload
carrying ``Retry-After``, so well-behaved clients back off and the jobs
already admitted keep their latency.

The queue is a thin, thread-safe FIFO (``deque`` + ``Condition``) rather
than ``queue.Queue`` because admission needs operations Queue hides:
an atomic admit-or-reject with the current depth, a drain that atomically
closes intake and returns the unprocessed tail, and a depth gauge pushed
to metrics on every transition.
"""

from __future__ import annotations

import threading
from collections import deque

from repro.instrument.metrics import (
    observe_serve_queue_depth,
    observe_serve_rejected,
)

__all__ = ["AdmissionError", "AdmissionQueue"]


class AdmissionError(Exception):
    """A request was refused at admission.

    ``reason`` is machine-readable (``"queue_full"`` / ``"draining"``);
    ``retry_after`` is the server's backoff hint in seconds (the HTTP
    layer surfaces it as the ``Retry-After`` header).
    """

    def __init__(self, reason: str, retry_after: float = 1.0):
        self.reason = reason
        self.retry_after = max(1.0, float(retry_after))
        super().__init__(reason)


class AdmissionQueue:
    """Fixed-capacity FIFO with structured rejection and clean drain."""

    def __init__(self, limit: int):
        if limit < 1:
            raise ValueError(f"queue limit must be >= 1, got {limit}")
        self.limit = int(limit)
        self._items: deque = deque()
        self._cond = threading.Condition()
        self._closed = False
        # EWMA of job service time, feeding the Retry-After estimate; the
        # seed value only shapes the very first rejections
        self._avg_seconds = 1.0

    def __len__(self) -> int:
        with self._cond:
            return len(self._items)

    @property
    def closed(self) -> bool:
        with self._cond:
            return self._closed

    def record_service_time(self, seconds: float) -> None:
        """Fold one completed job's wall time into the backoff estimate."""
        with self._cond:
            self._avg_seconds = 0.8 * self._avg_seconds + 0.2 * max(
                0.001, float(seconds))

    def retry_after(self) -> float:
        """Backoff hint: roughly one queue-drain of the current backlog."""
        with self._cond:
            return max(1.0, len(self._items) * self._avg_seconds)

    def submit(self, item, *, force: bool = False) -> int:
        """Admit ``item``; returns the queue depth after admission.

        Raises :class:`AdmissionError` (``draining`` / ``queue_full``)
        instead of blocking or growing past ``limit`` — rejection is the
        contract, not an error path.  ``force=True`` skips the capacity
        check (still refuses a closed queue): drain-manifest resume must
        re-admit every drained job even when the manifest outnumbers
        ``limit`` — a drain taken under load holds up to ``limit`` queued
        entries *plus* the interrupted in-flight ones.  The overfull
        queue reads as not-ready in ``/healthz`` until it drains below
        ``limit``, which is the correct backpressure signal.
        """
        with self._cond:
            if self._closed:
                observe_serve_rejected("draining")
                raise AdmissionError("draining", self._avg_seconds)
            if not force and len(self._items) >= self.limit:
                observe_serve_rejected("queue_full")
                raise AdmissionError(
                    "queue_full", len(self._items) * self._avg_seconds)
            self._items.append(item)
            depth = len(self._items)
            observe_serve_queue_depth(depth)
            self._cond.notify()
            return depth

    def take(self, timeout: float | None = None, register=None):
        """Pop the oldest item, waiting up to ``timeout``; ``None`` on
        timeout or when the queue has been closed and emptied.

        ``register(item)``, when given, runs under the queue lock before
        the item is returned, making pop + mark-in-flight one atomic
        step.  Without it there is a lost-job window: a consumer that
        popped but has not yet recorded the item sees it in neither the
        ``close()`` tail nor its own in-flight set.  ``close()`` takes
        the same lock, so once it returns every popped item has already
        been registered.
        """
        with self._cond:
            while not self._items:
                if self._closed:
                    return None
                if not self._cond.wait(timeout=timeout):
                    return None
            item = self._items.popleft()
            if register is not None:
                register(item)
            observe_serve_queue_depth(len(self._items))
            return item

    def close(self) -> list:
        """Stop intake and return the unprocessed tail (for the drain
        manifest).  Waiting ``take()`` callers wake and observe close."""
        with self._cond:
            self._closed = True
            tail = list(self._items)
            self._items.clear()
            observe_serve_queue_depth(0)
            self._cond.notify_all()
            return tail
