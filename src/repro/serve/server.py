"""The ``repro serve`` daemon: HTTP front door over the fleet engine.

Stdlib only (:mod:`http.server` threading server + JSON), per the
no-new-runtime-deps rule.  The moving parts:

* :class:`ServeConfig` — every tuning knob, CLI-settable.
* :class:`EigenServer` — owns the admission queue, the circuit breaker,
  the job table, ``runners`` worker threads executing jobs through
  :func:`repro.serve.jobs.run_job`, and the HTTP server on a background
  thread.  ``serve_forever`` installs SIGTERM/SIGINT handlers whose only
  action is setting an event; the main thread then performs the drain —
  signal handlers never touch locks.
* :class:`_Handler` — the endpoint surface: ``POST /solve`` (async 202,
  or ``?wait=1`` to block until terminal), ``GET /jobs/<id>``,
  ``GET /healthz`` (live/ready split), ``GET /metrics`` (Prometheus
  text).

Drain lifecycle (see ``docs/serve.md``): signal → intake closes (new
``/solve`` gets 503, ``ready`` goes false) → in-flight jobs' stop events
fire, cancelling their current chunk through the engine's
lane-retirement path → runner threads park → a ``repro-drain/1``
manifest records the queued + interrupted jobs → exit 0.  A restart with
``--resume-dir`` re-enqueues the manifest's jobs (same ids/run ids/specs)
before opening intake, finishing them bit-for-bit from their chunk
checkpoints.
"""

from __future__ import annotations

import json
import signal
import threading
import time
from dataclasses import dataclass, field
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path

from repro.instrument.events import emit as _emit, new_run_id
from repro.instrument.log import get_logger
from repro.instrument.metrics import (
    default_registry,
    observe_serve_request,
)
from repro.serve.admission import AdmissionError, AdmissionQueue
from repro.serve.breaker import CircuitBreaker
from repro.serve.drain import (
    clear_drain_manifest,
    read_drain_manifest,
    write_drain_manifest,
)
from repro.serve.jobs import BadSpec, Job, JobSpec, run_job

__all__ = ["EigenServer", "ServeConfig"]

_log = get_logger("serve.server")

#: Cap on request body size — a solve spec is small; anything larger is
#: hostile or a client bug, rejected before parsing.
MAX_BODY_BYTES = 16 * 1024 * 1024


@dataclass
class ServeConfig:
    """Tuning knobs of one server instance (see ``docs/serve.md``)."""

    host: str = "127.0.0.1"
    port: int = 0
    queue_limit: int = 32
    runners: int = 2
    checkpoint_dir: str | Path = "serve-ckpt"
    keep: int = 0
    breaker_threshold: int = 3
    breaker_reset: float = 30.0
    default_deadline: float | None = None
    default_method: str = "sshopm"
    resume_dir: str | Path | None = None
    extra: dict = field(default_factory=dict)


class EigenServer:
    """One daemon instance; create, :meth:`start`, then either
    :meth:`serve_forever` (installs signal handlers, blocks, drains) or
    drive :meth:`submit`/:meth:`drain` directly (tests do)."""

    def __init__(self, config: ServeConfig):
        self.config = config
        self.ckpt_dir = Path(config.checkpoint_dir)
        self.ckpt_dir.mkdir(parents=True, exist_ok=True)
        self.queue = AdmissionQueue(config.queue_limit)
        self.breaker = CircuitBreaker(
            threshold=config.breaker_threshold,
            reset_after=config.breaker_reset)
        self.jobs: dict[str, Job] = {}
        self._jobs_lock = threading.Lock()
        self._running: set[str] = set()
        self.draining = False
        self._shutdown = threading.Event()
        self._runner_threads: list[threading.Thread] = []
        self._httpd: ThreadingHTTPServer | None = None
        self._http_thread: threading.Thread | None = None
        self.started_at = time.time()

    # ------------------------------------------------------------------
    # lifecycle

    def start(self) -> tuple[str, int]:
        """Load any drain manifest, start runners and the HTTP listener;
        returns the bound ``(host, port)`` (real port when 0 was asked)."""
        resume_dir = self.config.resume_dir
        if resume_dir is not None:
            self._load_resume(Path(resume_dir))
        for i in range(self.config.runners):
            t = threading.Thread(target=self._runner_loop,
                                 name=f"repro-serve-runner-{i}", daemon=True)
            t.start()
            self._runner_threads.append(t)
        self._httpd = ThreadingHTTPServer(
            (self.config.host, self.config.port), _Handler)
        self._httpd.daemon_threads = True
        self._httpd.app = self
        self._http_thread = threading.Thread(
            target=self._httpd.serve_forever, name="repro-serve-http",
            daemon=True)
        self._http_thread.start()
        host, port = self._httpd.server_address[:2]
        _log.info("serving", fields={"host": host, "port": port,
                                     "queue_limit": self.config.queue_limit,
                                     "runners": self.config.runners})
        return host, port

    def serve_forever(self) -> int:
        """Block until SIGTERM/SIGINT, then drain; returns the exit code.

        The handlers only set an event — the drain itself (locks, file
        writes, thread joins) runs here on the main thread, where it is
        signal-safe.
        """
        previous = {}
        for signum in (signal.SIGTERM, signal.SIGINT):
            previous[signum] = signal.signal(
                signum, lambda *_: self._shutdown.set())
        try:
            self._shutdown.wait()
        finally:
            for signum, handler in previous.items():
                signal.signal(signum, handler)
        self.drain()
        return 0

    def shutdown(self) -> None:
        """Ask ``serve_forever`` to drain (test hook, signal-equivalent)."""
        self._shutdown.set()

    def drain(self) -> dict:
        """Stop intake, cancel in-flight jobs, write the drain manifest.

        Returns ``{"queued": n, "interrupted": n, "manifest": path}`` —
        idempotent: a second call finds nothing to do.
        """
        t0 = time.time()
        if self.draining:
            return {"queued": 0, "interrupted": 0, "manifest": None}
        self.draining = True
        queued_jobs = self.queue.close()
        # close() and take(register=...) serialize on the queue lock, so
        # every job popped before close is already in _running here —
        # between the tail above and this snapshot, no job can fall
        # through the crack and be silently lost by the drain
        with self._jobs_lock:
            running = [self.jobs[j] for j in self._running if j in self.jobs]
        _emit("drain_start", inflight=len(running), queued=len(queued_jobs))
        for job in running:
            job.stop_event.set()
        for job in running:
            # the stop fires within one engine sweep; generous ceiling so
            # a wedged fleet cannot hold the drain hostage forever
            job.done_event.wait(timeout=60.0)
        for t in self._runner_threads:
            t.join(timeout=5.0)

        entries = []
        for job in queued_jobs:
            entries.append({"job": job.id, "run_id": job.run_id,
                            "state": "queued", "spec": job.spec.to_doc(),
                            "checkpoint": None})
        for job in running:
            if job.status == "interrupted":
                entries.append({"job": job.id, "run_id": job.run_id,
                                "state": "interrupted",
                                "spec": job.spec.to_doc(),
                                "checkpoint": job.checkpoint})
        manifest = None
        if entries:
            manifest = str(write_drain_manifest(self.ckpt_dir, entries))
        if self._httpd is not None:
            self._httpd.shutdown()
            self._httpd.server_close()
        seconds = time.time() - t0
        _emit("drain_finish", seconds=seconds, jobs=len(entries))
        _log.info("drained", fields={
            "seconds": round(seconds, 3), "queued": len(queued_jobs),
            "interrupted": sum(1 for e in entries
                               if e["state"] == "interrupted")})
        return {"queued": len(queued_jobs),
                "interrupted": sum(1 for e in entries
                                   if e["state"] == "interrupted"),
                "manifest": manifest}

    def _load_resume(self, resume_dir: Path) -> None:
        """Re-enqueue a previous life's drained jobs, then clear the
        manifest so a restart loop cannot double-run them."""
        entries = read_drain_manifest(resume_dir)
        if not entries:
            return
        for entry in entries:
            spec = JobSpec.from_doc(entry["spec"])
            job = Job(entry["job"], spec, run_id=entry["run_id"])
            with self._jobs_lock:
                self.jobs[job.id] = job
            # force: a drain taken under load writes up to queue_limit
            # queued entries plus the interrupted in-flight ones, so the
            # manifest can legitimately exceed the queue limit — resumed
            # jobs were already admitted in a previous life and must
            # never be bounced by the capacity check (/healthz simply
            # reads not-ready until the backlog drains below the limit)
            self.queue.submit(job, force=True)
            _emit("job_submit", job=job.id, resumed=True)
        clear_drain_manifest(resume_dir)
        _log.info("resumed drained jobs", fields={"count": len(entries)})

    # ------------------------------------------------------------------
    # request plane

    def submit(self, doc: dict) -> Job:
        """Validate + admit one solve request (raises :class:`BadSpec` or
        :class:`AdmissionError`)."""
        if "method" not in doc:
            doc = {**doc, "method": self.config.default_method}
        spec = JobSpec.from_doc(doc)
        if spec.deadline_seconds is None:
            spec.deadline_seconds = self.config.default_deadline
        job = Job(new_run_id(), spec)
        with self._jobs_lock:
            self.jobs[job.id] = job
        try:
            self.queue.submit(job)
        except AdmissionError:
            with self._jobs_lock:
                del self.jobs[job.id]
            raise
        _emit("job_submit", job=job.id)
        return job

    def get_job(self, job_id: str) -> Job | None:
        with self._jobs_lock:
            return self.jobs.get(job_id)

    def health(self) -> tuple[bool, dict]:
        """The live/ready split: live is "the process responds"; ready is
        "send me traffic" — false while draining, while the queue is at
        capacity, and while the breaker is open (the degraded tier still
        answers, but a balancer should prefer healthy peers)."""
        depth = len(self.queue)
        breaker = self.breaker.snapshot()
        ready = (not self.draining
                 and depth < self.config.queue_limit
                 and breaker["state"] != "open")
        return ready, {
            "live": True,
            "ready": ready,
            "draining": self.draining,
            "queue_depth": depth,
            "queue_limit": self.config.queue_limit,
            "breaker": breaker,
            "uptime_seconds": time.time() - self.started_at,
        }

    # ------------------------------------------------------------------
    # runners

    def _register_running(self, job: Job) -> None:
        """Mark ``job`` in-flight; runs under the queue lock via
        ``take(register=...)`` so pop + register is atomic with respect
        to ``queue.close()`` — after close returns, every popped job is
        visible in ``_running`` and the drain can never miss one in the
        window between pop and registration."""
        with self._jobs_lock:
            self._running.add(job.id)

    def _live_checkpoints(self) -> list[str]:
        """Checkpoint paths of every in-flight job — the prune-protect
        set, so one job's retention pass cannot delete a checkpoint a
        concurrently running job still needs at the next drain."""
        with self._jobs_lock:
            return [self.jobs[j].checkpoint for j in self._running
                    if j in self.jobs and self.jobs[j].checkpoint]

    def _runner_loop(self) -> None:
        while not self.draining:
            job = self.queue.take(timeout=0.2,
                                  register=self._register_running)
            if job is None:
                continue
            t0 = time.time()
            try:
                run_job(job, breaker=self.breaker, ckpt_dir=self.ckpt_dir,
                        keep=self.config.keep,
                        protect=self._live_checkpoints)
            except Exception as exc:  # pragma: no cover - defensive
                _log.error("runner crashed on job",
                           fields={"job": job.id, "error": str(exc)})
                if not job.done_event.is_set():
                    job.finish("failed", error=f"internal error: {exc}")
            finally:
                self.queue.record_service_time(time.time() - t0)
                with self._jobs_lock:
                    self._running.discard(job.id)


class _Handler(BaseHTTPRequestHandler):
    """Endpoint surface; ``self.server.app`` is the :class:`EigenServer`."""

    server_version = "repro-serve/1"
    protocol_version = "HTTP/1.1"

    # ------------------------------------------------------------------
    def _send_json(self, code: int, doc: dict, headers: dict | None = None):
        body = (json.dumps(doc) + "\n").encode()
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for key, value in (headers or {}).items():
            self.send_header(key, value)
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, fmt, *args):  # route through structured logging
        _log.debug("http", fields={"line": fmt % args})

    @property
    def app(self) -> EigenServer:
        return self.server.app

    # ------------------------------------------------------------------
    def do_GET(self):  # noqa: N802 - BaseHTTPRequestHandler contract
        path = self.path.split("?", 1)[0]
        if path == "/healthz":
            observe_serve_request("/healthz")
            ready, doc = self.app.health()
            self._send_json(200 if ready else 503, doc)
        elif path == "/metrics":
            observe_serve_request("/metrics")
            from repro.instrument.export import prometheus_text

            body = prometheus_text(metrics=default_registry()).encode()
            self.send_response(200)
            self.send_header("Content-Type",
                             "text/plain; version=0.0.4; charset=utf-8")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)
        elif path.startswith("/jobs/"):
            observe_serve_request("/jobs")
            job = self.app.get_job(path[len("/jobs/"):])
            if job is None:
                self._send_json(404, {"error": "unknown job"})
            else:
                self._send_json(200, job.to_doc())
        else:
            self._send_json(404, {"error": f"no such endpoint {path}"})

    def do_POST(self):  # noqa: N802
        path, _, query = self.path.partition("?")
        if path != "/solve":
            self._send_json(404, {"error": f"no such endpoint {path}"})
            return
        observe_serve_request("/solve")
        app = self.app
        if app.draining:
            self._send_json(503, {"error": "draining",
                                  "detail": "server is shutting down"},
                            headers={"Retry-After": "5"})
            return
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0 or length > MAX_BODY_BYTES:
            self._send_json(400, {"error": "bad_request",
                                  "detail": "missing or oversized body"})
            return
        try:
            doc = json.loads(self.rfile.read(length))
        except json.JSONDecodeError as exc:
            self._send_json(400, {"error": "bad_request",
                                  "detail": f"invalid JSON: {exc}"})
            return
        try:
            job = app.submit(doc)
        except BadSpec as exc:
            self._send_json(400, {"error": "bad_request",
                                  "detail": str(exc)})
            return
        except AdmissionError as exc:
            _emit("job_reject", reason=exc.reason)
            retry = max(1, int(round(exc.retry_after)))
            self._send_json(429, {
                "error": exc.reason,
                "detail": "admission queue is full — back off and retry",
                "retry_after": retry,
                "queue_limit": app.config.queue_limit,
            }, headers={"Retry-After": str(retry)})
            return
        wait = "wait=1" in query or "wait=true" in query
        if wait:
            job.done_event.wait()
            self._send_json(200, job.to_doc())
        else:
            self._send_json(202, {"job": job.id, "run_id": job.run_id,
                                  "status": job.status},
                            headers={"Location": f"/jobs/{job.id}"})
