"""Circuit breaker guarding the process-fleet tier.

The process tier is the fast path and the fragile one: its workers are
real OS processes that can be OOM-killed or die on corrupted state, and
while the fleet driver requeues crashed shards, a *persistently* crashing
tier turns every request into a slow-motion retry storm.  The breaker
converts repeated failures into a fast, explicit degradation:

``closed``
    Normal operation — requests may use the process tier.  Consecutive
    failures are counted; hitting ``threshold`` trips the breaker open.
``open``
    The process tier is quarantined; every request runs on the thread
    tier with ``degraded: true`` until ``reset_after`` seconds pass.
``half-open``
    After the cooldown one probe request is allowed through to the
    process tier.  Success closes the breaker; failure re-opens it and
    restarts the cooldown.

What counts as a failure is the *caller's* policy (``repro serve``
records one for any run whose workers crashed — even if the fleet driver
recovered by requeueing — because a recovered crash still burned a
requeue budget and signals instability).  The breaker itself only does
the state machine, thread-safely, against an injectable clock so tests
never sleep.
"""

from __future__ import annotations

import threading
import time

from repro.instrument.events import emit as _emit
from repro.instrument.metrics import observe_breaker_state

__all__ = ["CircuitBreaker"]


class CircuitBreaker:
    """Consecutive-failure circuit breaker with half-open probing.

    Parameters
    ----------
    threshold : consecutive failures that trip the breaker open.
    reset_after : seconds the breaker stays open before allowing one
        half-open probe.
    clock : injectable monotonic clock (tests pass a fake).
    """

    def __init__(self, threshold: int = 3, reset_after: float = 30.0,
                 clock=time.monotonic):
        if threshold < 1:
            raise ValueError(f"threshold must be >= 1, got {threshold}")
        self.threshold = int(threshold)
        self.reset_after = float(reset_after)
        self._clock = clock
        self._lock = threading.Lock()
        self._failures = 0
        self._state = "closed"
        self._opened_at: float | None = None
        self._probing = False
        self._probe_started: float | None = None
        observe_breaker_state("closed")

    @property
    def state(self) -> str:
        """``"closed"`` / ``"open"`` / ``"half-open"`` (cooldown expiry
        is folded in, so an open breaker past its reset window reads as
        half-open without waiting for the next ``allow()`` call)."""
        with self._lock:
            return self._state_locked()

    def _state_locked(self) -> str:
        if self._state == "open" and self._opened_at is not None \
                and self._clock() - self._opened_at >= self.reset_after:
            return "half-open"
        return self._state

    def _transition(self, state: str) -> None:
        if state != self._state:
            self._state = state
            observe_breaker_state(state)
            _emit("breaker", state=state)

    def allow(self) -> bool:
        """May this request use the process tier?

        Closed: yes.  Open: no, until ``reset_after`` has elapsed — then
        exactly one caller gets a half-open probe (concurrent callers
        keep degrading until the probe resolves).

        The probe is a *lease*, not a permanent claim: a holder that
        never reports an outcome (crashed caller, or a run that resolved
        to the thread tier so the process tier was never exercised)
        would otherwise wedge the breaker half-open forever.  After
        ``reset_after`` seconds without a verdict the lease expires and
        the next caller gets a fresh probe.  Callers that *know* they
        did not exercise the process tier should call
        :meth:`abandon_probe` to hand the lease back immediately.
        """
        with self._lock:
            state = self._state_locked()
            if state == "closed":
                return True
            if state == "half-open":
                if self._probing and self._probe_started is not None \
                        and self._clock() - self._probe_started \
                        < self.reset_after:
                    return False
                self._probing = True
                self._probe_started = self._clock()
                self._transition("half-open")
                return True
            return False

    def abandon_probe(self) -> None:
        """Hand back an unresolved half-open probe lease.

        For the caller whose ``allow()``-granted run never touched the
        process tier (e.g. ``executor="auto"`` resolved to threads and
        finished cleanly): no verdict either way, so the breaker stays
        half-open and the *next* request probes instead of waiting out
        the lease timeout.  No-op when no probe is outstanding.
        """
        with self._lock:
            self._probing = False
            self._probe_started = None

    def record_success(self) -> None:
        """A process-tier run finished with healthy workers."""
        with self._lock:
            self._failures = 0
            self._probing = False
            self._probe_started = None
            self._opened_at = None
            self._transition("closed")

    def record_failure(self) -> None:
        """A process-tier run saw worker crashes (or failed outright)."""
        with self._lock:
            state = self._state_locked()
            if state == "half-open":
                # failed probe: back to a fresh cooldown
                self._probing = False
                self._probe_started = None
                self._opened_at = self._clock()
                self._state = "closed"  # force the transition to re-emit
                self._transition("open")
                return
            self._failures += 1
            if self._failures >= self.threshold and state == "closed":
                self._opened_at = self._clock()
                self._transition("open")

    def snapshot(self) -> dict:
        """State for ``/healthz``: current state + failure count."""
        with self._lock:
            return {
                "state": self._state_locked(),
                "consecutive_failures": self._failures,
                "threshold": self.threshold,
                "reset_after": self.reset_after,
            }
