"""Drain manifests: the handoff document between a stopping server and
the ``--resume-dir`` restart that finishes its work.

On SIGTERM/SIGINT the server stops intake, cancels in-flight fleets
through the engine's lane-retirement path (their completed chunks are
already checkpointed), and writes a single ``repro-drain/1`` manifest
listing every job that still needs work: queued jobs verbatim, and
interrupted jobs with the checkpoint that holds their completed chunks.
The restart re-enqueues exactly these jobs — same ids, same run ids, same
specs — then *removes* the manifest before opening intake, so a second
restart can never duplicate them.

The manifest rides on the same atomic-write + validated-read discipline
as checkpoints: a crash mid-drain leaves either the previous manifest or
none, never a torn one.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.instrument.events import provenance
from repro.resilience.checkpoint import atomic_write_json

__all__ = ["DRAIN_SCHEMA", "read_drain_manifest", "write_drain_manifest"]

DRAIN_SCHEMA = "repro-drain/1"

#: File name inside the checkpoint directory.
MANIFEST_NAME = "drain.json"


def write_drain_manifest(ckpt_dir, entries: list[dict]) -> Path:
    """Atomically persist the drain manifest; ``entries`` are
    ``{"job", "run_id", "state", "spec", "checkpoint"}`` records with
    ``state`` in ``{"queued", "interrupted"}``."""
    for e in entries:
        for key in ("job", "run_id", "state", "spec"):
            if key not in e:
                raise ValueError(f"drain entry missing {key!r}: {e}")
        if e["state"] not in ("queued", "interrupted"):
            raise ValueError(f"bad drain entry state {e['state']!r}")
    doc = {
        "schema": DRAIN_SCHEMA,
        "jobs": entries,
        **provenance(),
    }
    return atomic_write_json(Path(ckpt_dir) / MANIFEST_NAME, doc)


def read_drain_manifest(ckpt_dir) -> list[dict] | None:
    """Load and validate the manifest; ``None`` when there is nothing to
    resume.  Corrupt manifests raise :class:`ValueError` with a specific
    message rather than a decode traceback."""
    path = Path(ckpt_dir) / MANIFEST_NAME
    if not path.exists():
        return None
    try:
        doc = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise ValueError(
            f"{path} is not valid drain-manifest JSON: {exc}") from exc
    if not isinstance(doc, dict) or doc.get("schema") != DRAIN_SCHEMA:
        raise ValueError(
            f"{path}: unknown drain manifest schema "
            f"{doc.get('schema') if isinstance(doc, dict) else None!r} "
            f"(this build reads {DRAIN_SCHEMA!r})")
    jobs = doc.get("jobs")
    if not isinstance(jobs, list):
        raise ValueError(f"{path}: manifest 'jobs' must be a list")
    return jobs


def clear_drain_manifest(ckpt_dir) -> None:
    """Remove the manifest (idempotent) — called after its jobs have been
    re-enqueued, so a crash-restart loop cannot double-submit them."""
    path = Path(ckpt_dir) / MANIFEST_NAME
    try:
        path.unlink()
    except FileNotFoundError:
        pass
