"""repro — reproduction of Ballard, Kolda & Plantenga,
"Efficiently Computing Tensor Eigenvalues on a GPU" (IPDPS-W 2011).

Subpackages
-----------
``repro.symtensor``
    Compressed symmetric tensor storage (Section III-A): index classes,
    lexicographic enumeration, single and batched containers.
``repro.kernels``
    ``A x^m`` / ``A x^{m-1}`` in every variant the paper benchmarks:
    dense reference, spec-faithful compressed loops, precomputed tables,
    code-generated unrolled, and batched vectorized.
``repro.core``
    Batched multistart, eigenpair deduplication and stability
    classification (the solver iterations themselves live in
    ``repro.solvers``).
``repro.solvers``
    The solver zoo: SS-HOPM (fixed and adaptive shift), GEAP
    (per-iteration adaptive shift), QRST (tensor QR with deflation), and
    the method registry behind ``repro.solve(method=...)``.
``repro.engine``
    The fleet solve engine: whole-workload batched scheduling with lane
    retirement, active-set compaction, and plan-cached kernels.
``repro.gpu``
    Simulated CUDA substrate: device specs, occupancy, event-driven grid
    execution, calibrated performance model (substitutes for the Tesla
    C2050 — see DESIGN.md).
``repro.parallel``
    CPU partitioning/executor and the calibrated OpenMP scaling model.
``repro.mri``
    The DW-MRI fiber-detection application: synthetic phantom, tensor
    fitting, fiber extraction, metrics.
``repro.instrument``
    Structured tracing and metrics: span recorder, flop/byte counters,
    JSON traces (``repro ... --trace out.json``).
``repro.serve``
    The crash-tolerant eigensolver daemon (``repro serve``): bounded
    admission, per-request deadlines, a circuit breaker around the
    process-fleet tier, and checkpointing SIGTERM drain with
    bit-for-bit ``--resume-dir`` restart (see ``docs/serve.md``).

Quick start
-----------
>>> import repro
>>> from repro.symtensor import random_symmetric_tensor
>>> from repro.core import suggested_shift
>>> A = random_symmetric_tensor(4, 3, rng=0)
>>> report = repro.solve(A, starts=64, alpha=suggested_shift(A), rng=1)
>>> pairs = report.eigenpairs(A)[0]  # doctest: +SKIP

``repro.solve`` routes by request shape (one tensor / a batch, one start
/ many, ``workers=``) and by ``method=`` (``"sshopm"`` / ``"geap"`` /
``"qrst"`` / ``"auto"``; see ``docs/solvers.md``); see ``docs/api.md``.
"""

def _read_version() -> str:
    """Single-source the version from pyproject.toml (src layout: the file
    sits two levels above this package), falling back to installed package
    metadata so an installed wheel without the source tree still reports
    correctly."""
    from pathlib import Path

    pyproject = Path(__file__).resolve().parents[2] / "pyproject.toml"
    try:
        text = pyproject.read_text()
    except OSError:
        text = ""
    if text:
        try:
            import tomllib

            version = tomllib.loads(text).get("project", {}).get("version")
            if version:
                return version
        except Exception:
            pass
        import re

        match = re.search(r'^version\s*=\s*"([^"]+)"', text, re.MULTILINE)
        if match:
            return match.group(1)
    try:
        from importlib.metadata import version as _pkg_version

        return _pkg_version("repro")
    except Exception:
        return "0+unknown"


__version__ = _read_version()

from repro import core, engine, gpu, instrument, kernels, mri, parallel, solvers, symtensor, util
from repro.facade import SolveReport, SolveRequest, solve
from repro.solvers import available_methods

__all__ = [
    "SolveReport",
    "SolveRequest",
    "available_methods",
    "core",
    "engine",
    "gpu",
    "instrument",
    "kernels",
    "mri",
    "parallel",
    "solve",
    "solvers",
    "symtensor",
    "util",
    "__version__",
]
