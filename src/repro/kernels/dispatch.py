"""Kernel variant registry — the single entry point for every kernel.

The benchmarks compare the paper's implementations by name ("general",
"unrolled", ...); this registry maps variant names to a uniform
``(ax_m, ax_m1)`` pair so drivers and benchmarks can switch implementations
without special-casing.  Both access shapes go through :func:`get_kernels`:

* ``get_kernels(variant, m, n)`` — a per-tensor :class:`KernelPair`
  (``ax_m(tensor, x) -> float``).
* ``get_kernels(variant, m, n, batched=True)`` — a
  :class:`BatchedKernelPair` operating on raw value/vector arrays with
  broadcasting leading dimensions (``ax_m(values, x) -> ndarray``), the
  shape the lockstep multistart driver feeds (``values[T, 1, U]`` against
  ``x[T, V, n]``).  Callers no longer import ``ax_m_batched`` /
  ``ax_m_blocked_batched`` directly (those names survive as deprecated
  aliases in :mod:`repro.kernels`).

Unknown names raise :class:`UnknownVariantError` — a subclass of both
``KeyError`` and ``ValueError`` so pre-existing handlers of either keep
working — listing the valid names for the requested access shape.

Variants
--------
``reference``
    Dense decompress-and-contract oracle (the "general tensor" cost model).
``compressed``
    Spec-faithful Figures 2/3 with on-the-fly index/multinomial computation
    — the paper's *general* symmetric implementation.
``precomputed``
    Section III-B.5 table-driven variant.
``unrolled`` / ``unrolled_cse``
    Section V-D code-generated straight-line kernels (optionally with
    common-subexpression elimination).  Batched-capable.
``vectorized``
    The batched NumPy kernels; as a per-tensor pair they apply to a single
    tensor/vector.  Batched-capable (alias ``batched``).
``blocked``
    The Section V-D/VI future-work blocking: per-block contractions with
    shared per-chunk monomial vectors (scales to general ``(m, n)``).
    Batched-capable.
``auto``
    Autotuned choice among the above (see :mod:`repro.kernels.autotune`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.kernels.batched import ax_m1_batched, ax_m_batched
from repro.kernels.errors import KernelLookupError, UnknownVariantError
from repro.kernels.compressed import ax_m1_compressed, ax_m_compressed
from repro.kernels.precomputed import ax_m1_precomputed, ax_m_precomputed
from repro.kernels.reference import ax_m1_reference, ax_m_reference
from repro.kernels.tables import kernel_tables
from repro.kernels.unrolled import _make_unrolled
from repro.symtensor.storage import SymmetricTensor

__all__ = [
    "KernelPair",
    "BatchedKernelPair",
    "KernelLookupError",
    "UnknownVariantError",
    "get_kernels",
    "available_variants",
]


@dataclass(frozen=True)
class KernelPair:
    """Uniform per-tensor kernel interface: ``ax_m(tensor, x) -> float`` and
    ``ax_m1(tensor, x) -> ndarray(n)``."""

    name: str
    ax_m: Callable[[SymmetricTensor, np.ndarray], float]
    ax_m1: Callable[[SymmetricTensor, np.ndarray], np.ndarray]


@dataclass(frozen=True)
class BatchedKernelPair:
    """Uniform batched kernel interface over raw arrays.

    ``ax_m(values, x, counter=None) -> ndarray(broadcast lead dims)`` and
    ``ax_m1(values, x, counter=None) -> ndarray(lead dims + (n,))`` where
    ``values`` is ``(..., U)`` unique-entry data and ``x`` is ``(..., n)``;
    leading dimensions broadcast.  ``counter`` is an optional
    :class:`~repro.util.flopcount.FlopCounter` charged with the kernel's
    arithmetic.
    """

    name: str
    ax_m: Callable[..., np.ndarray]
    ax_m1: Callable[..., np.ndarray]


def _unrolled_pair(name: str, cse: bool) -> Callable[[int, int], KernelPair]:
    def build(m: int, n: int) -> KernelPair:
        kernels = _make_unrolled(m, n, cse=cse, batched=False)
        return KernelPair(
            name,
            lambda tensor, x: float(kernels.ax_m(tensor.values, np.asarray(x))),
            lambda tensor, x: np.asarray(kernels.ax_m1(tensor.values, np.asarray(x))),
        )

    return build


def _vectorized_pair(m: int, n: int) -> KernelPair:
    tab = kernel_tables(m, n)
    return KernelPair(
        "vectorized",
        lambda tensor, x: float(ax_m_batched(tensor.values, np.asarray(x), tables=tab)),
        lambda tensor, x: ax_m1_batched(tensor.values, np.asarray(x), tables=tab),
    )


def _blocked_pair(m: int, n: int) -> KernelPair:
    from repro.kernels.blocked import ax_m1_blocked, ax_m_blocked, blocking_plan

    plan = blocking_plan(m, n, min(4, n))
    return KernelPair(
        "blocked",
        lambda tensor, x: ax_m_blocked(tensor, np.asarray(x), plan=plan),
        lambda tensor, x: ax_m1_blocked(tensor, np.asarray(x), plan=plan),
    )


_STATIC_VARIANTS: dict[str, KernelPair] = {
    "reference": KernelPair("reference", ax_m_reference, ax_m1_reference),
    "compressed": KernelPair("compressed", ax_m_compressed, ax_m1_compressed),
    "precomputed": KernelPair("precomputed", ax_m_precomputed, ax_m1_precomputed),
}

_SPECIALIZED_BUILDERS: dict[str, Callable[[int, int], KernelPair]] = {
    "unrolled": _unrolled_pair("unrolled", cse=False),
    "unrolled_cse": _unrolled_pair("unrolled_cse", cse=True),
    "vectorized": _vectorized_pair,
    "blocked": _blocked_pair,
}

# canonical batched-capable names plus the historical multistart backend
# aliases ("batched", "batched_unrolled")
_BATCHED_ALIASES: dict[str, str] = {
    "vectorized": "vectorized",
    "batched": "vectorized",
    "unrolled": "unrolled",
    "batched_unrolled": "unrolled",
    "unrolled_cse": "unrolled_cse",
    "blocked": "blocked",
}


def _num_threads(values: np.ndarray, x: np.ndarray) -> int:
    """Broadcast (tensor, vector) pair count of a batched call — the GPU
    thread count the flop accounting is charged for."""
    lead = np.broadcast_shapes(np.shape(values)[:-1], np.shape(x)[:-1])
    return int(np.prod(lead, dtype=np.int64)) if lead else 1


def _batched_suite(variant: str, m: int, n: int) -> BatchedKernelPair:
    canonical = _BATCHED_ALIASES[variant]
    if canonical == "vectorized":
        tab = kernel_tables(m, n)

        def ax_m(values, x, counter=None):
            return ax_m_batched(values, x, tables=tab, counter=counter)

        def ax_m1(values, x, counter=None):
            return ax_m1_batched(values, x, tables=tab, counter=counter)

        return BatchedKernelPair("vectorized", ax_m, ax_m1)

    if canonical in ("unrolled", "unrolled_cse"):
        gen = _make_unrolled(m, n, cse=canonical == "unrolled_cse", batched=True)

        def ax_m(values, x, counter=None):
            if counter is not None:
                counter.add_flops(_num_threads(values, x) * gen.flops_scalar)
            return gen.ax_m(values, x)

        def ax_m1(values, x, counter=None):
            if counter is not None:
                counter.add_flops(_num_threads(values, x) * gen.flops_vector)
            return gen.ax_m1(values, x)

        return BatchedKernelPair(canonical, ax_m, ax_m1)

    # canonical == "blocked"
    from repro.kernels.blocked import blocking_plan
    from repro.kernels.blocked_batched import ax_m1_blocked_batched, ax_m_blocked_batched

    plan = blocking_plan(m, n, min(6, n))

    def ax_m(values, x, counter=None):
        return ax_m_blocked_batched(values, x, plan=plan, counter=counter)

    def ax_m1(values, x, counter=None):
        return ax_m1_blocked_batched(values, x, plan=plan, counter=counter)

    return BatchedKernelPair("blocked", ax_m, ax_m1)


def available_variants(
    m: int | None = None, n: int | None = None, *, batched: bool = False
) -> list[str]:
    """Names accepted by :func:`get_kernels` (``"auto"`` autotunes).

    With a shape ``(m, n)``, the list is filtered to the variants that can
    actually be built for it (e.g. ``unrolled`` refuses very large shapes);
    without a shape it lists every registered name.  ``batched=True``
    restricts to the batched-capable canonical names.
    """
    if batched:
        names = sorted({canonical for canonical in _BATCHED_ALIASES.values()})
    else:
        names = sorted([*_STATIC_VARIANTS, *_SPECIALIZED_BUILDERS, "auto"])
    if m is None or n is None:
        return names
    usable = []
    for name in names:
        if name == "auto":
            usable.append(name)  # selects among the usable set; don't tune here
            continue
        try:
            get_kernels(name, m, n, batched=batched)
        except UnknownVariantError:
            raise  # registry bug, not a shape limitation
        except (ValueError, MemoryError):
            continue
        usable.append(name)
    return usable


def get_kernels(
    variant: str,
    m: int | None = None,
    n: int | None = None,
    *,
    batched: bool = False,
    instrumented: bool = False,
    counter=None,
):
    """Look up a kernel implementation by variant name.

    Parameters
    ----------
    variant : variant name (see module docstring).  Unknown names raise
        :class:`UnknownVariantError`.
    m, n : tensor order and dimension.  Shape-specialized variants
        (``unrolled``, ``unrolled_cse``, ``vectorized``, ``blocked``,
        ``auto``) and every batched suite require them; shape-generic
        per-tensor variants ignore them.
    batched : return a :class:`BatchedKernelPair` over raw broadcasting
        arrays instead of a per-tensor :class:`KernelPair`.  Accepts the
        canonical batched-capable names and the historical multistart
        backend aliases ``"batched"`` (-> vectorized) and
        ``"batched_unrolled"`` (-> unrolled).
    instrumented : wrap the returned per-tensor pair so each call records a
        span and charges the Table-II cost model (see
        :func:`repro.instrument.instrumented_pair`).  Batched suites take
        ``counter=`` per call instead and need no wrapper.
    counter : optional :class:`~repro.util.flopcount.FlopCounter` the
        instrumented wrapper charges.
    """
    if batched:
        if variant == "auto":
            if m is None or n is None:
                raise ValueError("variant 'auto' is shape-specialized; pass m and n")
            from repro.kernels.autotune import autotune

            best = autotune(m, n).best
            variant = best if best in _BATCHED_ALIASES else "vectorized"
        if variant not in _BATCHED_ALIASES:
            raise UnknownVariantError(
                variant, [*available_variants(batched=True), "auto"]
            )
        if m is None or n is None:
            raise ValueError(
                f"batched variant {variant!r} is shape-specialized; pass m and n"
            )
        return _batched_suite(variant, m, n)

    pair: KernelPair | None = None
    if variant in _STATIC_VARIANTS:
        pair = _STATIC_VARIANTS[variant]
    elif variant == "auto":
        if m is None or n is None:
            raise ValueError("variant 'auto' is shape-specialized; pass m and n")
        from repro.kernels.autotune import auto_kernels

        pair = auto_kernels(m, n)
    elif variant in _SPECIALIZED_BUILDERS:
        if m is None or n is None:
            raise ValueError(f"variant {variant!r} is shape-specialized; pass m and n")
        pair = _SPECIALIZED_BUILDERS[variant](m, n)
    else:
        raise UnknownVariantError(variant, available_variants())

    if instrumented:
        from repro.instrument import instrumented_pair

        pair = instrumented_pair(pair, counter=counter)
    return pair
