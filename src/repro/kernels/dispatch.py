"""Kernel variant registry.

The benchmarks compare the paper's implementations by name ("general",
"unrolled", ...); this registry maps variant names to a uniform
``(ax_m, ax_m1)`` pair of per-tensor callables so drivers and benchmarks can
switch implementations without special-casing.

Variants
--------
``reference``
    Dense decompress-and-contract oracle (the "general tensor" cost model).
``compressed``
    Spec-faithful Figures 2/3 with on-the-fly index/multinomial computation
    — the paper's *general* symmetric implementation.
``precomputed``
    Section III-B.5 table-driven variant.
``unrolled`` / ``unrolled_cse``
    Section V-D code-generated straight-line kernels (optionally with
    common-subexpression elimination).
``vectorized``
    The batched NumPy kernels applied to a single tensor/vector.
``blocked``
    The Section V-D/VI future-work blocking: per-block contractions with
    shared per-chunk monomial vectors (scales to general ``(m, n)``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.kernels.batched import ax_m1_batched, ax_m_batched
from repro.kernels.compressed import ax_m1_compressed, ax_m_compressed
from repro.kernels.precomputed import ax_m1_precomputed, ax_m_precomputed
from repro.kernels.reference import ax_m1_reference, ax_m_reference
from repro.kernels.tables import kernel_tables
from repro.kernels.unrolled import make_unrolled
from repro.symtensor.storage import SymmetricTensor

__all__ = ["KernelPair", "get_kernels", "available_variants"]


@dataclass(frozen=True)
class KernelPair:
    """Uniform per-tensor kernel interface: ``ax_m(tensor, x) -> float`` and
    ``ax_m1(tensor, x) -> ndarray(n)``."""

    name: str
    ax_m: Callable[[SymmetricTensor, np.ndarray], float]
    ax_m1: Callable[[SymmetricTensor, np.ndarray], np.ndarray]


def _unrolled_pair(name: str, cse: bool) -> Callable[[int, int], KernelPair]:
    def build(m: int, n: int) -> KernelPair:
        kernels = make_unrolled(m, n, cse=cse, batched=False)
        return KernelPair(
            name,
            lambda tensor, x: float(kernels.ax_m(tensor.values, np.asarray(x))),
            lambda tensor, x: np.asarray(kernels.ax_m1(tensor.values, np.asarray(x))),
        )

    return build


def _vectorized_pair(m: int, n: int) -> KernelPair:
    tab = kernel_tables(m, n)
    return KernelPair(
        "vectorized",
        lambda tensor, x: float(ax_m_batched(tensor.values, np.asarray(x), tables=tab)),
        lambda tensor, x: ax_m1_batched(tensor.values, np.asarray(x), tables=tab),
    )


def _blocked_pair(m: int, n: int) -> KernelPair:
    from repro.kernels.blocked import ax_m1_blocked, ax_m_blocked, blocking_plan

    plan = blocking_plan(m, n, min(4, n))
    return KernelPair(
        "blocked",
        lambda tensor, x: ax_m_blocked(tensor, np.asarray(x), plan=plan),
        lambda tensor, x: ax_m1_blocked(tensor, np.asarray(x), plan=plan),
    )


_STATIC_VARIANTS: dict[str, KernelPair] = {
    "reference": KernelPair("reference", ax_m_reference, ax_m1_reference),
    "compressed": KernelPair("compressed", ax_m_compressed, ax_m1_compressed),
    "precomputed": KernelPair("precomputed", ax_m_precomputed, ax_m1_precomputed),
}

_SPECIALIZED_BUILDERS: dict[str, Callable[[int, int], KernelPair]] = {
    "unrolled": _unrolled_pair("unrolled", cse=False),
    "unrolled_cse": _unrolled_pair("unrolled_cse", cse=True),
    "vectorized": _vectorized_pair,
    "blocked": _blocked_pair,
}


def available_variants() -> list[str]:
    """Names accepted by :func:`get_kernels` (``"auto"`` autotunes)."""
    return sorted([*_STATIC_VARIANTS, *_SPECIALIZED_BUILDERS, "auto"])


def get_kernels(variant: str, m: int | None = None, n: int | None = None) -> KernelPair:
    """Look up a kernel pair by variant name.

    Shape-specialized variants (``unrolled``, ``unrolled_cse``,
    ``vectorized``) require ``m`` and ``n``; shape-generic variants ignore
    them.
    """
    if variant in _STATIC_VARIANTS:
        return _STATIC_VARIANTS[variant]
    if variant == "auto":
        if m is None or n is None:
            raise ValueError("variant 'auto' is shape-specialized; pass m and n")
        from repro.kernels.autotune import auto_kernels

        return auto_kernels(m, n)
    if variant in _SPECIALIZED_BUILDERS:
        if m is None or n is None:
            raise ValueError(f"variant {variant!r} is shape-specialized; pass m and n")
        return _SPECIALIZED_BUILDERS[variant](m, n)
    raise KeyError(
        f"unknown kernel variant {variant!r}; available: {available_variants()}"
    )
