"""Batched vectorized kernels — the functional analog of the GPU mapping.

The paper's CUDA kernel assigns one thread block per tensor and one thread
per starting vector; every thread evaluates the same unrolled arithmetic on
its own ``(tensor, vector)`` pair.  With NumPy, the equivalent of launching
``T x V`` threads is broadcasting: these kernels evaluate ``A x^m`` and
``A x^{m-1}`` for *all* leading-dimension combinations at once from the
shared precomputed tables (one gather per tensor mode, one segmented
reduction for the vector kernel).

Conventions: ``values`` has shape ``(..., U)`` (unique entries last), ``x``
has shape ``(..., n)``; leading dimensions broadcast against each other.
The SS-HOPM multistart driver calls these with ``values[T, 1, U]`` against
``x[T, V, n]``.
"""

from __future__ import annotations

import numpy as np

from repro.kernels.errors import TableInferenceError
from repro.kernels.tables import KernelTables, kernel_tables
from repro.util.flopcount import FlopCounter, null_counter

__all__ = ["ax_m_batched", "ax_m1_batched", "infer_shape", "monomials_batched"]


def monomials_batched(x: np.ndarray, tab: KernelTables) -> np.ndarray:
    """All ``U`` degree-``m`` monomials of ``x``: output ``[..., u]`` is
    ``prod_j x[..., index[u, j]]`` — the compressed rank-one tensor
    ``x^{(x) m}`` evaluated for every leading index."""
    x = np.asarray(x)
    out = x[..., tab.index[:, 0]].copy()
    for j in range(1, tab.m):
        out *= x[..., tab.index[:, j]]
    return out


def ax_m_batched(
    values: np.ndarray,
    x: np.ndarray,
    tables: KernelTables | None = None,
    counter: FlopCounter | None = None,
) -> np.ndarray:
    """Batched ``A x^m``.

    Parameters
    ----------
    values : ``(..., U)`` unique-value arrays.
    x : ``(..., n)`` vectors; leading dims broadcast against ``values``.

    Returns the broadcast-shaped array of scalars ``A x^m``.
    """
    counter = counter or null_counter()
    values = np.asarray(values)
    x = np.asarray(x)
    tab = _resolve_tables(values, x, tables)
    mono = monomials_batched(x, tab)  # (..., U)
    mult = tab.mult.astype(values.dtype)
    y = np.einsum("...u,...u,u->...", values, mono, mult, optimize=True)
    counter.add_flops(int(np.size(y)) * (tab.num_unique * (tab.m + 2)))
    return y


def ax_m1_batched(
    values: np.ndarray,
    x: np.ndarray,
    tables: KernelTables | None = None,
    counter: FlopCounter | None = None,
) -> np.ndarray:
    """Batched ``A x^{m-1}``.

    Returns an array shaped ``broadcast(leading dims) + (n,)``.

    Implementation: the Figure-3 double loop is flattened into the
    precomputed row expansion (one row per (class, distinct index) pair,
    sorted by output entry); all rows are evaluated at once and segment-
    reduced with ``np.add.reduceat``.
    """
    counter = counter or null_counter()
    values = np.asarray(values)
    x = np.asarray(x)
    tab = _resolve_tables(values, x, tables)
    m = tab.m

    if m == 2:
        # row_factors has one column; the general path below handles it, but
        # the m=2 matrix case is worth keeping on the same path for clarity.
        pass

    # per-row remaining-factor products: (..., R)
    if tab.row_factors.shape[1] == 0:
        f = np.ones(x.shape[:-1] + (tab.num_rows,), dtype=x.dtype)
    else:
        f = x[..., tab.row_factors[:, 0]].copy()
        for j in range(1, m - 1):
            f *= x[..., tab.row_factors[:, j]]

    contrib = values[..., tab.row_class] * f
    contrib *= tab.row_sigma.astype(contrib.dtype)
    y = np.add.reduceat(contrib, tab.out_starts[:-1], axis=-1)
    counter.add_flops((int(np.size(y)) // tab.n) * (tab.num_rows * (m + 2)))
    return y


def infer_shape(values: np.ndarray, x: np.ndarray) -> tuple[int, int]:
    """Recover ``(m, n)`` from batched-kernel array shapes.

    ``n`` is the last axis of ``x``; ``m`` is found by matching the last
    axis of ``values`` against ``C(m+n-1, m)``.  Raises
    :class:`~repro.kernels.errors.TableInferenceError` when no order fits
    (or the shape is ambiguous, as for ``n == 1``).
    """
    from repro.util.combinatorics import num_unique_entries

    n = int(np.shape(x)[-1])
    U = int(np.shape(values)[-1])
    if n == 1:
        # U == 1 for every order when n == 1; the shape is ambiguous
        raise TableInferenceError(
            "cannot infer tensor order for n=1; pass tables= explicitly", n=n
        )
    for m in range(2, 64):
        u = num_unique_entries(m, n)
        if u == U:
            return m, n
        if u > U:
            break
    raise TableInferenceError(
        f"cannot infer tensor order: no m gives C(m+{n}-1, m) == {U}; "
        "pass tables= explicitly",
        n=n,
    )


def _resolve_tables(values: np.ndarray, x: np.ndarray,
                    tables: KernelTables | None) -> KernelTables:
    """Supplied tables are validated against the array shapes; ``None``
    triggers inference.  Both failure modes raise the typed
    :class:`~repro.kernels.errors.TableInferenceError` (mismatched explicit
    tables were historically accepted silently and produced garbage)."""
    if tables is None:
        return kernel_tables(*infer_shape(values, x))
    n = int(np.shape(x)[-1])
    U = int(np.shape(values)[-1])
    if tables.n != n or tables.num_unique != U:
        raise TableInferenceError(
            f"supplied tables are for R^[{tables.m},{tables.n}] "
            f"({tables.num_unique} unique values) but arrays have "
            f"x trailing dim {n} and {U} values per tensor",
            m=tables.m,
            n=tables.n,
        )
    return tables


def _infer_tables(values: np.ndarray, x: np.ndarray, tables) -> KernelTables:
    """Backward-compatible spelling of table inference (pre-1.2 internal
    helper some downstream code imports); defers to :func:`infer_shape`."""
    return kernel_tables(*infer_shape(values, x))
