"""Loop-unrolled kernels via code generation (Section V-D).

For a fixed ``(m, n)`` the paper completely unrolls both kernel loops: the
index information and multinomial coefficients are folded into the code at
compile time, input/output vector entries live in registers, and the
compiler sees straight-line arithmetic.  "This is possible for small
problems" — for ``m=4, n=3`` the scalar kernel is a 15-term sum and each of
the 3 vector-kernel entries a 10-term sum.

This module is the Python analog: :func:`make_unrolled` *generates source
code* for the two kernels specialized to ``(m, n)``, compiles it with
``exec``, and returns the callables together with their exact flop counts
(known at generation time, exactly as the paper's static analysis).  Two
axes of variants:

* ``cse=True`` applies the common-subexpression elimination the paper
  mentions as a further possible optimization: powers ``x_i^e`` are computed
  once into locals and monomials are built from them, reducing the multiply
  count at the price of serial dependencies.
* ``batched=True`` emits NumPy-broadcasting code over arrays of tensors and
  vectors (``a[..., u]``, ``x[..., i]``) instead of scalars — the
  whole-device analog used by the simulated GPU executor, where one
  generated expression evaluates every (tensor, starting-vector) thread at
  once.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Callable

import numpy as np

from repro.kernels._deprecation import warn_deprecated
from repro.kernels.tables import kernel_tables

# ``make_unrolled`` / ``generate_source`` are deprecated import paths (use
# the :mod:`repro.kernels.codegen` emitter registry); the module
# ``__getattr__`` below keeps them working with a caller-blaming warning.
__all__ = ["UnrolledKernels", "make_unrolled", "generate_source"]


@dataclass(frozen=True)
class UnrolledKernels:
    """Compiled unrolled kernels for one ``(m, n)`` specialization.

    Attributes
    ----------
    ax_m, ax_m1 : the generated callables. Non-batched signatures are
        ``ax_m(a, x) -> float`` and ``ax_m1(a, x) -> ndarray(n)`` where ``a``
        is the unique-value array; batched signatures take broadcastable
        ``a[..., U]`` / ``x[..., n]`` arrays.
    source : the generated module source (inspectable, e.g. for the docs).
    flops_scalar, flops_vector : exact floating-point operation counts of one
        evaluation of each kernel (per thread), from static analysis of the
        generated expressions.  These feed the GPU performance model.
    """

    m: int
    n: int
    cse: bool
    batched: bool
    ax_m: Callable
    ax_m1: Callable
    source: str
    flops_scalar: int
    flops_vector: int


def _monomial_expr(
    factors: list[int],
    xvar,
    power_vars: dict[tuple[int, int], str] | None,
    flops: list[int],
) -> str:
    """Expression string for ``prod_i x_{factors[i]}`` (0-based factors).

    With ``power_vars`` (CSE mode) the product is built from precomputed
    ``x_i^e`` locals; otherwise it is a flat chain of multiplies.
    Appends the multiply count to ``flops``.
    """
    if not factors:
        return "1.0"
    if power_vars is None:
        parts = [xvar(i) for i in factors]
        flops.append(len(parts) - 1)
        return "*".join(parts)
    # CSE: group repeated factors into power variables
    counts: dict[int, int] = {}
    for i in factors:
        counts[i] = counts.get(i, 0) + 1
    parts = []
    for i in sorted(counts):
        e = counts[i]
        parts.append(xvar(i) if e == 1 else power_vars[(i, e)])
    flops.append(len(parts) - 1)
    return "*".join(parts)


def _generate_source(m: int, n: int, cse: bool = False, batched: bool = False) -> tuple[str, int, int]:
    """Generate the module source for the two unrolled kernels.

    Returns ``(source, flops_scalar, flops_vector)``.
    """
    tab = kernel_tables(m, n)
    U = tab.num_unique

    if batched:
        xvar = lambda i: f"x{i}"  # noqa: E731
        avar = lambda u: f"a[..., {u}]"  # noqa: E731
        x_prelude = [f"    x{i} = x[..., {i}]" for i in range(n)]
    else:
        xvar = lambda i: f"x{i}"  # noqa: E731
        avar = lambda u: f"a[{u}]"  # noqa: E731
        x_prelude = [f"    x{i} = x[{i}]" for i in range(n)]

    # CSE power variables: x_i^e for every exponent e >= 2 that occurs
    power_vars: dict[tuple[int, int], str] | None = None
    cse_lines: list[str] = []
    cse_flops = 0
    if cse:
        power_vars = {}
        max_exp = [0] * n
        for u in range(U):
            for i in range(n):
                max_exp[i] = max(max_exp[i], int(tab.monomial[u, i]))
        # the vector kernel uses exponents one lower; covered since e-1 <= e
        for i in range(n):
            prev = xvar(i)
            for e in range(2, max_exp[i] + 1):
                name = f"x{i}_{e}"
                cse_lines.append(f"    {name} = {prev}*{xvar(i)}")
                power_vars[(i, e)] = name
                prev = name
                cse_flops += 1

    # Terms are emitted as accumulation *statements* (acc += term), not one
    # giant sum expression: CPython's compiler recurses on expression depth
    # and overflows past ~1000 chained additions, while a statement list
    # compiles flat at any length.

    # ---- scalar kernel: A x^m ------------------------------------------
    sflops: list[int] = []
    terms = []
    for u in range(U):
        factors = [int(v) for v in tab.index[u]]
        mono = _monomial_expr(factors, xvar, power_vars, sflops)
        c = int(tab.mult[u])
        if c == 1:
            terms.append(f"{avar(u)}*{mono}")
            sflops.append(1)  # a * mono
        else:
            terms.append(f"{float(c)}*{avar(u)}*{mono}")
            sflops.append(2)  # c * a * mono
    flops_scalar = sum(sflops) + (U - 1) + cse_flops  # terms + additions

    # ---- vector kernel: A x^(m-1) ---------------------------------------
    vflops: list[int] = []
    out_terms: list[list[str]] = []
    for i in range(n):
        lo, hi = int(tab.out_starts[i]), int(tab.out_starts[i + 1])
        entry_terms = []
        for r in range(lo, hi):
            factors = [int(v) for v in tab.row_factors[r]]
            mono = _monomial_expr(factors, xvar, power_vars, vflops)
            c = int(tab.row_sigma[r])
            u = int(tab.row_class[r])
            if c == 1:
                entry_terms.append(f"{avar(u)}*{mono}")
                vflops.append(1)
            else:
                entry_terms.append(f"{float(c)}*{avar(u)}*{mono}")
                vflops.append(2)
        vflops.append(len(entry_terms) - 1)
        out_terms.append(entry_terms)
    flops_vector = sum(vflops) + cse_flops

    def accumulate(var: str, term_list: list[str]) -> list[str]:
        out = [f"    {var} = {term_list[0]}"]
        out.extend(f"    {var} += {t}" for t in term_list[1:])
        return out

    lines = [
        f'"""Auto-generated unrolled kernels for m={m}, n={n} '
        f'(cse={cse}, batched={batched})."""',
        "import numpy as np",
        "",
        "def ax_m(a, x):",
        *x_prelude,
        *cse_lines,
        *accumulate("acc", terms),
        "    return acc",
        "",
        "def ax_m1(a, x):",
        *x_prelude,
        *cse_lines,
    ]
    for i, entry_terms in enumerate(out_terms):
        lines.extend(accumulate(f"y{i}", entry_terms))
    if batched:
        lines.append(
            "    return np.stack(np.broadcast_arrays("
            + ", ".join(f"y{i}" for i in range(n))
            + "), axis=-1)"
        )
    else:
        lines.append(
            "    return np.array([" + ", ".join(f"y{i}" for i in range(n)) + "])"
        )
    lines.append("")
    return "\n".join(lines), flops_scalar, flops_vector


@lru_cache(maxsize=None)
def _make_unrolled(m: int, n: int, cse: bool = False, batched: bool = False) -> UnrolledKernels:
    """Generate, compile, and cache the unrolled kernels for ``(m, n)``.

    Generation cost grows with ``C(m+n-1, m)`` terms; a guard refuses sizes
    whose generated source would be absurd (the paper's observation that
    full unrolling only scales to small problems — beyond that a blocked
    approach is needed, which it leaves as future work).
    """
    tab = kernel_tables(m, n)
    if tab.num_unique > 4000:
        raise ValueError(
            f"refusing to unroll m={m}, n={n}: {tab.num_unique} unique entries "
            "(full unrolling only makes sense for small tensors; see Section V-D)"
        )
    source, flops_scalar, flops_vector = _generate_source(m, n, cse=cse, batched=batched)
    namespace: dict = {}
    code = compile(source, f"<unrolled m={m} n={n} cse={cse} batched={batched}>", "exec")
    exec(code, namespace)  # noqa: S102 - controlled, generated source
    return UnrolledKernels(
        m=m,
        n=n,
        cse=cse,
        batched=batched,
        ax_m=namespace["ax_m"],
        ax_m1=namespace["ax_m1"],
        source=source,
        flops_scalar=flops_scalar,
        flops_vector=flops_vector,
    )


# deprecated public names -> (implementation, what to use instead)
_DEPRECATED = {
    "make_unrolled": (
        _make_unrolled,
        "use repro.kernels.codegen.emit(m, n, variant, target='numpy') "
        "(the emitter registry)",
    ),
    "generate_source": (
        _generate_source,
        "use repro.kernels.codegen.emit(...).source via the emitter registry",
    ),
}


def __getattr__(name):
    entry = _DEPRECATED.get(name)
    if entry is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    impl, instead = entry
    warn_deprecated(f"importing {name!r} from repro.kernels.unrolled", instead)
    return impl
