"""Blocked symmetric kernels — the paper's stated future work.

Section V-D: full loop unrolling "is possible for small problems, but to
scale to larger problems we need a blocked approach.  Handling the
different cases that arise when blocking a symmetric tensor is future
work."  Section VI: "the main implementation challenges will be to
classify the various shapes of register blocks that arise (for each order
m) so that each shape may be handled separately."

This module implements that blocking.  Partition the dimension
``{0..n-1}`` into chunks of size ``b``.  Every index class then belongs to
a *block*: the nondecreasing ``m``-tuple of chunk ids its indices fall in.
A block is characterized by its **shape** — the multiplicities
``(q_1, ..., q_r)`` of its ``r`` distinct chunks (the paper's "various
shapes of register blocks"; for ``m=4`` they are ``(4)``, ``(3,1)``,
``(2,2)``, ``(2,1,1)``, ``(1,1,1,1)``).  The content of a block is the
Cartesian product of order-``q_j`` index classes *within* each chunk, so a
block's unique values form an ``r``-way array ``A_block`` of extent
``C(q_j + b_j - 1, q_j)`` per axis.

The key identity that makes blocks separable is the factorization of the
multinomial coefficient over chunks,

    C(m; k_1..k_n) = C(m; q_1..q_r) * prod_j C(q_j; k within chunk j),

which turns the scalar kernel into a tiny tensor contraction per block:

    A x^m = sum_blocks C(m; q_1..q_r) *
            einsum(A_block, w^{q_1}_{c_1}, ..., w^{q_r}_{c_r})

where ``w^{q}_{c}[u] = C(q; k(u)) * x_c^{monomial(u)}`` is the weighted
degree-``q`` monomial vector of chunk ``c`` — computed once per
(chunk, order) and shared by every block that touches it.  The vector
kernel differentiates one factor:  ``d/dx_i`` of ``w^{q}_{c}`` is the
(b x U) matrix built from the same sigma tables as the flat kernels.

Everything per ``(m, n, block_size)`` is precomputed into a cached
:class:`BlockingPlan`; evaluation is pure NumPy contractions, giving the
"general order and dimension" performance path the paper calls for.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from repro.kernels.tables import kernel_tables
from repro.symtensor.indexing import iter_index_classes
from repro.symtensor.storage import SymmetricTensor
from repro.util.combinatorics import multinomial, num_unique_entries
from repro.util.flopcount import FlopCounter, null_counter

__all__ = [
    "BlockingPlan",
    "blocking_plan",
    "block_shapes",
    "ax_m_blocked",
    "ax_m1_blocked",
]


def block_shapes(m: int) -> list[tuple[int, ...]]:
    """The distinct block shapes of order ``m``: all integer partitions of
    ``m`` (multiplicity patterns of chunks within a block), largest part
    first — the classification the paper's Section VI asks for."""
    if m < 1:
        raise ValueError(f"order must be >= 1, got {m}")
    shapes: list[tuple[int, ...]] = []

    def rec(remaining: int, maximum: int, prefix: tuple[int, ...]):
        if remaining == 0:
            shapes.append(prefix)
            return
        for part in range(min(remaining, maximum), 0, -1):
            rec(remaining - part, part, prefix + (part,))

    rec(m, m, ())
    return shapes


# -- per-chunk monomial machinery -------------------------------------------


def _chunk_monomial_weights(q: int, x_chunk: np.ndarray) -> np.ndarray:
    """``w^{q}[u] = C(q; k(u)) * x_chunk^{monomial(u)}`` for all order-``q``
    classes over this chunk (length ``C(q+b-1, q)``)."""
    b = x_chunk.shape[0]
    if q == 1:
        return x_chunk.copy()
    tab = kernel_tables(q, b)
    mono = x_chunk[tab.index[:, 0]].copy()
    for j in range(1, q):
        mono *= x_chunk[tab.index[:, j]]
    return mono * tab.mult.astype(x_chunk.dtype)


def _chunk_monomial_jacobian(q: int, x_chunk: np.ndarray) -> np.ndarray:
    """``D^{q}[i, u] = d w^{q}[u] / d x_i`` — a ``(b, U_q)`` matrix.

    Using ``w[u] = C(q;k) x^k``: ``dw[u]/dx_i = C(q;k) k_i x^{k - e_i}
    = q * sigma_u(i) * x^{k-e_i}`` via the footnote-3 identity
    ``sigma = C(q;k) k_i / q``.
    """
    b = x_chunk.shape[0]
    if q == 1:
        return np.eye(b, dtype=x_chunk.dtype)
    tab = kernel_tables(q, b)
    D = np.zeros((b, tab.num_unique), dtype=x_chunk.dtype)
    if tab.row_factors.shape[1] == 0:
        f = np.ones(tab.num_rows, dtype=x_chunk.dtype)
    else:
        f = x_chunk[tab.row_factors[:, 0]].copy()
        for j in range(1, q - 1):
            f *= x_chunk[tab.row_factors[:, j]]
    contrib = q * tab.row_sigma.astype(x_chunk.dtype) * f
    D[tab.row_out, tab.row_class] = contrib
    return D


# -- the blocking plan --------------------------------------------------------


@dataclass(frozen=True)
class _Block:
    chunks: tuple[int, ...]  # distinct chunk ids, ascending
    orders: tuple[int, ...]  # multiplicity of each chunk (sums to m)
    inter_coeff: int  # C(m; orders)
    gather: np.ndarray  # r-way array of positions into the flat value array


@dataclass(frozen=True)
class BlockingPlan:
    """Cached blocking of the order-``m`` dimension-``n`` index space into
    chunks of size ``block_size``."""

    m: int
    n: int
    block_size: int
    chunk_bounds: tuple[tuple[int, int], ...]  # (start, stop) per chunk
    blocks: tuple[_Block, ...]

    @property
    def num_chunks(self) -> int:
        return len(self.chunk_bounds)

    @property
    def num_blocks(self) -> int:
        return len(self.blocks)

    def shapes_used(self) -> set[tuple[int, ...]]:
        return {tuple(sorted(b.orders, reverse=True)) for b in self.blocks}


@lru_cache(maxsize=None)
def blocking_plan(m: int, n: int, block_size: int) -> BlockingPlan:
    """Build (and cache) the :class:`BlockingPlan` for ``(m, n)`` with the
    given chunk size.

    The plan enumerates every block key (nondecreasing ``m``-tuple of chunk
    ids), derives its shape and inter-chunk multinomial, and materializes
    the gather array mapping the block's ``r``-way content onto positions
    in the flat lexicographic value array.
    """
    if m < 2:
        raise ValueError(f"blocked kernels need m >= 2, got {m}")
    if not 1 <= block_size <= n:
        raise ValueError(f"block_size must be in 1..{n}, got {block_size}")
    num_chunks = -(-n // block_size)
    bounds = tuple(
        (c * block_size, min((c + 1) * block_size, n)) for c in range(num_chunks)
    )

    # position of every global index class in the flat lex order
    from repro.symtensor.indexing import class_lookup

    lookup = class_lookup(m, n)

    blocks: list[_Block] = []
    for key in iter_index_classes(m, num_chunks):  # 1-based chunk ids
        chunk_ids = tuple(c - 1 for c in key)
        distinct: list[int] = []
        orders: list[int] = []
        for c in chunk_ids:
            if distinct and distinct[-1] == c:
                orders[-1] += 1
            else:
                distinct.append(c)
                orders.append(1)
        inter = multinomial(orders)

        # per-axis local classes: order-q_j classes over chunk j's width
        axis_classes: list[list[tuple[int, ...]]] = []
        for c, q in zip(distinct, orders):
            lo, hi = bounds[c]
            width = hi - lo
            local = [
                tuple(lo + v - 1 for v in cls)  # global 0-based indices
                for cls in iter_index_classes(q, width)
            ]
            axis_classes.append(local)

        shape = tuple(len(ax) for ax in axis_classes)
        gather = np.empty(shape, dtype=np.int64)
        # iterate the Cartesian product of local classes
        it = np.ndindex(*shape)
        for multi in it:
            combined: list[int] = []
            for ax, u in zip(axis_classes, multi):
                combined.extend(ax[u])
            combined.sort()
            gather[multi] = lookup[tuple(v + 1 for v in combined)]
        gather.setflags(write=False)
        blocks.append(
            _Block(
                chunks=tuple(distinct),
                orders=tuple(orders),
                inter_coeff=inter,
                gather=gather,
            )
        )

    # completeness: every unique value appears exactly once across blocks
    total = sum(b.gather.size for b in blocks)
    expected = num_unique_entries(m, n)
    if total != expected:
        raise AssertionError(
            f"blocking covered {total} entries, expected {expected}"
        )
    return BlockingPlan(
        m=m, n=n, block_size=block_size, chunk_bounds=bounds, blocks=tuple(blocks)
    )


# -- evaluation ---------------------------------------------------------------


def _chunk_vectors(plan: BlockingPlan, x: np.ndarray):
    """All (chunk, order) weighted-monomial vectors needed by the plan."""
    needed: set[tuple[int, int]] = set()
    for blk in plan.blocks:
        for c, q in zip(blk.chunks, blk.orders):
            needed.add((c, q))
    w: dict[tuple[int, int], np.ndarray] = {}
    for c, q in needed:
        lo, hi = plan.chunk_bounds[c]
        w[(c, q)] = _chunk_monomial_weights(q, x[lo:hi])
    return w


def ax_m_blocked(
    tensor: SymmetricTensor,
    x: np.ndarray,
    block_size: int = 4,
    plan: BlockingPlan | None = None,
    counter: FlopCounter | None = None,
) -> float:
    """``A x^m`` via the blocked decomposition (general ``(m, n)``).

    Equivalent to :func:`repro.kernels.compressed.ax_m_compressed` but
    evaluated as one small dense contraction per block, with per-chunk
    monomial vectors shared across blocks.
    """
    counter = counter or null_counter()
    m, n = tensor.m, tensor.n
    x = np.asarray(x, dtype=np.float64)
    if x.shape != (n,):
        raise ValueError(f"x has shape {x.shape}, expected ({n},)")
    if plan is None:
        plan = blocking_plan(m, n, min(block_size, n))
    elif (plan.m, plan.n) != (m, n):
        raise ValueError("plan shape does not match tensor shape")
    values = tensor.values
    w = _chunk_vectors(plan, x)

    y = 0.0
    for blk in plan.blocks:
        a = values[blk.gather]
        for axis in range(len(blk.chunks) - 1, -1, -1):
            a = a @ w[(blk.chunks[axis], blk.orders[axis])]
        y += blk.inter_coeff * float(a)
        counter.add_flops(2 * blk.gather.size + 2)
    return float(y)


def ax_m1_blocked(
    tensor: SymmetricTensor,
    x: np.ndarray,
    block_size: int = 4,
    plan: BlockingPlan | None = None,
    counter: FlopCounter | None = None,
) -> np.ndarray:
    """``A x^{m-1}`` via the blocked decomposition.

    The gradient of the factorized block form: for each block and each of
    its distinct chunks ``j``, replace that chunk's monomial vector with
    the Jacobian matrix and contract — the chain rule over the block's
    product structure, scaled by ``1/m`` (since ``grad(A x^m) = m A x^{m-1}``).
    """
    counter = counter or null_counter()
    m, n = tensor.m, tensor.n
    x = np.asarray(x, dtype=np.float64)
    if x.shape != (n,):
        raise ValueError(f"x has shape {x.shape}, expected ({n},)")
    if plan is None:
        plan = blocking_plan(m, n, min(block_size, n))
    elif (plan.m, plan.n) != (m, n):
        raise ValueError("plan shape does not match tensor shape")
    values = tensor.values
    w = _chunk_vectors(plan, x)
    # Jacobians per needed (chunk, order)
    D: dict[tuple[int, int], np.ndarray] = {}
    for key in w:
        c, q = key
        lo, hi = plan.chunk_bounds[c]
        D[key] = _chunk_monomial_jacobian(q, x[lo:hi])

    y = np.zeros(n, dtype=np.float64)
    for blk in plan.blocks:
        a0 = values[blk.gather]
        r = len(blk.chunks)
        for j in range(r):
            cj, qj = blk.chunks[j], blk.orders[j]
            # contract all axes != j with w, axis j with the Jacobian
            a = a0
            # contract trailing axes first to keep axis bookkeeping simple
            for axis in range(r - 1, -1, -1):
                key = (blk.chunks[axis], blk.orders[axis])
                if axis == j:
                    continue
                a = np.tensordot(a, w[key], axes=([axis], [0]))
            # remaining single axis corresponds to chunk j's classes
            grad_chunk = D[(cj, qj)] @ np.atleast_1d(a)
            lo, hi = plan.chunk_bounds[cj]
            y[lo:hi] += blk.inter_coeff * grad_chunk
            counter.add_flops(2 * blk.gather.size + 2 * grad_chunk.size)
    return y / m
