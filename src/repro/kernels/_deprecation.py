"""Shared helper for caller-blaming deprecation warnings.

Module-level ``__getattr__`` shims (the mechanism behind every deprecated
import path in :mod:`repro.kernels`) are invoked by the import machinery,
so a fixed ``stacklevel`` would attribute the warning to frozen importlib
instead of the user's ``from ... import ...`` line.
:func:`warn_deprecated` walks outward past any importlib frames so the
warning lands on the real import site — keeping ``-W error`` failures
actionable downstream.
"""

from __future__ import annotations

import sys
import warnings

__all__ = ["warn_deprecated"]


def warn_deprecated(name: str, instead: str) -> None:
    """Emit a caller-blaming :class:`DeprecationWarning` for ``name``.

    Must be called directly from the deprecation shim (a module
    ``__getattr__`` or a thin wrapper function): the first frame outside
    the shim that is not import machinery gets the blame.
    """
    # stacklevel s attributes the warning to sys._getframe(s - 1) as seen
    # from here: s=1 is this function, s=2 the shim, s=3 the shim's caller.
    level = 3
    while True:
        try:
            frame = sys._getframe(level - 1)
        except ValueError:
            level = 3  # stack exhausted; blame the immediate caller
            break
        modname = frame.f_globals.get("__name__", "")
        filename = frame.f_code.co_filename
        if not (modname.startswith("importlib")
                or filename.startswith("<frozen importlib")):
            break
        level += 1
    warnings.warn(
        f"{name} is deprecated; {instead}",
        DeprecationWarning,
        stacklevel=level,
    )
