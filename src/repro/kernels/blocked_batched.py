"""Batched blocked kernels: the future-work path, over whole workloads.

Combines the two scaling axes of this reproduction: the *blocked*
decomposition (general ``(m, n)`` — Section VI future work) and the
*batched* evaluation (all ``T`` tensors x ``V`` starting vectors at once —
the GPU mapping).  Each block becomes one ``einsum`` contracting the
gathered values (shape ``(..., U_1, ..., U_r)``) against per-chunk monomial
arrays (shape ``(..., U_j)``), with leading dimensions broadcasting exactly
like the flat batched kernels: the multistart driver passes
``values[T, 1, U]`` against ``x[T, V, n]``.

Per-chunk weights and Jacobians are computed once per call and shared by
every block touching that chunk — the analog of the paper's table sharing
across thread blocks.  This makes lockstep multistart SS-HOPM practical
for tensor sizes far past the unrollable regime
(``backend="blocked"`` in :func:`repro.core.multistart.multistart_sshopm`).
"""

from __future__ import annotations

import numpy as np

from repro.kernels.blocked import BlockingPlan, blocking_plan
from repro.kernels.tables import kernel_tables
from repro.util.flopcount import FlopCounter, null_counter

__all__ = ["ax_m_blocked_batched", "ax_m1_blocked_batched", "infer_plan"]

_EINSUM_AXES = "abcdefgh"  # supports block shapes with up to 8 distinct chunks


def _chunk_weights_batched(q: int, x_chunk: np.ndarray) -> np.ndarray:
    """``(..., U_q)`` weighted monomials of order ``q`` for every leading
    index of ``x_chunk`` (shape ``(..., b)``)."""
    b = x_chunk.shape[-1]
    if q == 1:
        return x_chunk.copy()
    tab = kernel_tables(q, b)
    mono = x_chunk[..., tab.index[:, 0]].copy()
    for j in range(1, q):
        mono *= x_chunk[..., tab.index[:, j]]
    return mono * tab.mult.astype(x_chunk.dtype)


def _chunk_jacobian_batched(q: int, x_chunk: np.ndarray) -> np.ndarray:
    """``(..., b, U_q)`` per-leading-index Jacobians ``d w^q[u] / d x_i``."""
    b = x_chunk.shape[-1]
    lead = x_chunk.shape[:-1]
    if q == 1:
        eye = np.eye(b, dtype=x_chunk.dtype)
        return np.broadcast_to(eye, lead + (b, b)).copy()
    tab = kernel_tables(q, b)
    if tab.row_factors.shape[1] == 0:
        f = np.ones(lead + (tab.num_rows,), dtype=x_chunk.dtype)
    else:
        f = x_chunk[..., tab.row_factors[:, 0]].copy()
        for j in range(1, q - 1):
            f *= x_chunk[..., tab.row_factors[:, j]]
    contrib = q * tab.row_sigma.astype(x_chunk.dtype) * f  # (..., R)
    D = np.zeros(lead + (b, tab.num_unique), dtype=x_chunk.dtype)
    D[..., tab.row_out, tab.row_class] = contrib
    return D


def infer_plan(values: np.ndarray, x: np.ndarray, block_size: int = 6) -> BlockingPlan:
    """Recover a default :class:`BlockingPlan` from array shapes."""
    from repro.util.combinatorics import num_unique_entries

    n = np.asarray(x).shape[-1]
    U = np.asarray(values).shape[-1]
    if n == 1:
        raise ValueError("cannot infer tensor order for n=1; pass plan= explicitly")
    m = next((mm for mm in range(2, 64) if num_unique_entries(mm, n) == U), None)
    if m is None:
        raise ValueError(f"no order m gives C(m+{n}-1, m) == {U}; pass plan=")
    return blocking_plan(m, n, min(block_size, n))


def _gathered(values: np.ndarray, blk) -> np.ndarray:
    lead = values.shape[:-1]
    return values[..., blk.gather.ravel()].reshape(lead + blk.gather.shape)


def ax_m_blocked_batched(
    values: np.ndarray,
    x: np.ndarray,
    plan: BlockingPlan | None = None,
    block_size: int = 6,
    counter: FlopCounter | None = None,
) -> np.ndarray:
    """Batched blocked ``A x^m`` with broadcasting leading dimensions:
    ``values (..., U)`` against ``x (..., n)`` gives the broadcast-shaped
    scalar array."""
    counter = counter or null_counter()
    values = np.asarray(values)
    x = np.asarray(x)
    if plan is None:
        plan = infer_plan(values, x, block_size)
    if x.shape[-1] != plan.n:
        raise ValueError(f"x trailing dim {x.shape[-1]} != n={plan.n}")

    weights: dict[tuple[int, int], np.ndarray] = {}
    for blk in plan.blocks:
        for c, q in zip(blk.chunks, blk.orders):
            if (c, q) not in weights:
                lo, hi = plan.chunk_bounds[c]
                weights[(c, q)] = _chunk_weights_batched(q, x[..., lo:hi])

    out_shape = np.broadcast_shapes(values.shape[:-1], x.shape[:-1])
    y = np.zeros(out_shape, dtype=np.result_type(values.dtype, x.dtype))
    for blk in plan.blocks:
        r = len(blk.chunks)
        axes = _EINSUM_AXES[:r]
        spec = (
            "..." + axes + ","
            + ",".join("..." + a for a in axes)
            + "->..."
        )
        ws = [weights[(c, q)] for c, q in zip(blk.chunks, blk.orders)]
        y = y + blk.inter_coeff * np.einsum(spec, _gathered(values, blk), *ws,
                                            optimize=True)
        counter.add_flops(2 * int(np.prod(out_shape, dtype=np.int64)) * blk.gather.size)
    return y


def ax_m1_blocked_batched(
    values: np.ndarray,
    x: np.ndarray,
    plan: BlockingPlan | None = None,
    block_size: int = 6,
    counter: FlopCounter | None = None,
) -> np.ndarray:
    """Batched blocked ``A x^{m-1}``: broadcast leading dims plus a
    trailing ``(n,)`` axis."""
    counter = counter or null_counter()
    values = np.asarray(values)
    x = np.asarray(x)
    if plan is None:
        plan = infer_plan(values, x, block_size)
    if x.shape[-1] != plan.n:
        raise ValueError(f"x trailing dim {x.shape[-1]} != n={plan.n}")
    m, n = plan.m, plan.n

    weights: dict[tuple[int, int], np.ndarray] = {}
    jacobians: dict[tuple[int, int], np.ndarray] = {}
    for blk in plan.blocks:
        for c, q in zip(blk.chunks, blk.orders):
            if (c, q) not in weights:
                lo, hi = plan.chunk_bounds[c]
                weights[(c, q)] = _chunk_weights_batched(q, x[..., lo:hi])
                jacobians[(c, q)] = _chunk_jacobian_batched(q, x[..., lo:hi])

    lead = np.broadcast_shapes(values.shape[:-1], x.shape[:-1])
    y = np.zeros(lead + (n,), dtype=np.result_type(values.dtype, x.dtype))
    for blk in plan.blocks:
        r = len(blk.chunks)
        axes = _EINSUM_AXES[:r]
        a = _gathered(values, blk)
        for j in range(r):
            cj, qj = blk.chunks[j], blk.orders[j]
            operands = []
            parts = []
            for k in range(r):
                key = (blk.chunks[k], blk.orders[k])
                if k == j:
                    parts.append("...i" + axes[k])
                    operands.append(jacobians[key])
                else:
                    parts.append("..." + axes[k])
                    operands.append(weights[key])
            spec = "..." + axes + "," + ",".join(parts) + "->...i"
            contrib = np.einsum(spec, a, *operands, optimize=True)
            lo, hi = plan.chunk_bounds[cj]
            y[..., lo:hi] += blk.inter_coeff * contrib
            counter.add_flops(
                2 * int(np.prod(lead, dtype=np.int64)) * blk.gather.size
            )
    return y / m
