"""Spec-faithful compressed kernels — Figures 2, 3, and 4 of the paper.

This is the paper's "general implementation": it walks the unique values in
lexicographic order, regenerating the index representation with UPDATEINDEX
and the multiplicities with the streaming MULTINOMIAL0/1 passes at every
term.  Nothing beyond the ``U`` tensor values and one length-``m`` index
array is stored (the minimum-storage end of the Section III-B.5 tradeoff).

These functions are deliberately written as the pseudocode reads — explicit
loops, one term at a time — so they double as an executable specification
that the optimized variants (precomputed / unrolled / batched) are tested
against.  They are therefore the *slowest* variants in wall-clock terms.

Flop accounting matches Section III-B.5: all work in the Figure-2 loop body
is ``O(m)`` per class (total ``O(n^m / (m-1)!)``), and the Figure-3 nested
loop is ``O(m)`` per (class, distinct index) pair (total ``O(m n^m/(m-1)!)``).
"""

from __future__ import annotations

import numpy as np

from repro.symtensor.indexing import update_index
from repro.symtensor.storage import SymmetricTensor
from repro.util.combinatorics import (
    factorial,
    multinomial1_from_index,
    multinomial_from_index,
    num_unique_entries,
)
from repro.util.flopcount import FlopCounter, null_counter

__all__ = [
    "ax_m_compressed",
    "ax_m1_compressed",
    "ttsv_compressed",
    "symmetric_flops_scalar",
    "symmetric_flops_vector",
]


def ax_m_compressed(
    tensor: SymmetricTensor, x: np.ndarray, counter: FlopCounter | None = None
) -> float:
    """``y = A x^m`` via Equation 4 / Figure 2 (SYMMTENSORVECTORMULT0).

    One pass over the ``U`` unique values; for each, the monomial
    ``x_1^{k_1} ... x_n^{k_n}`` is formed from the index representation
    (``m - 1`` multiplies), scaled by the multinomial coefficient, and
    accumulated.
    """
    counter = counter or null_counter()
    m, n = tensor.m, tensor.n
    x = np.asarray(x)
    if x.shape != (n,):
        raise ValueError(f"x has shape {x.shape}, expected ({n},)")
    values = tensor.values
    m_fact = factorial(m)

    y = 0.0
    index = [1] * m
    for j in range(num_unique_entries(m, n)):
        xhat = 1.0
        for idx in index:
            xhat *= x[idx - 1]
        c = multinomial_from_index(index, m_fact)
        y += c * values[j] * xhat
        counter.add_flops(m + 3)  # m monomial mults + coeff mult + A mult + add
        counter.add_intops(2 * m)  # MULTINOMIAL0 pass + UPDATEINDEX
        counter.add_loads(m + 1)
        update_index(index, n)
    return float(y)


def ax_m1_compressed(
    tensor: SymmetricTensor, x: np.ndarray, counter: FlopCounter | None = None
) -> np.ndarray:
    """``y = A x^{m-1}`` via Equation 6 / Figure 3 (SYMMTENSORVECTORMULT1).

    For each unique value and each *distinct* index ``i`` it contains, the
    class contributes ``sigma(i) * a * prod(x over the other m-1 positions)``
    to output entry ``i``.  The product excludes one occurrence of ``x_i``
    by skipping it directly (rather than dividing the full monomial by
    ``x_i``, which Figure 3 writes but which fails when ``x_i = 0``).
    """
    counter = counter or null_counter()
    m, n = tensor.m, tensor.n
    x = np.asarray(x)
    if x.shape != (n,):
        raise ValueError(f"x has shape {x.shape}, expected ({n},)")
    values = tensor.values
    m1_fact = factorial(m - 1)

    y = np.zeros(n, dtype=np.result_type(values.dtype, x.dtype, np.float64))
    index = [1] * m
    for j in range(num_unique_entries(m, n)):
        a_j = values[j]
        counter.add_loads(1)
        seen: set[int] = set()
        for i in index:
            if i in seen:
                continue  # "for unique i in I" — skip repeated indices
            seen.add(i)
            xhat = 1.0
            skipped = False
            for idx in index:
                if idx == i and not skipped:
                    skipped = True
                    continue
                xhat *= x[idx - 1]
            c = multinomial1_from_index(index, i, m1_fact)
            y[i - 1] += c * a_j * xhat
            counter.add_flops(m + 3)  # (m-1) mults + coeff + A mult + add
            counter.add_intops(m)  # MULTINOMIAL1 pass
            counter.add_loads(m - 1)
        counter.add_intops(m)  # UPDATEINDEX
        update_index(index, n)
    counter.add_stores(n)
    return y


def ttsv_compressed(
    tensor: SymmetricTensor,
    x: np.ndarray,
    p: int,
    counter: FlopCounter | None = None,
) -> SymmetricTensor | np.ndarray | float:
    """General symmetric tensor-times-same-vector ``A x^{m-p}``
    (Definition 2) for any ``0 <= p <= m-1``, producing a *compressed*
    symmetric order-``p`` tensor.

    Extension beyond the paper's two kernels (the paper notes the result of
    a symmetric ttsv is itself symmetric — footnote 1 — but only implements
    ``p = 0, 1``).  Derivation: fixing the output multiset ``J`` (an order-p
    index class), every input class equals ``sort(J ++ K)`` for some
    order-``(m-p)`` multiset ``K`` of contracted indices, and the number of
    ordered arrangements of ``K`` over the ``m-p`` contracted modes is the
    multinomial ``C(m-p; K)``:

        (A x^{m-p})_J  =  sum_K  C(m-p; K) * a_{sort(J ++ K)} * x^K.

    Returns a scalar for ``p = 0``, a plain vector for ``p = 1`` (matching
    the dedicated kernels), and a :class:`SymmetricTensor` for ``p >= 2``.
    """
    counter = counter or null_counter()
    m, n = tensor.m, tensor.n
    if not 0 <= p <= m - 1:
        raise ValueError(f"need 0 <= p <= m-1 = {m - 1}, got p={p}")
    if p == 0:
        return ax_m_compressed(tensor, x, counter=counter)
    if p == 1:
        return ax_m1_compressed(tensor, x, counter=counter)

    x = np.asarray(x)
    if x.shape != (n,):
        raise ValueError(f"x has shape {x.shape}, expected ({n},)")
    from repro.symtensor.indexing import class_lookup, iter_index_classes

    lookup_m = class_lookup(m, n)
    out = SymmetricTensor.zeros(p, n, dtype=np.result_type(tensor.dtype, x.dtype, np.float64))
    out_lookup = class_lookup(p, n)
    mp_fact = factorial(m - p)
    values = tensor.values

    for K in iter_index_classes(m - p, n):
        cK = multinomial_from_index(K, mp_fact)
        xK = 1.0
        for idx in K:
            xK *= x[idx - 1]
        counter.add_flops(m - p)
        counter.add_intops(m - p)
        for J, uJ in out_lookup.items():
            full = tuple(sorted(J + K))
            term = cK * values[lookup_m[full]] * xK
            out.values[uJ] += term
            counter.add_flops(3)
            counter.add_loads(1)
    counter.add_stores(out.num_unique)
    return out


def symmetric_flops_scalar(m: int, n: int) -> int:
    """Counted flops of the Figure-2 kernel: ``(m+3) * C(m+n-1, m)``
    — the ``O(n^m / (m-1)!)`` column of Table II with its constant."""
    return (m + 3) * num_unique_entries(m, n)


def symmetric_flops_vector(m: int, n: int) -> int:
    """Counted flops of the Figure-3 kernel: ``(m+3)`` per (class, distinct
    index) pair — the ``O(m n^m / (m-1)!)`` column of Table II."""
    from repro.symtensor.indexing import iter_index_classes

    pairs = sum(len(set(ix)) for ix in iter_index_classes(m, n))
    return (m + 3) * pairs
