"""Kernel plans: shape-specialized batched suites, built once and cached.

Constructing a batched kernel suite for a shape ``(m, n)`` is not free:
the precomputed index/multinomial tables (:mod:`repro.kernels.tables`),
the blocking decomposition, and — for the unrolled variants — generated
and ``exec``-compiled straight-line code all have to be materialized.
The paper pays that cost once per shape and shares the result across
every thread block; :class:`KernelPlan` is the host-side analog: one
immutable bundle of (tables, compiled suite) per ``(m, n, variant)``,
held in a process-wide LRU :class:`PlanCache` so plan construction is
paid once per shape, not once per solve.

The fleet engine (:mod:`repro.engine`) resolves every kernel call
through :func:`get_plan`; ad-hoc callers can use :func:`contract_many`,
the single entry point that unifies the flat-batched and
blocked-batched dispatch behind one signature.

Cache hits/misses/evictions land on the
``repro_plan_cache_events_total`` metric (see
:func:`repro.instrument.metrics.observe_plan_cache`).
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from repro.kernels.batched import infer_shape
from repro.kernels.dispatch import (
    _BATCHED_ALIASES,
    BatchedKernelPair,
    UnknownVariantError,
    _batched_suite,
)
from repro.kernels.errors import KernelLookupError
from repro.kernels.tables import KernelTables, kernel_tables

__all__ = [
    "KernelPlan",
    "PlanCache",
    "clear_plan_cache",
    "contract_many",
    "default_plan_cache",
    "get_plan",
]


@dataclass(frozen=True)
class KernelPlan:
    """An immutable, reusable evaluation plan for one ``(m, n, variant)``.

    Attributes
    ----------
    m, n : tensor order and mode dimension.
    variant : canonical batched variant name (``"vectorized"``,
        ``"unrolled"``, ``"unrolled_cse"``, or ``"blocked"``).
    tables : the shared precomputed index/multinomial tables.
    suite : the compiled :class:`~repro.kernels.dispatch.BatchedKernelPair`.
    build_seconds : wall time spent constructing the plan (the cost the
        cache amortizes away).
    """

    m: int
    n: int
    variant: str
    tables: KernelTables
    suite: BatchedKernelPair
    build_seconds: float

    def ax_m(self, values: np.ndarray, x: np.ndarray, counter=None) -> np.ndarray:
        """Batched ``A x^m`` over broadcasting leading dimensions."""
        return self.suite.ax_m(values, x, counter=counter)

    def ax_m1(self, values: np.ndarray, x: np.ndarray, counter=None) -> np.ndarray:
        """Batched ``A x^{m-1}`` over broadcasting leading dimensions."""
        return self.suite.ax_m1(values, x, counter=counter)

    @property
    def key(self) -> tuple[int, int, str]:
        return (self.m, self.n, self.variant)


def _canonical_variant(variant: str, m: int, n: int) -> str:
    """Resolve aliases (``"batched"``, ``"batched_unrolled"``) and
    ``"auto"`` (autotuned) to a canonical batched variant name."""
    if variant == "auto":
        from repro.kernels.autotune import autotune

        best = autotune(m, n).best
        variant = best if best in _BATCHED_ALIASES else "vectorized"
    if variant not in _BATCHED_ALIASES:
        raise UnknownVariantError(
            variant, sorted({*_BATCHED_ALIASES.values()}) + ["auto"]
        )
    return _BATCHED_ALIASES[variant]


def _build_plan(m: int, n: int, canonical: str) -> KernelPlan:
    t0 = time.perf_counter()
    tables = kernel_tables(m, n)
    suite = _batched_suite(canonical, m, n)
    return KernelPlan(
        m=m,
        n=n,
        variant=canonical,
        tables=tables,
        suite=suite,
        build_seconds=time.perf_counter() - t0,
    )


class PlanCache:
    """Thread-safe LRU cache of :class:`KernelPlan` keyed ``(m, n, variant)``.

    ``maxsize`` bounds resident plans (an unrolled plan for a large shape
    holds compiled code and tables); the least recently *used* plan is
    evicted.  Hit/miss/eviction counts are kept both locally (``stats()``)
    and on the active metrics registry.
    """

    def __init__(self, maxsize: int = 32):
        if maxsize < 1:
            raise ValueError(f"maxsize must be >= 1, got {maxsize}")
        self.maxsize = maxsize
        self._plans: OrderedDict[tuple[int, int, str], KernelPlan] = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, m: int, n: int, variant: str = "vectorized") -> KernelPlan:
        """The cached plan for ``(m, n, variant)``, building it on a miss."""
        from repro.instrument.metrics import observe_plan_cache

        m, n = int(m), int(n)
        canonical = _canonical_variant(variant, m, n)
        key = (m, n, canonical)
        with self._lock:
            plan = self._plans.get(key)
            if plan is not None:
                self._plans.move_to_end(key)
                self.hits += 1
                observe_plan_cache("hit")
                return plan
        # build outside the lock: plans are immutable, so a racing double
        # build wastes a little work but is correct
        plan = _build_plan(m, n, canonical)
        with self._lock:
            self.misses += 1
            observe_plan_cache("miss")
            self._plans[key] = plan
            self._plans.move_to_end(key)
            while len(self._plans) > self.maxsize:
                self._plans.popitem(last=False)
                self.evictions += 1
                observe_plan_cache("evict")
        return plan

    def clear(self) -> None:
        with self._lock:
            self._plans.clear()
            self.hits = self.misses = self.evictions = 0

    def __len__(self) -> int:
        return len(self._plans)

    def __contains__(self, key: tuple[int, int, str]) -> bool:
        return key in self._plans

    def stats(self) -> dict:
        """JSON-able counters plus the resident key list (LRU order)."""
        with self._lock:
            return {
                "maxsize": self.maxsize,
                "size": len(self._plans),
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "keys": [list(k) for k in self._plans],
            }


_DEFAULT_CACHE = PlanCache()


def default_plan_cache() -> PlanCache:
    """The process-wide plan cache shared by every solver."""
    return _DEFAULT_CACHE


def get_plan(m: int, n: int, variant: str = "vectorized") -> KernelPlan:
    """Shorthand for ``default_plan_cache().get(m, n, variant)``."""
    return _DEFAULT_CACHE.get(m, n, variant)


def clear_plan_cache() -> None:
    """Drop every cached plan and reset the counters (mainly for tests)."""
    _DEFAULT_CACHE.clear()


def contract_many(
    values: np.ndarray,
    x: np.ndarray,
    kind: str = "ax_m1",
    *,
    variant: str = "vectorized",
    plan: KernelPlan | None = None,
    m: int | None = None,
    n: int | None = None,
    counter=None,
) -> np.ndarray:
    """One entry point for every batched symmetric contraction.

    Evaluates ``A x^m`` (``kind="ax_m"``) or ``A x^{m-1}``
    (``kind="ax_m1"``) for all broadcast leading-dimension combinations of
    ``values (..., U)`` against ``x (..., n)``, routing through the plan
    cache — this unifies the historical split between
    :mod:`repro.kernels.batched` and :mod:`repro.kernels.blocked_batched`
    behind one signature (pick ``variant="blocked"`` for the blocked path).

    ``(m, n)`` are inferred from the trailing axes when not given
    (raising :class:`~repro.kernels.errors.TableInferenceError` on
    ambiguity); pass them explicitly on hot paths to skip the search, or
    pass a prebuilt ``plan`` to skip the cache lookup entirely.
    """
    if kind not in ("ax_m", "ax_m1"):
        raise ValueError(f"kind must be 'ax_m' or 'ax_m1', got {kind!r}")
    if plan is None:
        if m is None or n is None:
            m, n = infer_shape(values, x)
        plan = get_plan(m, n, variant)
    else:
        lead_n = int(np.shape(x)[-1])
        if plan.n != lead_n:
            raise KernelLookupError(
                f"plan is for n={plan.n} but x has trailing dim {lead_n}"
            )
    fn = plan.ax_m if kind == "ax_m" else plan.ax_m1
    return fn(values, x, counter=counter)
