"""Kernel plans: shape-specialized batched suites, built once and cached.

Constructing a batched kernel suite for a shape ``(m, n)`` is not free:
the precomputed index/multinomial tables (:mod:`repro.kernels.tables`),
the blocking decomposition, and — for the code-generated variants —
generated and compiled straight-line code all have to be materialized.
The paper pays that cost once per shape and shares the result across
every thread block; :class:`KernelPlan` is the host-side analog: one
immutable bundle of (tables, compiled suite) per
``(m, n, variant, backend)``, held in a process-wide LRU
:class:`PlanCache` so plan construction is paid once per shape, not once
per solve.

Two orthogonal axes select the compiled suite:

* ``variant`` — *what* code runs (``"vectorized"``, ``"unrolled"``,
  ``"unrolled_cse"``, ``"blocked"``, or ``"auto"`` to autotune);
* ``backend`` — *how* it is compiled, resolved through the
  :mod:`repro.kernels.codegen` emitter registry: ``"numpy"`` (the
  historical ``exec`` path), ``"numba"`` (native JIT of the straight-line
  kernels, degrading gracefully to numpy when the dependency is absent),
  or ``"auto"`` (race the executable backends per shape and persist the
  winner — see :func:`repro.kernels.autotune.autotune_backend`).

Plan construction also reads/writes the persistent on-disk cache
(:mod:`repro.kernels.diskcache`), so tables and compiled code survive the
process: a warm second process skips the combinatorial table build *and*
the source generation/compilation.

The fleet engine (:mod:`repro.engine`) resolves every kernel call
through :func:`get_plan`; ad-hoc callers can use :func:`contract_many`,
the single entry point that unifies the flat-batched and
blocked-batched dispatch behind one signature.

Cache hits/misses/evictions land on the
``repro_plan_cache_events_total`` metric, disk traffic on
``repro_plan_disk_cache_events_total``.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field

import numpy as np

from repro.kernels.batched import infer_shape
from repro.kernels.dispatch import (
    _BATCHED_ALIASES,
    BatchedKernelPair,
    UnknownVariantError,
    _batched_suite,
    _num_threads,
)
from repro.kernels.errors import KernelLookupError, UnknownBackendError
from repro.kernels.tables import KernelTables, kernel_tables, prime_tables

__all__ = [
    "KernelPlan",
    "PlanCache",
    "available_plan_backends",
    "clear_plan_cache",
    "contract_many",
    "default_plan_cache",
    "get_plan",
]

#: variants whose suites are produced by code generation
_CODEGEN_VARIANTS = ("unrolled", "unrolled_cse")

#: backends a host-executable plan can be built on ("auto" races these)
_PLAN_BACKENDS = ("numpy", "numba")

_BACKEND_ALIASES = {"cuda": "cuda-src"}


@dataclass(frozen=True)
class KernelPlan:
    """An immutable, reusable evaluation plan for one
    ``(m, n, variant, backend)``.

    Attributes
    ----------
    m, n : tensor order and mode dimension.
    variant : canonical batched variant name (``"vectorized"``,
        ``"unrolled"``, ``"unrolled_cse"``, or ``"blocked"``).
    tables : the shared precomputed index/multinomial tables.
    suite : the compiled :class:`~repro.kernels.dispatch.BatchedKernelPair`.
    build_seconds : wall time spent constructing the plan (the cost the
        cache amortizes away).
    backend : the codegen backend the plan was requested on.
    effective_backend : the backend that actually compiled the kernels —
        differs from ``backend`` only on graceful degradation (numba not
        installed, or a shape the straight-line generator refuses).
    meta : provenance extras (``from_disk``, fallback reasons, ...).
    """

    m: int
    n: int
    variant: str
    tables: KernelTables
    suite: BatchedKernelPair
    build_seconds: float
    backend: str = "numpy"
    effective_backend: str = "numpy"
    meta: dict = field(default_factory=dict)

    def ax_m(self, values: np.ndarray, x: np.ndarray, counter=None) -> np.ndarray:
        """Batched ``A x^m`` over broadcasting leading dimensions."""
        return self.suite.ax_m(values, x, counter=counter)

    def ax_m1(self, values: np.ndarray, x: np.ndarray, counter=None) -> np.ndarray:
        """Batched ``A x^{m-1}`` over broadcasting leading dimensions."""
        return self.suite.ax_m1(values, x, counter=counter)

    @property
    def key(self) -> tuple[int, int, str, str]:
        return (self.m, self.n, self.variant, self.backend)


def _canonical_variant(variant: str, m: int, n: int) -> str:
    """Resolve aliases (``"batched"``, ``"batched_unrolled"``) and
    ``"auto"`` (autotuned) to a canonical batched variant name."""
    if variant == "auto":
        from repro.kernels.autotune import autotune

        best = autotune(m, n).best
        variant = best if best in _BATCHED_ALIASES else "vectorized"
    if variant not in _BATCHED_ALIASES:
        raise UnknownVariantError(
            variant, sorted({*_BATCHED_ALIASES.values()}) + ["auto"]
        )
    return _BATCHED_ALIASES[variant]


def available_plan_backends() -> list[str]:
    """Backend names :func:`get_plan` accepts (``"auto"`` races the rest)."""
    return [*_PLAN_BACKENDS, "auto"]


def _canonical_backend(backend: str, m: int, n: int, variant: str) -> str:
    """Resolve ``backend`` to a concrete host-executable backend name."""
    backend = _BACKEND_ALIASES.get(backend, backend)
    if backend == "auto":
        from repro.kernels.autotune import autotune_backend

        return autotune_backend(m, n, variant).best
    if backend == "cuda-src":
        raise KernelLookupError(
            "backend 'cuda-src' emits source only and cannot execute on the "
            "host; use repro.kernels.codegen.emit(..., target='cuda-src') "
            "for the source, or a host backend "
            f"({available_plan_backends()}) for plans"
        )
    if backend not in _PLAN_BACKENDS:
        raise UnknownBackendError(backend, available_plan_backends())
    return backend


def _suite_with_flops(name: str, ax_m_fn, ax_m1_fn, flops_scalar: int,
                      flops_vector: int) -> BatchedKernelPair:
    """Wrap plain ``(values, x)`` callables with the per-thread flop
    accounting every batched suite carries."""

    def ax_m(values, x, counter=None):
        if counter is not None:
            counter.add_flops(_num_threads(values, x) * flops_scalar)
        return ax_m_fn(values, x)

    def ax_m1(values, x, counter=None):
        if counter is not None:
            counter.add_flops(_num_threads(values, x) * flops_vector)
        return ax_m1_fn(values, x)

    return BatchedKernelPair(name, ax_m, ax_m1)


def _unrollable(m: int, n: int) -> bool:
    from repro.util.combinatorics import num_unique_entries

    return num_unique_entries(m, n) <= 4000


def _numpy_suite_from_entry(m: int, n: int, canonical: str,
                            entry: dict) -> BatchedKernelPair | None:
    """Rebuild a numpy codegen suite from a disk entry, skipping source
    generation (and, when the marshalled code survived, compilation)."""
    meta = entry["meta"]
    source = meta.get("source") or ""
    code = entry["code"]
    if code is None and not source:
        return None
    try:
        if code is None:
            code = compile(source, f"<plan-cache m={m} n={n} {canonical}>",
                           "exec")
        namespace: dict = {}
        exec(code, namespace)  # noqa: S102 - cache of our own generated code
        return _suite_with_flops(
            canonical,
            namespace["ax_m"],
            namespace["ax_m1"],
            int(meta.get("flops_scalar", 0)),
            int(meta.get("flops_vector", 0)),
        )
    except Exception:
        return None  # damaged entry: fall through to a cold build


def _store_numpy_codegen_entry(m: int, n: int, canonical: str,
                               tables: KernelTables) -> None:
    from repro.kernels import diskcache
    from repro.kernels.unrolled import _make_unrolled

    gen = _make_unrolled(m, n, cse=canonical == "unrolled_cse", batched=True)
    code = compile(gen.source, f"<plan-cache m={m} n={n} {canonical}>", "exec")
    diskcache.store_entry(
        m, n, canonical, "numpy",
        tables=tables,
        code=code,
        meta={
            "effective_backend": "numpy",
            "batched": True,
            "source": gen.source,
            "flops_scalar": gen.flops_scalar,
            "flops_vector": gen.flops_vector,
        },
    )


def _build_plan(m: int, n: int, canonical: str, backend: str) -> KernelPlan:
    from repro.kernels import diskcache

    t0 = time.perf_counter()
    entry = diskcache.load_entry(m, n, canonical, backend)
    if entry is not None:
        # skip the combinatorial table build in this process
        prime_tables(entry["tables"])
    tables = kernel_tables(m, n)

    effective = backend
    meta: dict = {"from_disk": entry is not None}
    suite: BatchedKernelPair | None = None

    if backend == "numba":
        emit_variant = canonical if canonical in _CODEGEN_VARIANTS else (
            "unrolled_cse" if _unrollable(m, n) else None
        )
        if emit_variant is None:
            # no straight-line form at this shape: numpy suite, honestly
            suite = _batched_suite(canonical, m, n)
            effective = "numpy"
            meta["fallback"] = (
                f"shape (m={m}, n={n}) exceeds the unroll guard; "
                f"no generated kernel to JIT"
            )
        else:
            from repro.kernels.codegen import emit as codegen_emit

            emitted = codegen_emit(m, n, emit_variant, target="numba")
            effective = emitted.effective_backend
            if effective != "numba":
                meta["fallback"] = emitted.meta.get("fallback", "")
            if emit_variant != canonical:
                meta["substituted_variant"] = emit_variant
            suite = _suite_with_flops(
                canonical, emitted.ax_m, emitted.ax_m1,
                emitted.flops_scalar, emitted.flops_vector,
            )
            if entry is None and effective == "numba":
                diskcache.store_entry(
                    m, n, canonical, "numba",
                    tables=tables,
                    meta={
                        "effective_backend": effective,
                        "batched": True,
                        "source": emitted.source,
                        "flops_scalar": emitted.flops_scalar,
                        "flops_vector": emitted.flops_vector,
                    },
                )
    else:  # numpy
        if entry is not None and canonical in _CODEGEN_VARIANTS:
            suite = _numpy_suite_from_entry(m, n, canonical, entry)
        if suite is None:
            suite = _batched_suite(canonical, m, n)
            if entry is None:
                if canonical in _CODEGEN_VARIANTS:
                    _store_numpy_codegen_entry(m, n, canonical, tables)
                else:
                    diskcache.store_entry(
                        m, n, canonical, "numpy",
                        tables=tables,
                        meta={"effective_backend": "numpy", "batched": True,
                              "source": ""},
                    )

    return KernelPlan(
        m=m,
        n=n,
        variant=canonical,
        tables=tables,
        suite=suite,
        build_seconds=time.perf_counter() - t0,
        backend=backend,
        effective_backend=effective,
        meta=meta,
    )


class PlanCache:
    """Thread-safe LRU cache of :class:`KernelPlan` keyed
    ``(m, n, variant, backend)``.

    ``maxsize`` bounds resident plans (an unrolled plan for a large shape
    holds compiled code and tables); the least recently *used* plan is
    evicted.  Hit/miss/eviction counts are kept both locally (``stats()``)
    and on the active metrics registry.
    """

    def __init__(self, maxsize: int = 32):
        if maxsize < 1:
            raise ValueError(f"maxsize must be >= 1, got {maxsize}")
        self.maxsize = maxsize
        self._plans: OrderedDict[tuple[int, int, str, str], KernelPlan] = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, m: int, n: int, variant: str = "vectorized",
            backend: str = "numpy") -> KernelPlan:
        """The cached plan for ``(m, n, variant, backend)``, building it
        (and consulting the persistent disk cache) on a miss."""
        from repro.instrument.events import emit as _emit
        from repro.instrument.metrics import observe_plan_cache

        m, n = int(m), int(n)
        canonical = _canonical_variant(variant, m, n)
        canonical_backend = _canonical_backend(backend, m, n, canonical)
        key = (m, n, canonical, canonical_backend)
        with self._lock:
            plan = self._plans.get(key)
            if plan is not None:
                self._plans.move_to_end(key)
                self.hits += 1
                observe_plan_cache("hit")
                _emit("plan_cache", outcome="hit", m=m, n=n,
                      variant=canonical, backend=canonical_backend)
                return plan
        # build outside the lock: plans are immutable, so a racing double
        # build wastes a little work but is correct
        plan = _build_plan(m, n, canonical, canonical_backend)
        with self._lock:
            self.misses += 1
            observe_plan_cache("miss")
            _emit("plan_cache", outcome="miss", m=m, n=n,
                  variant=canonical, backend=canonical_backend)
            self._plans[key] = plan
            self._plans.move_to_end(key)
            while len(self._plans) > self.maxsize:
                self._plans.popitem(last=False)
                self.evictions += 1
                observe_plan_cache("evict")
        return plan

    def clear(self) -> None:
        with self._lock:
            self._plans.clear()
            self.hits = self.misses = self.evictions = 0

    def __len__(self) -> int:
        return len(self._plans)

    def __contains__(self, key: tuple) -> bool:
        if len(key) == 3:  # historical (m, n, variant) keys mean numpy
            key = (*key, "numpy")
        return tuple(key) in self._plans

    def stats(self) -> dict:
        """JSON-able counters plus the resident key list (LRU order)."""
        with self._lock:
            return {
                "maxsize": self.maxsize,
                "size": len(self._plans),
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "keys": [list(k) for k in self._plans],
            }


_DEFAULT_CACHE = PlanCache()


def default_plan_cache() -> PlanCache:
    """The process-wide plan cache shared by every solver."""
    return _DEFAULT_CACHE


def get_plan(m: int, n: int, variant: str = "vectorized",
             backend: str = "numpy") -> KernelPlan:
    """Shorthand for ``default_plan_cache().get(m, n, variant, backend)``."""
    return _DEFAULT_CACHE.get(m, n, variant, backend)


def clear_plan_cache() -> None:
    """Drop every cached plan and reset the counters (mainly for tests)."""
    _DEFAULT_CACHE.clear()


def contract_many(
    values: np.ndarray,
    x: np.ndarray,
    kind: str = "ax_m1",
    *,
    variant: str = "vectorized",
    backend: str = "numpy",
    plan: KernelPlan | None = None,
    m: int | None = None,
    n: int | None = None,
    counter=None,
) -> np.ndarray:
    """One entry point for every batched symmetric contraction.

    Evaluates ``A x^m`` (``kind="ax_m"``) or ``A x^{m-1}``
    (``kind="ax_m1"``) for all broadcast leading-dimension combinations of
    ``values (..., U)`` against ``x (..., n)``, routing through the plan
    cache — this unifies the historical split between
    :mod:`repro.kernels.batched` and :mod:`repro.kernels.blocked_batched`
    behind one signature (pick ``variant="blocked"`` for the blocked path,
    ``backend="numba"`` for the native-JIT compilation of the generated
    kernels).

    ``(m, n)`` are inferred from the trailing axes when not given
    (raising :class:`~repro.kernels.errors.TableInferenceError` on
    ambiguity); pass them explicitly on hot paths to skip the search, or
    pass a prebuilt ``plan`` to skip the cache lookup entirely.
    """
    if kind not in ("ax_m", "ax_m1"):
        raise ValueError(f"kind must be 'ax_m' or 'ax_m1', got {kind!r}")
    if plan is None:
        if m is None or n is None:
            m, n = infer_shape(values, x)
        plan = get_plan(m, n, variant, backend)
    else:
        lead_n = int(np.shape(x)[-1])
        if plan.n != lead_n:
            raise KernelLookupError(
                f"plan is for n={plan.n} but x has trailing dim {lead_n}"
            )
    fn = plan.ax_m if kind == "ax_m" else plan.ax_m1
    return fn(values, x, counter=counter)
