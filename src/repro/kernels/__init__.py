"""Symmetric tensor-vector kernels (Section III-B): ``A x^m`` and
``A x^{m-1}`` in every implementation variant the paper benchmarks, plus the
general ``A x^{m-p}`` extension."""

from repro.kernels.batched import ax_m1_batched, ax_m_batched, monomials_batched
from repro.kernels.blocked import (
    BlockingPlan,
    ax_m1_blocked,
    ax_m_blocked,
    block_shapes,
    blocking_plan,
)
from repro.kernels.blocked_batched import (
    ax_m1_blocked_batched,
    ax_m_blocked_batched,
)
from repro.kernels.compressed import (
    ax_m1_compressed,
    ax_m_compressed,
    symmetric_flops_scalar,
    symmetric_flops_vector,
    ttsv_compressed,
)
from repro.kernels.autotune import TuneReport, auto_kernels, autotune
from repro.kernels.cuda_emulator import compiler_available, emulate_cuda_sshopm
from repro.kernels.cudagen import (
    generate_cuda_kernel,
    generate_cuda_module,
    generate_host_launcher,
)
from repro.kernels.dispatch import KernelPair, available_variants, get_kernels
from repro.kernels.matricized import ax_m1_matricized, ax_m_matricized, fold, unfold
from repro.kernels.precomputed import ax_m1_precomputed, ax_m_precomputed
from repro.kernels.reference import (
    ax_m1_dense,
    ax_m1_reference,
    ax_m_dense,
    ax_m_reference,
    general_flops,
    ttsv_dense,
)
from repro.kernels.tables import KernelTables, kernel_tables
from repro.kernels.unrolled import UnrolledKernels, generate_source, make_unrolled

__all__ = [
    "ax_m1_batched",
    "ax_m_batched",
    "monomials_batched",
    "BlockingPlan",
    "ax_m1_blocked",
    "ax_m_blocked",
    "block_shapes",
    "blocking_plan",
    "ax_m1_blocked_batched",
    "ax_m_blocked_batched",
    "ax_m1_compressed",
    "ax_m_compressed",
    "symmetric_flops_scalar",
    "symmetric_flops_vector",
    "ttsv_compressed",
    "TuneReport",
    "auto_kernels",
    "autotune",
    "compiler_available",
    "emulate_cuda_sshopm",
    "generate_cuda_kernel",
    "generate_cuda_module",
    "generate_host_launcher",
    "KernelPair",
    "available_variants",
    "get_kernels",
    "ax_m1_matricized",
    "ax_m_matricized",
    "fold",
    "unfold",
    "ax_m1_precomputed",
    "ax_m_precomputed",
    "ax_m1_dense",
    "ax_m1_reference",
    "ax_m_dense",
    "ax_m_reference",
    "general_flops",
    "ttsv_dense",
    "KernelTables",
    "kernel_tables",
    "UnrolledKernels",
    "generate_source",
    "make_unrolled",
]
