"""Symmetric tensor-vector kernels (Section III-B): ``A x^m`` and
``A x^{m-1}`` in every implementation variant the paper benchmarks, plus the
general ``A x^{m-p}`` extension.

All per-tensor *and* batched access goes through
:func:`~repro.kernels.dispatch.get_kernels` (``batched=True`` returns the
broadcasting array suite); all *code generation* goes through the
emitter registry of :mod:`repro.kernels.codegen`
(``emit(m, n, variant, target=...)``).  Two generations of historical
flat imports remain importable from this package as *deprecated aliases*
that emit :class:`DeprecationWarning`:

* the batched entry points (``ax_m_batched``, ``ax_m1_batched``,
  ``ax_m_blocked_batched``, ``ax_m1_blocked_batched``) — use
  ``get_kernels(..., batched=True)``;
* the direct generators (``make_unrolled``, ``generate_source``,
  ``generate_cuda_kernel``) — use the codegen emitter registry.
"""

import warnings as _warnings

from repro.kernels.batched import monomials_batched
from repro.kernels.blocked import (
    BlockingPlan,
    ax_m1_blocked,
    ax_m_blocked,
    block_shapes,
    blocking_plan,
)
from repro.kernels.compressed import (
    ax_m1_compressed,
    ax_m_compressed,
    symmetric_flops_scalar,
    symmetric_flops_vector,
    ttsv_compressed,
)
from repro.kernels.autotune import (
    BackendTuneReport,
    TuneReport,
    auto_kernels,
    autotune,
    autotune_backend,
)
from repro.kernels.codegen import (
    CODEGEN_VERSION,
    EmittedKernel,
    Emitter,
    available_backends,
    emit,
    get_emitter,
    numba_available,
    register_emitter,
)
from repro.kernels.cuda_emulator import compiler_available, emulate_cuda_sshopm
from repro.kernels.cudagen import generate_cuda_module, generate_host_launcher
from repro.kernels.dispatch import (
    BatchedKernelPair,
    KernelPair,
    UnknownVariantError,
    available_variants,
    get_kernels,
)
from repro.kernels.errors import KernelLookupError, UnknownBackendError
from repro.kernels.matricized import ax_m1_matricized, ax_m_matricized, fold, unfold
from repro.kernels.precomputed import ax_m1_precomputed, ax_m_precomputed
from repro.kernels.reference import (
    ax_m1_dense,
    ax_m1_reference,
    ax_m_dense,
    ax_m_reference,
    general_flops,
    ttsv_dense,
)
from repro.kernels.tables import KernelTables, kernel_tables
from repro.kernels.unrolled import UnrolledKernels


def _batched_instead(module_name: str) -> str:
    return (
        "use get_kernels(variant, m, n, batched=True) or import it from "
        f"{module_name}"
    )


# deprecated flat entry points -> (module, attribute, what to use instead)
_DEPRECATED_ALIASES = {
    "ax_m_batched": (
        "repro.kernels.batched", "ax_m_batched",
        _batched_instead("repro.kernels.batched"),
    ),
    "ax_m1_batched": (
        "repro.kernels.batched", "ax_m1_batched",
        _batched_instead("repro.kernels.batched"),
    ),
    "ax_m_blocked_batched": (
        "repro.kernels.blocked_batched", "ax_m_blocked_batched",
        _batched_instead("repro.kernels.blocked_batched"),
    ),
    "ax_m1_blocked_batched": (
        "repro.kernels.blocked_batched", "ax_m1_blocked_batched",
        _batched_instead("repro.kernels.blocked_batched"),
    ),
    "make_unrolled": (
        "repro.kernels.unrolled", "_make_unrolled",
        "use repro.kernels.codegen.emit(m, n, variant, target='numpy') "
        "(the emitter registry)",
    ),
    "generate_source": (
        "repro.kernels.unrolled", "_generate_source",
        "use repro.kernels.codegen.emit(...).source via the emitter registry",
    ),
    "generate_cuda_kernel": (
        "repro.kernels.cudagen", "_generate_cuda_kernel",
        "use repro.kernels.codegen.emit(m, n, variant, target='cuda-src', "
        "num_starts=V).source (the emitter registry)",
    ),
}


def _alias_stacklevel() -> int:
    """Stacklevel pointing at the user's code, not import machinery.

    For ``from repro.kernels import ax_m_batched`` the caller of
    ``__getattr__`` is ``importlib._bootstrap._handle_fromlist``, so a
    fixed ``stacklevel=2`` attributes the warning to frozen importlib.
    Walk outward past any importlib frames to find the real import site.
    """
    import sys

    level = 2  # frame 1 is __getattr__ itself
    while True:
        try:
            frame = sys._getframe(level - 1)
        except ValueError:
            return 2  # stack exhausted; fall back to the direct caller
        modname = frame.f_globals.get("__name__", "")
        filename = frame.f_code.co_filename
        if not (modname.startswith("importlib")
                or filename.startswith("<frozen importlib")):
            return level
        level += 1


def __getattr__(name):
    alias = _DEPRECATED_ALIASES.get(name)
    if alias is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    module_name, attr, instead = alias
    _warnings.warn(
        f"importing {name!r} from repro.kernels is deprecated; {instead}",
        DeprecationWarning,
        stacklevel=_alias_stacklevel(),
    )
    import importlib

    return getattr(importlib.import_module(module_name), attr)


__all__ = [
    "ax_m1_batched",
    "ax_m_batched",
    "monomials_batched",
    "BlockingPlan",
    "ax_m1_blocked",
    "ax_m_blocked",
    "block_shapes",
    "blocking_plan",
    "ax_m1_blocked_batched",
    "ax_m_blocked_batched",
    "ax_m1_compressed",
    "ax_m_compressed",
    "symmetric_flops_scalar",
    "symmetric_flops_vector",
    "ttsv_compressed",
    "BackendTuneReport",
    "TuneReport",
    "auto_kernels",
    "autotune",
    "autotune_backend",
    "CODEGEN_VERSION",
    "EmittedKernel",
    "Emitter",
    "available_backends",
    "emit",
    "get_emitter",
    "numba_available",
    "register_emitter",
    "compiler_available",
    "emulate_cuda_sshopm",
    "generate_cuda_kernel",
    "generate_cuda_module",
    "generate_host_launcher",
    "BatchedKernelPair",
    "KernelPair",
    "KernelLookupError",
    "UnknownBackendError",
    "UnknownVariantError",
    "available_variants",
    "get_kernels",
    "ax_m1_matricized",
    "ax_m_matricized",
    "fold",
    "unfold",
    "ax_m1_precomputed",
    "ax_m_precomputed",
    "ax_m1_dense",
    "ax_m1_reference",
    "ax_m_dense",
    "ax_m_reference",
    "general_flops",
    "ttsv_dense",
    "KernelTables",
    "kernel_tables",
    "UnrolledKernels",
    "generate_source",
    "make_unrolled",
]
