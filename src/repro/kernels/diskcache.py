"""Persistent on-disk kernel-plan cache.

The in-memory :class:`~repro.kernels.plan.PlanCache` amortizes plan
construction within one process; this module amortizes it *across*
processes — the host-side analog of shipping precompiled cubins instead
of invoking ``nvcc`` per run.  Each entry stores everything a plan build
would otherwise recompute for one ``(m, n, variant, backend)``:

* the precomputed :class:`~repro.kernels.tables.KernelTables` arrays, as
  an ``.npz`` sidecar (loaded tables are *primed* into
  :func:`repro.kernels.tables.kernel_tables`, skipping the combinatorial
  build);
* the generated kernel source, in the ``.json`` metadata document
  (schema :data:`PLAN_CACHE_SCHEMA`);
* the ``marshal``-serialized CPython code object of that source, as a
  ``.code`` sidecar tagged with the interpreter bytecode magic — a warm
  load skips ``compile()`` entirely (the numba backend instead leans on
  ``numba``'s own on-disk JIT cache, keyed off the real module file this
  cache dir hosts under ``numba/``).

Layout and invalidation
-----------------------
Entries live under ``$REPRO_PLAN_CACHE_DIR``, else
``$XDG_CACHE_HOME/repro/plans``, else ``~/.cache/repro/plans``; set
``REPRO_PLAN_CACHE=0`` to disable persistence entirely.  The filename key
is ``m{m}-n{n}-{variant}-{backend}-v{codegen_version}`` — bumping
:data:`~repro.kernels.codegen.CODEGEN_VERSION` strands old entries, and a
schema or version mismatch *inside* a document (e.g. a cache dir shared
with a newer checkout) invalidates it on read.  Corrupted or truncated
files are deleted and rebuilt, never trusted and never fatal.

Writes are atomic (temp file + ``os.replace``) so concurrent warming
processes race benignly: last writer wins, readers see only whole files.
Every event lands on the ``repro_plan_disk_cache_events_total`` metric.
"""

from __future__ import annotations

import importlib.util
import json
import marshal
import os
import tempfile
from pathlib import Path

import numpy as np

from repro.kernels.codegen import CODEGEN_VERSION
from repro.kernels.tables import KernelTables, tables_from_arrays, tables_to_arrays

__all__ = [
    "PLAN_CACHE_SCHEMA",
    "atomic_write_bytes",
    "atomic_write_text",
    "cache_dir",
    "cache_info",
    "clear_cache",
    "entry_key",
    "load_entry",
    "numba_module_path",
    "store_entry",
]

PLAN_CACHE_SCHEMA = "repro-plan-cache/1"

#: Interpreter bytecode tag guarding the marshalled-code sidecars.
_MAGIC = importlib.util.MAGIC_NUMBER.hex()


def _observe(event: str) -> None:
    from repro.instrument.metrics import observe_plan_disk_cache

    observe_plan_disk_cache(event)


def cache_dir() -> Path | None:
    """The active cache directory (created on demand), or ``None`` when
    persistence is disabled or the directory cannot be created."""
    if os.environ.get("REPRO_PLAN_CACHE", "1") in ("0", "false", "no", "off"):
        return None
    override = os.environ.get("REPRO_PLAN_CACHE_DIR")
    if override:
        root = Path(override)
    else:
        xdg = os.environ.get("XDG_CACHE_HOME")
        base = Path(xdg) if xdg else Path.home() / ".cache"
        root = base / "repro" / "plans"
    try:
        root.mkdir(parents=True, exist_ok=True)
    except OSError:
        return None
    return root


def numba_module_path(m: int, n: int, variant: str) -> Path | None:
    """Where the numba emitter materializes its generated module for one
    shape (a real file, so ``@njit(cache=True)`` can persist machine
    code next to it), or ``None`` when persistence is disabled."""
    root = cache_dir()
    if root is None:
        return None
    sub = root / "numba"
    try:
        sub.mkdir(parents=True, exist_ok=True)
    except OSError:
        return None
    return sub / f"flat_m{m}_n{n}_{variant}_v{CODEGEN_VERSION}.py"


def entry_key(m: int, n: int, variant: str, backend: str) -> str:
    """Filename stem of one cache entry."""
    return f"m{m}-n{n}-{variant}-{backend}-v{CODEGEN_VERSION}"


def _entry_paths(root: Path, key: str) -> tuple[Path, Path, Path]:
    return root / f"{key}.json", root / f"{key}.npz", root / f"{key}.code"


def atomic_write_bytes(path: Path, data: bytes) -> None:
    """Write ``data`` to ``path`` atomically (temp file + ``os.replace``),
    so concurrent writers race benignly and readers never see a torn
    file."""
    fd, tmp = tempfile.mkstemp(dir=str(path.parent),
                               prefix=f".{path.name}.", suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as fh:
            fh.write(data)
        os.replace(tmp, str(path))
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def atomic_write_text(path: Path, text: str) -> None:
    atomic_write_bytes(path, text.encode("utf-8"))


def _delete_entry(root: Path, key: str) -> None:
    for path in _entry_paths(root, key):
        try:
            path.unlink()
        except OSError:
            pass


def load_entry(m: int, n: int, variant: str, backend: str) -> dict | None:
    """Load one cache entry, or ``None`` on miss.

    Returns ``{"meta": dict, "tables": KernelTables, "code": code | None}``
    — ``code`` is the compiled module code object when the sidecar exists
    and was produced by this interpreter.  Unreadable, truncated, or
    internally inconsistent entries are deleted (event ``corrupt``);
    schema or codegen-version mismatches likewise invalidate the entry
    (event ``schema_mismatch``).  Never raises for cache damage.
    """
    root = cache_dir()
    if root is None:
        return None
    key = entry_key(m, n, variant, backend)
    json_path, npz_path, code_path = _entry_paths(root, key)
    if not json_path.exists():
        _observe("miss")
        return None
    try:
        meta = json.loads(json_path.read_text())
    except (OSError, UnicodeDecodeError, json.JSONDecodeError):
        _observe("corrupt")
        _delete_entry(root, key)
        return None
    if not isinstance(meta, dict):
        _observe("corrupt")
        _delete_entry(root, key)
        return None
    if (meta.get("schema") != PLAN_CACHE_SCHEMA
            or meta.get("codegen_version") != CODEGEN_VERSION):
        _observe("schema_mismatch")
        _delete_entry(root, key)
        return None
    try:
        if (int(meta["m"]) != int(m) or int(meta["n"]) != int(n)
                or meta["variant"] != variant or meta["backend"] != backend):
            raise ValueError("entry key fields disagree with filename")
        with np.load(npz_path) as npz:
            tables = tables_from_arrays(m, n, npz)
    except Exception:
        _observe("corrupt")
        _delete_entry(root, key)
        return None
    code = None
    if meta.get("magic") == _MAGIC and code_path.exists():
        try:
            code = marshal.loads(code_path.read_bytes())
        except (OSError, ValueError, EOFError, TypeError):
            code = None  # stale or torn bytecode: recompile from source
    _observe("hit")
    return {"meta": meta, "tables": tables, "code": code}


def store_entry(m: int, n: int, variant: str, backend: str, *,
                tables: KernelTables, meta: dict,
                code=None) -> bool:
    """Persist one entry; returns whether it was written.

    ``meta`` is merged over the schema/key envelope (so callers record
    ``effective_backend``, ``source``, flop counts, build seconds, ...).
    Failures to write are swallowed — a read-only cache dir degrades to
    cold builds, never to errors.
    """
    root = cache_dir()
    if root is None:
        return False
    key = entry_key(m, n, variant, backend)
    json_path, npz_path, code_path = _entry_paths(root, key)
    doc = {
        "schema": PLAN_CACHE_SCHEMA,
        "codegen_version": CODEGEN_VERSION,
        "m": int(m),
        "n": int(n),
        "variant": variant,
        "backend": backend,
        "magic": _MAGIC if code is not None else None,
        **meta,
    }
    try:
        import io

        buf = io.BytesIO()
        np.savez(buf, **tables_to_arrays(tables))
        atomic_write_bytes(npz_path, buf.getvalue())
        if code is not None:
            atomic_write_bytes(code_path, marshal.dumps(code))
        # metadata last: readers treat its presence as "entry complete"
        atomic_write_text(json_path, json.dumps(doc, indent=1))
    except OSError:
        return False
    _observe("store")
    return True


def cache_info() -> dict:
    """A JSON-able summary of the on-disk cache for ``repro plan-cache
    info``: location, entry list, and total size."""
    root = cache_dir()
    if root is None:
        return {"enabled": False, "dir": None, "entries": [], "bytes": 0}
    entries = []
    total = 0
    for json_path in sorted(root.glob("*.json")):
        if json_path.stem.startswith("tune-"):  # backend-tune docs, not plans
            try:
                total += json_path.stat().st_size
            except OSError:
                pass
            continue
        size = 0
        for path in _entry_paths(root, json_path.stem):
            try:
                size += path.stat().st_size
            except OSError:
                pass
        try:
            meta = json.loads(json_path.read_text())
            ok = (meta.get("schema") == PLAN_CACHE_SCHEMA
                  and meta.get("codegen_version") == CODEGEN_VERSION)
        except Exception:
            meta, ok = {}, False
        entries.append({
            "key": json_path.stem,
            "valid": bool(ok),
            "backend": meta.get("backend"),
            "effective_backend": meta.get("effective_backend"),
            "variant": meta.get("variant"),
            "m": meta.get("m"),
            "n": meta.get("n"),
            "bytes": size,
        })
        total += size
    for extra in root.glob("numba/*"):
        try:
            total += extra.stat().st_size
        except OSError:
            pass
    return {
        "enabled": True,
        "dir": str(root),
        "schema": PLAN_CACHE_SCHEMA,
        "codegen_version": CODEGEN_VERSION,
        "entries": entries,
        "bytes": total,
    }


def clear_cache() -> int:
    """Delete every cache file (including the numba module/JIT cache);
    returns the number of files removed."""
    root = cache_dir()
    if root is None:
        return 0
    removed = 0
    stack = [root]
    files: list[Path] = []
    dirs: list[Path] = []
    while stack:
        d = stack.pop()
        for child in d.iterdir():
            if child.is_dir() and not child.is_symlink():
                dirs.append(child)
                stack.append(child)
            else:
                files.append(child)
    for path in files:
        try:
            path.unlink()
            removed += 1
        except OSError:
            pass
    for d in sorted(dirs, key=lambda p: len(p.parts), reverse=True):
        try:
            d.rmdir()
        except OSError:
            pass
    return removed
