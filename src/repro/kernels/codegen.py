"""One code-generation layer with pluggable emitters (ROADMAP item 2).

The paper's speed comes from *shape-specialized* kernels: generate the
fully-unrolled straight-line code for one ``(m, n)`` once, compile it
once, reuse it across every thread block.  This repo historically had two
disconnected generators — :mod:`repro.kernels.unrolled` (Python source,
``exec``-compiled) and :mod:`repro.kernels.cudagen` (CUDA C source) — and
no way to add a third.  This module folds them into a single registry of
*emitters*, following the code-generation playbook of Shi et al.
(arXiv:2110.00186): every backend turns ``(m, n, variant)`` into an
:class:`EmittedKernel`, and new backends plug in with
:func:`register_emitter`.

First-class backends
--------------------
``numpy``
    Today's ``exec`` path: the Section V-D unrolled (+CSE) kernels
    compiled to CPython bytecode.  Always available.
``numba``
    JIT of the same straight-line kernels to native code via Numba, in a
    flat-batch layout (one explicit loop over lanes, per-lane scalars in
    registers) that mirrors the paper's one-thread-per-start mapping.
    Degrades gracefully to the ``numpy`` emitter when numba is not
    installed (``EmittedKernel.effective_backend`` records the fallback).
``cuda-src``
    The existing CUDA C generator (alias ``cuda``), now an emitter like
    any other: not executable on the host, but its source feeds
    ``repro cudagen``, the CPU emulation harness, and the docs.

The kernel-plan cache (:mod:`repro.kernels.plan`) resolves every compiled
suite through this registry and persists build products on disk (see
:mod:`repro.kernels.diskcache`), so JIT compilation is paid once per
shape *across processes*.  Bump :data:`CODEGEN_VERSION` whenever emitted
source changes meaning — it keys the disk cache.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from functools import lru_cache
from typing import Callable

import numpy as np

from repro.kernels.errors import UnknownBackendError, UnknownVariantError
from repro.kernels.tables import kernel_tables
from repro.kernels.unrolled import UnrolledKernels, _generate_source, _make_unrolled, _monomial_expr

__all__ = [
    "CODEGEN_VERSION",
    "EmittedKernel",
    "Emitter",
    "available_backends",
    "emit",
    "get_emitter",
    "numba_available",
    "register_emitter",
]

#: Schema version of everything this module emits.  Keys the persistent
#: plan cache: bumping it invalidates every on-disk entry at once.
CODEGEN_VERSION = 1

# variants the executable emitters generate straight-line code for
_CODEGEN_VARIANTS = ("unrolled", "unrolled_cse")


@dataclass(frozen=True)
class EmittedKernel:
    """What an emitter produces for one ``(m, n, variant)`` specialization.

    Attributes
    ----------
    backend : the emitter asked for (``"numba"`` even when it fell back).
    effective_backend : the emitter that actually compiled the kernel —
        differs from ``backend`` only on graceful degradation.
    m, n, variant : the specialization.  ``batched`` tells whether the
        callables take broadcasting ``a[..., U]`` / ``x[..., n]`` arrays.
    source : the generated source text (Python or CUDA C), inspectable.
    ax_m, ax_m1 : compiled callables, or ``None`` for source-only
        backends (``cuda-src``).
    flops_scalar, flops_vector : exact per-evaluation flop counts from
        static analysis of the generated expressions (0 when unknown).
    compile_seconds : wall time spent generating + compiling (0.0 when
        every layer was already cached).
    meta : free-form extras (fallback reason, cache provenance, ...).
    """

    backend: str
    effective_backend: str
    m: int
    n: int
    variant: str
    batched: bool
    source: str
    ax_m: Callable | None
    ax_m1: Callable | None
    flops_scalar: int
    flops_vector: int
    compile_seconds: float
    meta: dict = field(default_factory=dict)

    @property
    def executable(self) -> bool:
        """Whether this kernel can be called on the host."""
        return self.ax_m is not None and self.ax_m1 is not None


class Emitter:
    """Base class for codegen backends.

    Subclasses set ``name`` (filled in by :func:`register_emitter`),
    ``variants`` (the variant names they accept), ``executable`` (whether
    emitted kernels run on the host), and implement :meth:`emit`.
    ``available`` gates optional dependencies — an unavailable emitter
    stays registered (it can still be listed and can degrade gracefully).
    """

    name: str = "?"
    variants: tuple[str, ...] = _CODEGEN_VARIANTS
    executable: bool = True

    def available(self) -> bool:
        return True

    def emit(self, m: int, n: int, variant: str, **opts) -> EmittedKernel:
        raise NotImplementedError

    def _check_variant(self, variant: str) -> None:
        if variant not in self.variants:
            raise UnknownVariantError(variant, list(self.variants))


_EMITTERS: dict[str, Emitter] = {}
_BACKEND_ALIASES = {"cuda": "cuda-src"}


def register_emitter(name: str):
    """Class decorator registering an :class:`Emitter` under ``name``.

    The registry instantiates the class once; re-registering a name
    replaces the previous emitter (tests use this to inject fakes).
    """

    def deco(cls):
        cls.name = name
        _EMITTERS[name] = cls()
        return cls

    return deco


def get_emitter(name: str) -> Emitter:
    """The registered emitter for ``name`` (``"cuda"`` aliases
    ``"cuda-src"``); raises :class:`UnknownBackendError` otherwise."""
    canonical = _BACKEND_ALIASES.get(name, name)
    emitter = _EMITTERS.get(canonical)
    if emitter is None:
        raise UnknownBackendError(name, available_backends())
    return emitter


def available_backends(*, executable: bool | None = None,
                       installed_only: bool = False) -> list[str]:
    """Registered backend names, sorted.

    ``executable=True`` restricts to emitters whose kernels run on the
    host; ``installed_only=True`` additionally drops emitters whose
    optional dependency is missing (note ``numba`` still *works* without
    numba — it degrades to ``numpy`` — so it only disappears from the
    ``installed_only`` view).
    """
    names = []
    for name, emitter in _EMITTERS.items():
        if executable is not None and emitter.executable != executable:
            continue
        if installed_only and not emitter.available():
            continue
        names.append(name)
    return sorted(names)


def emit(m: int, n: int, variant: str = "unrolled_cse", *,
         target: str = "numpy", **opts) -> EmittedKernel:
    """Generate (and compile, where applicable) one specialized kernel.

    The single front door of the codegen layer::

        emit(4, 6, "unrolled_cse")                      # numpy exec path
        emit(4, 6, "unrolled_cse", target="numba")      # native JIT
        emit(4, 3, "general", target="cuda-src", num_starts=128).source

    ``opts`` are forwarded to the emitter (``batched=`` for the
    executable backends, ``num_starts=`` for ``cuda-src``).
    """
    return get_emitter(target).emit(int(m), int(n), variant, **opts)


# -- numpy: the exec-compiled unrolled kernels -----------------------------


def _variant_cse(variant: str) -> bool:
    return variant == "unrolled_cse"


@lru_cache(maxsize=None)
def _numpy_emit(m: int, n: int, variant: str, batched: bool) -> EmittedKernel:
    from repro.instrument.metrics import observe_codegen_compile

    before = _make_unrolled.cache_info().misses
    t0 = time.perf_counter()
    gen: UnrolledKernels = _make_unrolled(m, n, cse=_variant_cse(variant),
                                          batched=batched)
    dt = time.perf_counter() - t0
    fresh = _make_unrolled.cache_info().misses > before
    if fresh:
        observe_codegen_compile("numpy", dt)
    return EmittedKernel(
        backend="numpy",
        effective_backend="numpy",
        m=m,
        n=n,
        variant=variant,
        batched=batched,
        source=gen.source,
        ax_m=gen.ax_m,
        ax_m1=gen.ax_m1,
        flops_scalar=gen.flops_scalar,
        flops_vector=gen.flops_vector,
        compile_seconds=dt if fresh else 0.0,
    )


@register_emitter("numpy")
class NumpyEmitter(Emitter):
    """The historical ``exec`` path: CPython-compiled unrolled kernels."""

    variants = _CODEGEN_VARIANTS
    executable = True

    def emit(self, m: int, n: int, variant: str = "unrolled_cse", *,
             batched: bool = False, source: str | None = None,
             **_opts) -> EmittedKernel:
        """Compile the unrolled (+CSE) kernels with ``exec``.

        ``source=`` short-circuits generation with pregenerated text (the
        disk cache's warm path); flop counts then come from a cheap
        regeneration-free static pass only if provided alongside, so the
        plan layer passes counts explicitly instead.
        """
        self._check_variant(variant)
        if source is not None:
            return _exec_pregenerated(m, n, variant, bool(batched), source)
        return _numpy_emit(m, n, variant, bool(batched))


@lru_cache(maxsize=None)
def _exec_pregenerated(m: int, n: int, variant: str, batched: bool,
                       source: str) -> EmittedKernel:
    """Compile pregenerated unrolled source (the disk-cache warm path)."""
    t0 = time.perf_counter()
    namespace: dict = {}
    code = compile(source, f"<codegen m={m} n={n} {variant}>", "exec")
    exec(code, namespace)  # noqa: S102 - controlled, generated source
    return EmittedKernel(
        backend="numpy",
        effective_backend="numpy",
        m=m,
        n=n,
        variant=variant,
        batched=batched,
        source=source,
        ax_m=namespace["ax_m"],
        ax_m1=namespace["ax_m1"],
        flops_scalar=0,
        flops_vector=0,
        compile_seconds=time.perf_counter() - t0,
        meta={"pregenerated": True},
    )


# -- numba: native JIT of the flat-batch straight-line kernels -------------


def numba_available() -> bool:
    """Whether the optional numba dependency can be imported."""
    return _load_numba() is not None


@lru_cache(maxsize=1)
def _load_numba():
    try:
        import numba
    except Exception:  # ImportError, or a broken install
        return None
    return numba


def generate_flat_source(m: int, n: int, cse: bool = False) -> tuple[str, int, int]:
    """Source for the flat-batch kernels: one explicit lane loop.

    Signatures are ``ax_m_flat(a, x, out)`` with ``a (L, U)``,
    ``x (L, n)``, ``out (L,)`` and ``ax_m1_flat(a, x, out)`` with
    ``out (L, n)``.  Per-lane inputs live in locals (registers, once
    JIT-compiled) exactly as the paper keeps per-thread vectors in
    registers; the loop is what Numba turns into native straight-line
    code.  Returns ``(source, flops_scalar, flops_vector)`` — per-lane
    counts, identical to the non-batched unrolled generator's.
    """
    tab = kernel_tables(m, n)
    U = tab.num_unique

    xvar = lambda i: f"x{i}"  # noqa: E731
    x_prelude = [f"        x{i} = x[l, {i}]" for i in range(n)]

    power_vars: dict[tuple[int, int], str] | None = None
    cse_lines: list[str] = []
    cse_flops = 0
    if cse:
        power_vars = {}
        max_exp = [0] * n
        for u in range(U):
            for i in range(n):
                max_exp[i] = max(max_exp[i], int(tab.monomial[u, i]))
        for i in range(n):
            prev = xvar(i)
            for e in range(2, max_exp[i] + 1):
                name = f"x{i}_{e}"
                cse_lines.append(f"        {name} = {prev}*{xvar(i)}")
                power_vars[(i, e)] = name
                prev = name
                cse_flops += 1

    avar = lambda u: f"a[l, {u}]"  # noqa: E731

    sflops: list[int] = []
    terms = []
    for u in range(U):
        factors = [int(v) for v in tab.index[u]]
        mono = _monomial_expr(factors, xvar, power_vars, sflops)
        c = int(tab.mult[u])
        if c == 1:
            terms.append(f"{avar(u)}*{mono}")
            sflops.append(1)
        else:
            terms.append(f"{float(c)}*{avar(u)}*{mono}")
            sflops.append(2)
    flops_scalar = sum(sflops) + (U - 1) + cse_flops

    vflops: list[int] = []
    out_terms: list[list[str]] = []
    for i in range(n):
        lo, hi = int(tab.out_starts[i]), int(tab.out_starts[i + 1])
        entry_terms = []
        for r in range(lo, hi):
            factors = [int(v) for v in tab.row_factors[r]]
            mono = _monomial_expr(factors, xvar, power_vars, vflops)
            c = int(tab.row_sigma[r])
            u = int(tab.row_class[r])
            if c == 1:
                entry_terms.append(f"{avar(u)}*{mono}")
                vflops.append(1)
            else:
                entry_terms.append(f"{float(c)}*{avar(u)}*{mono}")
                vflops.append(2)
        vflops.append(len(entry_terms) - 1)
        out_terms.append(entry_terms)
    flops_vector = sum(vflops) + cse_flops

    def accumulate(var: str, term_list: list[str]) -> list[str]:
        out = [f"        {var} = {term_list[0]}"]
        out.extend(f"        {var} += {t}" for t in term_list[1:])
        return out

    lines = [
        f'"""Auto-generated flat-batch unrolled kernels for m={m}, n={n} '
        f'(cse={cse}).  Layout: a (L, U), x (L, n); one lane per row."""',
        "",
        "def ax_m_flat(a, x, out):",
        "    for l in range(x.shape[0]):",
        *x_prelude,
        *cse_lines,
        *accumulate("acc", terms),
        "        out[l] = acc",
        "",
        "def ax_m1_flat(a, x, out):",
        "    for l in range(x.shape[0]):",
        *x_prelude,
        *cse_lines,
    ]
    for i, entry_terms in enumerate(out_terms):
        lines.extend(accumulate(f"y{i}", entry_terms))
    lines.extend(f"        out[l, {i}] = y{i}" for i in range(n))
    lines.append("")
    return "\n".join(lines), flops_scalar, flops_vector


def _flatten_broadcast(values: np.ndarray, x: np.ndarray):
    """Broadcast ``values (..., U)`` against ``x (..., n)`` and flatten the
    lead dims to one lane axis; returns ``(v2, x2, lead, dtype)``."""
    values = np.asarray(values)
    x = np.asarray(x)
    lead = np.broadcast_shapes(values.shape[:-1], x.shape[:-1])
    dtype = np.result_type(values.dtype, x.dtype)
    if dtype not in (np.dtype(np.float32), np.dtype(np.float64)):
        dtype = np.dtype(np.float64)
    U = values.shape[-1]
    n = x.shape[-1]
    L = int(np.prod(lead, dtype=np.int64)) if lead else 1
    v2 = np.ascontiguousarray(
        np.broadcast_to(values, lead + (U,)), dtype=dtype).reshape(L, U)
    x2 = np.ascontiguousarray(
        np.broadcast_to(x, lead + (n,)), dtype=dtype).reshape(L, n)
    return v2, x2, lead, dtype


def _wrap_flat(ax_m_flat: Callable, ax_m1_flat: Callable, n: int):
    """Broadcasting front for the flat-batch kernels, mirroring the
    numpy batched signature (``(values, x) -> lead-dim array``)."""

    def ax_m(values, x):
        v2, x2, lead, dtype = _flatten_broadcast(values, x)
        out = np.empty(v2.shape[0], dtype=dtype)
        ax_m_flat(v2, x2, out)
        return out.reshape(lead)

    def ax_m1(values, x):
        v2, x2, lead, dtype = _flatten_broadcast(values, x)
        out = np.empty((v2.shape[0], n), dtype=dtype)
        ax_m1_flat(v2, x2, out)
        return out.reshape(lead + (n,))

    return ax_m, ax_m1


def _compile_flat_functions(m: int, n: int, variant: str, source: str):
    """Materialize the two flat-kernel Python functions from ``source``.

    Prefers importing from a real module file under the plan-cache
    directory so ``numba.njit(cache=True)`` can persist machine code
    across processes; falls back to ``exec`` (JIT cache disabled) when
    the cache directory is unavailable.
    """
    from repro.kernels import diskcache

    path = diskcache.numba_module_path(m, n, variant)
    if path is not None:
        try:
            if not path.exists() or path.read_text() != source:
                diskcache.atomic_write_text(path, source)
            import importlib.util

            modname = f"repro_codegen_{path.stem}"
            spec = importlib.util.spec_from_file_location(modname, path)
            mod = importlib.util.module_from_spec(spec)
            spec.loader.exec_module(mod)
            return mod.ax_m_flat, mod.ax_m1_flat, True
        except OSError:
            pass  # unwritable cache dir: compile in-memory, no JIT cache
    namespace: dict = {}
    exec(compile(source, f"<codegen-flat m={m} n={n} {variant}>", "exec"),
         namespace)  # noqa: S102 - controlled, generated source
    return namespace["ax_m_flat"], namespace["ax_m1_flat"], False


@lru_cache(maxsize=None)
def _numba_emit(m: int, n: int, variant: str) -> EmittedKernel:
    from repro.instrument.metrics import observe_codegen_compile

    numba = _load_numba()
    t0 = time.perf_counter()
    source, flops_scalar, flops_vector = generate_flat_source(
        m, n, cse=_variant_cse(variant))
    py_ax_m, py_ax_m1, file_backed = _compile_flat_functions(
        m, n, variant, source)
    jit = numba.njit(cache=file_backed, fastmath=False)
    ax_m_flat = jit(py_ax_m)
    ax_m1_flat = jit(py_ax_m1)
    # warm both kernels on tiny inputs so compilation cost lands here (and
    # in the persistent numba cache), not in the first solve sweep
    a = np.zeros((1, kernel_tables(m, n).num_unique))
    x = np.zeros((1, n))
    ax_m_flat(a, x, np.zeros(1))
    ax_m1_flat(a, x, np.zeros((1, n)))
    dt = time.perf_counter() - t0
    observe_codegen_compile("numba", dt)
    ax_m, ax_m1 = _wrap_flat(ax_m_flat, ax_m1_flat, n)
    return EmittedKernel(
        backend="numba",
        effective_backend="numba",
        m=m,
        n=n,
        variant=variant,
        batched=True,
        source=source,
        ax_m=ax_m,
        ax_m1=ax_m1,
        flops_scalar=flops_scalar,
        flops_vector=flops_vector,
        compile_seconds=dt,
        meta={"jit_cache": file_backed, "numba": numba.__version__},
    )


@register_emitter("numba")
class NumbaEmitter(Emitter):
    """Native JIT of the flat-batch unrolled kernels via Numba.

    Always emits *batched* kernels (the flat-batch layout has no
    non-batched form; per-tensor use goes through broadcasting with a
    single lane).  Without numba installed, degrades to the ``numpy``
    emitter's batched kernels and records the fallback in the result.
    """

    variants = _CODEGEN_VARIANTS
    executable = True

    def available(self) -> bool:
        return numba_available()

    def emit(self, m: int, n: int, variant: str = "unrolled_cse", *,
             batched: bool = True, **_opts) -> EmittedKernel:
        self._check_variant(variant)
        if not self.available():
            base = _numpy_emit(m, n, variant, True)
            return replace(
                base,
                backend="numba",
                effective_backend="numpy",
                meta={"fallback": "numba is not installed; "
                                  "using the numpy exec path"},
            )
        return _numba_emit(m, n, variant)


# -- cuda-src: the CUDA C generator as a source-only emitter ---------------


@lru_cache(maxsize=None)
def _cuda_emit(m: int, n: int, variant: str, num_starts: int) -> EmittedKernel:
    from repro.kernels.cudagen import _generate_cuda_kernel
    from repro.util.combinatorics import num_unique_entries

    t0 = time.perf_counter()
    source = _generate_cuda_kernel(m, n, num_starts, variant)
    dt = time.perf_counter() - t0
    flops_scalar = flops_vector = 0
    if num_unique_entries(m, n) <= 4000:
        # static per-thread flop counts from the unrolled generator (the
        # GPU perf model charges the same arithmetic)
        gen = _make_unrolled(m, n, cse=False, batched=False)
        flops_scalar, flops_vector = gen.flops_scalar, gen.flops_vector
    return EmittedKernel(
        backend="cuda-src",
        effective_backend="cuda-src",
        m=m,
        n=n,
        variant=variant,
        batched=True,
        source=source,
        ax_m=None,
        ax_m1=None,
        flops_scalar=flops_scalar,
        flops_vector=flops_vector,
        compile_seconds=dt,
        meta={"num_starts": num_starts},
    )


@register_emitter("cuda-src")
class CudaSourceEmitter(Emitter):
    """CUDA C source generation (Sections V-B/C/D), as an emitter.

    Source-only: there is no GPU here, so ``ax_m``/``ax_m1`` are ``None``
    — the emulation harness (:mod:`repro.kernels.cuda_emulator`) compiles
    the source with the system C++ compiler instead.
    """

    variants = ("unrolled", "general")
    executable = False

    def emit(self, m: int, n: int, variant: str = "unrolled", *,
             num_starts: int = 128, **_opts) -> EmittedKernel:
        self._check_variant(variant)
        return _cuda_emit(m, n, variant, int(num_starts))


def generated_source(m: int, n: int, variant: str = "unrolled_cse", *,
                     batched: bool = False) -> tuple[str, int, int]:
    """``(source, flops_scalar, flops_vector)`` of the numpy-path unrolled
    kernels — the registry-era spelling of the old ``generate_source``."""
    if variant not in _CODEGEN_VARIANTS:
        raise UnknownVariantError(variant, list(_CODEGEN_VARIANTS))
    return _generate_source(m, n, cse=_variant_cse(variant), batched=batched)
