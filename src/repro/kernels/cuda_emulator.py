"""CPU emulation of the generated CUDA kernels.

No GPU is present, but the generated CUDA C (see
:mod:`repro.kernels.cudagen`) can still be *executed*: this module wraps it
in a small emulation harness — CUDA builtins shimmed to plain C++, threads
of a block run sequentially — compiles it with the system C++ compiler, and
runs the whole batched SS-HOPM workload through it.  The emulated kernel's
eigenpairs are then compared against the Python solvers in the tests,
closing the loop on the faithfulness of the emitted device code.

Emulation notes
---------------
* Threads of a block execute sequentially, so the cooperative shared-memory
  load (strided over ``threadIdx.x``) would leave later entries unwritten
  for early threads.  The harness therefore runs every block twice and
  keeps the second pass's outputs: pass one populates the (persistent)
  shared array, pass two computes correctly.  ``__syncthreads`` is a no-op.
* All arithmetic is single precision, as on the device.
"""

from __future__ import annotations

import pathlib
import shutil
import subprocess
import tempfile
from functools import lru_cache

import numpy as np

from repro.kernels.codegen import emit as _codegen_emit
from repro.symtensor.storage import SymmetricTensorBatch
from repro.util.combinatorics import num_unique_entries

__all__ = ["compiler_available", "emulate_cuda_sshopm"]

_SHIM = """\
#include <cmath>
#include <cstdio>
#include <cstdlib>

// ---- CUDA emulation shims (sequential, single "device" thread) ----
struct Dim3 { unsigned x, y, z; };
static Dim3 blockIdx = {0, 0, 0};
static Dim3 threadIdx = {0, 0, 0};
static Dim3 blockDim = {1, 1, 1};
#define __global__
#define __shared__ static
#define __constant__ static const
#define __restrict__
static inline void __syncthreads() {}
static inline float rsqrtf(float v) { return 1.0f / sqrtf(v); }
"""

_MAIN = """\

int main(int argc, char** argv) {
    if (argc != 7) { fprintf(stderr, "usage: emu T V tensors starts lam vec\\n"); return 2; }
    int T = atoi(argv[1]);
    int Vn = atoi(argv[2]);
    const char* tensors_path = argv[3];
    const char* starts_path = argv[4];
    const char* lam_path = argv[5];
    const char* vec_path = argv[6];

    float* tensors = (float*)malloc(sizeof(float) * T * U);
    float* starts = (float*)malloc(sizeof(float) * Vn * N);
    float* lam = (float*)malloc(sizeof(float) * T * Vn);
    float* vec = (float*)malloc(sizeof(float) * T * Vn * N);

    FILE* f = fopen(tensors_path, "rb");
    if (!f || fread(tensors, sizeof(float), (size_t)T * U, f) != (size_t)T * U) return 3;
    fclose(f);
    f = fopen(starts_path, "rb");
    if (!f || fread(starts, sizeof(float), (size_t)Vn * N, f) != (size_t)Vn * N) return 4;
    fclose(f);

    blockDim.x = Vn;
    for (int t = 0; t < T; ++t) {
        blockIdx.x = t;
        // pass 1 fills the persistent __shared__ array, pass 2 computes
        for (int pass = 0; pass < 2; ++pass) {
            for (int v = 0; v < Vn; ++v) {
                threadIdx.x = v;
                KERNEL_NAME(tensors, starts, lam, vec, MAX_ITER, ALPHA, TOL);
            }
        }
    }

    f = fopen(lam_path, "wb");
    fwrite(lam, sizeof(float), (size_t)T * Vn, f);
    fclose(f);
    f = fopen(vec_path, "wb");
    fwrite(vec, sizeof(float), (size_t)T * Vn * N, f);
    fclose(f);
    return 0;
}
"""


def compiler_available() -> str | None:
    """Path to a usable C++ compiler, or None."""
    for name in ("g++", "clang++", "c++"):
        path = shutil.which(name)
        if path:
            return path
    return None


@lru_cache(maxsize=None)
def _build_emulator(
    m: int, n: int, num_starts: int, variant: str,
    max_iter: int, alpha: float, tol: float,
) -> str:
    """Compile the emulation binary for one configuration; returns its path.

    The binary bakes in (max_iter, alpha, tol) — they arrive via macros so
    the kernel signature stays identical to the real device code.
    """
    compiler = compiler_available()
    if compiler is None:
        raise RuntimeError("no C++ compiler available for CUDA emulation")
    # resolve the device source through the emitter registry, like every
    # other consumer of generated code
    kernel_src = _codegen_emit(
        m, n, variant, target="cuda-src", num_starts=num_starts
    ).source
    kernel_name = "sshopm_unrolled" if variant == "unrolled" else "sshopm_general"
    source = (
        _SHIM
        + kernel_src
        + f"\n#define KERNEL_NAME {kernel_name}\n"
        + f"#define MAX_ITER {max_iter}\n"
        + f"#define ALPHA {float(alpha)}f\n"
        + f"#define TOL {float(tol)}f\n"
        + _MAIN
    )
    build_dir = pathlib.Path(tempfile.mkdtemp(prefix="repro-cuda-emu-"))
    src_path = build_dir / "emu.cpp"
    bin_path = build_dir / "emu"
    src_path.write_text(source)
    subprocess.run(
        [compiler, "-O2", "-o", str(bin_path), str(src_path), "-lm"],
        check=True,
        capture_output=True,
    )
    return str(bin_path)


def emulate_cuda_sshopm(
    tensors: SymmetricTensorBatch,
    starts: np.ndarray,
    alpha: float = 0.0,
    tol: float = 1e-6,
    max_iter: int = 200,
    variant: str = "unrolled",
) -> tuple[np.ndarray, np.ndarray]:
    """Run the generated CUDA kernel (emulated on the CPU) over a batch.

    Returns ``(eigenvalues, eigenvectors)`` with shapes ``(T, V)`` and
    ``(T, V, n)``, in float32 exactly as the device would produce.
    """
    m, n = tensors.m, tensors.n
    starts = np.asarray(starts, dtype=np.float32)
    if starts.ndim != 2 or starts.shape[1] != n:
        raise ValueError(f"starts must have shape (V, {n}), got {starts.shape}")
    V = starts.shape[0]
    T = len(tensors)
    U = num_unique_entries(m, n)

    binary = _build_emulator(m, n, V, variant, max_iter, alpha, tol)
    with tempfile.TemporaryDirectory(prefix="repro-cuda-run-") as run_dir:
        run = pathlib.Path(run_dir)
        tpath, spath = run / "tensors.bin", run / "starts.bin"
        lpath, vpath = run / "lam.bin", run / "vec.bin"
        tensors.values.astype(np.float32).tofile(tpath)
        starts.tofile(spath)
        subprocess.run(
            [binary, str(T), str(V), str(tpath), str(spath), str(lpath), str(vpath)],
            check=True,
            capture_output=True,
        )
        lam = np.fromfile(lpath, dtype=np.float32).reshape(T, V)
        vec = np.fromfile(vpath, dtype=np.float32).reshape(T, V, n)
    return lam, vec
