"""CUDA C source generation for the SS-HOPM kernels.

This environment has no GPU, but the paper's artifact — the CUDA kernel
with one thread block per tensor, one thread per starting vector, the
block's tensor in shared memory, vectors in registers, and both
tensor-vector kernels fully unrolled (Sections V-B/C/D) — can still be
*generated* exactly.  This module emits that source: compileable CUDA C
specialized to ``(m, n, V)``, in both the unrolled and the general
(shared index-table) variants, from the same precomputed tables the Python
kernels use.

The generated code is what you would build with ``nvcc`` on real hardware;
the tests verify its structure (term counts, resource declarations,
balanced syntax), and the generation doubles as documentation of exactly
what the simulated performance model charges for.
"""

from __future__ import annotations

from functools import lru_cache

from repro.kernels._deprecation import warn_deprecated
from repro.kernels.tables import kernel_tables
from repro.util.combinatorics import num_unique_entries

# ``generate_cuda_kernel`` is a deprecated import path (use the
# ``cuda-src`` emitter of :mod:`repro.kernels.codegen`); the module
# ``__getattr__`` below keeps it working with a caller-blaming warning.
__all__ = ["generate_cuda_kernel", "generate_host_launcher", "generate_cuda_module"]


def _c_monomial(factors, prefix: str = "x") -> str:
    """C expression for ``prod_i x{factors[i]}``."""
    if len(factors) == 0:
        return "1.0f"
    return "*".join(f"{prefix}{i}" for i in factors)


def _unrolled_scalar_expr(m: int, n: int, avar: str = "a") -> str:
    """Unrolled C expression for ``A x^m`` (the Figure 2 sum, folded)."""
    tab = kernel_tables(m, n)
    terms = []
    for u in range(tab.num_unique):
        mono = _c_monomial([int(v) for v in tab.index[u]])
        c = int(tab.mult[u])
        coeff = "" if c == 1 else f"{float(c)}f*"
        terms.append(f"{coeff}{avar}[{u}]*{mono}")
    return ("\n            + ").join(terms)


def _unrolled_vector_exprs(m: int, n: int, avar: str = "a") -> list[str]:
    """Unrolled C expressions for each entry of ``A x^{m-1}`` (Figure 3)."""
    tab = kernel_tables(m, n)
    out = []
    for i in range(n):
        lo, hi = int(tab.out_starts[i]), int(tab.out_starts[i + 1])
        terms = []
        for r in range(lo, hi):
            mono = _c_monomial([int(v) for v in tab.row_factors[r]])
            c = int(tab.row_sigma[r])
            u = int(tab.row_class[r])
            coeff = "" if c == 1 else f"{float(c)}f*"
            terms.append(f"{coeff}{avar}[{u}]*{mono}")
        out.append(("\n            + ").join(terms))
    return out


@lru_cache(maxsize=None)
def _generate_cuda_kernel(
    m: int = 4, n: int = 3, num_starts: int = 128, variant: str = "unrolled"
) -> str:
    """CUDA C source of the SS-HOPM kernel for ``(m, n)`` with ``V``
    threads per block.

    ``variant="unrolled"`` emits the Section V-D straight-line kernels;
    ``variant="general"`` emits the Figures 2-3 loops reading the shared
    index/multiplicity tables of Section V-C (kept in ``__constant__``
    memory, shared by every thread block).
    """
    U = num_unique_entries(m, n)
    if variant not in ("unrolled", "general"):
        raise ValueError(f"variant must be 'unrolled' or 'general', got {variant!r}")
    if variant == "unrolled" and U > 4000:
        raise ValueError(f"refusing to unroll U={U} terms; use variant='general'")

    header = f"""\
// Auto-generated SS-HOPM kernel ({variant}), m={m}, n={n}, V={num_starts}.
// Mapping (Ballard/Kolda/Plantenga, IPDPS-W 2011, Section V):
//   blockIdx.x  -> tensor, threadIdx.x -> starting vector;
//   the block's {U} unique tensor values live in shared memory;
//   per-thread input/output vectors live in registers.
#define U {U}
#define N {n}
#define M {m}
#define V {num_starts}
"""

    xdecl = " ".join(f"float x{i} = starts[threadIdx.x * N + {i}];" for i in range(n))

    if variant == "unrolled":
        lam_expr = _unrolled_scalar_expr(m, n)
        y_exprs = _unrolled_vector_exprs(m, n)
        y_lines = "\n".join(
            f"        float y{i} = (\n            {expr});" for i, expr in enumerate(y_exprs)
        )
        shift_lines = "\n".join(f"        y{i} += alpha * x{i};" for i in range(n))
        norm_expr = " + ".join(f"y{i}*y{i}" for i in range(n))
        update_lines = "\n".join(f"        x{i} = y{i} * inv;" for i in range(n))
        lam_block = f"""\
        float lam_new = (
            {lam_expr});"""
        tail_stores = "\n".join(
            f"    eigenvectors[(blockIdx.x * V + threadIdx.x) * N + {i}] = x{i};"
            for i in range(n)
        )
        body = f"""\
extern "C" __global__
void sshopm_unrolled(const float* __restrict__ tensors,
                     const float* __restrict__ starts,
                     float* __restrict__ eigenvalues,
                     float* __restrict__ eigenvectors,
                     int max_iter, float alpha, float tol)
{{
    __shared__ float a[U];
    for (int u = threadIdx.x; u < U; u += blockDim.x)
        a[u] = tensors[blockIdx.x * U + u];
    __syncthreads();

    {xdecl}
    float lam = (
        {_unrolled_scalar_expr(m, n)});

    for (int k = 0; k < max_iter; ++k) {{
{y_lines}
{shift_lines}
        float inv = rsqrtf({norm_expr});
{update_lines}
{lam_block}
        if (fabsf(lam_new - lam) < tol) {{ lam = lam_new; break; }}
        lam = lam_new;
    }}

    eigenvalues[blockIdx.x * V + threadIdx.x] = lam;
{tail_stores}
}}
"""
        return header + "\n" + body

    # general variant: Figures 2-4 with precomputed tables in constant memory
    tab = kernel_tables(m, n)
    idx_init = ", ".join(
        str(int(v)) for u in range(tab.num_unique) for v in tab.index[u]
    )
    mult_init = ", ".join(str(int(v)) for v in tab.mult)
    body = f"""\
// Shared across all thread blocks (Section V-C): index representations and
// multiplicities for every unique entry, in lexicographic class order.
__constant__ int c_index[U * M] = {{ {idx_init} }};
__constant__ float c_mult[U] = {{ {mult_init} }};

extern "C" __global__
void sshopm_general(const float* __restrict__ tensors,
                    const float* __restrict__ starts,
                    float* __restrict__ eigenvalues,
                    float* __restrict__ eigenvectors,
                    int max_iter, float alpha, float tol)
{{
    __shared__ float a[U];
    for (int u = threadIdx.x; u < U; u += blockDim.x)
        a[u] = tensors[blockIdx.x * U + u];
    __syncthreads();

    float x[N], y[N];
    for (int i = 0; i < N; ++i) x[i] = starts[threadIdx.x * N + i];

    float lam = 0.0f;
    for (int u = 0; u < U; ++u) {{          // Figure 2
        float xhat = 1.0f;
        for (int j = 0; j < M; ++j) xhat *= x[c_index[u * M + j]];
        lam += c_mult[u] * a[u] * xhat;
    }}

    for (int k = 0; k < max_iter; ++k) {{
        for (int i = 0; i < N; ++i) y[i] = alpha * x[i];
        for (int u = 0; u < U; ++u) {{      // Figure 3
            for (int j = 0; j < M; ++j) {{
                int i = c_index[u * M + j];
                if (j > 0 && i == c_index[u * M + j - 1]) continue; // unique i
                float xhat = 1.0f;
                int skipped = 0;
                for (int l = 0; l < M; ++l) {{
                    int il = c_index[u * M + l];
                    if (il == i && !skipped) {{ skipped = 1; continue; }}
                    xhat *= x[il];
                }}
                // sigma(i) = C(m; k) * k_i / m (footnote 3)
                int ki = 0;
                for (int l = 0; l < M; ++l) if (c_index[u * M + l] == i) ++ki;
                float sigma = c_mult[u] * ki / (float)M;
                y[i] += sigma * a[u] * xhat;
            }}
        }}
        float nrm2 = 0.0f;
        for (int i = 0; i < N; ++i) nrm2 += y[i] * y[i];
        float inv = rsqrtf(nrm2);
        for (int i = 0; i < N; ++i) x[i] = y[i] * inv;
        float lam_new = 0.0f;
        for (int u = 0; u < U; ++u) {{
            float xhat = 1.0f;
            for (int j = 0; j < M; ++j) xhat *= x[c_index[u * M + j]];
            lam_new += c_mult[u] * a[u] * xhat;
        }}
        if (fabsf(lam_new - lam) < tol) {{ lam = lam_new; break; }}
        lam = lam_new;
    }}

    eigenvalues[blockIdx.x * V + threadIdx.x] = lam;
    for (int i = 0; i < N; ++i)
        eigenvectors[(blockIdx.x * V + threadIdx.x) * N + i] = x[i];
}}
"""
    return header + "\n" + body


def generate_host_launcher(m: int = 4, n: int = 3, num_starts: int = 128) -> str:
    """Host-side launch snippet: grid of ``T`` blocks x ``V`` threads,
    matching the data layout of Section V-C."""
    U = num_unique_entries(m, n)
    return f"""\
// Host-side launch (T tensors, {num_starts} starting vectors each):
//   tensors       : T * {U} floats   (unique values, class order)
//   starts        : {num_starts} * {n} floats (shared by every block)
//   eigenvalues   : T * {num_starts} floats
//   eigenvectors  : T * {num_starts} * {n} floats
dim3 grid(T);
dim3 block({num_starts});
sshopm_unrolled<<<grid, block>>>(d_tensors, d_starts,
                                 d_eigenvalues, d_eigenvectors,
                                 max_iter, alpha, tol);
"""


def generate_cuda_module(m: int = 4, n: int = 3, num_starts: int = 128) -> str:
    """Both kernel variants plus the launcher in one translation unit."""
    return "\n".join(
        [
            _generate_cuda_kernel(m, n, num_starts, "unrolled"),
            _generate_cuda_kernel(m, n, num_starts, "general"),
            "/*",
            generate_host_launcher(m, n, num_starts),
            "*/",
        ]
    )


def __getattr__(name):
    if name != "generate_cuda_kernel":
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    warn_deprecated(
        "importing 'generate_cuda_kernel' from repro.kernels.cudagen",
        "use repro.kernels.codegen.emit(m, n, variant, target='cuda-src', "
        "num_starts=V).source (the emitter registry)",
    )
    return _generate_cuda_kernel
