"""Empirical kernel selection (autotuning).

The best kernel variant depends on the tensor shape: unrolled wins for the
paper's tiny application tensors, the blocked decomposition wins as the
dimension grows, and the interpreted loops never win (they exist as the
executable specification).  Rather than hard-coding the crossover, this
module times the candidates on synthetic data and caches the winner per
``(m, n)`` — the software analog of the per-shape specialization the paper
performs by hand, and of Section VI's open question about choosing block
layouts for the best behavior.

``get_kernels("auto", m, n)`` (see :mod:`repro.kernels.dispatch`) routes
through :func:`autotune`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from functools import lru_cache

import numpy as np

__all__ = ["TuneReport", "autotune", "auto_kernels"]

# variants eligible for selection (the spec-faithful loops are excluded on
# purpose: they are reference implementations, never the fastest)
_CANDIDATES = ("precomputed", "unrolled", "unrolled_cse", "vectorized", "blocked")


@dataclass(frozen=True)
class TuneReport:
    """Timing table and winner of one autotune run."""

    m: int
    n: int
    timings: dict[str, float]  # variant -> seconds per (ax_m + ax_m1) pair
    best: str

    def speedup_over(self, variant: str) -> float:
        if variant not in self.timings:
            raise KeyError(f"variant {variant!r} was not timed")
        return self.timings[variant] / self.timings[self.best]


@lru_cache(maxsize=None)
def autotune(m: int, n: int, reps: int = 30, seed: int = 0) -> TuneReport:
    """Time the candidate variants on random data and pick the fastest.

    Each candidate is warmed first (table construction / code generation /
    plan building is one-time cost, amortized across calls in real use),
    then timed over ``reps`` paired ``A x^m`` + ``A x^{m-1}`` evaluations.
    Variants that refuse the shape (e.g. unrolling past its size guard)
    are skipped.
    """
    from repro.kernels.dispatch import get_kernels
    from repro.symtensor.random import random_symmetric_tensor

    tensor = random_symmetric_tensor(m, n, rng=seed)
    x = np.random.default_rng(seed + 1).normal(size=n)

    timings: dict[str, float] = {}
    for name in _CANDIDATES:
        try:
            pair = get_kernels(name, m, n)
            pair.ax_m(tensor, x)  # warm all caches
            pair.ax_m1(tensor, x)
        except (ValueError, MemoryError):
            continue
        t0 = time.perf_counter()
        for _ in range(reps):
            pair.ax_m(tensor, x)
            pair.ax_m1(tensor, x)
        timings[name] = (time.perf_counter() - t0) / reps
    if not timings:
        raise RuntimeError(f"no kernel variant available for m={m}, n={n}")
    best = min(timings, key=lambda k: timings[k])
    return TuneReport(m=m, n=n, timings=timings, best=best)


def auto_kernels(m: int, n: int):
    """The autotuned :class:`~repro.kernels.dispatch.KernelPair` for a shape."""
    from repro.kernels.dispatch import get_kernels

    return get_kernels(autotune(m, n).best, m, n)
