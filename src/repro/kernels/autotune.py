"""Empirical kernel selection (autotuning).

The best kernel variant depends on the tensor shape: unrolled wins for the
paper's tiny application tensors, the blocked decomposition wins as the
dimension grows, and the interpreted loops never win (they exist as the
executable specification).  Rather than hard-coding the crossover, this
module times the candidates on synthetic data and caches the winner per
``(m, n)`` — the software analog of the per-shape specialization the paper
performs by hand, and of Section VI's open question about choosing block
layouts for the best behavior.

``get_kernels("auto", m, n)`` (see :mod:`repro.kernels.dispatch`) routes
through :func:`autotune`.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass
from functools import lru_cache

import numpy as np

__all__ = [
    "BackendTuneReport",
    "TuneReport",
    "autotune",
    "autotune_backend",
    "auto_kernels",
]

# variants eligible for selection (the spec-faithful loops are excluded on
# purpose: they are reference implementations, never the fastest)
_CANDIDATES = ("precomputed", "unrolled", "unrolled_cse", "vectorized", "blocked")


@dataclass(frozen=True)
class TuneReport:
    """Timing table and winner of one autotune run."""

    m: int
    n: int
    timings: dict[str, float]  # variant -> seconds per (ax_m + ax_m1) pair
    best: str

    def speedup_over(self, variant: str) -> float:
        if variant not in self.timings:
            raise KeyError(f"variant {variant!r} was not timed")
        return self.timings[variant] / self.timings[self.best]


@lru_cache(maxsize=None)
def autotune(m: int, n: int, reps: int = 30, seed: int = 0) -> TuneReport:
    """Time the candidate variants on random data and pick the fastest.

    Each candidate is warmed first (table construction / code generation /
    plan building is one-time cost, amortized across calls in real use),
    then timed over ``reps`` paired ``A x^m`` + ``A x^{m-1}`` evaluations.
    Variants that refuse the shape (e.g. unrolling past its size guard)
    are skipped.
    """
    from repro.kernels.dispatch import get_kernels
    from repro.symtensor.random import random_symmetric_tensor

    tensor = random_symmetric_tensor(m, n, rng=seed)
    x = np.random.default_rng(seed + 1).normal(size=n)

    timings: dict[str, float] = {}
    for name in _CANDIDATES:
        try:
            pair = get_kernels(name, m, n)
            pair.ax_m(tensor, x)  # warm all caches
            pair.ax_m1(tensor, x)
        except (ValueError, MemoryError):
            continue
        t0 = time.perf_counter()
        for _ in range(reps):
            pair.ax_m(tensor, x)
            pair.ax_m1(tensor, x)
        timings[name] = (time.perf_counter() - t0) / reps
    if not timings:
        raise RuntimeError(f"no kernel variant available for m={m}, n={n}")
    best = min(timings, key=lambda k: timings[k])
    return TuneReport(m=m, n=n, timings=timings, best=best)


def auto_kernels(m: int, n: int):
    """The autotuned :class:`~repro.kernels.dispatch.KernelPair` for a shape."""
    from repro.kernels.dispatch import get_kernels

    return get_kernels(autotune(m, n).best, m, n)


# -- backend racing (the codegen axis) -------------------------------------

BACKEND_TUNE_SCHEMA = "repro-backend-tune/1"


@dataclass(frozen=True)
class BackendTuneReport:
    """Timing table and winner of one backend race for a shape/variant."""

    m: int
    n: int
    variant: str
    timings: dict[str, float]  # backend -> seconds per batched pair call
    best: str
    persisted: bool  # whether the winner came from / went to disk


def _tune_doc_path(m: int, n: int, variant: str):
    from repro.kernels import diskcache
    from repro.kernels.codegen import CODEGEN_VERSION

    root = diskcache.cache_dir()
    if root is None:
        return None
    return root / f"tune-m{m}-n{n}-{variant}-v{CODEGEN_VERSION}.json"


@lru_cache(maxsize=None)
def autotune_backend(m: int, n: int, variant: str = "vectorized",
                     reps: int = 10, seed: int = 0) -> BackendTuneReport:
    """Race the executable codegen backends on a batched workload and pick
    the fastest, persisting the winner next to the on-disk plan cache so
    later processes skip the race (``backend="auto"`` routes here).

    Backends whose optional dependency is missing are excluded (racing
    numba's numpy fallback against numpy itself would be a coin flip).
    """
    from repro.kernels.codegen import available_backends, numba_available
    from repro.kernels.plan import _build_plan, _canonical_variant

    canonical = _canonical_variant(variant, m, n)
    path = _tune_doc_path(m, n, canonical)
    if path is not None and path.exists():
        try:
            doc = json.loads(path.read_text())
            best = doc.get("best")
            if (doc.get("schema") == BACKEND_TUNE_SCHEMA
                    and best in available_backends(executable=True)
                    and (best != "numba" or numba_available())):
                return BackendTuneReport(
                    m=m, n=n, variant=canonical,
                    timings={k: float(v)
                             for k, v in doc.get("timings", {}).items()},
                    best=best, persisted=True,
                )
        except (OSError, ValueError):
            pass  # unreadable race record: rerun the race below

    candidates = ["numpy"]
    if numba_available():
        candidates.append("numba")

    rng = np.random.default_rng(seed)
    tab_n = n
    from repro.util.combinatorics import num_unique_entries

    U = num_unique_entries(m, n)
    values = rng.normal(size=(16, 1, U))
    x = rng.normal(size=(16, 8, tab_n))

    timings: dict[str, float] = {}
    for backend in candidates:
        plan = _build_plan(m, n, canonical, backend)
        plan.ax_m(values, x)  # warm (JIT specialization happens here)
        plan.ax_m1(values, x)
        t0 = time.perf_counter()
        for _ in range(reps):
            plan.ax_m(values, x)
            plan.ax_m1(values, x)
        timings[backend] = (time.perf_counter() - t0) / reps
    best = min(timings, key=lambda k: timings[k])

    persisted = False
    if path is not None:
        from repro.kernels import diskcache

        try:
            diskcache.atomic_write_text(path, json.dumps({
                "schema": BACKEND_TUNE_SCHEMA,
                "m": m, "n": n, "variant": canonical,
                "timings": timings, "best": best,
            }, indent=1))
            persisted = True
        except OSError:
            pass
    return BackendTuneReport(m=m, n=n, variant=canonical, timings=timings,
                             best=best, persisted=persisted)
