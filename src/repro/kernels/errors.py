"""Typed errors for kernel lookup, dispatch, and shape inference.

One family rooted at :class:`KernelLookupError` so callers can catch every
"the kernel layer could not figure out what you meant" failure with a
single except clause.  The root subclasses both ``KeyError`` and
``ValueError`` because the registry historically raised either depending
on the call site — pre-existing handlers of both kinds keep working.
"""

from __future__ import annotations

__all__ = [
    "KernelLookupError",
    "UnknownVariantError",
    "UnknownBackendError",
    "TableInferenceError",
]


class KernelLookupError(KeyError, ValueError):
    """Base of the kernel lookup/dispatch error family."""

    def __str__(self) -> str:  # KeyError would repr-quote the message
        return self.args[0] if self.args else ""


class UnknownVariantError(KernelLookupError):
    """An unrecognized kernel variant (or batched backend) name."""

    def __init__(self, variant: str, available: list[str]):
        self.variant = variant
        self.available = list(available)
        super().__init__(
            f"unknown kernel variant {variant!r}; available: {self.available}"
        )


class UnknownBackendError(KernelLookupError):
    """An unrecognized code-generation backend (emitter) name."""

    def __init__(self, backend: str, available: list[str]):
        self.backend = backend
        self.available = list(available)
        super().__init__(
            f"unknown codegen backend {backend!r}; available: {self.available}"
        )


class TableInferenceError(KernelLookupError):
    """Array shapes do not identify (or contradict) a kernel table shape.

    Raised by the batched kernels when the trailing axes of ``values`` and
    ``x`` match no ``(m, n)`` (so the tensor order cannot be inferred), or
    when explicitly supplied tables disagree with the array shapes — the
    latter used to be accepted silently and produced garbage output.
    """

    def __init__(self, message: str, *, m: int | None = None,
                 n: int | None = None):
        self.m = m
        self.n = n
        super().__init__(message)
