"""Matricized general-tensor kernels — Table II's baseline, literally.

Table II's caption for the general case: "both ``A x^m`` and ``A x^{m-1}``
can be computed by a sequence of matrix-vector products with the proper
matricization of ``A`` and reshaping of results.  The cost is dominated by
the first matrix-vector product in which the matrix has size
``n^{m-1} x n``."

This module implements that exact scheme (mode-``k`` unfoldings +
matvec/reshape chain) as the honest "what a general tensor library does"
baseline — distinct from :mod:`repro.kernels.reference`'s tensordot chain
in that the matricization is explicit and reusable, and mode unfoldings are
exposed for tests and for building the symmetric-vs-general comparisons.
"""

from __future__ import annotations

import numpy as np

from repro.util.flopcount import FlopCounter, null_counter

__all__ = ["unfold", "fold", "ax_m_matricized", "ax_m1_matricized"]


def unfold(dense: np.ndarray, mode: int) -> np.ndarray:
    """Mode-``k`` unfolding (Kolda & Bader convention): the ``(n, n^{m-1})``
    matrix whose columns are the mode-``k`` fibers of ``dense``."""
    m = dense.ndim
    if not 0 <= mode < m:
        raise ValueError(f"mode must be in 0..{m - 1}, got {mode}")
    return np.moveaxis(dense, mode, 0).reshape(dense.shape[mode], -1)


def fold(matrix: np.ndarray, mode: int, shape: tuple[int, ...]) -> np.ndarray:
    """Inverse of :func:`unfold` for the given full tensor ``shape``."""
    m = len(shape)
    if not 0 <= mode < m:
        raise ValueError(f"mode must be in 0..{m - 1}, got {mode}")
    moved_shape = (shape[mode],) + tuple(s for i, s in enumerate(shape) if i != mode)
    return np.moveaxis(matrix.reshape(moved_shape), 0, mode)


def ax_m1_matricized(
    dense: np.ndarray, x: np.ndarray, counter: FlopCounter | None = None
) -> np.ndarray:
    """``A x^{m-1}`` by repeated unfold-matvec-reshape.

    Contract the last mode, reshape, repeat ``m - 1`` times; the first
    product is the dominating ``n^{m-1} x n`` matvec the paper's Table II
    describes.
    """
    counter = counter or null_counter()
    m = dense.ndim
    n = dense.shape[-1]
    x = np.asarray(x)
    if x.shape != (n,):
        raise ValueError(f"x has shape {x.shape}, expected ({n},)")
    result = dense
    for k in range(m, 1, -1):
        # unfold the trailing mode: an (n^{k-1}, n) matrix-vector product
        mat = result.reshape(n ** (k - 1), n)
        counter.add_flops(2 * mat.size)
        result = (mat @ x).reshape((n,) * (k - 1))
    return result


def ax_m_matricized(
    dense: np.ndarray, x: np.ndarray, counter: FlopCounter | None = None
) -> float:
    """``A x^m``: one more contraction after :func:`ax_m1_matricized`."""
    counter = counter or null_counter()
    v = ax_m1_matricized(dense, x, counter=counter)
    counter.add_flops(2 * v.size)
    return float(v @ x)
