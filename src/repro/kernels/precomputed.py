"""Precomputed-table kernels — the Section III-B.5 storage/compute tradeoff.

Same arithmetic as :mod:`repro.kernels.compressed`, but the index arrays and
multinomial coefficients are read from :class:`~repro.kernels.tables.KernelTables`
instead of being regenerated per term.  This removes all the integer
bookkeeping (UPDATEINDEX + MULTINOMIAL passes) from the inner loop, reducing
the floating-point complexity of both kernels to ``n^m/(m-1)! + O(n^{m-2})``
at the price of ``(m+2)x`` extra integer storage, shared across all tensors
of the same shape (Section V-C).

The vector kernel also exercises the paper's footnote-3 trick: from the
stored ``C(m; k)`` coefficient of a class, the Figure-3 coefficient is
recovered as ``sigma(i) = C(m; k) * k_i / m`` — we instead store the sigma
row table outright (integer data, shared), which is what the GPU code's
"reading the stored value, multiplying by k_i and dividing by m" amounts to
after constant folding.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from repro.kernels.tables import KernelTables, kernel_tables
from repro.symtensor.storage import SymmetricTensor
from repro.util.flopcount import FlopCounter, null_counter

__all__ = ["ax_m_precomputed", "ax_m1_precomputed"]


@lru_cache(maxsize=None)
def _native_tables(m: int, n: int):
    """Python-native (list/int) copies of the kernel tables.

    The point of precomputation is to make the inner loop cheap; indexing
    NumPy arrays element-by-element costs more per access than Python
    lists, so the scalar kernels read these instead."""
    tab = kernel_tables(m, n)
    index = [tuple(int(v) for v in row) for row in tab.index]
    mult = [int(v) for v in tab.mult]
    rows = [
        (
            int(tab.row_out[r]),
            int(tab.row_class[r]),
            int(tab.row_sigma[r]),
            tuple(int(v) for v in tab.row_factors[r]),
        )
        for r in range(tab.num_rows)
    ]
    return index, mult, rows


def ax_m_precomputed(
    tensor: SymmetricTensor,
    x: np.ndarray,
    counter: FlopCounter | None = None,
    tables: KernelTables | None = None,
) -> float:
    """``A x^m`` with precomputed index/multiplicity tables.

    Identical loop structure to Figure 2 but every index array and
    coefficient is a table lookup.
    """
    counter = counter or null_counter()
    m, n = tensor.m, tensor.n
    x = np.asarray(x)
    if x.shape != (n,):
        raise ValueError(f"x has shape {x.shape}, expected ({n},)")
    if tables is not None and (tables.m, tables.n) != (m, n):
        raise ValueError("tables shape does not match tensor shape")
    index, mult, _ = _native_tables(m, n)
    values = tensor.values.tolist()
    xs = x.tolist()

    y = 0.0
    for u, row in enumerate(index):
        xhat = 1.0
        for j in row:
            xhat *= xs[j]
        y += mult[u] * values[u] * xhat
        counter.add_flops(m + 3)
        counter.add_loads(m + 2)
    return float(y)


def ax_m1_precomputed(
    tensor: SymmetricTensor,
    x: np.ndarray,
    counter: FlopCounter | None = None,
    tables: KernelTables | None = None,
) -> np.ndarray:
    """``A x^{m-1}`` with the precomputed row expansion of Figure 3.

    Each row is one (class, distinct index) contribution with its
    coefficient and remaining-factor indices already materialized, so the
    loop body is pure floating-point work.
    """
    counter = counter or null_counter()
    m, n = tensor.m, tensor.n
    x = np.asarray(x)
    if x.shape != (n,):
        raise ValueError(f"x has shape {x.shape}, expected ({n},)")
    if tables is not None and (tables.m, tables.n) != (m, n):
        raise ValueError("tables shape does not match tensor shape")
    _, _, rows = _native_tables(m, n)
    values = tensor.values.tolist()
    xs = x.tolist()

    y = [0.0] * n
    for out, cls, sigma, factors in rows:
        xhat = 1.0
        for j in factors:
            xhat *= xs[j]
        y[out] += sigma * values[cls] * xhat
        counter.add_flops(m + 2)
        counter.add_loads(m + 2)
    counter.add_stores(n)
    return np.array(y, dtype=np.result_type(tensor.values.dtype, x.dtype, np.float64))
