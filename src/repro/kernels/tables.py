"""Precomputed kernel tables (Sections III-B.5 and V-C).

The paper's storage/compute tradeoff: instead of recomputing the index
representation (Figure 4) and multinomial coefficients (MULTINOMIAL0/1) at
every term, precompute them once per ``(m, n)`` and share them — across
iterations, across starting vectors, and across *all tensors* of the same
shape (on the GPU the index array is shared by every thread block).

:class:`KernelTables` bundles everything any kernel variant needs:

* ``index`` — ``(U, m)`` 0-based index representations in class order;
* ``mult`` — ``(U,)`` multiplicities ``C(m; k_1..k_n)`` (the ``A x^m``
  coefficients);
* ``monomial`` — ``(U, n)`` exponent vectors;
* the *row expansion* of the ``A x^(m-1)`` kernel: Figure 3's doubly-nested
  loop flattened into ``R`` independent rows, one per (class, distinct index)
  pair, each carrying its coefficient ``sigma`` and the ``m-1`` remaining
  factor indices.  Rows are sorted by output entry so vectorized kernels can
  segment-reduce with ``np.add.reduceat``.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from repro.symtensor.indexing import (
    index_classes,
    index_table,
    monomial_from_index,
    multiplicity_table,
)
from repro.util.combinatorics import factorial, multinomial1_from_index

__all__ = [
    "KernelTables",
    "kernel_tables",
    "prime_tables",
    "tables_from_arrays",
    "tables_to_arrays",
]

#: Array fields of :class:`KernelTables`, in a fixed serialization order.
_ARRAY_FIELDS = (
    "index",
    "mult",
    "monomial",
    "row_out",
    "row_class",
    "row_sigma",
    "row_factors",
    "out_starts",
)


@dataclass(frozen=True)
class KernelTables:
    """Immutable precomputed tables for symmetric kernels on ``R^[m,n]``."""

    m: int
    n: int
    index: np.ndarray  # (U, m) int64, 0-based, class order
    mult: np.ndarray  # (U,) int64
    monomial: np.ndarray  # (U, n) int64
    # Row expansion of the vector kernel, sorted by output entry:
    row_out: np.ndarray  # (R,) int64 — output entry this row accumulates into
    row_class: np.ndarray  # (R,) int64 — source index class
    row_sigma: np.ndarray  # (R,) int64 — Figure 3 coefficient sigma(j)
    row_factors: np.ndarray  # (R, m-1) int64 — 0-based x-factor indices
    out_starts: np.ndarray  # (n+1,) int64 — reduceat segment boundaries

    @property
    def num_unique(self) -> int:
        return self.index.shape[0]

    @property
    def num_rows(self) -> int:
        return self.row_out.shape[0]

    def extra_storage_elements(self) -> int:
        """Integer elements this precomputation stores beyond the tensor
        values — the paper's "(m+2) factor" of extra (compressible) storage:
        ``m`` index ints + 1 multiplicity per class, plus the row tables."""
        return (
            self.index.size
            + self.mult.size
            + self.row_out.size
            + self.row_class.size
            + self.row_sigma.size
            + self.row_factors.size
        )


# Tables loaded from the persistent plan cache, registered before first
# use so `kernel_tables` can skip the combinatorial build in this process.
_PRIMED: dict[tuple[int, int], KernelTables] = {}


def prime_tables(tables: KernelTables) -> None:
    """Register pre-built ``tables`` so :func:`kernel_tables` returns them
    instead of rebuilding — the warm path of the on-disk plan cache
    (:mod:`repro.kernels.diskcache`).  No-op once the shape's tables have
    already been built in this process (the lru cache wins)."""
    _PRIMED[(tables.m, tables.n)] = tables


def tables_to_arrays(tables: KernelTables) -> dict[str, np.ndarray]:
    """The table arrays as a name-keyed dict (``np.savez`` ready)."""
    return {name: getattr(tables, name) for name in _ARRAY_FIELDS}


def tables_from_arrays(m: int, n: int, arrays) -> KernelTables:
    """Rebuild :class:`KernelTables` from :func:`tables_to_arrays` output.

    Validates the structural invariants so a corrupted archive surfaces as
    ``ValueError`` (which the disk cache treats as a rebuild signal), not
    as garbage kernels.
    """
    m, n = int(m), int(n)
    kw = {}
    for name in _ARRAY_FIELDS:
        arr = np.ascontiguousarray(np.asarray(arrays[name], dtype=np.int64))
        arr.setflags(write=False)
        kw[name] = arr
    U = kw["index"].shape[0]
    R = kw["row_out"].shape[0]
    if (
        kw["index"].shape != (U, m)
        or kw["mult"].shape != (U,)
        or kw["monomial"].shape != (U, n)
        or kw["row_class"].shape != (R,)
        or kw["row_sigma"].shape != (R,)
        or kw["row_factors"].shape != (R, m - 1)
        or kw["out_starts"].shape != (n + 1,)
        or int(kw["out_starts"][0]) != 0
        or int(kw["out_starts"][-1]) != R
    ):
        raise ValueError(
            f"kernel table arrays are inconsistent for m={m}, n={n}"
        )
    return KernelTables(m=m, n=n, **kw)


@lru_cache(maxsize=None)
def kernel_tables(m: int, n: int) -> KernelTables:
    """Build (and cache) the tables for ``R^[m,n]``."""
    if m < 2:
        raise ValueError(f"kernels require tensor order m >= 2, got m={m}")
    if n < 1:
        raise ValueError(f"dimension must be >= 1, got n={n}")
    primed = _PRIMED.get((m, n))
    if primed is not None:
        return primed
    classes = index_classes(m, n)  # 1-based tuples
    idx_tab = index_table(m, n)  # (U, m) 0-based
    mult_tab = multiplicity_table(m, n)
    mono_tab = np.array([monomial_from_index(ix, n) for ix in classes], dtype=np.int64)

    m1fact = factorial(m - 1)
    rows: list[tuple[int, int, int, tuple[int, ...]]] = []
    for u, index in enumerate(classes):
        for j in sorted(set(index)):
            sigma = multinomial1_from_index(index, j, m1fact)
            # remaining m-1 factors: the class with one occurrence of j removed
            remaining = list(index)
            remaining.remove(j)
            rows.append((j - 1, u, sigma, tuple(v - 1 for v in remaining)))
    rows.sort(key=lambda r: (r[0], r[1]))

    row_out = np.array([r[0] for r in rows], dtype=np.int64)
    row_class = np.array([r[1] for r in rows], dtype=np.int64)
    row_sigma = np.array([r[2] for r in rows], dtype=np.int64)
    if m - 1 > 0:
        row_factors = np.array([r[3] for r in rows], dtype=np.int64)
    else:
        row_factors = np.empty((len(rows), 0), dtype=np.int64)

    # Segment boundaries: rows with row_out == i live in
    # [out_starts[i], out_starts[i+1]).  Every output entry has at least one
    # row (every index value occurs in some class), so segments are nonempty.
    out_starts = np.zeros(n + 1, dtype=np.int64)
    np.add.at(out_starts, row_out + 1, 1)
    out_starts = np.cumsum(out_starts)

    for arr in (row_out, row_class, row_sigma, row_factors, out_starts):
        arr.setflags(write=False)
    return KernelTables(
        m=m,
        n=n,
        index=idx_tab,
        mult=mult_tab,
        monomial=mono_tab,
        row_out=row_out,
        row_class=row_class,
        row_sigma=row_sigma,
        row_factors=row_factors,
        out_starts=out_starts,
    )
