"""Dense (general, nonsymmetric-layout) reference kernels.

These are the paper's "general tensor" baseline (Table II, left column): the
tensor is held as a full ``n^m`` dense array and ``A x^{m-p}`` is computed by
a sequence of tensor-vector contractions, costing ``2 n^m + O(n^{m-1})``
flops regardless of symmetry.  They also serve as the ground-truth oracle
for every compressed kernel variant.
"""

from __future__ import annotations

import numpy as np

from repro.symtensor.storage import SymmetricTensor
from repro.util.flopcount import FlopCounter, null_counter

__all__ = [
    "ttsv_dense",
    "ax_m_dense",
    "ax_m1_dense",
    "ax_m_reference",
    "ax_m1_reference",
    "general_flops",
]


def ttsv_dense(
    dense: np.ndarray,
    x: np.ndarray,
    p: int,
    counter: FlopCounter | None = None,
) -> np.ndarray | float:
    """Tensor-times-same-vector: contract ``x`` into the last ``m - p`` modes
    of ``dense`` (Definition 2), returning an order-``p`` dense tensor
    (a scalar for ``p = 0``, a vector for ``p = 1``).

    For a symmetric tensor any choice of modes gives the same result; we
    contract trailing modes one at a time, which costs ``2 n^m`` flops to
    leading order (dominated by the first contraction).
    """
    counter = counter or null_counter()
    m = dense.ndim
    if not 0 <= p <= m - 1:
        raise ValueError(f"need 0 <= p <= m-1 = {m - 1}, got p={p}")
    x = np.asarray(x)
    if x.shape != (dense.shape[-1],):
        raise ValueError(f"x has shape {x.shape}, expected ({dense.shape[-1]},)")
    result = dense
    for k in range(m - p):
        # contracting the last mode of an order-(m-k) tensor:
        # n^(m-k) multiplies + ~n^(m-k) adds
        counter.add_flops(2 * result.size)
        counter.add_loads(result.size + x.size)
        result = result @ x
    if p == 0:
        return float(result)
    return result


def ax_m_dense(dense: np.ndarray, x: np.ndarray, counter: FlopCounter | None = None) -> float:
    """``A x^m`` from a dense tensor (scalar; Equation 3)."""
    return ttsv_dense(dense, x, 0, counter=counter)


def ax_m1_dense(
    dense: np.ndarray, x: np.ndarray, counter: FlopCounter | None = None
) -> np.ndarray:
    """``A x^{m-1}`` from a dense tensor (vector; Equation 5)."""
    return ttsv_dense(dense, x, 1, counter=counter)


def ax_m_reference(
    tensor: SymmetricTensor, x: np.ndarray, counter: FlopCounter | None = None
) -> float:
    """Oracle ``A x^m`` for a compressed tensor: decompress then contract."""
    return ax_m_dense(tensor.to_dense(), x, counter=counter)


def ax_m1_reference(
    tensor: SymmetricTensor, x: np.ndarray, counter: FlopCounter | None = None
) -> np.ndarray:
    """Oracle ``A x^{m-1}`` for a compressed tensor: decompress then contract."""
    return ax_m1_dense(tensor.to_dense(), x, counter=counter)


def general_flops(m: int, n: int) -> int:
    """Leading-order flop count of the general (dense) kernel, Table II:
    ``2 n^m`` for either ``A x^m`` or ``A x^{m-1}``."""
    return 2 * n**m
