"""Spherical harmonics <-> symmetric tensor correspondence (Section IV).

The paper: "a common way to approximate the diffusion function is as a
finite sum of spherical harmonic functions ... The correspondence between
coefficients of spherical harmonic functions with the entries in the
associated symmetric tensor are given in [6]" (Schultz & Seidel 2008).

The mathematical fact: on the unit sphere, the even-degree real spherical
harmonics up to degree ``L`` span exactly the same function space as the
degree-``L`` homogeneous forms ``A g^L`` of symmetric tensors — both have
dimension ``(L+1)(L+2)/2`` (15/28/45 for L = 4/6/8, the measurement counts
Section IV quotes).  This module provides the real SH basis, least-squares
SH fitting of ADC profiles, and the (numerically constructed, exact) linear
isomorphism between SH coefficient vectors and compressed symmetric tensor
values — so the two fitting routes can be used interchangeably and checked
against each other.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np
from scipy.special import sph_harm_y

from repro.mri.fit import design_matrix
from repro.symtensor.storage import SymmetricTensor
from repro.util.combinatorics import num_unique_entries
from repro.util.rng import fibonacci_sphere

__all__ = [
    "num_even_sh_coefficients",
    "even_sh_index_list",
    "real_sph_harm_basis",
    "fit_sh",
    "evaluate_sh",
    "sh_to_tensor",
    "tensor_to_sh",
]


def num_even_sh_coefficients(degree: int) -> int:
    """Number of real SH basis functions of even degree ``<= degree``:
    ``(degree+1)(degree+2)/2`` — equals the symmetric tensor DOF
    ``C(degree+2, degree)`` (the paper's 6/15/28/45 for degree 2/4/6/8)."""
    if degree < 0 or degree % 2 != 0:
        raise ValueError(f"degree must be even and nonnegative, got {degree}")
    return (degree + 1) * (degree + 2) // 2


def even_sh_index_list(degree: int) -> list[tuple[int, int]]:
    """The (l, m) pairs of the even-degree basis, l = 0, 2, ..., degree."""
    if degree < 0 or degree % 2 != 0:
        raise ValueError(f"degree must be even and nonnegative, got {degree}")
    return [(l, m) for l in range(0, degree + 1, 2) for m in range(-l, l + 1)]


def _to_angles(directions: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    directions = np.asarray(directions, dtype=np.float64)
    if directions.ndim != 2 or directions.shape[1] != 3:
        raise ValueError(f"directions must have shape (G, 3), got {directions.shape}")
    norms = np.linalg.norm(directions, axis=1)
    if np.any(norms < 1e-12):
        raise ValueError("directions must be nonzero")
    unit = directions / norms[:, None]
    theta = np.arccos(np.clip(unit[:, 2], -1.0, 1.0))  # polar
    phi = np.arctan2(unit[:, 1], unit[:, 0])  # azimuth
    return theta, phi


def real_sph_harm_basis(degree: int, directions: np.ndarray) -> np.ndarray:
    """The ``(G, K)`` real even-degree SH design matrix.

    Real convention: ``m = 0`` is ``Y_l^0``; ``m > 0`` is
    ``sqrt(2) (-1)^m Re(Y_l^m)``; ``m < 0`` is ``sqrt(2) (-1)^m Im(Y_l^|m|)``
    — orthonormal on the sphere.
    """
    theta, phi = _to_angles(directions)
    cols = []
    for l, m in even_sh_index_list(degree):
        y = sph_harm_y(l, abs(m), theta, phi)
        if m == 0:
            cols.append(y.real)
        elif m > 0:
            cols.append(np.sqrt(2.0) * (-1.0) ** m * y.real)
        else:
            cols.append(np.sqrt(2.0) * (-1.0) ** m * y.imag)
    return np.stack(cols, axis=1)


def fit_sh(
    gradients: np.ndarray, adc: np.ndarray, degree: int = 4, rcond=None
) -> np.ndarray:
    """Least-squares real-SH coefficients of an ADC profile (the Section IV
    "finite sum of spherical harmonic functions")."""
    B = real_sph_harm_basis(degree, gradients)
    adc = np.asarray(adc, dtype=np.float64)
    if adc.shape != (B.shape[0],):
        raise ValueError(f"adc must have shape ({B.shape[0]},), got {adc.shape}")
    if B.shape[0] < B.shape[1]:
        raise ValueError(
            f"underdetermined: {B.shape[0]} samples < {B.shape[1]} coefficients"
        )
    coeffs, *_ = np.linalg.lstsq(B, adc, rcond=rcond)
    return coeffs


def evaluate_sh(coeffs: np.ndarray, degree: int, directions: np.ndarray) -> np.ndarray:
    """Evaluate an even-SH expansion at unit directions."""
    coeffs = np.asarray(coeffs, dtype=np.float64)
    expected = num_even_sh_coefficients(degree)
    if coeffs.shape != (expected,):
        raise ValueError(f"need {expected} coefficients for degree {degree}")
    return real_sph_harm_basis(degree, directions) @ coeffs


@lru_cache(maxsize=None)
def _conversion_matrices(degree: int) -> tuple[np.ndarray, np.ndarray]:
    """(sh->tensor, tensor->sh) matrices for one degree.

    Both function spaces are sampled on a dense Fibonacci direction set
    (far more points than the common dimension K); the change of basis is
    the exact linear map matching the sampled functions in the
    least-squares sense, which — since both sample matrices have full
    column rank K and span the same space — is the exact isomorphism up to
    rounding.
    """
    K = num_even_sh_coefficients(degree)
    pts = fibonacci_sphere(max(8 * K, 256))
    B_sh = real_sph_harm_basis(degree, pts)  # (G, K)
    B_tensor = design_matrix(pts, degree)  # (G, K)
    sh_to_t = np.linalg.lstsq(B_tensor, B_sh, rcond=None)[0]  # (K, K)
    t_to_sh = np.linalg.lstsq(B_sh, B_tensor, rcond=None)[0]
    return sh_to_t, t_to_sh


def sh_to_tensor(coeffs: np.ndarray, degree: int = 4) -> SymmetricTensor:
    """Convert real-SH coefficients to the equivalent symmetric tensor:
    the unique ``A`` with ``A g^degree == sum_k c_k Y_k(g)`` on the sphere."""
    coeffs = np.asarray(coeffs, dtype=np.float64)
    expected = num_even_sh_coefficients(degree)
    if coeffs.shape != (expected,):
        raise ValueError(f"need {expected} coefficients for degree {degree}")
    sh_to_t, _ = _conversion_matrices(degree)
    return SymmetricTensor(sh_to_t @ coeffs, degree, 3)


def tensor_to_sh(tensor: SymmetricTensor) -> np.ndarray:
    """Inverse conversion: the SH coefficients of ``g -> A g^m``."""
    if tensor.n != 3:
        raise ValueError("SH correspondence is defined on the 2-sphere (n=3)")
    if tensor.m % 2 != 0:
        raise ValueError("SH correspondence needs even tensor order")
    _, t_to_sh = _conversion_matrices(tensor.m)
    return t_to_sh @ tensor.values
