"""Generalized scalar measures for higher-order diffusion tensors.

The paper's reference [5] (Ozarslan & Mareci, "Generalized scalar measures
for diffusion MRI using trace, variance, and entropy") defines rotation-
invariant summaries of the profile ``D(g) = A g^m`` that generalize the
classical DTI mean diffusivity and fractional anisotropy.  Implemented via
the spherical moments of the profile:

* **generalized mean diffusivity** — the spherical average
  ``MD = (1 / 4pi) integral D(g) dg``;
* **generalized variance** — the spherical variance of ``D``;
* **generalized anisotropy** — the normalized standard deviation
  ``GA = sqrt(Var) / MD`` (0 for isotropic profiles, growing with
  directional structure).

The spherical average of a monomial ``g^k`` (even multi-index ``k``) has
the classical closed form

    (1/4pi) int g1^{k1} g2^{k2} g3^{k3} dg
        = (k1-1)!! (k2-1)!! (k3-1)!! / (m+1)!!,   m = sum k_i,

so both moments are exact linear/quadratic forms in the unique tensor
values — no quadrature in the returned quantities (a Fibonacci-sphere
quadrature fallback is kept for cross-checks).
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from repro.kernels.tables import kernel_tables
from repro.symtensor.storage import SymmetricTensor, SymmetricTensorBatch
from repro.util.rng import fibonacci_sphere

__all__ = [
    "spherical_mean",
    "spherical_second_moment",
    "generalized_mean_diffusivity",
    "generalized_variance",
    "generalized_anisotropy",
    "measure_batch",
]


def _double_factorial(k: int) -> int:
    if k <= 0:
        return 1
    out = 1
    while k > 0:
        out *= k
        k -= 2
    return out


@lru_cache(maxsize=None)
def _mean_weights(m: int) -> np.ndarray:
    """Per-class weights ``w_u`` with ``spherical_mean = sum_u w_u a_u``:
    multiplicity times the closed-form monomial average."""
    if m % 2 != 0:
        raise ValueError(f"spherical moments need even order, got m={m}")
    tab = kernel_tables(m, 3)
    weights = np.zeros(tab.num_unique)
    denom = _double_factorial(m + 1)
    for u in range(tab.num_unique):
        k = tab.monomial[u]
        if any(int(ki) % 2 for ki in k):
            continue  # odd monomials average to zero
        num = 1
        for ki in k:
            num *= _double_factorial(int(ki) - 1)
        weights[u] = tab.mult[u] * num / denom
    weights.setflags(write=False)
    return weights


def spherical_mean(tensor: SymmetricTensor) -> float:
    """Exact spherical average of ``g -> A g^m`` (even ``m``, n = 3)."""
    if tensor.n != 3:
        raise ValueError("spherical measures are defined on the 2-sphere (n=3)")
    return float(_mean_weights(tensor.m) @ tensor.values)


def spherical_second_moment(tensor: SymmetricTensor) -> float:
    """Exact spherical average of ``D(g)^2``.

    ``D^2`` is the degree-``2m`` form of the symmetric product
    ``sym(A (x) A)``, so the same closed-form monomial averages apply.
    """
    from repro.symtensor.ops import symmetric_product

    square = symmetric_product(tensor, tensor)
    return float(_mean_weights(square.m) @ square.values)


def generalized_mean_diffusivity(tensor: SymmetricTensor) -> float:
    """Generalized mean diffusivity (the reference-[5] trace measure)."""
    return spherical_mean(tensor)


def generalized_variance(tensor: SymmetricTensor) -> float:
    """Spherical variance of the profile (clamped at zero against
    rounding)."""
    mean = spherical_mean(tensor)
    return max(0.0, spherical_second_moment(tensor) - mean * mean)


def generalized_anisotropy(tensor: SymmetricTensor) -> float:
    """Normalized anisotropy ``sqrt(Var[D]) / E[D]``; zero for isotropic
    profiles.  Returns ``nan`` for a zero-mean profile."""
    mean = spherical_mean(tensor)
    if abs(mean) < 1e-300:
        return float("nan")
    return float(np.sqrt(generalized_variance(tensor)) / abs(mean))


def measure_batch(batch: SymmetricTensorBatch) -> dict[str, np.ndarray]:
    """Per-voxel measures for a whole batch: keys ``mean_diffusivity``,
    ``variance``, ``anisotropy`` (each shape ``(T,)``)."""
    md = np.array([generalized_mean_diffusivity(batch[t]) for t in range(len(batch))])
    var = np.array([generalized_variance(batch[t]) for t in range(len(batch))])
    with np.errstate(divide="ignore", invalid="ignore"):
        ga = np.where(np.abs(md) > 1e-300, np.sqrt(var) / np.abs(md), np.nan)
    return {"mean_diffusivity": md, "variance": var, "anisotropy": ga}


def spherical_mean_quadrature(tensor: SymmetricTensor, points: int = 4096) -> float:
    """Fibonacci-sphere quadrature cross-check of :func:`spherical_mean`."""
    from repro.mri.fit import adc_profile

    pts = fibonacci_sphere(points)
    return float(np.mean(adc_profile(tensor, pts)))
