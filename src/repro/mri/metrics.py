"""Accuracy metrics for fiber detection on phantoms with known ground truth."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.optimize import linear_sum_assignment

__all__ = ["angular_error_deg", "match_fibers", "DetectionReport", "evaluate_detection"]


def angular_error_deg(estimated: np.ndarray, truth: np.ndarray) -> float:
    """Angle in degrees between two directions, modulo the antipodal
    symmetry (a fiber has no orientation sign)."""
    estimated = np.asarray(estimated, dtype=np.float64)
    truth = np.asarray(truth, dtype=np.float64)
    cosine = abs(float(np.dot(estimated, truth)))
    cosine /= float(np.linalg.norm(estimated) * np.linalg.norm(truth))
    return float(np.degrees(np.arccos(np.clip(cosine, -1.0, 1.0))))


def match_fibers(
    estimated: np.ndarray, truth: np.ndarray, max_error_deg: float = 20.0
) -> tuple[list[tuple[int, int, float]], int, int]:
    """Optimal assignment of estimated to true fibers.

    Returns ``(matches, false_positives, misses)`` where each match is
    ``(est_index, true_index, angular_error_deg)`` with error below
    ``max_error_deg``; unmatched estimates are false positives, unmatched
    truths are misses.
    """
    estimated = np.atleast_2d(np.asarray(estimated, dtype=np.float64))
    truth = np.atleast_2d(np.asarray(truth, dtype=np.float64))
    ne, nt = estimated.shape[0], truth.shape[0]
    if ne == 0 or nt == 0:
        return [], ne, nt
    cost = np.empty((ne, nt))
    for i in range(ne):
        for j in range(nt):
            cost[i, j] = angular_error_deg(estimated[i], truth[j])
    rows, cols = linear_sum_assignment(cost)
    matches = [
        (int(i), int(j), float(cost[i, j]))
        for i, j in zip(rows, cols)
        if cost[i, j] <= max_error_deg
    ]
    matched_est = {m[0] for m in matches}
    matched_true = {m[1] for m in matches}
    return matches, ne - len(matched_est), nt - len(matched_true)


@dataclass
class DetectionReport:
    """Aggregate phantom-wide detection quality.

    Attributes
    ----------
    voxels : voxel count evaluated.
    correct_count_fraction : voxels whose detected fiber count equals truth.
    mean_angular_error_deg : mean error over all matched fibers.
    matched, false_positives, misses : fiber-level totals.
    by_fiber_count : per-ground-truth-count breakdown
        ``{count: (voxels, correct_count, mean_error)}``.
    """

    voxels: int
    correct_count_fraction: float
    mean_angular_error_deg: float
    matched: int
    false_positives: int
    misses: int
    by_fiber_count: dict


def evaluate_detection(
    estimated_per_voxel: list[np.ndarray],
    truth_per_voxel: list[np.ndarray],
    max_error_deg: float = 20.0,
) -> DetectionReport:
    """Score detections against ground truth across a phantom."""
    if len(estimated_per_voxel) != len(truth_per_voxel):
        raise ValueError("estimated and truth lists must have equal length")
    total_matched = 0
    total_fp = 0
    total_miss = 0
    errors: list[float] = []
    correct_count = 0
    buckets: dict[int, list] = {}
    for est, true in zip(estimated_per_voxel, truth_per_voxel):
        est = np.atleast_2d(np.asarray(est)) if np.size(est) else np.zeros((0, 3))
        true = np.atleast_2d(np.asarray(true))
        matches, fp, miss = match_fibers(est, true, max_error_deg=max_error_deg)
        total_matched += len(matches)
        total_fp += fp
        total_miss += miss
        errs = [m[2] for m in matches]
        errors.extend(errs)
        ok = est.shape[0] == true.shape[0] and miss == 0 and fp == 0
        correct_count += int(ok)
        bucket = buckets.setdefault(true.shape[0], [0, 0, []])
        bucket[0] += 1
        bucket[1] += int(ok)
        bucket[2].extend(errs)

    by_count = {
        k: (v[0], v[1], float(np.mean(v[2])) if v[2] else float("nan"))
        for k, v in sorted(buckets.items())
    }
    return DetectionReport(
        voxels=len(truth_per_voxel),
        correct_count_fraction=correct_count / max(1, len(truth_per_voxel)),
        mean_angular_error_deg=float(np.mean(errors)) if errors else float("nan"),
        matched=total_matched,
        false_positives=total_fp,
        misses=total_miss,
        by_fiber_count=by_count,
    )
