"""Fiber-direction extraction: the end-to-end application of Section IV/V.

Per voxel: the principal nerve fiber directions are the local maxima of the
diffusion profile ``D(g) = A g^m`` on the sphere, i.e. the positive-stable
eigenpairs of ``A`` — found by multistart SS-HOPM with a nonnegative shift
("to find local maxima, a nonnegative shift must be used", Section V-A).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.config import SolveConfig, reconcile_max_iters
from repro.core.eigenpairs import classify_eigenpair, dedupe_eigenpairs
from repro.core.multistart import multistart_sshopm
from repro.instrument import gauge as _gauge
from repro.instrument import span as _span
from repro.symtensor.storage import SymmetricTensor, SymmetricTensorBatch

__all__ = ["VoxelFibers", "extract_fibers", "extract_fibers_batch"]


@dataclass
class VoxelFibers:
    """Fiber estimate for one voxel.

    Attributes
    ----------
    directions : ``(F, 3)`` unit vectors (hemisphere-canonicalized), sorted
        by descending eigenvalue.
    eigenvalues : ``(F,)`` the corresponding ``lambda = D(direction)``.
    num_candidates : stable local maxima found before thresholding.
    """

    directions: np.ndarray
    eigenvalues: np.ndarray
    num_candidates: int

    @property
    def count(self) -> int:
        return self.directions.shape[0]


def _select_fibers(
    tensor: SymmetricTensor,
    eigenvalues: np.ndarray,
    eigenvectors: np.ndarray,
    converged: np.ndarray,
    max_fibers: int,
    rel_threshold: float,
    min_occurrences: int,
) -> VoxelFibers:
    with _span("dedupe"):
        pairs = dedupe_eigenpairs(
            eigenvalues,
            eigenvectors,
            tensor.m,
            tensor=tensor,
            classify=False,
            converged_mask=converged,
        )
    # local maxima only: positive stable pairs (classification is the costly
    # part, so apply it after the occurrence filter)
    maxima = []
    with _span("classify"):
        for p in pairs:
            if p.occurrences < min_occurrences:
                continue
            if classify_eigenpair(tensor, p.eigenvalue, p.eigenvector) == "pos_stable":
                maxima.append(p)
    num_candidates = len(maxima)
    if not maxima:
        return VoxelFibers(
            directions=np.zeros((0, 3)),
            eigenvalues=np.zeros(0),
            num_candidates=0,
        )
    lam_max = maxima[0].eigenvalue
    kept = [p for p in maxima if p.eigenvalue >= rel_threshold * lam_max][:max_fibers]
    return VoxelFibers(
        directions=np.stack([p.eigenvector for p in kept]),
        eigenvalues=np.array([p.eigenvalue for p in kept]),
        num_candidates=num_candidates,
    )


def extract_fibers(
    tensor: SymmetricTensor,
    num_starts: int = 128,
    alpha: float = 0.0,
    max_fibers: int = 3,
    rel_threshold: float = 0.5,
    min_occurrences: int = 2,
    tol: float = 1e-10,
    max_iters: int | None = None,
    rng=None,
    config: SolveConfig | None = None,
    *,
    max_iter: int | None = None,
) -> VoxelFibers:
    """Fiber directions of a single voxel tensor.

    ``alpha`` must be nonnegative (local maxima); the paper uses 0 for its
    synthetic set.  ``rel_threshold`` discards spurious shallow maxima whose
    ADC is below that fraction of the principal one; ``min_occurrences``
    discards maxima reached by fewer than that many starting vectors.
    ``max_iters`` defaults to 500 (``max_iter=`` is the deprecated
    spelling).
    """
    if alpha < 0:
        raise ValueError("fiber extraction needs a nonnegative shift (local maxima)")
    max_iters = reconcile_max_iters(max_iters, max_iter)
    with _span("extract_fibers"):
        result = multistart_sshopm(
            tensor,
            num_starts=num_starts,
            alpha=alpha,
            tol=tol,
            max_iters=max_iters,
            rng=rng,
            config=config,
        )
        return _select_fibers(
            tensor,
            result.eigenvalues[0],
            result.eigenvectors[0],
            result.converged[0],
            max_fibers=max_fibers,
            rel_threshold=rel_threshold,
            min_occurrences=min_occurrences,
        )


def extract_fibers_batch(
    tensors: SymmetricTensorBatch,
    num_starts: int = 128,
    alpha: float = 0.0,
    max_fibers: int = 3,
    rel_threshold: float = 0.5,
    min_occurrences: int = 2,
    tol: float = 1e-10,
    max_iters: int | None = None,
    rng=None,
    config: SolveConfig | None = None,
    *,
    max_iter: int | None = None,
) -> list[VoxelFibers]:
    """Fiber directions for every voxel of a batch (one lockstep multistart
    run for the whole grid — the GPU-shaped computation).

    With a recorder active (:mod:`repro.instrument`) the pipeline stages
    appear as aggregated spans: one ``multistart_sshopm`` subtree for the
    lockstep solve, then per-voxel ``select_fibers`` / ``dedupe`` /
    ``classify`` spans whose ``count`` is the voxel count.
    """
    if alpha < 0:
        raise ValueError("fiber extraction needs a nonnegative shift (local maxima)")
    max_iters = reconcile_max_iters(max_iters, max_iter)
    _gauge("fibers.voxels", len(tensors))
    _gauge("fibers.starts", num_starts)
    with _span("extract_fibers_batch"):
        result = multistart_sshopm(
            tensors,
            num_starts=num_starts,
            alpha=alpha,
            tol=tol,
            max_iters=max_iters,
            rng=rng,
            config=config,
        )
        fibers = []
        for t in range(len(tensors)):
            with _span("select_fibers"):
                fibers.append(
                    _select_fibers(
                        tensors[t],
                        result.eigenvalues[t],
                        result.eigenvectors[t],
                        result.converged[t],
                        max_fibers=max_fibers,
                        rel_threshold=rel_threshold,
                        min_occurrences=min_occurrences,
                    )
                )
    return fibers
