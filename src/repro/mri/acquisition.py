"""Signal-domain DW-MRI acquisition simulation.

The phantom's default path synthesizes ADC profiles directly.  A real
scanner measures the *signal* ``S(g) = S0 exp(-b D(g))`` per compartment
(b-value in s/mm^2-ish units), corrupted by Rician noise (magnitude of a
complex Gaussian), and the apparent diffusion coefficient is recovered as
``D(g) = -ln(S/S0) / b`` — the quantity Section IV's spherical-harmonic /
homogeneous-form fit consumes.

For a multi-compartment voxel the measured ADC of the *summed* signal,

    D_meas(g) = -ln( sum_f w_f exp(-b D_f(g)) ) / b,

is no longer an exact homogeneous form: at low ``b`` it approaches the
weighted ADC sum (the model-exact regime), while at high ``b`` the fastest-
decaying compartment dominates and the order-4 fit incurs model error.
This module lets the pipeline be exercised under that realistic mismatch.
"""

from __future__ import annotations

import numpy as np

from repro.mri.phantom import DEFAULT_LAMBDA_PAR, DEFAULT_LAMBDA_PERP
from repro.util.rng import make_rng

__all__ = ["signal_from_fibers", "rician_noise", "adc_from_signal"]


def signal_from_fibers(
    gradients: np.ndarray,
    directions: np.ndarray,
    weights: np.ndarray,
    b_value: float = 1.0,
    s0: float = 1.0,
    lambda_par: float = DEFAULT_LAMBDA_PAR,
    lambda_perp: float = DEFAULT_LAMBDA_PERP,
    sharpness: int = 4,
) -> np.ndarray:
    """Multi-compartment diffusion signal at each gradient:
    ``S(g) = s0 * sum_f w_f exp(-b * D_f(g))`` with the same per-fiber ADC
    kernel as :func:`repro.mri.phantom.adc_from_fibers`.

    ``weights`` are volume fractions; they are normalized to sum to 1 so
    ``S(g) <= s0``.
    """
    if b_value <= 0:
        raise ValueError(f"b_value must be positive, got {b_value}")
    gradients = np.asarray(gradients, dtype=np.float64)
    directions = np.atleast_2d(np.asarray(directions, dtype=np.float64))
    weights = np.asarray(weights, dtype=np.float64)
    total = weights.sum()
    if total <= 0:
        raise ValueError("weights must have positive sum")
    fractions = weights / total
    dots = gradients @ directions.T
    per_fiber_adc = lambda_perp + (lambda_par - lambda_perp) * dots**sharpness
    return s0 * (np.exp(-b_value * per_fiber_adc) @ fractions)


def rician_noise(
    signal: np.ndarray, sigma: float, rng=None
) -> np.ndarray:
    """Rician-distributed magnitude measurement: the modulus of the true
    signal plus complex Gaussian noise of std ``sigma`` per channel."""
    if sigma < 0:
        raise ValueError(f"sigma must be nonnegative, got {sigma}")
    if sigma == 0:
        return np.asarray(signal, dtype=np.float64).copy()
    rng = make_rng(rng)
    signal = np.asarray(signal, dtype=np.float64)
    real = signal + rng.normal(0.0, sigma, size=signal.shape)
    imag = rng.normal(0.0, sigma, size=signal.shape)
    return np.hypot(real, imag)


def adc_from_signal(
    signal: np.ndarray, s0: float = 1.0, b_value: float = 1.0,
    floor: float = 1e-8,
) -> np.ndarray:
    """Recover the ADC profile: ``D(g) = -ln(S/S0) / b``.

    Signals are clipped below at ``floor * s0`` (noise can push magnitude
    measurements toward zero, where the log diverges).
    """
    if b_value <= 0:
        raise ValueError(f"b_value must be positive, got {b_value}")
    if s0 <= 0:
        raise ValueError(f"s0 must be positive, got {s0}")
    signal = np.asarray(signal, dtype=np.float64)
    ratio = np.clip(signal / s0, floor, None)
    return -np.log(ratio) / b_value
