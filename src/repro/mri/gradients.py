"""Gradient direction schemes for simulated DW-MRI acquisition.

DW-MRI measures the apparent diffusion coefficient along a set of unit
gradient directions; fitting an order-``m`` symmetric tensor requires at
least ``C(m+2, m)`` directions (15 for ``m=4``, 28 for ``m=6``, 45 for
``m=8`` — the counts quoted in Section IV).  Real scanners use direction
sets optimized for even angular coverage; we provide the standard
electrostatic-repulsion construction plus the Fibonacci lattice and a
random fallback.
"""

from __future__ import annotations

import numpy as np

from repro.util.rng import fibonacci_sphere, make_rng, random_unit_vectors

__all__ = ["gradient_directions", "electrostatic_directions", "min_directions"]


def min_directions(m: int) -> int:
    """Minimum measurement count to determine an order-``m`` symmetric
    tensor in R^3: its number of unique entries, ``C(m+2, m)``."""
    from repro.util.combinatorics import num_unique_entries

    return num_unique_entries(m, 3)


def electrostatic_directions(
    count: int,
    iterations: int = 200,
    step: float = 0.05,
    rng=None,
) -> np.ndarray:
    """Antipodally-symmetric electrostatic repulsion directions.

    Minimizes the Coulomb-like energy ``sum 1/d^2`` over the point set
    together with its antipodes (diffusion is symmetric: ``g`` and ``-g``
    measure the same thing), by projected gradient descent on the sphere.
    Deterministic given the seed.  Returns ``(count, 3)`` unit vectors.
    """
    if count < 1:
        raise ValueError(f"count must be >= 1, got {count}")
    rng = make_rng(rng if rng is not None else 0)
    # seed from the Fibonacci lattice (already well spread, no coincident or
    # exactly antipodal pairs — those are unstable equilibria of the
    # repulsion) with a small jitter, then polish
    # Seed with a projectively well-spread set: Fibonacci points on the
    # upper hemisphere (generate 2*count on the sphere, keep one per
    # antipodal hemisphere slot), lightly jittered.
    full = fibonacci_sphere(2 * count)
    upper = full[full[:, 2] > 0]
    if upper.shape[0] < count:  # equator ties; top up from the lower half
        lower = -full[full[:, 2] <= 0]
        upper = np.concatenate([upper, lower])[:count]
    pts = upper[:count] + rng.normal(0.0, 1e-3, size=(count, 3))
    pts /= np.linalg.norm(pts, axis=1, keepdims=True)

    eps = 1e-9  # regularizes exactly coincident points/antipodes
    max_move = 0.15  # bound per-iteration displacement (radians-ish)
    for it in range(iterations):
        force = np.zeros_like(pts)
        for sign in (1.0, -1.0):
            # displacement from every (possibly negated) point to every point
            diff = pts[:, None, :] - sign * pts[None, :, :]  # (count, count, 3)
            dist2 = np.sum(diff * diff, axis=-1) + eps
            if sign > 0:
                np.fill_diagonal(dist2, np.inf)  # no self-interaction
            # (sign < 0 diagonal is the self-antipode at distance 2, whose
            # force 2*pts/8 is purely radial and removed by the projection)
            force += np.sum(diff / (dist2**1.5)[..., None], axis=1)
        # project out the radial component and take a bounded, decaying step
        force -= pts * np.sum(force * pts, axis=1, keepdims=True)
        decay = 1.0 / (1.0 + 4.0 * it / max(1, iterations))
        move = step * decay * force
        norms = np.linalg.norm(move, axis=1, keepdims=True)
        scale = np.minimum(1.0, max_move / np.maximum(norms, 1e-30))
        pts = pts + move * scale
        pts /= np.linalg.norm(pts, axis=1, keepdims=True)
    return pts


def gradient_directions(count: int, scheme: str = "electrostatic", rng=None) -> np.ndarray:
    """Direction set of the requested ``scheme``:
    ``"electrostatic"`` (default), ``"fibonacci"``, or ``"random"``."""
    if scheme == "electrostatic":
        return electrostatic_directions(count, rng=rng)
    if scheme == "fibonacci":
        return fibonacci_sphere(count)
    if scheme == "random":
        return random_unit_vectors(count, 3, rng=rng)
    raise ValueError(f"unknown gradient scheme {scheme!r}")
