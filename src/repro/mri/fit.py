"""Least-squares fitting of symmetric diffusion tensors from ADC samples.

Section IV: the apparent diffusion coefficient is approximated by a
homogeneous form ``D(g) ~= A g^m`` with ``A`` symmetric of even order.  In
compressed coordinates the form is linear in the unique values,

    D(g) = sum_u  mult_u * a_u * g^{monomial_u},

so one design matrix (rows indexed by gradient direction, columns by index
class) serves every voxel, and a whole voxel grid is fitted with a single
pseudoinverse application — the batched analog of determining "the six
coefficients" (m=2) or 15/28/45 coefficients (m=4/6/8) per voxel.
"""

from __future__ import annotations

import numpy as np

from repro.kernels.batched import monomials_batched
from repro.kernels.tables import kernel_tables
from repro.symtensor.storage import SymmetricTensor, SymmetricTensorBatch

__all__ = ["design_matrix", "fit_symmetric_tensor", "fit_symmetric_batch", "adc_profile"]


def design_matrix(gradients: np.ndarray, m: int) -> np.ndarray:
    """The ``(G, U)`` linear map from unique tensor values to ADC samples:
    row ``g``, column ``u`` holds ``mult_u * g^{monomial_u}``."""
    gradients = np.asarray(gradients, dtype=np.float64)
    if gradients.ndim != 2 or gradients.shape[1] != 3:
        raise ValueError(f"gradients must have shape (G, 3), got {gradients.shape}")
    tab = kernel_tables(m, 3)
    mono = monomials_batched(gradients, tab)  # (G, U)
    return mono * tab.mult.astype(np.float64)


def adc_profile(tensor: SymmetricTensor | SymmetricTensorBatch, gradients: np.ndarray) -> np.ndarray:
    """Evaluate ``D(g) = A g^m`` for every gradient (and every tensor, if a
    batch): shape ``(G,)`` or ``(T, G)``."""
    M = design_matrix(np.asarray(gradients), tensor.m)
    return tensor.values @ M.T


def fit_symmetric_tensor(
    gradients: np.ndarray,
    adc: np.ndarray,
    m: int = 4,
    rcond: float | None = None,
) -> SymmetricTensor:
    """Least-squares fit of one order-``m`` symmetric tensor in R^3.

    Requires at least ``C(m+2, m)`` well-spread gradients; raises if the
    system is underdetermined.
    """
    M = design_matrix(gradients, m)
    adc = np.asarray(adc, dtype=np.float64)
    if adc.shape != (M.shape[0],):
        raise ValueError(f"adc must have shape ({M.shape[0]},), got {adc.shape}")
    if M.shape[0] < M.shape[1]:
        raise ValueError(
            f"underdetermined fit: {M.shape[0]} measurements < {M.shape[1]} unknowns "
            f"(order {m} needs at least {M.shape[1]} gradient directions)"
        )
    values, *_ = np.linalg.lstsq(M, adc, rcond=rcond)
    return SymmetricTensor(values, m, 3)


def fit_symmetric_batch(
    gradients: np.ndarray,
    adc: np.ndarray,
    m: int = 4,
    rcond: float | None = None,
) -> SymmetricTensorBatch:
    """Fit every voxel of a ``(T, G)`` ADC sample array at once (shared
    pseudoinverse — one factorization for the whole brain volume)."""
    M = design_matrix(gradients, m)
    adc = np.asarray(adc, dtype=np.float64)
    if adc.ndim != 2 or adc.shape[1] != M.shape[0]:
        raise ValueError(f"adc must have shape (T, {M.shape[0]}), got {adc.shape}")
    if M.shape[0] < M.shape[1]:
        raise ValueError(
            f"underdetermined fit: {M.shape[0]} measurements < {M.shape[1]} unknowns"
        )
    pinv = np.linalg.pinv(M, rcond=rcond if rcond is not None else 1e-12)
    values = adc @ pinv.T
    return SymmetricTensorBatch(values, m, 3)
