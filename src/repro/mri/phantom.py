"""Synthetic DW-MRI phantom — the stand-in for the paper's SCI Institute
test set.

The paper's data: "1024 tensors corresponding to a 2D array of voxels which
includes some with one and some with two principal fiber directions", each
4th order, dimension 3 (15 unique values).  That set is not distributed, so
this module synthesizes an equivalent one:

* a ``rows x cols`` voxel grid (default ``32 x 32 = 1024``);
* a *crossing region* (a centered band) whose voxels contain two fiber
  populations at a configurable crossing angle, the rest single-fiber;
* per-voxel ADC profiles from the standard multi-compartment model
  ``D(g) = sum_f w_f (lam_perp + (lam_par - lam_perp) (g . d_f)^2)``
  (each fiber population an axially symmetric rank-2 diffusion profile),
  optionally with measurement noise;
* order-``m`` symmetric tensors least-squares fitted from those profiles —
  exactly the acquisition-and-fit pipeline Section IV describes.

Ground-truth fiber directions are retained per voxel for the accuracy
metrics.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.mri.fit import design_matrix, fit_symmetric_batch
from repro.mri.gradients import gradient_directions, min_directions
from repro.symtensor.storage import SymmetricTensorBatch
from repro.util.rng import make_rng

__all__ = ["Phantom", "make_phantom", "adc_from_fibers"]

# Typical white-matter diffusivities in um^2/ms (longitudinal and
# transverse); only their ratio shapes the profile.
DEFAULT_LAMBDA_PAR = 1.7
DEFAULT_LAMBDA_PERP = 0.3


@dataclass
class Phantom:
    """A synthetic voxel grid with fitted tensors and ground truth.

    Attributes
    ----------
    tensors : the fitted order-``m`` symmetric tensor batch (``T = rows*cols``).
    true_directions : list of ``(F_t, 3)`` arrays, the ground-truth fiber
        directions per voxel (unit vectors, hemisphere-canonicalized).
    gradients : the ``(G, 3)`` acquisition directions used.
    adc : the ``(T, G)`` sampled (possibly noisy) ADC values.
    rows, cols : grid shape.
    """

    tensors: SymmetricTensorBatch
    true_directions: list[np.ndarray]
    gradients: np.ndarray
    adc: np.ndarray
    rows: int
    cols: int
    meta: dict = field(default_factory=dict)

    @property
    def num_voxels(self) -> int:
        return self.rows * self.cols

    def voxel_index(self, r: int, c: int) -> int:
        if not (0 <= r < self.rows and 0 <= c < self.cols):
            raise IndexError(f"voxel ({r}, {c}) outside {self.rows}x{self.cols} grid")
        return r * self.cols + c

    def num_fibers(self) -> np.ndarray:
        """Ground-truth fiber count per voxel, shape ``(T,)``."""
        return np.array([d.shape[0] for d in self.true_directions], dtype=np.int64)


def adc_from_fibers(
    gradients: np.ndarray,
    directions: np.ndarray,
    weights: np.ndarray,
    lambda_par: float = DEFAULT_LAMBDA_PAR,
    lambda_perp: float = DEFAULT_LAMBDA_PERP,
    sharpness: int = 4,
) -> np.ndarray:
    """Multi-compartment ADC profile sampled at ``gradients``:

    ``D(g) = sum_f w_f (lambda_perp + (lambda_par - lambda_perp)(g.d_f)^p)``

    with even ``p = sharpness``.  A quadratic kernel (``p = 2``) would make
    any mixture itself quadratic — a crossing voxel would then show a single
    maximum at the bisector, which is exactly the failure of the 2nd-order
    model that Section IV describes ("the approximation is often unable to
    resolve the fiber directions").  The default ``p = 4`` is the
    generalized-DTI (order-4 homogeneous form) profile: it is *exactly*
    representable by an order-4 symmetric tensor, and well-separated fiber
    populations each produce a local maximum of ``D`` along their direction.
    """
    if sharpness % 2 != 0 or sharpness < 2:
        raise ValueError(f"sharpness must be a positive even power, got {sharpness}")
    gradients = np.asarray(gradients, dtype=np.float64)
    directions = np.atleast_2d(np.asarray(directions, dtype=np.float64))
    weights = np.asarray(weights, dtype=np.float64)
    dots = gradients @ directions.T  # (G, F)
    per_fiber = lambda_perp + (lambda_par - lambda_perp) * dots**sharpness
    return per_fiber @ weights


def _unit(v: np.ndarray) -> np.ndarray:
    return v / np.linalg.norm(v)


def _canonical_hemisphere(d: np.ndarray) -> np.ndarray:
    pivot = int(np.argmax(np.abs(d)))
    return -d if d[pivot] < 0 else d


def make_phantom(
    rows: int = 32,
    cols: int = 32,
    order: int = 4,
    num_gradients: int = 64,
    crossing_angle_deg: float = 75.0,
    crossing_band: tuple[float, float] = (0.375, 0.625),
    noise_sigma: float = 0.0,
    direction_jitter_deg: float = 3.0,
    gradient_scheme: str = "electrostatic",
    sharpness: int | None = None,
    domain: str = "adc",
    b_value: float = 1.0,
    rng=None,
) -> Phantom:
    """Build the synthetic test set.

    Parameters
    ----------
    rows, cols : grid shape (default 32x32 = the paper's 1024 voxels).
    order : tensor order ``m`` (even; default 4 as in the paper).
    num_gradients : acquisition directions (must be >= ``C(m+2, m)``).
    crossing_angle_deg : angle between the two populations in the crossing
        band.  Below ~60 degrees an order-4 profile can no longer resolve
        both maxima — the physical limitation Section IV discusses.
    crossing_band : fractional row range occupied by the two-fiber band.
    noise_sigma : additive Gaussian noise on ADC samples (relative to the
        mean ADC magnitude).
    direction_jitter_deg : per-voxel random perturbation of the nominal
        fiber directions (models anatomical variation).
    sharpness : per-fiber kernel power (see :func:`adc_from_fibers`);
        defaults to ``order``, making the noiseless ADC-domain fit exact.
    domain : ``"adc"`` (default) samples ADC profiles directly with
        additive Gaussian noise of relative level ``noise_sigma``;
        ``"signal"`` simulates the full acquisition chain — exponential
        multi-compartment signal at ``b_value``, Rician noise of absolute
        std ``noise_sigma`` (relative to s0 = 1), log-recovery of the ADC
        (see :mod:`repro.mri.acquisition`) — which introduces realistic
        model mismatch for crossing voxels.
    b_value : diffusion weighting for ``domain="signal"``.
    rng : seed or Generator.
    """
    if order % 2 != 0:
        raise ValueError(f"diffusion tensors must have even order, got {order}")
    if num_gradients < min_directions(order):
        raise ValueError(
            f"order {order} needs >= {min_directions(order)} gradients, "
            f"got {num_gradients}"
        )
    if sharpness is None:
        sharpness = order
    if domain not in ("adc", "signal"):
        raise ValueError(f"domain must be 'adc' or 'signal', got {domain!r}")
    rng = make_rng(rng)
    gradients = gradient_directions(num_gradients, scheme=gradient_scheme, rng=rng)

    half = np.deg2rad(crossing_angle_deg) / 2.0
    # nominal populations: in-plane directions at +-half angle around x-axis
    base_a = np.array([np.cos(half), np.sin(half), 0.0])
    base_b = np.array([np.cos(half), -np.sin(half), 0.0])
    base_single = np.array([1.0, 0.0, 0.0])
    jitter = np.deg2rad(direction_jitter_deg)

    lo = int(np.floor(crossing_band[0] * rows))
    hi = int(np.ceil(crossing_band[1] * rows))

    true_directions: list[np.ndarray] = []
    adc = np.empty((rows * cols, num_gradients), dtype=np.float64)
    for r in range(rows):
        for c in range(cols):
            def perturb(d: np.ndarray) -> np.ndarray:
                noise = rng.normal(0.0, jitter, size=3)
                return _canonical_hemisphere(_unit(d + noise))

            if lo <= r < hi:
                dirs = np.stack([perturb(base_a), perturb(base_b)])
                weights = np.array([0.5, 0.5])
            else:
                dirs = perturb(base_single)[None, :]
                weights = np.array([1.0])
            if domain == "adc":
                profile = adc_from_fibers(gradients, dirs, weights, sharpness=sharpness)
                if noise_sigma > 0:
                    profile = profile + rng.normal(
                        0.0,
                        noise_sigma * float(np.mean(np.abs(profile))),
                        size=profile.shape,
                    )
            else:
                from repro.mri.acquisition import (
                    adc_from_signal,
                    rician_noise,
                    signal_from_fibers,
                )

                signal = signal_from_fibers(
                    gradients, dirs, weights, b_value=b_value, sharpness=sharpness
                )
                signal = rician_noise(signal, noise_sigma, rng=rng)
                profile = adc_from_signal(signal, b_value=b_value)
            adc[r * cols + c] = profile
            true_directions.append(dirs)

    tensors = fit_symmetric_batch(gradients, adc, m=order)
    return Phantom(
        tensors=tensors,
        true_directions=true_directions,
        gradients=gradients,
        adc=adc,
        rows=rows,
        cols=cols,
        meta={
            "order": order,
            "crossing_angle_deg": crossing_angle_deg,
            "noise_sigma": noise_sigma,
            "num_gradients": num_gradients,
            "sharpness": sharpness,
            "domain": domain,
            "b_value": b_value,
        },
    )
