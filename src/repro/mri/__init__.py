"""DW-MRI nerve-fiber application (Section IV): synthetic phantom
acquisition, symmetric-tensor fitting, SS-HOPM fiber extraction, and
accuracy metrics."""

from repro.mri.acquisition import adc_from_signal, rician_noise, signal_from_fibers
from repro.mri.fibers import VoxelFibers, extract_fibers, extract_fibers_batch
from repro.mri.fit import (
    adc_profile,
    design_matrix,
    fit_symmetric_batch,
    fit_symmetric_tensor,
)
from repro.mri.gradients import (
    electrostatic_directions,
    gradient_directions,
    min_directions,
)
from repro.mri.harmonics import (
    evaluate_sh,
    fit_sh,
    num_even_sh_coefficients,
    real_sph_harm_basis,
    sh_to_tensor,
    tensor_to_sh,
)
from repro.mri.measures import (
    generalized_anisotropy,
    generalized_mean_diffusivity,
    generalized_variance,
    measure_batch,
    spherical_mean,
)
from repro.mri.metrics import (
    DetectionReport,
    angular_error_deg,
    evaluate_detection,
    match_fibers,
)
from repro.mri.phantom import Phantom, adc_from_fibers, make_phantom

__all__ = [
    "adc_from_signal",
    "rician_noise",
    "signal_from_fibers",
    "VoxelFibers",
    "extract_fibers",
    "extract_fibers_batch",
    "adc_profile",
    "design_matrix",
    "fit_symmetric_batch",
    "fit_symmetric_tensor",
    "electrostatic_directions",
    "gradient_directions",
    "min_directions",
    "evaluate_sh",
    "fit_sh",
    "num_even_sh_coefficients",
    "real_sph_harm_basis",
    "sh_to_tensor",
    "tensor_to_sh",
    "generalized_anisotropy",
    "generalized_mean_diffusivity",
    "generalized_variance",
    "measure_batch",
    "spherical_mean",
    "DetectionReport",
    "angular_error_deg",
    "evaluate_detection",
    "match_fibers",
    "Phantom",
    "adc_from_fibers",
    "make_phantom",
]
