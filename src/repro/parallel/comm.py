"""Communication cost model for fleet executor selection.

Which executor tier should a sharded fleet run on?  Following the
block-partitioned symmetric tensor-times-vector analysis of Al Daas,
Ballard, Grigori et al. (arXiv:2506.15488), the decision reduces to
comparing *bytes moved* against *flops computed* per shard:

* a naive process pool pickles each shard's packed tensor rows out and
  its results back — ``O(T_s * U)`` bytes per shard, the serialization
  bottleneck ROADMAP item 2 names;
* the zero-copy tier (:mod:`repro.parallel.shm`) publishes the tensor
  payload into shared memory once and moves only shard descriptors and
  completion metadata through pipes — ``O(1)`` per shard, with results
  written in place (``O(result)`` total, never serialized);
* the thread tier moves nothing but serializes the per-sweep Python
  dispatch on the GIL, so it scales with the fraction of each sweep spent
  inside GIL-releasing kernels, not with core count.

:func:`estimate_fleet_comm` produces the byte/flop ledger for a workload
(validated against the measured ``repro_shm_bytes_published_total`` /
``repro_fleet_ipc_payload_bytes_total`` counters in
``benchmarks/bench_process_fleet.py``); :func:`choose_executor` turns it
into the ``executor="auto"`` decision.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

__all__ = [
    "EXECUTORS",
    "ExecutorChoice",
    "FleetCommEstimate",
    "choose_executor",
    "estimate_fleet_comm",
]

#: Valid ``executor=`` spellings for :func:`repro.parallel.parallel_fleet_solve`.
EXECUTORS = ("thread", "process", "auto")

#: Pickled bytes of one shard descriptor ``(sid, lo, hi, fault)`` and one
#: completion-metadata message — measured envelopes, used by the model so
#: its pipe-byte predictions line up with the instrumented counters.
DESCRIPTOR_BYTES = 96
META_BYTES = 320

#: Model constants (order-of-magnitude host parameters; the *decision*
#: only needs the ratio between tiers, not calibrated absolutes).
_FLOPS_PER_SECOND = 2.0e9
_PIPE_BYTES_PER_SECOND = 1.5e9
_WORKER_STARTUP_SECONDS = 0.02
#: Thread-tier scaling: fraction of a sweep genuinely overlapping in
#: GIL-releasing numpy kernels.  Small shapes are dispatch-dominated, so
#: threads add little; this is the pessimism the process tier beats.
_GIL_OVERLAP = 0.15


@dataclass(frozen=True)
class FleetCommEstimate:
    """The byte/flop ledger of one sharded fleet workload.

    ``pickled_pipe_bytes`` is what a pickling process pool would move
    (tensor shards + starts out, results back); ``shm_pipe_bytes`` is
    what the zero-copy tier moves through pipes (descriptors + metadata
    only); ``shm_published_bytes`` is the one-time shared-memory
    publication (tensor payload + starts + preallocated results).
    """

    tensors: int
    unique_entries: int
    starts: int
    n: int
    workers: int
    shards: int
    itemsize: int
    flops: int
    tensor_bytes: int
    starts_bytes: int
    result_bytes: int
    pickled_pipe_bytes: int
    shm_pipe_bytes: int
    shm_published_bytes: int

    def intensity(self, executor: str) -> float:
        """Flops per pipe byte under ``executor`` — the arithmetic
        intensity of the distribution scheme (``inf`` when nothing
        crosses a pipe, as for threads)."""
        bytes_moved = self.pipe_bytes(executor)
        return self.flops / bytes_moved if bytes_moved else float("inf")

    def pipe_bytes(self, executor: str) -> int:
        """Bytes serialized across pipes under ``executor``."""
        if executor == "thread":
            return 0
        if executor == "process":
            return self.shm_pipe_bytes
        if executor == "pickle":  # the tier this module exists to avoid
            return self.pickled_pipe_bytes
        raise ValueError(f"unknown executor {executor!r}")


def estimate_fleet_comm(
    tensors: int,
    unique_entries: int,
    starts: int,
    n: int,
    workers: int,
    *,
    m: int = 3,
    shards: int | None = None,
    sweeps: int = 40,
    itemsize: int = 8,
) -> FleetCommEstimate:
    """Predict bytes moved and flops computed for a sharded fleet run.

    ``unique_entries`` is the packed symmetric size ``U = C(m+n-1, m)``.
    The flop estimate is the analytic ``2 m U`` multiply-adds per
    ``A x^{m-1}`` lane application (row-expansion kernels touch each of
    the ``U`` packed entries with ``m-1`` factor products), times
    ``T * V`` lanes times the expected ``sweeps`` — the same ledger the
    kernel-plan flop counters report.
    """
    workers = max(1, min(workers, tensors))
    if shards is None:
        shards = workers
    T, U, V = tensors, unique_entries, starts
    tensor_bytes = T * U * itemsize
    starts_bytes = V * n * itemsize
    # per-lane outputs: lambda f8 + shift f8 + iterations i8 + eigenvector
    # + converged/failed bools
    result_bytes = T * V * (3 * 8 + n * itemsize + 2)
    flops = 2 * m * U * T * V * sweeps
    pickled = tensor_bytes + shards * starts_bytes + result_bytes
    shm_pipe = shards * (DESCRIPTOR_BYTES + META_BYTES)
    published = tensor_bytes + starts_bytes + result_bytes
    return FleetCommEstimate(
        tensors=T, unique_entries=U, starts=V, n=n,
        workers=workers, shards=shards, itemsize=itemsize, flops=flops,
        tensor_bytes=tensor_bytes, starts_bytes=starts_bytes,
        result_bytes=result_bytes, pickled_pipe_bytes=pickled,
        shm_pipe_bytes=shm_pipe, shm_published_bytes=published,
    )


@dataclass(frozen=True)
class ExecutorChoice:
    """What ``executor="auto"`` decided, and why."""

    executor: str
    reason: str
    thread_seconds: float
    process_seconds: float


def choose_executor(estimate: FleetCommEstimate,
                    cpu_count: int | None = None) -> ExecutorChoice:
    """Pick the executor tier for a workload from its comm estimate.

    Threads win when there is no parallel hardware, too little work to
    amortize worker startup, or a single worker; otherwise the zero-copy
    process tier wins as soon as predicted compute dominates its fixed
    costs (startup + descriptor traffic), because its pipe traffic is
    O(shards), not O(tensor).
    """
    if cpu_count is None:
        cpu_count = os.cpu_count() or 1
    compute = estimate.flops / _FLOPS_PER_SECOND
    eff_workers = max(1, min(estimate.workers, cpu_count))
    thread_speedup = 1.0 + _GIL_OVERLAP * (eff_workers - 1)
    thread_seconds = compute / thread_speedup
    process_seconds = (
        compute / eff_workers
        + _WORKER_STARTUP_SECONDS * estimate.workers
        + estimate.shm_pipe_bytes / _PIPE_BYTES_PER_SECOND
    )
    if estimate.workers < 2:
        return ExecutorChoice(
            "thread", "single worker: nothing to distribute",
            thread_seconds, process_seconds)
    if cpu_count < 2:
        return ExecutorChoice(
            "thread", f"one usable core (cpu_count={cpu_count}): process "
            "workers would timeshare it and pay IPC on top",
            thread_seconds, process_seconds)
    if process_seconds < thread_seconds:
        return ExecutorChoice(
            "process",
            f"predicted {thread_seconds / max(process_seconds, 1e-12):.1f}x "
            f"over threads at intensity "
            f"{estimate.intensity('process'):.0f} flops/pipe-byte",
            thread_seconds, process_seconds)
    return ExecutorChoice(
        "thread", "workload too small to amortize process startup",
        thread_seconds, process_seconds)
