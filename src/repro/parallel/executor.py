"""Multi-worker CPU driver for the batched eigenproblem.

Functional counterpart of the paper's OpenMP loop: the tensor batch is
statically partitioned and each worker runs multistart SS-HOPM on its chunk.
Workers are Python threads — NumPy releases the GIL inside its vectorized
kernels, so chunks of the batched backend genuinely overlap on multicore
hosts; on a single-core host the driver still exercises the partitioning
and merge logic (the performance *model* in
:mod:`repro.parallel.cpumodel`, not this executor, reproduces the paper's
scaling numbers — see DESIGN.md's substitution table).
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
import time

import numpy as np

from repro.core.multistart import MultistartResult, multistart_sshopm, starting_vectors
from repro.parallel.partition import static_partition
from repro.symtensor.storage import SymmetricTensorBatch

__all__ = ["ParallelRunReport", "parallel_multistart_sshopm"]


@dataclass
class ParallelRunReport:
    """A merged multistart result plus execution metadata."""

    result: MultistartResult
    workers: int
    seconds: float
    chunk_sizes: list[int]


def parallel_multistart_sshopm(
    tensors: SymmetricTensorBatch,
    workers: int = 1,
    num_starts: int = 128,
    alpha: float = 0.0,
    tol: float = 1e-10,
    max_iter: int = 500,
    starts: np.ndarray | None = None,
    scheme: str = "random",
    backend: str = "batched",
    dtype=np.float64,
    rng=None,
) -> ParallelRunReport:
    """Partition ``tensors`` over ``workers`` threads and solve each chunk.

    All workers share one starting-vector set (as on the GPU).  The merged
    result is identical (up to chunk concatenation order, which preserves
    tensor order) to a single-worker run with the same starts.
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    T = len(tensors)
    if starts is None:
        starts = starting_vectors(num_starts, tensors.n, scheme=scheme, rng=rng, dtype=dtype)

    ranges = [r for r in static_partition(T, workers) if len(r) > 0]
    t0 = time.perf_counter()

    def solve_chunk(r: range) -> MultistartResult:
        chunk = tensors.subset(np.arange(r.start, r.stop))
        return multistart_sshopm(
            chunk,
            alpha=alpha,
            tol=tol,
            max_iter=max_iter,
            starts=starts,
            backend=backend,
            dtype=dtype,
        )

    if len(ranges) == 1:
        parts = [solve_chunk(ranges[0])]
    else:
        with ThreadPoolExecutor(max_workers=len(ranges)) as pool:
            parts = list(pool.map(solve_chunk, ranges))
    seconds = time.perf_counter() - t0

    merged = MultistartResult(
        eigenvalues=np.concatenate([p.eigenvalues for p in parts], axis=0),
        eigenvectors=np.concatenate([p.eigenvectors for p in parts], axis=0),
        converged=np.concatenate([p.converged for p in parts], axis=0),
        iterations=np.concatenate([p.iterations for p in parts], axis=0),
        total_sweeps=max(p.total_sweeps for p in parts),
    )
    return ParallelRunReport(
        result=merged,
        workers=workers,
        seconds=seconds,
        chunk_sizes=[len(r) for r in ranges],
    )
