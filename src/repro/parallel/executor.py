"""Multi-worker CPU driver for the batched eigenproblem.

Functional counterpart of the paper's OpenMP loop: the tensor batch is
statically partitioned and each worker runs multistart SS-HOPM on its chunk.
Workers are Python threads — NumPy releases the GIL inside its vectorized
kernels, so chunks of the batched backend genuinely overlap on multicore
hosts; on a single-core host the driver still exercises the partitioning
and merge logic (the performance *model* in
:mod:`repro.parallel.cpumodel`, not this executor, reproduces the paper's
scaling numbers — see DESIGN.md's substitution table).

When a recorder is active (:mod:`repro.instrument`), each worker records
into its own :class:`~repro.instrument.Recorder` (the current recorder is
thread-local, and recorders are not thread-safe) and the per-worker traces
are folded back into the caller's under ``worker0``, ``worker1``, ...
nodes, so a trace shows both the parallel structure and the aggregate
flops.  Solver metrics follow the same pattern: each worker writes to a
private :class:`~repro.instrument.metrics.MetricsRegistry` (the active
registry is thread-local) and the per-worker registries are merged into
the caller's active registry after the pool drains.

The executor is *hardened*: a chunk whose task raises — a kernel bug, an
injected fault from the chaos harness, a worker dying mid-solve — is
requeued on a surviving worker up to ``max_requeues`` times (with a
``RuntimeWarning`` that the pool is running degraded).  A chunk that
exhausts its requeue budget is reported in ``ParallelRunReport.failures``
and contributes an all-NaN placeholder to the merged result (``failed``
mask all ``True``), so one poisoned chunk cannot take down the sweep or
silently vanish from the output.  Metrics a crashed chunk recorded before
dying are still merged.
"""

from __future__ import annotations

import time
import warnings
from concurrent.futures import FIRST_COMPLETED, ThreadPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.core.config import SolveConfig, reconcile_max_iters
from repro.core.multistart import MultistartResult, multistart_sshopm, starting_vectors
from repro.instrument import Recorder, current_recorder
from repro.instrument import span as _span
from repro.instrument.log import get_logger
from repro.instrument.metrics import MetricsRegistry, get_registry, use_registry
from repro.parallel.partition import static_partition
from repro.symtensor.storage import SymmetricTensorBatch

__all__ = ["ChunkFailure", "ParallelRunReport", "parallel_multistart_sshopm"]

_log = get_logger("parallel.executor")


@dataclass(frozen=True)
class ChunkFailure:
    """A chunk that exhausted its requeue budget.

    ``tensor_range`` is the ``[start, stop)`` slice of the input batch the
    chunk covered; those rows of the merged result are NaN placeholders
    with ``failed`` all ``True``.
    """

    chunk_index: int
    tensor_range: tuple[int, int]
    attempts: int
    error: str


@dataclass
class ParallelRunReport:
    """A merged multistart result plus execution metadata.

    ``failures`` lists chunks that crashed on every attempt (empty for a
    healthy run); ``requeues`` counts crashed task executions that were
    rescheduled, successful or not.
    """

    result: MultistartResult
    workers: int
    seconds: float
    chunk_sizes: list[int]
    failures: list[ChunkFailure] = field(default_factory=list)
    requeues: int = 0


def _placeholder_result(num_tensors: int, num_starts: int, n: int,
                        dtype) -> MultistartResult:
    """An all-NaN, all-failed stand-in for a chunk that never completed."""
    return MultistartResult(
        eigenvalues=np.full((num_tensors, num_starts), np.nan, dtype=dtype),
        eigenvectors=np.full((num_tensors, num_starts, n), np.nan, dtype=dtype),
        converged=np.zeros((num_tensors, num_starts), dtype=bool),
        iterations=np.zeros((num_tensors, num_starts), dtype=np.int64),
        sweeps=0,
        failed=np.ones((num_tensors, num_starts), dtype=bool),
    )


def parallel_multistart_sshopm(
    tensors: SymmetricTensorBatch,
    workers: int = 1,
    num_starts: int = 128,
    alpha: float = 0.0,
    tol: float = 1e-10,
    max_iters: int | None = None,
    starts: np.ndarray | None = None,
    scheme: str = "random",
    backend: str = "batched",
    dtype=np.float64,
    rng=None,
    config: SolveConfig | None = None,
    *,
    max_requeues: int = 2,
    inject: Callable[[int, int], None] | None = None,
    max_iter: int | None = None,
) -> ParallelRunReport:
    """Partition ``tensors`` over ``workers`` threads and solve each chunk.

    All workers share one starting-vector set (as on the GPU).  The merged
    result is identical (up to chunk concatenation order, which preserves
    tensor order) to a single-worker run with the same starts.
    ``max_iters`` defaults to 500 (``max_iter=`` is the deprecated
    spelling); ``config`` supplies defaults as in
    :func:`~repro.core.multistart.multistart_sshopm`.

    ``max_requeues`` bounds how many times a crashed chunk task is
    rescheduled before it is written off (see :class:`ChunkFailure`);
    ``inject`` is a chaos-testing hook called as
    ``inject(chunk_index, attempt)`` at the start of every task execution
    (see :meth:`~repro.resilience.faults.FaultPlan.executor_hook`).
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    if max_requeues < 0:
        raise ValueError(f"max_requeues must be >= 0, got {max_requeues}")
    max_iters = reconcile_max_iters(max_iters, max_iter)
    T = len(tensors)
    if starts is None:
        starts = starting_vectors(num_starts, tensors.n, scheme=scheme, rng=rng, dtype=dtype)

    # more workers than tensors just means idle workers: clamp before
    # partitioning (static_partition raises on empty shards)
    workers = min(workers, T) if T >= 1 else workers
    ranges = static_partition(T, workers)
    parent = current_recorder()
    t0 = time.perf_counter()

    def solve_chunk(chunk_index: int, r: range, attempt: int):
        # each worker thread gets its own metrics registry (no cross-thread
        # lock traffic in the hot path); snapshots merge back below — even
        # for a chunk that crashes partway, so partial metrics survive
        worker_reg = MetricsRegistry()
        worker_rec = Recorder() if parent is not None else None
        res = None
        error: BaseException | None = None
        try:
            with use_registry(worker_reg):
                if inject is not None:
                    inject(chunk_index, attempt)
                chunk = tensors.subset(np.arange(r.start, r.stop))

                def run():
                    return multistart_sshopm(
                        chunk,
                        alpha=alpha,
                        tol=tol,
                        max_iters=max_iters,
                        starts=starts,
                        backend=backend,
                        dtype=dtype,
                        config=config,
                    )

                if worker_rec is not None:
                    with worker_rec.activate():
                        res = run()
                else:
                    res = run()
        except Exception as exc:
            error = exc
        return res, error, worker_rec, worker_reg

    parts: dict[int, MultistartResult] = {}
    recorders: dict[int, Recorder | None] = {}
    registries: list[MetricsRegistry] = []
    failures: list[ChunkFailure] = []
    requeues = 0
    warned_degraded = False

    with _span("parallel_multistart_sshopm"):
        with ThreadPoolExecutor(max_workers=len(ranges)) as pool:
            futures = {
                pool.submit(solve_chunk, i, r, 0): (i, 0)
                for i, r in enumerate(ranges)
            }
            while futures:
                done, _ = wait(futures, return_when=FIRST_COMPLETED)
                for fut in done:
                    chunk_index, attempt = futures.pop(fut)
                    res, error, worker_rec, worker_reg = fut.result()
                    registries.append(worker_reg)
                    if error is None:
                        parts[chunk_index] = res
                        recorders[chunk_index] = worker_rec
                        continue
                    requeues_left = max_requeues - attempt
                    if not warned_degraded:
                        warned_degraded = True
                        warnings.warn(
                            f"worker task for chunk {chunk_index} crashed "
                            f"({type(error).__name__}: {error}); "
                            + ("requeueing — running in degraded mode"
                               if requeues_left > 0 else "requeue budget exhausted"),
                            RuntimeWarning,
                            stacklevel=2,
                        )
                    _log.warning(
                        "worker task crashed",
                        fields={"chunk": chunk_index, "attempt": attempt,
                                "error": f"{type(error).__name__}: {error}",
                                "requeues_left": requeues_left})
                    if requeues_left > 0:
                        requeues += 1
                        fut = pool.submit(solve_chunk, chunk_index,
                                          ranges[chunk_index], attempt + 1)
                        futures[fut] = (chunk_index, attempt + 1)
                        continue
                    r = ranges[chunk_index]
                    failures.append(ChunkFailure(
                        chunk_index=chunk_index,
                        tensor_range=(r.start, r.stop),
                        attempts=attempt + 1,
                        error=f"{type(error).__name__}: {error}",
                    ))
                    parts[chunk_index] = _placeholder_result(
                        len(r), starts.shape[0], tensors.n, np.dtype(dtype))
                    recorders[chunk_index] = None
        caller_reg = get_registry()
        if parent is not None:
            # fold per-worker traces in under this span while it is open
            parent.gauge("parallel.workers", len(ranges))
            parent.gauge("parallel.chunk_sizes", [len(r) for r in ranges])
            for wid in sorted(recorders):
                if recorders[wid] is not None:
                    parent.absorb(recorders[wid], under=f"worker{wid}")
        for worker_reg in registries:
            caller_reg.merge(worker_reg)
        if requeues:
            caller_reg.counter(
                "repro_requeues_total",
                "Crashed sweep tasks rescheduled on a surviving worker",
            ).inc(requeues)
        if failures:
            caller_reg.counter(
                "repro_chunk_failures_total",
                "Parallel chunks that exhausted their requeue budget",
            ).inc(len(failures))
    seconds = time.perf_counter() - t0

    ordered = [parts[i] for i in sorted(parts)]
    failed_masks = [
        p.failed if p.failed is not None
        else np.zeros(p.eigenvalues.shape, dtype=bool)
        for p in ordered
    ]
    merged = MultistartResult(
        eigenvalues=np.concatenate([p.eigenvalues for p in ordered], axis=0),
        eigenvectors=np.concatenate([p.eigenvectors for p in ordered], axis=0),
        converged=np.concatenate([p.converged for p in ordered], axis=0),
        iterations=np.concatenate([p.iterations for p in ordered], axis=0),
        sweeps=max(p.sweeps for p in ordered),
        failed=np.concatenate(failed_masks, axis=0),
    )
    return ParallelRunReport(
        result=merged,
        workers=workers,
        seconds=seconds,
        chunk_sizes=[len(r) for r in ranges],
        failures=failures,
        requeues=requeues,
    )
