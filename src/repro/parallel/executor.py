"""Multi-worker CPU driver for the batched eigenproblem.

Functional counterpart of the paper's OpenMP loop: the tensor batch is
statically partitioned and each worker runs multistart SS-HOPM on its chunk.
Workers are Python threads — NumPy releases the GIL inside its vectorized
kernels, so chunks of the batched backend genuinely overlap on multicore
hosts; on a single-core host the driver still exercises the partitioning
and merge logic (the performance *model* in
:mod:`repro.parallel.cpumodel`, not this executor, reproduces the paper's
scaling numbers — see DESIGN.md's substitution table).

When a recorder is active (:mod:`repro.instrument`), each worker records
into its own :class:`~repro.instrument.Recorder` (the current recorder is
thread-local, and recorders are not thread-safe) and the per-worker traces
are folded back into the caller's under ``worker0``, ``worker1``, ...
nodes, so a trace shows both the parallel structure and the aggregate
flops.  Solver metrics follow the same pattern: each worker writes to a
private :class:`~repro.instrument.metrics.MetricsRegistry` (the active
registry is thread-local) and the per-worker registries are merged into
the caller's active registry after the pool drains.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
import time

import numpy as np

from repro.core.config import SolveConfig, reconcile_max_iters
from repro.core.multistart import MultistartResult, multistart_sshopm, starting_vectors
from repro.instrument import Recorder, current_recorder
from repro.instrument import span as _span
from repro.instrument.metrics import MetricsRegistry, get_registry, use_registry
from repro.parallel.partition import static_partition
from repro.symtensor.storage import SymmetricTensorBatch

__all__ = ["ParallelRunReport", "parallel_multistart_sshopm"]


@dataclass
class ParallelRunReport:
    """A merged multistart result plus execution metadata."""

    result: MultistartResult
    workers: int
    seconds: float
    chunk_sizes: list[int]


def parallel_multistart_sshopm(
    tensors: SymmetricTensorBatch,
    workers: int = 1,
    num_starts: int = 128,
    alpha: float = 0.0,
    tol: float = 1e-10,
    max_iters: int | None = None,
    starts: np.ndarray | None = None,
    scheme: str = "random",
    backend: str = "batched",
    dtype=np.float64,
    rng=None,
    config: SolveConfig | None = None,
    *,
    max_iter: int | None = None,
) -> ParallelRunReport:
    """Partition ``tensors`` over ``workers`` threads and solve each chunk.

    All workers share one starting-vector set (as on the GPU).  The merged
    result is identical (up to chunk concatenation order, which preserves
    tensor order) to a single-worker run with the same starts.
    ``max_iters`` defaults to 500 (``max_iter=`` is the deprecated
    spelling); ``config`` supplies defaults as in
    :func:`~repro.core.multistart.multistart_sshopm`.
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    max_iters = reconcile_max_iters(max_iters, max_iter)
    T = len(tensors)
    if starts is None:
        starts = starting_vectors(num_starts, tensors.n, scheme=scheme, rng=rng, dtype=dtype)

    ranges = [r for r in static_partition(T, workers) if len(r) > 0]
    parent = current_recorder()
    t0 = time.perf_counter()

    def solve_chunk(r: range) -> tuple[MultistartResult, Recorder | None, MetricsRegistry]:
        chunk = tensors.subset(np.arange(r.start, r.stop))

        def run():
            return multistart_sshopm(
                chunk,
                alpha=alpha,
                tol=tol,
                max_iters=max_iters,
                starts=starts,
                backend=backend,
                dtype=dtype,
                config=config,
            )

        # each worker thread gets its own metrics registry (no cross-thread
        # lock traffic in the hot path); snapshots merge back below
        with use_registry() as worker_reg:
            if parent is None:
                return run(), None, worker_reg
            worker_rec = Recorder()
            with worker_rec.activate():
                return run(), worker_rec, worker_reg

    with _span("parallel_multistart_sshopm"):
        if len(ranges) == 1:
            outcomes = [solve_chunk(ranges[0])]
        else:
            with ThreadPoolExecutor(max_workers=len(ranges)) as pool:
                outcomes = list(pool.map(solve_chunk, ranges))
        if parent is not None:
            # fold per-worker traces in under this span while it is open
            parent.gauge("parallel.workers", len(ranges))
            parent.gauge("parallel.chunk_sizes", [len(r) for r in ranges])
            for wid, (_, worker_rec, _reg) in enumerate(outcomes):
                if worker_rec is not None:
                    parent.absorb(worker_rec, under=f"worker{wid}")
        caller_reg = get_registry()
        for _, _, worker_reg in outcomes:
            caller_reg.merge(worker_reg)
    seconds = time.perf_counter() - t0

    parts = [res for res, _, _ in outcomes]

    merged = MultistartResult(
        eigenvalues=np.concatenate([p.eigenvalues for p in parts], axis=0),
        eigenvectors=np.concatenate([p.eigenvectors for p in parts], axis=0),
        converged=np.concatenate([p.converged for p in parts], axis=0),
        iterations=np.concatenate([p.iterations for p in parts], axis=0),
        total_sweeps=max(p.total_sweeps for p in parts),
    )
    return ParallelRunReport(
        result=merged,
        workers=workers,
        seconds=seconds,
        chunk_sizes=[len(r) for r in ranges],
    )
